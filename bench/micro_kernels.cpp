// google-benchmark micro suite: the host-side cost of the simulation
// kernels (FFT, circulant mat-vec, device LEA ops). These measure the
// simulator itself — useful when profiling bench turnaround — while the
// *modelled* device costs appear in the fig7/fig8 benches.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/ace/compiled_model.h"
#include "device/device.h"
#include "dsp/circulant.h"
#include "dsp/fft.h"
#include "util/rng.h"

namespace {

using namespace ehdnn;

void BM_FftQ15(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  std::vector<fx::cq15> buf(n);
  for (auto& c : buf) {
    c = {fx::to_q15(rng.uniform(-0.5, 0.5)), fx::to_q15(rng.uniform(-0.5, 0.5))};
  }
  for (auto _ : state) {
    auto copy = buf;
    benchmark::DoNotOptimize(dsp::fft_q15(copy, dsp::FftScaling::kFixedScale));
  }
}
BENCHMARK(BM_FftQ15)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_CirculantMatvecQ15(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  std::vector<fx::q15_t> c(k), x(k);
  for (std::size_t i = 0; i < k; ++i) {
    c[i] = fx::to_q15(rng.uniform(-0.1, 0.1));
    x[i] = fx::to_q15(rng.uniform(-0.5, 0.5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dsp::circulant_matvec_q15(c, x, dsp::FftScaling::kBlockFloat));
  }
}
BENCHMARK(BM_CirculantMatvecQ15)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_DeviceLeaMac(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dev::Device d;
  Rng rng(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.sram().poke(i, fx::to_q15(rng.uniform(-0.2, 0.2)));
    d.sram().poke(1024 + i, fx::to_q15(rng.uniform(-0.2, 0.2)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.lea_mac(0, 1024, n));
  }
}
BENCHMARK(BM_DeviceLeaMac)->Arg(25)->Arg(78)->Arg(150);

void BM_DeviceDmaCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dev::Device d;
  for (auto _ : state) {
    d.dma_copy(dev::MemKind::kFram, 0, dev::MemKind::kSram, 0, n);
  }
}
BENCHMARK(BM_DeviceDmaCopy)->Arg(64)->Arg(512);

// Full ACE layer kernels through the device model (bulk fast paths on):
// the host-side cost of simulating one conv2d / FC layer inference, on
// the same quantized instances the perf harness measures (bench_common).
void run_layer_bench(benchmark::State& state, const bench::LayerWorkload& w) {
  dev::Device d;
  power::ContinuousPower supply;
  d.attach_supply(&supply);
  const auto cm = ace::compile(w.qm, d);
  auto rt = flex::make_ace_runtime();
  const flex::RunOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt->infer(d, cm, w.qin, opts).completed());
  }
}

void BM_Conv2dLayer(benchmark::State& state) {
  run_layer_bench(state, bench::conv2d_micro_workload());
}
BENCHMARK(BM_Conv2dLayer);

void BM_DenseLayer(benchmark::State& state) {
  run_layer_bench(state, bench::fc_micro_workload());
}
BENCHMARK(BM_DenseLayer);

void BM_CircConvRef(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  std::vector<double> c(k), x(k), y(k);
  for (std::size_t i = 0; i < k; ++i) {
    c[i] = rng.uniform(-1, 1);
    x[i] = rng.uniform(-1, 1);
  }
  for (auto _ : state) {
    dsp::circ_conv_ref(c, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CircConvRef)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
