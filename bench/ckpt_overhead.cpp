// SSIV-A.5: checkpointing overhead. The paper reports every
// checkpoint/restore costs at most 0.033 mJ (worst case: power failure
// during the FFT-based BCM FC), and total overhead of 1% / 1.25% / 0.8%
// for MNIST / HAR / OKG.

#include "bench_common.h"

int main() {
  using namespace ehdnn;
  using namespace ehdnn::bench;
  std::cout << "Checkpointing overhead of ACE+FLEX (intermittent power)\n";

  const models::Task tasks[] = {models::Task::kMnist, models::Task::kHar, models::Task::kOkg};
  const double paper_pct[] = {1.0, 1.25, 0.8};

  Table t({"Task", "Checkpoints", "Ckpt energy", "Per-ckpt (worst-case bound)",
           "Total overhead", "Paper", "<= 0.033 mJ each?"});
  for (int ti = 0; ti < 3; ++ti) {
    PowerSpec ps;
    ps.continuous = false;
    const auto st = run_framework(Framework::kAceFlex, tasks[ti], ps, 100000);
    const double per = st.checkpoints > 0
                           ? st.checkpoint_energy_j / static_cast<double>(st.checkpoints)
                           : 0.0;
    const double pct = 100.0 * st.checkpoint_energy_j / st.energy_j;
    t.add_row({models::task_name(tasks[ti]), std::to_string(st.checkpoints),
               Table::num(st.checkpoint_energy_j * 1e6, 2) + " uJ",
               Table::num(per * 1e6, 3) + " uJ", Table::num(pct, 2) + "%",
               Table::num(paper_pct[ti], 2) + "%", per <= 33e-6 ? "yes" : "NO"});
  }
  t.print(std::cout);
  return 0;
}
