// Ablation (Fig. 5): circular-buffer convolution. An N-layer inference
// naively needs one activation buffer per layer (sum of L_i); ACE's
// ping-pong reuse needs two buffers of max(L_i) regardless of depth.

#include "bench_common.h"

int main() {
  using namespace ehdnn;
  using namespace ehdnn::bench;
  std::cout << "Ablation - circular-buffer convolution memory (Fig. 5)\n";

  Table t({"Task", "Layers", "N-buffer bytes (sum Li)", "ACE 2-buffer bytes (2 max Li)",
           "Saving"});
  for (models::Task task :
       {models::Task::kMnist, models::Task::kHar, models::Task::kOkg}) {
    Rng rng(5 + static_cast<std::uint64_t>(task));
    const auto qm = make_qmodel(task, /*compressed=*/true, rng);
    std::size_t sum = qm.layers.front().in_size();
    for (const auto& l : qm.layers) sum += l.out_size();
    const std::size_t two = 2 * qm.max_activation_words();
    t.add_row({models::task_name(task), std::to_string(qm.layers.size()),
               std::to_string(sum * 2), std::to_string(two * 2),
               Table::num(static_cast<double>(sum) / static_cast<double>(two), 2) + "x"});
  }
  t.print(std::cout);
  return 0;
}
