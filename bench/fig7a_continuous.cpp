// Fig. 7(a): inference time under continuous power for BASE / SONIC /
// TAILS (dense models) and ACE+FLEX (RAD-compressed model). The paper's
// speedups of ACE+FLEX: 3/5.4/1.7x vs BASE, 4/5.7/3.3x vs SONIC,
// 3.3/2.6/2.1x vs TAILS on MNIST/HAR/OKG.

#include "bench_common.h"

int main() {
  using namespace ehdnn;
  using namespace ehdnn::bench;
  std::cout << "Fig. 7(a) - Inference time on continuous power\n";

  const Framework fws[] = {Framework::kBase, Framework::kSonic, Framework::kTails,
                           Framework::kAceFlex};
  const models::Task tasks[] = {models::Task::kMnist, models::Task::kHar, models::Task::kOkg};
  const double paper_speedup[3][3] = {// vs BASE, SONIC, TAILS per task
                                      {3.0, 4.0, 3.3},
                                      {5.4, 5.7, 2.6},
                                      {1.7, 3.3, 2.1}};

  Table t({"Task", "Framework", "Latency", "Energy", "ACE+FLEX speedup", "Paper"});
  for (int ti = 0; ti < 3; ++ti) {
    const auto task = tasks[ti];
    double lat[4] = {};
    double enj[4] = {};
    for (int fi = 0; fi < 4; ++fi) {
      PowerSpec ps;  // continuous
      const auto st = run_framework(fws[fi], task, ps);
      lat[fi] = st.on_seconds;
      enj[fi] = st.energy_j;
    }
    for (int fi = 0; fi < 4; ++fi) {
      std::string speed, paper;
      if (fi < 3) {
        speed = Table::num(lat[fi] / lat[3], 2) + "x";
        paper = Table::num(paper_speedup[ti][fi], 1) + "x";
      } else {
        speed = "1.00x";
        paper = "1x";
      }
      t.add_row({fi == 0 ? models::task_name(task) : "", framework_name(fws[fi]),
                 ms(lat[fi]), mj(enj[fi]), speed, paper});
    }
  }
  t.print(std::cout);
  std::cout << "(BASE/SONIC/TAILS run the uncompressed models as in the paper; the\n"
               " dense HAR/OKG weights exceed the real 256 KB FRAM and execute on a\n"
               " virtually enlarged FRAM - see EXPERIMENTS.md.)\n";
  return 0;
}
