// Ablation (SSIII-A "architecture search"): RAD's resource-gated search.
// Every candidate is first checked against the board's hard constraints
// (FRAM footprint, SRAM plan, modelled latency) using the device model;
// only feasible candidates are quick-trained and ranked by accuracy.

#include "bench_common.h"
#include "core/rad/search.h"
#include "data/dataset.h"

int main() {
  using namespace ehdnn;
  std::cout << "RAD architecture search (resource gates before accuracy)\n";

  Rng rng(404);
  auto data = data::make_mnist_like(rng, 350, 120);
  rad::SearchConfig cfg;
  cfg.quick_epochs = 2;
  cfg.max_latency_s = 0.25;
  const auto res = rad::search(data, cfg, rng);

  Table t({"conv1", "fc width", "BCM k", "FRAM KiB", "SRAM words", "Latency",
           "Feasible", "Quick acc", "Picked"});
  for (const auto& sc : res.scored) {
    const bool picked = sc.cand.conv1_filters == res.best.conv1_filters &&
                        sc.cand.fc_width == res.best.fc_width &&
                        sc.cand.bcm_block == res.best.bcm_block;
    t.add_row({std::to_string(sc.cand.conv1_filters), std::to_string(sc.cand.fc_width),
               std::to_string(sc.cand.bcm_block),
               std::to_string(sc.resources.fram_bytes / 1024),
               std::to_string(sc.resources.sram_words),
               sc.resources.fits() ? bench::ms(sc.resources.latency_s) : "-",
               sc.feasible ? "yes" : "no",
               sc.quick_accuracy >= 0 ? Table::pct(sc.quick_accuracy, 1) : "-",
               picked ? "<== best" : ""});
  }
  t.print(std::cout);
  return 0;
}
