// Table II: structure, compression and accuracy of the three DNNs, via the
// full RAD pipeline (train -> BCM -> ADMM structured pruning -> quantize)
// on the synthetic stand-in datasets (DESIGN.md SS1). Paper accuracies:
// MNIST 99%, HAR 89%, OKG 82% on the real datasets.

#include <iostream>

#include "core/rad/pipeline.h"
#include "core/rad/resource.h"
#include "util/table.h"

int main() {
  using namespace ehdnn;
  std::cout << "Table II - Structure and Accuracy of DNN (synthetic-data reproduction)\n";

  struct Job {
    models::Task task;
    float paper_acc;
    std::uint64_t seed;
    rad::RadConfig cfg;
  };
  std::vector<Job> jobs;
  {
    rad::RadConfig c;
    c.task = models::Task::kMnist;
    c.train_samples = 700;
    c.test_samples = 250;
    c.epochs = 5;
    c.sgd.lr = 0.02f;
    jobs.push_back({models::Task::kMnist, 0.99f, 41, c});
  }
  {
    rad::RadConfig c;
    c.task = models::Task::kHar;
    c.train_samples = 600;
    c.test_samples = 250;
    c.epochs = 6;
    c.sgd.lr = 0.02f;
    c.sgd.clip_norm = 1.0f;  // the wide BCM stack trains stably with a clip
    jobs.push_back({models::Task::kHar, 0.89f, 8, c});
  }
  {
    rad::RadConfig c;
    c.task = models::Task::kOkg;
    c.train_samples = 600;
    c.test_samples = 250;
    c.epochs = 8;
    c.sgd.lr = 0.005f;
    jobs.push_back({models::Task::kOkg, 0.82f, 43, c});
  }

  Table t({"Task", "Layer", "Compress Method", "Compression", "Float acc", "16-bit acc",
           "Paper acc"});
  for (auto& job : jobs) {
    Rng rng(job.seed);
    auto res = rad::run_rad(job.cfg, rng);
    bool first = true;
    for (const auto& l : res.layers) {
      t.add_row({first ? models::task_name(job.task) : "", l.name, l.method,
                 l.compression > 1.0 ? Table::num(l.compression, 1) + "x" : "-",
                 first ? Table::pct(res.float_accuracy, 1) : "",
                 first ? Table::pct(res.quant_accuracy, 1) : "",
                 first ? Table::pct(job.paper_acc, 0) : ""});
      first = false;
    }
    const auto rep = rad::estimate(res.qmodel);
    std::cout << models::task_name(job.task) << ": deployable weights "
              << rep.weight_bytes / 1024 << " KiB, FRAM plan " << rep.fram_bytes / 1024
              << " KiB (fits 256 KiB board: " << (rep.fits() ? "yes" : "NO") << ")\n";
  }
  t.print(std::cout);
  std::cout << "Note: accuracies are on the synthetic stand-in tasks (same shapes and\n"
               "class counts as the paper's datasets); the 16-bit column demonstrates\n"
               "that RAD's quantization costs ~nothing, which is the paper's claim.\n";
  return 0;
}
