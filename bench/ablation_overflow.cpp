// Ablation (SSIII-B "Overflow-aware Computation", Algorithm 1): runs the
// same quantized BCM layer three ways —
//   * overflow-unaware (no scaling: FFT butterflies saturate),
//   * the paper's Algorithm 1 (fixed per-stage scaling = SCALE-DOWN/UP),
//   * block floating point (this library's default),
// and reports saturation counts plus output error vs the float model.
// The fixed-scale error growing with k is why the paper observes accuracy
// degradation at larger block sizes (SSIV-A.4).

#include <cmath>

#include "bench_common.h"
#include "nn/bcm_dense.h"
#include "quant/qexec.h"

int main() {
  using namespace ehdnn;
  std::cout << "Ablation - overflow handling in the BCM FC path\n";

  Table t({"Block size", "Mode", "Saturations", "Mean |error| vs float", "Max |error|"});
  for (std::size_t k : {32u, 64u, 128u, 256u}) {
    Rng rng(99 + k);
    nn::Model m;
    m.add<nn::BcmDense>(2 * k, k, k)->init(rng);
    std::vector<nn::Tensor> calib;
    for (int i = 0; i < 4; ++i) {
      nn::Tensor t2({2 * k});
      for (std::size_t j = 0; j < 2 * k; ++j) {
        t2[j] = static_cast<float>(rng.uniform(-0.9, 0.9));
      }
      calib.push_back(std::move(t2));
    }
    const auto qm = quant::quantize(m, calib, {2 * k});

    struct Mode {
      const char* name;
      dsp::FftScaling scaling;
      bool aware;
    };
    const Mode modes[] = {
        {"unaware (no scaling)", dsp::FftScaling::kNone, false},
        {"Algorithm 1 (fixed scale)", dsp::FftScaling::kFixedScale, true},
        {"block floating point", dsp::FftScaling::kBlockFloat, true},
    };
    for (const auto& mode : modes) {
      fx::SatStats sat;
      double sum_err = 0.0, max_err = 0.0;
      std::size_t n = 0;
      for (int trial = 0; trial < 6; ++trial) {
        nn::Tensor x({2 * k});
        for (std::size_t j = 0; j < 2 * k; ++j) {
          x[j] = static_cast<float>(rng.uniform(-0.9, 0.9));
        }
        const nn::Tensor fy = m.forward(x);
        quant::QExecOptions o;
        o.fft_scaling = mode.scaling;
        o.overflow_aware = mode.aware;
        o.stats = &sat;
        const auto qy = quant::qpredict(qm, x, o);
        for (std::size_t i = 0; i < fy.size(); ++i) {
          const double e = std::abs(static_cast<double>(qy[i]) - fy[i]);
          sum_err += e;
          max_err = std::max(max_err, e);
          ++n;
        }
      }
      t.add_row({std::to_string(k), mode.name, std::to_string(sat.saturations),
                 Table::num(sum_err / static_cast<double>(n), 5), Table::num(max_err, 4)});
    }
  }
  t.print(std::cout);
  return 0;
}
