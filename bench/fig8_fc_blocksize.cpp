// Fig. 8: latency and energy of the first FC layer of the MNIST model
// (256x256) as a function of implementation: element-wise CPU (SONIC
// style), LEA dense rows (TAILS/BASE style), and ACE's FFT-based BCM with
// block sizes 32/64/128. The paper's shape: BCM cuts both latency and
// energy, and larger blocks help more (bounded by accuracy/device limits).

#include "bench_common.h"
#include "nn/bcm_dense.h"
#include "nn/dense.h"

namespace {

using namespace ehdnn;

quant::QuantModel single_fc(std::size_t bcm_block, Rng& rng) {
  nn::Model m;
  if (bcm_block == 0) {
    m.add<nn::Dense>(256, 256)->init(rng);
  } else {
    m.add<nn::BcmDense>(256, 256, bcm_block)->init(rng);
  }
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) {
    nn::Tensor t({256});
    for (std::size_t j = 0; j < 256; ++j) t[j] = static_cast<float>(rng.uniform(-0.9, 0.9));
    calib.push_back(std::move(t));
  }
  return quant::quantize(m, calib, {256});
}

struct Row {
  std::string name;
  double latency_s = 0.0;
  double energy_j = 0.0;
};

Row run_with(bench::Framework fw, std::size_t block, Rng& rng) {
  const auto qm = single_fc(block, rng);
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  std::vector<fx::q15_t> input(256);
  for (auto& v : input) v = static_cast<fx::q15_t>(rng.next_u64());
  auto rt = bench::make_runtime(fw);
  const auto st = rt->infer(dev, cm, input);
  return {"", st.on_seconds, st.energy_j};
}

}  // namespace

int main() {
  using namespace ehdnn;
  using namespace ehdnn::bench;
  std::cout << "Fig. 8 - First FC of MNIST (256x256): latency and energy by implementation\n";

  Rng rng(808);
  std::vector<std::pair<std::string, Row>> rows;
  rows.push_back({"CPU element-wise (SONIC)", run_with(Framework::kSonic, 0, rng)});
  rows.push_back({"LEA dense rows (BASE/TAILS)", run_with(Framework::kBase, 0, rng)});
  for (std::size_t k : {32u, 64u, 128u}) {
    rows.push_back({"ACE BCM k=" + std::to_string(k), run_with(Framework::kAcePlain, k, rng)});
  }

  const double base_lat = rows[0].second.latency_s;
  const double base_e = rows[0].second.energy_j;
  Table t({"Implementation", "Latency", "Energy", "Latency vs CPU", "Energy vs CPU",
           "Weights (words)"});
  for (auto& [name, r] : rows) {
    std::size_t words = 256 * 256;
    if (name.find("k=") != std::string::npos) {
      const std::size_t k = std::stoul(name.substr(name.find("k=") + 2));
      words = 256 * 256 / k;
    }
    t.add_row({name, ms(r.latency_s), mj(r.energy_j),
               Table::num(base_lat / r.latency_s, 1) + "x faster",
               Table::num(base_e / r.energy_j, 1) + "x less", std::to_string(words)});
  }
  t.print(std::cout);
  std::cout << "Paper shape: BCM reduces FC latency/energy by tens of times, more with\n"
               "larger blocks (limited by accuracy degradation - see ablation_overflow).\n";
  return 0;
}
