// Perf-regression harness (see BENCHMARKS.md).
//
// Times the hot simulation kernels twice — once through the device's
// scalar per-word reference path (set_bulk_enabled(false)) and once
// through the bulk fast paths — plus one end-to-end model, verifying on
// every run that the two paths produce bit-exact outputs and identical
// modeled cycle/energy totals. Results are written as BENCH_micro.json
// and BENCH_e2e.json in the working directory so successive PRs leave a
// measured trajectory.
//
// Usage: perf_harness [--smoke] [--out-dir DIR] [--check-against DIR]
//   --smoke    tiny sizes and rep counts; used by the ctest `bench_smoke`
//              entry so harness bit-rot (or a bulk/scalar divergence)
//              fails tier-1.
//   --check-against DIR
//              perf-regression gate (the CI entry): after measuring,
//              compare against DIR's committed BENCH_micro.json /
//              BENCH_e2e.json. Modeled cycle/energy totals must match the
//              baseline exactly (1e-9 relative) — they are deterministic,
//              so any drift means the cost model or an execution path
//              changed and the baselines need a deliberate refresh. Host
//              wall-clock is machine-dependent and compared
//              advisory-only (printed, never fails the gate).
// Exit code is non-zero if any equivalence check fails, 3 on baseline
// drift.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/ace/compiled_model.h"
#include "dsp/circulant.h"
#include "dsp/fft.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "quant/quantize.h"
#include "sim/fleet.h"
#include "util/rng.h"

namespace {

using namespace ehdnn;
using fx::q15_t;

double now_ns() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

constexpr double kCostRelTol = 1e-9;  // aggregated FP sums vs per-word sums

bool close(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  return std::abs(a - b) <= kCostRelTol * scale;
}

struct DeviceRun {
  std::vector<q15_t> output;
  double cycles = 0.0;   // modeled cycles per inference
  double energy = 0.0;   // modeled joules per inference
  double wall_ns = 0.0;  // host wall-clock per inference
};

DeviceRun run_device_workload(const quant::QuantModel& qm, const std::vector<q15_t>& qin,
                              const dev::DeviceConfig& cfg, bool bulk, int reps) {
  dev::Device dev(cfg);
  dev.set_bulk_enabled(bulk);
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  auto rt = flex::make_ace_runtime();
  const flex::RunOptions opts;

  DeviceRun r;
  // Warm-up run doubles as the modeled-cost measurement (the modeled
  // totals are deterministic and identical across runs).
  const double c0 = dev.trace().total_cycles();
  const double e0 = dev.trace().total_energy();
  auto st = rt->infer(dev, cm, qin, opts);
  r.output = std::move(st.output);
  r.cycles = dev.trace().total_cycles() - c0;
  r.energy = dev.trace().total_energy() - e0;

  const double t0 = now_ns();
  for (int i = 0; i < reps; ++i) rt->infer(dev, cm, qin, opts);
  r.wall_ns = (now_ns() - t0) / static_cast<double>(reps);
  return r;
}

struct KernelResult {
  std::string name;
  int reps = 0;
  std::optional<double> wall_ns_scalar;  // absent for host-only kernels
  double wall_ns_bulk = 0.0;
  std::optional<double> modeled_cycles;
  std::optional<double> modeled_energy;
  // Fleet entry only: population size / wall seconds. Advisory like every
  // wall figure, but check_against warns when it drops below the
  // committed baseline's floor.
  std::optional<double> devices_per_s;
  bool bit_exact = true;
  bool cost_match = true;

  std::optional<double> speedup() const {
    if (!wall_ns_scalar || wall_ns_bulk <= 0.0) return std::nullopt;
    return *wall_ns_scalar / wall_ns_bulk;
  }
  bool ok() const { return bit_exact && cost_match; }
};

KernelResult bench_layer(const std::string& name, const bench::LayerWorkload& w, int reps) {
  const dev::DeviceConfig cfg;
  const DeviceRun scalar = run_device_workload(w.qm, w.qin, cfg, /*bulk=*/false, reps);
  const DeviceRun bulk = run_device_workload(w.qm, w.qin, cfg, /*bulk=*/true, reps);

  KernelResult r;
  r.name = name;
  r.reps = reps;
  r.wall_ns_scalar = scalar.wall_ns;
  r.wall_ns_bulk = bulk.wall_ns;
  r.modeled_cycles = bulk.cycles;
  r.modeled_energy = bulk.energy;
  r.bit_exact = scalar.output == bulk.output;
  r.cost_match = close(scalar.cycles, bulk.cycles) && close(scalar.energy, bulk.energy);
  return r;
}

KernelResult bench_fft(std::size_t n, int reps) {
  Rng rng(n);
  std::vector<fx::cq15> buf(n), work(n);
  for (auto& c : buf) {
    c = {fx::to_q15(rng.uniform(-0.5, 0.5)), fx::to_q15(rng.uniform(-0.5, 0.5))};
  }
  dsp::fft_plan(n);  // plan build outside the timed region
  const double t0 = now_ns();
  for (int i = 0; i < reps; ++i) {
    work = buf;
    dsp::fft_q15(work, dsp::FftScaling::kFixedScale);
  }
  KernelResult r;
  r.name = "fft_q15_" + std::to_string(n);
  r.reps = reps;
  r.wall_ns_bulk = (now_ns() - t0) / static_cast<double>(reps);
  return r;
}

KernelResult bench_circulant(std::size_t k, int reps) {
  Rng rng(k);
  std::vector<q15_t> c(k), x(k);
  for (std::size_t i = 0; i < k; ++i) {
    c[i] = fx::to_q15(rng.uniform(-0.1, 0.1));
    x[i] = fx::to_q15(rng.uniform(-0.5, 0.5));
  }
  // "Scalar" = the allocating vector API; "bulk" = the scratch overload.
  // Both loops get an untimed warm-up pass so allocator and cache state
  // don't bias whichever runs first.
  const auto ref = dsp::circulant_matvec_q15(c, x, dsp::FftScaling::kBlockFloat);
  dsp::CirculantScratchQ15 scratch;
  std::vector<q15_t> out(k);
  int exponent = 0;
  for (int i = 0; i < reps / 4 + 1; ++i) {
    const auto v = dsp::circulant_matvec_q15(c, x, dsp::FftScaling::kBlockFloat);
    (void)v;
    exponent = dsp::circulant_matvec_q15(c, x, dsp::FftScaling::kBlockFloat, scratch, out);
  }
  // The two paths share ~98% of their work (the FFTs), so the scratch
  // path's margin is a few hundred ns of allocator traffic on a ~17 us
  // run. Two serial timed loops can't resolve that: CPU frequency drift
  // between the loops is the same order of magnitude and once read as a
  // 0.98 "regression". Interleave the measurements in small alternating
  // chunks so both paths sample the same frequency/thermal state.
  double scalar_total_ns = 0.0, bulk_total_ns = 0.0;
  const int chunk = 25;
  for (int done = 0; done < reps; done += chunk) {
    const int n = std::min(chunk, reps - done);
    const double t0 = now_ns();
    for (int i = 0; i < n; ++i) {
      const auto v = dsp::circulant_matvec_q15(c, x, dsp::FftScaling::kBlockFloat);
      (void)v;
    }
    const double t1 = now_ns();
    scalar_total_ns += t1 - t0;
    for (int i = 0; i < n; ++i) {
      exponent = dsp::circulant_matvec_q15(c, x, dsp::FftScaling::kBlockFloat, scratch, out);
    }
    bulk_total_ns += now_ns() - t1;
  }
  KernelResult r;
  r.name = "circulant_matvec_q15_" + std::to_string(k);
  r.reps = reps;
  r.wall_ns_scalar = scalar_total_ns / static_cast<double>(reps);
  r.wall_ns_bulk = bulk_total_ns / static_cast<double>(reps);
  r.bit_exact = out == ref.data && exponent == ref.exponent;
  return r;
}

// Fleet-engine throughput: a homogeneous flex population on a synthetic
// square harvest, driven by the event queue (jobs=1). The modeled totals
// reuse the harness's cycle/energy slots — "cycles" is the scheduler
// slice count and "energy" the population's modeled joules, both
// deterministic, so the CI gate pins the engine's semantics exactly;
// wall-clock (and the devices/s line) stays advisory like every kernel.
KernelResult bench_fleet(bool smoke) {
  sim::FleetConfig cfg;
  cfg.source = "square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5";
  cfg.per_device_detail = false;
  sim::FleetGroup g;
  g.name = "bench";
  g.count = smoke ? 32 : 512;
  g.agenda.runtime = "flex";
  cfg.groups.push_back(g);

  const double t0 = now_ns();
  const sim::FleetReport rep = sim::run_fleet(cfg);
  const double wall = now_ns() - t0;

  KernelResult r;
  r.name = "fleet_throughput_" + std::to_string(g.count);
  r.reps = 1;
  r.wall_ns_bulk = wall;
  r.modeled_cycles = static_cast<double>(rep.total_steps);
  r.modeled_energy = rep.total_energy_j;
  r.devices_per_s = g.count / (wall * 1e-9);
  r.bit_exact = rep.jobs_completed == rep.total_jobs;  // every job must finish
  std::printf("fleet throughput: %d devices in %.2f s (%.0f devices/s, %ld slices)\n",
              g.count, wall * 1e-9, g.count / (wall * 1e-9), rep.total_steps);
  return r;
}

// 12 significant digits so the committed baselines round-trip well below
// the gate's 1e-9 relative tolerance (6 digits would quantize right at it).
void json_opt(std::FILE* f, const char* key, const std::optional<double>& v,
              const char* suffix) {
  if (v) {
    std::fprintf(f, "\"%s\": %.12g%s", key, *v, suffix);
  } else {
    std::fprintf(f, "\"%s\": null%s", key, suffix);
  }
}

bool write_micro_json(const std::string& path, const std::vector<KernelResult>& rs,
                      bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_harness: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": \"ehdnn-perf-micro-v1\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const KernelResult& r = rs[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"reps\": %d, ", r.name.c_str(), r.reps);
    json_opt(f, "wall_ns_per_run_scalar", r.wall_ns_scalar, ", ");
    std::fprintf(f, "\"wall_ns_per_run_bulk\": %.12g, ", r.wall_ns_bulk);
    if (r.devices_per_s) json_opt(f, "devices_per_s", r.devices_per_s, ", ");
    json_opt(f, "speedup", r.speedup(), ", ");
    json_opt(f, "modeled_cycles", r.modeled_cycles, ", ");
    json_opt(f, "modeled_energy_j", r.modeled_energy, ", ");
    std::fprintf(f, "\"bit_exact\": %s, \"cost_match\": %s}%s\n",
                 r.bit_exact ? "true" : "false", r.cost_match ? "true" : "false",
                 i + 1 < rs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

bool write_e2e_json(const std::string& path, const KernelResult& r, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_harness: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": \"ehdnn-perf-e2e-v1\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f, "  \"model\": \"%s\",\n  \"reps\": %d,\n", r.name.c_str(), r.reps);
  std::fprintf(f, "  ");
  json_opt(f, "wall_ns_per_run_scalar", r.wall_ns_scalar, ",\n  ");
  std::fprintf(f, "\"wall_ns_per_run_bulk\": %.12g,\n  ", r.wall_ns_bulk);
  json_opt(f, "speedup", r.speedup(), ",\n  ");
  json_opt(f, "modeled_cycles", r.modeled_cycles, ",\n  ");
  json_opt(f, "modeled_energy_j", r.modeled_energy, ",\n  ");
  std::fprintf(f, "\"bit_exact\": %s,\n  \"cost_match\": %s\n}\n",
               r.bit_exact ? "true" : "false", r.cost_match ? "true" : "false");
  std::fclose(f);
  return true;
}

// --- baseline gate ----------------------------------------------------------
// Minimal parsing of the harness's own JSON output (key scanning — the
// writer above controls the format, so no general JSON parser is needed).

// Prefix parse by design: the value sits mid-line, so unlike
// util/parse.h's full-field parse_double this must NOT require consuming
// the rest of the text (a JSON `null` simply fails to parse).
std::optional<double> scan_num(const std::string& text, const std::string& key,
                               std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return std::nullopt;
  const char* s = text.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return std::nullopt;  // e.g. null
  return v;
}

std::optional<std::string> scan_str(const std::string& text, const std::string& key,
                                    std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t start = at + needle.size();
  const std::size_t close = text.find('"', start);
  if (close == std::string::npos) return std::nullopt;
  return text.substr(start, close - start);
}

struct Baseline {
  std::string mode;
  // Per kernel name (micro) or model name (e2e).
  struct Entry {
    std::optional<double> cycles, energy, wall_bulk, devices_per_s;
  };
  std::vector<std::pair<std::string, Entry>> entries;
};

std::optional<Baseline> load_baseline(const std::string& path, bool per_line) {
  std::ifstream f(path);
  if (!f.good()) {
    std::fprintf(stderr, "perf_harness: cannot read baseline %s\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  Baseline b;
  b.mode = scan_str(text, "mode").value_or("");
  if (per_line) {
    // BENCH_micro.json: one kernel object per line.
    std::stringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      const auto name = scan_str(line, "name");
      if (!name) continue;
      b.entries.push_back(
          {*name, {scan_num(line, "modeled_cycles"), scan_num(line, "modeled_energy_j"),
                   scan_num(line, "wall_ns_per_run_bulk"), scan_num(line, "devices_per_s")}});
    }
  } else {
    // BENCH_e2e.json: a single object.
    const auto name = scan_str(text, "model");
    if (name) {
      b.entries.push_back(
          {*name, {scan_num(text, "modeled_cycles"), scan_num(text, "modeled_energy_j"),
                   scan_num(text, "wall_ns_per_run_bulk")}});
    }
  }
  return b;
}

// Compares one measured kernel against the baseline entry of the same
// name. Returns false on modeled-cost drift; wall-clock is advisory.
bool check_entry(const KernelResult& r, const Baseline& b) {
  for (const auto& [name, e] : b.entries) {
    if (name != r.name) continue;
    bool ok = true;
    if (e.cycles && r.modeled_cycles && !close(*e.cycles, *r.modeled_cycles)) {
      std::fprintf(stderr, "perf gate: %s modeled_cycles drifted %.6g -> %.6g\n",
                   r.name.c_str(), *e.cycles, *r.modeled_cycles);
      ok = false;
    }
    if (e.energy && r.modeled_energy && !close(*e.energy, *r.modeled_energy)) {
      std::fprintf(stderr, "perf gate: %s modeled_energy_j drifted %.6g -> %.6g\n",
                   r.name.c_str(), *e.energy, *r.modeled_energy);
      ok = false;
    }
    if (e.cycles.has_value() != r.modeled_cycles.has_value() ||
        e.energy.has_value() != r.modeled_energy.has_value()) {
      std::fprintf(stderr, "perf gate: %s modeled fields appeared/vanished vs baseline\n",
                   r.name.c_str());
      ok = false;
    }
    if (e.wall_bulk && r.wall_ns_bulk > 0.0) {
      std::printf("perf gate: %-28s wall %.2fx baseline (advisory)\n", r.name.c_str(),
                  r.wall_ns_bulk / *e.wall_bulk);
    }
    // Fleet-throughput floor: the committed devices/s is the minimum the
    // engine is expected to sustain; a drop below it is loud but — like
    // every wall figure on shared CI machines — advisory, never a FAIL.
    if (e.devices_per_s && r.devices_per_s && *r.devices_per_s < *e.devices_per_s) {
      std::fprintf(stderr,
                   "perf gate: %s throughput %.0f devices/s BELOW the committed floor "
                   "%.0f (advisory — investigate before refreshing the baseline)\n",
                   r.name.c_str(), *r.devices_per_s, *e.devices_per_s);
    }
    return ok;
  }
  std::printf("perf gate: %s not in baseline (new kernel; advisory)\n", r.name.c_str());
  return true;
}

// The CI perf-regression gate. Fails (false) only on deterministic
// modeled-cost drift or a mode mismatch, never on wall-clock.
bool check_against(const std::string& dir, const std::vector<KernelResult>& micro,
                   const KernelResult& e2e, bool smoke) {
  const auto bm = load_baseline(dir + "/BENCH_micro.json", /*per_line=*/true);
  const auto be = load_baseline(dir + "/BENCH_e2e.json", /*per_line=*/false);
  if (!bm || !be) return false;
  if (bm->entries.empty() || be->entries.empty()) {
    // An unparsable baseline must fail loudly, not pass vacuously (the
    // scanner expects the harness's own one-kernel-per-line format).
    std::fprintf(stderr, "perf gate: baseline parsed to zero entries — reformatted file?\n");
    return false;
  }
  const std::string want = smoke ? "smoke" : "full";
  if (bm->mode != want || be->mode != want) {
    std::fprintf(stderr,
                 "perf gate: baseline mode \"%s\"/\"%s\" does not match this run (\"%s\") — "
                 "run the gate in the mode the baselines were recorded in\n",
                 bm->mode.c_str(), be->mode.c_str(), want.c_str());
    return false;
  }
  bool ok = true;
  for (const auto& r : micro) ok = check_entry(r, *bm) && ok;
  ok = check_entry(e2e, *be) && ok;
  for (const auto& [name, e] : bm->entries) {
    bool found = false;
    for (const auto& r : micro) found = found || r.name == name;
    if (!found) {
      std::fprintf(stderr, "perf gate: baseline kernel %s no longer measured\n",
                   name.c_str());
      ok = false;
    }
  }
  // Same reverse check for the e2e baseline: a renamed e2e model must not
  // turn the gate into a vacuous pass.
  for (const auto& [name, e] : be->entries) {
    if (name != e2e.name) {
      std::fprintf(stderr, "perf gate: baseline e2e model %s no longer measured (now %s)\n",
                   name.c_str(), e2e.name.c_str());
      ok = false;
    }
  }
  std::printf("perf gate: %s\n", ok ? "PASS (modeled costs match baseline)" : "FAIL");
  return ok;
}

void print_result(const KernelResult& r) {
  if (r.wall_ns_scalar) {
    std::printf("%-28s %10.0f ns -> %10.0f ns  (%.2fx)%s\n", r.name.c_str(),
                *r.wall_ns_scalar, r.wall_ns_bulk, *r.speedup(),
                r.ok() ? "" : "  MISMATCH");
  } else {
    std::printf("%-28s %25.0f ns\n", r.name.c_str(), r.wall_ns_bulk);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_dir = ".";
  std::string check_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      check_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_harness [--smoke] [--out-dir DIR] [--check-against DIR]\n");
      return 2;
    }
  }

  std::vector<KernelResult> micro;

  // conv2d + FC are the acceptance kernels; bcm covers Algorithm 1. Full
  // sizes come from bench_common so micro_kernels measures the same
  // quantized instances.
  if (smoke) {
    Rng wr(1);
    nn::Model m;
    m.add<nn::Conv2D>(2, 4, 3, 3)->init(wr);
    micro.push_back(bench_layer("conv2d", bench::make_layer_workload(std::move(m), {2, 8, 8}, 11), 2));
  } else {
    micro.push_back(bench_layer("conv2d", bench::conv2d_micro_workload(), 20));
  }
  if (smoke) {
    Rng wr(2);
    nn::Model m;
    m.add<nn::Dense>(128, 32)->init(wr);
    micro.push_back(bench_layer("fc", bench::make_layer_workload(std::move(m), {128}, 12), 4));
  } else {
    micro.push_back(bench_layer("fc", bench::fc_micro_workload(), 50));
  }
  {
    Rng wr(3);
    nn::Model m;
    if (smoke) {
      m.add<nn::BcmDense>(128, 128, 64)->init(wr);
      micro.push_back(bench_layer("bcm", bench::make_layer_workload(std::move(m), {128}, 13), 2));
    } else {
      m.add<nn::BcmDense>(512, 512, 128)->init(wr);
      micro.push_back(bench_layer("bcm", bench::make_layer_workload(std::move(m), {512}, 13), 20));
    }
  }
  micro.push_back(bench_fft(smoke ? 64 : 256, smoke ? 50 : 2000));
  micro.push_back(bench_circulant(smoke ? 64 : 256, smoke ? 50 : 1000));
  micro.push_back(bench_fleet(smoke));

  std::printf("micro kernels (scalar -> bulk):\n");
  for (const auto& r : micro) print_result(r);

  // End-to-end: the compressed MNIST model under continuous power.
  KernelResult e2e;
  {
    Rng rng(0xb0a710ad);
    const auto qm = bench::make_qmodel(models::Task::kMnist, /*compressed=*/true, rng);
    const auto qin = quant::quantize_input(
        qm, bench::random_input_tensor(models::model_info(models::Task::kMnist).input_shape,
                                       rng));
    const dev::DeviceConfig cfg = bench::device_for(/*compressed=*/true);
    const int reps = smoke ? 1 : 5;
    const DeviceRun scalar = run_device_workload(qm, qin, cfg, false, reps);
    const DeviceRun bulk = run_device_workload(qm, qin, cfg, true, reps);
    e2e.name = "mnist";
    e2e.reps = reps;
    e2e.wall_ns_scalar = scalar.wall_ns;
    e2e.wall_ns_bulk = bulk.wall_ns;
    e2e.modeled_cycles = bulk.cycles;
    e2e.modeled_energy = bulk.energy;
    e2e.bit_exact = scalar.output == bulk.output;
    e2e.cost_match = close(scalar.cycles, bulk.cycles) && close(scalar.energy, bulk.energy);
  }
  std::printf("end-to-end:\n");
  print_result(e2e);

  const bool wrote = write_micro_json(out_dir + "/BENCH_micro.json", micro, smoke) &&
                     write_e2e_json(out_dir + "/BENCH_e2e.json", e2e, smoke);

  bool ok = e2e.ok();
  for (const auto& r : micro) ok = ok && r.ok();
  if (!ok) {
    std::fprintf(stderr, "perf_harness: bulk/scalar equivalence FAILED\n");
    return 1;
  }
  if (!wrote) return 1;
  if (!check_dir.empty() && !check_against(check_dir, micro, e2e, smoke)) return 3;
  return 0;
}
