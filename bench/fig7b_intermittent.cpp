// Fig. 7(b): inference time under intermittent power (100 uF capacitor).
// BASE and plain ACE have no intermittence support and never complete
// (the paper's "X"); ACE+FLEX completes with a 1-2% latency increase over
// continuous power, and is 5.1/4.7/3.3x faster than SONIC and
// 3.8/2.4/1.7x faster than TAILS on MNIST/HAR/OKG.

#include "bench_common.h"

int main() {
  using namespace ehdnn;
  using namespace ehdnn::bench;
  std::cout << "Fig. 7(b) - Inference time on intermittent power\n"
               "(capacitor scaled to 10 uF to preserve the paper's burst-to-inference\n"
               " energy ratio on our faster absolute latencies; see EXPERIMENTS.md)\n";

  const Framework fws[] = {Framework::kBase, Framework::kAcePlain, Framework::kSonic,
                           Framework::kTails, Framework::kAceFlex};
  const models::Task tasks[] = {models::Task::kMnist, models::Task::kHar, models::Task::kOkg};
  const double paper_speedup[3][2] = {{5.1, 3.8}, {4.7, 2.4}, {3.3, 1.7}};  // vs SONIC, TAILS

  Table t({"Task", "Framework", "On-time", "Total (incl. recharge)", "Reboots",
           "ACE+FLEX speedup", "Paper"});
  for (int ti = 0; ti < 3; ++ti) {
    const auto task = tasks[ti];
    double on[5] = {};
    bool done[5] = {};
    long reboots[5] = {};
    double total[5] = {};
    for (int fi = 0; fi < 5; ++fi) {
      PowerSpec ps;
      ps.continuous = false;
      // BASE/ACE livelock; cap their attempts so the bench terminates fast.
      const long max_reboots = (fi <= 1) ? 200 : 100000;
      const auto st = run_framework(fws[fi], task, ps, max_reboots);
      on[fi] = st.on_seconds;
      total[fi] = st.total_seconds();
      done[fi] = st.completed();
      reboots[fi] = st.reboots;
    }
    for (int fi = 0; fi < 5; ++fi) {
      std::string speed = "-", paper = "-";
      if (fws[fi] == Framework::kSonic) {
        speed = Table::num(on[fi] / on[4], 2) + "x";
        paper = Table::num(paper_speedup[ti][0], 1) + "x";
      } else if (fws[fi] == Framework::kTails) {
        speed = Table::num(on[fi] / on[4], 2) + "x";
        paper = Table::num(paper_speedup[ti][1], 1) + "x";
      } else if (fws[fi] == Framework::kAceFlex) {
        speed = "1.00x";
        paper = "1x";
      }
      t.add_row({fi == 0 ? models::task_name(task) : "", framework_name(fws[fi]),
                 done[fi] ? ms(on[fi]) : "X (never completes)",
                 done[fi] ? ms(total[fi]) : "-", std::to_string(reboots[fi]), speed, paper});
    }
    // The paper's 1-2% overhead claim: ACE+FLEX intermittent vs continuous.
    PowerSpec cont;
    const auto c = run_framework(Framework::kAceFlex, task, cont);
    std::printf("%s: ACE+FLEX on-time overhead vs continuous: %+.2f%% (paper: 1-2%%)\n",
                models::task_name(task), 100.0 * (on[4] - c.on_seconds) / c.on_seconds);
  }
  t.print(std::cout);
  return 0;
}
