// Fig. 6: TAILS vs FLEX on the FFT-based BCM computation under
// intermittent power. TAILS tracks only loop indices, so a failure during
// the DMA/FFT/MPY/IFFT sequence rolls back to the block's start and its
// accumulator must be parity-committed to FRAM after every block; FLEX
// keeps the b0-b2 stage bits plus the live intermediates in its on-demand
// checkpoint and resumes mid-block.

#include "bench_common.h"
#include "nn/bcm_dense.h"

int main() {
  using namespace ehdnn;
  using namespace ehdnn::bench;
  std::cout << "Fig. 6 - TAILS vs FLEX on a BCM FC layer (intermittent power)\n";

  Rng rng(606);
  nn::Model m;
  m.add<nn::BcmDense>(512, 512, 128)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) {
    nn::Tensor t({512});
    for (std::size_t j = 0; j < 512; ++j) t[j] = static_cast<float>(rng.uniform(-0.9, 0.9));
    calib.push_back(std::move(t));
  }
  const auto qm = quant::quantize(m, calib, {512});
  std::vector<fx::q15_t> input(512);
  for (auto& v : input) v = static_cast<fx::q15_t>(rng.next_u64());

  Table t({"Runtime", "On-time", "Energy", "Reboots", "Steady commits",
           "On-demand ckpts", "Re-executed units"});
  std::vector<fx::q15_t> outputs[2];
  int row = 0;
  for (auto fw : {Framework::kTails, Framework::kAceFlex}) {
    dev::Device dev;
    // A small capacitor makes failures frequent relative to this single
    // layer, accentuating the rollback difference.
    power::ConstantSource src(2e-3);
    power::CapacitorConfig ccfg;
    ccfg.capacitance_f = 4.7e-6;
    power::CapacitorSupply cap(src, ccfg);
    dev.attach_supply(&cap);
    const auto cm = ace::compile(qm, dev);
    flex::RunOptions opts;
    opts.flex_v_warn = power::warn_voltage_for(
        ccfg, flex::worst_checkpoint_energy(cm, dev.cost()) + 2e-6, 3.0);
    auto rt = make_runtime(fw);
    const auto st = rt->infer(dev, cm, input, opts);
    outputs[row] = st.output;
    t.add_row({framework_name(fw), ms(st.on_seconds), mj(st.energy_j),
               std::to_string(st.reboots), std::to_string(st.progress_commits),
               std::to_string(st.checkpoints), std::to_string(st.wasted_units())});
    ++row;
  }
  t.print(std::cout);
  std::cout << "Outputs bit-identical across runtimes: "
            << (outputs[0] == outputs[1] ? "yes" : "NO") << "\n";
  return 0;
}
