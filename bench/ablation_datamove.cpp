// Ablation (SSIII-B): "large vector of data is moved with DMA while a
// single data is moved with CPU". Sweeps transfer sizes and reports the
// cycle/energy cost of each method plus the crossover ACE's dataflow
// planner uses.

#include <iostream>

#include "core/ace/compiled_model.h"
#include "device/device.h"
#include "util/table.h"

int main() {
  using namespace ehdnn;
  std::cout << "Ablation - DMA vs CPU data movement (FRAM -> SRAM)\n";

  Table t({"Words", "CPU cycles", "CPU energy (nJ)", "DMA cycles", "DMA energy (nJ)",
           "Planner picks"});
  for (std::size_t words : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    dev::Device cpu_dev, dma_dev;
    for (std::size_t i = 0; i < words; ++i) {
      cpu_dev.cpu_ops(2);
      cpu_dev.write(dev::MemKind::kSram, i, cpu_dev.read(dev::MemKind::kFram, i));
    }
    dma_dev.dma_copy(dev::MemKind::kFram, 0, dev::MemKind::kSram, 0, words);
    t.add_row({std::to_string(words), Table::num(cpu_dev.trace().total_cycles(), 0),
               Table::num(cpu_dev.trace().total_energy() * 1e9, 2),
               Table::num(dma_dev.trace().total_cycles(), 0),
               Table::num(dma_dev.trace().total_energy() * 1e9, 2),
               ace::use_dma(dev::CostModel{}, words) ? "DMA" : "CPU"});
  }
  t.print(std::cout);
  return 0;
}
