// Shared plumbing for the paper-reproduction benches: model construction,
// framework dispatch, power scenarios, and the paper's reported numbers
// (EXPERIMENTS.md records measured-vs-paper for each).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "models/zoo.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "power/monitor.h"
#include "quant/quantize.h"
#include "util/rng.h"
#include "util/table.h"

namespace ehdnn::bench {

enum class Framework { kBase, kSonic, kTails, kAceFlex, kAcePlain };

inline const char* framework_name(Framework f) {
  switch (f) {
    case Framework::kBase: return "BASE";
    case Framework::kSonic: return "SONIC";
    case Framework::kTails: return "TAILS";
    case Framework::kAceFlex: return "ACE+FLEX";
    case Framework::kAcePlain: return "ACE";
  }
  return "?";
}

// Random tensor in the RAD-normalized activation range.
inline nn::Tensor random_input_tensor(const std::vector<std::size_t>& shape, Rng& rng) {
  nn::Tensor t(shape);
  for (std::size_t j = 0; j < t.size(); ++j) {
    t[j] = static_cast<float>(rng.uniform(-0.9, 0.9));
  }
  return t;
}

// Single-layer micro workload shared by micro_kernels and perf_harness,
// so both measure the same quantized kernel instance (same seeds, same
// calibration) and can't silently drift apart.
struct LayerWorkload {
  quant::QuantModel qm;
  std::vector<fx::q15_t> qin;
};

inline LayerWorkload make_layer_workload(nn::Model m, const std::vector<std::size_t>& shape,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_input_tensor(shape, rng));
  LayerWorkload w;
  w.qm = quant::quantize(m, calib, shape);
  w.qin = quant::quantize_input(w.qm, random_input_tensor(shape, rng));
  return w;
}

// The canonical full-size micro workloads (BENCH_micro.json's conv2d/fc).
inline LayerWorkload conv2d_micro_workload() {
  Rng wr(1);
  nn::Model m;
  m.add<nn::Conv2D>(8, 16, 5, 5)->init(wr);
  return make_layer_workload(std::move(m), {8, 16, 16}, 11);
}

inline LayerWorkload fc_micro_workload() {
  Rng wr(2);
  nn::Model m;
  m.add<nn::Dense>(512, 128)->init(wr);
  return make_layer_workload(std::move(m), {512}, 12);
}

// Timing and energy are data-independent (fixed loop bounds), so the
// benches run randomly initialized models; accuracy is Table II's job.
// (Shared with the scenario engine — see models::make_deployed_qmodel.)
inline quant::QuantModel make_qmodel(models::Task task, bool compressed, Rng& rng) {
  return models::make_deployed_qmodel(task, compressed, rng);
}

// Device geometry for the deployed models (enlarged FRAM for the
// uncompressed baselines) — shared with the scenario engine.
inline dev::DeviceConfig device_for(bool compressed) {
  return models::deployment_device_config(compressed);
}

// Intermittent-power scenario. The paper's testbed pairs a 100 uF buffer
// with multi-second inferences, i.e. one burst covers a tiny fraction of
// an inference. Our modelled inferences are absolutely faster (tens of
// ms), so the default capacitor is scaled down to 10 uF to preserve that
// regime — burst energy (~30 uJ) a small fraction of inference energy
// (0.2-13 mJ) — which is what makes BASE/ACE unable to finish and
// exercises the checkpointing strategies exactly as in Fig. 7(b).
struct PowerSpec {
  bool continuous = true;
  double capacitance_f = 10e-6;
  double harvest_w = 1.2e-3;  // below the ~5 mW active draw: net-drain
};

inline std::unique_ptr<flex::InferenceRuntime> make_runtime(Framework f) {
  switch (f) {
    case Framework::kSonic: return flex::make_sonic_runtime();
    case Framework::kTails: return flex::make_tails_runtime();
    case Framework::kAceFlex: return flex::make_flex_runtime();
    case Framework::kBase:
    case Framework::kAcePlain: return flex::make_ace_runtime();
  }
  return nullptr;
}

// Runs one inference of `task` under `fw`; BASE/SONIC/TAILS use the dense
// model, ACE/ACE+FLEX the RAD-compressed one.
inline flex::RunStats run_framework(Framework fw, models::Task task, const PowerSpec& ps,
                                    long max_reboots = 3000) {
  const bool compressed = fw == Framework::kAceFlex || fw == Framework::kAcePlain;
  Rng rng(0xb0a710ad + static_cast<std::uint64_t>(task));
  const auto qm = make_qmodel(task, compressed, rng);

  dev::Device dev(device_for(compressed));
  power::ContinuousPower cont;
  power::ConstantSource src(ps.harvest_w);
  power::CapacitorConfig ccfg;
  ccfg.capacitance_f = ps.capacitance_f;
  power::CapacitorSupply cap(src, ccfg);
  dev.attach_supply(ps.continuous ? static_cast<dev::PowerSupply*>(&cont) : &cap);

  const auto cm = ace::compile(qm, dev);
  std::vector<fx::q15_t> input(qm.layers.front().in_size());
  for (auto& v : input) v = static_cast<fx::q15_t>(rng.next_u64());

  flex::RunOptions opts;
  opts.max_reboots = max_reboots;
  if (!ps.continuous) {
    opts.flex_v_warn = power::warn_voltage_for(
        ccfg, flex::worst_checkpoint_energy(cm, dev.cost()) + 5e-6, 3.0);
  }
  auto rt = make_runtime(fw);
  return rt->infer(dev, cm, input, opts);
}

inline std::string ms(double seconds) { return Table::num(seconds * 1e3, 2) + " ms"; }
inline std::string mj(double joules) { return Table::num(joules * 1e3, 3) + " mJ"; }

}  // namespace ehdnn::bench
