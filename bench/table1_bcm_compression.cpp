// Table I: BCM compression for a 512x512 fully connected layer.
// The paper counts 4-byte weights (1048576-byte dense kernel); RAD's
// 16-bit quantization halves both columns and leaves the reduction
// untouched, so both are printed.

#include <iostream>

#include "compress/bcm.h"
#include "util/table.h"

int main() {
  using namespace ehdnn;
  std::cout << "Table I - BCM compression for 512*512 fully connected layer\n";
  Table t({"Kernel Size", "Block size", "Compressed kernel", "Storage reduction",
           "Paper reduction", "Compressed @16-bit"});
  const std::size_t dense32 = cmp::dense_storage_bytes(512, 512, 32);
  const double paper[] = {93.75, 96.87, 98.43, 99.21, 99.60};
  int row = 0;
  for (std::size_t block : {16u, 32u, 64u, 128u, 256u}) {
    const std::size_t bcm32 = cmp::bcm_storage_bytes(512, 512, block, 32);
    const std::size_t bcm16 = cmp::bcm_storage_bytes(512, 512, block, 16);
    const double reduction = 100.0 * (1.0 - static_cast<double>(bcm32) / dense32);
    t.add_row({row == 2 ? std::to_string(dense32) + " Byte" : "", std::to_string(block),
               std::to_string(bcm32) + " Byte", Table::num(reduction, 2) + "%",
               Table::num(paper[row], 2) + "%", std::to_string(bcm16) + " Byte"});
    ++row;
  }
  t.print(std::cout);
  return 0;
}
