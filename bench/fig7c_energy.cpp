// Fig. 7(c): energy consumption and per-rail breakdown under intermittent
// power. Paper: ACE+FLEX saves 6.1/10.9/6.25x energy vs SONIC and
// 4.31/5.26/3.05x vs TAILS on MNIST/HAR/OKG (LEA and DMA run in ultra-low
// power modes, and FLEX avoids SONIC/TAILS' continuous FRAM commits).

#include "bench_common.h"

int main() {
  using namespace ehdnn;
  using namespace ehdnn::bench;
  std::cout << "Fig. 7(c) - Energy breakdown on intermittent power\n";

  const Framework fws[] = {Framework::kSonic, Framework::kTails, Framework::kAceFlex};
  const models::Task tasks[] = {models::Task::kMnist, models::Task::kHar, models::Task::kOkg};
  const double paper_saving[3][2] = {{6.1, 4.31}, {10.9, 5.26}, {6.25, 3.05}};

  Table t({"Task", "Framework", "Energy", "cpu", "lea", "dma", "fram wr", "fram rd",
           "ACE+FLEX saving", "Paper"});
  for (int ti = 0; ti < 3; ++ti) {
    const auto task = tasks[ti];
    flex::RunStats st[3];
    for (int fi = 0; fi < 3; ++fi) {
      PowerSpec ps;
      ps.continuous = false;
      st[fi] = run_framework(fws[fi], task, ps, 100000);
    }
    for (int fi = 0; fi < 3; ++fi) {
      auto rail = [&](dev::Rail r) {
        return Table::num(st[fi].energy_by_rail[static_cast<std::size_t>(r)] * 1e3, 3);
      };
      std::string saving = "1.00x", paper = "1x";
      if (fi < 2) {
        saving = Table::num(st[fi].energy_j / st[2].energy_j, 2) + "x";
        paper = Table::num(paper_saving[ti][fi], 2) + "x";
      }
      t.add_row({fi == 0 ? models::task_name(task) : "", framework_name(fws[fi]),
                 mj(st[fi].energy_j), rail(dev::Rail::kCpu), rail(dev::Rail::kLea),
                 rail(dev::Rail::kDma), rail(dev::Rail::kFramWrite), rail(dev::Rail::kFramRead),
                 saving, paper});
    }
  }
  t.print(std::cout);
  std::cout << "(rail columns in mJ)\n";
  return 0;
}
