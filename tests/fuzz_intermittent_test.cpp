// Crash-consistency fuzzing at scale (the property SONIC/TAILS and
// Stateful-CNN establish only anecdotally): for ANY failure schedule, an
// intermittent runtime's output must be bit-identical to its own
// continuous-power output. The FailureScheduleSupply replays >= 1500
// seeded schedules across SONIC, TAILS, FLEX, and TILE, aiming brown-outs
// at adversarial instants — mid-block, tearing FRAM progress commits,
// during FLEX checkpoint writes, inside tile cursor commits (between the
// double-buffer halves and on the epoch flip), and right on commit
// boundaries — and every run is checked against the continuous oracle.

#include <gtest/gtest.h>

#include "core/ace/compiled_model.h"
#include "core/flex/executor.h"
#include "core/flex/runtime.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "obs/events.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "power/failure_schedule.h"
#include "quant/quantize.h"
#include "sched/adaptive.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace ehdnn::flex {
namespace {

using fx::q15_t;

nn::Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-0.9, 0.9));
  }
  return t;
}

// Tiny models that still exercise every kernel kind (conv, pool, BCM/FFT,
// dense) — small enough that a thousand schedules stay fast, big enough
// that every commit protocol and checkpoint payload kind is hit.
quant::QuantModel mixed_model(Rng& rng) {
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::BcmDense>(2 * 4 * 4, 16, 16)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(16, 4)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 10, 10}, rng));
  return quant::quantize(m, calib, {1, 10, 10});
}

quant::QuantModel dense_model(Rng& rng) {
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::Dense>(2 * 4 * 4, 16)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(16, 4)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 10, 10}, rng));
  return quant::quantize(m, calib, {1, 10, 10});
}

struct FuzzCase {
  const char* runtime;
  bool bcm_model;       // mixed (BCM) model vs dense twin
  int schedules;        // seeded schedules replayed
  std::uint64_t seed0;  // first seed; seeds are seed0 .. seed0+schedules-1
  double flex_v_warn = 2.45;  // default; varied to hit eager/late monitors
  // Adaptive scheduler spec (sched::parse_adaptive_spec); null for the
  // table default. The rich-stuck const forecaster with demote=1 makes
  // nearly every schedule start on ACE and demote to FLEX at a failure
  // boot — so brown-outs land exactly on runtime-switch boots.
  const char* sched_spec = nullptr;
  // Opt the supply into the device's prepaid-headroom window: draws
  // buffer against a per-cycle budget and brown-outs land on the per-op
  // draws at settlement boundaries (torn settlement at the headroom
  // boundary) instead of mid-window.
  bool prepaid = false;
};

// >= 1500 schedules total, spread so every runtime sees every commit
// protocol it implements (SONIC and TILE are dense-only; TILE runs at
// three tile sizes so schedules tear single-MAC commits, the default
// grain, and the in-between — brown-outs land inside a tile, between the
// double-buffered cursor record's halves, and on the epoch-publish word),
// FLEX additionally runs
// with an eager (always-warning) and a late (never-warning) monitor, and
// the adaptive scheduler is forced through ACE->FLEX switch boots — in
// BOTH selection modes: the income-ladder cases pin tier choice via a
// rich-stuck const forecast, and the sel=deadline cases reach the same
// ACE-first choice through the completion model (unbounded burst makes
// the cheapest-energy tier win), so brown-outs land on deadline-mode
// decision boots and on the demotion switches they trigger.
constexpr FuzzCase kCases[] = {
    {"sonic", false, 250, 0x50000, 2.45},
    {"tails", false, 150, 0x51000, 2.45},
    {"tails", true, 150, 0x52000, 2.45},
    {"flex", true, 250, 0x53000, 2.45},
    {"flex", false, 100, 0x54000, 2.45},
    {"flex", true, 60, 0x55000, 3.5},     // eager: warns every cycle
    {"flex", true, 40, 0x56000, 2.2001},  // late: failures arrive unwarned
    {"tile", false, 80, 0x5d000, 2.45},
    {"tile:t=1", false, 40, 0x5e000, 2.45},  // every MAC is a commit
    {"tile:t=4", false, 60, 0x5f000, 2.45},
    {"adaptive", true, 120, 0x57000, 2.45, "adaptive:fc=const,w=9,rich=5e-3,demote=1"},
    {"adaptive", false, 80, 0x58000, 2.45, "adaptive:fc=const,w=9,rich=5e-3,demote=1"},
    {"adaptive", true, 70, 0x5c000, 2.45, "adaptive:sel=deadline,fc=const,w=9,demote=1"},
    {"adaptive", false, 50, 0x5b000, 2.45,
     "adaptive:sel=deadline,fc=periodic,demote=1"},
    // Prepaid-headroom window schedules: per-cycle budgets make the
    // device buffer draws and settle them in batches; failures fire on
    // the over-budget draw right after a settlement — the torn-settlement
    // boundary the prepaid contract must keep bit-exact.
    {"flex", true, 100, 0x60000, 2.45, nullptr, true},
    {"sonic", false, 80, 0x61000, 2.45, nullptr, true},
    {"tails", true, 60, 0x62000, 2.45, nullptr, true},
    {"tile", false, 60, 0x63000, 2.45, nullptr, true},
};

// Builds the case's runtime/policy honoring an adaptive spec override.
std::unique_ptr<RuntimePolicy> make_case_policy(const FuzzCase& fc) {
  if (fc.sched_spec != nullptr) {
    return sched::make_adaptive_policy(sched::parse_adaptive_spec(fc.sched_spec));
  }
  return sim::make_policy(fc.runtime);
}

TEST(FuzzIntermittent, CoversAtLeastFifteenHundredSchedules) {
  int total = 0;
  for (const auto& c : kCases) total += c.schedules;
  EXPECT_GE(total, 1500) << "acceptance: >= 1500 seeded schedules";
}

class CrashConsistency : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CrashConsistency, BitExactUnderSeededSchedules) {
  const FuzzCase fc = GetParam();
  Rng model_rng(1234);
  const auto qm = fc.bcm_model ? mixed_model(model_rng) : dense_model(model_rng);
  const auto input = quant::quantize_input(
      qm, random_tensor(qm.layers.front().in_shape, model_rng));
  auto rt = flex::make_policy_runtime(make_case_policy(fc));

  RunOptions opts;
  opts.flex_v_warn = fc.flex_v_warn;

  std::vector<q15_t> oracle;
  {
    dev::Device dev;
    power::ContinuousPower supply;
    dev.attach_supply(&supply);
    const auto cm = ace::compile(qm, dev);
    const RunStats cont = rt->infer(dev, cm, input, opts);
    ASSERT_TRUE(cont.completed());
    ASSERT_EQ(cont.reboots, 0);
    oracle = cont.output;
  }

  // Every schedule runs twice: once through the classic one-call infer()
  // and once through an explicit IntermittentExecutor start()/step()
  // drain — the incremental path the fleet harness uses, with the run
  // suspended between every slice. Both must match the continuous oracle
  // bit for bit and each other on every stat.
  auto policy = make_case_policy(fc);

  // Every schedule also runs under a lifecycle EventTrace, and the trace
  // must agree with the stats the runtime reports: one recovery per
  // reboot, exactly one cold boot on top of the recoveries, one brown-out
  // per reboot (the run completes, so no trailing unrecovered brown-out),
  // and simulated-time stamps that never run backwards. The ring is sized
  // so no case drops (the count invariants hold regardless; the
  // monotonicity walk needs the full event stream).
  obs::EventTrace trace;
  trace.set_capacity(std::size_t{1} << 16);
  auto check_trace_invariants = [&](long reboots, std::uint64_t seed,
                                    const char* path) {
    ASSERT_EQ(trace.count(obs::EventKind::kRecovery), reboots)
        << fc.runtime << " " << path << " seed " << seed;
    ASSERT_EQ(trace.count(obs::EventKind::kBoot),
              trace.count(obs::EventKind::kRecovery) + 1)
        << fc.runtime << " " << path << " seed " << seed;
    ASSERT_EQ(trace.count(obs::EventKind::kBrownOut), reboots)
        << fc.runtime << " " << path << " seed " << seed;
    ASSERT_EQ(trace.dropped(), 0)
        << fc.runtime << " " << path << " seed " << seed
        << ": ring too small for the monotonicity walk";
    double prev = -1.0;
    for (const obs::Event& ev : trace.snapshot()) {
      ASSERT_GE(ev.t_s, prev)
          << fc.runtime << " " << path << " seed " << seed << ": "
          << obs::event_name(ev.kind) << " stamped before its predecessor";
      prev = ev.t_s;
    }
  };
  opts.trace = &trace;

  long total_failures = 0;
  for (int i = 0; i < fc.schedules; ++i) {
    const std::uint64_t seed = fc.seed0 + static_cast<std::uint64_t>(i);
    power::FailureScheduleSupply::Config scfg;
    scfg.prepaid = fc.prepaid;
    dev::Device dev;
    power::FailureScheduleSupply supply(seed, scfg);
    dev.attach_supply(&supply);
    const auto cm = ace::compile(qm, dev);
    trace.clear();
    const RunStats st = rt->infer(dev, cm, input, opts);

    ASSERT_TRUE(st.completed()) << fc.runtime << " seed " << seed;
    ASSERT_EQ(st.outcome, Outcome::kCompleted) << fc.runtime << " seed " << seed;
    ASSERT_EQ(st.output, oracle)
        << fc.runtime << " diverged from continuous power under schedule seed " << seed
        << " (" << supply.failures() << " injected failures)";
    EXPECT_EQ(st.reboots, supply.failures()) << fc.runtime << " seed " << seed;
    total_failures += supply.failures();
    check_trace_invariants(st.reboots, seed, "infer");

    dev::Device dev2;
    power::FailureScheduleSupply supply2(seed, scfg);
    dev2.attach_supply(&supply2);
    const auto cm2 = ace::compile(qm, dev2);
    trace.clear();
    IntermittentExecutor ex(*policy);
    ex.start(dev2, cm2, input, opts);
    while (ex.step()) {
    }
    const RunStats& se = ex.stats();
    ASSERT_EQ(se.output, oracle) << fc.runtime << " executor path, seed " << seed;
    ASSERT_DOUBLE_EQ(se.on_seconds, st.on_seconds) << fc.runtime << " seed " << seed;
    ASSERT_DOUBLE_EQ(se.energy_j, st.energy_j) << fc.runtime << " seed " << seed;
    ASSERT_EQ(se.reboots, st.reboots) << fc.runtime << " seed " << seed;
    ASSERT_EQ(se.checkpoints, st.checkpoints) << fc.runtime << " seed " << seed;
    ASSERT_EQ(se.progress_commits, st.progress_commits) << fc.runtime << " seed " << seed;
    ASSERT_EQ(se.units_executed, st.units_executed) << fc.runtime << " seed " << seed;
    check_trace_invariants(se.reboots, seed, "executor");
  }

  // The schedules must actually bite: on average multiple brown-outs per
  // run, or the fuzzer is testing nothing. (FLEX averages fewer than the
  // commit-heavy baselines because event-targeted triggers have far fewer
  // commit events to aim at — that sparseness is FLEX's selling point.
  // Adaptive runs average fewer still: their ACE boots announce no commit
  // boundaries at all, so event triggers idle until the demotion lands.)
  // (Prepaid cases average fewer still: a cycle whose budget swallows
  // every draw defers its armed failure until an over-budget op shows up.)
  const long bite = fc.sched_spec != nullptr ? 2L : (fc.prepaid ? 1L : 3L);
  EXPECT_GT(total_failures, bite * fc.schedules)
      << fc.runtime << ": schedules injected too few failures";

  // Adaptive cases exist to aim brown-outs at runtime-switch boots: the
  // rich-stuck forecast must actually have produced switches, or the case
  // degenerated into plain FLEX.
  if (fc.sched_spec != nullptr) {
    const auto* ap = sched::as_adaptive(policy.get());
    ASSERT_NE(ap, nullptr);
    EXPECT_GT(ap->tier_switches(), fc.schedules / 4)
        << "adaptive case: too few runtime-switch boots exercised";
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, CrashConsistency, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           const FuzzCase& c = info.param;
                           std::string name = c.runtime;
                           // gtest names must be identifiers: "tile:t=4"
                           // becomes "tile_t_4".
                           for (char& ch : name) {
                             if (ch == ':' || ch == '=') ch = '_';
                           }
                           name += c.bcm_model ? "_bcm" : "_dense";
                           if (c.prepaid) name += "_pp";
                           name += "_" + std::to_string(c.schedules);
                           name += "_w" + std::to_string(static_cast<int>(
                                              c.flex_v_warn * 1000.0));
                           return name;
                         });

TEST(FuzzIntermittent, AdaptiveVariantSwitchesStayBitExact) {
  // The provisioned scheduler ships BOTH model variants co-resident and
  // may finish a job on either; the contract is bit-exactness against the
  // COMPLETING variant's continuous-power output, for any failure
  // schedule. The rich-stuck forecast with demote=1 drives ace -> flex at
  // the first fruitless boot and flex -> sonic (the dense twin!) at any
  // zero-progress cycle, so schedules hit both strategy- and
  // variant-switch boots — including brown-outs landing mid-switch.
  Rng model_rng(1234);
  const auto qm_c = mixed_model(model_rng);
  const auto qm_d = dense_model(model_rng);
  const auto input = quant::quantize_input(
      qm_c, random_tensor(qm_c.layers.front().in_shape, model_rng));

  // Per-variant continuous oracles (any runtime: bit-exact per model).
  std::vector<q15_t> oracle[2];  // [dense]
  for (const bool dense : {false, true}) {
    dev::Device dev;
    power::ContinuousPower supply;
    dev.attach_supply(&supply);
    const auto cm = ace::compile(dense ? qm_d : qm_c, dev);
    auto rt = make_flex_runtime();
    const RunStats st = rt->infer(dev, cm, input);
    ASSERT_TRUE(st.completed());
    oracle[dense] = st.output;
  }

  auto policy = sched::make_adaptive_policy(
      sched::parse_adaptive_spec("adaptive:fc=const,w=9,rich=5e-3,demote=1"));
  auto* ap = dynamic_cast<sched::AdaptivePolicy*>(policy.get());
  ASSERT_NE(ap, nullptr);

  constexpr int kSchedules = 150;
  int dense_completions = 0;
  for (int i = 0; i < kSchedules; ++i) {
    const std::uint64_t seed = 0x59000 + static_cast<std::uint64_t>(i);
    dev::Device dev;
    power::FailureScheduleSupply supply(seed);
    dev.attach_supply(&supply);
    const auto cm_c = ace::compile(qm_c, dev);
    const auto cm_d = ace::compile(qm_d, dev, /*co_resident=*/true);
    sched::DeploymentImage img;
    img.compressed = &cm_c;
    img.dense = &cm_d;
    ap->provision(img);

    IntermittentExecutor ex(*policy);
    ex.start(dev, cm_c, input);
    while (ex.step()) {
    }
    const RunStats& st = ex.stats();
    ASSERT_TRUE(st.completed()) << "adaptive seed " << seed;
    const bool dense = ap->on_dense_model();
    dense_completions += dense;
    ASSERT_EQ(st.output, oracle[dense])
        << "adaptive diverged from the " << (dense ? "dense" : "compressed")
        << " continuous oracle under schedule seed " << seed << " ("
        << supply.failures() << " injected failures, tier " << ap->current_runtime() << ")";
    EXPECT_EQ(st.reboots, supply.failures()) << "adaptive seed " << seed;
  }

  // The case must actually exercise variant switching: some schedules
  // have to end on the dense twin (sonic demotions), most on compressed.
  EXPECT_GT(dense_completions, 0) << "no schedule ever demoted to the dense twin";
  EXPECT_LT(dense_completions, kSchedules) << "every schedule demoted — forecast broken?";
  EXPECT_GT(ap->tier_switches(), kSchedules / 2);
}

TEST(FuzzIntermittent, ScheduleSupplyIsDeterministic) {
  // Same seed, same schedule: identical failure counts and timing.
  Rng rng(99);
  const auto qm = mixed_model(rng);
  const auto input =
      quant::quantize_input(qm, random_tensor(qm.layers.front().in_shape, rng));
  auto rt = make_flex_runtime();

  auto run_once = [&](std::uint64_t seed) {
    dev::Device dev;
    power::FailureScheduleSupply supply(seed);
    dev.attach_supply(&supply);
    const auto cm = ace::compile(qm, dev);
    const RunStats st = rt->infer(dev, cm, input);
    return std::pair<long, double>(supply.failures(), st.on_seconds);
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
  const auto c = run_once(8);
  EXPECT_TRUE(a.first != c.first || a.second != c.second);
}

TEST(FuzzIntermittent, StarvedScenarioSurfacesAsOutcome) {
  // A harvester that never refills (constant 0 W) starves the capacitor
  // after the first brown-out; the runtime reports kStarved, distinct
  // from completion and from the reboot-limit DNF.
  Rng rng(100);
  const auto qm = mixed_model(rng);
  const auto input =
      quant::quantize_input(qm, random_tensor(qm.layers.front().in_shape, rng));
  auto rt = make_flex_runtime();

  dev::Device dev;
  power::ConstantSource dead(0.0);
  power::CapacitorConfig cfg;
  cfg.capacitance_f = 1.0e-6;  // one small burst, then nothing
  cfg.max_off_s = 0.05;
  power::CapacitorSupply supply(dead, cfg);
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  const RunStats st = rt->infer(dev, cm, input);

  EXPECT_FALSE(st.completed());
  EXPECT_EQ(st.outcome, Outcome::kStarved);
  EXPECT_TRUE(supply.starved());
  EXPECT_GT(st.off_seconds, 0.0);
}

}  // namespace
}  // namespace ehdnn::flex
