// Scheduler-contract enumeration tests: the bounded grid closes with zero
// violations, the report is byte-identical for any worker count, world
// lines round-trip bit-exactly, and the closure stats prove the grid
// actually exercises every contract path (skips of both stages, the probe
// valve, demotions, forecast locks, and both stability modes) — an
// all-green sweep over worlds that never admit-gate or never demote would
// be vacuous, not reassuring. CONTRACTS.md records the formal statements.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sched/contracts.h"
#include "util/check.h"

namespace ehdnn::sched::contract {
namespace {

std::string report_text(const Report& rep, const std::string& name) {
  std::ostringstream os;
  write_report(os, rep, name);
  return os.str();
}

TEST(ContractEnum, BoundedGridClosesWithZeroViolations) {
  const Report rep = check_depth(Depth::kBounded, 2);
  for (const Violation& v : rep.violations) {
    ADD_FAILURE() << "C" << v.contract << " :: " << v.world << " :: " << v.detail;
  }
  EXPECT_TRUE(rep.pass());
}

TEST(ContractEnum, ReportByteIdenticalAcrossWorkerCounts) {
  const Report r1 = check_depth(Depth::kBounded, 1);
  const Report r4 = check_depth(Depth::kBounded, 4);
  EXPECT_EQ(report_text(r1, "bounded"), report_text(r4, "bounded"));
}

TEST(ContractEnum, BoundedGridExercisesEveryContractPath) {
  const Report rep = check_depth(Depth::kBounded, 2);
  const Stats& s = rep.stats;
  // CONTRACT-1: both admission stages fire, and both twin verdicts occur.
  EXPECT_GT(s.worlds, 100);
  EXPECT_GT(s.skips_stage1, 0);
  EXPECT_GT(s.skips_stage2, 0);
  EXPECT_GT(s.met_budget, 0);
  EXPECT_LT(s.met_budget, s.jobs);  // some jobs miss: deadlines do bite
  // CONTRACT-2: skip streaks scanned for the probe valve, and the relock
  // worlds both drop the stale lock and re-lock onto the new truth.
  EXPECT_GT(s.skip_streaks, 0);
  EXPECT_GT(s.relock_worlds, 0);
  EXPECT_EQ(s.relock_drops, s.relock_worlds);
  EXPECT_EQ(s.relock_relocks, s.relock_worlds);
  EXPECT_LE(s.relock_max_periods, 20);
  // CONTRACT-3: decisions logged, demotions taken, and both stability
  // checks see comparable pairs.
  EXPECT_GT(s.decisions, s.jobs / 2);
  EXPECT_GT(s.demotes, 0);
  EXPECT_GT(s.income_pairs, 0);
  EXPECT_GT(s.deadline_seqs, 0);
}

TEST(ContractEnum, WorldLinesRoundTripBitExactly) {
  for (const World& w : world_grid(Depth::kFull)) {
    const std::string line = serialize_world(w);
    const World back = parse_world(line);
    EXPECT_EQ(serialize_world(back), line);
    EXPECT_EQ(back.source, w.source);
    EXPECT_EQ(back.cap_f, w.cap_f);
    EXPECT_EQ(back.v_on, w.v_on);
    EXPECT_EQ(back.period_s, w.period_s);
    EXPECT_EQ(back.deadline_s, w.deadline_s);
    EXPECT_EQ(back.jobs, w.jobs);
    EXPECT_EQ(back.sched, w.sched);
  }
  for (const RelockWorld& w : relock_grid(Depth::kFull)) {
    const std::string line = serialize_world(w);
    const RelockWorld back = parse_relock_world(line);
    EXPECT_EQ(serialize_world(back), line);
    EXPECT_EQ(back.p1_s, w.p1_s);
    EXPECT_EQ(back.p2_s, w.p2_s);
  }
}

TEST(ContractEnum, MalformedWorldLinesThrow) {
  EXPECT_THROW(parse_world(""), Error);
  EXPECT_THROW(parse_world("world id=0"), Error);  // missing fields
  EXPECT_THROW(parse_world("relock id=0 p1=0.4 p2=0.8 hi=3e-3 lo=5e-5"), Error);
  EXPECT_THROW(parse_world(
                   "world id=0 src=const:w=1e-3 cap=zap von=3.3 period=0.4 dl=0.3 "
                   "jobs=6 sched=adaptive:sel=deadline,admit=budget"),
               Error);
  EXPECT_THROW(parse_relock_world("relock id=0 p1=0.4"), Error);
  EXPECT_THROW(parse_relock_world("world id=0"), Error);
}

TEST(ContractEnum, RunWorldReportsPerJobTwinEvidence) {
  // The empirically-verified stage-2 recipe (see CONTRACTS.md): a lock
  // world whose periodic forecaster confirms the square's period mid-run
  // and then refuses lo-phase releases, bounded by the probe valve.
  World w;
  w.id = -1;
  w.source = "square:hi=2e-3,lo=0.2e-3,period=0.4,duty=0.5";
  w.cap_f = 0.33e-6;
  w.v_on = 3.0;
  w.period_s = 0.07;
  w.deadline_s = 0.021;
  w.jobs = 40;
  w.sched = "adaptive:sel=deadline,admit=budget,fc=periodic,conf=0.55,probe=2";
  const WorldResult res = run_world(w);
  ASSERT_EQ(res.jobs.size(), 40u);
  int stage2 = 0;
  int max_streak = 0;
  int streak = 0;
  for (const JobOutcome& o : res.jobs) {
    if (o.budget_skipped && o.budget_stage == 2) {
      ++stage2;
      ++streak;
    } else {
      max_streak = std::max(max_streak, streak);
      streak = 0;
    }
  }
  max_streak = std::max(max_streak, streak);
  EXPECT_GT(stage2, 0);
  // probe=2: the valve admits every release once two consecutive skips
  // have accrued, so no pure stage-2 streak can reach length 3.
  EXPECT_LE(max_streak, 2);
  EXPECT_FALSE(res.budget_decisions.empty());
  // The run crossed the lock: some decision carries a confirmed period.
  bool locked = false;
  for (const auto& d : res.budget_decisions) locked = locked || d.fc_period_s > 0.0;
  EXPECT_TRUE(locked);
}

TEST(ContractEnum, FixtureCalibrationOrdersTheLadder) {
  const CompletionModel& cm = fixture_completion_model();
  const auto* base = cm.tier("base");
  const auto* flex = cm.tier("flex");
  const auto* tile = cm.tier("tile");
  ASSERT_NE(base, nullptr);
  ASSERT_NE(flex, nullptr);
  ASSERT_NE(tile, nullptr);
  // The grid axes lean on this geometry: compressed tiers cost ~5 uJ and
  // the persistent ladder costs strictly more (checkpoint traffic).
  EXPECT_GT(base->energy_j, 1e-6);
  EXPECT_LT(base->energy_j, 20e-6);
  EXPECT_GT(flex->energy_j, base->energy_j);
  EXPECT_GT(tile->energy_j, flex->energy_j);
}

}  // namespace
}  // namespace ehdnn::sched::contract
