#include <gtest/gtest.h>

#include "core/ace/compiled_model.h"
#include "core/ace/kernels.h"
#include "core/flex/runtime.h"
#include "models/zoo.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "power/continuous.h"
#include "quant/qexec.h"
#include "quant/quantize.h"
#include "util/rng.h"

namespace ehdnn::ace {
namespace {

using fx::q15_t;

nn::Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-0.9, 0.9));
  }
  return t;
}

quant::QuantModel quantize_model(nn::Model& m, const std::vector<std::size_t>& shape,
                                 Rng& rng) {
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 6; ++i) calib.push_back(random_tensor(shape, rng));
  return quant::quantize(m, calib, shape);
}

// Device inference must be bit-identical to the software reference
// executor — same kernels, same truncation points (the deployment
// contract in qmodel.h).
void expect_bit_exact(const quant::QuantModel& qm, const nn::Tensor& x,
                      dsp::FftScaling scaling = dsp::FftScaling::kBlockFloat) {
  quant::QExecOptions qopts;
  qopts.fft_scaling = scaling;
  const auto qin = quant::quantize_input(qm, x);
  const auto ref = quant::qforward(qm, qin, qopts);

  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const CompiledModel cm = compile(qm, dev);
  auto rt = flex::make_ace_runtime();
  flex::RunOptions ropts;
  ropts.scaling = scaling;
  const auto st = rt->infer(dev, cm, qin, ropts);
  ASSERT_TRUE(st.completed());
  ASSERT_EQ(st.output.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(st.output[i], ref[i]) << "output word " << i;
  }
}

TEST(Compile, LayoutDisjointAndWithinFram) {
  Rng rng(1);
  nn::Model m = models::make_mnist_model(rng);
  const auto qm = quantize_model(m, {1, 28, 28}, rng);
  dev::Device dev;
  const CompiledModel cm = compile(qm, dev);
  EXPECT_LE(cm.fram_words_used, dev.fram().size_words());
  EXPECT_LE(cm.sram.total_words, dev.sram().size_words());
  // Activation buffers both hold max(L_i) (Fig. 5's two-buffer bound).
  EXPECT_EQ(cm.act_words, qm.max_activation_words());
  EXPECT_NE(cm.act_a, cm.act_b);
  // Segments are disjoint by construction of the bump allocator; verify
  // the weights actually landed in FRAM.
  const auto& l0 = qm.layers[0];
  for (std::size_t i = 0; i < l0.weights.size(); ++i) {
    EXPECT_EQ(dev.fram().peek(cm.images[0].w_base + i), l0.weights[i]);
  }
}

TEST(Compile, CompressedModelsFitTheRealBoard) {
  Rng rng(2);
  for (models::Task t :
       {models::Task::kMnist, models::Task::kHar, models::Task::kOkg}) {
    models::ModelInfo info;
    nn::Model comp = models::make_model(t, rng, &info);
    const auto qm = quantize_model(comp, info.input_shape, rng);
    dev::Device dev;
    EXPECT_NO_THROW(compile(qm, dev)) << models::task_name(t);
  }
}

TEST(Compile, UncompressedHarOkgExceedTheRealBoard) {
  // The dense HAR/OKG weight matrices alone outgrow the 256 KB FRAM —
  // the concrete motivation for RAD's compression. The SONIC/TAILS
  // baselines therefore run on a virtually enlarged FRAM (documented in
  // EXPERIMENTS.md) so their time/energy can still be measured.
  Rng rng(22);
  for (models::Task t : {models::Task::kHar, models::Task::kOkg}) {
    const auto info = models::model_info(t);
    nn::Model dense = models::make_dense_model(t, rng);
    const auto qd = quantize_model(dense, info.input_shape, rng);
    dev::Device real_board;
    EXPECT_THROW(compile(qd, real_board), Error) << models::task_name(t);
    dev::DeviceConfig big;
    big.fram_words = 4 * 1024 * 1024;
    dev::Device enlarged(big);
    EXPECT_NO_THROW(compile(qd, enlarged)) << models::task_name(t);
  }
  // The dense MNIST twin still fits the real board.
  nn::Model mnist_dense = models::make_mnist_dense(rng);
  const auto qm = quantize_model(mnist_dense, {1, 28, 28}, rng);
  dev::Device real_board;
  EXPECT_NO_THROW(compile(qm, real_board));
}

TEST(Compile, CircularBufferIsTwoBuffersNotN) {
  Rng rng(3);
  nn::Model m = models::make_mnist_model(rng);
  const auto qm = quantize_model(m, {1, 28, 28}, rng);
  dev::Device dev;
  const CompiledModel cm = compile(qm, dev);
  // N-buffer allocation would need sum(L_i); ACE needs only 2*max(L_i).
  std::size_t sum = 0;
  for (const auto& l : qm.layers) sum += l.out_size();
  EXPECT_LT(2 * cm.act_words, sum);
}

TEST(DataMove, DmaDecisionFollowsCostModel) {
  dev::CostModel cm;
  EXPECT_FALSE(use_dma(cm, 1));   // setup dominates
  EXPECT_TRUE(use_dma(cm, 64));   // bulk wins
  // The crossover exists and is small.
  bool crossed = false;
  for (std::size_t n = 1; n < 32; ++n) crossed |= use_dma(cm, n);
  EXPECT_TRUE(crossed);
}

TEST(DataMove, MoveWordsCopiesEitherWay) {
  dev::Device dev;
  for (dev::Addr i = 0; i < 4; ++i) dev.fram().poke(i, static_cast<q15_t>(i + 1));
  move_words(dev, dev::MemKind::kFram, 0, dev::MemKind::kSram, 0, 2);    // CPU path
  move_words(dev, dev::MemKind::kFram, 0, dev::MemKind::kSram, 100, 4);  // may be DMA
  EXPECT_EQ(dev.sram().peek(0), 1);
  EXPECT_EQ(dev.sram().peek(1), 2);
  EXPECT_EQ(dev.sram().peek(103), 4);
}

// ---- bit-exactness of every kernel ----------------------------------------

TEST(Kernels, DenseBitExact) {
  Rng rng(4);
  nn::Model m;
  m.add<nn::Dense>(40, 12)->init(rng);
  const auto qm = quantize_model(m, {40}, rng);
  expect_bit_exact(qm, random_tensor({40}, rng));
}

TEST(Kernels, DenseChunkedBitExact) {
  // Input wider than kDenseChunk exercises the guarded chunk folding.
  Rng rng(5);
  nn::Model m;
  m.add<nn::Dense>(1200, 8)->init(rng);
  const auto qm = quantize_model(m, {1200}, rng);
  expect_bit_exact(qm, random_tensor({1200}, rng));
}

TEST(Kernels, Conv2DBitExact) {
  Rng rng(6);
  nn::Model m;
  m.add<nn::Conv2D>(2, 3, 3, 3)->init(rng);
  const auto qm = quantize_model(m, {2, 9, 9}, rng);
  expect_bit_exact(qm, random_tensor({2, 9, 9}, rng));
}

TEST(Kernels, Conv2DPrunedBitExact) {
  Rng rng(7);
  nn::Model m;
  auto* c = m.add<nn::Conv2D>(1, 2, 5, 5);
  c->init(rng);
  std::vector<bool> mask(25, false);
  for (std::size_t i : {0u, 2u, 6u, 8u, 12u, 16u, 18u, 20u, 22u, 24u, 11u, 13u, 7u}) {
    mask[i] = true;
  }
  c->set_shape_mask(mask);
  const auto qm = quantize_model(m, {1, 10, 10}, rng);
  EXPECT_EQ(qm.layers[0].live_positions(), 13u);
  expect_bit_exact(qm, random_tensor({1, 10, 10}, rng));
}

TEST(Kernels, Conv1DBitExact) {
  Rng rng(8);
  nn::Model m;
  m.add<nn::Conv1D>(1, 4, 6)->init(rng);
  const auto qm = quantize_model(m, {1, 20}, rng);
  expect_bit_exact(qm, random_tensor({1, 20}, rng));
}

class BcmBitExact : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BcmBitExact, BothScalingModes) {
  const std::size_t k = GetParam();
  Rng rng(9 + k);
  nn::Model m;
  m.add<nn::BcmDense>(2 * k, k, k)->init(rng);
  const auto qm = quantize_model(m, {2 * k}, rng);
  const auto x = random_tensor({2 * k}, rng);
  expect_bit_exact(qm, x, dsp::FftScaling::kBlockFloat);
  expect_bit_exact(qm, x, dsp::FftScaling::kFixedScale);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BcmBitExact, ::testing::Values(8u, 16u, 32u, 64u));

TEST(Kernels, BcmPaddedBitExact) {
  Rng rng(10);
  nn::Model m;
  m.add<nn::BcmDense>(21, 16, 16)->init(rng);  // pads 21 -> 32
  const auto qm = quantize_model(m, {21}, rng);
  expect_bit_exact(qm, random_tensor({21}, rng));
}

TEST(Kernels, FullPipelineBitExact) {
  Rng rng(11);
  nn::Model m;
  m.add<nn::Conv2D>(1, 4, 5, 5)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::BcmDense>(4 * 6 * 6, 32, 32)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(32, 5)->init(rng);
  const auto qm = quantize_model(m, {1, 16, 16}, rng);
  expect_bit_exact(qm, random_tensor({1, 16, 16}, rng));
}

TEST(Kernels, MnistModelBitExact) {
  Rng rng(12);
  nn::Model m = models::make_mnist_model(rng);
  const auto qm = quantize_model(m, {1, 28, 28}, rng);
  expect_bit_exact(qm, random_tensor({1, 28, 28}, rng));
}

// ---- resume contract -------------------------------------------------------

TEST(Kernels, ConvResumeFromUnitMatchesFullRun) {
  Rng rng(13);
  nn::Model m;
  m.add<nn::Conv2D>(1, 3, 3, 3)->init(rng);
  const auto qm = quantize_model(m, {1, 8, 8}, rng);
  const auto x = random_tensor({1, 8, 8}, rng);
  const auto qin = quant::quantize_input(qm, x);

  auto run_with_restart = [&](std::size_t restart_unit) {
    dev::Device dev;
    const CompiledModel cm = compile(qm, dev);
    for (std::size_t i = 0; i < qin.size(); ++i) dev.fram().poke(cm.act_a + i, qin[i]);
    ExecCtx ctx{dev, cm, 0, cm.act_in(0), cm.act_out(0), dsp::FftScaling::kBlockFloat,
                nullptr};
    UnitHooks hooks;
    run_layer(ctx, 0, hooks);
    // Simulate losing SRAM and re-running the tail from restart_unit.
    Rng srng(99);
    dev.sram().scramble(srng);
    run_layer(ctx, restart_unit, hooks);
    const auto& l = qm.layers[0];
    std::vector<q15_t> out(l.out_size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = dev.fram().peek(cm.act_out(0) + i);
    return out;
  };

  const auto full = run_with_restart(0);
  for (std::size_t u : {1u, 5u, 17u}) {
    EXPECT_EQ(run_with_restart(u), full) << "restart at " << u;
  }
}

TEST(Kernels, UnitCounts) {
  Rng rng(14);
  nn::Model m = models::make_mnist_model(rng);
  const auto qm = quantize_model(m, {1, 28, 28}, rng);
  EXPECT_EQ(unit_count(qm.layers[0]), 6u * 24u);        // conv rows
  EXPECT_EQ(unit_count(qm.layers[7]), 2u);              // BCM block rows
  EXPECT_EQ(unit_count(qm.layers[9]), 1u);              // dense: one chunk
}

TEST(Acc, RoundTrip32And64) {
  dev::Device dev;
  write_acc32(dev, dev::MemKind::kSram, 0, 3, -123456789);
  EXPECT_EQ(read_acc32(dev, dev::MemKind::kSram, 0, 3), -123456789);
  write_acc64(dev, dev::MemKind::kSram, 100, 2, -1234567890123456789ll);
  EXPECT_EQ(read_acc64(dev, dev::MemKind::kSram, 100, 2), -1234567890123456789ll);
}

}  // namespace
}  // namespace ehdnn::ace
