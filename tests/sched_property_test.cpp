// Property / metamorphic tests for scheduling v2 (deadline-aware tier
// selection, periodicity forecasting, energy-budgeted admission). Where
// sched_test.cpp pins point behaviors, this suite pins INVARIANTS across
// seeded randomized inputs:
//
//   (a) admission control never lowers in-deadline completions vs
//       admit-all on the same seed (skipping a hopeless release can only
//       donate its charge and queue slot to later releases);
//   (b) the periodic forecaster locks the true period of square/solar
//       income and beats the EMA's forecast error there;
//   (c) the completion model's predicted per-tier ordering matches the
//       measured ordering under continuous power, and its predictions
//       degrade monotonically as income falls.
//
// Everything is seeded and deterministic: a failure reproduces exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "power/factory.h"
#include "sched/adaptive.h"
#include "sched_test_util.h"
#include "sim/fleet.h"

namespace ehdnn::sched {
namespace {

using fx::q15_t;
using testutil::income_samples;
using testutil::record_samples;

// ------------------------------------------------- (a) admission safety

// A randomized duty-cycled population on a random square harvest: day
// phases fund MNIST comfortably, night floors cannot meet the deadline.
sim::FleetConfig random_admission_fleet(std::uint64_t seed) {
  Rng rng(seed);
  const double period = rng.uniform(1.5, 3.0);
  const double duty = rng.uniform(0.4, 0.7);
  const double hi = rng.uniform(4e-3, 6e-3);
  const double lo = rng.uniform(0.02e-3, 0.2e-3);

  sim::FleetConfig cfg;
  cfg.seed = seed;
  cfg.source = "square:hi=" + std::to_string(hi) + ",lo=" + std::to_string(lo) +
               ",period=" + std::to_string(period) + ",duty=" + std::to_string(duty);
  cfg.offset_spread_s = rng.uniform(0.0, period);
  sim::FleetGroup g;
  g.name = "prop";
  g.count = 2;
  g.task = models::Task::kMnist;
  g.agenda.runtime = "adaptive";
  g.agenda.jobs = 8;
  g.agenda.period_s = rng.uniform(0.3, 0.6);
  g.agenda.deadline_s = rng.uniform(0.2, 0.4);
  g.capacitance_f = 10e-6;
  g.sched_spec = "adaptive:sel=deadline,admit=budget,fc=periodic,probe=1";
  cfg.groups.push_back(g);
  return cfg;
}

TEST(AdmissionProperty, NeverLowersInDeadlineVsAdmitAllOnSameSeed) {
  int total_skips = 0;
  for (const std::uint64_t seed : {11u, 23u, 37u, 51u, 68u, 94u}) {
    const sim::FleetConfig cfg = random_admission_fleet(seed);
    const sim::FleetReport with_admission = sim::run_fleet(cfg);
    sim::FleetRunOptions all;
    all.force_admit_all = true;
    const sim::FleetReport admit_all = sim::run_fleet(cfg, all);

    EXPECT_GE(with_admission.jobs_in_deadline, admit_all.jobs_in_deadline)
        << "seed " << seed << " (" << cfg.source << "): admission lowered the "
        << "in-deadline count " << with_admission.jobs_in_deadline << " < "
        << admit_all.jobs_in_deadline;
    EXPECT_EQ(admit_all.jobs_skipped, 0) << "admit-all must never skip";
    EXPECT_EQ(with_admission.total_jobs, admit_all.total_jobs);
    total_skips += with_admission.jobs_skipped;
  }
  // The property must bite: across the seeds, admission has to have
  // actually refused some releases, or this test degenerated to
  // comparing identical runs.
  EXPECT_GT(total_skips, 0);
}

TEST(AdmissionProperty, SkippedReleasesNeverBootAndReclaimEnergy) {
  const sim::FleetConfig cfg = random_admission_fleet(23u);
  const sim::FleetReport r = sim::run_fleet(cfg);
  ASSERT_GT(r.jobs_skipped, 0) << "fixture: this seed must produce skips";
  for (const auto& d : r.devices) {
    for (const auto& j : d.jobs) {
      if (!j.skipped_infeasible) continue;
      EXPECT_EQ(j.reboots, 0);
      EXPECT_EQ(j.tier_switches, 0);
      EXPECT_DOUBLE_EQ(j.energy_j, 0.0);
      EXPECT_GT(j.energy_reclaimed_j, 0.0);
      EXPECT_FALSE(j.met_deadline);
      EXPECT_DOUBLE_EQ(j.finish_s, j.start_s);
    }
  }
}

// --------------------------------------------- (b) periodicity locking

struct PeriodicSourceCase {
  const char* name;
  const char* spec;      // power::make_harvest_source grammar
  double true_period_s;  // the source's ground-truth period
};

class PeriodicLock : public ::testing::TestWithParam<PeriodicSourceCase> {};

TEST_P(PeriodicLock, LocksTruePeriodWithinKCyclesAndBeatsEma) {
  const PeriodicSourceCase pc = GetParam();
  const auto src = power::make_harvest_source(pc.spec);
  const double dt = pc.true_period_s / 20.0;  // 20 samples per cycle
  const int total = 400;                      // 20 cycles of history
  const std::vector<double> samples = income_samples(*src, dt, total);

  // Feed incrementally; the period must be confirmed within K = 5 cycles
  // (detection fundamentally needs >= 3 repetitions in history).
  auto fc = make_periodic_forecaster(1e-3, 0.5);
  constexpr int kMaxLockCycles = 5;
  int locked_at = -1;
  for (int i = 0; i < total; ++i) {
    fc->record_at(samples[static_cast<std::size_t>(i)], dt * i);
    if (locked_at < 0 && fc->period_s() > 0.0) locked_at = i;
  }
  ASSERT_GE(locked_at, 0) << pc.name << ": never confirmed a period";
  EXPECT_LE(locked_at, kMaxLockCycles * 20) << pc.name << ": locked too late";
  // The confirmed period must be the true one (or a harmonic-free
  // estimate within the resampling grid's resolution).
  EXPECT_NEAR(fc->period_s(), pc.true_period_s, 0.15 * pc.true_period_s) << pc.name;

  // One-step-ahead forecast error over fresh cycles: the locked phase
  // table must beat a replayed EMA on the same stream.
  auto periodic = make_periodic_forecaster(1e-3, 0.5);
  auto ema = make_ema_forecaster(1e-3, 0.5);
  double err_periodic = 0.0, err_ema = 0.0;
  for (int i = 0; i < total; ++i) {
    const double t = dt * i;
    const double x = samples[static_cast<std::size_t>(i)];
    if (i >= total / 2) {  // score only the post-warmup half
      err_periodic += std::abs(periodic->forecast_at_w(t) - x);
      err_ema += std::abs(ema->forecast_at_w(t) - x);
    }
    periodic->record_at(x, t);
    ema->record_at(x, t);
  }
  EXPECT_LT(err_periodic, err_ema)
      << pc.name << ": the periodic forecaster must beat the EMA on its home turf";
}

INSTANTIATE_TEST_SUITE_P(
    Sources, PeriodicLock,
    ::testing::Values(
        PeriodicSourceCase{"square", "square:hi=5e-3,lo=0.2e-3,period=0.8,duty=0.5", 0.8},
        PeriodicSourceCase{"square_skewed", "square:hi=6e-3,lo=0.1e-3,period=2,duty=0.3", 2.0},
        PeriodicSourceCase{"solar", "solar:peak=5e-3,day=1.5,daylight=0.6,floor=0.1e-3", 1.5}),
    [](const ::testing::TestParamInfo<PeriodicSourceCase>& info) {
      return std::string(info.param.name);
    });

TEST(PeriodicProperty, DoesNotLockNoise) {
  // Metamorphic control: a seeded aperiodic stream must not confirm a
  // period (the conf threshold is the guard against spurious locks).
  Rng rng(7);
  auto fc = make_periodic_forecaster(1e-3, 0.5);
  for (int i = 0; i < 300; ++i) {
    fc->record_at(rng.uniform(0.0, 5e-3), 0.05 * i);
  }
  EXPECT_DOUBLE_EQ(fc->period_s(), 0.0);
}

// ------------------------------------- (c) completion-model consistency

TEST(CompletionModelProperty, PredictedOrderingMatchesMeasuredOnContinuousPower) {
  Rng rng(0x9d);
  const auto qm_c = testutil::tiny_compressed(rng);
  const auto qm_d = testutil::tiny_dense(rng);
  const auto input =
      quant::quantize_input(qm_c, testutil::random_tensor(qm_c.layers.front().in_shape, rng));

  // Measured: each tier's fixed policy under bench power.
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm_c = ace::compile(qm_c, dev);
  const auto cm_d = ace::compile(qm_d, dev, /*co_resident=*/true);

  struct Measured {
    std::string key;
    double on_s;
  };
  std::vector<Measured> measured;
  const struct {
    const char* key;
    bool dense;
  } tiers[] = {{"base", true},
               {"ace", false},
               {"flex", false},
               {"sonic", true},
               {"tile", true}};
  for (const auto& t : tiers) {
    const std::string key = t.key;
    auto policy = key == "flex"    ? flex::make_flex_policy()
                  : key == "sonic" ? flex::make_sonic_policy()
                  : key == "tile"  ? flex::make_tile_policy()
                                   : flex::make_ace_policy();
    flex::IntermittentExecutor ex(*policy);
    const flex::RunStats st = ex.run(dev, t.dense ? cm_d : cm_c, input);
    ASSERT_TRUE(st.completed()) << t.key;
    measured.push_back({t.key, st.on_seconds});
  }

  // Predicted: the calibrated completion model with an unbounded burst
  // (continuous power) must order the tiers the same way.
  const CompletionModel m = CompletionModel::calibrate(cm_c, &cm_d, dev.config());
  ASSERT_EQ(m.tiers().size(), 5u);
  auto measured_on = [&](const std::string& key) {
    for (const auto& t : measured) {
      if (t.key == key) return t.on_s;
    }
    ADD_FAILURE() << "no measured tier " << key;
    return 0.0;
  };
  const double inf = std::numeric_limits<double>::infinity();
  for (const auto& a : m.tiers()) {
    for (const auto& b : m.tiers()) {
      const double pa = m.predict_s(a, inf, 0.0, 0.0);
      const double pb = m.predict_s(b, inf, 0.0, 0.0);
      if (pa < pb) {
        EXPECT_LT(measured_on(a.key), measured_on(b.key))
            << a.key << " predicted faster than " << b.key
            << " but measured slower — the model's ordering is wrong";
      }
    }
    // The calibration replays the same modeled machine, so the
    // continuous-power prediction is not just ordered but close.
    EXPECT_NEAR(m.predict_s(a, inf, 0.0, 0.0), measured_on(a.key),
                0.15 * measured_on(a.key))
        << a.key;
  }
}

TEST(CompletionModelProperty, PredictionsDegradeMonotonicallyWithIncome) {
  Rng rng(0x9e);
  const auto qm_c = testutil::tiny_compressed(rng);
  const auto qm_d = testutil::tiny_dense(rng);
  dev::Device dev;
  const auto cm_c = ace::compile(qm_c, dev);
  const auto cm_d = ace::compile(qm_d, dev, /*co_resident=*/true);
  const CompletionModel m = CompletionModel::calibrate(cm_c, &cm_d, dev.config());

  const double burst = 30e-6;
  for (const auto& t : m.tiers()) {
    double prev = 0.0;
    // Sweep income downward: predicted completion must never improve.
    for (const double w : {8e-3, 4e-3, 2e-3, 1e-3, 0.5e-3, 0.1e-3}) {
      const double pred = m.predict_s(t, burst, w, 0.0);
      EXPECT_GE(pred, prev) << t.key << " at income " << w;
      EXPECT_GT(pred, 0.0) << t.key;
      prev = pred;
    }
    // More burst can only help.
    EXPECT_LE(m.predict_s(t, 2 * burst, 1e-3, 0.0), m.predict_s(t, burst, 1e-3, 0.0))
        << t.key;
    // Overhead can only hurt.
    EXPECT_GE(m.predict_s(t, burst, 1e-3, 5e-6), m.predict_s(t, burst, 1e-3, 0.0))
        << t.key;
  }

  // Restart-from-scratch tiers that cannot fit one burst never finish.
  const CompletionModel::Tier* ace_tier = m.tier("ace");
  ASSERT_NE(ace_tier, nullptr);
  EXPECT_TRUE(std::isinf(m.predict_s(*ace_tier, 1e-9, 0.1e-3, 0.0)));
  // Persistent tiers with the same starvation still finish eventually.
  const CompletionModel::Tier* sonic_tier = m.tier("sonic");
  ASSERT_NE(sonic_tier, nullptr);
  EXPECT_TRUE(std::isfinite(m.predict_s(*sonic_tier, 1e-6, 0.1e-3, 0.0)));
}

}  // namespace
}  // namespace ehdnn::sched
