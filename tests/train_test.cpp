#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "train/loss.h"
#include "train/sgd.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace ehdnn::train {
namespace {

TEST(Softmax, SumsToOne) {
  std::vector<float> logits{1.0f, 2.0f, 3.0f};
  const auto p = softmax(logits);
  float sum = 0.0f;
  for (float v : p) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(Softmax, StableForLargeLogits) {
  std::vector<float> logits{1000.0f, 1001.0f};
  const auto p = softmax(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-6f);
}

TEST(CrossEntropy, GradientIsPMinusOneHot) {
  nn::Tensor logits({3});
  logits[0] = 0.5f;
  logits[1] = -0.2f;
  logits[2] = 1.0f;
  const auto lg = cross_entropy(logits, 1);
  const auto p = softmax(logits.data());
  EXPECT_NEAR(lg.grad[0], p[0], 1e-6f);
  EXPECT_NEAR(lg.grad[1], p[1] - 1.0f, 1e-6f);
  EXPECT_NEAR(lg.grad[2], p[2], 1e-6f);
  EXPECT_NEAR(lg.loss, -std::log(p[1]), 1e-5f);
}

TEST(CrossEntropy, NumericGradient) {
  Rng rng(5);
  nn::Tensor logits({4});
  for (std::size_t i = 0; i < 4; ++i) logits[i] = static_cast<float>(rng.uniform(-2, 2));
  const auto lg = cross_entropy(logits, 2);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < 4; ++i) {
    nn::Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    const double num =
        (cross_entropy(lp, 2).loss - cross_entropy(lm, 2).loss) / (2.0 * eps);
    EXPECT_NEAR(lg.grad[i], num, 1e-3);
  }
}

TEST(Argmax, PicksLargest) {
  std::vector<float> v{0.1f, 0.9f, 0.3f};
  EXPECT_EQ(argmax(v), 1);
}

// A deterministic 2-class linearly separable task.
data::Dataset toy_task(Rng& rng, std::size_t n) {
  data::Dataset d;
  d.num_classes = 2;
  d.sample_shape = {4};
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.below(2));
    nn::Tensor t({4});
    for (std::size_t j = 0; j < 4; ++j) {
      t[j] = static_cast<float>((cls == 0 ? 0.5 : -0.5) + 0.2 * rng.gauss());
    }
    d.x.push_back(std::move(t));
    d.y.push_back(cls);
  }
  return d;
}

TEST(Sgd, StepReducesLossOnToyTask) {
  Rng rng(7);
  nn::Model m;
  m.add<nn::Dense>(4, 2)->init(rng);
  const auto ds = toy_task(rng, 64);

  auto loss_of = [&] {
    float sum = 0.0f;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      sum += cross_entropy(m.forward(ds.x[i]), ds.y[i]).loss;
    }
    return sum / static_cast<float>(ds.size());
  };

  const float before = loss_of();
  Sgd opt({.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.0f});
  for (int step = 0; step < 30; ++step) {
    m.zero_grad();
    for (std::size_t i = 0; i < ds.size(); ++i) {
      m.backward(cross_entropy(m.forward(ds.x[i]), ds.y[i]).grad);
    }
    opt.step(m, ds.size());
  }
  EXPECT_LT(loss_of(), before * 0.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Rng rng(8);
  nn::Model m;
  auto* d = m.add<nn::Dense>(4, 2);
  d->init(rng);
  const auto w0 = std::vector<float>(d->weights().begin(), d->weights().end());
  Sgd opt({.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.5f});
  opt.step(m, 1);  // zero gradients: pure decay
  for (std::size_t i = 0; i < w0.size(); ++i) {
    EXPECT_NEAR(d->weights()[i], w0[i] * (1.0f - 0.05f), 1e-6f);
  }
}

TEST(Trainer, FitLearnsToyTask) {
  Rng rng(9);
  nn::Model m;
  m.add<nn::Dense>(4, 8)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(8, 2)->init(rng);
  const auto train_set = toy_task(rng, 128);
  const auto test_set = toy_task(rng, 64);

  FitConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 8;
  cfg.sgd.lr = 0.05f;
  fit(m, train_set, cfg, rng);

  EXPECT_GT(evaluate(m, test_set).accuracy, 0.9f);
}

TEST(Trainer, OnEpochHookRuns) {
  Rng rng(10);
  nn::Model m;
  m.add<nn::Dense>(4, 2)->init(rng);
  const auto ds = toy_task(rng, 16);
  int calls = 0;
  FitConfig cfg;
  cfg.epochs = 3;
  cfg.on_epoch = [&](nn::Model&, const EpochStats& s) {
    EXPECT_EQ(s.epoch, calls);
    ++calls;
  };
  fit(m, ds, cfg, rng);
  EXPECT_EQ(calls, 3);
}

TEST(Trainer, OnBatchHookSeesBatchSize) {
  Rng rng(11);
  nn::Model m;
  m.add<nn::Dense>(4, 2)->init(rng);
  const auto ds = toy_task(rng, 10);
  std::vector<std::size_t> sizes;
  FitConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 4;
  cfg.on_batch = [&](nn::Model&, std::size_t bs) { sizes.push_back(bs); };
  fit(m, ds, cfg, rng);
  // 10 samples in batches of 4: 4, 4, 2.
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[2], 2u);
}

TEST(Evaluate, PerfectModelScoresOne) {
  Rng rng(12);
  const auto ds = toy_task(rng, 32);
  nn::Model m;
  auto* d = m.add<nn::Dense>(4, 2);
  // Hand-built separator: class 0 has positive coords.
  for (std::size_t i = 0; i < 4; ++i) {
    d->weights()[0 * 4 + i] = 1.0f;
    d->weights()[1 * 4 + i] = -1.0f;
  }
  EXPECT_FLOAT_EQ(evaluate(m, ds).accuracy, 1.0f);
}

}  // namespace
}  // namespace ehdnn::train
