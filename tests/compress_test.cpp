#include <gtest/gtest.h>

#include "compress/admm.h"
#include "compress/bcm.h"
#include "compress/structured.h"
#include "data/dataset.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace ehdnn::cmp {
namespace {

// ---- Table I ---------------------------------------------------------------

struct TableIRow {
  std::size_t block;
  std::size_t compressed_bytes;
  double reduction;
};

class TableI : public ::testing::TestWithParam<TableIRow> {};

TEST_P(TableI, BcmStorageMatchesPaper) {
  const auto row = GetParam();
  // Table I counts 4-byte (float) weights: 512*512*4 = 1048576 bytes. The
  // byte figures reproduce exactly at bits=32; after RAD's 16-bit
  // quantization both columns halve and the reduction is unchanged.
  const std::size_t dense = dense_storage_bytes(512, 512, 32);
  EXPECT_EQ(dense, 1048576u);
  const std::size_t bcm = bcm_storage_bytes(512, 512, row.block, 32);
  EXPECT_EQ(bcm, row.compressed_bytes);
  EXPECT_EQ(dense / bcm, row.block);
  const double reduction = 1.0 - static_cast<double>(bcm) / static_cast<double>(dense);
  EXPECT_NEAR(reduction * 100.0, row.reduction, 0.01);
  // 16-bit deployment halves both, same ratio.
  EXPECT_EQ(dense_storage_bytes(512, 512, 16) / bcm_storage_bytes(512, 512, row.block, 16),
            row.block);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, TableI,
                         ::testing::Values(TableIRow{16, 65536, 93.75},
                                           TableIRow{32, 32768, 96.87},
                                           TableIRow{64, 16384, 98.43},
                                           TableIRow{128, 8192, 99.21},
                                           TableIRow{256, 4096, 99.60}));

// ---- BCM projection --------------------------------------------------------

TEST(BcmProjection, ExactForCirculantInput) {
  // A dense matrix that already is block-circulant projects to itself.
  Rng rng(1);
  nn::BcmDense src(16, 16, 8);
  src.init(rng);
  const auto w = src.to_dense();

  nn::Dense dense(16, 16);
  std::copy(w.begin(), w.end(), dense.weights().begin());

  EXPECT_NEAR(bcm_projection_error(dense, 8), 0.0, 1e-6);
}

TEST(BcmProjection, PreservesMeanOfDiagonals) {
  nn::Dense dense(4, 4);
  // Column j constant = j: diagonal means are computable by hand.
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) dense.weights()[r * 4 + c] = static_cast<float>(c);
  }
  const auto bcm = project_to_bcm(dense, 4);
  // first_col[d] = mean over c of w[(d+c)%4][c] = mean of {0,1,2,3} = 1.5.
  for (std::size_t d = 0; d < 4; ++d) EXPECT_NEAR(bcm->first_col(0, 0)[d], 1.5f, 1e-6f);
}

TEST(BcmProjection, ProjectionIsIdempotent) {
  Rng rng(2);
  nn::Dense dense(32, 16);
  dense.init(rng);
  const auto once = project_to_bcm(dense, 8);

  nn::Dense redense(32, 16);
  const auto w = once->to_dense();
  std::copy(w.begin(), w.end(), redense.weights().begin());
  const auto twice = project_to_bcm(redense, 8);

  for (std::size_t i = 0; i < once->blocks_out(); ++i) {
    for (std::size_t j = 0; j < once->blocks_in(); ++j) {
      auto a = once->first_col(i, j);
      auto b = twice->first_col(i, j);
      for (std::size_t t = 0; t < 8; ++t) EXPECT_NEAR(a[t], b[t], 1e-5f);
    }
  }
}

TEST(BcmProjection, ErrorBounded) {
  Rng rng(3);
  nn::Dense dense(64, 64);
  dense.init(rng);
  const double err = bcm_projection_error(dense, 16);
  EXPECT_GT(err, 0.0);   // random matrices are not circulant
  EXPECT_LE(err, 1.01);  // projection cannot be worse than zeroing
}

TEST(BcmProjection, CopiesBias) {
  Rng rng(4);
  nn::Dense dense(8, 8);
  dense.init(rng);
  dense.bias()[3] = 0.7f;
  const auto bcm = project_to_bcm(dense, 8);
  EXPECT_FLOAT_EQ(bcm->bias()[3], 0.7f);
}

// ---- structured pruning ----------------------------------------------------

TEST(Structured, TopPositionsKeepsLargest) {
  nn::Conv2D conv(1, 1, 3, 3);
  // Position (r,s) weight = r*3+s: top-4 are positions 5,6,7,8.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t s = 0; s < 3; ++s) conv.w(0, 0, r, s) = static_cast<float>(r * 3 + s);
  }
  const auto mask = top_positions_mask(conv, 4);
  for (std::size_t p = 0; p < 9; ++p) EXPECT_EQ(mask[p], p >= 5);
}

TEST(Structured, ProjectionZeroesPruned) {
  Rng rng(5);
  nn::Conv2D conv(2, 3, 5, 5);
  conv.init(rng);
  project_shape_sparse(conv, 13);
  EXPECT_EQ(conv.live_positions(), 13u);
  EXPECT_NEAR(shape_compression(conv), 25.0 / 13.0, 1e-9);
  for (std::size_t f = 0; f < 3; ++f) {
    for (std::size_t c = 0; c < 2; ++c) {
      for (std::size_t r = 0; r < 5; ++r) {
        for (std::size_t s = 0; s < 5; ++s) {
          if (!conv.shape_mask()[r * 5 + s]) {
            EXPECT_EQ(conv.w(f, c, r, s), 0.0f);
          }
        }
      }
    }
  }
}

TEST(Structured, CompressionNearTwoForPaperSetting) {
  // 25 -> 13 live positions is the ~2x CONV compression of Table II.
  Rng rng(6);
  nn::Conv2D conv(6, 16, 5, 5);
  conv.init(rng);
  project_shape_sparse(conv, 13);
  EXPECT_NEAR(shape_compression(conv), 1.92, 0.01);
}

// ---- ADMM ------------------------------------------------------------------

class AdmmFixture : public ::testing::Test {
 protected:
  // A small conv classifier on a tiny synthetic task.
  void SetUp() override {
    rng_ = std::make_unique<Rng>(7);
    data_ = data::make_mnist_like(*rng_, 120, 60);
    conv1_ = model_.add<nn::Conv2D>(1, 3, 5, 5);
    model_.add<nn::ReLU>();
    model_.add<nn::MaxPool2D>();
    model_.add<nn::Flatten>();
    dense_ = model_.add<nn::Dense>(3 * 12 * 12, 10);
    conv1_->init(*rng_);
    dense_->init(*rng_);
    train::FitConfig cfg;
    cfg.epochs = 2;
    train::fit(model_, data_.train, cfg, *rng_);
  }

  std::unique_ptr<Rng> rng_;
  data::TrainTest data_;
  nn::Model model_;
  nn::Conv2D* conv1_ = nullptr;
  nn::Dense* dense_ = nullptr;
};

TEST_F(AdmmFixture, ConstraintSatisfiedAfterRun) {
  AdmmConfig cfg;
  cfg.keep_positions = 13;
  cfg.admm_iters = 3;
  cfg.epochs_per_iter = 1;
  cfg.finetune_epochs = 1;
  AdmmPruner pruner(*conv1_, cfg);
  pruner.run(model_, data_.train, *rng_);
  EXPECT_EQ(conv1_->live_positions(), 13u);
  // The short schedules used in tests cannot drive ||W - Z|| to zero, but
  // ADMM must have *shaped* the weights: re-ranking the finetuned weights
  // reproduces the shape the projection chose (the selection is stable),
  // and the violation is finite/sane.
  EXPECT_LT(pruner.final_violation(), 1.1);
  EXPECT_EQ(top_positions_mask(*conv1_, 13), conv1_->shape_mask());
}

TEST_F(AdmmFixture, AccuracyRetainedAfterPruning) {
  const float before = train::evaluate(model_, data_.test).accuracy;
  AdmmConfig cfg;
  cfg.keep_positions = 13;
  cfg.admm_iters = 2;
  cfg.epochs_per_iter = 1;
  cfg.finetune_epochs = 1;
  AdmmPruner pruner(*conv1_, cfg);
  pruner.run(model_, data_.train, *rng_);
  const float after = train::evaluate(model_, data_.test).accuracy;
  // Structured pruning with ADMM + finetune should not collapse accuracy.
  EXPECT_GT(after, before - 0.15f);
}

TEST_F(AdmmFixture, MaskSurvivesFinetuning) {
  AdmmConfig cfg;
  cfg.keep_positions = 9;
  cfg.admm_iters = 1;
  cfg.epochs_per_iter = 1;
  cfg.finetune_epochs = 2;
  AdmmPruner pruner(*conv1_, cfg);
  pruner.run(model_, data_.train, *rng_);
  for (std::size_t f = 0; f < conv1_->out_channels(); ++f) {
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t s = 0; s < 5; ++s) {
        if (!conv1_->shape_mask()[r * 5 + s]) {
          EXPECT_EQ(conv1_->w(f, 0, r, s), 0.0f);
        }
      }
    }
  }
}

TEST(BcmStorage, PadsRaggedInputs) {
  // 3456 with k=256 pads to 3584: 14 block columns, 2 block rows.
  const std::size_t b = bcm_storage_bytes(512, 3456, 256, 16);
  EXPECT_EQ(b, 2u * 14u * 256u * 2u);
}

}  // namespace
}  // namespace ehdnn::cmp
