// End-to-end: RAD trains and compresses a model, ACE compiles and runs it
// on the device, FLEX carries it through harvested power — the full Fig. 1
// flow — and the baselines run beside it.

#include <gtest/gtest.h>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "core/rad/pipeline.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "power/monitor.h"
#include "quant/qexec.h"
#include "quant/quantize.h"
#include "train/loss.h"

namespace ehdnn {
namespace {

class FullStack : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(2024);
    rad::RadConfig cfg;
    cfg.task = models::Task::kMnist;
    cfg.train_samples = 220;
    cfg.test_samples = 60;
    cfg.epochs = 2;
    cfg.admm.admm_iters = 1;
    cfg.admm.epochs_per_iter = 1;
    cfg.admm.finetune_epochs = 1;
    result_ = new rad::RadResult(rad::run_rad(cfg, *rng_));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete rng_;
  }

  static Rng* rng_;
  static rad::RadResult* result_;
};

Rng* FullStack::rng_ = nullptr;
rad::RadResult* FullStack::result_ = nullptr;

TEST_F(FullStack, TrainedModelBeatsChance) {
  EXPECT_GT(result_->float_accuracy, 0.3f);
  EXPECT_GT(result_->quant_accuracy, 0.25f);
}

TEST_F(FullStack, DeviceAgreesWithSoftwareExecutor) {
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(result_->qmodel, dev);
  auto rt = flex::make_ace_runtime();
  for (int i = 0; i < 3; ++i) {
    const auto qin =
        quant::quantize_input(result_->qmodel, result_->data.test.x[static_cast<std::size_t>(i)]);
    const auto ref = quant::qforward(result_->qmodel, qin);
    const auto st = rt->infer(dev, cm, qin);
    ASSERT_TRUE(st.completed());
    EXPECT_EQ(st.output, ref);
  }
}

TEST_F(FullStack, FlexCompletesUnderHarvestedPowerBitExact) {
  const auto qin = quant::quantize_input(result_->qmodel, result_->data.test.x[0]);

  // Continuous oracle.
  dev::Device dc;
  power::ContinuousPower cs;
  dc.attach_supply(&cs);
  const auto cmc = ace::compile(result_->qmodel, dc);
  auto rt = flex::make_flex_runtime();
  const auto cont = rt->infer(dc, cmc, qin);
  ASSERT_TRUE(cont.completed());

  // Harvested: the paper's 100 uF capacitor, square-wave source.
  dev::Device di;
  power::SquareSource src(8e-3, 0.5e-3, /*period=*/0.08, /*duty=*/0.5);
  power::CapacitorConfig ccfg;  // 100 uF defaults
  power::CapacitorSupply supply(src, ccfg);
  di.attach_supply(&supply);
  const auto cmi = ace::compile(result_->qmodel, di);
  flex::RunOptions opts;
  opts.flex_v_warn =
      power::warn_voltage_for(ccfg, flex::worst_checkpoint_energy(cmi, di.cost()) + 5e-6, 3.0);
  const auto inter = rt->infer(di, cmi, qin, opts);
  ASSERT_TRUE(inter.completed());
  EXPECT_EQ(inter.output, cont.output);
}

TEST_F(FullStack, PredictionsSurviveTheWholeStack) {
  // Class decisions on-device match the float model on most test samples.
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(result_->qmodel, dev);
  auto rt = flex::make_ace_runtime();
  int agree = 0;
  constexpr int kN = 20;
  for (int i = 0; i < kN; ++i) {
    const auto& x = result_->data.test.x[static_cast<std::size_t>(i)];
    const nn::Tensor fy = result_->model.forward(x);
    const auto qin = quant::quantize_input(result_->qmodel, x);
    const auto st = rt->infer(dev, cm, qin);
    const auto out16 = std::vector<float>(st.output.begin(), st.output.end());
    if (train::argmax(fy.data()) == train::argmax(out16)) ++agree;
  }
  EXPECT_GE(agree, kN * 3 / 4);
}

TEST_F(FullStack, CheckpointOverheadIsSmallFraction) {
  const auto qin = quant::quantize_input(result_->qmodel, result_->data.test.x[0]);
  dev::Device di;
  power::ConstantSource src(4e-3);
  power::CapacitorConfig ccfg;
  power::CapacitorSupply supply(src, ccfg);
  di.attach_supply(&supply);
  const auto cm = ace::compile(result_->qmodel, di);
  auto rt = flex::make_flex_runtime();
  flex::RunOptions opts;
  opts.flex_v_warn =
      power::warn_voltage_for(ccfg, flex::worst_checkpoint_energy(cm, di.cost()) + 5e-6, 3.0);
  const auto st = rt->infer(di, cm, qin, opts);
  ASSERT_TRUE(st.completed());
  // SSIV-A.5: total checkpoint overhead is ~1% of inference energy.
  EXPECT_LT(st.checkpoint_energy_j, 0.05 * st.energy_j);
}

}  // namespace
}  // namespace ehdnn
