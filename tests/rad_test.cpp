#include <gtest/gtest.h>

#include "core/rad/pipeline.h"
#include "core/rad/resource.h"
#include "core/rad/search.h"
#include "models/zoo.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"

namespace ehdnn::rad {
namespace {

TEST(Resource, PaperModelsFitTheBoard) {
  Rng rng(1);
  for (models::Task t :
       {models::Task::kMnist, models::Task::kHar, models::Task::kOkg}) {
    models::ModelInfo info;
    nn::Model m = models::make_model(t, rng, &info);
    const auto r = estimate(m, info.input_shape);
    EXPECT_TRUE(r.fits()) << models::task_name(t);
    EXPECT_LE(r.fram_bytes, 256u * 1024u);
    EXPECT_GT(r.latency_s, 0.0);
    EXPECT_GT(r.energy_j, 0.0);
  }
}

TEST(Resource, CompressedModelSmallerAndFasterThanDense) {
  Rng rng(2);
  models::ModelInfo info;
  nn::Model comp = models::make_har_model(rng, &info);
  nn::Model dense = models::make_har_dense(rng);
  const auto rc = estimate(comp, info.input_shape);
  // The dense twin does not fit the real board's FRAM (that is the point
  // of RAD); measure it on a virtually enlarged one.
  dev::DeviceConfig big;
  big.fram_words = 4 * 1024 * 1024;
  const auto rd = estimate(dense, info.input_shape, big);
  EXPECT_LT(rc.weight_bytes, rd.weight_bytes / 10);
  EXPECT_LT(rc.latency_s, rd.latency_s);
  EXPECT_LT(rc.energy_j, rd.energy_j);
}

TEST(Resource, RejectsOversizedModel) {
  Rng rng(3);
  nn::Model huge;
  huge.add<nn::Dense>(600, 512)->init(rng);  // 307k weights > FRAM/2 words? no...
  huge.add<nn::ReLU>();
  huge.add<nn::Dense>(512, 600)->init(rng);
  // 600*512*2 fits FRAM; build something that truly does not: 120k x 1
  nn::Model too_big;
  too_big.add<nn::Dense>(130000, 2)->init(rng);
  const auto r = estimate(too_big, {130000});
  EXPECT_FALSE(r.fits());
}

TEST(Search, FindsFeasibleCandidate) {
  Rng rng(4);
  auto data = data::make_mnist_like(rng, 120, 60);
  SearchConfig cfg;
  cfg.grid = {
      {4, 16, 128, 64, 13},
      {6, 16, 256, 128, 13},
      {8, 16, 256, 64, 13},
  };
  cfg.quick_epochs = 1;
  const auto res = search(data, cfg, rng);
  EXPECT_EQ(res.scored.size(), 3u);
  bool found_best = false;
  for (const auto& sc : res.scored) {
    if (sc.feasible) {
      EXPECT_GE(sc.quick_accuracy, 0.0f);
      EXPECT_TRUE(sc.resources.fits());
    }
    if (sc.cand.conv1_filters == res.best.conv1_filters &&
        sc.cand.fc_width == res.best.fc_width && sc.cand.bcm_block == res.best.bcm_block) {
      found_best = true;
    }
  }
  EXPECT_TRUE(found_best);
}

TEST(Search, LatencyConstraintFilters) {
  Rng rng(5);
  auto data = data::make_mnist_like(rng, 40, 20);
  SearchConfig cfg;
  cfg.grid = {{6, 16, 256, 128, 13}};
  cfg.max_latency_s = 1e-9;  // impossible
  EXPECT_THROW(search(data, cfg, rng), Error);
}

TEST(Search, BuildCandidateShapes) {
  Rng rng(6);
  const Candidate c{4, 16, 128, 64, 13};
  nn::Model m = build_candidate(c, 10, rng);
  EXPECT_EQ(m.output_shape({1, 28, 28}), (std::vector<std::size_t>{10}));
}

TEST(Pipeline, TinyMnistEndToEnd) {
  Rng rng(7);
  RadConfig cfg;
  cfg.task = models::Task::kMnist;
  cfg.train_samples = 300;
  cfg.test_samples = 80;
  cfg.epochs = 3;
  cfg.sgd.lr = 0.02f;
  cfg.admm.admm_iters = 1;
  cfg.admm.epochs_per_iter = 1;
  cfg.admm.finetune_epochs = 1;
  const auto res = run_rad(cfg, rng);

  EXPECT_GT(res.float_accuracy, 0.25f);  // well above 10% chance
  EXPECT_GT(res.quant_accuracy, res.float_accuracy - 0.1f);
  EXPECT_FALSE(res.layers.empty());

  // Table II rows: the BCM FC reports 128x, the pruned conv ~2x.
  bool saw_bcm = false, saw_prune = false;
  for (const auto& l : res.layers) {
    if (l.method == "BCM k=128") {
      saw_bcm = true;
      EXPECT_DOUBLE_EQ(l.compression, 128.0);
    }
    if (l.method == "shape pruning") {
      saw_prune = true;
      EXPECT_NEAR(l.compression, 25.0 / 13.0, 1e-9);
    }
  }
  EXPECT_TRUE(saw_bcm);
  EXPECT_TRUE(saw_prune);
  EXPECT_LT(res.admm_violation, 0.9);
}

TEST(Pipeline, HarEndToEnd) {
  Rng rng(8);
  RadConfig cfg;
  cfg.task = models::Task::kHar;
  cfg.train_samples = 400;
  cfg.test_samples = 80;
  cfg.epochs = 5;
  cfg.sgd.lr = 0.01f;  // the wide BCM layer needs a gentler rate
  const auto res = run_rad(cfg, rng);
  EXPECT_GT(res.float_accuracy, 0.4f);  // chance is 1/6
  EXPECT_GT(res.quant_accuracy, res.float_accuracy - 0.1f);
}

TEST(Pipeline, QuantModelDeployable) {
  Rng rng(9);
  RadConfig cfg;
  cfg.task = models::Task::kMnist;
  cfg.train_samples = 100;
  cfg.test_samples = 40;
  cfg.epochs = 1;
  cfg.admm.admm_iters = 1;
  const auto res = run_rad(cfg, rng);
  const auto rep = estimate(res.qmodel);
  EXPECT_TRUE(rep.fits());
}

}  // namespace
}  // namespace ehdnn::rad
