// Bulk-vs-scalar device-access equivalence: the bulk fast paths
// (read_block / write_block / read_gather / mac_block / cpu_copy /
// dma_copy, and the kernels built on them) must be observationally
// identical to the scalar per-word reference path — same memory contents,
// same modeled cycle and energy totals per rail, and the same
// word-granular FRAM commit behavior across a mid-block brown-out.
// Plus the vec_mac 32-bit-accumulator edge cases at the exact Q31
// boundaries, and FftPlan cache thread safety.

#include <gtest/gtest.h>

#include <thread>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "device/device.h"
#include "dsp/fft.h"
#include "fixed/vec.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "power/continuous.h"
#include "quant/quantize.h"
#include "util/rng.h"

namespace ehdnn::dev {
namespace {

using fx::q15_t;

// Deterministic fixed-budget supply (no harvest income): brown-out occurs
// at an exactly computable word within a block write.
class BudgetSupply : public PowerSupply {
 public:
  explicit BudgetSupply(double joules) : budget_(joules) {}

  bool consume(double joules, double dt) override {
    now_ += dt;
    budget_ -= joules;
    if (budget_ < 0.0) {
      on_ = false;
      return false;
    }
    return true;
  }
  double voltage() const override { return on_ ? 3.3 : 0.0; }
  double headroom() const override { return std::max(budget_, 0.0); }
  bool on() const override { return on_; }
  double recharge_to_on() override {
    budget_ = recharge_to_;
    on_ = true;
    return 1.0;
  }
  double now() const override { return now_; }

  void set_recharge_budget(double joules) { recharge_to_ = joules; }

 private:
  double budget_;
  double recharge_to_ = 0.0;
  bool on_ = true;
  double now_ = 0.0;
};

constexpr double kRelTol = 1e-9;  // n*x vs x+x+...+x FP association slack

void expect_traces_match(const Device& a, const Device& b) {
  for (std::size_t r = 0; r < static_cast<std::size_t>(Rail::kCount); ++r) {
    const auto rail = static_cast<Rail>(r);
    EXPECT_NEAR(a.trace().energy(rail), b.trace().energy(rail),
                kRelTol * (std::abs(b.trace().energy(rail)) + 1e-30))
        << "energy rail " << rail_name(rail);
    EXPECT_NEAR(a.trace().cycles(rail), b.trace().cycles(rail),
                kRelTol * (std::abs(b.trace().cycles(rail)) + 1e-30))
        << "cycle rail " << rail_name(rail);
  }
}

void expect_memory_match(const Device& a, const Device& b, MemKind mem, Addr base,
                         std::size_t n) {
  const MemoryRegion& ra = mem == MemKind::kSram ? a.sram() : a.fram();
  const MemoryRegion& rb = mem == MemKind::kSram ? b.sram() : b.fram();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(ra.peek(base + i), rb.peek(base + i)) << "word " << base + i;
  }
}

// Drives the same access sequence through both devices.
template <typename Fn>
void run_both(Device& bulk, Device& scalar, Fn&& fn) {
  bulk.set_bulk_enabled(true);
  scalar.set_bulk_enabled(false);
  fn(bulk);
  fn(scalar);
}

TEST(BulkAccess, BlockReadWriteGatherMacMatchScalar) {
  Device bulk, scalar;
  Rng rng(42);
  std::vector<q15_t> data(256);
  for (auto& v : data) v = static_cast<q15_t>(rng.next_u64());
  std::vector<std::uint32_t> offsets = {0, 7, 3, 128, 255, 16, 16, 9};

  std::vector<q15_t> out_bulk, out_scalar;
  std::int64_t mac_bulk = 0, mac_scalar = 0;
  bool ovf_bulk = false, ovf_scalar = false;
  auto drive = [&](Device& d, std::vector<q15_t>& out, std::int64_t& mac, bool& ovf) {
    d.write_block(MemKind::kFram, 100, data);
    d.cpu_copy(MemKind::kFram, 100, MemKind::kSram, 0, 256);
    d.dma_copy(MemKind::kSram, 0, MemKind::kSram, 512, 256);
    out.assign(256 + offsets.size(), 0);
    d.read_block(MemKind::kSram, 512, std::span<q15_t>(out.data(), 256));
    d.read_gather(MemKind::kSram, 0, offsets, 256,
                  std::span<q15_t>(out.data() + 256, offsets.size()));
    mac = d.mac_block(0, 512, 256, &ovf);
  };
  bulk.set_bulk_enabled(true);
  scalar.set_bulk_enabled(false);
  drive(bulk, out_bulk, mac_bulk, ovf_bulk);
  drive(scalar, out_scalar, mac_scalar, ovf_scalar);

  EXPECT_EQ(out_bulk, out_scalar);
  EXPECT_EQ(mac_bulk, mac_scalar);
  EXPECT_EQ(ovf_bulk, ovf_scalar);
  expect_memory_match(bulk, scalar, MemKind::kFram, 100, 256);
  expect_memory_match(bulk, scalar, MemKind::kSram, 0, 768);
  expect_traces_match(bulk, scalar);
}

// FRAM write accounting across a mid-block reboot: with a supply that can
// only pay for part of the block, the bulk path must fall back to
// word-granular commits and leave exactly the prefix the scalar path
// leaves — then finish identically after the reboot.
TEST(BulkAccess, TornFramWriteAcrossRebootMatchesScalar) {
  constexpr std::size_t kN = 64;
  std::vector<q15_t> data(kN);
  for (std::size_t i = 0; i < kN; ++i) data[i] = static_cast<q15_t>(1000 + i);

  auto torn_run = [&](bool bulk_mode) {
    Device d;
    d.set_bulk_enabled(bulk_mode);
    // Budget for roughly half the block's FRAM writes.
    const CostModel& cm = d.cost();
    const double per_word =
        cm.e_fram_write + cm.p_cpu_active * cm.cycles_fram_word / cm.cpu_hz;
    BudgetSupply supply(per_word * (kN / 2) + per_word * 0.5);
    supply.set_recharge_budget(1.0);  // effectively unlimited after reboot
    d.attach_supply(&supply);
    // Sentinel so untouched words are provably untouched.
    for (std::size_t i = 0; i < kN; ++i) d.fram().poke(i, -7);
    bool failed = false;
    try {
      d.write_block(MemKind::kFram, 0, data);
    } catch (const PowerFailure&) {
      failed = true;
    }
    EXPECT_TRUE(failed);
    // Count the committed prefix.
    std::size_t prefix = 0;
    while (prefix < kN && d.fram().peek(prefix) == data[prefix]) ++prefix;
    for (std::size_t i = prefix; i < kN; ++i) EXPECT_EQ(d.fram().peek(i), -7);
    // Reboot (FRAM retained) and re-issue the whole block.
    supply.recharge_to_on();
    d.reboot();
    d.write_block(MemKind::kFram, 0, data);
    return std::pair<std::size_t, double>(prefix, d.trace().total_energy());
  };

  const auto [prefix_bulk, energy_bulk] = torn_run(true);
  const auto [prefix_scalar, energy_scalar] = torn_run(false);
  EXPECT_GT(prefix_bulk, 0u);
  EXPECT_LT(prefix_bulk, kN);
  EXPECT_EQ(prefix_bulk, prefix_scalar);
  EXPECT_NEAR(energy_bulk, energy_scalar, kRelTol * energy_scalar);
}

// Whole-model equivalence: every layer kind through the real kernels.
TEST(BulkAccess, FullModelBitExactAndCostIdentical) {
  Rng rng(7);
  nn::Model m;
  m.add<nn::Conv2D>(2, 4, 3, 3)->init(rng);
  m.add<nn::MaxPool2D>();
  m.add<nn::ReLU>();
  m.add<nn::Flatten>();
  m.add<nn::BcmDense>(64, 64, 32)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(64, 10)->init(rng);

  const std::vector<std::size_t> shape{2, 10, 10};
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) {
    nn::Tensor t(shape);
    for (std::size_t j = 0; j < t.size(); ++j) {
      t[j] = static_cast<float>(rng.uniform(-0.9, 0.9));
    }
    calib.push_back(std::move(t));
  }
  const auto qm = quant::quantize(m, calib, shape);
  nn::Tensor x(shape);
  for (std::size_t j = 0; j < x.size(); ++j) {
    x[j] = static_cast<float>(rng.uniform(-0.9, 0.9));
  }
  const auto qin = quant::quantize_input(qm, x);

  auto run = [&](bool bulk_mode) {
    Device d;
    d.set_bulk_enabled(bulk_mode);
    power::ContinuousPower supply;
    d.attach_supply(&supply);
    const auto cm = ace::compile(qm, d);
    auto rt = flex::make_ace_runtime();
    auto st = rt->infer(d, cm, qin, {});
    EXPECT_TRUE(st.completed());
    return std::tuple<std::vector<q15_t>, double, double>(
        st.output, d.trace().total_cycles(), d.trace().total_energy());
  };
  const auto [out_bulk, cyc_bulk, e_bulk] = run(true);
  const auto [out_scalar, cyc_scalar, e_scalar] = run(false);
  EXPECT_EQ(out_bulk, out_scalar);
  EXPECT_NEAR(cyc_bulk, cyc_scalar, kRelTol * cyc_scalar);
  EXPECT_NEAR(e_bulk, e_scalar, kRelTol * e_scalar);
}

}  // namespace
}  // namespace ehdnn::dev

namespace ehdnn::fx {
namespace {

// vec_mac's overflowed_q31 must flip exactly past the ±Q31 boundaries —
// the contract the LEA MAC's 32-bit hardware accumulator imposes.
TEST(VecMacOverflow, ExactQ31MaxIsNotOverflow) {
  // (-2^15)^2 + 1*(-1) + (-2^15)^2 = 2^31 - 1 = INT32_MAX exactly, with
  // every partial sum inside the range (the flag watches partial sums).
  const std::vector<q15_t> a{-32768, 1, -32768};
  const std::vector<q15_t> b{-32768, -1, -32768};
  const MacResult r = vec_mac(a, b);
  EXPECT_EQ(r.acc_q30, std::numeric_limits<q31_t>::max());
  EXPECT_FALSE(r.overflowed_q31);
}

TEST(VecMacOverflow, OnePastQ31MaxOverflows) {
  // 2^30 + 2^30 = 2^31 = INT32_MAX + 1.
  const std::vector<q15_t> a{-32768, -32768};
  const std::vector<q15_t> b{-32768, -32768};
  const MacResult r = vec_mac(a, b);
  EXPECT_EQ(r.acc_q30, std::int64_t{1} << 31);
  EXPECT_TRUE(r.overflowed_q31);
}

TEST(VecMacOverflow, ExactQ31MinIsNotOverflow) {
  // 2 * (-32768 * 32767) + (-32768 * 2) = -2^31 = INT32_MIN exactly.
  const std::vector<q15_t> a{-32768, -32768, -32768};
  const std::vector<q15_t> b{32767, 32767, 2};
  const MacResult r = vec_mac(a, b);
  EXPECT_EQ(r.acc_q30, std::numeric_limits<q31_t>::min());
  EXPECT_FALSE(r.overflowed_q31);
}

TEST(VecMacOverflow, OnePastQ31MinOverflows) {
  const std::vector<q15_t> a{-32768, -32768, -32768, 1};
  const std::vector<q15_t> b{32767, 32767, 2, -1};
  const MacResult r = vec_mac(a, b);
  EXPECT_EQ(r.acc_q30, static_cast<std::int64_t>(std::numeric_limits<q31_t>::min()) - 1);
  EXPECT_TRUE(r.overflowed_q31);
}

TEST(VecMacOverflow, TransientOverflowStaysFlagged) {
  // Exceed +Q31 then fall back inside the range: the flag must stay set,
  // exactly as the wrapped hardware accumulator would have corrupted the
  // sum even though the final value fits.
  const std::vector<q15_t> a{-32768, -32768, -32768, -32768};
  const std::vector<q15_t> b{-32768, -32768, 32767, 32767};
  const MacResult r = vec_mac(a, b);
  EXPECT_EQ(r.acc_q30, 65536);  // back in range
  EXPECT_TRUE(r.overflowed_q31);
  // Device mac_block reports the same decision.
  dev::Device d;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d.sram().poke(i, a[i]);
    d.sram().poke(64 + i, b[i]);
  }
  bool ovf = false;
  const std::int64_t acc = d.mac_block(0, 64, a.size(), &ovf);
  EXPECT_EQ(acc, r.acc_q30);
  EXPECT_TRUE(ovf);
}

}  // namespace
}  // namespace ehdnn::fx

namespace ehdnn::dsp {
namespace {

// FftPlan cache: concurrent first-touch from many threads must neither
// race nor invalidate previously returned references.
TEST(FftPlanCache, ThreadSafeFirstTouch) {
  const std::vector<std::size_t> sizes{8, 16, 32, 64, 128, 256, 512};
  const FftPlan* first = &fft_plan(8);
  std::vector<std::thread> threads;
  std::vector<const FftPlan*> got(8 * sizes.size(), nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t, &sizes, &got] {
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        got[static_cast<std::size_t>(t) * sizes.size() + i] = &fft_plan(sizes[i]);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Same size -> same stable plan object, with coherent contents.
  for (int t = 0; t < 8; ++t) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const FftPlan* p = got[static_cast<std::size_t>(t) * sizes.size() + i];
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(p, &fft_plan(sizes[i]));
      EXPECT_EQ(p->n, sizes[i]);
      EXPECT_EQ(p->twiddles.size(), sizes[i] / 2);
    }
  }
  EXPECT_EQ(first, &fft_plan(8));
  EXPECT_EQ(&twiddles_q15(64), &fft_plan(64).twiddles);
}

}  // namespace
}  // namespace ehdnn::dsp
