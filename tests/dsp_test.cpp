#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dsp/circulant.h"
#include "dsp/fft.h"
#include "util/check.h"
#include "util/rng.h"

namespace ehdnn::dsp {
namespace {

using fx::cq15;
using fx::q15_t;

std::vector<std::complex<double>> random_signal(std::size_t n, Rng& rng, double amp = 1.0) {
  std::vector<std::complex<double>> x(n);
  for (auto& v : x) v = {rng.uniform(-amp, amp), rng.uniform(-amp, amp)};
  return x;
}

// ---- double-precision FFT --------------------------------------------------

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  auto x = random_signal(n, rng);
  const auto ref = dft_naive(x);
  fft(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), ref[i].real(), 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(x[i].imag(), ref[i].imag(), 1e-9 * static_cast<double>(n));
  }
}

TEST_P(FftSizes, IfftInvertsFft) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  auto x = random_signal(n, rng);
  const auto orig = x;
  fft(x);
  ifft(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-10 * static_cast<double>(n));
    EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-10 * static_cast<double>(n));
  }
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(n + 2);
  auto x = random_signal(n, rng);
  double time_e = 0.0;
  for (const auto& v : x) time_e += std::norm(v);
  fft(x);
  double freq_e = 0.0;
  for (const auto& v : x) freq_e += std::norm(v);
  EXPECT_NEAR(freq_e / static_cast<double>(n), time_e, 1e-8 * time_e);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u));

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> x(6);
  EXPECT_THROW(fft(x), Error);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> x(16, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

// ---- Q15 FFT ---------------------------------------------------------------

class QFftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QFftSizes, FixedScaleMatchesScaledDft) {
  const std::size_t n = GetParam();
  Rng rng(n * 3);
  std::vector<cq15> q(n);
  std::vector<std::complex<double>> d(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double re = rng.uniform(-0.9, 0.9);
    const double im = rng.uniform(-0.9, 0.9);
    q[i] = {fx::to_q15(re), fx::to_q15(im)};
    d[i] = {fx::to_double(q[i].re), fx::to_double(q[i].im)};
  }
  const auto ref = dft_naive(d);
  fx::SatStats stats;
  const int exp = fft_q15(q, FftScaling::kFixedScale, &stats);
  EXPECT_EQ(exp, static_cast<int>(std::log2(n)));
  EXPECT_EQ(stats.saturations, 0);  // fixed scaling cannot overflow
  const double scale = std::exp2(exp);
  // Error budget: ~1 LSB per stage relative to the scaled output.
  const double tol = (std::log2(n) + 2.0) / 32768.0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fx::to_double(q[i].re) * scale, ref[i].real(), tol * scale);
    EXPECT_NEAR(fx::to_double(q[i].im) * scale, ref[i].imag(), tol * scale);
  }
}

TEST_P(QFftSizes, BlockFloatMatchesScaledDft) {
  const std::size_t n = GetParam();
  Rng rng(n * 5);
  std::vector<cq15> q(n);
  std::vector<std::complex<double>> d(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Small signals: BFP should take few shifts and keep precision.
    const double re = rng.uniform(-0.05, 0.05);
    const double im = rng.uniform(-0.05, 0.05);
    q[i] = {fx::to_q15(re), fx::to_q15(im)};
    d[i] = {fx::to_double(q[i].re), fx::to_double(q[i].im)};
  }
  const auto ref = dft_naive(d);
  fx::SatStats stats;
  const int exp = fft_q15(q, FftScaling::kBlockFloat, &stats);
  EXPECT_EQ(stats.saturations, 0);
  EXPECT_LE(exp, static_cast<int>(std::log2(n)));
  const double scale = std::exp2(exp);
  const double tol = (std::log2(n) + 2.0) / 32768.0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fx::to_double(q[i].re) * scale, ref[i].real(), tol * scale);
  }
}

TEST_P(QFftSizes, IfftInvertsWithinQuantization) {
  const std::size_t n = GetParam();
  Rng rng(n * 7);
  std::vector<cq15> q(n);
  std::vector<double> orig(n);
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = {fx::to_q15(rng.uniform(-0.8, 0.8)), 0};
    orig[i] = fx::to_double(q[i].re);
  }
  fx::SatStats stats;
  int exp = fft_q15(q, FftScaling::kBlockFloat, &stats);
  exp += ifft_q15(q, FftScaling::kBlockFloat, &stats);
  EXPECT_EQ(stats.saturations, 0);
  const double scale = std::exp2(exp);
  const double tol = 4.0 * (std::log2(n) + 2.0) / 32768.0 * std::max(1.0, scale);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fx::to_double(q[i].re) * scale, orig[i], tol);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, QFftSizes,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u, 256u));

TEST(QFft, UnscaledSaturatesOnLargeInput) {
  // Full-scale DC input: the unscaled FFT must clip (the overflow failure
  // mode Algorithm 1's SCALE-DOWN exists to prevent).
  std::vector<cq15> q(64, cq15{fx::to_q15(0.9), 0});
  fx::SatStats stats;
  fft_q15(q, FftScaling::kNone, &stats);
  EXPECT_GT(stats.saturations, 0);
}

TEST(QFft, TwiddleTableQuantizesUnitCircle) {
  const auto& tw = twiddles_q15(64);
  ASSERT_EQ(tw.size(), 32u);
  EXPECT_EQ(tw[0].re, fx::kQ15Max);  // cos(0)=1 saturates to q15 max
  EXPECT_EQ(tw[0].im, 0);
  for (const auto& w : tw) {
    const double mag = std::hypot(fx::to_double(w.re), fx::to_double(w.im));
    EXPECT_NEAR(mag, 1.0, 2e-4);
  }
}

// ---- circulant -------------------------------------------------------------

class CirculantSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CirculantSizes, FftMatvecMatchesNaive) {
  const std::size_t k = GetParam();
  Rng rng(k * 11);
  std::vector<double> c(k), x(k);
  for (std::size_t i = 0; i < k; ++i) {
    c[i] = rng.uniform(-1.0, 1.0);
    x[i] = rng.uniform(-1.0, 1.0);
  }
  const auto ref = circ_conv_ref(c, x);
  const auto got = circulant_matvec(c, x);
  for (std::size_t i = 0; i < k; ++i) EXPECT_NEAR(got[i], ref[i], 1e-9 * static_cast<double>(k));
}

TEST_P(CirculantSizes, Q15MatvecMatchesDouble) {
  const std::size_t k = GetParam();
  Rng rng(k * 13);
  std::vector<q15_t> c(k), x(k);
  std::vector<double> cd(k), xd(k);
  for (std::size_t i = 0; i < k; ++i) {
    // Magnitudes typical of trained, normalized weights/activations.
    c[i] = fx::to_q15(rng.uniform(-0.1, 0.1));
    x[i] = fx::to_q15(rng.uniform(-0.5, 0.5));
    cd[i] = fx::to_double(c[i]);
    xd[i] = fx::to_double(x[i]);
  }
  const auto ref = circ_conv_ref(cd, xd);
  fx::SatStats stats;
  const auto scaled = circulant_matvec_q15(c, x, FftScaling::kBlockFloat, &stats);
  EXPECT_EQ(stats.saturations, 0);
  const auto got = narrow(scaled, &stats);
  // Block-float error: a few LSB at the output scale.
  const double tol = 16.0 * std::exp2(std::max(0, scaled.exponent)) / 32768.0 +
                     8.0 * std::log2(static_cast<double>(k)) / 32768.0;
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(fx::to_double(got[i]), ref[i], tol) << "i=" << i << " k=" << k;
  }
}

TEST_P(CirculantSizes, FixedScaleCoarserButUnbiased) {
  const std::size_t k = GetParam();
  Rng rng(k * 17);
  std::vector<q15_t> c(k), x(k);
  std::vector<double> cd(k), xd(k);
  for (std::size_t i = 0; i < k; ++i) {
    c[i] = fx::to_q15(rng.uniform(-0.1, 0.1));
    x[i] = fx::to_q15(rng.uniform(-0.5, 0.5));
    cd[i] = fx::to_double(c[i]);
    xd[i] = fx::to_double(x[i]);
  }
  const auto ref = circ_conv_ref(cd, xd);
  const auto scaled = circulant_matvec_q15(c, x, FftScaling::kFixedScale);
  // Paper Algorithm 1: exponent is exactly 2*log2(k) (SCALE-DOWN twice).
  EXPECT_EQ(scaled.exponent, 2 * static_cast<int>(std::log2(k)));
  const auto got = narrow(scaled);
  // Resolution after SCALE-UP is 2^exponent LSBs — the quantization cost
  // of fixed scaling that limits large block sizes (paper SSIV-A.4).
  // Per-stage rounding accumulates a few grid steps on top.
  const double tol = 4.0 * std::exp2(scaled.exponent) / 32768.0;
  for (std::size_t i = 0; i < k; ++i) EXPECT_NEAR(fx::to_double(got[i]), ref[i], tol);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, CirculantSizes,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u, 256u));

TEST(Circulant, IdentityFirstColumn) {
  // c = e0 makes C the identity.
  std::vector<double> c(16, 0.0), x(16);
  c[0] = 1.0;
  Rng rng(3);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto y = circulant_matvec(c, x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-12);
}

TEST(Circulant, ShiftFirstColumnRotates) {
  // c = e1 rotates x by one position.
  std::vector<double> c(8, 0.0), x{1, 2, 3, 4, 5, 6, 7, 8};
  c[1] = 1.0;
  const auto y = circulant_matvec(c, x);
  EXPECT_NEAR(y[0], 8.0, 1e-12);
  EXPECT_NEAR(y[1], 1.0, 1e-12);
  EXPECT_NEAR(y[7], 7.0, 1e-12);
}

TEST(Circulant, RefRejectsSizeMismatch) {
  std::vector<double> c(8), x(4);
  EXPECT_THROW(circ_conv_ref(c, x), Error);
}

TEST(Circulant, NarrowAppliesExponent) {
  ScaledVecQ15 v;
  v.data = {100, -100};
  v.exponent = 3;
  const auto out = narrow(v);
  EXPECT_EQ(out[0], 800);
  EXPECT_EQ(out[1], -800);
}

}  // namespace
}  // namespace ehdnn::dsp
