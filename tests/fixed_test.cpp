#include <gtest/gtest.h>

#include "fixed/cq15.h"
#include "fixed/q15.h"
#include "fixed/vec.h"
#include "util/rng.h"

namespace ehdnn::fx {
namespace {

TEST(Q15, ConversionRoundTrip) {
  for (double v : {0.0, 0.5, -0.5, 0.25, -1.0, 0.999969482421875}) {
    EXPECT_NEAR(to_double(to_q15(v)), v, 1.0 / kQ15One);
  }
}

TEST(Q15, ConversionSaturates) {
  SatStats stats;
  EXPECT_EQ(to_q15(1.0, &stats), kQ15Max);
  EXPECT_EQ(to_q15(2.5, &stats), kQ15Max);
  EXPECT_EQ(to_q15(-1.5, &stats), kQ15Min);
  EXPECT_EQ(stats.saturations, 3);
  EXPECT_EQ(to_q15(-1.0), kQ15Min);  // exactly representable
}

TEST(Q15, RoundsToNearest) {
  // 0.6 * 32768 = 19660.8 -> 19661
  EXPECT_EQ(to_q15(0.6), 19661);
  EXPECT_EQ(to_q15(-0.6), -19661);
}

TEST(Q15, AddSaturates) {
  SatStats stats;
  EXPECT_EQ(add_sat(20000, 20000, &stats), kQ15Max);
  EXPECT_EQ(add_sat(-20000, -20000, &stats), kQ15Min);
  EXPECT_EQ(stats.saturations, 2);
  EXPECT_EQ(add_sat(100, -50), 50);
}

TEST(Q15, SubSaturates) {
  EXPECT_EQ(sub_sat(20000, -20000), kQ15Max);
  EXPECT_EQ(sub_sat(-20000, 20000), kQ15Min);
  EXPECT_EQ(sub_sat(100, 50), 50);
}

TEST(Q15, MulMatchesDouble) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const q15_t a = to_q15(rng.uniform(-1.0, 1.0));
    const q15_t b = to_q15(rng.uniform(-1.0, 1.0));
    const double expect = to_double(a) * to_double(b);
    EXPECT_NEAR(to_double(mul_q15(a, b)), expect, 1.0 / kQ15One);
  }
}

TEST(Q15, MulMinusOneSquaredSaturates) {
  SatStats stats;
  EXPECT_EQ(mul_q15(kQ15Min, kQ15Min, &stats), kQ15Max);
  EXPECT_EQ(stats.saturations, 1);
}

TEST(Q15, MulQ30Exact) {
  EXPECT_EQ(mul_q30(16384, 16384), 16384 * 16384);  // 0.5*0.5 in Q30
  EXPECT_EQ(mul_q30(-16384, 16384), -16384 * 16384);
}

TEST(Q15, ShiftLeftSaturates) {
  SatStats stats;
  EXPECT_EQ(shift_sat(20000, 1, &stats), kQ15Max);
  EXPECT_EQ(shift_sat(-20000, 2, &stats), kQ15Min);
  EXPECT_EQ(shift_sat(100, 3), 800);
  EXPECT_EQ(stats.saturations, 2);
}

TEST(Q15, ShiftRightRounds) {
  EXPECT_EQ(shift_sat(101, -1), 51);   // 50.5 rounds away from... to 51
  EXPECT_EQ(shift_sat(100, -2), 25);
  EXPECT_EQ(shift_sat(3, -16), 0);     // full underflow
  EXPECT_EQ(shift_sat(-3, -16), -1);   // sign floor
}

TEST(Q15, NarrowQ30) {
  // A Q30 value of 0.25 narrowed by 15 gives q15 0.25.
  const std::int64_t q30 = static_cast<std::int64_t>(0.25 * (1 << 30));
  EXPECT_EQ(narrow_q30(q30, 15), to_q15(0.25));
  SatStats stats;
  EXPECT_EQ(narrow_q30(std::int64_t{1} << 50, 15, &stats), kQ15Max);
  EXPECT_EQ(stats.saturations, 1);
}

TEST(Q15, NarrowNegativeShiftWidens) {
  EXPECT_EQ(narrow_q30(100, -2), 400);
}

TEST(CQ15, ComplexMultiplyMatchesDouble) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const cq15 a{to_q15(rng.uniform(-0.7, 0.7)), to_q15(rng.uniform(-0.7, 0.7))};
    const cq15 b{to_q15(rng.uniform(-0.7, 0.7)), to_q15(rng.uniform(-0.7, 0.7))};
    const double re = to_double(a.re) * to_double(b.re) - to_double(a.im) * to_double(b.im);
    const double im = to_double(a.re) * to_double(b.im) + to_double(a.im) * to_double(b.re);
    const cq15 p = cmul(a, b);
    EXPECT_NEAR(to_double(p.re), re, 2.0 / kQ15One);
    EXPECT_NEAR(to_double(p.im), im, 2.0 / kQ15One);
  }
}

TEST(CQ15, CmulCommutative) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const cq15 a{static_cast<q15_t>(rng.next_u64()), static_cast<q15_t>(rng.next_u64())};
    const cq15 b{static_cast<q15_t>(rng.next_u64()), static_cast<q15_t>(rng.next_u64())};
    const cq15 ab = cmul(a, b);
    const cq15 ba = cmul(b, a);
    EXPECT_EQ(ab.re, ba.re);
    EXPECT_EQ(ab.im, ba.im);
  }
}

TEST(CQ15, ConjNegatesImaginary) {
  const cq15 a{100, -200};
  const cq15 c = conj(a);
  EXPECT_EQ(c.re, 100);
  EXPECT_EQ(c.im, 200);
  // -(-32768) saturates.
  EXPECT_EQ(conj(cq15{0, kQ15Min}).im, kQ15Max);
}

TEST(Vec, AddAndMpy) {
  std::vector<q15_t> a{to_q15(0.5), to_q15(-0.25), 30000};
  std::vector<q15_t> b{to_q15(0.25), to_q15(0.5), 30000};
  std::vector<q15_t> out(3);
  SatStats stats;
  vec_add(a, b, out, &stats);
  EXPECT_EQ(out[0], to_q15(0.75));
  EXPECT_EQ(out[2], kQ15Max);  // saturated
  EXPECT_EQ(stats.saturations, 1);
  vec_mpy(a, b, out);
  EXPECT_NEAR(to_double(out[0]), 0.125, 1e-4);
}

TEST(Vec, MacMatchesDouble) {
  // Amplitudes typical of normalized activations/weights; full-scale
  // 64-element dot products genuinely overflow the LEA's 32-bit
  // accumulator (covered by MacReportsQ31Overflow below).
  Rng rng(21);
  std::vector<q15_t> a(64), b(64);
  double expect = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = to_q15(rng.uniform(-0.15, 0.15));
    b[i] = to_q15(rng.uniform(-0.15, 0.15));
    expect += to_double(a[i]) * to_double(b[i]);
  }
  const MacResult r = vec_mac(a, b);
  EXPECT_NEAR(static_cast<double>(r.acc_q30) / (1 << 30), expect, 1e-3);
  EXPECT_FALSE(r.overflowed_q31);
}

TEST(Vec, MacReportsQ31Overflow) {
  // 8192 full-scale products exceed the 32-bit accumulator.
  std::vector<q15_t> a(8192, kQ15Max), b(8192, kQ15Max);
  EXPECT_TRUE(vec_mac(a, b).overflowed_q31);
}

TEST(Vec, QuantizeDequantizeRoundTrip) {
  Rng rng(31);
  std::vector<float> x(100);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-0.99, 0.99));
  const auto q = quantize(x);
  const auto back = dequantize(q);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1.0f / 32768.0f);
}

TEST(Vec, ShiftVector) {
  std::vector<q15_t> a{4, 8, -16};
  std::vector<q15_t> out(3);
  vec_shift(a, 2, out);
  EXPECT_EQ(out[0], 16);
  EXPECT_EQ(out[2], -64);
  vec_shift(a, -1, out);
  EXPECT_EQ(out[0], 2);
}

TEST(Vec, ScaleByConstant) {
  std::vector<q15_t> a{to_q15(0.5), to_q15(-0.5)};
  std::vector<q15_t> out(2);
  vec_scale(a, to_q15(0.5), out);
  EXPECT_NEAR(to_double(out[0]), 0.25, 1e-4);
  EXPECT_NEAR(to_double(out[1]), -0.25, 1e-4);
}

// Property sweep: add_sat equals clamped integer addition everywhere on a
// coarse lattice.
class SatLattice : public ::testing::TestWithParam<int> {};

TEST_P(SatLattice, AddMatchesClampedWideAdd) {
  const int a = GetParam();
  for (int b = -32768; b <= 32767; b += 4099) {
    const int wide = a + b;
    const int clamped = std::clamp(wide, -32768, 32767);
    EXPECT_EQ(add_sat(static_cast<q15_t>(a), static_cast<q15_t>(b)), clamped);
  }
}

INSTANTIATE_TEST_SUITE_P(Lattice, SatLattice,
                         ::testing::Values(-32768, -30000, -12345, -1, 0, 1, 9999, 32767));

}  // namespace
}  // namespace ehdnn::fx
