// Quantile-sketch unit tests: accuracy bounds vs exact percentiles, merge
// algebra (commutative, associative), byte-identical serialization for any
// merge order, and round-trip through the text form. These properties are
// what the sharded fleet engine's determinism contract rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/qsketch.h"
#include "util/rng.h"

namespace ehdnn {
namespace {

double exact_nearest_rank(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
  if (rank < 1) rank = 1;
  return v[rank - 1];
}

TEST(QuantileSketch, EmptyAndSingleValue) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.quantile(0.5), Error);
  EXPECT_THROW(s.min(), Error);
  s.add(0.125);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.min(), 0.125);
  EXPECT_DOUBLE_EQ(s.max(), 0.125);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 0.125);
}

TEST(QuantileSketch, ZeroValuesGoToZeroBucket) {
  QuantileSketch s;
  s.add(0.0);
  s.add(0.0);
  s.add(1.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1.0);
  EXPECT_THROW(s.add(-1.0), Error);
  EXPECT_THROW(s.add(std::nan("")), Error);
}

TEST(QuantileSketch, RelativeErrorBoundOnLogNormalStream) {
  // Latency-like data spanning several decades.
  Rng rng(7);
  std::vector<double> values;
  QuantileSketch s(0.01);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    const double v = std::exp(-6.0 + 9.0 * u);  // ~2.5e-3 .. ~20
    values.push_back(v);
    s.add(v);
  }
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    const double exact = exact_nearest_rank(values, q);
    const double est = s.quantile(q);
    EXPECT_LE(std::abs(est - exact) / exact, 0.011) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(s.quantile(1.0), *std::max_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), *std::min_element(values.begin(), values.end()));
}

TEST(QuantileSketch, MergeIsCommutativeAndAssociative) {
  Rng rng(11);
  QuantileSketch a, b, c;
  for (int i = 0; i < 500; ++i) a.add(0.001 + rng.uniform());
  for (int i = 0; i < 300; ++i) b.add(0.5 + 4.0 * rng.uniform());
  for (int i = 0; i < 200; ++i) c.add(rng.uniform() < 0.1 ? 0.0 : 10.0 * rng.uniform());

  QuantileSketch ab = a;
  ab.merge(b);
  QuantileSketch ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.serialize(), ba.serialize());

  QuantileSketch ab_c = ab;
  ab_c.merge(c);
  QuantileSketch bc = b;
  bc.merge(c);
  QuantileSketch a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c.serialize(), a_bc.serialize());
  EXPECT_EQ(ab_c.count(), 1000u);
}

TEST(QuantileSketch, SerializationIdenticalForAnyMergeOrder) {
  // Split one stream across 4 "shards", merge in every permutation order,
  // and against the unsharded sketch: all five byte-identical.
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i) values.push_back(std::exp(-3.0 + 6.0 * rng.uniform()));

  QuantileSketch whole;
  for (double v : values) whole.add(v);

  std::vector<QuantileSketch> shards(4, QuantileSketch{});
  for (std::size_t i = 0; i < values.size(); ++i) shards[i % 4].add(values[i]);

  std::vector<int> order = {0, 1, 2, 3};
  const std::string expect = whole.serialize();
  do {
    QuantileSketch merged;
    for (int i : order) merged.merge(shards[static_cast<std::size_t>(i)]);
    EXPECT_EQ(merged.serialize(), expect);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(QuantileSketch, RoundTripsThroughText) {
  Rng rng(31);
  QuantileSketch s(0.02);
  s.add(0.0);
  for (int i = 0; i < 1000; ++i) s.add(1e-6 + rng.uniform() * 100.0);
  const std::string line = s.serialize();
  const QuantileSketch back = QuantileSketch::deserialize(line);
  EXPECT_EQ(back.serialize(), line);
  EXPECT_EQ(back.count(), s.count());
  EXPECT_DOUBLE_EQ(back.min(), s.min());
  EXPECT_DOUBLE_EQ(back.max(), s.max());
  EXPECT_DOUBLE_EQ(back.quantile(0.9), s.quantile(0.9));

  QuantileSketch empty;
  EXPECT_EQ(QuantileSketch::deserialize(empty.serialize()).serialize(), empty.serialize());
  EXPECT_THROW(QuantileSketch::deserialize("nonsense"), Error);
  EXPECT_THROW(QuantileSketch::deserialize("qsketch-v1 rel_err=0.01 2 0 0 1 5:1"), Error);
}

TEST(QuantileSketch, RepeatedValueStreamCollapsesToOneBin) {
  // A fleet where every job takes identical time (the lockstep-device
  // degenerate case): the whole stream lands in one log bin, and every
  // quantile must come back within rel_err of the one true value — with
  // q=0/q=1 exact via the tracked min/max.
  QuantileSketch s(0.01);
  for (int i = 0; i < 10000; ++i) s.add(0.007);
  EXPECT_EQ(s.count(), 10000u);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.007);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 0.007);
  for (double q : {0.001, 0.25, 0.5, 0.99}) {
    EXPECT_LE(std::abs(s.quantile(q) - 0.007) / 0.007, 0.01) << "q=" << q;
  }
  // Exactly one "i:c" bin in the text form.
  const std::string line = s.serialize();
  EXPECT_EQ(std::count(line.begin(), line.end(), ':'), 1);
}

TEST(QuantileSketch, DenormalRangeValuesFoldIntoTheZeroBucket) {
  // Sub-threshold values (including true denormals) count as zero rather
  // than producing astronomically negative bin indices; min() still
  // reports the exact smallest value seen.
  QuantileSketch s;
  s.add(5e-324);  // smallest positive denormal
  s.add(1e-300);
  s.add(1e-13);
  s.add(2.0);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 5e-324);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
  // Ranks 1..3 are the zero bucket (reported as min after clamping).
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5e-324);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 2.0);
  // And the whole thing still round-trips through the text form.
  const QuantileSketch back = QuantileSketch::deserialize(s.serialize());
  EXPECT_EQ(back.serialize(), s.serialize());
}

TEST(QuantileSketch, MergeWithEmptyIsIdentityBothWays) {
  QuantileSketch full;
  for (int i = 1; i <= 100; ++i) full.add(0.01 * i);
  const std::string expect = full.serialize();

  QuantileSketch a = full;  // nonempty.merge(empty)
  a.merge(QuantileSketch{});
  EXPECT_EQ(a.serialize(), expect);

  QuantileSketch b;  // empty.merge(nonempty)
  b.merge(full);
  EXPECT_EQ(b.serialize(), expect);
  EXPECT_DOUBLE_EQ(b.min(), 0.01);
  EXPECT_DOUBLE_EQ(b.max(), 1.0);

  QuantileSketch c;  // empty.merge(empty) stays empty
  c.merge(QuantileSketch{});
  EXPECT_EQ(c.count(), 0u);
  EXPECT_THROW(c.quantile(0.5), Error);
}

TEST(QuantileSketch, MergeRejectsMismatchedRelErr) {
  QuantileSketch a(0.01), b(0.02);
  a.add(1.0);
  b.add(1.0);
  EXPECT_THROW(a.merge(b), Error);
}

}  // namespace
}  // namespace ehdnn
