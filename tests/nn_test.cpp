#include <gtest/gtest.h>

#include <sstream>

#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "train/gradcheck.h"
#include "util/rng.h"

namespace ehdnn::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng, double amp = 1.0) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-amp, amp));
  }
  return t;
}

TEST(Tensor, ShapeAndIndexing) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  t.at(1, 2, 3) = 5.0f;
  EXPECT_EQ(t[23], 5.0f);
  EXPECT_EQ(t.shape_str(), "(2,3,4)");
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  t[4] = 7.0f;
  const Tensor r = t.reshaped({6});
  EXPECT_EQ(r.dim(0), 6u);
  EXPECT_EQ(r[4], 7.0f);
  EXPECT_THROW(t.reshaped({5}), Error);
}

TEST(Tensor, MaxAbs) {
  Tensor t({3});
  t[0] = -2.5f;
  t[1] = 1.0f;
  EXPECT_FLOAT_EQ(t.max_abs(), 2.5f);
}

// ---- gradient checks -------------------------------------------------------

TEST(Dense, GradCheck) {
  Rng rng(1);
  Dense layer(7, 5);
  layer.init(rng);
  auto res = train::grad_check(layer, random_tensor({7}, rng), rng);
  EXPECT_LT(res.max_param_err, 2e-2);
  EXPECT_LT(res.max_input_err, 2e-2);
}

TEST(CosineDense, GradCheck) {
  Rng rng(2);
  CosineDense layer(6, 4);
  layer.init(rng);
  auto res = train::grad_check(layer, random_tensor({6}, rng), rng);
  EXPECT_LT(res.max_param_err, 3e-2);
  EXPECT_LT(res.max_input_err, 3e-2);
}

TEST(CosineDense, OutputsBounded) {
  // Cosine normalization constrains intermediates to [-1, 1] (paper SSIII-A).
  Rng rng(3);
  CosineDense layer(32, 16);
  layer.init(rng);
  for (int trial = 0; trial < 50; ++trial) {
    const Tensor y = layer.forward(random_tensor({32}, rng, /*amp=*/10.0));
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_GE(y[i], -1.0001f);
      EXPECT_LE(y[i], 1.0001f);
    }
  }
}

TEST(Conv2D, GradCheck) {
  Rng rng(4);
  Conv2D layer(2, 3, 3, 3);
  layer.init(rng);
  auto res = train::grad_check(layer, random_tensor({2, 6, 6}, rng), rng);
  EXPECT_LT(res.max_param_err, 2e-2);
  EXPECT_LT(res.max_input_err, 2e-2);
}

TEST(Conv2D, GradCheckWithShapeMask) {
  Rng rng(5);
  Conv2D layer(1, 2, 3, 3);
  layer.init(rng);
  layer.set_shape_mask({true, false, true, false, true, false, true, false, true});
  auto res = train::grad_check(layer, random_tensor({1, 5, 5}, rng), rng);
  EXPECT_LT(res.max_param_err, 2e-2);
  EXPECT_LT(res.max_input_err, 2e-2);
}

TEST(Conv1D, GradCheck) {
  Rng rng(6);
  Conv1D layer(2, 3, 4);
  layer.init(rng);
  auto res = train::grad_check(layer, random_tensor({2, 9}, rng), rng);
  EXPECT_LT(res.max_param_err, 2e-2);
  EXPECT_LT(res.max_input_err, 2e-2);
}

class BcmGrad : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BcmGrad, GradCheck) {
  const std::size_t k = GetParam();
  Rng rng(7 + k);
  BcmDense layer(2 * k, k, k);  // two block columns, one block row
  layer.init(rng);
  auto res = train::grad_check(layer, random_tensor({2 * k}, rng), rng);
  EXPECT_LT(res.max_param_err, 3e-2);
  EXPECT_LT(res.max_input_err, 3e-2);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BcmGrad, ::testing::Values(4u, 8u, 16u));

TEST(BcmDense, GradCheckWithPadding) {
  Rng rng(8);
  BcmDense layer(10, 8, 8);  // input pads 10 -> 16
  layer.init(rng);
  auto res = train::grad_check(layer, random_tensor({10}, rng), rng);
  EXPECT_LT(res.max_param_err, 3e-2);
  EXPECT_LT(res.max_input_err, 3e-2);
}

TEST(MaxPool2D, GradCheck) {
  Rng rng(9);
  MaxPool2D layer;
  auto res = train::grad_check(layer, random_tensor({2, 4, 4}, rng), rng);
  EXPECT_LT(res.max_input_err, 2e-2);
}

TEST(ReLU, ForwardBackward) {
  ReLU layer;
  Tensor x({4});
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.0f;
  x[3] = 0.5f;
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 2.0f);
  Tensor dy({4});
  dy.fill(1.0f);
  const Tensor dx = layer.backward(dy);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 1.0f);
  EXPECT_EQ(dx[2], 0.0f);  // not strictly positive
}

// ---- BCM semantics ---------------------------------------------------------

TEST(BcmDense, ForwardMatchesDenseEquivalent) {
  Rng rng(10);
  BcmDense bcm(24, 16, 8);
  bcm.init(rng);
  const Tensor x = random_tensor({24}, rng);
  const Tensor y = bcm.forward(x);

  const auto w = bcm.to_dense();
  for (std::size_t o = 0; o < 16; ++o) {
    float acc = bcm.bias()[o];
    for (std::size_t i = 0; i < 24; ++i) acc += w[o * 24 + i] * x[i];
    EXPECT_NEAR(y[o], acc, 1e-4f) << o;
  }
}

TEST(BcmDense, StorageIsKTimesSmaller) {
  BcmDense bcm(256, 256, 128, /*bias=*/false);
  EXPECT_EQ(bcm.stored_weights(), 256u * 256u / 128u);
}

TEST(BcmDense, PaddedStorage) {
  // 3520 pads to 3584 = 28 blocks of 128; one block row.
  BcmDense bcm(3520, 128, 128, /*bias=*/false);
  EXPECT_EQ(bcm.blocks_in(), 28u);
  EXPECT_EQ(bcm.blocks_out(), 1u);
  EXPECT_EQ(bcm.stored_weights(), 28u * 128u);
}

TEST(BcmDense, RejectsBadBlock) {
  EXPECT_THROW(BcmDense(16, 10, 8), Error);   // out not divisible
  EXPECT_THROW(BcmDense(16, 12, 12), Error);  // not a power of two
}

// ---- model container -------------------------------------------------------

TEST(Model, ForwardShapesChain) {
  Rng rng(11);
  Model m;
  m.add<Conv2D>(1, 4, 3, 3)->init(rng);
  m.add<ReLU>();
  m.add<MaxPool2D>();
  m.add<Flatten>();
  m.add<Dense>(4 * 3 * 3, 5)->init(rng);
  const auto out_shape = m.output_shape({1, 8, 8});
  ASSERT_EQ(out_shape.size(), 1u);
  EXPECT_EQ(out_shape[0], 5u);
  const Tensor y = m.forward(random_tensor({1, 8, 8}, rng));
  EXPECT_EQ(y.size(), 5u);
}

TEST(Model, SaveLoadRoundTrip) {
  Rng rng(12);
  Model a;
  a.add<Dense>(6, 4)->init(rng);
  a.add<ReLU>();
  a.add<Dense>(4, 3)->init(rng);

  std::stringstream buf;
  a.save_weights(buf);

  Model b;
  b.add<Dense>(6, 4);
  b.add<ReLU>();
  b.add<Dense>(4, 3);
  b.load_weights(buf);

  const Tensor x = random_tensor({6}, rng);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Model, LoadRejectsMismatch) {
  Rng rng(13);
  Model a;
  a.add<Dense>(6, 4)->init(rng);
  std::stringstream buf;
  a.save_weights(buf);
  Model b;
  b.add<Dense>(6, 5);
  EXPECT_THROW(b.load_weights(buf), Error);
}

TEST(Model, ZeroGradClearsAll) {
  Rng rng(14);
  Model m;
  auto* d = m.add<Dense>(3, 2);
  d->init(rng);
  m.forward(random_tensor({3}, rng));
  Tensor dy({2});
  dy.fill(1.0f);
  m.backward(dy);
  bool any_nonzero = false;
  for (auto& p : m.params()) {
    for (float g : p.grad) any_nonzero |= g != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  m.zero_grad();
  for (auto& p : m.params()) {
    for (float g : p.grad) EXPECT_EQ(g, 0.0f);
  }
}

TEST(Conv2D, ShapeMaskReducesStoredWeights) {
  Conv2D c(6, 16, 5, 5);
  const std::size_t full = c.stored_weights();
  std::vector<bool> mask(25, false);
  for (int i = 0; i < 13; ++i) mask[static_cast<std::size_t>(i)] = true;
  c.set_shape_mask(mask);
  EXPECT_EQ(c.live_positions(), 13u);
  EXPECT_LT(c.stored_weights(), full);
  EXPECT_EQ(c.stored_weights(), 16u * 6u * 13u + 16u);
}

TEST(Conv2D, OutputShape) {
  Conv2D c(1, 6, 5, 5);
  const auto s = c.output_shape({1, 28, 28});
  EXPECT_EQ(s, (std::vector<std::size_t>{6, 24, 24}));
}

TEST(Conv1D, OutputShape) {
  Conv1D c(1, 32, 12);
  const auto s = c.output_shape({1, 121});
  EXPECT_EQ(s, (std::vector<std::size_t>{32, 110}));
}

}  // namespace
}  // namespace ehdnn::nn
