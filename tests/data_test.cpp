#include <gtest/gtest.h>

#include "data/dataset.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "train/trainer.h"

namespace ehdnn::data {
namespace {

TEST(MnistLike, ShapesAndClasses) {
  Rng rng(1);
  const auto tt = make_mnist_like(rng, 50, 20);
  EXPECT_EQ(tt.train.size(), 50u);
  EXPECT_EQ(tt.test.size(), 20u);
  EXPECT_EQ(tt.train.num_classes, 10u);
  EXPECT_EQ(tt.train.sample_shape, (std::vector<std::size_t>{1, 28, 28}));
  for (const auto& x : tt.train.x) EXPECT_EQ(x.size(), 784u);
}

TEST(MnistLike, DeterministicFromSeed) {
  Rng a(42), b(42);
  const auto ta = make_mnist_like(a, 10, 5);
  const auto tb = make_mnist_like(b, 10, 5);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ta.train.y[i], tb.train.y[i]);
    for (std::size_t j = 0; j < 784; ++j) EXPECT_EQ(ta.train.x[i][j], tb.train.x[i][j]);
  }
}

TEST(MnistLike, ValuesInNormalizedRange) {
  Rng rng(2);
  const auto tt = make_mnist_like(rng, 30, 1);
  for (const auto& x : tt.train.x) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_GE(x[i], -1.0f);
      EXPECT_LE(x[i], 1.0f);
    }
  }
}

TEST(HarLike, ShapesAndClasses) {
  Rng rng(3);
  const auto tt = make_har_like(rng, 40, 10);
  EXPECT_EQ(tt.train.num_classes, 6u);
  EXPECT_EQ(tt.train.sample_shape, (std::vector<std::size_t>{1, 121}));
  for (const auto& x : tt.train.x) EXPECT_EQ(x.size(), 121u);
}

TEST(HarLike, ValuesInNormalizedRange) {
  Rng rng(4);
  const auto tt = make_har_like(rng, 30, 1);
  for (const auto& x : tt.train.x) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_GE(x[i], -1.0f);
      EXPECT_LE(x[i], 1.0f);
    }
  }
}

TEST(OkgLike, ShapesAndClasses) {
  Rng rng(5);
  const auto tt = make_okg_like(rng, 40, 10);
  EXPECT_EQ(tt.train.num_classes, 12u);
  EXPECT_EQ(tt.train.sample_shape, (std::vector<std::size_t>{1, 28, 28}));
}

TEST(AllGenerators, ClassesReasonablyBalanced) {
  Rng rng(6);
  const auto tt = make_mnist_like(rng, 600, 1);
  std::vector<int> counts(10, 0);
  for (int y : tt.train.y) ++counts[static_cast<std::size_t>(y)];
  for (int c : counts) {
    EXPECT_GT(c, 25);  // expectation 60, loose binomial bound
    EXPECT_LT(c, 120);
  }
}

TEST(HarLike, LearnableAboveChance) {
  // A small linear probe learns the frequency signatures well above the
  // 1/6 chance level — sanity that the task carries class signal.
  Rng rng(7);
  const auto tt = make_har_like(rng, 300, 100);
  nn::Model m;
  m.add<nn::Conv1D>(1, 8, 12)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Flatten>();
  m.add<nn::Dense>(8 * 110, 6)->init(rng);
  train::FitConfig cfg;
  cfg.epochs = 3;
  cfg.sgd.lr = 0.02f;
  train::fit(m, tt.train, cfg, rng);
  EXPECT_GT(train::evaluate(m, tt.test).accuracy, 0.4f);
}

TEST(MnistLike, LearnableAboveChance) {
  Rng rng(8);
  const auto tt = make_mnist_like(rng, 300, 100);
  nn::Model m;
  m.add<nn::Conv2D>(1, 4, 5, 5)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::Dense>(4 * 12 * 12, 10)->init(rng);
  train::FitConfig cfg;
  cfg.epochs = 3;
  cfg.sgd.lr = 0.02f;
  train::fit(m, tt.train, cfg, rng);
  EXPECT_GT(train::evaluate(m, tt.test).accuracy, 0.4f);
}

}  // namespace
}  // namespace ehdnn::data
