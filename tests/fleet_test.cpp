// Fleet engine (sim/fleet.h) and parallel sweep (SweepOptions::jobs):
// the fleet runs heterogeneous groups of duty-cycled devices through the
// incremental executor API, and every execution path — the next-event
// engine, the legacy round-robin loop, worker pools, process shards —
// must produce identical artifacts.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/fleet.h"
#include "sim/fleet_flags.h"
#include "sim/scenario.h"

namespace ehdnn::sim {
namespace {

FleetConfig tiny_fleet() {
  FleetConfig cfg;
  // Synthetic square harvest: no trace file dependency, every device
  // cycles power several times.
  cfg.source = "square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5";
  cfg.offset_spread_s = 0.02;  // spread across one square period
  FleetGroup g;
  g.name = "tiny";
  g.count = 6;
  g.task = models::Task::kMnist;
  g.agenda.runtime = "flex";
  g.agenda.jobs = 1;
  g.agenda.period_s = 0.05;
  g.capacitance_f = 10e-6;
  cfg.groups.push_back(g);
  return cfg;
}

TEST(Fleet, CompletesAndAggregates) {
  const FleetReport r = run_fleet(tiny_fleet());
  ASSERT_EQ(r.devices.size(), 6u);
  EXPECT_EQ(r.total_jobs, 6);
  EXPECT_EQ(r.jobs_completed, 6);
  EXPECT_EQ(r.jobs_dnf, 0);
  EXPECT_EQ(r.jobs_starved, 0);
  EXPECT_DOUBLE_EQ(r.completion_rate, 1.0);
  // No deadline in the agenda: every completed job counts as in-deadline.
  EXPECT_EQ(r.jobs_in_deadline, 6);
  // Percentiles are order statistics of the same sample: monotone, and
  // the max bounds them all.
  EXPECT_LE(r.latency_p50_s, r.latency_p90_s);
  EXPECT_LE(r.latency_p90_s, r.latency_p99_s);
  EXPECT_LE(r.latency_p99_s, r.latency_max_s);
  EXPECT_GT(r.latency_p50_s, 0.0);
  for (const auto& d : r.devices) {
    EXPECT_EQ(d.jobs_completed, 1) << "device " << d.device;
    // Round-robin actually interleaved: every run took many slices.
    EXPECT_GT(d.steps, 5) << "device " << d.device;
    EXPECT_GT(d.energy_j, 0.0);
  }
}

TEST(Fleet, OffsetsShiftTheHarvestPhase) {
  const FleetReport r = run_fleet(tiny_fleet());
  // Offsets are distinct by construction...
  for (std::size_t i = 1; i < r.devices.size(); ++i) {
    EXPECT_LT(r.devices[i - 1].offset_s, r.devices[i].offset_s);
  }
  // ...and phase-shifted power means not every device finishes its job at
  // the same staleness (inputs differ too, but timing is schedule-driven).
  bool any_difference = false;
  for (std::size_t i = 1; i < r.devices.size(); ++i) {
    if (r.devices[i].jobs[0].staleness_s != r.devices[0].jobs[0].staleness_s) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference) << "time offsets had no observable effect";
}

TEST(Fleet, DeterministicAcrossRunsAndWorkerCounts) {
  FleetRunOptions serial;
  serial.jobs = 1;
  FleetRunOptions parallel;
  parallel.jobs = 3;
  FleetRunOptions tight_window;  // event engine forced to evict and re-admit
  tight_window.max_resident = 2;
  const FleetReport a = run_fleet(tiny_fleet(), serial);
  const FleetReport b = run_fleet(tiny_fleet(), parallel);
  const FleetReport c = run_fleet(tiny_fleet(), serial);
  const FleetReport d = run_fleet(tiny_fleet(), tight_window);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  std::ostringstream ja, jb, jc, jd;
  write_fleet_json(ja, a);
  write_fleet_json(jb, b);
  write_fleet_json(jc, c);
  write_fleet_json(jd, d);
  EXPECT_EQ(ja.str(), jb.str()) << "FLEET.json must be byte-identical for any worker count";
  EXPECT_EQ(ja.str(), jc.str()) << "FLEET.json must be byte-identical across reruns";
  EXPECT_EQ(ja.str(), jd.str()) << "FLEET.json must be byte-identical for any resident window";
}

// The new engine's ordering (pop the device with the globally-minimal
// next actionable instant) against the old loop's (one slice per live
// device per round): devices are independent, so the artifacts must be
// bit-exact — on the committed heterogeneous population and on the
// micro-capacitor ladder whose livelocks exercise every verdict path.
TEST(Fleet, EventEngineMatchesLegacyRoundRobin) {
  for (const char* path : {"configs/fleet_hetero.cfg", "configs/fleet_microcap.cfg"}) {
    const FleetConfig cfg = parse_fleet_config_file(path);
    FleetRunOptions event_opts;
    FleetRunOptions legacy_opts;
    legacy_opts.legacy_round_robin = true;
    const FleetReport ev = run_fleet(cfg, event_opts);
    const FleetReport rr = run_fleet(cfg, legacy_opts);
    std::ostringstream jev, jrr;
    write_fleet_json(jev, ev);
    write_fleet_json(jrr, rr);
    EXPECT_EQ(jev.str(), jrr.str()) << path << ": event engine diverged from round-robin";
  }
}

// A FleetSink attached through the public API sees every device exactly
// once, and merge() folds two sinks' observations together.
struct CountingSink final : FleetSink {
  int records = 0;
  int total_jobs = 0;
  void record(const FleetDeviceResult& d) override {
    ++records;
    total_jobs += d.jobs_total;
  }
  void merge(const FleetSink& other) override {
    const auto& o = dynamic_cast<const CountingSink&>(other);
    records += o.records;
    total_jobs += o.total_jobs;
  }
  void finalize() override {}
};

TEST(Fleet, SinksObserveEveryDevice) {
  CountingSink sink;
  const FleetReport r = FleetEngine(tiny_fleet()).add_sink(sink).run();
  EXPECT_EQ(sink.records, 6);
  EXPECT_EQ(sink.total_jobs, r.total_jobs);
  CountingSink other;
  other.records = 4;
  other.total_jobs = 10;
  sink.merge(other);
  EXPECT_EQ(sink.records, 10);
  EXPECT_EQ(sink.total_jobs, r.total_jobs + 10);
}

std::string run_as_shards(const FleetConfig& cfg, int shards) {
  std::vector<std::string> paths;
  for (int s = 0; s < shards; ++s) {
    const std::string path = testing::TempDir() + "fleet_shard_" +
                             std::to_string(shards) + "_" + std::to_string(s) + ".part";
    std::ofstream f(path);
    FleetEngine(cfg).run_shard(f, s, shards);
    paths.push_back(path);
  }
  const FleetReport merged = merge_fleet_shards(paths);
  for (const auto& p : paths) std::remove(p.c_str());
  std::ostringstream os;
  write_fleet_json(os, merged);
  return os.str();
}

TEST(Fleet, ShardedRunMergesToTheIdenticalArtifact) {
  const FleetConfig cfg = tiny_fleet();
  std::ostringstream whole;
  write_fleet_json(whole, run_fleet(cfg));
  EXPECT_EQ(run_as_shards(cfg, 1), whole.str());
  EXPECT_EQ(run_as_shards(cfg, 3), whole.str())
      << "merged shards must be byte-identical to the unsharded artifact";

  // Aggregate detail mode: the same contract with per_device dropped.
  FleetConfig agg_cfg = cfg;
  agg_cfg.per_device_detail = false;
  std::ostringstream agg_whole;
  const FleetReport agg_report = run_fleet(agg_cfg);
  EXPECT_TRUE(agg_report.devices.empty());
  EXPECT_EQ(agg_report.total_jobs, 6);
  write_fleet_json(agg_whole, agg_report);
  EXPECT_NE(agg_whole.str().find("\"detail\": \"aggregate\""), std::string::npos);
  EXPECT_NE(agg_whole.str().find("\"per_device\": []"), std::string::npos);
  EXPECT_EQ(run_as_shards(agg_cfg, 2), agg_whole.str());
}

TEST(Fleet, ConfigRoundTripsThroughWriter) {
  FleetConfig cfg = tiny_fleet();
  cfg.groups[0].sched_spec = "";
  cfg.per_device_detail = false;
  std::ostringstream os;
  write_fleet_config(os, cfg);
  std::istringstream is(os.str());
  const FleetConfig back = parse_fleet_config(is);
  std::ostringstream os2;
  write_fleet_config(os2, back);
  EXPECT_EQ(os.str(), os2.str());
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_FALSE(back.per_device_detail);
  ASSERT_EQ(back.groups.size(), 1u);
  EXPECT_EQ(back.groups[0].name, "tiny");
  EXPECT_EQ(back.groups[0].agenda.jobs, cfg.groups[0].agenda.jobs);
}

TEST(Fleet, DutyCycledAgendaReleasesOnSchedule) {
  FleetConfig cfg = tiny_fleet();
  cfg.groups[0].count = 2;
  cfg.groups[0].agenda.jobs = 3;
  cfg.groups[0].agenda.period_s = 0.5;  // generous: device idles between jobs
  const FleetReport r = run_fleet(cfg);
  for (const auto& d : r.devices) {
    ASSERT_EQ(d.jobs.size(), 3u);
    for (int j = 0; j < 3; ++j) {
      const auto& jr = d.jobs[static_cast<std::size_t>(j)];
      EXPECT_DOUBLE_EQ(jr.release_s, 0.5 * j);
      EXPECT_GE(jr.start_s, jr.release_s);
      EXPECT_GT(jr.finish_s, jr.start_s);
      EXPECT_TRUE(jr.met_deadline);
    }
    // The square supply completes each MNIST job well inside 0.5 s, so
    // later jobs start at their release instant, not back-to-back.
    EXPECT_DOUBLE_EQ(d.jobs[1].start_s, d.jobs[1].release_s);
  }
}

TEST(Fleet, RejectsUnknownRuntime) {
  FleetConfig cfg = tiny_fleet();
  cfg.groups[0].agenda.runtime = "warp-drive";
  EXPECT_THROW(run_fleet(cfg), Error);
}

TEST(Fleet, BaselinesRerunThePopulation) {
  FleetRunOptions ropts;
  ropts.baseline_runtimes = {"flex", "ace"};
  const FleetReport r = run_fleet(tiny_fleet(), ropts);
  ASSERT_EQ(r.baselines.size(), 2u);
  EXPECT_EQ(r.baselines[0].runtime, "flex");
  // The population already runs flex, so the flex baseline must agree.
  EXPECT_EQ(r.baselines[0].jobs_completed, r.jobs_completed);
  EXPECT_EQ(r.baselines[0].jobs_in_deadline, r.jobs_in_deadline);
  EXPECT_EQ(r.baselines[1].runtime, "ace");
  EXPECT_LE(r.baselines[1].jobs_completed, r.total_jobs);
}

// A population whose agenda is hopeless half the time: a square "solar
// duty" source with long nights and a deadline one burst cannot meet at
// the night floor. Deadline-mode admission must refuse some releases.
FleetConfig admission_fleet() {
  FleetConfig cfg;
  cfg.source = "square:hi=5e-3,lo=0.05e-3,period=4,duty=0.5";
  cfg.offset_spread_s = 0.0;
  FleetGroup g;
  g.name = "admission";
  g.count = 1;
  g.task = models::Task::kMnist;
  g.agenda.runtime = "adaptive";
  g.agenda.jobs = 10;
  g.agenda.period_s = 0.5;
  g.agenda.deadline_s = 0.3;
  g.capacitance_f = 10e-6;
  g.sched_spec = "adaptive:sel=deadline,admit=budget,fc=periodic,probe=1";
  cfg.groups.push_back(g);
  return cfg;
}

TEST(FleetJson, V6AdmissionGolden) {
  // The FLEET schema's admission story end to end: real skipped
  // releases, the aggregate admission block, the per-job
  // skipped_infeasible verdict with its reclaimed-energy estimate, and
  // the admit-all comparison rerun.
  FleetRunOptions ropts;
  ropts.compare_admission = true;
  const FleetReport r = run_fleet(admission_fleet(), ropts);

  EXPECT_GT(r.jobs_skipped, 0) << "fixture: admission must actually refuse releases";
  EXPECT_GT(r.energy_reclaimed_j, 0.0);
  ASSERT_EQ(r.admission_baseline.size(), 1u);
  EXPECT_EQ(r.admission_baseline[0].runtime, "admit=all");
  // The admit-all rerun runs every release (none skipped there), so it
  // completes at least as many but spends the night grinding.
  EXPECT_GT(r.admission_baseline[0].jobs_completed, r.jobs_completed);

  int skipped_records = 0;
  double reclaimed = 0.0;
  for (const auto& d : r.devices) {
    for (const auto& j : d.jobs) {
      if (j.skipped_infeasible) {
        ++skipped_records;
        reclaimed += j.energy_reclaimed_j;
        EXPECT_FALSE(j.met_deadline);
        EXPECT_EQ(j.reboots, 0) << "a skipped release must never have booted";
        EXPECT_DOUBLE_EQ(j.energy_j, 0.0);
      }
    }
  }
  EXPECT_EQ(skipped_records, r.jobs_skipped);
  EXPECT_DOUBLE_EQ(reclaimed, r.energy_reclaimed_j);

  std::ostringstream os;
  write_fleet_json(os, r);
  const std::string j = os.str();
  for (const char* needle :
       {"\"schema\": \"ehdnn-fleet-v6\"", "\"admission\": {\"skipped_infeasible\":",
        "\"energy_reclaimed_j\":", "\"outcome\": \"skipped_infeasible\"",
        "\"admission_baseline\": [", "\"mode\": \"admit=all\"", "\"jobs_skipped\":",
        "\"detail\": \"full\"", "\"percentiles\": \"qsketch\"", "\"sketch_rel_err\": 0.01",
        "\"livelock\":", "\"total_steps\":", "\"metrics\":", "\"event.job_skip\":"}) {
    EXPECT_NE(j.find(needle), std::string::npos) << "missing " << needle;
  }
}

TEST(Sweep, JobsCountDoesNotChangeTheMatrix) {
  const std::vector<std::string> runtimes = {"ace", "flex"};
  const std::vector<models::Task> tasks = {models::Task::kMnist};
  const std::vector<ScenarioSpec> scenarios = {
      parse_scenario_arg("continuous=continuous"),
      parse_scenario_arg("square-10ms=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5"),
      parse_scenario_arg("const-1.2mW=const:w=1.2e-3"),
  };

  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 3;
  const ScenarioMatrix a = run_matrix(runtimes, tasks, scenarios, serial);
  const ScenarioMatrix b = run_matrix(runtimes, tasks, scenarios, parallel);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  std::ostringstream ja, jb;
  write_scenarios_json(ja, a);
  write_scenarios_json(jb, b);
  EXPECT_EQ(ja.str(), jb.str()) << "SCENARIOS.json must be byte-identical for any --jobs";
}

TEST(Sweep, RuntimeTableIsConsistent) {
  // One table builds keys, runtimes, and policies: every key must resolve
  // through all three accessors without desync.
  for (const auto& key : all_runtime_keys()) {
    auto rt = make_runtime(key);
    auto policy = make_policy(key);
    ASSERT_NE(rt, nullptr);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(rt->name(), policy->name()) << key;
    (void)runtime_uses_compressed_model(key);  // must not throw
    (void)runtime_is_adaptive(key);
  }
  // Both per-boot scheduler modes are in the table (income ladder and
  // deadline selection), and nothing else is adaptive.
  int adaptive_keys = 0;
  for (const auto& key : all_runtime_keys()) adaptive_keys += runtime_is_adaptive(key);
  EXPECT_EQ(adaptive_keys, 2);
  EXPECT_TRUE(runtime_is_adaptive("adaptive"));
  EXPECT_TRUE(runtime_is_adaptive("adaptive-deadline"));
  EXPECT_THROW(make_runtime("nope"), Error);
  EXPECT_THROW(make_policy("nope"), Error);
  EXPECT_THROW(runtime_uses_compressed_model("nope"), Error);
}

TEST(FleetFlags, ConflictMatrix) {
  // fleet_runner's three modes (run / --shard / --merge) share one
  // validated flag set; each row is a command-line shape and the
  // substring its diagnostic must contain ("" = accepted). Substring
  // matching keeps the table readable while still pinning which rule
  // fired — a row failing with the WRONG message is a real regression.
  struct Row {
    const char* name;
    FleetFlagSet f;
    const char* want;  // "" = valid, else a substring of the diagnostic
  };
  auto make = [](auto mutate) {
    FleetFlagSet f;
    mutate(f);
    return f;
  };
  const Row rows[] = {
      {"defaults", make([](FleetFlagSet&) {}), ""},
      {"plain merge",
       make([](FleetFlagSet& f) { f.merge = true; f.merge_inputs = 2; }), ""},
      {"merge without partials", make([](FleetFlagSet& f) { f.merge = true; }),
       "at least one partial"},
      {"merge with --shard", make([](FleetFlagSet& f) {
         f.merge = true;
         f.merge_inputs = 1;
         f.shard = 0;
       }),
       "--merge conflicts with --shard"},
      {"merge with --shards only", make([](FleetFlagSet& f) {
         f.merge = true;
         f.merge_inputs = 1;
         f.shards = 4;
       }),
       "--merge conflicts with --shard"},
      {"merge with --config", make([](FleetFlagSet& f) {
         f.merge = true;
         f.merge_inputs = 1;
         f.have_config = true;
       }),
       "--merge conflicts with --config"},
      {"merge with population flag", make([](FleetFlagSet& f) {
         f.merge = true;
         f.merge_inputs = 1;
         f.population_flag = "--devices";
       }),
       "--merge conflicts with --devices"},
      {"merge with baseline rerun", make([](FleetFlagSet& f) {
         f.merge = true;
         f.merge_inputs = 1;
         f.compare_fixed = true;
       }),
       "baseline reruns"},
      {"merge with trace selection", make([](FleetFlagSet& f) {
         f.merge = true;
         f.merge_inputs = 1;
         f.have_trace_devices = true;
       }),
       "trace selection happens at shard time"},
      {"merge exporting merged captures", make([](FleetFlagSet& f) {
         f.merge = true;
         f.merge_inputs = 2;
         f.have_trace_out = true;  // selection rode in on the partials
       }),
       ""},
      {"bare args without merge", make([](FleetFlagSet& f) { f.merge_inputs = 1; }),
       "only valid with --merge"},
      {"config plus population flag", make([](FleetFlagSet& f) {
         f.have_config = true;
         f.population_flag = "--seed";
       }),
       "--seed conflicts with --config"},
      {"shard run", make([](FleetFlagSet& f) {
         f.shards = 2;
         f.shard = 1;
       }),
       ""},
      {"--shards without --shard", make([](FleetFlagSet& f) { f.shards = 2; }),
       "--shards needs --shard"},
      {"shard index out of range", make([](FleetFlagSet& f) {
         f.shards = 2;
         f.shard = 2;
       }),
       "--shard must be < --shards (got --shard 2 with --shards 2)"},
      {"shard with baseline rerun", make([](FleetFlagSet& f) {
         f.shards = 2;
         f.shard = 0;
         f.compare_admission = true;
       }),
       "whole-population"},
      {"shard with trace export", make([](FleetFlagSet& f) {
         f.shards = 2;
         f.shard = 0;
         f.have_trace_out = true;
       }),
       "put --trace-out on"},
      {"trace export with selection", make([](FleetFlagSet& f) {
         f.have_trace_devices = true;
         f.have_trace_out = true;
         f.have_trace_text_out = true;
       }),
       ""},
      {"trace-out without selection",
       make([](FleetFlagSet& f) { f.have_trace_out = true; }),
       "--trace-out needs --trace-devices"},
      {"trace-text-out without selection",
       make([](FleetFlagSet& f) { f.have_trace_text_out = true; }),
       "--trace-text-out needs --trace-devices"},
      {"profile parallel", make([](FleetFlagSet& f) {
         f.profile = true;
         f.jobs = 4;
       }),
       "--profile needs --jobs 1"},
      {"profile serial", make([](FleetFlagSet& f) { f.profile = true; }), ""},
  };
  for (const Row& r : rows) {
    const std::string got = validate_fleet_flags(r.f);
    if (std::string(r.want).empty()) {
      EXPECT_EQ(got, "") << r.name;
    } else {
      EXPECT_NE(got.find(r.want), std::string::npos)
          << r.name << ": got \"" << got << "\"";
    }
  }
}

}  // namespace
}  // namespace ehdnn::sim
