// Fleet harness (sim/fleet.h) and parallel sweep (SweepOptions::jobs):
// the fleet runs heterogeneous groups of duty-cycled devices through the
// incremental executor API, and both the fleet and the sweep must produce
// identical artifacts for any worker count.

#include <gtest/gtest.h>

#include <sstream>

#include "sim/fleet.h"
#include "sim/scenario.h"

namespace ehdnn::sim {
namespace {

FleetConfig tiny_fleet() {
  FleetConfig cfg;
  // Synthetic square harvest: no trace file dependency, every device
  // cycles power several times.
  cfg.source = "square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5";
  cfg.offset_spread_s = 0.02;  // spread across one square period
  FleetGroup g;
  g.name = "tiny";
  g.count = 6;
  g.task = models::Task::kMnist;
  g.agenda.runtime = "flex";
  g.agenda.jobs = 1;
  g.agenda.period_s = 0.05;
  g.capacitance_f = 10e-6;
  cfg.groups.push_back(g);
  return cfg;
}

TEST(Fleet, CompletesAndAggregates) {
  const FleetReport r = run_fleet(tiny_fleet());
  ASSERT_EQ(r.devices.size(), 6u);
  EXPECT_EQ(r.total_jobs, 6);
  EXPECT_EQ(r.jobs_completed, 6);
  EXPECT_EQ(r.jobs_dnf, 0);
  EXPECT_EQ(r.jobs_starved, 0);
  EXPECT_DOUBLE_EQ(r.completion_rate, 1.0);
  // No deadline in the agenda: every completed job counts as in-deadline.
  EXPECT_EQ(r.jobs_in_deadline, 6);
  // Percentiles are order statistics of the same sample: monotone, and
  // the max bounds them all.
  EXPECT_LE(r.latency_p50_s, r.latency_p90_s);
  EXPECT_LE(r.latency_p90_s, r.latency_p99_s);
  EXPECT_LE(r.latency_p99_s, r.latency_max_s);
  EXPECT_GT(r.latency_p50_s, 0.0);
  for (const auto& d : r.devices) {
    EXPECT_EQ(d.jobs_completed, 1) << "device " << d.device;
    // Round-robin actually interleaved: every run took many slices.
    EXPECT_GT(d.steps, 5) << "device " << d.device;
    EXPECT_GT(d.energy_j, 0.0);
  }
}

TEST(Fleet, OffsetsShiftTheHarvestPhase) {
  const FleetReport r = run_fleet(tiny_fleet());
  // Offsets are distinct by construction...
  for (std::size_t i = 1; i < r.devices.size(); ++i) {
    EXPECT_LT(r.devices[i - 1].offset_s, r.devices[i].offset_s);
  }
  // ...and phase-shifted power means not every device finishes its job at
  // the same staleness (inputs differ too, but timing is schedule-driven).
  bool any_difference = false;
  for (std::size_t i = 1; i < r.devices.size(); ++i) {
    if (r.devices[i].jobs[0].staleness_s != r.devices[0].jobs[0].staleness_s) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference) << "time offsets had no observable effect";
}

TEST(Fleet, DeterministicAcrossRunsAndWorkerCounts) {
  FleetRunOptions serial;
  serial.jobs = 1;
  FleetRunOptions parallel;
  parallel.jobs = 3;
  const FleetReport a = run_fleet(tiny_fleet(), serial);
  const FleetReport b = run_fleet(tiny_fleet(), parallel);
  const FleetReport c = run_fleet(tiny_fleet(), serial);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  std::ostringstream ja, jb, jc;
  write_fleet_json(ja, a);
  write_fleet_json(jb, b);
  write_fleet_json(jc, c);
  EXPECT_EQ(ja.str(), jb.str()) << "FLEET.json must be byte-identical for any worker count";
  EXPECT_EQ(ja.str(), jc.str()) << "FLEET.json must be byte-identical across reruns";
}

TEST(Fleet, DutyCycledAgendaReleasesOnSchedule) {
  FleetConfig cfg = tiny_fleet();
  cfg.groups[0].count = 2;
  cfg.groups[0].agenda.jobs = 3;
  cfg.groups[0].agenda.period_s = 0.5;  // generous: device idles between jobs
  const FleetReport r = run_fleet(cfg);
  for (const auto& d : r.devices) {
    ASSERT_EQ(d.jobs.size(), 3u);
    for (int j = 0; j < 3; ++j) {
      const auto& jr = d.jobs[static_cast<std::size_t>(j)];
      EXPECT_DOUBLE_EQ(jr.release_s, 0.5 * j);
      EXPECT_GE(jr.start_s, jr.release_s);
      EXPECT_GT(jr.finish_s, jr.start_s);
      EXPECT_TRUE(jr.met_deadline);
    }
    // The square supply completes each MNIST job well inside 0.5 s, so
    // later jobs start at their release instant, not back-to-back.
    EXPECT_DOUBLE_EQ(d.jobs[1].start_s, d.jobs[1].release_s);
  }
}

TEST(Fleet, RejectsUnknownRuntime) {
  FleetConfig cfg = tiny_fleet();
  cfg.groups[0].agenda.runtime = "warp-drive";
  EXPECT_THROW(run_fleet(cfg), Error);
}

TEST(Fleet, BaselinesRerunThePopulation) {
  FleetRunOptions ropts;
  ropts.baseline_runtimes = {"flex", "ace"};
  const FleetReport r = run_fleet(tiny_fleet(), ropts);
  ASSERT_EQ(r.baselines.size(), 2u);
  EXPECT_EQ(r.baselines[0].runtime, "flex");
  // The population already runs flex, so the flex baseline must agree.
  EXPECT_EQ(r.baselines[0].jobs_completed, r.jobs_completed);
  EXPECT_EQ(r.baselines[0].jobs_in_deadline, r.jobs_in_deadline);
  EXPECT_EQ(r.baselines[1].runtime, "ace");
  EXPECT_LE(r.baselines[1].jobs_completed, r.total_jobs);
}

// A population whose agenda is hopeless half the time: a square "solar
// duty" source with long nights and a deadline one burst cannot meet at
// the night floor. Deadline-mode admission must refuse some releases.
FleetConfig admission_fleet() {
  FleetConfig cfg;
  cfg.source = "square:hi=5e-3,lo=0.05e-3,period=4,duty=0.5";
  cfg.offset_spread_s = 0.0;
  FleetGroup g;
  g.name = "admission";
  g.count = 1;
  g.task = models::Task::kMnist;
  g.agenda.runtime = "adaptive";
  g.agenda.jobs = 10;
  g.agenda.period_s = 0.5;
  g.agenda.deadline_s = 0.3;
  g.capacitance_f = 10e-6;
  g.sched_spec = "adaptive:sel=deadline,admit=budget,fc=periodic,probe=1";
  cfg.groups.push_back(g);
  return cfg;
}

TEST(FleetJson, V4AdmissionGolden) {
  // The FLEET v4 schema's admission story end to end: real skipped
  // releases, the aggregate admission block, the per-job
  // skipped_infeasible verdict with its reclaimed-energy estimate, and
  // the admit-all comparison rerun.
  FleetRunOptions ropts;
  ropts.compare_admission = true;
  const FleetReport r = run_fleet(admission_fleet(), ropts);

  EXPECT_GT(r.jobs_skipped, 0) << "fixture: admission must actually refuse releases";
  EXPECT_GT(r.energy_reclaimed_j, 0.0);
  ASSERT_EQ(r.admission_baseline.size(), 1u);
  EXPECT_EQ(r.admission_baseline[0].runtime, "admit=all");
  // The admit-all rerun runs every release (none skipped there), so it
  // completes at least as many but spends the night grinding.
  EXPECT_GT(r.admission_baseline[0].jobs_completed, r.jobs_completed);

  int skipped_records = 0;
  double reclaimed = 0.0;
  for (const auto& d : r.devices) {
    for (const auto& j : d.jobs) {
      if (j.skipped_infeasible) {
        ++skipped_records;
        reclaimed += j.energy_reclaimed_j;
        EXPECT_FALSE(j.met_deadline);
        EXPECT_EQ(j.reboots, 0) << "a skipped release must never have booted";
        EXPECT_DOUBLE_EQ(j.energy_j, 0.0);
      }
    }
  }
  EXPECT_EQ(skipped_records, r.jobs_skipped);
  EXPECT_DOUBLE_EQ(reclaimed, r.energy_reclaimed_j);

  std::ostringstream os;
  write_fleet_json(os, r);
  const std::string j = os.str();
  for (const char* needle :
       {"\"schema\": \"ehdnn-fleet-v4\"", "\"admission\": {\"skipped_infeasible\":",
        "\"energy_reclaimed_j\":", "\"outcome\": \"skipped_infeasible\"",
        "\"admission_baseline\": [", "\"mode\": \"admit=all\"", "\"jobs_skipped\":"}) {
    EXPECT_NE(j.find(needle), std::string::npos) << "missing " << needle;
  }
}

TEST(Sweep, JobsCountDoesNotChangeTheMatrix) {
  const std::vector<std::string> runtimes = {"ace", "flex"};
  const std::vector<models::Task> tasks = {models::Task::kMnist};
  const std::vector<ScenarioSpec> scenarios = {
      parse_scenario_arg("continuous=continuous"),
      parse_scenario_arg("square-10ms=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5"),
      parse_scenario_arg("const-1.2mW=const:w=1.2e-3"),
  };

  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 3;
  const ScenarioMatrix a = run_matrix(runtimes, tasks, scenarios, serial);
  const ScenarioMatrix b = run_matrix(runtimes, tasks, scenarios, parallel);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  std::ostringstream ja, jb;
  write_scenarios_json(ja, a);
  write_scenarios_json(jb, b);
  EXPECT_EQ(ja.str(), jb.str()) << "SCENARIOS.json must be byte-identical for any --jobs";
}

TEST(Sweep, RuntimeTableIsConsistent) {
  // One table builds keys, runtimes, and policies: every key must resolve
  // through all three accessors without desync.
  for (const auto& key : all_runtime_keys()) {
    auto rt = make_runtime(key);
    auto policy = make_policy(key);
    ASSERT_NE(rt, nullptr);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(rt->name(), policy->name()) << key;
    (void)runtime_uses_compressed_model(key);  // must not throw
    (void)runtime_is_adaptive(key);
  }
  // Both per-boot scheduler modes are in the table (income ladder and
  // deadline selection), and nothing else is adaptive.
  int adaptive_keys = 0;
  for (const auto& key : all_runtime_keys()) adaptive_keys += runtime_is_adaptive(key);
  EXPECT_EQ(adaptive_keys, 2);
  EXPECT_TRUE(runtime_is_adaptive("adaptive"));
  EXPECT_TRUE(runtime_is_adaptive("adaptive-deadline"));
  EXPECT_THROW(make_runtime("nope"), Error);
  EXPECT_THROW(make_policy("nope"), Error);
  EXPECT_THROW(runtime_uses_compressed_model("nope"), Error);
}

}  // namespace
}  // namespace ehdnn::sim
