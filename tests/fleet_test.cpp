// Fleet harness (sim/fleet.h) and parallel sweep (SweepOptions::jobs):
// the fleet steps N devices round-robin through the incremental executor
// API, and the sweep must produce an identical matrix for any job count.

#include <gtest/gtest.h>

#include <sstream>

#include "sim/fleet.h"
#include "sim/scenario.h"

namespace ehdnn::sim {
namespace {

FleetOptions tiny_fleet() {
  FleetOptions o;
  o.devices = 6;
  o.task = models::Task::kMnist;
  o.runtime = "flex";
  // Synthetic square harvest: no trace file dependency, every device
  // cycles power several times.
  o.source = "square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5";
  o.capacitance_f = 10e-6;
  o.offset_spread_s = 0.02;  // spread across one square period
  o.verbose = false;
  return o;
}

TEST(Fleet, CompletesAndAggregates) {
  const FleetReport r = run_fleet(tiny_fleet());
  ASSERT_EQ(r.devices.size(), 6u);
  EXPECT_EQ(r.completed_count, 6);
  EXPECT_EQ(r.dnf_count, 0);
  EXPECT_EQ(r.starved_count, 0);
  EXPECT_DOUBLE_EQ(r.completion_rate, 1.0);
  // Percentiles are order statistics of the same sample: monotone, and
  // the max bounds them all.
  EXPECT_LE(r.latency_p50_s, r.latency_p90_s);
  EXPECT_LE(r.latency_p90_s, r.latency_p99_s);
  EXPECT_LE(r.latency_p99_s, r.latency_max_s);
  EXPECT_GT(r.latency_p50_s, 0.0);
  for (const auto& d : r.devices) {
    EXPECT_TRUE(d.completed()) << "device " << d.device;
    // Round-robin actually interleaved: every run took many slices.
    EXPECT_GT(d.steps, 5) << "device " << d.device;
    EXPECT_GT(d.energy_j, 0.0);
  }
}

TEST(Fleet, OffsetsShiftTheHarvestPhase) {
  const FleetReport r = run_fleet(tiny_fleet());
  // Offsets are distinct by construction...
  for (std::size_t i = 1; i < r.devices.size(); ++i) {
    EXPECT_LT(r.devices[i - 1].offset_s, r.devices[i].offset_s);
  }
  // ...and phase-shifted power means not every device sees the same
  // off-time (device inputs differ too, but off-time is schedule-driven).
  bool any_difference = false;
  for (std::size_t i = 1; i < r.devices.size(); ++i) {
    if (r.devices[i].off_s != r.devices[0].off_s) any_difference = true;
  }
  EXPECT_TRUE(any_difference) << "time offsets had no observable effect";
}

TEST(Fleet, DeterministicAcrossRuns) {
  const FleetReport a = run_fleet(tiny_fleet());
  const FleetReport b = run_fleet(tiny_fleet());
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].outcome, b.devices[i].outcome);
    EXPECT_DOUBLE_EQ(a.devices[i].total_s, b.devices[i].total_s);
    EXPECT_DOUBLE_EQ(a.devices[i].energy_j, b.devices[i].energy_j);
    EXPECT_EQ(a.devices[i].reboots, b.devices[i].reboots);
    EXPECT_EQ(a.devices[i].steps, b.devices[i].steps);
  }
  std::ostringstream ja, jb;
  write_fleet_json(ja, a);
  write_fleet_json(jb, b);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(Fleet, RejectsUnknownRuntime) {
  FleetOptions o = tiny_fleet();
  o.runtime = "warp-drive";
  EXPECT_THROW(run_fleet(o), Error);
}

TEST(Sweep, JobsCountDoesNotChangeTheMatrix) {
  const std::vector<std::string> runtimes = {"ace", "flex"};
  const std::vector<models::Task> tasks = {models::Task::kMnist};
  const std::vector<ScenarioSpec> scenarios = {
      parse_scenario_arg("continuous=continuous"),
      parse_scenario_arg("square-10ms=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5"),
      parse_scenario_arg("const-1.2mW=const:w=1.2e-3"),
  };

  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 3;
  const ScenarioMatrix a = run_matrix(runtimes, tasks, scenarios, serial);
  const ScenarioMatrix b = run_matrix(runtimes, tasks, scenarios, parallel);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  std::ostringstream ja, jb;
  write_scenarios_json(ja, a);
  write_scenarios_json(jb, b);
  EXPECT_EQ(ja.str(), jb.str()) << "SCENARIOS.json must be byte-identical for any --jobs";
}

TEST(Sweep, RuntimeTableIsConsistent) {
  // One table builds keys, runtimes, and policies: every key must resolve
  // through all three accessors without desync.
  for (const auto& key : all_runtime_keys()) {
    auto rt = make_runtime(key);
    auto policy = make_policy(key);
    ASSERT_NE(rt, nullptr);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(rt->name(), policy->name()) << key;
    (void)runtime_uses_compressed_model(key);  // must not throw
  }
  EXPECT_THROW(make_runtime("nope"), Error);
  EXPECT_THROW(make_policy("nope"), Error);
  EXPECT_THROW(runtime_uses_compressed_model("nope"), Error);
}

}  // namespace
}  // namespace ehdnn::sim
