// CliParser error-path tests: the option table drives every tool CLI
// (scenario_runner, fleet_runner, contract_checker), so a malformed
// command line must exit 2 with the outputs untouched, terminal flags
// must exit 0 before the tool runs, and the --help text must stay in
// lock-step with the table (it IS the table — the golden test pins the
// rendering, not a hand-maintained copy).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/cli.h"

namespace ehdnn {
namespace {

// parse() takes char**; build a mutable argv from string literals.
int run(CliParser& p, std::vector<std::string> args) {
  std::vector<std::string> storage;
  storage.emplace_back("prog");
  for (auto& a : args) storage.push_back(std::move(a));
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (auto& s : storage) argv.push_back(s.data());
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EmptyCommandLineContinues) {
  CliParser p("t", "s");
  EXPECT_EQ(run(p, {}), -1);
}

TEST(Cli, UnknownOptionExits2) {
  CliParser p("t", "s");
  EXPECT_EQ(run(p, {"--nope"}), 2);
}

TEST(Cli, MissingValueExits2) {
  std::string out;
  CliParser p("t", "s");
  p.str("--out", "FILE", "output", &out);
  EXPECT_EQ(run(p, {"--out"}), 2);
  EXPECT_TRUE(out.empty());
}

TEST(Cli, BareArgumentWithoutPositionalsExits2) {
  CliParser p("t", "s");
  EXPECT_EQ(run(p, {"stray"}), 2);
}

TEST(Cli, IntMinRejectsGarbageAndBelowMin) {
  int jobs = 7;
  CliParser p("t", "s");
  p.int_min("--jobs", "N", "workers", &jobs, 1);
  EXPECT_EQ(run(p, {"--jobs", "zap"}), 2);
  EXPECT_EQ(jobs, 7);  // a rejected value never writes through
  EXPECT_EQ(run(p, {"--jobs", "0"}), 2);
  EXPECT_EQ(jobs, 7);
  EXPECT_EQ(run(p, {"--jobs", "4x"}), 2);  // trailing junk is not an integer
  EXPECT_EQ(jobs, 7);
  EXPECT_EQ(run(p, {"--jobs", "4"}), -1);
  EXPECT_EQ(jobs, 4);
}

TEST(Cli, NumRejectsGarbage) {
  double v = 1.5;
  CliParser p("t", "s");
  p.num("--scale", "X", "scale", &v);
  EXPECT_EQ(run(p, {"--scale", "fast"}), 2);
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_EQ(run(p, {"--scale", "2.5e-3"}), -1);
  EXPECT_DOUBLE_EQ(v, 2.5e-3);
}

TEST(Cli, SeedAcceptsHexRejectsGarbage) {
  std::uint64_t s = 1;
  CliParser p("t", "s");
  p.seed("--seed", "S", "rng seed", &s);
  EXPECT_EQ(run(p, {"--seed", "0x5eed"}), -1);
  EXPECT_EQ(s, 0x5eedu);
  EXPECT_EQ(run(p, {"--seed", "12ab"}), 2);  // decimal with junk, not 0x-hex
  EXPECT_EQ(s, 0x5eedu);
}

TEST(Cli, DuplicateOptionLastWins) {
  // Occurrences apply in order — the repeated flag overwrites, which is
  // what lets wrapper scripts append overrides to a base command line.
  std::string out;
  int jobs = 0;
  CliParser p("t", "s");
  p.str("--out", "FILE", "output", &out).int_min("--jobs", "N", "workers", &jobs, 1);
  EXPECT_EQ(run(p, {"--out", "a.json", "--jobs", "2", "--out", "b.json"}), -1);
  EXPECT_EQ(out, "b.json");
  EXPECT_EQ(jobs, 2);
}

TEST(Cli, MalformedEarlierOptionStopsBeforeLaterOnes) {
  std::string out;
  CliParser p("t", "s");
  int jobs = 0;
  p.int_min("--jobs", "N", "workers", &jobs, 1).str("--out", "FILE", "output", &out);
  EXPECT_EQ(run(p, {"--jobs", "bad", "--out", "x.json"}), 2);
  EXPECT_TRUE(out.empty());  // parsing stopped at the diagnostic
}

TEST(Cli, TerminalFlagExits0AndSkipsTheRest) {
  bool listed = false;
  int jobs = 0;
  CliParser p("t", "s");
  p.terminal("--list", "list things", [&]() { listed = true; })
      .int_min("--jobs", "N", "workers", &jobs, 1);
  EXPECT_EQ(run(p, {"--list", "--jobs", "nonsense"}), 0);
  EXPECT_TRUE(listed);
  EXPECT_EQ(jobs, 0);  // everything after the terminal flag is ignored
}

TEST(Cli, ToggleAndFlagRun) {
  bool quiet = false;
  int hits = 0;
  CliParser p("t", "s");
  p.toggle("--quiet", "hush", &quiet).flag("--bump", "count", [&]() { ++hits; });
  EXPECT_EQ(run(p, {"--quiet", "--bump", "--bump"}), -1);
  EXPECT_TRUE(quiet);
  EXPECT_EQ(hits, 2);
}

TEST(Cli, PositionalsCollectBareArguments) {
  std::vector<std::string> got;
  std::string out;
  CliParser p("t", "s");
  p.str("--out", "FILE", "output", &out)
      .positionals("SHARD", "shard files", [&](const std::string& v) { got.push_back(v); });
  EXPECT_EQ(run(p, {"a.bin", "--out", "m.json", "b.bin"}), -1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "a.bin");
  EXPECT_EQ(got[1], "b.bin");
  EXPECT_EQ(out, "m.json");
}

TEST(Cli, ValueCallbackErrorExits2) {
  CliParser p("t", "s");
  p.value("--depth", "D", "depth", [](const std::string& v) {
    check(v == "bounded" || v == "full", "--depth must be bounded or full");
  });
  EXPECT_EQ(run(p, {"--depth", "sideways"}), 2);
  EXPECT_EQ(run(p, {"--depth", "full"}), -1);
}

TEST(Cli, HelpGolden) {
  std::string out;
  int jobs = 1;
  CliParser p("demo", "One-line demo summary.");
  p.str("--out", "FILE", "write the report to FILE", &out)
      .int_min("--jobs", "N", "worker threads", &jobs, 1)
      .flag("--quiet", "suppress progress output", []() {})
      .positionals("INPUT", "input shards to merge", [](const std::string&) {});
  std::ostringstream os;
  p.print_help(os);
  EXPECT_EQ(os.str(),
            "usage: demo [options] [INPUT...]\n"
            "\n"
            "One-line demo summary.\n"
            "\n"
            "options:\n"
            "  --out FILE  write the report to FILE\n"
            "  --jobs N    worker threads\n"
            "  --quiet     suppress progress output\n"
            "  INPUT...    input shards to merge\n"
            "  --help      show this message\n");
}

TEST(Cli, HelpFlagExits0) {
  CliParser p("t", "s");
  EXPECT_EQ(run(p, {"--help"}), 0);
  EXPECT_EQ(run(p, {"-h"}), 0);
}

TEST(Cli, OversizedMetavarWrapsInsteadOfWideningTheColumn) {
  CliParser p("demo", "s");
  p.value("--spec", "KIND:k=v[,k=v...]_with_a_very_long_grammar", "spec grammar",
          [](const std::string&) {})
      .flag("--quiet", "hush", []() {});
  std::ostringstream os;
  p.print_help(os);
  const std::string text = os.str();
  // The long head gets its own line; the short option keeps a tight column.
  EXPECT_NE(text.find("  --spec KIND:k=v[,k=v...]_with_a_very_long_grammar\n"),
            std::string::npos);
  EXPECT_NE(text.find("  --quiet  hush\n"), std::string::npos);
}

}  // namespace
}  // namespace ehdnn
