#include <gtest/gtest.h>

#include "device/device.h"
#include "dsp/fft.h"
#include "fixed/vec.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "util/rng.h"

namespace ehdnn::dev {
namespace {

using fx::q15_t;

TEST(MemoryRegion, PeekPokeAndBounds) {
  MemoryRegion m(MemKind::kSram, 16);
  m.poke(3, 1234);
  EXPECT_EQ(m.peek(3), 1234);
  EXPECT_THROW(m.peek(16), Error);
  EXPECT_THROW(m.poke(99, 0), Error);
}

TEST(MemoryRegion, AllocatorTracksSegments) {
  MemoryRegion m(MemKind::kFram, 100);
  const Addr a = m.alloc(30, "a");
  const Addr b = m.alloc(50, "b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 30u);
  EXPECT_EQ(m.free_words(), 20u);
  EXPECT_THROW(m.alloc(21, "too-big"), Error);
  m.reset_allocator();
  EXPECT_EQ(m.free_words(), 100u);
}

TEST(MemoryRegion, ScrambleChangesContents) {
  MemoryRegion m(MemKind::kSram, 64);
  for (Addr a = 0; a < 64; ++a) m.poke(a, 7);
  Rng rng(1);
  m.scramble(rng);
  int unchanged = 0;
  for (Addr a = 0; a < 64; ++a) unchanged += m.peek(a) == 7 ? 1 : 0;
  EXPECT_LT(unchanged, 8);
}

TEST(Device, GeometryDefaults) {
  Device d;
  EXPECT_EQ(d.sram().size_bytes(), 8u * 1024u);   // 8 KB SRAM
  EXPECT_EQ(d.fram().size_bytes(), 256u * 1024u); // 256 KB FRAM
}

TEST(Device, EnergyAndCyclesAccumulate) {
  Device d;
  const double e0 = d.trace().total_energy();
  d.cpu_ops(100);
  EXPECT_GT(d.trace().total_energy(), e0);
  EXPECT_DOUBLE_EQ(d.trace().total_cycles(), 100.0);
  EXPECT_DOUBLE_EQ(d.elapsed_seconds(), 100.0 / d.cost().cpu_hz);
}

TEST(Device, RailBreakdownSumsToTotal) {
  Device d;
  d.cpu_ops(10);
  d.write(MemKind::kSram, 0, 1);
  d.write(MemKind::kFram, 0, 1);
  d.dma_copy(MemKind::kFram, 0, MemKind::kSram, 1, 4);
  double sum = 0.0;
  for (std::size_t r = 0; r < static_cast<std::size_t>(Rail::kCount); ++r) {
    sum += d.trace().energy(static_cast<Rail>(r));
  }
  EXPECT_NEAR(sum, d.trace().total_energy(), 1e-18);
}

TEST(Device, FramWriteCostsMoreThanSram) {
  Device a, b;
  a.write(MemKind::kSram, 0, 1);
  b.write(MemKind::kFram, 0, 1);
  EXPECT_GT(b.trace().total_energy(), a.trace().total_energy());
}

TEST(Device, DmaCopiesData) {
  Device d;
  for (Addr i = 0; i < 8; ++i) d.fram().poke(i, static_cast<q15_t>(100 + i));
  d.dma_copy(MemKind::kFram, 0, MemKind::kSram, 16, 8);
  for (Addr i = 0; i < 8; ++i) EXPECT_EQ(d.sram().peek(16 + i), 100 + i);
}

TEST(Device, DmaCheaperThanCpuLoopForBulk) {
  Device a, b;
  constexpr std::size_t kWords = 64;
  a.dma_copy(MemKind::kFram, 0, MemKind::kSram, 0, kWords);
  for (std::size_t i = 0; i < kWords; ++i) {
    b.cpu_ops(2);
    b.write(MemKind::kSram, i, b.read(MemKind::kFram, i));
  }
  EXPECT_LT(a.trace().total_cycles(), b.trace().total_cycles());
  EXPECT_LT(a.trace().total_energy(), b.trace().total_energy());
}

TEST(Device, LeaMacMatchesVecMac) {
  Device d;
  Rng rng(2);
  constexpr std::size_t kN = 37;
  std::vector<q15_t> a(kN), b(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = fx::to_q15(rng.uniform(-1.0, 1.0));
    b[i] = fx::to_q15(rng.uniform(-1.0, 1.0));
    d.sram().poke(i, a[i]);
    d.sram().poke(100 + i, b[i]);
  }
  const auto ref = fx::vec_mac(a, b);
  EXPECT_EQ(d.lea_mac(0, 100, kN), ref.acc_q30);
}

TEST(Device, LeaMacFasterThanCpuMacs) {
  Device lea_dev, cpu_dev;
  constexpr std::size_t kN = 64;
  lea_dev.lea_mac(0, 100, kN);
  for (std::size_t i = 0; i < kN; ++i) {
    cpu_dev.read(MemKind::kSram, i);
    cpu_dev.read(MemKind::kSram, 100 + i);
    cpu_dev.cpu_mac_cycles();
  }
  EXPECT_LT(lea_dev.trace().total_cycles(), cpu_dev.trace().total_cycles());
  EXPECT_LT(lea_dev.trace().total_energy(), cpu_dev.trace().total_energy());
}

TEST(Device, LeaFftMatchesDspFft) {
  Device d;
  Rng rng(3);
  constexpr std::size_t kN = 32;
  std::vector<fx::cq15> ref(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ref[i] = {fx::to_q15(rng.uniform(-0.5, 0.5)), fx::to_q15(rng.uniform(-0.5, 0.5))};
    d.sram().poke(2 * i, ref[i].re);
    d.sram().poke(2 * i + 1, ref[i].im);
  }
  const int exp_ref = dsp::fft_q15(ref, dsp::FftScaling::kBlockFloat);
  const int exp_dev = d.lea_fft(0, kN, dsp::FftScaling::kBlockFloat);
  EXPECT_EQ(exp_dev, exp_ref);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(d.sram().peek(2 * i), ref[i].re);
    EXPECT_EQ(d.sram().peek(2 * i + 1), ref[i].im);
  }
}

TEST(Device, LeaElementwiseOps) {
  Device d;
  d.sram().poke(0, fx::to_q15(0.5));
  d.sram().poke(1, fx::to_q15(-0.25));
  d.sram().poke(10, fx::to_q15(0.25));
  d.sram().poke(11, fx::to_q15(0.25));
  d.lea_add(0, 10, 20, 2);
  EXPECT_NEAR(fx::to_double(d.sram().peek(20)), 0.75, 1e-4);
  EXPECT_NEAR(fx::to_double(d.sram().peek(21)), 0.0, 1e-4);
  d.lea_mpy(0, 10, 30, 2);
  EXPECT_NEAR(fx::to_double(d.sram().peek(30)), 0.125, 1e-4);
  d.lea_shift(0, 40, 2, -1);
  EXPECT_NEAR(fx::to_double(d.sram().peek(40)), 0.25, 1e-4);
}

TEST(Device, RebootScramblesSramKeepsFram) {
  Device d;
  d.sram().poke(5, 4321);
  d.fram().poke(5, 8765);
  d.reboot();
  EXPECT_EQ(d.fram().peek(5), 8765);
  // SRAM is scrambled; the probability it kept its value is ~2^-16.
  // Check a batch of addresses to make flakiness negligible.
  d.sram().poke(1, 1111);
  d.sram().poke(2, 2222);
  d.sram().poke(3, 3333);
  d.reboot();
  const bool all_kept = d.sram().peek(1) == 1111 && d.sram().peek(2) == 2222 &&
                        d.sram().peek(3) == 3333;
  EXPECT_FALSE(all_kept);
  EXPECT_EQ(d.reboots(), 2);
}

TEST(Device, PowerFailurePropagatesFromSupply) {
  // A capacitor too small to fund the requested work browns out.
  power::ConstantSource src(0.0);  // no harvest
  power::CapacitorConfig cfg;
  cfg.capacitance_f = 1e-7;  // tiny: ~0.6 uJ usable
  power::CapacitorSupply supply(src, cfg);
  Device d;
  d.attach_supply(&supply);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100000; ++i) d.cpu_ops(100);
      },
      PowerFailure);
  EXPECT_FALSE(supply.on());
}

TEST(Device, DmaTornByPowerFailureLeavesPrefix) {
  power::ConstantSource src(0.0);
  power::CapacitorConfig cfg;
  cfg.capacitance_f = 1e-7;
  power::CapacitorSupply supply(src, cfg);
  Device d;
  for (Addr i = 0; i < 512; ++i) d.sram().poke(i, 77);
  for (Addr i = 0; i < 512; ++i) d.fram().poke(1000 + i, 0);
  d.attach_supply(&supply);
  bool failed = false;
  std::size_t copied = 0;
  try {
    // Repeat transfers until the capacitor dies mid-copy.
    for (int rep = 0; rep < 100000; ++rep) d.dma_copy(MemKind::kSram, 0, MemKind::kFram, 1000, 512);
  } catch (const PowerFailure&) {
    failed = true;
    for (Addr i = 0; i < 512; ++i) copied += d.fram().peek(1000 + i) == 77 ? 1u : 0u;
  }
  EXPECT_TRUE(failed);
  // Some prefix landed; word-granular effects mean no garbage values.
  EXPECT_GT(copied, 0u);
}

TEST(Device, VoltageSampleCostsCycles) {
  power::ContinuousPower supply;
  Device d;
  d.attach_supply(&supply);
  const double c0 = d.trace().total_cycles();
  EXPECT_DOUBLE_EQ(d.sample_voltage(), 3.3);
  EXPECT_GT(d.trace().total_cycles(), c0);
}

TEST(EnergyTrace, SnapshotDelta) {
  EnergyTrace t;
  t.add(Rail::kCpu, 1.0, 10.0);
  const auto s = t.snapshot();
  t.add(Rail::kLea, 2.0, 20.0);
  const auto d = t.delta(s);
  EXPECT_DOUBLE_EQ(d.energy, 2.0);
  EXPECT_DOUBLE_EQ(d.cycles, 20.0);
}

TEST(CostModel, FftCyclesScaleNLogN) {
  Device d;
  Device d2;
  d.lea_fft(0, 64, dsp::FftScaling::kFixedScale);
  d2.lea_fft(0, 128, dsp::FftScaling::kFixedScale);
  const double c64 = d.trace().cycles(Rail::kLea);
  const double c128 = d2.trace().cycles(Rail::kLea);
  // 128 log 128 / 64 log 64 = (64*7)/(32*6) ~ 2.33
  EXPECT_NEAR(c128 / c64, (64.0 * 7.0 * 4.0 + 40.0) / (32.0 * 6.0 * 4.0 + 40.0), 0.01);
}

}  // namespace
}  // namespace ehdnn::dev
