// Shared fixtures for the scheduling tests (sched_test.cpp and
// sched_property_test.cpp): tiny co-resident model pairs, continuous
// oracles, and income-sample synthesis for the forecaster tests — so the
// unit suite and the property suite construct their inputs one way.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "device/device.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "power/continuous.h"
#include "power/harvest.h"
#include "quant/quantize.h"
#include "sched/forecast.h"
#include "util/rng.h"

namespace ehdnn::sched::testutil {

inline nn::Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-0.9, 0.9));
  }
  return t;
}

// Tiny "deployment" pair sharing one input shape: a BCM-compressed model
// and its dense twin — the two variants an adaptive device ships. Small
// enough for thousands of runs, big enough to hit every kernel kind.
inline quant::QuantModel tiny_compressed(Rng& rng) {
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::BcmDense>(2 * 4 * 4, 16, 16)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(16, 4)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 10, 10}, rng));
  return quant::quantize(m, calib, {1, 10, 10});
}

inline quant::QuantModel tiny_dense(Rng& rng) {
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::Dense>(2 * 4 * 4, 16)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(16, 4)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 10, 10}, rng));
  return quant::quantize(m, calib, {1, 10, 10});
}

// Continuous-power reference output for one model (any runtime: the
// bit-exactness contract makes them all agree per model). Flags a
// failed reference run at the source rather than as a downstream
// output mismatch.
inline std::vector<fx::q15_t> continuous_oracle(const quant::QuantModel& qm,
                                                const std::vector<fx::q15_t>& input) {
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  auto rt = flex::make_flex_runtime();
  const flex::RunStats st = rt->infer(dev, cm, input);
  EXPECT_TRUE(st.completed()) << "continuous oracle run did not complete";
  return st.output;
}

// Income-sample synthesis: what a device whose recharge gaps tick every
// `dt_s` would hand its forecaster when harvesting from `src` — sample i
// is the source's power at t = i * dt_s. The one way both test suites
// build forecaster inputs.
inline std::vector<double> income_samples(const power::HarvestSource& src, double dt_s,
                                          int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(src.power_at(static_cast<double>(i) * dt_s));
  return out;
}

// Replays `samples[i]` at t = i * dt_s into the forecaster.
inline void record_samples(HarvestForecaster& fc, const std::vector<double>& samples,
                           double dt_s) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    fc.record_at(samples[i], static_cast<double>(i) * dt_s);
  }
}

// Records the same value n times (the repeated-sample construction the
// forecaster unit tests kept duplicating inline).
inline void record_n(HarvestForecaster& fc, double income_w, int n) {
  for (int i = 0; i < n; ++i) fc.record(income_w);
}

}  // namespace ehdnn::sched::testutil
