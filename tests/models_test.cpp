#include <gtest/gtest.h>

#include "compress/structured.h"
#include "models/zoo.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "util/rng.h"

namespace ehdnn::models {
namespace {

TEST(Zoo, MnistShapesMatchTableII) {
  Rng rng(1);
  ModelInfo info;
  nn::Model m = make_mnist_model(rng, &info);
  EXPECT_EQ(info.input_shape, (std::vector<std::size_t>{1, 28, 28}));
  const auto out = m.output_shape(info.input_shape);
  EXPECT_EQ(out, (std::vector<std::size_t>{10}));

  auto* c2 = dynamic_cast<nn::Conv2D*>(&m.layer(3));
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c2->out_channels(), 16u);  // Conv 16x6x5x5
  EXPECT_EQ(c2->in_channels(), 6u);

  auto* f1 = dynamic_cast<nn::BcmDense*>(&m.layer(7));
  ASSERT_NE(f1, nullptr);
  EXPECT_EQ(f1->in_features(), 256u);  // FC 256x256, BCM 128x
  EXPECT_EQ(f1->out_features(), 256u);
  EXPECT_EQ(f1->block_size(), 128u);
}

TEST(Zoo, HarShapesMatchTableII) {
  Rng rng(2);
  ModelInfo info;
  nn::Model m = make_har_model(rng, &info);
  EXPECT_EQ(info.input_shape, (std::vector<std::size_t>{1, 121}));
  EXPECT_EQ(m.output_shape(info.input_shape), (std::vector<std::size_t>{6}));

  auto* f1 = dynamic_cast<nn::BcmDense*>(&m.layer(3));
  ASSERT_NE(f1, nullptr);
  EXPECT_EQ(f1->in_features(), 3520u);  // FC 3520x128, BCM 128x
  EXPECT_EQ(f1->out_features(), 128u);
  EXPECT_EQ(f1->block_size(), 128u);

  auto* f2 = dynamic_cast<nn::BcmDense*>(&m.layer(5));
  ASSERT_NE(f2, nullptr);
  EXPECT_EQ(f2->block_size(), 64u);  // FC 128x64, BCM 64x
}

TEST(Zoo, OkgShapesMatchTableII) {
  Rng rng(3);
  ModelInfo info;
  nn::Model m = make_okg_model(rng, &info);
  EXPECT_EQ(m.output_shape(info.input_shape), (std::vector<std::size_t>{12}));

  auto* f1 = dynamic_cast<nn::BcmDense*>(&m.layer(3));
  ASSERT_NE(f1, nullptr);
  EXPECT_EQ(f1->in_features(), 3456u);  // FC 3456x512, BCM 256x
  EXPECT_EQ(f1->out_features(), 512u);
  EXPECT_EQ(f1->block_size(), 256u);

  auto* f2 = dynamic_cast<nn::BcmDense*>(&m.layer(5));
  ASSERT_NE(f2, nullptr);
  EXPECT_EQ(f2->block_size(), 128u);
  auto* f3 = dynamic_cast<nn::BcmDense*>(&m.layer(7));
  ASSERT_NE(f3, nullptr);
  EXPECT_EQ(f3->block_size(), 64u);
}

TEST(Zoo, CompressionRatiosMatchTableII) {
  Rng rng(4);
  nn::Model m = make_mnist_model(rng);
  auto* f1 = dynamic_cast<nn::BcmDense*>(&m.layer(7));
  ASSERT_NE(f1, nullptr);
  // BCM 128x: stored weights = 256*256/128.
  EXPECT_EQ(f1->stored_weights() - f1->bias().size(), 256u * 256u / 128u);

  auto* c2 = dynamic_cast<nn::Conv2D*>(&m.layer(3));
  ASSERT_NE(c2, nullptr);
  cmp::project_shape_sparse(*c2, 13);
  EXPECT_NEAR(cmp::shape_compression(*c2), 2.0, 0.1);  // "2x" in Table II
}

TEST(Zoo, DenseTwinsHaveSameTopologyWithoutCompression) {
  Rng rng(5);
  nn::Model comp = make_okg_model(rng);
  nn::Model dense = make_okg_dense(rng);
  EXPECT_EQ(comp.layer_count(), dense.layer_count());
  EXPECT_GT(dense.stored_weights(), comp.stored_weights() * 50);  // BCM shrinks a lot
  EXPECT_EQ(dense.output_shape({1, 28, 28}), comp.output_shape({1, 28, 28}));
}

TEST(Zoo, ForwardRunsOnAllModels) {
  Rng rng(6);
  for (Task t : {Task::kMnist, Task::kHar, Task::kOkg}) {
    ModelInfo info;
    nn::Model m = make_model(t, rng, &info);
    nn::Tensor x(info.input_shape);
    const nn::Tensor y = m.forward(x);
    EXPECT_EQ(y.size(), info.num_classes) << task_name(t);

    nn::Model d = make_dense_model(t, rng);
    EXPECT_EQ(d.forward(x).size(), info.num_classes);
  }
}

TEST(Zoo, LeNet5Forward) {
  Rng rng(7);
  nn::Model m = make_lenet5(rng);
  nn::Tensor x({1, 28, 28});
  EXPECT_EQ(m.forward(x).size(), 10u);
}

TEST(Zoo, TaskNames) {
  EXPECT_STREQ(task_name(Task::kMnist), "MNIST");
  EXPECT_STREQ(task_name(Task::kHar), "HAR");
  EXPECT_STREQ(task_name(Task::kOkg), "OKG");
}

}  // namespace
}  // namespace ehdnn::models
