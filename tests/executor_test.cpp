// The step-based execution core (core/flex/executor.h): policy
// equivalence against pre-refactor golden outputs, incremental
// start()/step()/finished() semantics, and suspend/resume interleaving.
//
// The golden table was captured from the monolithic pre-refactor runtimes
// (the run-to-completion loops each runtime carried before the
// IntermittentExecutor split) on the flex_test models, continuous power
// and a 0.68 uF / 1 mW constant-harvest schedule. Any drift in outputs,
// modeled time/energy, reboot counts, or commit/checkpoint counts means
// the executor changed the device-operation sequence — exactly what the
// refactor must not do.

#include <gtest/gtest.h>

#include "core/ace/compiled_model.h"
#include "core/flex/executor.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "quant/quantize.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace ehdnn::flex {
namespace {

using fx::q15_t;

nn::Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-0.9, 0.9));
  }
  return t;
}

// Same miniature models as flex_test (every kernel kind represented).
quant::QuantModel mixed_model(Rng& rng) {
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::BcmDense>(2 * 4 * 4, 16, 16)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(16, 4)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 10, 10}, rng));
  return quant::quantize(m, calib, {1, 10, 10});
}

quant::QuantModel dense_model(Rng& rng) {
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::Dense>(2 * 4 * 4, 16)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(16, 4)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 10, 10}, rng));
  return quant::quantize(m, calib, {1, 10, 10});
}

struct GoldenCase {
  const char* runtime;
  bool bcm_model;    // mixed (BCM) model vs dense twin
  bool intermittent; // 0.68 uF / 1 mW constant harvest vs continuous
  std::vector<q15_t> output;
  double on_seconds;
  double energy_j;
  long reboots;
  long checkpoints;
  long progress_commits;
  long units_executed;
};

// Captured from the pre-refactor runtimes at commit 012c8c8 (model seed
// 1234, input drawn after model construction; see file comment).
const GoldenCase kGolden[] = {
    {"base", false, false, {-8379, -14080, -13532, -2068},
     0.0012615, 4.9289079999999997e-06, 0, 0, 0, 23},
    {"sonic", false, false, {-8379, -14080, -13532, -2068},
     0.0021444375000000001, 1.235348974999978e-05, 0, 0, 177, 177},
    {"sonic", false, true, {-8379, -14080, -13532, -2068},
     0.0023435625000000002, 1.349225324999998e-05, 5, 0, 178, 178},
    {"tails", true, false, {0, 0, 0, 0},
     0.0013021249999999999, 5.4254245000000001e-06, 0, 0, 24, 24},
    {"tails", true, true, {0, 0, 0, 0},
     0.0014976875000000001, 6.2444537500000019e-06, 2, 0, 24, 24},
    {"tails", false, true, {-8379, -14080, -13532, -2068},
     0.0013523750000000001, 5.3117555000000013e-06, 1, 0, 23, 23},
    {"flex", true, false, {0, 0, 0, 0},
     0.0013021249999999999, 5.4684225000000008e-06, 0, 7, 0, 23},
    {"flex", true, true, {0, 0, 0, 0},
     0.0015321250000000001, 6.3027165000000016e-06, 2, 11, 0, 23},
    {"flex", false, true, {-8379, -14080, -13532, -2068},
     0.0013526874999999999, 5.3446137500000014e-06, 1, 12, 0, 23},
};

RunStats run_case(const GoldenCase& gc) {
  Rng rng(1234);
  const auto qm = gc.bcm_model ? mixed_model(rng) : dense_model(rng);
  const auto input = quant::quantize_input(
      qm, random_tensor(qm.layers.front().in_shape, rng));
  auto rt = sim::make_runtime(gc.runtime);

  dev::Device dev;
  power::ContinuousPower cont;
  power::ConstantSource src(1.0e-3);
  power::CapacitorConfig cfg;
  cfg.capacitance_f = 0.68e-6;
  power::CapacitorSupply cap(src, cfg);
  dev.attach_supply(gc.intermittent ? static_cast<dev::PowerSupply*>(&cap) : &cont);
  const auto cm = ace::compile(qm, dev);
  return rt->infer(dev, cm, input);
}

class PolicyEquivalence : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(PolicyEquivalence, BitExactAgainstPreRefactorGolden) {
  const GoldenCase gc = GetParam();
  const RunStats st = run_case(gc);
  ASSERT_TRUE(st.completed()) << gc.runtime;
  EXPECT_EQ(st.output, gc.output) << gc.runtime << " output drifted";
  EXPECT_DOUBLE_EQ(st.on_seconds, gc.on_seconds) << gc.runtime;
  EXPECT_DOUBLE_EQ(st.energy_j, gc.energy_j) << gc.runtime;
  EXPECT_EQ(st.reboots, gc.reboots) << gc.runtime;
  EXPECT_EQ(st.checkpoints, gc.checkpoints) << gc.runtime;
  EXPECT_EQ(st.progress_commits, gc.progress_commits) << gc.runtime;
  EXPECT_EQ(st.units_executed, gc.units_executed) << gc.runtime;
}

INSTANTIATE_TEST_SUITE_P(Golden, PolicyEquivalence, ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<GoldenCase>& info) {
                           const GoldenCase& c = info.param;
                           std::string name = c.runtime;
                           name += c.bcm_model ? "_bcm" : "_dense";
                           name += c.intermittent ? "_harvest" : "_cont";
                           return name;
                         });

// The one-call infer() and a manual start()/step() drain — with the run
// suspended between every slice — must agree exactly: stats, outputs,
// and the device-side trace totals.
TEST(Executor, IncrementalDrainMatchesInfer) {
  for (const char* key : {"base", "sonic", "tails", "flex", "tile", "tile:t=2"}) {
    const bool bcm = std::string(key) == "flex" || std::string(key) == "tails";
    // BASE has no intermittence support: give it a one-burst capacitor so
    // it completes; the checkpointing runtimes get many power cycles.
    const double cap_f = std::string(key) == "base" ? 1.0e-3 : 0.68e-6;
    Rng rng(1234);
    const auto qm = bcm ? mixed_model(rng) : dense_model(rng);
    const auto input = quant::quantize_input(
        qm, random_tensor(qm.layers.front().in_shape, rng));

    auto run_infer = [&] {
      dev::Device dev;
      power::ConstantSource src(1.0e-3);
      power::CapacitorConfig cfg;
      cfg.capacitance_f = cap_f;
      power::CapacitorSupply cap(src, cfg);
      dev.attach_supply(&cap);
      const auto cm = ace::compile(qm, dev);
      return sim::make_runtime(key)->infer(dev, cm, input);
    };
    auto run_steps = [&](long* steps_out) {
      dev::Device dev;
      power::ConstantSource src(1.0e-3);
      power::CapacitorConfig cfg;
      cfg.capacitance_f = cap_f;
      power::CapacitorSupply cap(src, cfg);
      dev.attach_supply(&cap);
      const auto cm = ace::compile(qm, dev);
      auto policy = sim::make_policy(key);
      IntermittentExecutor ex(*policy);
      ex.start(dev, cm, input);
      long steps = 0;
      while (!ex.finished()) {
        ex.step();
        ++steps;
      }
      *steps_out = steps;
      return ex.take_stats();
    };

    const RunStats a = run_infer();
    long steps = 0;
    const RunStats b = run_steps(&steps);
    ASSERT_TRUE(a.completed()) << key;
    ASSERT_TRUE(b.completed()) << key;
    EXPECT_EQ(a.output, b.output) << key;
    EXPECT_DOUBLE_EQ(a.on_seconds, b.on_seconds) << key;
    EXPECT_DOUBLE_EQ(a.off_seconds, b.off_seconds) << key;
    EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j) << key;
    EXPECT_EQ(a.reboots, b.reboots) << key;
    EXPECT_EQ(a.checkpoints, b.checkpoints) << key;
    EXPECT_EQ(a.progress_commits, b.progress_commits) << key;
    EXPECT_EQ(a.units_executed, b.units_executed) << key;
    // One slice per boot + one per layer at minimum; failures add more.
    EXPECT_GT(steps, static_cast<long>(qm.layers.size())) << key;
  }
}

// Suspend/resume at step granularity: two runs interleaved slice-by-slice
// on independent devices match the same runs executed back-to-back.
TEST(Executor, InterleavedRunsMatchSequential) {
  Rng rng(1234);
  const auto qm = mixed_model(rng);
  const auto in1 = quant::quantize_input(
      qm, random_tensor(qm.layers.front().in_shape, rng));
  const auto in2 = quant::quantize_input(
      qm, random_tensor(qm.layers.front().in_shape, rng));

  struct Rig {
    dev::Device dev;
    power::ConstantSource src{1.0e-3};
    power::CapacitorSupply cap;
    std::unique_ptr<RuntimePolicy> policy;
    IntermittentExecutor ex;
    explicit Rig(double cap_f)
        : cap(src, [&] {
            power::CapacitorConfig c;
            c.capacitance_f = cap_f;
            return c;
          }()),
          policy(make_flex_policy()),
          ex(*policy) {
      dev.attach_supply(&cap);
    }
  };

  // Sequential reference.
  std::vector<q15_t> ref1, ref2;
  double ref1_on = 0.0, ref2_on = 0.0;
  {
    Rig r(0.68e-6);
    const auto cm = ace::compile(qm, r.dev);
    const RunStats st = r.ex.run(r.dev, cm, in1);
    ASSERT_TRUE(st.completed());
    ref1 = st.output;
    ref1_on = st.on_seconds;
  }
  {
    Rig r(1.0e-6);
    const auto cm = ace::compile(qm, r.dev);
    const RunStats st = r.ex.run(r.dev, cm, in2);
    ASSERT_TRUE(st.completed());
    ref2 = st.output;
    ref2_on = st.on_seconds;
  }

  // Interleaved: alternate one slice each until both finish.
  Rig r1(0.68e-6), r2(1.0e-6);
  const auto cm1 = ace::compile(qm, r1.dev);
  const auto cm2 = ace::compile(qm, r2.dev);
  r1.ex.start(r1.dev, cm1, in1);
  r2.ex.start(r2.dev, cm2, in2);
  while (!r1.ex.finished() || !r2.ex.finished()) {
    if (!r1.ex.finished()) r1.ex.step();
    if (!r2.ex.finished()) r2.ex.step();
  }
  const RunStats s1 = r1.ex.take_stats();
  const RunStats s2 = r2.ex.take_stats();
  ASSERT_TRUE(s1.completed());
  ASSERT_TRUE(s2.completed());
  EXPECT_EQ(s1.output, ref1);
  EXPECT_EQ(s2.output, ref2);
  EXPECT_DOUBLE_EQ(s1.on_seconds, ref1_on);
  EXPECT_DOUBLE_EQ(s2.on_seconds, ref2_on);
}

TEST(Executor, ApiSemantics) {
  Rng rng(1234);
  const auto qm = dense_model(rng);
  const auto input = quant::quantize_input(
      qm, random_tensor(qm.layers.front().in_shape, rng));

  auto policy = make_ace_policy();
  IntermittentExecutor ex(*policy);
  // No run armed: finished, and step() is a no-op.
  EXPECT_TRUE(ex.finished());
  EXPECT_FALSE(ex.step());

  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  ex.start(dev, cm, input);
  EXPECT_FALSE(ex.finished());
  while (ex.step()) {
  }
  EXPECT_TRUE(ex.finished());
  EXPECT_FALSE(ex.step());  // idempotent after completion
  EXPECT_TRUE(ex.stats().completed());
  EXPECT_EQ(ex.stats().reboots, 0);
  EXPECT_FALSE(ex.stats().output.empty());

  // The executor is reusable: a second start() resets the run.
  ex.start(dev, cm, input);
  EXPECT_FALSE(ex.finished());
  while (ex.step()) {
  }
  EXPECT_TRUE(ex.stats().completed());
}

// A DNF run (no intermittence support, burst too small) ends through the
// same incremental interface, with the livelock guard deciding.
TEST(Executor, DnfSurfacesThroughStepApi) {
  Rng rng(1234);
  const auto qm = dense_model(rng);
  const auto input = quant::quantize_input(
      qm, random_tensor(qm.layers.front().in_shape, rng));

  dev::Device dev;
  power::ConstantSource src(0.5e-3);
  power::CapacitorConfig cfg;
  cfg.capacitance_f = 1.0e-6;
  power::CapacitorSupply cap(src, cfg);
  dev.attach_supply(&cap);
  const auto cm = ace::compile(qm, dev);

  auto policy = make_ace_policy();
  IntermittentExecutor ex(*policy);
  RunOptions opts;
  opts.max_reboots = 3000;
  ex.start(dev, cm, input, opts);
  while (ex.step()) {
  }
  EXPECT_FALSE(ex.stats().completed());
  EXPECT_EQ(ex.stats().outcome, Outcome::kDidNotFinish);
  EXPECT_GT(ex.stats().reboots, 0);
  // This DNF spun to the reboot cap with the watchdog disabled (the
  // default), so it is NOT flagged as a detected livelock.
  EXPECT_FALSE(ex.stats().livelock);
}

TEST(Executor, FutileBootWatchdogFlagsLivelock) {
  // ACE restarts from scratch every cycle; a capacitor whose burst cannot
  // push the whole inference through one power cycle therefore banks
  // nothing, forever. With max_futile_boots set, the executor must end
  // the run as kDidNotFinish with the livelock flag after exactly that
  // many futile boots — instead of spinning to max_reboots.
  Rng rng(1234);
  const auto qm = dense_model(rng);
  const auto input = quant::quantize_input(
      qm, random_tensor(qm.layers.front().in_shape, rng));

  dev::Device dev;
  power::ConstantSource src(0.5e-3);
  power::CapacitorConfig cfg;
  cfg.capacitance_f = 1.0e-6;
  power::CapacitorSupply cap(src, cfg);
  dev.attach_supply(&cap);
  const auto cm = ace::compile(qm, dev);

  auto policy = make_ace_policy();
  IntermittentExecutor ex(*policy);
  RunOptions opts;
  opts.max_reboots = 3000;
  opts.max_futile_boots = 7;
  ex.start(dev, cm, input, opts);
  while (ex.step()) {
  }
  EXPECT_FALSE(ex.stats().completed());
  EXPECT_EQ(ex.stats().outcome, Outcome::kDidNotFinish);
  EXPECT_TRUE(ex.stats().livelock);
  // Tripped at the watchdog threshold, far below the reboot cap. ACE's
  // own patience detector would fire later (its stale-attempt budget is
  // larger than 7), so the watchdog is what ended this run.
  EXPECT_LE(ex.stats().reboots, 8);

  // A runtime that banks progress under the SAME supply must complete
  // with the watchdog armed: banked commits reset the futile counter.
  dev::Device dev2;
  power::ConstantSource src2(0.5e-3);
  power::CapacitorSupply cap2(src2, cfg);
  dev2.attach_supply(&cap2);
  const auto cm2 = ace::compile(qm, dev2);
  auto sonic = make_sonic_policy();
  IntermittentExecutor ex2(*sonic);
  RunOptions opts2 = opts;
  opts2.max_futile_boots = 2;  // tighter than the reboot count below
  ex2.start(dev2, cm2, input, opts2);
  while (ex2.step()) {
  }
  EXPECT_TRUE(ex2.stats().completed());
  EXPECT_FALSE(ex2.stats().livelock);
  // More power cycles than the watchdog budget, yet no trip: every boot
  // banked at least one commit, so the futile counter kept resetting.
  EXPECT_GT(ex2.stats().reboots, 2);
}

}  // namespace
}  // namespace ehdnn::flex
