#include <gtest/gtest.h>

#include "power/capacitor.h"
#include "power/continuous.h"
#include "power/harvest.h"
#include "power/monitor.h"

namespace ehdnn::power {
namespace {

TEST(Harvest, ConstantSource) {
  ConstantSource s(2.5e-3);
  EXPECT_DOUBLE_EQ(s.power_at(0.0), 2.5e-3);
  EXPECT_DOUBLE_EQ(s.power_at(100.0), 2.5e-3);
}

TEST(Harvest, SquareSourceDutyCycle) {
  SquareSource s(5e-3, 0.0, /*period=*/1.0, /*duty=*/0.25);
  EXPECT_DOUBLE_EQ(s.power_at(0.1), 5e-3);
  EXPECT_DOUBLE_EQ(s.power_at(0.3), 0.0);
  EXPECT_DOUBLE_EQ(s.power_at(1.1), 5e-3);  // periodic
}

TEST(Harvest, SineSourceNonNegative) {
  SineSource s(1e-3, 3e-3, 1.0);
  for (double t = 0.0; t < 2.0; t += 0.01) EXPECT_GE(s.power_at(t), 0.0);
}

TEST(Harvest, TraceSourceLoops) {
  TraceSource s({1.0, 2.0, 3.0}, 0.5);
  EXPECT_DOUBLE_EQ(s.power_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.power_at(0.6), 2.0);
  EXPECT_DOUBLE_EQ(s.power_at(1.6), 1.0);  // wrapped
}

TEST(Harvest, PoissonBurstSourceIsDeterministicAndBursty) {
  PoissonBurstSource a(0.1e-3, 5e-3, /*rate=*/20.0, /*mean_burst=*/5e-3, /*seed=*/42,
                       /*horizon=*/2.0);
  PoissonBurstSource b(0.1e-3, 5e-3, 20.0, 5e-3, 42, 2.0);
  EXPECT_GT(a.burst_count(), 0u);
  double hi_time = 0.0, lo_time = 0.0;
  for (double t = 0.0; t < 2.0; t += 1e-3) {
    EXPECT_DOUBLE_EQ(a.power_at(t), b.power_at(t));  // same seed, same schedule
    (a.power_at(t) > 1e-3 ? hi_time : lo_time) += 1e-3;
  }
  EXPECT_GT(hi_time, 0.0);
  EXPECT_GT(lo_time, hi_time);  // bursts are sparse at these parameters
  EXPECT_DOUBLE_EQ(a.power_at(0.3), a.power_at(2.3));  // loops past the horizon
}

TEST(Harvest, SolarDayRampShape) {
  SolarDaySource s(/*peak=*/5e-3, /*day=*/1.0, /*daylight=*/0.5, /*floor=*/0.1e-3);
  EXPECT_NEAR(s.power_at(0.25), 5e-3 + 0.1e-3, 1e-9);  // solar noon
  EXPECT_NEAR(s.power_at(0.75), 0.1e-3, 1e-12);        // night: floor only
  EXPECT_GT(s.power_at(0.1), s.power_at(0.02));        // morning ramp rises
  EXPECT_NEAR(s.power_at(0.25), s.power_at(1.25), 1e-12);  // periodic
}

TEST(Capacitor, BurstEnergyMatchesFormula) {
  ConstantSource src(0.0);
  CapacitorConfig cfg;  // 100uF, 3.3/2.2 V
  CapacitorSupply cap(src, cfg);
  const double expect = 0.5 * 100e-6 * (3.3 * 3.3 - 2.2 * 2.2);
  EXPECT_NEAR(cap.burst_energy(), expect, 1e-9);
  EXPECT_NEAR(cap.burst_energy(), 3.03e-4, 5e-6);  // ~0.30 mJ (DESIGN.md)
}

TEST(Capacitor, StartsChargedAndDrains) {
  ConstantSource src(0.0);
  CapacitorSupply cap(src);
  EXPECT_NEAR(cap.voltage(), 3.3, 1e-9);
  EXPECT_TRUE(cap.consume(1e-5, 1e-3));
  EXPECT_LT(cap.voltage(), 3.3);
}

TEST(Capacitor, BrownsOutBelowVoff) {
  ConstantSource src(0.0);
  CapacitorSupply cap(src);
  bool failed = false;
  for (int i = 0; i < 1000 && !failed; ++i) failed = !cap.consume(5e-5, 1e-3);
  EXPECT_TRUE(failed);
  EXPECT_FALSE(cap.on());
  EXPECT_LE(cap.voltage(), 2.2 + 1e-6);
  EXPECT_EQ(cap.failures(), 1);
}

TEST(Capacitor, RechargeReachesVonAndTracksTime) {
  ConstantSource src(2e-3);
  CapacitorSupply cap(src);
  while (cap.consume(5e-5, 1e-3)) {
  }
  const double off = cap.recharge_to_on();
  EXPECT_TRUE(cap.on());
  EXPECT_NEAR(cap.voltage(), 3.3, 0.01);
  // Recharge energy / harvest power, within integration slack.
  const double expect = cap.burst_energy() / 2e-3;
  EXPECT_NEAR(off, expect, 0.2 * expect);
  EXPECT_NEAR(cap.off_time(), off, 1e-12);
}

TEST(Capacitor, HarvestIncomeExtendsRuntime) {
  ConstantSource none(0.0);
  ConstantSource some(3e-3);
  CapacitorSupply a(none), b(some);
  auto drain_steps = [](CapacitorSupply& c) {
    int steps = 0;
    while (c.consume(4e-6, 1e-3)) ++steps;  // 4 mW load
    return steps;
  };
  EXPECT_GT(drain_steps(b), drain_steps(a));
}

TEST(Capacitor, ClampsAtVmax) {
  ConstantSource src(1.0);  // absurdly strong harvester
  CapacitorSupply cap(src);
  cap.consume(0.0, 1.0);  // long idle: would overshoot without clamp
  EXPECT_LE(cap.voltage(), 3.6 + 1e-9);
}

TEST(Capacitor, StarvationSurfacesInsteadOfThrowing) {
  // The max_off_s guard is an outcome, not an exception: recharge gives up
  // after max_off_s with on() still false and starved() set, so runtimes
  // can report RunStats outcome "starved" distinctly from "completed".
  ConstantSource src(0.0);
  CapacitorConfig cfg;
  cfg.max_off_s = 0.05;
  CapacitorSupply cap(src, cfg);
  while (cap.consume(5e-5, 1e-3)) {
  }
  const double off = cap.recharge_to_on();
  EXPECT_FALSE(cap.on());
  EXPECT_TRUE(cap.starved());
  EXPECT_NEAR(off, 0.05, 1e-3);
  EXPECT_NEAR(cap.off_time(), off, 1e-12);
}

TEST(Capacitor, StarvedFlagClearsOnceHarvestReturns) {
  // Square wave with a long dead phase: one recharge starves, but once
  // income returns a later recharge succeeds and clears starved().
  SquareSource src(20e-3, 0.0, /*period=*/0.4, /*duty=*/0.5);
  CapacitorConfig cfg;
  cfg.max_off_s = 0.01;  // shorter than the 0.2 s dead phase
  CapacitorSupply cap(src, cfg);
  // Drain into the dead phase: at 5 mW average draw the charge from the
  // active phase runs out shortly after t = 0.2 s.
  while (cap.consume(5e-6, 1e-3)) {
  }
  bool starved_once = false;
  for (int i = 0; i < 100 && !cap.on(); ++i) {
    cap.recharge_to_on();
    starved_once = starved_once || cap.starved();
  }
  EXPECT_TRUE(starved_once);
  EXPECT_TRUE(cap.on());
  EXPECT_FALSE(cap.starved());
}

TEST(Capacitor, SquareWaveProducesBursts) {
  SquareSource src(10e-3, 0.0, 0.2, 0.5);
  CapacitorSupply cap(src);
  int failures = 0;
  for (int burst = 0; burst < 5; ++burst) {
    while (cap.consume(6e-6, 1e-3)) {  // ~6 mW active load
    }
    ++failures;
    cap.recharge_to_on();
  }
  EXPECT_EQ(cap.failures(), failures);
  EXPECT_GT(cap.off_time(), 0.0);
  EXPECT_GT(cap.on_time(), 0.0);
}

TEST(Continuous, NeverFails) {
  ContinuousPower p;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(p.consume(1.0, 1.0));
  EXPECT_TRUE(p.on());
  EXPECT_DOUBLE_EQ(p.recharge_to_on(), 0.0);
  EXPECT_DOUBLE_EQ(p.voltage(), 3.3);
  EXPECT_DOUBLE_EQ(p.energy_drawn(), 1000.0);
}

TEST(Monitor, WarnVoltageCoversCheckpointBudget) {
  CapacitorConfig cfg;
  const double budget = 33e-6;  // the paper's 0.033 mJ worst case
  const double v_warn = warn_voltage_for(cfg, budget, 2.0);
  EXPECT_GT(v_warn, cfg.v_off);
  EXPECT_LT(v_warn, cfg.v_on);
  // Energy between v_warn and v_off is at least the budgeted amount.
  const double margin = 0.5 * cfg.capacitance_f * (v_warn * v_warn - cfg.v_off * cfg.v_off);
  EXPECT_GE(margin, 2.0 * budget - 1e-12);
}

TEST(Monitor, BiggerBudgetRaisesThreshold) {
  CapacitorConfig cfg;
  EXPECT_GT(warn_voltage_for(cfg, 100e-6), warn_voltage_for(cfg, 10e-6));
}

}  // namespace
}  // namespace ehdnn::power
