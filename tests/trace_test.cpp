// Coverage for the power-trace CSV parser, the TraceHarvestSource replay
// semantics (interpolation, looping, wrap-around), the harvest-source
// spec factory, and the scenario-spec argument grammar.

#include <gtest/gtest.h>

#include <sstream>

#include "power/factory.h"
#include "power/trace.h"
#include "sim/scenario.h"
#include "util/check.h"

namespace ehdnn::power {
namespace {

PowerTrace parse(const std::string& csv) {
  std::istringstream in(csv);
  return parse_trace_csv(in, "<test>");
}

TEST(TraceCsv, ParsesRowsHeaderAndComments) {
  const auto tr = parse(
      "# a comment\n"
      "time_s,power_w\n"
      "\n"
      "0.0,1e-3\n"
      "  0.5 , 2e-3 \n"  // whitespace around fields is fine
      "1.0,0\n");
  ASSERT_EQ(tr.points.size(), 3u);
  EXPECT_DOUBLE_EQ(tr.points[0].watts, 1e-3);
  EXPECT_DOUBLE_EQ(tr.points[1].t, 0.5);
  EXPECT_DOUBLE_EQ(tr.span_s(), 1.0);
}

TEST(TraceCsv, EmptyFileThrows) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("# only comments\n\n"), Error);
  EXPECT_THROW(parse("time_s,power_w\n"), Error);  // header, no samples
}

TEST(TraceCsv, MalformedRowsThrow) {
  EXPECT_THROW(parse("0.0,1e-3\nbogus,2e-3\n"), Error);      // bad time
  EXPECT_THROW(parse("0.0,1e-3\n0.5,watts\n"), Error);       // bad power
  EXPECT_THROW(parse("0.0,1e-3\n0.5\n"), Error);             // missing field
  EXPECT_THROW(parse("0.0,1e-3\n0.5,2e-3 trailing\n"), Error);
  EXPECT_THROW(parse("0.0,1e-3\n0.5,-2e-3\n"), Error);       // negative power
  EXPECT_THROW(parse("0.0,1e-3\n0.5,inf\n"), Error);         // non-finite
  // A second header mid-file is a malformed row, not a header.
  EXPECT_THROW(parse("0.0,1e-3\ntime_s,power_w\n"), Error);
  // Only ONE leading non-numeric row is tolerated (the header): a file
  // with a systematically wrong delimiter must throw, not silently
  // degrade to whatever rows happen to contain a comma.
  EXPECT_THROW(parse("0.0;1e-3\n0.5;2e-3\n1.0,5e-3\n"), Error);
  EXPECT_THROW(parse("time_s,power_w\nunits,mw\n0.0,1e-3\n"), Error);
  // A row that starts numerically is data, never a header: a typo in the
  // FIRST sample of a headerless trace must throw, not drop the sample.
  EXPECT_THROW(parse("0.0,1e-3x\n0.5,2e-3\n"), Error);
  EXPECT_THROW(parse("0.0;1e-3\n0.5,2e-3\n"), Error);
}

TEST(TraceCsv, NonMonotonicTimestampsThrow) {
  EXPECT_THROW(parse("0.0,1e-3\n0.5,2e-3\n0.4,3e-3\n"), Error);  // decreasing
  EXPECT_THROW(parse("0.0,1e-3\n0.0,2e-3\n"), Error);            // duplicate
}

TEST(TraceCsv, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/nonexistent/definitely_not_here.csv"), Error);
}

TEST(TraceSourceReplay, LinearInterpolation) {
  TraceHarvestSource s(parse("0.0,0\n1.0,4e-3\n"), TraceInterp::kLinear, /*loop=*/false);
  EXPECT_DOUBLE_EQ(s.power_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.power_at(0.25), 1e-3);
  EXPECT_DOUBLE_EQ(s.power_at(0.5), 2e-3);
  EXPECT_DOUBLE_EQ(s.power_at(1.0), 4e-3);
  EXPECT_DOUBLE_EQ(s.power_at(5.0), 4e-3);  // no loop: holds the last sample
  EXPECT_DOUBLE_EQ(s.power_at(-1.0), 0.0);  // before start: first sample
}

TEST(TraceSourceReplay, ZeroOrderHold) {
  TraceHarvestSource s(parse("0.0,1e-3\n0.5,3e-3\n1.0,0\n"),
                       TraceInterp::kZeroOrderHold, /*loop=*/false);
  EXPECT_DOUBLE_EQ(s.power_at(0.2), 1e-3);   // holds the 0.0 sample
  EXPECT_DOUBLE_EQ(s.power_at(0.499), 1e-3);
  EXPECT_DOUBLE_EQ(s.power_at(0.5), 3e-3);
  EXPECT_DOUBLE_EQ(s.power_at(0.7), 3e-3);
  EXPECT_DOUBLE_EQ(s.power_at(2.0), 0.0);
}

TEST(TraceSourceReplay, LoopWrapAround) {
  // Span 1.0 s: power_at(t) must equal power_at(t + k * span) for any k,
  // including far past the recording and for negative t.
  TraceHarvestSource s(parse("0.0,1e-3\n0.5,3e-3\n1.0,1e-3\n"), TraceInterp::kLinear,
                       /*loop=*/true);
  for (double t : {0.0, 0.1, 0.25, 0.49, 0.5, 0.75, 0.999}) {
    // fmod introduces ~1 ulp of phase error on wrapped times.
    EXPECT_NEAR(s.power_at(t), s.power_at(t + 1.0), 1e-12) << t;
    EXPECT_NEAR(s.power_at(t), s.power_at(t + 7.0), 1e-12) << t;
    EXPECT_NEAR(s.power_at(t), s.power_at(t - 3.0), 1e-12) << t;
  }
  // Interpolation still works inside a wrapped period.
  EXPECT_DOUBLE_EQ(s.power_at(4.25), 2e-3);
}

TEST(TraceSourceReplay, NonZeroStartTimeIsNormalized) {
  // Trace recorded from t=10: replay still starts at its first sample.
  TraceHarvestSource s(parse("10.0,1e-3\n10.5,3e-3\n11.0,1e-3\n"), TraceInterp::kLinear,
                       /*loop=*/true);
  EXPECT_DOUBLE_EQ(s.power_at(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(s.power_at(0.5), 3e-3);
  EXPECT_DOUBLE_EQ(s.power_at(1.25), 2e-3);  // wrapped + interpolated
}

TEST(TraceSourceReplay, SinglePointTraceIsConstant) {
  TraceHarvestSource s(parse("0.0,2e-3\n"), TraceInterp::kLinear, /*loop=*/true);
  EXPECT_DOUBLE_EQ(s.power_at(0.0), 2e-3);
  EXPECT_DOUBLE_EQ(s.power_at(123.0), 2e-3);
}

TEST(TraceSourceReplay, ScaleMultipliesPower) {
  TraceHarvestSource s(parse("0.0,1e-3\n1.0,3e-3\n"), TraceInterp::kLinear,
                       /*loop=*/false, /*scale=*/2.0);
  EXPECT_DOUBLE_EQ(s.power_at(0.5), 4e-3);
}

TEST(Factory, BuildsEveryKind) {
  EXPECT_DOUBLE_EQ(make_harvest_source("const:w=2e-3")->power_at(1.0), 2e-3);
  EXPECT_DOUBLE_EQ(make_harvest_source("square:hi=4e-3,lo=0,period=1,duty=0.5")
                       ->power_at(0.25),
                   4e-3);
  EXPECT_GT(make_harvest_source("sine:mean=2e-3,amp=1e-3,period=1")->power_at(0.25), 2e-3);
  EXPECT_GE(make_harvest_source("rf:base=0.1e-3,burst=5e-3,rate=30,dur=5e-3,seed=9")
                ->power_at(0.5),
            0.1e-3);
  EXPECT_NEAR(make_harvest_source("solar:peak=4e-3,day=1,daylight=0.5")->power_at(0.25),
              4e-3, 1e-9);
  EXPECT_DOUBLE_EQ(make_harvest_source("const")->power_at(0.0), 1e-3);  // defaults
}

TEST(Factory, RejectsBadSpecs) {
  EXPECT_THROW(make_harvest_source("warp:w=1"), Error);          // unknown kind
  EXPECT_THROW(make_harvest_source("const:watts=1e-3"), Error);  // unknown key
  EXPECT_THROW(make_harvest_source("const:w=soon"), Error);      // bad number
  EXPECT_THROW(make_harvest_source("const:w"), Error);           // missing '='
  EXPECT_THROW(make_harvest_source("trace"), Error);             // missing path
  EXPECT_THROW(make_harvest_source("trace:path=/no/such.csv"), Error);
  EXPECT_THROW(make_harvest_source("trace:path=/no/such.csv,interp=cubic"), Error);
}

TEST(ScenarioArg, ParsesNameSourceAndOptions) {
  const auto sc = sim::parse_scenario_arg(
      "office=trace:path=traces/rf_office.csv;cap=4.7e-5;max_off=2;reboots=500");
  EXPECT_EQ(sc.name, "office");
  EXPECT_EQ(sc.source, "trace:path=traces/rf_office.csv");
  EXPECT_DOUBLE_EQ(sc.capacitance_f, 4.7e-5);
  EXPECT_DOUBLE_EQ(sc.max_off_s, 2.0);
  EXPECT_EQ(sc.max_reboots, 500);
}

TEST(ScenarioArg, RejectsMalformed) {
  EXPECT_THROW(sim::parse_scenario_arg("noequals"), Error);
  EXPECT_THROW(sim::parse_scenario_arg("name="), Error);
  EXPECT_THROW(sim::parse_scenario_arg("n=const:w=1;volts=3"), Error);  // unknown option
  EXPECT_THROW(sim::parse_scenario_arg("n=const:w=1;cap=tiny"), Error);
}

}  // namespace
}  // namespace ehdnn::power
