// Observability subsystem (src/obs/): the event-trace ring, the metrics
// registry's merge algebra, the exporters' byte-determinism, and the v6/v3
// report schemas the `metrics` block rides in. The properties pinned here
// are the ones the sharded fleet relies on: traces stamped in simulated
// device time are invariant to worker count, and registry merges are
// invariant to partition order.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "sim/fleet.h"
#include "sim/scenario.h"
#include "util/check.h"

namespace ehdnn::obs {
namespace {

using EK = EventKind;

// ------------------------------------------------------- EventTrace ring

TEST(EventTrace, CountsOnlyModeKeepsNoRing) {
  EventTrace t;  // capacity 0: the every-device fleet mode
  for (int i = 0; i < 100; ++i) t.record(i * 0.001, EK::kCommit, i);
  t.record(0.2, EK::kBoot, 1);
  EXPECT_EQ(t.count(EK::kCommit), 100);
  EXPECT_EQ(t.count(EK::kBoot), 1);
  EXPECT_EQ(t.total(), 101);
  EXPECT_EQ(t.dropped(), 0);  // nothing retained, so nothing "dropped"
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(EventTrace, RingWrapsOldestFirstAndCountsDrops) {
  EventTrace t(4);
  for (int i = 0; i < 10; ++i) t.record(i * 1.0, EK::kCommit, i);
  EXPECT_EQ(t.count(EK::kCommit), 10);  // counters never drop
  EXPECT_EQ(t.total(), 10);
  EXPECT_EQ(t.dropped(), 6);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // The retained window is the most recent events, oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].a, 6 + i);
    EXPECT_DOUBLE_EQ(snap[i].t_s, 6.0 + i);
  }
}

TEST(EventTrace, ClearResetsCountersRingAndDrops) {
  EventTrace t(2);
  for (int i = 0; i < 5; ++i) t.record(i, EK::kBoot);
  t.clear();
  EXPECT_EQ(t.total(), 0);
  EXPECT_EQ(t.dropped(), 0);
  EXPECT_TRUE(t.snapshot().empty());
  t.record(1.0, EK::kRecovery);
  EXPECT_EQ(t.count(EK::kRecovery), 1);
  ASSERT_EQ(t.snapshot().size(), 1u);
}

TEST(EventTrace, NullSinkHelperIsANoop) {
  record(nullptr, 1.0, EK::kBoot);  // must not crash — the disabled path
  EventTrace t(2);
  record(&t, 1.0, EK::kBoot, 7, 8);
  ASSERT_EQ(t.snapshot().size(), 1u);
  EXPECT_EQ(t.snapshot()[0].a, 7);
  EXPECT_EQ(t.snapshot()[0].b, 8);
}

// ------------------------------------------------- MetricsRegistry algebra

std::string metrics_json(const MetricsRegistry& r) {
  std::ostringstream os;
  write_metrics_json(os, r, "");
  return os.str();
}

TEST(MetricsRegistry, MergeIsPermutationInvariant) {
  // Three partial registries with overlapping keys, merged in every
  // order: counters must add, gauges must max, and the serialized block
  // must come out byte-identical — the property that makes shard merges
  // and worker pools agree.
  auto part = [](long boot, long commit, long reboots) {
    MetricsRegistry r;
    *r.counter("event.boot") += boot;
    *r.counter("event.commit") += commit;
    r.set_max("fleet.max_device_reboots", reboots);
    return r;
  };
  const MetricsRegistry a = part(3, 100, 7);
  const MetricsRegistry b = part(5, 0, 2);
  const MetricsRegistry c = part(1, 42, 9);

  std::vector<const MetricsRegistry*> order = {&a, &b, &c};
  std::sort(order.begin(), order.end());
  std::string first;
  do {
    MetricsRegistry m;
    for (const MetricsRegistry* p : order) m.merge(*p);
    if (first.empty()) {
      first = metrics_json(m);
      EXPECT_EQ(m.counters().at("event.boot"), 9);
      EXPECT_EQ(m.counters().at("event.commit"), 142);
      EXPECT_EQ(m.gauges().at("fleet.max_device_reboots"), 9);
    } else {
      EXPECT_EQ(metrics_json(m), first) << "merge order changed the serialization";
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(MetricsRegistry, MergeAssociatesOverGroupings) {
  MetricsRegistry a, b, c;
  a.add("x", 1);
  b.add("x", 2);
  c.add("x", 4);
  c.set_max("g", 5);
  a.set_max("g", 3);
  MetricsRegistry ab_c;  // (a+b)+c
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  MetricsRegistry bc;
  bc.merge(b);
  bc.merge(c);
  MetricsRegistry a_bc;  // a+(b+c)
  a_bc.merge(a);
  a_bc.merge(bc);
  EXPECT_EQ(metrics_json(ab_c), metrics_json(a_bc));
}

TEST(MetricsRegistry, CellsAreStableAndSerializationIsSorted) {
  MetricsRegistry r;
  long* cell = r.counter("zeta");
  *cell += 1;
  // Inserting more keys must not move the cached cell (map nodes are
  // stable — the contract hot paths rely on).
  for (const char* k : {"alpha", "mid", "aaa"}) *r.counter(k) += 2;
  *cell += 1;
  EXPECT_EQ(r.counters().at("zeta"), 2);
  const std::string j = metrics_json(r);
  // Lexicographic key order in the output.
  EXPECT_LT(j.find("\"aaa\""), j.find("\"alpha\""));
  EXPECT_LT(j.find("\"alpha\""), j.find("\"mid\""));
  EXPECT_LT(j.find("\"mid\""), j.find("\"zeta\""));
}

// ------------------------------------------------------------- Exporters

std::vector<TraceCapture> sample_captures() {
  TraceCapture tc;
  tc.id = 3;
  tc.label = "device 3 tiny mnist/flex";
  tc.events = {
      {0.000, EK::kBoot, 1, 0},        {0.001, EK::kJobRelease, 0, 0},
      {0.0015, EK::kJobAdmit, 0, 0},   {0.002, EK::kCheckpointBegin, 0, 0},
      {0.003, EK::kCheckpointEnd, 1, 0}, {0.004, EK::kBrownOut, 0, 0},
      {0.010, EK::kRecovery, 0, 0},    {0.020, EK::kJobComplete, 0, 1},
  };
  tc.total = 8;
  return {tc};
}

TEST(Exporters, ChromeTraceIsStructurallySoundJson) {
  std::ostringstream os;
  write_chrome_trace(os, sample_captures());
  const std::string j = os.str();

  // Top-level shape Perfetto expects.
  EXPECT_EQ(j.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(j.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Track naming metadata.
  EXPECT_NE(j.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(j.find("\"device 3 tiny mnist/flex\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"lifecycle\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"spans\""), std::string::npos);
  // Every lifecycle landmark is an instant on tid 0...
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"brown_out\""), std::string::npos);
  // ...and the begin/end + release/complete pairs synthesize durations:
  // checkpoint 0.002s→0.003s (1000 us) and job 0 0.001s→0.020s (19000 us).
  EXPECT_NE(j.find("\"ph\":\"X\",\"pid\":3,\"tid\":1,\"ts\":2000.000,\"dur\":1000.000,"
                   "\"name\":\"checkpoint\""),
            std::string::npos);
  EXPECT_NE(j.find("\"dur\":19000.000,\"name\":\"job 0\",\"args\":{\"in_deadline\":1}"),
            std::string::npos);

  // Balanced delimiters — cheap structural validity without a JSON parser
  // (no string in the output legitimately contains braces).
  long depth = 0, sq = 0;
  for (char ch : j) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    if (ch == '[') ++sq;
    if (ch == ']') --sq;
    ASSERT_GE(depth, 0);
    ASSERT_GE(sq, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(sq, 0);
}

TEST(Exporters, TextTraceIsDeterministicAndVersioned) {
  std::ostringstream a, b;
  write_text_trace(a, sample_captures());
  write_text_trace(b, sample_captures());
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.str().rfind("# ehdnn-trace-text-v1\n", 0), 0u);
  EXPECT_NE(a.str().find("trace 3 label=\"device 3 tiny mnist/flex\" total=8 "
                         "retained=8 dropped=0"),
            std::string::npos);
  EXPECT_NE(a.str().find("0.004000000 brown_out a=0 b=0"), std::string::npos);
}

TEST(Exporters, EmptyCaptureListStillWritesValidDocuments) {
  // A run with no traced devices can still hit the export path (e.g. a
  // --merge whose partials carried no captures); both formats must emit a
  // well-formed, loadable document rather than nothing.
  std::ostringstream cj, tx;
  write_chrome_trace(cj, {});
  write_text_trace(tx, {});
  EXPECT_EQ(cj.str(), "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
  EXPECT_EQ(tx.str(), "# ehdnn-trace-text-v1\n");
}

TEST(Exporters, ZeroEventDeviceGetsAHeaderAndNoRows) {
  // A traced device that never booted (starved before v_on): the capture
  // exists with an empty ring. The track metadata must still come out so
  // the device is visibly "there with zero events", not silently absent.
  TraceCapture tc;
  tc.id = 9;
  tc.label = "device 9 (starved)";
  std::ostringstream cj, tx;
  write_chrome_trace(cj, {tc});
  write_text_trace(tx, {tc});
  EXPECT_NE(cj.str().find("\"device 9 (starved)\""), std::string::npos);
  EXPECT_EQ(cj.str().find("\"ph\":\"i\""), std::string::npos);  // no instants
  EXPECT_EQ(cj.str().find("\"ph\":\"X\""), std::string::npos);  // no spans
  EXPECT_EQ(tx.str(),
            "# ehdnn-trace-text-v1\n"
            "trace 9 label=\"device 9 (starved)\" total=0 retained=0 dropped=0\n");
}

TEST(Exporters, TruncatedRingDegradesOrphanedPairsToInstants) {
  // A wrapped ring whose window starts mid-span: the checkpoint BEGIN and
  // the job RELEASE fell off, only the END / COMPLETE survive. The
  // exporter must keep the instants and synthesize NO duration events —
  // a span with a guessed start would be a lie in the profile view.
  EventTrace t(3);
  t.record(0.001, EK::kCheckpointBegin, 0);
  t.record(0.002, EK::kJobRelease, 0);
  t.record(0.003, EK::kCheckpointEnd, 1);  // ring full; next records drop oldest
  t.record(0.004, EK::kJobComplete, 0, 1);
  t.record(0.005, EK::kCheckpointBegin, 1);  // still open at capture end
  TraceCapture tc;
  tc.id = 0;
  tc.label = "truncated";
  tc.events = t.snapshot();
  tc.dropped = t.dropped();
  tc.total = t.total();
  ASSERT_EQ(tc.events.size(), 3u);
  ASSERT_EQ(tc.dropped, 2);

  std::ostringstream cj, tx;
  write_chrome_trace(cj, {tc});
  write_text_trace(tx, {tc});
  const std::string j = cj.str();
  // The surviving landmarks are all present as instants...
  EXPECT_NE(j.find("\"name\":\"checkpoint_end\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"job_complete\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"checkpoint_begin\""), std::string::npos);
  // ...but no duration event was synthesized from an orphaned half-pair.
  EXPECT_EQ(j.find("\"ph\":\"X\""), std::string::npos);
  // The text dump's header makes the truncation visible.
  EXPECT_NE(tx.str().find("total=5 retained=3 dropped=2"), std::string::npos);
}

TEST(Exporters, LabelsAreJsonEscaped) {
  TraceCapture tc;
  tc.id = 1;
  tc.label = "odd \"label\" with \\ and \x01 control";
  std::ostringstream cj;
  write_chrome_trace(cj, {tc});
  // Quotes and backslashes escaped, control bytes replaced — the output
  // must stay parseable JSON whatever a config file names a group.
  EXPECT_NE(cj.str().find("odd \\\"label\\\" with \\\\ and   control"),
            std::string::npos);
}

TEST(Exporters, EmptyMetricsRegistrySerializesEmptyBlocks) {
  MetricsRegistry reg;
  std::ostringstream os;
  write_metrics_json(os, reg, "  ");
  EXPECT_EQ(os.str(),
            "  \"metrics\": {\n"
            "    \"counters\": {},\n"
            "    \"gauges\": {}\n"
            "  }");
}

// ----------------------------------------------- fleet + sweep integration

sim::FleetConfig obs_fleet() {
  sim::FleetConfig cfg;
  cfg.source = "square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5";
  cfg.offset_spread_s = 0.02;
  sim::FleetGroup g;
  g.name = "tiny";
  g.count = 6;
  g.task = models::Task::kMnist;
  g.agenda.runtime = "flex";
  g.agenda.jobs = 1;
  g.agenda.period_s = 0.05;
  g.capacitance_f = 10e-6;
  cfg.groups.push_back(g);
  return cfg;
}

TEST(FleetObs, TracesAndMetricsAreWorkerCountInvariant) {
  sim::FleetRunOptions serial;
  serial.jobs = 1;
  serial.trace_devices = {4, 0};  // unsorted on purpose
  sim::FleetRunOptions pool = serial;
  pool.jobs = 3;
  const sim::FleetReport a = sim::run_fleet(obs_fleet(), serial);
  const sim::FleetReport b = sim::run_fleet(obs_fleet(), pool);

  // Captures come back sorted by device id regardless of completion order.
  ASSERT_EQ(a.traces.size(), 2u);
  EXPECT_EQ(a.traces[0].id, 0);
  EXPECT_EQ(a.traces[1].id, 4);

  std::ostringstream ja, jb, ca, cb, ta, tb;
  sim::write_fleet_json(ja, a);
  sim::write_fleet_json(jb, b);
  write_chrome_trace(ca, a.traces);
  write_chrome_trace(cb, b.traces);
  write_text_trace(ta, a.traces);
  write_text_trace(tb, b.traces);
  EXPECT_EQ(ja.str(), jb.str()) << "v6 report must be --jobs invariant";
  EXPECT_EQ(ca.str(), cb.str()) << "chrome trace must be --jobs invariant";
  EXPECT_EQ(ta.str(), tb.str()) << "text trace must be --jobs invariant";

  // Fleet-wide lifecycle accounting: every device boots fresh exactly
  // once, every reboot is a brown-out/recovery pair, and with 1 job per
  // device released at t=0 nothing ever parks.
  const auto& c = a.metrics.counters();
  EXPECT_EQ(c.at("event.boot"), c.at("event.recovery") + 6);
  EXPECT_EQ(c.at("event.brown_out"), c.at("event.recovery"));
  EXPECT_EQ(c.at("event.job_admit"), 6);
  EXPECT_EQ(c.at("event.job_complete"), 6);
  EXPECT_GT(c.at("event.commit"), 0);
  EXPECT_GE(a.metrics.gauges().at("fleet.max_device_reboots"), 1);
}

TEST(FleetObs, UntracedFleetStillFeedsMetrics) {
  // No trace_devices: every device still runs a counts-only trace, so the
  // metrics block is populated while r.traces stays empty.
  const sim::FleetReport r = sim::run_fleet(obs_fleet());
  EXPECT_TRUE(r.traces.empty());
  EXPECT_GT(r.metrics.counters().at("event.boot"), 0);
  std::ostringstream os;
  sim::write_fleet_json(os, r);
  EXPECT_NE(os.str().find("\"schema\": \"ehdnn-fleet-v6\""), std::string::npos);
  EXPECT_NE(os.str().find("\"metrics\": {"), std::string::npos);
}

TEST(FleetObs, ProfileUnderWorkerPoolThrowsInsteadOfSilentlyIgnoring) {
  flex::PhaseProfile prof;
  sim::FleetRunOptions ropts;
  ropts.profile = &prof;
  ropts.jobs = 2;
  EXPECT_THROW(sim::run_fleet(obs_fleet(), ropts), Error);
  ropts.jobs = 1;  // the supported combination still works
  const sim::FleetReport r = sim::run_fleet(obs_fleet(), ropts);
  EXPECT_EQ(r.devices.size(), 6u);
}

TEST(FleetObs, TraceSelectionValidatesDeviceIds) {
  sim::FleetRunOptions ropts;
  ropts.trace_devices = {6};  // one past the end of the 6-device fleet
  EXPECT_THROW(sim::run_fleet(obs_fleet(), ropts), Error);
  ropts.trace_devices = {0};
  ropts.trace_capacity = 0;
  EXPECT_THROW(sim::run_fleet(obs_fleet(), ropts), Error);
}

TEST(SweepObs, ScenariosV3CarriesMetricsAndCellTraces) {
  const std::vector<std::string> runtimes = {"flex"};
  const std::vector<models::Task> tasks = {models::Task::kMnist};
  const std::vector<sim::ScenarioSpec> scenarios = {
      sim::parse_scenario_arg("square-10ms=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5"),
      sim::parse_scenario_arg("const-1.2mW=const:w=1.2e-3"),
  };
  sim::SweepOptions serial;
  serial.jobs = 1;
  serial.trace_cells = {1};
  sim::SweepOptions pool = serial;
  pool.jobs = 2;
  const sim::ScenarioMatrix a = sim::run_matrix(runtimes, tasks, scenarios, serial);
  const sim::ScenarioMatrix b = sim::run_matrix(runtimes, tasks, scenarios, pool);

  ASSERT_EQ(a.traces.size(), 1u);
  EXPECT_EQ(a.traces[0].id, 1);

  std::ostringstream ja, jb, ca, cb;
  sim::write_scenarios_json(ja, a);
  sim::write_scenarios_json(jb, b);
  write_chrome_trace(ca, a.traces);
  write_chrome_trace(cb, b.traces);
  EXPECT_EQ(ja.str(), jb.str()) << "v3 matrix must be --jobs invariant";
  EXPECT_EQ(ca.str(), cb.str()) << "cell trace must be --jobs invariant";

  const std::string j = ja.str();
  for (const char* needle :
       {"\"schema\": \"ehdnn-scenarios-v3\"", "\"metrics\": {", "\"counters\":",
        "\"gauges\":", "\"event.boot\":", "\"sweep.max_cell_reboots\":"}) {
    EXPECT_NE(j.find(needle), std::string::npos) << "missing " << needle;
  }
  EXPECT_EQ(j.find("ehdnn-scenarios-v1"), std::string::npos);
  EXPECT_EQ(j.find("ehdnn-scenarios-v2"), std::string::npos);

  // Sweep profile requests under a pool must throw, mirroring the fleet.
  flex::PhaseProfile prof;
  sim::SweepOptions bad;
  bad.profile = &prof;
  bad.jobs = 2;
  EXPECT_THROW(sim::run_matrix(runtimes, tasks, scenarios, bad), Error);
}

}  // namespace
}  // namespace ehdnn::obs
