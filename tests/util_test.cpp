#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/check.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/table.h"

namespace ehdnn {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_NO_THROW(check(true, "fine"));
  try {
    check(false, "boom");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Check, FailAlwaysThrows) { EXPECT_THROW(fail("nope"), Error); }

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = r.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng r(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, GaussMoments) {
  Rng r(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = r.gauss();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Rng, BelowBounds) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, RangeInclusive) {
  Rng r(19);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Math, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1000));
}

TEST(Math, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(128), 7);
  EXPECT_EQ(ilog2(255), 7);  // floor
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(3520), 4096u);
}

TEST(Math, DivCeil) {
  EXPECT_EQ(div_ceil(10, 5), 2u);
  EXPECT_EQ(div_ceil(11, 5), 3u);
  EXPECT_EQ(div_ceil(1, 5), 1u);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("| x "), std::string::npos);
}

TEST(Table, NumAndPct) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.9375, 2), "93.75%");
}

}  // namespace
}  // namespace ehdnn
