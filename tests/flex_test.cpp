// The correctness property at the heart of intermittent computing
// (paper SSIII-C): for ANY power-failure schedule, an intermittent
// runtime's final output must be bit-identical to its own continuous-power
// output. These tests sweep runtimes x capacitor sizes x harvest profiles
// (each combination produces a different failure schedule) and verify the
// property, plus the FLEX-specific claims: on-demand checkpoints are rare
// and cheap, progress setbacks are smaller than TAILS', and unwarned
// failures (voltage margin too thin) still recover correctly through the
// two-slot checkpoint fallback.

#include <gtest/gtest.h>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "quant/quantize.h"
#include "util/rng.h"

namespace ehdnn::flex {
namespace {

using fx::q15_t;

nn::Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-0.9, 0.9));
  }
  return t;
}

// Small models that still exercise every kernel kind.
quant::QuantModel mixed_model(Rng& rng) {
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::BcmDense>(2 * 4 * 4, 16, 16)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(16, 4)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 10, 10}, rng));
  return quant::quantize(m, calib, {1, 10, 10});
}

quant::QuantModel dense_model(Rng& rng) {
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::Dense>(2 * 4 * 4, 16)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(16, 4)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 10, 10}, rng));
  return quant::quantize(m, calib, {1, 10, 10});
}

std::vector<q15_t> quant_input(const quant::QuantModel& qm, Rng& rng) {
  std::vector<std::size_t> shape = qm.layers.front().in_shape;
  return quant::quantize_input(qm, random_tensor(shape, rng));
}

RunStats run_continuous(InferenceRuntime& rt, const quant::QuantModel& qm,
                        std::span<const q15_t> input, const RunOptions& opts = {}) {
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  return rt.infer(dev, cm, input, opts);
}

RunStats run_intermittent(InferenceRuntime& rt, const quant::QuantModel& qm,
                          std::span<const q15_t> input, double cap_f, double harvest_w,
                          RunOptions opts = {}) {
  dev::Device dev;
  power::ConstantSource src(harvest_w);
  power::CapacitorConfig cfg;
  cfg.capacitance_f = cap_f;
  power::CapacitorSupply supply(src, cfg);
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  return rt.infer(dev, cm, input, opts);
}

struct Scenario {
  const char* runtime;
  bool bcm_model;     // mixed (BCM) vs dense twin
  double cap_f;
  double harvest_w;
};

std::unique_ptr<InferenceRuntime> make_runtime(const std::string& name) {
  if (name == "sonic") return make_sonic_runtime();
  if (name == "tails") return make_tails_runtime();
  if (name == "flex") return make_flex_runtime();
  return make_ace_runtime();
}

class IntermittentProperty : public ::testing::TestWithParam<Scenario> {};

TEST_P(IntermittentProperty, OutputBitExactUnderFailures) {
  const Scenario sc = GetParam();
  Rng rng(1234);
  const auto qm = sc.bcm_model ? mixed_model(rng) : dense_model(rng);
  const auto input = quant_input(qm, rng);
  auto rt = make_runtime(sc.runtime);

  const RunStats cont = run_continuous(*rt, qm, input);
  ASSERT_TRUE(cont.completed());
  ASSERT_EQ(cont.reboots, 0);

  const RunStats inter = run_intermittent(*rt, qm, input, sc.cap_f, sc.harvest_w);
  ASSERT_TRUE(inter.completed()) << sc.runtime;
  EXPECT_GT(inter.reboots, 0) << "scenario did not produce any power failure";
  EXPECT_EQ(inter.output, cont.output) << sc.runtime << " diverged under failures";
  EXPECT_GT(inter.off_seconds, 0.0);
}

// Capacitors are deliberately tiny (0.33-1 uF) so the miniature test
// models span many power cycles; the paper-scale 100 uF runs live in the
// benches, where the models are the real Table II networks.
INSTANTIATE_TEST_SUITE_P(
    Schedules, IntermittentProperty,
    ::testing::Values(
        Scenario{"sonic", false, 1.0e-6, 1.0e-3},  Scenario{"sonic", false, 0.68e-6, 2.0e-3},
        Scenario{"sonic", false, 0.33e-6, 0.5e-3}, Scenario{"tails", false, 1.0e-6, 1.0e-3},
        Scenario{"tails", false, 0.68e-6, 2.0e-3}, Scenario{"tails", false, 0.33e-6, 0.5e-3},
        Scenario{"tails", true, 1.0e-6, 1.0e-3},   Scenario{"tails", true, 0.33e-6, 0.5e-3},
        Scenario{"flex", true, 1.0e-6, 1.0e-3},    Scenario{"flex", true, 0.68e-6, 2.0e-3},
        Scenario{"flex", true, 0.33e-6, 0.5e-3},   Scenario{"flex", false, 1.0e-6, 1.0e-3},
        Scenario{"flex", false, 0.33e-6, 0.5e-3}));

TEST(Flex, ContinuousMatchesPlainAce) {
  // Under continuous power FLEX never takes a warning checkpoint, and its
  // output must equal plain ACE's bit for bit.
  Rng rng(5);
  const auto qm = mixed_model(rng);
  const auto input = quant_input(qm, rng);
  auto ace_rt = make_ace_runtime();
  auto flex_rt = make_flex_runtime();
  const auto a = run_continuous(*ace_rt, qm, input);
  const auto f = run_continuous(*flex_rt, qm, input);
  EXPECT_EQ(a.output, f.output);
  // FLEX's continuous overhead is the per-layer header checkpoints only.
  EXPECT_LT(f.on_seconds, a.on_seconds * 1.05);
}

TEST(Flex, UnwarnedFailureStillCorrect) {
  // v_warn glued to v_off: the monitor fires too late (or never), failures
  // arrive unwarned, and recovery must fall back to the last mandatory
  // layer-transition checkpoint — correctness may not depend on warnings.
  Rng rng(6);
  const auto qm = mixed_model(rng);
  const auto input = quant_input(qm, rng);
  auto rt = make_flex_runtime();
  RunOptions opts;
  opts.flex_v_warn = 2.2001;  // essentially no margin
  const auto cont = run_continuous(*rt, qm, input, opts);
  const auto inter = run_intermittent(*rt, qm, input, 0.68e-6, 1.0e-3, opts);
  ASSERT_TRUE(inter.completed());
  EXPECT_GT(inter.reboots, 0);
  EXPECT_EQ(inter.output, cont.output);
}

TEST(Flex, EagerWarningStillCorrect) {
  // v_warn above v_on: the monitor screams immediately, a checkpoint fires
  // at the first boundary of every power cycle, and resume paths through
  // restored BCM intermediates are exercised heavily.
  Rng rng(7);
  const auto qm = mixed_model(rng);
  const auto input = quant_input(qm, rng);
  auto rt = make_flex_runtime();
  RunOptions opts;
  opts.flex_v_warn = 3.5;
  const auto cont = run_continuous(*rt, qm, input, opts);
  const auto inter = run_intermittent(*rt, qm, input, 0.68e-6, 1.0e-3, opts);
  ASSERT_TRUE(inter.completed());
  EXPECT_GT(inter.checkpoints, 0);
  EXPECT_EQ(inter.output, cont.output);
}

TEST(Flex, CheckpointCostWithinBudget) {
  Rng rng(8);
  const auto qm = mixed_model(rng);
  const auto input = quant_input(qm, rng);

  dev::Device dev;
  power::ConstantSource src(1.0e-3);
  power::CapacitorConfig cfg;
  cfg.capacitance_f = 1.0e-6;
  power::CapacitorSupply supply(src, cfg);
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  const double budget = worst_checkpoint_energy(cm, dev.cost());

  auto rt = make_flex_runtime();
  const auto st = rt->infer(dev, cm, input);
  ASSERT_TRUE(st.completed());
  ASSERT_GT(st.checkpoints, 0);
  EXPECT_LE(st.checkpoint_energy_j / static_cast<double>(st.checkpoints), budget * 1.05);
  // And the paper's absolute bound: each checkpoint/restore <= 0.033 mJ.
  EXPECT_LE(st.checkpoint_energy_j / static_cast<double>(st.checkpoints), 33e-6);
}

TEST(Flex, OnDemandBeatsTailsOnSteadyCommits) {
  // TAILS commits progress continuously; FLEX only at layer transitions
  // and warnings. Same model, same schedule.
  Rng rng(9);
  const auto qm = mixed_model(rng);
  const auto input = quant_input(qm, rng);
  auto tails = make_tails_runtime();
  auto flex = make_flex_runtime();
  const auto t = run_intermittent(*tails, qm, input, 1.0e-6, 1.0e-3);
  const auto f = run_intermittent(*flex, qm, input, 1.0e-6, 1.0e-3);
  ASSERT_TRUE(t.completed());
  ASSERT_TRUE(f.completed());
  EXPECT_GT(t.progress_commits, f.checkpoints + f.reboots);
}

TEST(Flex, FasterThanSonicAndTailsOnSameModel) {
  // Checkpoint-strategy ordering isolated on the SAME dense model: SONIC
  // (element-wise CPU, per-tile commits) slowest; TAILS (LEA + steady
  // commits) in between; FLEX (LEA + on-demand only) fastest. At paper
  // scale BCM compression widens FLEX's lead further (bench/fig7); at
  // this miniature scale the FFT's fixed overhead would mask it, which is
  // exactly the small-block regime of Fig. 8.
  Rng rng(10);
  const auto qdense = dense_model(rng);
  Rng irng(77);
  const auto input = quant_input(qdense, irng);

  auto sonic = make_sonic_runtime();
  auto tails = make_tails_runtime();
  auto flex = make_flex_runtime();
  const auto s = run_intermittent(*sonic, qdense, input, 1.0e-6, 2.0e-3);
  const auto t = run_intermittent(*tails, qdense, input, 1.0e-6, 2.0e-3);
  const auto f = run_intermittent(*flex, qdense, input, 1.0e-6, 2.0e-3);
  ASSERT_TRUE(s.completed() && t.completed() && f.completed());
  // At this miniature scale FLEX and TAILS are within noise of each other
  // (TAILS' steady commits are only a handful of words); SONIC's
  // element-wise CPU execution is decisively slower. The paper-scale
  // separation is measured in bench/fig7b.
  EXPECT_LT(f.on_seconds, t.on_seconds * 1.02);
  EXPECT_LT(t.on_seconds, s.on_seconds);
  EXPECT_LT(f.energy_j, s.energy_j);
}

TEST(Base, CannotCompleteUnderSmallCapacitor) {
  // Fig. 7b's "X": no intermittence support means no completion when the
  // inference needs more than one burst.
  Rng rng(11);
  const auto qm = dense_model(rng);
  const auto input = quant_input(qm, rng);
  auto rt = make_ace_runtime();
  RunOptions opts;
  opts.max_reboots = 3000;
  const auto st = run_intermittent(*rt, qm, input, 1.0e-6, 0.5e-3, opts);
  EXPECT_FALSE(st.completed());
  EXPECT_GT(st.reboots, 0);
}

TEST(Base, CompletesWhenBurstIsBigEnough) {
  Rng rng(12);
  const auto qm = dense_model(rng);
  const auto input = quant_input(qm, rng);
  auto rt = make_ace_runtime();
  // A large capacitor funds the whole inference in one burst.
  const auto st = run_intermittent(*rt, qm, input, 1.0e-3, 1.0e-3);
  EXPECT_TRUE(st.completed());
}

TEST(Sonic, ProgressCommitsAreFrequent) {
  Rng rng(13);
  const auto qm = dense_model(rng);
  const auto input = quant_input(qm, rng);
  auto rt = make_sonic_runtime();
  const auto st = run_continuous(*rt, qm, input);
  ASSERT_TRUE(st.completed());
  // Loop continuation: at least one commit per output element.
  EXPECT_GT(st.progress_commits, static_cast<long>(qm.layers.front().out_size()));
}

TEST(Sonic, RejectsBcmModel) {
  Rng rng(14);
  const auto qm = mixed_model(rng);
  const auto input = quant_input(qm, rng);
  auto rt = make_sonic_runtime();
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  EXPECT_THROW(rt->infer(dev, cm, input), Error);
}

TEST(Runtimes, StatsAreCoherent) {
  Rng rng(15);
  const auto qm = mixed_model(rng);
  const auto input = quant_input(qm, rng);
  auto rt = make_flex_runtime();
  const auto st = run_intermittent(*rt, qm, input, 2.2e-6, 1.0e-3);
  ASSERT_TRUE(st.completed());
  EXPECT_GT(st.energy_j, 0.0);
  EXPECT_GT(st.on_seconds, 0.0);
  EXPECT_GE(st.units_executed, st.units_total);  // re-execution only adds
  double rail_sum = 0.0;
  for (double e : st.energy_by_rail) rail_sum += e;
  EXPECT_NEAR(rail_sum, st.energy_j, 1e-15);
}

TEST(Runtimes, RepeatedInferencesOnOneDevice) {
  // FRAM persistence across inferences must not leak state between runs.
  Rng rng(16);
  const auto qm = mixed_model(rng);
  auto rt = make_flex_runtime();
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  const auto in1 = quant_input(qm, rng);
  const auto in2 = quant_input(qm, rng);
  const auto a1 = rt->infer(dev, cm, in1);
  const auto b = rt->infer(dev, cm, in2);
  const auto a2 = rt->infer(dev, cm, in1);
  EXPECT_EQ(a1.output, a2.output);
  EXPECT_NE(a1.output, b.output);  // different inputs -> different logits
}

}  // namespace
}  // namespace ehdnn::flex
