// Equivalence suite for the analytic recharge/idle fast path.
//
// CapacitorConfig::analytic_recharge selects between the 50 us stepped
// reference integrator and the closed-form segment fast-forward
// (power/capacitor.h). The contract is BIT-EXACT equality: every test
// here drives a twin pair of supplies — one analytic, one stepped —
// through identical operation sequences and compares the full observable
// state with exact (==) floating-point equality after every operation.
// Sources cover the piecewise-constant contract's corners: constant
// income, square waves whose phase flips land exactly on integration-step
// boundaries, offset views (including the offset = 25 * period exact
// alignment that once exposed a floor-vs-fmod residue bug in
// SquareSource), ZOH traces, the v_max regulator clamp engaging
// mid-segment, and the max_off_s starvation guard — plus a randomized
// stepped-vs-analytic differential over mixed op sequences.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "power/capacitor.h"
#include "power/harvest.h"
#include "util/rng.h"

namespace ehdnn::power {
namespace {

// A twin pair over one source: `fast` takes the analytic path, `ref` the
// stepped loop. All config fields other than the path selector match.
struct Twin {
  CapacitorSupply fast;
  CapacitorSupply ref;

  Twin(const HarvestSource& src, CapacitorConfig cfg)
      : fast(src, with_analytic(cfg, true)), ref(src, with_analytic(cfg, false)) {}

  static CapacitorConfig with_analytic(CapacitorConfig cfg, bool analytic) {
    cfg.analytic_recharge = analytic;
    return cfg;
  }

  // Exact-equality comparison of everything the supply exposes. voltage()
  // and headroom() together pin the stored energy bit for bit.
  void expect_same(const char* where) const {
    EXPECT_EQ(fast.voltage(), ref.voltage()) << where;
    EXPECT_EQ(fast.headroom(), ref.headroom()) << where;
    EXPECT_EQ(fast.now(), ref.now()) << where;
    EXPECT_EQ(fast.on(), ref.on()) << where;
    EXPECT_EQ(fast.starved(), ref.starved()) << where;
    EXPECT_EQ(fast.failures(), ref.failures()) << where;
    EXPECT_EQ(fast.on_time(), ref.on_time()) << where;
    EXPECT_EQ(fast.off_time(), ref.off_time()) << where;
    EXPECT_EQ(fast.idle_time(), ref.idle_time()) << where;
  }

  void consume(double joules, double dt) {
    const bool a = fast.consume(joules, dt);
    const bool b = ref.consume(joules, dt);
    EXPECT_EQ(a, b);
  }

  void drain() {
    // Zero-dt draws empty the store without advancing time, so recharges
    // start from an exactly known clock (boundary-alignment tests depend
    // on this).
    for (;;) {
      const bool a = fast.consume(1e-5, 0.0);
      const bool b = ref.consume(1e-5, 0.0);
      ASSERT_EQ(a, b);
      if (!a) break;
    }
    EXPECT_FALSE(fast.on());
    EXPECT_FALSE(ref.on());
  }

  void recharge() {
    const double a = fast.recharge_to_on();
    const double b = ref.recharge_to_on();
    EXPECT_EQ(a, b) << "off-time diverged";
  }

  void idle_until(double t_s) {
    fast.idle_until(t_s);
    ref.idle_until(t_s);
  }
};

TEST(RechargeEquivalence, ConstantSource) {
  ConstantSource src(1.7e-3);
  Twin t(src, {});
  t.drain();
  t.recharge();
  t.expect_same("const recharge");
  EXPECT_TRUE(t.fast.on());
}

TEST(RechargeEquivalence, SquareSourceSpansSegments) {
  // Period 2 ms at the default 2 mW-scale income: one recharge crosses
  // many hi/lo segments, so the fast-forward restarts at every boundary.
  SquareSource src(2.5e-3, 0.1e-3, /*period=*/2e-3, /*duty=*/0.5);
  CapacitorConfig cfg;
  cfg.capacitance_f = 10e-6;
  Twin t(src, cfg);
  t.drain();
  t.recharge();
  t.expect_same("square recharge");
  EXPECT_TRUE(t.fast.on());
}

TEST(RechargeEquivalence, SegmentBoundaryOnStepGrid) {
  // Phase flips at multiples of 1 ms = exactly 20 reference steps: the
  // segment end lands precisely on the stepped loop's grid, the corner
  // where an off-by-one in the fast-forward's stop count would first
  // show. Starting from now_ = 0 (zero-dt drain) keeps the alignment.
  SquareSource src(3e-3, 0.2e-3, /*period=*/2e-3, /*duty=*/0.5);
  CapacitorConfig cfg;
  cfg.capacitance_f = 4.7e-6;
  Twin t(src, cfg);
  ASSERT_EQ(t.fast.now(), 0.0);
  t.drain();
  ASSERT_EQ(t.fast.now(), 0.0);
  t.recharge();
  t.expect_same("grid-aligned square recharge");
}

TEST(RechargeEquivalence, OffsetViewTwentyFivePeriods) {
  // Regression: a time-offset view at offset = 25 * period, so every
  // power_at sees inner time exactly on a phase boundary multiple. The
  // original floor-based SquareSource phase computation produced an
  // inconsistent boundary classification here (fixed by the fmod-residue
  // delta form); the analytic path must agree with the stepped loop
  // through the offset view's rounding slop.
  const double period = 2e-3;
  SquareSource inner(2.8e-3, 0.15e-3, period, 0.5);
  TimeOffsetSource src(inner, 25.0 * period);
  CapacitorConfig cfg;
  cfg.capacitance_f = 10e-6;
  Twin t(src, cfg);
  t.drain();
  t.recharge();
  t.expect_same("offset 25*period recharge");
  // Park across several more boundaries for the idle path too.
  t.idle_until(t.fast.now() + 17e-3);
  t.expect_same("offset 25*period idle");
}

TEST(RechargeEquivalence, TraceSourceZoh) {
  // ZOH trace: arbitrary per-sample powers, segment ends on the sample
  // grid (1 ms), including a zero-income sample mid-recharge.
  TraceSource src({2.0e-3, 0.4e-3, 0.0, 3.1e-3, 1.2e-3}, /*step=*/1e-3);
  CapacitorConfig cfg;
  cfg.capacitance_f = 10e-6;
  Twin t(src, cfg);
  t.drain();
  t.recharge();
  t.expect_same("trace recharge");
  t.idle_until(t.fast.now() + 7.3e-3);
  t.expect_same("trace idle");
}

TEST(RechargeEquivalence, VmaxClampMidSegment) {
  // A long park under strong constant income: the store hits the v_max
  // regulator clamp partway through a segment, after which income stops
  // landing. The analytic path must hand the clamping step to the
  // literal integrator and then fast-forward the full-store remainder.
  ConstantSource src(5e-3);
  CapacitorConfig cfg;
  cfg.capacitance_f = 2.2e-6;
  Twin t(src, cfg);
  t.consume(1e-5, 1e-4);  // nudge below full so income lands at first
  t.idle_until(0.5);
  t.expect_same("v_max clamp idle");
  EXPECT_EQ(t.fast.voltage(), t.fast.config().v_max);
}

TEST(RechargeEquivalence, StarvationGuard) {
  // Income too weak to reach v_on within max_off_s: both paths must give
  // up at the same instant with starved() set and identical partial
  // charge.
  SquareSource src(0.0, 0.02e-3, /*period=*/1.0, /*duty=*/0.5);  // trickle
  CapacitorConfig cfg;
  cfg.capacitance_f = 10e-6;
  cfg.max_off_s = 0.05;
  Twin t(src, cfg);
  t.drain();
  t.recharge();
  t.expect_same("starved recharge");
  EXPECT_TRUE(t.fast.starved());
  EXPECT_FALSE(t.fast.on());
}

TEST(RechargeEquivalence, RandomizedDifferential) {
  // Mixed op sequences over randomized sources: draws of random size and
  // duration, recharges after brown-outs, random-length idle parks. The
  // state must stay bit-identical after every operation.
  Rng rng(0xd1ff);
  for (int trial = 0; trial < 40; ++trial) {
    std::unique_ptr<HarvestSource> owned;
    std::unique_ptr<HarvestSource> inner;
    switch (trial % 4) {
      case 0:
        owned = std::make_unique<ConstantSource>(rng.uniform(0.5e-3, 4e-3));
        break;
      case 1:
        owned = std::make_unique<SquareSource>(rng.uniform(1e-3, 5e-3),
                                               rng.uniform(0.0, 0.5e-3),
                                               rng.uniform(0.5e-3, 20e-3),
                                               rng.uniform(0.2, 0.8));
        break;
      case 2: {
        std::vector<double> samples;
        for (int i = 0; i < 8; ++i) samples.push_back(rng.uniform(0.0, 4e-3));
        samples[0] = 2e-3;  // guarantee some income
        owned = std::make_unique<TraceSource>(samples, rng.uniform(0.5e-3, 3e-3));
        break;
      }
      default: {
        const double period = rng.uniform(1e-3, 10e-3);
        inner = std::make_unique<SquareSource>(rng.uniform(1.5e-3, 5e-3),
                                               rng.uniform(0.0, 0.3e-3), period, 0.5);
        // Bias toward exact-multiple offsets — the alignment corner.
        const double mult = rng.chance(0.5) ? 25.0 : rng.uniform(0.0, 40.0);
        owned = std::make_unique<TimeOffsetSource>(*inner, mult * period);
        break;
      }
    }
    CapacitorConfig cfg;
    cfg.capacitance_f = rng.uniform(2e-6, 10e-6);
    cfg.max_off_s = 2.0;
    Twin t(*owned, cfg);
    for (int op = 0; op < 60; ++op) {
      const double pick = rng.uniform();
      if (!t.fast.on()) {
        t.recharge();
      } else if (pick < 0.6) {
        t.consume(rng.uniform(1e-7, 4e-5), rng.uniform(0.0, 2e-4));
      } else if (pick < 0.8) {
        t.idle_until(t.fast.now() + rng.uniform(0.0, 30e-3));
      } else {
        t.drain();
      }
      if (op % 10 == 9) t.expect_same("randomized differential");
    }
    t.expect_same("randomized differential end");
  }
}

}  // namespace
}  // namespace ehdnn::power
