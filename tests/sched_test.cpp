// The energy-aware scheduling subsystem (src/sched): harvest forecasting,
// per-boot adaptive policy selection, duty-cycled job queues, and the
// heterogeneous fleet config they plug into.

#include <gtest/gtest.h>

#include <sstream>

#include "core/ace/compiled_model.h"
#include "core/flex/executor.h"
#include "core/flex/runtime.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "power/factory.h"
#include "power/failure_schedule.h"
#include "power/monitor.h"
#include "quant/quantize.h"
#include "sched/adaptive.h"
#include "sched/agenda.h"
#include "sched/forecast.h"
#include "sched_test_util.h"
#include "sim/fleet.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace ehdnn::sched {
namespace {

using fx::q15_t;
using testutil::continuous_oracle;
using testutil::income_samples;
using testutil::random_tensor;
using testutil::record_n;
using testutil::record_samples;
using testutil::tiny_compressed;
using testutil::tiny_dense;

// ---------------------------------------------------------------- forecast

TEST(Forecast, EmaConvergesTowardSamples) {
  auto fc = make_ema_forecaster(1e-3, 0.5);
  EXPECT_DOUBLE_EQ(fc->forecast_w(), 1e-3);  // prior before any sample
  record_n(*fc, 5e-3, 20);
  EXPECT_NEAR(fc->forecast_w(), 5e-3, 1e-6);
  EXPECT_EQ(fc->samples(), 20);
  fc->reset();
  EXPECT_DOUBLE_EQ(fc->forecast_w(), 1e-3);
  EXPECT_EQ(fc->samples(), 0);
}

TEST(Forecast, WindowIsMeanOfLastN) {
  auto fc = make_window_forecaster(1e-3, 3);
  EXPECT_DOUBLE_EQ(fc->forecast_w(), 1e-3);
  fc->record(1.0);
  fc->record(2.0);
  fc->record(3.0);
  EXPECT_DOUBLE_EQ(fc->forecast_w(), 2.0);
  fc->record(7.0);  // evicts the 1.0
  EXPECT_DOUBLE_EQ(fc->forecast_w(), 4.0);
}

TEST(Forecast, ConstIgnoresSamples) {
  auto fc = make_const_forecaster(2e-3);
  fc->record(99.0);
  EXPECT_DOUBLE_EQ(fc->forecast_w(), 2e-3);
}

TEST(Forecast, FactoryParsesSpecs) {
  EXPECT_EQ(make_forecaster("ema")->name(), "ema");
  EXPECT_EQ(make_forecaster("ema:prior=2e-3,alpha=0.25")->name(), "ema");
  EXPECT_EQ(make_forecaster("window:n=4")->name(), "window");
  EXPECT_EQ(make_forecaster("const:w=1e-3")->name(), "const");
  EXPECT_EQ(make_forecaster("periodic")->name(), "periodic");
  EXPECT_EQ(make_forecaster("periodic:prior=2e-3,alpha=0.7,bins=8,conf=0.5")->name(),
            "periodic");
  EXPECT_DOUBLE_EQ(make_forecaster("const:w=7e-3")->forecast_w(), 7e-3);
  EXPECT_THROW(make_forecaster("oracle"), Error);
  EXPECT_THROW(make_forecaster("ema:alpha=nope"), Error);
  EXPECT_THROW(make_forecaster("ema:typo=1"), Error);
  EXPECT_THROW(make_forecaster("window:n=0"), Error);
  EXPECT_THROW(make_forecaster("periodic:bins=1"), Error);
  EXPECT_THROW(make_forecaster("periodic:conf=2"), Error);
  EXPECT_FALSE(forecaster_kinds().empty());
}

TEST(Forecast, PeriodicFallsBackToEmaUntilLocked) {
  // A constant stream never confirms a period: the periodic forecaster
  // must behave exactly like the EMA it wraps.
  auto fc = make_periodic_forecaster(1e-3, 0.5);
  auto ema = make_ema_forecaster(1e-3, 0.5);
  EXPECT_DOUBLE_EQ(fc->forecast_w(), 1e-3);
  record_n(*fc, 4e-3, 10);
  record_n(*ema, 4e-3, 10);
  EXPECT_DOUBLE_EQ(fc->forecast_w(), ema->forecast_w());
  EXPECT_DOUBLE_EQ(fc->period_s(), 0.0);
  fc->reset();
  EXPECT_DOUBLE_EQ(fc->forecast_w(), 1e-3);
  EXPECT_EQ(fc->samples(), 0);
}

TEST(Forecast, PeriodicLocksSquareWaveAndReadsPhase) {
  // A square income sequence (hi/lo, 1 s period, timestamped samples):
  // the forecaster must confirm a period near 1 s and answer
  // forecast_at_w by PHASE — including instants it never sampled.
  const power::SquareSource src(5e-3, 0.2e-3, /*period_s=*/1.0, /*duty=*/0.5);
  auto fc = make_periodic_forecaster(1e-3, 0.5);
  record_samples(*fc, income_samples(src, 0.05, 120), 0.05);  // 6 s of history
  ASSERT_GT(fc->period_s(), 0.0);
  EXPECT_NEAR(fc->period_s(), 1.0, 0.15);
  // Mid-hi and mid-lo phases far in the future.
  EXPECT_GT(fc->forecast_at_w(100.25), 2e-3);
  EXPECT_LT(fc->forecast_at_w(100.75), 2e-3);
}

TEST(Forecast, AdaptiveSpecParses) {
  const AdaptiveSpec def = parse_adaptive_spec("adaptive");
  EXPECT_EQ(def.forecaster, "ema");
  EXPECT_EQ(def.sel, TierSelect::kIncome);
  EXPECT_EQ(def.admit, Admission::kAll);
  const AdaptiveSpec s =
      parse_adaptive_spec("adaptive:fc=window,n=4,prior=2e-3,rich=5e-3,demote=3");
  EXPECT_EQ(s.forecaster, "window:prior=2e-3,n=4");
  EXPECT_DOUBLE_EQ(s.rich_w, 5e-3);
  EXPECT_EQ(s.demote_boots, 3);
  EXPECT_THROW(parse_adaptive_spec("adaptive:bogus=1"), Error);
  EXPECT_THROW(parse_adaptive_spec("adaptive:demote=0"), Error);
  EXPECT_THROW(parse_adaptive_spec("adaptive:demote=1e30"), Error);
  EXPECT_THROW(parse_adaptive_spec("adaptive:demote=2.9"), Error);
  EXPECT_THROW(parse_adaptive_spec("adaptive:fc=window,n=1e300"), Error);
  EXPECT_THROW(parse_adaptive_spec("sched"), Error);
}

TEST(Forecast, AdaptiveSpecParsesSchedulingV2Keys) {
  const AdaptiveSpec s = parse_adaptive_spec(
      "adaptive:sel=deadline,admit=budget,slack=0.05,probe=2,fc=periodic,bins=8,conf=0.5");
  EXPECT_EQ(s.sel, TierSelect::kDeadline);
  EXPECT_EQ(s.admit, Admission::kBudget);
  EXPECT_DOUBLE_EQ(s.admit_slack_s, 0.05);
  EXPECT_EQ(s.probe_skips, 2);
  EXPECT_EQ(s.forecaster, "periodic:bins=8,conf=0.5");
  // Income mode stays the default and the ladder knobs coexist with v2's.
  const AdaptiveSpec mixed = parse_adaptive_spec("adaptive:sel=income,admit=budget,rich=4e-3");
  EXPECT_EQ(mixed.sel, TierSelect::kIncome);
  EXPECT_EQ(mixed.admit, Admission::kBudget);
  EXPECT_THROW(parse_adaptive_spec("adaptive:sel=psychic"), Error);
  EXPECT_THROW(parse_adaptive_spec("adaptive:admit=maybe"), Error);
  EXPECT_THROW(parse_adaptive_spec("adaptive:slack=-1"), Error);
  EXPECT_THROW(parse_adaptive_spec("adaptive:probe=0"), Error);
  EXPECT_THROW(parse_adaptive_spec("adaptive:probe=2.5"), Error);
}

// ------------------------------------------------------- adaptive policy

TEST(Adaptive, LeanPriorPicksFlexUnderContinuousPower) {
  Rng rng(42);
  const auto qm = tiny_compressed(rng);
  const auto input =
      quant::quantize_input(qm, random_tensor(qm.layers.front().in_shape, rng));
  const auto oracle = continuous_oracle(qm, input);

  // Default spec: prior 1.2 mW < rich 3 mW -> the flex tier.
  auto policy = make_adaptive_policy();
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  flex::IntermittentExecutor ex(*policy);
  const flex::RunStats st = ex.run(dev, cm, input);

  EXPECT_TRUE(st.completed());
  EXPECT_EQ(st.output, oracle);
  const auto* ap = as_adaptive(policy.get());
  ASSERT_NE(ap, nullptr);
  EXPECT_EQ(ap->current_runtime(), "flex");
  EXPECT_EQ(ap->tier_switches(), 0);
}

TEST(Adaptive, RichForecastPromotesToAce) {
  Rng rng(43);
  const auto qm = tiny_compressed(rng);
  const auto input =
      quant::quantize_input(qm, random_tensor(qm.layers.front().in_shape, rng));

  auto policy = make_adaptive_policy(parse_adaptive_spec("adaptive:fc=const,w=9,rich=5e-3"));
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  flex::IntermittentExecutor ex(*policy);
  const flex::RunStats st = ex.run(dev, cm, input);

  EXPECT_TRUE(st.completed());
  EXPECT_EQ(as_adaptive(policy.get())->current_runtime(), "ace");
  // ACE has no checkpoint machinery: the run must not have paid for any.
  EXPECT_EQ(st.checkpoints, 0);
}

TEST(Adaptive, TinyBurstForcesSonicOnTheDenseTwin) {
  // The tiny_* pair has a FLEX checkpoint CHEAPER than SONIC's largest
  // minimal commit, so its forced-sonic band is empty (any burst too
  // small for FLEX pins straight to tile). A large-k BCM layer makes the
  // checkpoint payload big while SONIC's dense grain stays a fixed
  // 16-MAC tile — opening the band this test targets.
  Rng rng(44);
  auto build = [&](bool bcm) {
    nn::Model m;
    m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
    m.add<nn::ReLU>();
    m.add<nn::MaxPool2D>();
    m.add<nn::Flatten>();
    if (bcm) {
      m.add<nn::BcmDense>(2 * 8 * 8, 128, 128)->init(rng);
    } else {
      m.add<nn::Dense>(2 * 8 * 8, 128)->init(rng);
    }
    m.add<nn::ReLU>();
    m.add<nn::Dense>(128, 4)->init(rng);
    std::vector<nn::Tensor> calib;
    for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 18, 18}, rng));
    return quant::quantize(m, calib, {1, 18, 18});
  };
  const auto qm_c = build(true);
  const auto qm_d = build(false);
  const auto input =
      quant::quantize_input(qm_c, random_tensor(qm_c.layers.front().in_shape, rng));
  const auto oracle_dense = continuous_oracle(qm_d, input);

  auto policy = make_adaptive_policy();
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm_c = ace::compile(qm_c, dev);
  const auto cm_d = ace::compile(qm_d, dev, /*co_resident=*/true);
  DeploymentImage img;
  img.compressed = &cm_c;
  img.dense = &cm_d;
  // Cannot fund a single FLEX checkpoint, but still covers SONIC's
  // largest minimal commit (with the default margin) — the band between
  // the forced-tile and forced-sonic thresholds.
  const double su = flex::sonic_worst_commit_energy(cm_d, dev.cost());
  const double ck = flex::worst_checkpoint_energy(cm_c, dev.cost());
  img.burst_energy_j = 3e-7;
  ASSERT_GE(img.burst_energy_j, AdaptiveSpec{}.ckpt_margin * su);
  ASSERT_LT(img.burst_energy_j, AdaptiveSpec{}.ckpt_margin * ck);
  provision_adaptive(*policy, img);

  flex::IntermittentExecutor ex(*policy);
  const flex::RunStats st = ex.run(dev, cm_c, input);

  EXPECT_TRUE(st.completed());
  const auto* ap = as_adaptive(policy.get());
  EXPECT_EQ(ap->current_runtime(), "sonic");
  EXPECT_TRUE(ap->on_dense_model());
  // The executor was armed with the compressed image but the run
  // completed on the dense twin: the output_model hook must redirect.
  EXPECT_EQ(st.output, oracle_dense);
}

TEST(Adaptive, MicroBurstForcesTileBelowSonicsCommitGrain) {
  // A burst below even SONIC's largest minimal committable unit pins the
  // ladder to the tile floor: sub-layer cursors are the only strategy
  // whose commit grain still fits.
  Rng rng(44);
  const auto qm_c = tiny_compressed(rng);
  const auto qm_d = tiny_dense(rng);
  const auto input =
      quant::quantize_input(qm_c, random_tensor(qm_c.layers.front().in_shape, rng));
  const auto oracle_dense = continuous_oracle(qm_d, input);

  auto policy = make_adaptive_policy();
  dev::Device dev;
  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  const auto cm_c = ace::compile(qm_c, dev);
  const auto cm_d = ace::compile(qm_d, dev, /*co_resident=*/true);
  DeploymentImage img;
  img.compressed = &cm_c;
  img.dense = &cm_d;
  img.burst_energy_j = 1e-9;  // below one SONIC conv-pixel commit
  ASSERT_LT(img.burst_energy_j,
            AdaptiveSpec{}.ckpt_margin * flex::sonic_worst_commit_energy(cm_d, dev.cost()));
  provision_adaptive(*policy, img);

  flex::IntermittentExecutor ex(*policy);
  const flex::RunStats st = ex.run(dev, cm_c, input);

  EXPECT_TRUE(st.completed());
  const auto* ap = as_adaptive(policy.get());
  EXPECT_EQ(ap->current_runtime(), "tile");
  EXPECT_TRUE(ap->on_dense_model());
  EXPECT_EQ(st.output, oracle_dense);
}

TEST(Adaptive, MisforecastDemotesAceToFlexAndCompletes) {
  // A forecaster stuck on "rich" starts every fresh boot on ACE; under a
  // harvest that can never push a whole inference through one burst, the
  // no-progress guard must demote to FLEX, which then finishes. Use the
  // real MNIST deployment model: a burst covers only a fraction of it.
  Rng rng(0xb0a710ad + 0);
  const auto qm = models::make_deployed_qmodel(models::Task::kMnist, true, rng);
  std::vector<q15_t> input(qm.layers.front().in_size());
  for (auto& v : input) v = static_cast<q15_t>(rng.next_u64());

  auto fixed_flex_run = [&](dev::Device& dev, const ace::CompiledModel& cm,
                            const flex::RunOptions& opts) {
    auto rt = flex::make_flex_runtime();
    return rt->infer(dev, cm, input, opts);
  };

  const auto run_supply = [&](flex::RuntimePolicy* policy, bool* completed,
                              std::vector<q15_t>* output, flex::RunOptions* opts_out) {
    auto src = power::make_harvest_source("const:w=1.2e-3");
    power::CapacitorConfig ccfg;
    ccfg.capacitance_f = 10e-6;
    power::CapacitorSupply supply(*src, ccfg);
    dev::Device dev;
    dev.attach_supply(&supply);
    const auto cm = ace::compile(qm, dev);
    flex::RunOptions opts;
    opts.flex_v_warn = power::warn_voltage_for(
        ccfg, flex::worst_checkpoint_energy(cm, dev.cost()) + 5e-6, 3.0);
    if (opts_out != nullptr) *opts_out = opts;
    if (policy == nullptr) {
      const flex::RunStats st = fixed_flex_run(dev, cm, opts);
      *completed = st.completed();
      *output = st.output;
      return;
    }
    flex::IntermittentExecutor ex(*policy);
    const flex::RunStats st = ex.run(dev, cm, input, opts);
    *completed = st.completed();
    *output = st.output;
  };

  bool flex_ok = false;
  std::vector<q15_t> flex_out;
  run_supply(nullptr, &flex_ok, &flex_out, nullptr);
  ASSERT_TRUE(flex_ok) << "fixture: fixed FLEX must complete this scenario";

  auto policy =
      make_adaptive_policy(parse_adaptive_spec("adaptive:fc=const,w=9,rich=5e-3,demote=2"));
  bool ok = false;
  std::vector<q15_t> out;
  run_supply(policy.get(), &ok, &out, nullptr);
  EXPECT_TRUE(ok);
  const auto* ap = as_adaptive(policy.get());
  EXPECT_EQ(ap->current_runtime(), "flex") << "mis-forecast must demote off ACE";
  EXPECT_GE(ap->tier_switches(), 1);
  EXPECT_EQ(out, flex_out) << "adaptive completing on the flex tier must be bit-exact";
}

TEST(Adaptive, ObservedIncomeFeedsTheForecaster) {
  // Under an intermittent capacitor supply the recharge gaps are income
  // samples; the forecaster must have folded some in by completion.
  Rng rng(45);
  const auto qm_c = tiny_compressed(rng);
  const auto qm_d = tiny_dense(rng);
  const auto input =
      quant::quantize_input(qm_c, random_tensor(qm_c.layers.front().in_shape, rng));

  auto policy = make_adaptive_policy();
  auto src = power::make_harvest_source("square:hi=4e-3,lo=0.2e-3,period=0.005,duty=0.5");
  power::CapacitorConfig ccfg;
  ccfg.capacitance_f = 2e-6;
  power::CapacitorSupply supply(*src, ccfg);
  dev::Device dev;
  dev.attach_supply(&supply);
  const auto cm_c = ace::compile(qm_c, dev);
  const auto cm_d = ace::compile(qm_d, dev, /*co_resident=*/true);
  DeploymentImage img;
  img.compressed = &cm_c;
  img.dense = &cm_d;
  img.burst_energy_j = supply.burst_energy();
  provision_adaptive(*policy, img);

  flex::RunOptions opts;
  opts.flex_v_warn = power::warn_voltage_for(
      ccfg, flex::worst_checkpoint_energy(cm_c, dev.cost()) + 5e-6, 3.0);
  flex::IntermittentExecutor ex(*policy);
  const flex::RunStats st = ex.run(dev, cm_c, input, opts);

  EXPECT_TRUE(st.completed());
  const auto* ap = as_adaptive(policy.get());
  if (st.reboots > 0) {
    EXPECT_GT(ap->forecaster().samples(), 0)
        << "reboots happened but no income sample was recorded";
  }
}

// ------------------------------------------------------------ job queue

TEST(JobQueue, RunsTheAgendaAndScoresDeadlines) {
  Rng rng(46);
  const auto qm = tiny_compressed(rng);
  power::ContinuousPower supply;
  dev::Device dev;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);

  std::vector<std::vector<q15_t>> inputs;
  for (int j = 0; j < 3; ++j) {
    Rng in_rng(100 + static_cast<std::uint64_t>(j));
    std::vector<q15_t> in(cm.model.layers.front().in_size());
    for (auto& v : in) v = static_cast<q15_t>(in_rng.next_u64());
    inputs.push_back(std::move(in));
  }

  auto policy = flex::make_flex_policy();
  DeviceAgenda agenda;
  agenda.runtime = "flex";
  agenda.jobs = 3;
  agenda.period_s = 0.05;
  agenda.deadline_s = 0.04;
  JobQueue q(dev, *policy, cm, {}, agenda, &inputs);

  while (q.step()) {
  }
  ASSERT_TRUE(q.finished());
  const auto& recs = q.records();
  ASSERT_EQ(recs.size(), 3u);
  for (int j = 0; j < 3; ++j) {
    const auto& r = recs[static_cast<std::size_t>(j)];
    EXPECT_EQ(r.job, j);
    EXPECT_DOUBLE_EQ(r.release_s, 0.05 * j);
    EXPECT_GE(r.start_s, r.release_s);
    EXPECT_GT(r.finish_s, r.start_s);
    EXPECT_TRUE(r.outcome == flex::Outcome::kCompleted);
    EXPECT_DOUBLE_EQ(r.staleness_s, r.finish_s - r.release_s);
    // The tiny model completes in well under 40 ms of device time on
    // bench power, so every job meets its deadline...
    EXPECT_TRUE(r.met_deadline) << "job " << j;
    EXPECT_EQ(r.runtime, "flex");
    // ...and starts exactly at its release (the device idles in between).
    EXPECT_DOUBLE_EQ(r.start_s, r.release_s);
  }
}

TEST(JobQueue, RejectsMalformedAgendas) {
  Rng rng(47);
  const auto qm = tiny_compressed(rng);
  power::ContinuousPower supply;
  dev::Device dev;
  dev.attach_supply(&supply);
  const auto cm = ace::compile(qm, dev);
  std::vector<std::vector<q15_t>> inputs(1);
  inputs[0].resize(cm.model.layers.front().in_size(), 0);
  auto policy = flex::make_flex_policy();

  DeviceAgenda zero_period;
  zero_period.jobs = 1;
  zero_period.period_s = 0.0;
  EXPECT_THROW(JobQueue(dev, *policy, cm, {}, zero_period, &inputs), Error);

  DeviceAgenda wrong_inputs;
  wrong_inputs.jobs = 2;  // but only one input provided
  EXPECT_THROW(JobQueue(dev, *policy, cm, {}, wrong_inputs, &inputs), Error);
}

// ----------------------------------------------------- fleet config file

TEST(FleetConfig, ParsesHeterogeneousGroups) {
  std::istringstream is(R"(# duty-cycled mixed population
fleet source=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5 spread=0.5 seed=0x123
group name=rich count=4 task=mnist runtime=adaptive cap=20e-6 jobs=2 period=0.3 deadline=1.5 sched=adaptive:rich=2e-3
group name=lean count=3 task=har runtime=flex cap=5e-6 jobs=1 period=0.4 max_off=10 reboots=5000 fram=300000
)");
  const sim::FleetConfig cfg = sim::parse_fleet_config(is);
  EXPECT_EQ(cfg.seed, 0x123u);
  EXPECT_DOUBLE_EQ(cfg.offset_spread_s, 0.5);
  ASSERT_EQ(cfg.groups.size(), 2u);
  EXPECT_EQ(cfg.groups[0].name, "rich");
  EXPECT_EQ(cfg.groups[0].count, 4);
  EXPECT_EQ(cfg.groups[0].task, models::Task::kMnist);
  EXPECT_EQ(cfg.groups[0].agenda.runtime, "adaptive");
  EXPECT_EQ(cfg.groups[0].agenda.jobs, 2);
  EXPECT_DOUBLE_EQ(cfg.groups[0].agenda.period_s, 0.3);
  EXPECT_DOUBLE_EQ(cfg.groups[0].agenda.deadline_s, 1.5);
  EXPECT_EQ(cfg.groups[0].sched_spec, "adaptive:rich=2e-3");
  EXPECT_EQ(cfg.groups[1].task, models::Task::kHar);
  EXPECT_DOUBLE_EQ(cfg.groups[1].capacitance_f, 5e-6);
  EXPECT_EQ(cfg.groups[1].max_reboots, 5000);
  EXPECT_EQ(cfg.groups[1].fram_words, 300000u);
  EXPECT_EQ(cfg.total_devices(), 7);
}

TEST(FleetConfig, RejectsMalformedEntries) {
  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return sim::parse_fleet_config(is);
  };
  EXPECT_THROW(parse(""), Error);  // no groups
  EXPECT_THROW(parse("group count=2 cap=-10e-6\n"), Error);       // negative capacitance
  EXPECT_THROW(parse("group count=2 period=0\n"), Error);         // zero-period agenda
  EXPECT_THROW(parse("group count=2 runtime=warp\n"), Error);     // unknown runtime key
  EXPECT_THROW(parse("group count=2 task=sudoku\n"), Error);      // unknown task
  EXPECT_THROW(parse("group count=0\n"), Error);                  // empty group
  EXPECT_THROW(parse("group name=a count=0\ngroup name=b count=2\n"), Error);  // count=0 anywhere
  // Duplicate group names would make per_device rows and baseline
  // comparisons ambiguous; explicit and default-assigned names collide too.
  EXPECT_THROW(parse("group name=twin count=1\ngroup name=twin count=2\n"), Error);
  EXPECT_THROW(parse("group name=group1 count=1\ngroup count=1\n"), Error);
  EXPECT_THROW(parse("group count=2 bogus=1\n"), Error);          // unknown key
  // fleet-line detail must be one of the two modes.
  EXPECT_THROW(parse("fleet detail=everything\ngroup count=1\n"), Error);
  EXPECT_THROW(parse("group count=2 cap\n"), Error);              // not key=value
  EXPECT_THROW(parse("squadron count=2\n"), Error);               // unknown directive
  EXPECT_THROW(parse("group count=2 count=3\n"), Error);          // duplicate key
  EXPECT_THROW(parse("group count=2 jobs=2 period=x\n"), Error);  // bad number
  // sched= on a fixed runtime is a config error, as is a bad spec.
  EXPECT_THROW(parse("group count=1 runtime=flex sched=adaptive:rich=1\n"), Error);
  EXPECT_THROW(parse("group count=1 runtime=adaptive sched=adaptive:nope=1\n"), Error);
  // fleet line: at most once.
  EXPECT_THROW(parse("fleet seed=1\nfleet seed=2\ngroup count=1\n"), Error);
  // Integer keys are range-checked before the cast (no UB, no silent
  // wraparound) and the seed must parse completely.
  EXPECT_THROW(parse("group count=1 fram=-1\n"), Error);
  EXPECT_THROW(parse("group count=1.5\n"), Error);
  EXPECT_THROW(parse("group count=1e12\n"), Error);
  EXPECT_THROW(parse("fleet seed=xyz\ngroup count=1\n"), Error);
  EXPECT_THROW(parse("fleet seed=12oops\ngroup count=1\n"), Error);
  // Tile runtime specs: zero/negative/fractional tile sizes and unknown
  // spec keys are config errors; so is a spec suffix on a runtime that
  // takes none. The watchdog knob must be non-negative.
  EXPECT_THROW(parse("group count=1 runtime=tile:t=0\n"), Error);
  EXPECT_THROW(parse("group count=1 runtime=tile:t=-4\n"), Error);
  EXPECT_THROW(parse("group count=1 runtime=tile:t=1.5\n"), Error);
  EXPECT_THROW(parse("group count=1 runtime=tile:bogus=1\n"), Error);
  EXPECT_THROW(parse("group count=1 runtime=flex:t=2\n"), Error);
  EXPECT_THROW(parse("group count=1 max_futile=-1\n"), Error);
}

// --------------------------------------------------- FLEET.json v6 schema

TEST(FleetJson, V6SchemaGolden) {
  sim::FleetConfig cfg;
  cfg.source = "square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5";
  cfg.offset_spread_s = 0.02;
  sim::FleetGroup g;
  g.name = "golden";
  g.count = 2;
  g.agenda.runtime = "flex";
  g.agenda.jobs = 2;
  g.agenda.period_s = 0.3;
  g.agenda.deadline_s = 0.25;
  cfg.groups.push_back(g);
  sim::FleetRunOptions ropts;
  ropts.baseline_runtimes = {"ace"};
  const sim::FleetReport r = sim::run_fleet(cfg, ropts);

  std::ostringstream os;
  sim::write_fleet_json(os, r);
  const std::string j = os.str();
  // Schema marker and every carried field family must be present (v3
  // added the admission block, per-device jobs_skipped, and per-job
  // energy_reclaimed_j; v4 added the per-group max_futile echo and the
  // "livelock" verdict; v5 added the detail mode, sketch-based percentile
  // provenance, and the aggregate livelock/total_steps counters; v6 adds
  // the lifecycle "metrics" block).
  for (const char* needle :
       {"\"schema\": \"ehdnn-fleet-v6\"", "\"detail\": \"full\"",
        "\"metrics\":", "\"counters\":", "\"gauges\":", "\"event.boot\":",
        "\"event.brown_out\":", "\"event.recovery\":", "\"event.commit\":",
        "\"event.checkpoint_begin\":", "\"event.job_complete\":",
        "\"trace.dropped_events\":", "\"fleet.max_device_reboots\":",
        "\"percentiles\": \"qsketch\"", "\"sketch_rel_err\":", "\"total_steps\":",
        "\"max_futile\":", "\"groups\":", "\"aggregate\":",
        "\"baselines\":",
        "\"per_device\":", "\"total_jobs\":", "\"in_deadline\":", "\"deadline_rate\":",
        "\"latency_p50_s\":", "\"latency_p99_s\":", "\"staleness_p50_s\":",
        "\"staleness_p99_s\":", "\"tier_switches\":", "\"jobs\": [", "\"release_s\":",
        "\"staleness_s\":", "\"met_deadline\":", "\"outcome\":", "\"period_s\":",
        "\"deadline_s\":", "\"jobs_in_deadline\":", "\"runtime\": \"ace\"",
        "\"admission\":", "\"skipped_infeasible\":", "\"energy_reclaimed_j\":",
        "\"jobs_skipped\":", "\"admission_baseline\":"}) {
    EXPECT_NE(j.find(needle), std::string::npos) << "missing " << needle;
  }
  // Older schema ids are gone.
  EXPECT_EQ(j.find("ehdnn-fleet-v1"), std::string::npos);
  EXPECT_EQ(j.find("ehdnn-fleet-v2"), std::string::npos);
  EXPECT_EQ(j.find("ehdnn-fleet-v3"), std::string::npos);
  EXPECT_EQ(j.find("ehdnn-fleet-v4"), std::string::npos);
  EXPECT_EQ(j.find("ehdnn-fleet-v5"), std::string::npos);
}

}  // namespace
}  // namespace ehdnn::sched
