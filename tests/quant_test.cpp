#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <sstream>

#include "data/dataset.h"
#include "quant/qserial.h"
#include "train/trainer.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "quant/qexec.h"
#include "quant/quantize.h"
#include "util/rng.h"

namespace ehdnn::quant {
namespace {

nn::Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng, double amp = 0.9) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-amp, amp));
  }
  return t;
}

std::vector<nn::Tensor> calib_set(const std::vector<std::size_t>& shape, Rng& rng, int n = 8) {
  std::vector<nn::Tensor> v;
  for (int i = 0; i < n; ++i) v.push_back(random_tensor(shape, rng));
  return v;
}

// Compare quantized prediction against the float model.
void expect_close(nn::Model& model, const QuantModel& qm, const nn::Tensor& x, double tol) {
  const nn::Tensor fy = model.forward(x);
  const auto qy = qpredict(qm, x);
  ASSERT_EQ(fy.size(), qy.size());
  for (std::size_t i = 0; i < fy.size(); ++i) {
    EXPECT_NEAR(qy[i], fy[i], tol) << "output " << i;
  }
}

TEST(Quantize, DenseMatchesFloat) {
  Rng rng(1);
  nn::Model m;
  m.add<nn::Dense>(16, 8)->init(rng);
  const auto calib = calib_set({16}, rng);
  const auto qm = quantize(m, calib, {16});
  for (int t = 0; t < 10; ++t) expect_close(m, qm, random_tensor({16}, rng), 0.02);
}

TEST(Quantize, ConvReluPoolPipelineMatchesFloat) {
  Rng rng(2);
  nn::Model m;
  m.add<nn::Conv2D>(1, 3, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::Dense>(3 * 3 * 3, 4)->init(rng);
  const auto calib = calib_set({1, 8, 8}, rng);
  const auto qm = quantize(m, calib, {1, 8, 8});
  for (int t = 0; t < 10; ++t) expect_close(m, qm, random_tensor({1, 8, 8}, rng), 0.05);
}

TEST(Quantize, Conv1DMatchesFloat) {
  Rng rng(3);
  nn::Model m;
  m.add<nn::Conv1D>(1, 4, 5)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Flatten>();
  m.add<nn::Dense>(4 * 12, 3)->init(rng);
  const auto calib = calib_set({1, 16}, rng);
  const auto qm = quantize(m, calib, {1, 16});
  for (int t = 0; t < 10; ++t) expect_close(m, qm, random_tensor({1, 16}, rng), 0.05);
}

class BcmQuant : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BcmQuant, BcmMatchesFloatWithBlockFloat) {
  const std::size_t k = GetParam();
  Rng rng(4 + k);
  nn::Model m;
  m.add<nn::BcmDense>(2 * k, k, k)->init(rng);
  const auto calib = calib_set({2 * k}, rng);
  const auto qm = quantize(m, calib, {2 * k});
  QExecOptions opts;
  opts.fft_scaling = dsp::FftScaling::kBlockFloat;
  for (int t = 0; t < 5; ++t) {
    const nn::Tensor x = random_tensor({2 * k}, rng);
    const nn::Tensor fy = m.forward(x);
    const auto qin = quantize_input(qm, x);
    const auto qy = qforward(qm, qin, opts);
    const double scale = std::exp2(qm.layers.back().out_exp);
    for (std::size_t i = 0; i < fy.size(); ++i) {
      EXPECT_NEAR(fx::to_double(qy[i]) * scale, fy[i], 0.05) << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, BcmQuant, ::testing::Values(8u, 16u, 32u, 64u));

TEST(Quantize, FixedScaleCoarserThanBlockFloat) {
  // Algorithm 1's fixed scaling costs precision that grows with k; block
  // floating point tracks the float model much more closely.
  const std::size_t k = 64;
  Rng rng(9);
  nn::Model m;
  m.add<nn::BcmDense>(k, k, k)->init(rng);
  const auto calib = calib_set({k}, rng);
  const auto qm = quantize(m, calib, {k});

  double err_fixed = 0.0, err_bfp = 0.0;
  for (int t = 0; t < 20; ++t) {
    const nn::Tensor x = random_tensor({k}, rng);
    const nn::Tensor fy = m.forward(x);
    QExecOptions fo;
    fo.fft_scaling = dsp::FftScaling::kFixedScale;
    QExecOptions bo;
    bo.fft_scaling = dsp::FftScaling::kBlockFloat;
    const auto fyq = qpredict(qm, x, fo);
    const auto byq = qpredict(qm, x, bo);
    for (std::size_t i = 0; i < fy.size(); ++i) {
      err_fixed += std::abs(fyq[i] - fy[i]);
      err_bfp += std::abs(byq[i] - fy[i]);
    }
  }
  EXPECT_LT(err_bfp, err_fixed);
}

TEST(Quantize, OverflowUnawareBreaksLargeSignals) {
  // With overflow awareness off the unscaled FFT saturates and the result
  // diverges — the failure Algorithm 1 prevents.
  const std::size_t k = 32;
  Rng rng(10);
  nn::Model m;
  auto* bcm = m.add<nn::BcmDense>(k, k, k);
  bcm->init(rng);
  // Inflate weights so spectra are large.
  for (auto& p : bcm->params()) {
    for (auto& w : p.value) w *= 8.0f;
  }
  const auto calib = calib_set({k}, rng);
  const auto qm = quantize(m, calib, {k});

  fx::SatStats sat_on, sat_off;
  QExecOptions on;
  on.stats = &sat_on;
  QExecOptions off;
  off.overflow_aware = false;
  off.stats = &sat_off;
  const nn::Tensor x = random_tensor({k}, rng);
  const auto qin = quantize_input(qm, x);
  (void)qforward(qm, qin, on);
  (void)qforward(qm, qin, off);
  EXPECT_EQ(sat_on.saturations, 0);
  EXPECT_GT(sat_off.saturations, 0);
}

TEST(Quantize, WeightExponentTightensForSmallWeights) {
  Rng rng(11);
  nn::Model m;
  auto* d = m.add<nn::Dense>(8, 4);
  d->init(rng);
  for (auto& p : d->params()) {
    for (auto& w : p.value) w *= 0.01f;  // tiny weights
  }
  const auto calib = calib_set({8}, rng);
  const auto qm = quantize(m, calib, {8});
  EXPECT_LT(qm.layers[0].w_exp, 0);  // negative exponent = more precision
}

TEST(Quantize, ActivationExponentCoversRange) {
  Rng rng(12);
  nn::Model m;
  auto* d = m.add<nn::Dense>(8, 4);
  d->init(rng);
  for (auto& p : d->params()) {
    for (auto& w : p.value) w *= 10.0f;  // outputs well beyond [-1,1]
  }
  const auto calib = calib_set({8}, rng);
  const auto qm = quantize(m, calib, {8});
  EXPECT_GT(qm.layers[0].out_exp, 0);
  // The executor tracks the float model up to the calibrated representable
  // range: outputs beyond calibration-max * headroom saturate cleanly.
  const double limit = std::exp2(qm.layers[0].out_exp);
  for (int t = 0; t < 5; ++t) {
    const nn::Tensor x = random_tensor({8}, rng);
    const nn::Tensor fy = m.forward(x);
    const auto qy = qpredict(qm, x);
    for (std::size_t i = 0; i < fy.size(); ++i) {
      const double clamped = std::clamp(static_cast<double>(fy[i]), -limit, limit);
      EXPECT_NEAR(qy[i], clamped, 0.25) << "output " << i;
    }
  }
}

TEST(Quantize, ScalePreservingLayersKeepExponent) {
  Rng rng(13);
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  const auto calib = calib_set({1, 6, 6}, rng);
  const auto qm = quantize(m, calib, {1, 6, 6});
  EXPECT_EQ(qm.layers[1].out_exp, qm.layers[0].out_exp);
  EXPECT_EQ(qm.layers[2].out_exp, qm.layers[1].out_exp);
}

TEST(Quantize, RejectsCosineDense) {
  Rng rng(14);
  nn::Model m;
  m.add<nn::CosineDense>(8, 4)->init(rng);
  const auto calib = calib_set({8}, rng);
  EXPECT_THROW(quantize(m, calib, {8}), Error);
}

TEST(QModel, WeightAndActivationAccounting) {
  Rng rng(15);
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::Flatten>();
  m.add<nn::Dense>(2 * 4 * 4, 5)->init(rng);
  const auto calib = calib_set({1, 6, 6}, rng);
  const auto qm = quantize(m, calib, {1, 6, 6});
  // conv weights 2*1*3*3 + bias 2; dense 32*5 + 5.
  EXPECT_EQ(qm.weight_words(), 18u + 2u + 160u + 5u);
  // Largest activation: conv output 2*4*4 = 32 vs input 36 -> 36.
  EXPECT_EQ(qm.max_activation_words(), 36u);
}

TEST(QModel, DenseGuardShift) {
  EXPECT_EQ(dense_guard_shift(1), 0);
  EXPECT_EQ(dense_guard_shift(2), 1);
  EXPECT_EQ(dense_guard_shift(512), 9);
  EXPECT_EQ(dense_guard_shift(3520), 12);
}

TEST(QModel, StructuredPruningCarriesIntoQLayer) {
  Rng rng(16);
  nn::Model m;
  auto* conv = m.add<nn::Conv2D>(1, 2, 5, 5);
  conv->init(rng);
  std::vector<bool> mask(25, false);
  for (std::size_t i = 0; i < 13; ++i) mask[i] = true;
  conv->set_shape_mask(mask);
  const auto calib = calib_set({1, 8, 8}, rng);
  const auto qm = quantize(m, calib, {1, 8, 8});
  EXPECT_EQ(qm.layers[0].live_positions(), 13u);
}

TEST(QSerial, RoundTripPreservesModelAndOutputs) {
  Rng rng(18);
  nn::Model m;
  auto* conv = m.add<nn::Conv2D>(1, 2, 5, 5);
  conv->init(rng);
  std::vector<bool> mask(25, false);
  for (std::size_t i = 0; i < 13; ++i) mask[i] = true;
  conv->set_shape_mask(mask);
  m.add<nn::ReLU>();
  m.add<nn::Flatten>();
  m.add<nn::BcmDense>(2 * 8 * 8, 16, 16)->init(rng);
  m.add<nn::Dense>(16, 4)->init(rng);
  const auto calib = calib_set({1, 12, 12}, rng);
  const auto qm = quantize(m, calib, {1, 12, 12});

  std::stringstream buf;
  save_qmodel(qm, buf);
  const auto back = load_qmodel(buf);

  ASSERT_EQ(back.layers.size(), qm.layers.size());
  EXPECT_EQ(back.input_exp, qm.input_exp);
  for (std::size_t l = 0; l < qm.layers.size(); ++l) {
    EXPECT_EQ(back.layers[l].kind, qm.layers[l].kind);
    EXPECT_EQ(back.layers[l].weights, qm.layers[l].weights);
    EXPECT_EQ(back.layers[l].bias, qm.layers[l].bias);
    EXPECT_EQ(back.layers[l].w_exp, qm.layers[l].w_exp);
    EXPECT_EQ(back.layers[l].out_exp, qm.layers[l].out_exp);
    EXPECT_EQ(back.layers[l].shape_mask, qm.layers[l].shape_mask);
  }
  // Behavioral equivalence, bit for bit.
  const nn::Tensor x = random_tensor({1, 12, 12}, rng);
  const auto qin = quantize_input(qm, x);
  EXPECT_EQ(qforward(qm, qin), qforward(back, qin));
}

TEST(QSerial, RejectsGarbage) {
  std::stringstream buf;
  buf << "not a model";
  EXPECT_THROW(load_qmodel(buf), Error);
}

TEST(Quantize, AccuracyPreservedOnRealTask) {
  // End-to-end: a trained classifier keeps its accuracy through 16-bit
  // quantization (the paper's claim that b=16 costs ~nothing).
  Rng rng(17);
  auto tt = data::make_mnist_like(rng, 250, 120);
  nn::Model m;
  m.add<nn::Conv2D>(1, 4, 5, 5)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::Dense>(4 * 12 * 12, 10)->init(rng);
  train::FitConfig cfg;
  cfg.epochs = 3;
  train::fit(m, tt.train, cfg, rng);
  const float facc = train::evaluate(m, tt.test).accuracy;

  std::vector<nn::Tensor> calib(tt.train.x.begin(), tt.train.x.begin() + 32);
  const auto qm = quantize(m, calib, {1, 28, 28});
  std::size_t correct = 0;
  for (std::size_t i = 0; i < tt.test.size(); ++i) {
    const auto logits = qpredict(qm, tt.test.x[i]);
    const auto it = std::max_element(logits.begin(), logits.end());
    if (static_cast<int>(it - logits.begin()) == tt.test.y[i]) ++correct;
  }
  const float qacc = static_cast<float>(correct) / static_cast<float>(tt.test.size());
  EXPECT_GT(qacc, facc - 0.05f);
}

}  // namespace
}  // namespace ehdnn::quant
