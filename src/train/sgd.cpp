#include "train/sgd.h"

#include <cmath>

namespace ehdnn::train {

void Sgd::step(nn::Model& model, std::size_t batch_size) {
  auto params = model.params();
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const auto& p : params) velocity_.emplace_back(p.value.size(), 0.0f);
  }
  float inv_batch = 1.0f / static_cast<float>(batch_size);

  if (cfg_.clip_norm > 0.0f) {
    double sq = 0.0;
    for (const auto& p : params) {
      for (float g : p.grad) {
        const double s = static_cast<double>(g) * inv_batch;
        sq += s * s;
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > cfg_.clip_norm) {
      inv_batch *= static_cast<float>(cfg_.clip_norm / norm);
    }
  }
  for (std::size_t g = 0; g < params.size(); ++g) {
    auto& p = params[g];
    auto& vel = velocity_[g];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float grad = p.grad[i] * inv_batch + cfg_.weight_decay * p.value[i];
      vel[i] = cfg_.momentum * vel[i] - cfg_.lr * grad;
      p.value[i] += vel[i];
      p.grad[i] = 0.0f;
    }
  }
}

}  // namespace ehdnn::train
