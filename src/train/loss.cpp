#include "train/loss.h"

#include <algorithm>
#include <cmath>

namespace ehdnn::train {

std::vector<float> softmax(std::span<const float> logits) {
  const float mx = *std::max_element(logits.begin(), logits.end());
  std::vector<float> p(logits.size());
  float sum = 0.0f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - mx);
    sum += p[i];
  }
  for (auto& v : p) v /= sum;
  return p;
}

LossGrad cross_entropy(const nn::Tensor& logits, int label) {
  auto p = softmax(logits.data());
  LossGrad lg;
  const float pl = std::max(p[static_cast<std::size_t>(label)], 1e-12f);
  lg.loss = -std::log(pl);
  lg.grad = nn::Tensor({logits.size()});
  for (std::size_t i = 0; i < p.size(); ++i) {
    lg.grad[i] = p[i] - (static_cast<int>(i) == label ? 1.0f : 0.0f);
  }
  return lg;
}

int argmax(std::span<const float> v) {
  return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace ehdnn::train
