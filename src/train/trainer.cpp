#include "train/trainer.h"

#include <numeric>

#include "train/loss.h"

namespace ehdnn::train {

EpochStats fit(nn::Model& model, const data::Dataset& train, const FitConfig& cfg, Rng& rng) {
  Sgd opt(cfg.sgd);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  EpochStats stats;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    float loss_sum = 0.0f;
    std::size_t correct = 0;

    std::size_t in_batch = 0;
    for (std::size_t idx : order) {
      const auto& x = train.x[idx];
      const int label = train.y[idx];
      nn::Tensor logits = model.forward(x);
      auto lg = cross_entropy(logits, label);
      loss_sum += lg.loss;
      if (argmax(logits.data()) == label) ++correct;
      model.backward(lg.grad);
      if (++in_batch == cfg.batch_size) {
        if (cfg.on_batch) cfg.on_batch(model, in_batch);
        opt.step(model, in_batch);
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      if (cfg.on_batch) cfg.on_batch(model, in_batch);
      opt.step(model, in_batch);
    }

    stats.epoch = epoch;
    stats.train_loss = loss_sum / static_cast<float>(train.size());
    stats.train_acc = static_cast<float>(correct) / static_cast<float>(train.size());
    if (cfg.on_epoch) cfg.on_epoch(model, stats);
  }
  return stats;
}

EvalResult evaluate(nn::Model& model, const data::Dataset& ds) {
  EvalResult r;
  float loss_sum = 0.0f;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    nn::Tensor logits = model.forward(ds.x[i]);
    auto lg = cross_entropy(logits, ds.y[i]);
    loss_sum += lg.loss;
    if (argmax(logits.data()) == ds.y[i]) ++correct;
  }
  r.avg_loss = loss_sum / static_cast<float>(ds.size());
  r.accuracy = static_cast<float>(correct) / static_cast<float>(ds.size());
  return r;
}

}  // namespace ehdnn::train
