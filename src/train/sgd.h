// SGD with momentum and weight decay, operating on a model's ParamViews.
#pragma once

#include <vector>

#include "nn/model.h"

namespace ehdnn::train {

struct SgdConfig {
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  // Global gradient-norm clipping; 0 disables. Deep BCM stacks (HAR/OKG)
  // train much more stably with a modest clip.
  float clip_norm = 0.0f;
};

class Sgd {
 public:
  explicit Sgd(SgdConfig cfg = {}) : cfg_(cfg) {}

  // Applies accumulated gradients (scaled by 1/batch) and zeroes them.
  void step(nn::Model& model, std::size_t batch_size);

  SgdConfig& config() { return cfg_; }

 private:
  SgdConfig cfg_;
  std::vector<std::vector<float>> velocity_;  // lazily sized to param groups
};

}  // namespace ehdnn::train
