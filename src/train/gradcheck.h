// Numeric gradient checking used by the layer unit tests: compares a
// layer's analytic backward() against central finite differences of a
// scalar loss through forward().
#pragma once

#include <cmath>
#include <functional>

#include "nn/layer.h"
#include "util/rng.h"

namespace ehdnn::train {

// Max relative error between analytic and numeric gradients over all
// parameters and the input, for loss L = sum(w_out .* y) with fixed random
// weighting w_out.
struct GradCheckResult {
  double max_param_err = 0.0;
  double max_input_err = 0.0;
};

inline GradCheckResult grad_check(nn::Layer& layer, nn::Tensor x, Rng& rng,
                                  double eps = 1e-3) {
  // Fixed output weighting makes the loss scalar: L = sum w .* f(x).
  // The weighting keeps the layer's output shape so backward() sees a
  // correctly shaped upstream gradient.
  nn::Tensor y0 = layer.forward(x);
  nn::Tensor wout(y0.shape());
  for (std::size_t i = 0; i < wout.size(); ++i) {
    wout[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  auto loss = [&](const nn::Tensor& in) {
    nn::Tensor y = layer.forward(in);
    double l = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) l += static_cast<double>(wout[i]) * y[i];
    return l;
  };

  // Analytic gradients.
  layer.zero_grad();
  layer.forward(x);
  nn::Tensor dx = layer.backward(wout);

  auto rel_err = [](double a, double b) {
    const double denom = std::max({std::abs(a), std::abs(b), 1e-4});
    return std::abs(a - b) / denom;
  };

  GradCheckResult res;

  // Input gradient.
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float keep = x[i];
    x[i] = keep + static_cast<float>(eps);
    const double lp = loss(x);
    x[i] = keep - static_cast<float>(eps);
    const double lm = loss(x);
    x[i] = keep;
    const double num = (lp - lm) / (2.0 * eps);
    res.max_input_err = std::max(res.max_input_err, rel_err(num, dx[i]));
  }

  // Parameter gradients (analytic grads are still stored in the layer).
  for (auto& p : layer.params()) {
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float keep = p.value[i];
      p.value[i] = keep + static_cast<float>(eps);
      const double lp = loss(x);
      p.value[i] = keep - static_cast<float>(eps);
      const double lm = loss(x);
      p.value[i] = keep;
      const double num = (lp - lm) / (2.0 * eps);
      res.max_param_err = std::max(res.max_param_err, rel_err(num, p.grad[i]));
    }
  }
  return res;
}

}  // namespace ehdnn::train
