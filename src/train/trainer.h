// Mini-batch training driver and evaluation.
#pragma once

#include <functional>

#include "data/dataset.h"
#include "nn/model.h"
#include "train/sgd.h"
#include "util/rng.h"

namespace ehdnn::train {

struct EpochStats {
  int epoch = 0;
  float train_loss = 0.0f;
  float train_acc = 0.0f;
};

struct FitConfig {
  int epochs = 5;
  std::size_t batch_size = 16;
  SgdConfig sgd;
  // Optional hook called right before each optimizer step, with the batch
  // size the accumulated gradients cover. ADMM uses it to add the
  // rho*(W - Z + U) regularization gradient.
  std::function<void(nn::Model&, std::size_t)> on_batch;
  // Optional per-epoch hook (ADMM dual updates, logging, ...). Called
  // after the last optimizer step of each epoch.
  std::function<void(nn::Model&, const EpochStats&)> on_epoch;
};

// Trains in place; returns last epoch's stats.
EpochStats fit(nn::Model& model, const data::Dataset& train, const FitConfig& cfg, Rng& rng);

struct EvalResult {
  float accuracy = 0.0f;
  float avg_loss = 0.0f;
};

EvalResult evaluate(nn::Model& model, const data::Dataset& ds);

}  // namespace ehdnn::train
