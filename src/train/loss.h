// Softmax cross-entropy loss and classification metrics.
#pragma once

#include <span>
#include <vector>

#include "nn/tensor.h"

namespace ehdnn::train {

// Numerically stable softmax.
std::vector<float> softmax(std::span<const float> logits);

struct LossGrad {
  float loss = 0.0f;
  nn::Tensor grad;  // dL/dlogits
};

// Combined softmax + cross-entropy (the usual fused gradient p - onehot).
LossGrad cross_entropy(const nn::Tensor& logits, int label);

int argmax(std::span<const float> v);

}  // namespace ehdnn::train
