// ACE layer kernels: the on-device executors (paper SSIII-B).
//
// Every kernel:
//   * reads its input activations from one FRAM circular buffer and
//     commits outputs to the other,
//   * stages operands in SRAM and runs the heavy math on the LEA
//     (whole-kernel MAC convolution per Fig. 4; FFT -> CMUL -> IFFT block
//     circulant FC per Algorithm 1),
//   * moves bulk data with DMA when the cost model says DMA wins,
//   * is resumable at *unit* granularity: a unit is the smallest chunk of
//     work whose results are fully committed to FRAM (an output row for
//     Conv2D, a filter for Conv1D, a (chunk x neuron-block) tile for
//     Dense, a block row for BcmDense, an element range for the CPU
//     layers). Units are sized so a single unit always fits in one
//     harvest burst — the forward-progress requirement of intermittent
//     execution.
//
// Intermittent runtimes drive kernels with a start unit (fast-forward
// after reboot) and receive hooks at unit boundaries; FLEX additionally
// observes the BCM kernel at *stage* granularity (Fig. 6's b0-b2 states)
// so it can checkpoint mid-block on a voltage warning.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/ace/compiled_model.h"
#include "dsp/fft.h"
#include "util/math.h"

namespace ehdnn::ace {

// Reusable host-side staging for the bulk kernels. Buffers grow once to
// their high-water mark and are reused across units and layers; runtimes
// hold one arena per inference so the steady state allocates nothing.
// Distinct vectors exist for the buffers that are live simultaneously
// (a `need` call may resize its vector, invalidating spans into it).
struct ScratchArena {
  std::vector<fx::q15_t> gather;  // gathered weights / windows
  std::vector<fx::q15_t> row;     // staged rows / real parts / x-w blocks
  std::vector<fx::q15_t> acc;     // accumulator-row images (acc32/acc64)
  std::vector<fx::q15_t> bias;    // bias block staging
  std::vector<fx::q15_t> spect;   // BCM interleave / spectrum staging

  static std::span<fx::q15_t> need(std::vector<fx::q15_t>& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
    return {v.data(), n};
  }
};

struct ExecCtx {
  dev::Device& dev;
  const CompiledModel& cm;
  std::size_t layer = 0;
  dev::Addr in_addr = 0;   // FRAM activation input base
  dev::Addr out_addr = 0;  // FRAM activation output base
  dsp::FftScaling scaling = dsp::FftScaling::kBlockFloat;
  fx::SatStats* stats = nullptr;
  // Optional cross-layer scratch; kernels fall back to a per-run arena.
  ScratchArena* arena = nullptr;

  const quant::QLayer& q() const { return cm.model.layers[layer]; }
  const LayerImage& img() const { return cm.images[layer]; }
  const LayerPlan& plan() const { return cm.plans[layer]; }
};

struct UnitHooks {
  // Called before starting each unit (FLEX polls the voltage monitor here).
  std::function<void(std::size_t unit)> boundary;
  // Called after unit `unit` is fully committed to FRAM.
  std::function<void(std::size_t unit)> committed;
};

// Number of resumable units for a layer.
std::size_t unit_count(const quant::QLayer& l);

// Dense tiling: units are (chunk, neuron-block) pairs; neuron blocks keep
// per-unit work small enough to fit inside one harvest burst.
inline constexpr std::size_t kDenseNeuronBlock = 32;
inline std::size_t dense_neuron_blocks(const quant::QLayer& l) {
  return div_ceil(l.out_ch, kDenseNeuronBlock);
}

// Runs a layer from `start_unit` to completion. Preconditions for
// start_unit > 0: the output buffer holds the committed results of units
// < start_unit (guaranteed, it is FRAM) and — for Dense — the caller has
// restored the acc32 partials into SRAM (TAILS from its parity slots,
// FLEX from its checkpoint).
void run_layer(ExecCtx& ctx, std::size_t start_unit, const UnitHooks& hooks);

// ---- fine-grained BCM control (FLEX) --------------------------------------

// Stage machine of Algorithm 1 within one (bi, bj) block; the 3 control
// bits of Fig. 6 encode exactly this progression.
enum class BcmStage : std::uint8_t {
  kLoad = 0,  // DMA w,x blocks to SRAM + complexify
  kFftX = 1,
  kFftW = 2,
  kMpy = 3,
  kIfft = 4,
  kAcc = 5,   // extract real parts, fold into the row accumulator
};

struct BcmState {
  std::size_t block = 0;  // linear bi * bq + bj
  BcmStage stage = BcmStage::kLoad;
  int exp_x = 0;  // FFT scaling exponents gathered so far (valid per stage)
  int exp_w = 0;
  int exp_p = 0;
};

class BcmObserver {
 public:
  virtual ~BcmObserver() = default;
  // After a stage completes; `st` describes the NEXT stage to run. SRAM
  // buffers (ctx.cm.sram) hold the live intermediates.
  virtual void on_stage(ExecCtx& ctx, const BcmState& st) { (void)ctx; (void)st; }
  // After block `block`'s contribution is folded into the accumulator.
  virtual void on_block_done(ExecCtx& ctx, std::size_t block) { (void)ctx; (void)block; }
  // After output row `bi` is narrowed and committed to FRAM.
  virtual void on_row_committed(ExecCtx& ctx, std::size_t bi) { (void)ctx; (void)bi; }
};

// Runs the BCM layer from `st` to completion. Preconditions for resuming
// beyond kLoad: SRAM holds the restored intermediates (fft_x/fft_w buffers,
// accumulator row) matching `st` — FLEX restores them from its checkpoint.
// For st.stage == kLoad with st.block at a row boundary, the accumulator is
// zeroed internally.
void run_bcm(ExecCtx& ctx, BcmState st, BcmObserver* obs);

// ---- tile-granular execution (the "tile" runtime, core/flex/tile.cpp) -----

// Sub-layer progress cursor: one output element's reduction is split into
// tiles of `tile_elems` MACs walked through the LayerPlan gather tables
// (the natural seam — conv operands are addressed by w_gather/x_gather
// subranges, FRAM-direct, no feature-map staging). `acc` carries the
// partial sum across tiles; for Dense it holds the guard-shifted 32-bit
// accumulator, for conv the exact 64-bit one. The element-wise math is
// SONIC's exactly, so outputs are bit-identical across the two runtimes.
struct TileCursor {
  std::uint32_t layer = 0;
  std::uint32_t outer = 0;  // conv output pixel / dense neuron / cpu block
  std::uint32_t tile = 0;   // reduction tile within the element
  std::int64_t acc = 0;     // partial accumulator across committed tiles
};

// Tile-commits for one layer / the whole model at tile size `tile_elems`:
// outer elements x reduction tiles per element (CPU layers commit per
// element block; BcmDense is unsupported and counts 0).
std::size_t tile_layer_units(const CompiledModel& cm, std::size_t layer,
                             std::size_t tile_elems);
std::size_t tile_total_units(const CompiledModel& cm, std::size_t tile_elems);

// Executes exactly one reduction tile at `cur` and advances the cursor —
// to the next tile, the next outer element, or (when the layer's last
// element finishes) to (layer+1, 0, 0). Output-word writes happen only on
// an element's final tile and are idempotent (the activation ping-pong
// guarantees the input words survive re-execution), so replaying a tile
// whose cursor commit tore reproduces bit-identical state. Returns true
// when the layer is complete.
bool run_tile(ExecCtx& ctx, TileCursor& cur, std::size_t tile_elems);

// ---- SRAM 32/64-bit accumulator helpers (shared with runtimes) ------------

// 32-bit value across two q15 words (lo, hi), costed device accesses.
std::int32_t read_acc32(dev::Device& dev, dev::MemKind mem, dev::Addr base, std::size_t idx);
void write_acc32(dev::Device& dev, dev::MemKind mem, dev::Addr base, std::size_t idx,
                 std::int32_t v);

// 64-bit value across four q15 words, costed device accesses.
std::int64_t read_acc64(dev::Device& dev, dev::MemKind mem, dev::Addr base, std::size_t idx);
void write_acc64(dev::Device& dev, dev::MemKind mem, dev::Addr base, std::size_t idx,
                 std::int64_t v);

}  // namespace ehdnn::ace
