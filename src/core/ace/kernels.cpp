#include "core/ace/kernels.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dsp/circulant.h"
#include "util/check.h"
#include "util/math.h"

namespace ehdnn::ace {

namespace {

using dev::Addr;
using dev::MemKind;
using fx::q15_t;
using quant::QKind;
using quant::QLayer;

constexpr std::size_t kCpuUnit = 64;  // element block for CPU-direct layers

int acc_rshift(const QLayer& l) { return 15 + l.out_exp - l.w_exp - l.in_exp; }

using Span = std::span<fx::q15_t>;

// Effective arena for one kernel run: the caller's cross-layer arena when
// provided, else a run-local fallback (allocations then amortize across
// the units of this run only).
struct ArenaRef {
  ScratchArena fallback;
  ScratchArena& ar;
  explicit ArenaRef(const ExecCtx& ctx) : ar(ctx.arena != nullptr ? *ctx.arena : fallback) {}
  ScratchArena* operator->() { return &ar; }
};

// 32/64-bit accumulator packing over host-side word images, mirroring the
// device-resident layouts of read/write_acc32/64 below.
std::int32_t unpack_acc32(std::span<const q15_t> w, std::size_t idx) {
  const auto lo = static_cast<std::uint16_t>(w[2 * idx]);
  const auto hi = static_cast<std::uint16_t>(w[2 * idx + 1]);
  return static_cast<std::int32_t>((static_cast<std::uint32_t>(hi) << 16) | lo);
}

std::int64_t unpack_acc64(std::span<const q15_t> w, std::size_t idx) {
  std::uint64_t u = 0;
  for (int b = 3; b >= 0; --b) {
    u = (u << 16) | static_cast<std::uint16_t>(w[4 * idx + b]);
  }
  return static_cast<std::int64_t>(u);
}

void pack_acc64(Span w, std::size_t idx, std::int64_t v) {
  auto u = static_cast<std::uint64_t>(v);
  for (int b = 0; b < 4; ++b) {
    w[4 * idx + b] = static_cast<q15_t>(u & 0xffff);
    u >>= 16;
  }
}

// ---------------------------------------------------------------- Conv2D

void run_conv2d(ExecCtx& ctx, std::size_t start_unit, const UnitHooks& hooks) {
  dev::Device& dv = ctx.dev;
  const QLayer& q = ctx.q();
  const SramPlan& sp = ctx.cm.sram;
  const LayerPlan& lp = ctx.plan();
  ArenaRef ar(ctx);
  const std::size_t iw = q.in_shape[2];
  const std::size_t oh = q.out_shape[1], ow = q.out_shape[2];
  const std::size_t gather = q.in_ch * lp.live_pos.size();
  const int rshift = acc_rshift(q);

  // Stage the whole input feature map in SRAM (acceleration-aware
  // dataflow: one bulk DMA instead of per-window FRAM traffic).
  check(q.in_size() <= sp.input_stage_words, "conv2d: input stage overflow");
  move_words(dv, MemKind::kFram, ctx.in_addr, MemKind::kSram, sp.input_stage, q.in_size());

  const Span gbuf = ScratchArena::need(ar->gather, gather);
  const Span rowbuf = ScratchArena::need(ar->row, ow);

  std::size_t cur_f = static_cast<std::size_t>(-1);
  q15_t bias_f = 0;
  const std::size_t units = q.out_ch * oh;
  for (std::size_t unit = start_unit; unit < units; ++unit) {
    if (hooks.boundary) hooks.boundary(unit);
    const std::size_t f = unit / oh;
    const std::size_t i = unit % oh;

    if (f != cur_f) {
      // Gather filter f's live weights into a contiguous SRAM vector: one
      // LEA MAC then covers the whole kernel (Fig. 4).
      dv.cpu_ops(2.0 * static_cast<double>(gather));
      dv.read_gather(MemKind::kFram, ctx.img().w_base + f * q.in_ch * q.kh * q.kw,
                     lp.w_gather, lp.w_span, gbuf, /*offsets_in_span=*/true);
      dv.write_block(MemKind::kSram, sp.kern_vec, gbuf);
      bias_f = q.bias.empty() ? q15_t{0} : dv.read(MemKind::kFram, ctx.img().b_base + f);
      cur_f = f;
    }

    for (std::size_t j = 0; j < ow; ++j) {
      // Window gather (SRAM -> SRAM), pruned positions skipped.
      dv.cpu_ops(2.0 * static_cast<double>(gather));
      dv.read_gather(MemKind::kSram, sp.input_stage + i * iw + j, lp.x_gather, lp.x_span,
                     gbuf, /*offsets_in_span=*/true);
      dv.write_block(MemKind::kSram, sp.win_vec, gbuf);
      const std::int64_t acc = dv.lea_mac(sp.win_vec, sp.kern_vec, gather);
      q15_t v = fx::narrow_q30(acc, rshift, ctx.stats);
      if (!q.bias.empty()) v = fx::add_sat(v, bias_f, ctx.stats);
      rowbuf[j] = v;
    }
    dv.cpu_ops(4.0 * static_cast<double>(ow));  // narrow + bias + store setup
    dv.write_block(MemKind::kSram, sp.row_stage, rowbuf);

    // Bulk-commit the finished output row.
    move_words(dv, MemKind::kSram, sp.row_stage, MemKind::kFram,
               ctx.out_addr + (f * oh + i) * ow, ow);
    if (hooks.committed) hooks.committed(unit);
  }
}

// ---------------------------------------------------------------- Conv1D

void run_conv1d(ExecCtx& ctx, std::size_t start_unit, const UnitHooks& hooks) {
  dev::Device& dv = ctx.dev;
  const QLayer& q = ctx.q();
  const SramPlan& sp = ctx.cm.sram;
  const LayerPlan& lp = ctx.plan();
  ArenaRef ar(ctx);
  const std::size_t ol = q.out_shape[1];
  const std::size_t gather = q.in_ch * q.k;
  const int rshift = acc_rshift(q);

  check(q.in_size() <= sp.input_stage_words, "conv1d: input stage overflow");
  move_words(dv, MemKind::kFram, ctx.in_addr, MemKind::kSram, sp.input_stage, q.in_size());

  const Span gbuf = ScratchArena::need(ar->gather, gather);
  const Span rowbuf = ScratchArena::need(ar->row, ol);

  for (std::size_t f = start_unit; f < q.out_ch; ++f) {
    if (hooks.boundary) hooks.boundary(f);
    // Filter weights are contiguous in FRAM: a straight block read.
    dv.cpu_ops(2.0 * static_cast<double>(gather));
    dv.read_block(MemKind::kFram, ctx.img().w_base + f * gather, gbuf);
    dv.write_block(MemKind::kSram, sp.kern_vec, gbuf);
    const q15_t bias_f = q.bias.empty() ? q15_t{0} : dv.read(MemKind::kFram, ctx.img().b_base + f);

    for (std::size_t i = 0; i < ol; ++i) {
      dv.cpu_ops(2.0 * static_cast<double>(gather));
      dv.read_gather(MemKind::kSram, sp.input_stage + i, lp.x_gather, lp.x_span, gbuf,
                     /*offsets_in_span=*/true);
      dv.write_block(MemKind::kSram, sp.win_vec, gbuf);
      const std::int64_t acc = dv.lea_mac(sp.win_vec, sp.kern_vec, gather);
      q15_t v = fx::narrow_q30(acc, rshift, ctx.stats);
      if (!q.bias.empty()) v = fx::add_sat(v, bias_f, ctx.stats);
      rowbuf[i] = v;
    }
    dv.cpu_ops(4.0 * static_cast<double>(ol));
    dv.write_block(MemKind::kSram, sp.row_stage, rowbuf);
    move_words(dv, MemKind::kSram, sp.row_stage, MemKind::kFram, ctx.out_addr + f * ol, ol);
    if (hooks.committed) hooks.committed(f);
  }
}

// ---------------------------------------------------------------- Dense

void run_dense(ExecCtx& ctx, std::size_t start_unit, const UnitHooks& hooks) {
  dev::Device& dv = ctx.dev;
  const QLayer& q = ctx.q();
  const SramPlan& sp = ctx.cm.sram;
  const std::size_t in = q.in_ch, out = q.out_ch;
  const std::size_t chunks = div_ceil(in, quant::kDenseChunk);
  const std::size_t nblocks = dense_neuron_blocks(q);
  const int guard = quant::dense_guard_shift(in);
  const int rshift = acc_rshift(q) - guard;

  ArenaRef ar(ctx);

  if (start_unit == 0) {
    const Span zeros = ScratchArena::need(ar->acc, 2 * out);
    std::fill(zeros.begin(), zeros.end(), q15_t{0});
    dv.write_block(MemKind::kSram, sp.acc32, zeros);
  }
  // start_unit > 0 contract: caller restored acc32 such that neurons in
  // blocks < (start_unit % nblocks) have chunks [0, start_unit/nblocks]
  // folded and the rest have chunks [0, start_unit/nblocks) folded.

  const std::size_t c0 = start_unit / nblocks;
  for (std::size_t c = c0; c < chunks; ++c) {
    const std::size_t base = c * quant::kDenseChunk;
    const std::size_t len = std::min(quant::kDenseChunk, in - base);
    move_words(dv, MemKind::kFram, ctx.in_addr + base, MemKind::kSram, sp.input_stage, len);
    const std::size_t nb0 = c == c0 ? start_unit % nblocks : 0;
    for (std::size_t nb = nb0; nb < nblocks; ++nb) {
      const std::size_t unit = c * nblocks + nb;
      if (hooks.boundary) hooks.boundary(unit);
      const std::size_t o_lo = nb * kDenseNeuronBlock;
      const std::size_t o_hi = std::min(o_lo + kDenseNeuronBlock, out);
      for (std::size_t o = o_lo; o < o_hi; ++o) {
        move_words(dv, MemKind::kFram, ctx.img().w_base + o * in + base, MemKind::kSram,
                   sp.kern_vec, len);
        const std::int64_t chunk = dv.lea_mac(sp.input_stage, sp.kern_vec, len);
        dv.cpu_ops(6);
        const std::int64_t folded =
            static_cast<std::int64_t>(read_acc32(dv, MemKind::kSram, sp.acc32, o)) +
            (chunk >> guard);  // fits 32 bits by guard construction
        write_acc32(dv, MemKind::kSram, sp.acc32, o, static_cast<std::int32_t>(folded));
      }
      if (hooks.committed) hooks.committed(unit);
    }
  }

  // Narrow all neurons and bulk-commit.
  const Span accbuf = ScratchArena::need(ar->acc, 2 * out);
  dv.read_block(MemKind::kSram, sp.acc32, accbuf);
  const Span rowbuf = ScratchArena::need(ar->row, out);
  std::span<const q15_t> biasbuf;
  if (!q.bias.empty()) {
    const Span bb = ScratchArena::need(ar->bias, out);
    dv.read_block(MemKind::kFram, ctx.img().b_base, bb);
    biasbuf = bb;
  }
  dv.cpu_ops(4.0 * static_cast<double>(out));
  for (std::size_t o = 0; o < out; ++o) {
    q15_t v = fx::narrow_q30(static_cast<std::int64_t>(unpack_acc32(accbuf, o)), rshift,
                             ctx.stats);
    if (!biasbuf.empty()) v = fx::add_sat(v, biasbuf[o], ctx.stats);
    rowbuf[o] = v;
  }
  dv.write_block(MemKind::kSram, sp.row_stage, rowbuf);
  move_words(dv, MemKind::kSram, sp.row_stage, MemKind::kFram, ctx.out_addr, out);
}

// ---------------------------------------------------------------- CPU layers

void run_cpu_layer(ExecCtx& ctx, std::size_t start_unit, const UnitHooks& hooks) {
  dev::Device& dv = ctx.dev;
  const QLayer& q = ctx.q();
  const std::size_t n = q.out_size();
  const std::size_t units = div_ceil(n, kCpuUnit);
  ArenaRef ar(ctx);

  for (std::size_t u = start_unit; u < units; ++u) {
    if (hooks.boundary) hooks.boundary(u);
    const std::size_t lo = u * kCpuUnit;
    const std::size_t hi = std::min(lo + kCpuUnit, n);
    switch (q.kind) {
      case QKind::kReLU: {
        const Span buf = ScratchArena::need(ar->row, hi - lo);
        dv.read_block(MemKind::kFram, ctx.in_addr + lo, buf);
        dv.cpu_ops(2.0 * static_cast<double>(hi - lo));
        for (auto& v : buf) v = std::max<q15_t>(v, 0);
        dv.write_block(MemKind::kFram, ctx.out_addr + lo, buf);
        break;
      }
      case QKind::kMaxPool2D: {
        const std::size_t ihh = q.in_shape[1], iww = q.in_shape[2];
        const std::size_t ohh = q.out_shape[1], oww = q.out_shape[2];
        for (std::size_t e = lo; e < hi; ++e) {
          const std::size_t ch = e / (ohh * oww);
          const std::size_t i = (e / oww) % ohh;
          const std::size_t j = e % oww;
          q15_t m = fx::kQ15Min;
          for (std::size_t di = 0; di < 2; ++di) {
            for (std::size_t dj = 0; dj < 2; ++dj) {
              m = std::max(m, dv.read(MemKind::kFram,
                                      ctx.in_addr + (ch * ihh + 2 * i + di) * iww + 2 * j + dj));
            }
          }
          dv.cpu_ops(5);
          dv.write(MemKind::kFram, ctx.out_addr + e, m);
        }
        break;
      }
      case QKind::kFlatten:
        move_words(dv, MemKind::kFram, ctx.in_addr + lo, MemKind::kFram, ctx.out_addr + lo,
                   hi - lo);
        break;
      default:
        fail("run_cpu_layer: not a CPU layer");
    }
    if (hooks.committed) hooks.committed(u);
  }
}

}  // namespace

// ---------------------------------------------------------------- BCM (Alg. 1)

void run_bcm(ExecCtx& ctx, BcmState st, BcmObserver* obs) {
  dev::Device& dv = ctx.dev;
  const QLayer& q = ctx.q();
  const SramPlan& sp = ctx.cm.sram;
  const LayerPlan& lp = ctx.plan();
  ArenaRef ar(ctx);
  const std::size_t k = q.k;
  const int lg = ilog2(k);
  const std::size_t in = q.in_size();
  const int row_rshift = lg + q.out_exp - q.w_exp - q.in_exp;

  BcmObserver null_obs;
  if (obs == nullptr) obs = &null_obs;

  const std::size_t start_bi = st.block / q.bq;
  for (std::size_t bi = start_bi; bi < q.bp; ++bi) {
    const bool resumed_row = (bi == start_bi);
    const std::size_t j0 = resumed_row ? st.block % q.bq : 0;

    // Fresh rows start with a zero accumulator; a resumed row relies on
    // the caller having restored it (or j0 == 0 && stage == kLoad, where
    // nothing has been accumulated yet).
    if (!resumed_row || (j0 == 0 && st.stage == BcmStage::kLoad)) {
      const Span zeros = ScratchArena::need(ar->acc, 4 * k);
      std::fill(zeros.begin(), zeros.end(), q15_t{0});
      dv.write_block(MemKind::kSram, sp.acc32, zeros);
    }

    for (std::size_t bj = j0; bj < q.bq; ++bj) {
      const std::size_t block = bi * q.bq + bj;
      const bool resumed_block = resumed_row && bj == j0;
      BcmStage stage = resumed_block ? st.stage : BcmStage::kLoad;
      int exp_x = resumed_block ? st.exp_x : 0;
      int exp_w = resumed_block ? st.exp_w : 0;
      int exp_p = resumed_block ? st.exp_p : 0;

      // Stage machine with fall-through (Fig. 6's b0-b2 control bits).
      if (stage == BcmStage::kLoad) {
        // x_j block (zero-padded tail), w_ij first column.
        const std::size_t base = bj * k;
        const std::size_t real = base < in ? std::min(k, in - base) : 0;
        if (real > 0) {
          move_words(dv, MemKind::kFram, ctx.in_addr + base, MemKind::kSram, sp.x_blk, real);
        }
        if (real < k) {
          const Span zeros = ScratchArena::need(ar->row, k - real);
          std::fill(zeros.begin(), zeros.end(), q15_t{0});
          dv.cpu_ops(1.0 * static_cast<double>(k - real));
          dv.write_block(MemKind::kSram, sp.x_blk + real, zeros);
        }
        move_words(dv, MemKind::kFram, ctx.img().w_base + block * k, MemKind::kSram, sp.w_blk,
                   k);
        // COMPLEX: interleave with zero imaginary parts (Algorithm 1 l.5-6).
        const Span blk = ScratchArena::need(ar->row, k);
        const Span inter = ScratchArena::need(ar->spect, 2 * k);
        dv.cpu_ops(2.0 * static_cast<double>(k));
        dv.read_block(MemKind::kSram, sp.x_blk, blk);
        for (std::size_t t = 0; t < k; ++t) {
          inter[2 * t] = blk[t];
          inter[2 * t + 1] = 0;
        }
        dv.write_block(MemKind::kSram, sp.fft_x, inter);
        dv.read_block(MemKind::kSram, sp.w_blk, blk);
        for (std::size_t t = 0; t < k; ++t) {
          inter[2 * t] = blk[t];
          inter[2 * t + 1] = 0;
        }
        dv.write_block(MemKind::kSram, sp.fft_w, inter);
        stage = BcmStage::kFftX;
        obs->on_stage(ctx, {block, stage, exp_x, exp_w, exp_p});
      }
      if (stage == BcmStage::kFftX) {
        exp_x = dv.lea_fft(sp.fft_x, k, ctx.scaling, ctx.stats);
        stage = BcmStage::kFftW;
        obs->on_stage(ctx, {block, stage, exp_x, exp_w, exp_p});
      }
      if (stage == BcmStage::kFftW) {
        exp_w = dv.lea_fft(sp.fft_w, k, ctx.scaling, ctx.stats);
        stage = BcmStage::kMpy;
        obs->on_stage(ctx, {block, stage, exp_x, exp_w, exp_p});
      }
      if (stage == BcmStage::kMpy) {
        // BFP product guard (see dsp::product_guard): scan both spectra,
        // shift the louder one(s) so the complex multiply cannot saturate.
        if (ctx.scaling == dsp::FftScaling::kBlockFloat) {
          int mx = 0, mw = 0;
          const Span spec = ScratchArena::need(ar->spect, 2 * k);
          dv.cpu_ops(2.0 * static_cast<double>(2 * k));
          dv.read_block(MemKind::kSram, sp.fft_x, spec);
          for (const q15_t v : spec) mx = std::max(mx, std::abs(static_cast<int>(v)));
          dv.read_block(MemKind::kSram, sp.fft_w, spec);
          for (const q15_t v : spec) mw = std::max(mw, std::abs(static_cast<int>(v)));
          const dsp::GuardShifts g = dsp::product_guard(mw, mx);
          if (g.w > 0) {
            dv.lea_shift(sp.fft_w, sp.fft_w, 2 * k, -g.w);
            exp_w += g.w;
          }
          if (g.x > 0) {
            dv.lea_shift(sp.fft_x, sp.fft_x, 2 * k, -g.x);
            exp_x += g.x;
          }
        }
        dv.lea_cmul(sp.fft_x, sp.fft_w, sp.fft_w, k, ctx.stats);  // product -> fft_w
        stage = BcmStage::kIfft;
        obs->on_stage(ctx, {block, stage, exp_x, exp_w, exp_p});
      }
      if (stage == BcmStage::kIfft) {
        exp_p = dv.lea_ifft(sp.fft_w, k, ctx.scaling, ctx.stats);
        stage = BcmStage::kAcc;
        obs->on_stage(ctx, {block, stage, exp_x, exp_w, exp_p});
      }
      // kAcc: REAL extraction + fold into the row accumulator.
      {
        const int shift = exp_x + exp_w + exp_p + lg;
        check(shift >= 0, "run_bcm: negative aligned exponent");
        const Span re = ScratchArena::need(ar->row, k);
        dv.read_gather(MemKind::kSram, sp.fft_w, lp.real_gather, 2 * k, re,
                       /*offsets_in_span=*/true);
        const Span accbuf = ScratchArena::need(ar->acc, 4 * k);
        dv.read_block(MemKind::kSram, sp.acc32, accbuf);
        dv.cpu_ops(3.0 * static_cast<double>(k));
        for (std::size_t t = 0; t < k; ++t) {
          pack_acc64(accbuf, t,
                     unpack_acc64(accbuf, t) + (static_cast<std::int64_t>(re[t]) << shift));
        }
        dv.write_block(MemKind::kSram, sp.acc32, accbuf);
        obs->on_block_done(ctx, block);
      }
    }

    // SCALE-UP + bias + commit of output block row bi (Algorithm 1 l.9).
    {
      const Span accbuf = ScratchArena::need(ar->acc, 4 * k);
      dv.read_block(MemKind::kSram, sp.acc32, accbuf);
      const Span rowbuf = ScratchArena::need(ar->row, k);
      std::span<const q15_t> biasbuf;
      if (!q.bias.empty()) {
        const Span bb = ScratchArena::need(ar->bias, k);
        dv.read_block(MemKind::kFram, ctx.img().b_base + bi * k, bb);
        biasbuf = bb;
      }
      dv.cpu_ops(4.0 * static_cast<double>(k));
      for (std::size_t t = 0; t < k; ++t) {
        q15_t v = fx::narrow_q30(unpack_acc64(accbuf, t), row_rshift, ctx.stats);
        if (!biasbuf.empty()) v = fx::add_sat(v, biasbuf[t], ctx.stats);
        rowbuf[t] = v;
      }
      dv.write_block(MemKind::kSram, sp.row_stage, rowbuf);
    }
    move_words(dv, MemKind::kSram, sp.row_stage, MemKind::kFram, ctx.out_addr + bi * k, k);
    obs->on_row_committed(ctx, bi);

    // Next row starts fresh.
    st = BcmState{(bi + 1) * q.bq, BcmStage::kLoad, 0, 0, 0};
  }
}

// ---------------------------------------------------------------- dispatch

std::size_t unit_count(const QLayer& l) {
  switch (l.kind) {
    case QKind::kConv2D: return l.out_ch * l.out_shape[1];
    case QKind::kConv1D: return l.out_ch;
    case QKind::kDense:
      return div_ceil(l.in_ch, quant::kDenseChunk) * dense_neuron_blocks(l);
    case QKind::kBcmDense: return l.bp;  // committed rows
    case QKind::kMaxPool2D:
    case QKind::kReLU:
    case QKind::kFlatten: return div_ceil(l.out_size(), kCpuUnit);
  }
  fail("unit_count: unknown kind");
}

namespace {

// Adapter: expose BCM row commits as generic units. (Runtimes that need
// stage-level observation — FLEX — call run_bcm directly instead.)
class BcmUnitAdapter : public BcmObserver {
 public:
  explicit BcmUnitAdapter(const UnitHooks& hooks) : hooks_(hooks) {}
  void on_row_committed(ExecCtx&, std::size_t bi) override {
    if (hooks_.committed) hooks_.committed(bi);
  }

 private:
  const UnitHooks& hooks_;
};

}  // namespace

void run_layer(ExecCtx& ctx, std::size_t start_unit, const UnitHooks& hooks) {
  switch (ctx.q().kind) {
    case QKind::kConv2D: run_conv2d(ctx, start_unit, hooks); return;
    case QKind::kConv1D: run_conv1d(ctx, start_unit, hooks); return;
    case QKind::kDense: run_dense(ctx, start_unit, hooks); return;
    case QKind::kBcmDense: {
      BcmUnitAdapter adapter(hooks);
      run_bcm(ctx, BcmState{start_unit * ctx.q().bq, BcmStage::kLoad, 0, 0, 0}, &adapter);
      return;
    }
    case QKind::kMaxPool2D:
    case QKind::kReLU:
    case QKind::kFlatten: run_cpu_layer(ctx, start_unit, hooks); return;
  }
  fail("run_layer: unknown kind");
}

// ------------------------------------------------------- tile-granular paths

namespace {

// Reduction length of one output element under the tile runtime: the
// gather-table length for conv (live positions only — pruned positions
// carry zero weights, so skipping them is value-identical to SONIC's
// full walk), the input fan-in for Dense.
std::size_t tile_reduction_len(const CompiledModel& cm, std::size_t layer) {
  const QLayer& q = cm.model.layers[layer];
  switch (q.kind) {
    case QKind::kDense: return q.in_ch;
    case QKind::kConv2D:
    case QKind::kConv1D: return cm.plans[layer].w_gather.size();
    default: return 0;
  }
}

// Advances past a finished outer element; true when the layer is done.
bool tile_advance_outer(TileCursor& cur, std::size_t outer_count) {
  cur.tile = 0;
  cur.acc = 0;
  if (++cur.outer == outer_count) {
    cur.outer = 0;
    ++cur.layer;
    return true;
  }
  return false;
}

}  // namespace

std::size_t tile_layer_units(const CompiledModel& cm, std::size_t layer,
                             std::size_t tile_elems) {
  const QLayer& q = cm.model.layers[layer];
  switch (q.kind) {
    case QKind::kDense:
      return q.out_ch * div_ceil(q.in_ch, tile_elems);
    case QKind::kConv2D:
    case QKind::kConv1D:
      return q.out_size() * div_ceil(tile_reduction_len(cm, layer), tile_elems);
    case QKind::kBcmDense:
      return 0;
    default:
      return div_ceil(q.out_size(), tile_elems);
  }
}

std::size_t tile_total_units(const CompiledModel& cm, std::size_t tile_elems) {
  std::size_t n = 0;
  for (std::size_t l = 0; l < cm.model.layers.size(); ++l) {
    n += tile_layer_units(cm, l, tile_elems);
  }
  return n;
}

bool run_tile(ExecCtx& ctx, TileCursor& cur, std::size_t tile_elems) {
  dev::Device& dv = ctx.dev;
  const QLayer& q = ctx.q();
  const LayerPlan& lp = ctx.plan();
  const Addr in = ctx.in_addr;
  const Addr out = ctx.out_addr;
  const Addr wb = ctx.img().w_base;
  const Addr bb = ctx.img().b_base;
  ArenaRef ar(ctx);

  switch (q.kind) {
    case QKind::kDense: {
      // SONIC's dense math at tile granularity: the guard shift keeps the
      // running 32-bit sum overflow-free, so the partial accumulator is
      // tile-size-independent and bit-identical to SONIC's.
      const std::size_t nin = q.in_ch;
      const std::size_t ntiles = div_ceil(nin, tile_elems);
      const int guard = quant::dense_guard_shift(nin);
      const int rshift = acc_rshift(q) - guard;
      const std::size_t o = cur.outer;
      const std::size_t lo = cur.tile * tile_elems;
      const std::size_t n = std::min(lo + tile_elems, nin) - lo;
      const Span xbuf = ScratchArena::need(ar->row, n);
      const Span wbuf = ScratchArena::need(ar->gather, n);
      dv.read_block(MemKind::kFram, in + lo, xbuf);
      dv.read_block(MemKind::kFram, wb + o * nin + lo, wbuf);
      auto acc = static_cast<std::int32_t>(cur.acc);
      for (std::size_t i = 0; i < n; ++i) {
        dv.cpu_mac_cycles();
        dv.cpu_ops(2);
        acc += static_cast<std::int32_t>(fx::mul_q30(xbuf[i], wbuf[i]) >> guard);
      }
      if (cur.tile + 1 == ntiles) {
        dv.cpu_ops(4);
        q15_t v = fx::narrow_q30(static_cast<std::int64_t>(acc), rshift);
        if (!q.bias.empty()) v = fx::add_sat(v, dv.read(MemKind::kFram, bb + o));
        dv.write(MemKind::kFram, out + o, v);
        return tile_advance_outer(cur, q.out_ch);
      }
      ++cur.tile;
      cur.acc = acc;
      return false;
    }

    case QKind::kConv2D:
    case QKind::kConv1D: {
      // Operands come straight from FRAM through gather-table subranges —
      // the per-element cost matches SONIC's two scalar reads per MAC,
      // with one bounds check per tile instead of per word.
      const std::size_t red = tile_reduction_len(ctx.cm, ctx.layer);
      const std::size_t ntiles = div_ceil(red, tile_elems);
      const int rshift = acc_rshift(q);
      const std::size_t px = cur.outer;
      std::size_t f = 0;
      Addr xbase = 0;
      if (q.kind == QKind::kConv2D) {
        const std::size_t oh = q.out_shape[1], ow = q.out_shape[2];
        f = px / (oh * ow);
        const std::size_t i = (px / ow) % oh;
        const std::size_t j = px % ow;
        xbase = in + i * q.in_shape[2] + j;
      } else {
        const std::size_t ol = q.out_shape[1];
        f = px / ol;
        xbase = in + px % ol;
      }
      const std::size_t wstride =
          q.kind == QKind::kConv2D ? q.in_ch * q.kh * q.kw : q.in_ch * q.k;
      const std::size_t lo = cur.tile * tile_elems;
      const std::size_t n = std::min(lo + tile_elems, red) - lo;
      const Span xbuf = ScratchArena::need(ar->row, n);
      const Span wbuf = ScratchArena::need(ar->gather, n);
      const std::span<const std::uint32_t> xoff(lp.x_gather);
      const std::span<const std::uint32_t> woff(lp.w_gather);
      dv.read_gather(MemKind::kFram, xbase, xoff.subspan(lo, n), lp.x_span, xbuf,
                     /*offsets_in_span=*/true);
      dv.read_gather(MemKind::kFram, wb + f * wstride, woff.subspan(lo, n), lp.w_span,
                     wbuf, /*offsets_in_span=*/true);
      std::int64_t acc = cur.acc;
      for (std::size_t e = 0; e < n; ++e) {
        dv.cpu_mac_cycles();
        dv.cpu_ops(2);
        acc += fx::mul_q30(xbuf[e], wbuf[e]);
      }
      if (cur.tile + 1 == ntiles) {
        dv.cpu_ops(4);
        q15_t v = fx::narrow_q30(acc, rshift);
        if (!q.bias.empty()) v = fx::add_sat(v, dv.read(MemKind::kFram, bb + f));
        dv.write(MemKind::kFram, out + px, v);
        return tile_advance_outer(cur, q.out_size());
      }
      ++cur.tile;
      cur.acc = acc;
      return false;
    }

    case QKind::kReLU:
    case QKind::kFlatten:
    case QKind::kMaxPool2D: {
      // Element layers: one tile is a block of tile_elems output elements
      // (sized by the spec, not a fixed 16 — a micro-capacitor burst must
      // cover one whole block).
      const std::size_t nelem = q.out_size();
      const std::size_t blocks = div_ceil(nelem, tile_elems);
      const std::size_t lo = cur.outer * tile_elems;
      const std::size_t hi = std::min(lo + tile_elems, nelem);
      for (std::size_t e = lo; e < hi; ++e) {
        q15_t v;
        if (q.kind == QKind::kMaxPool2D) {
          const std::size_t ihh = q.in_shape[1], iww = q.in_shape[2];
          const std::size_t ohh = q.out_shape[1], oww = q.out_shape[2];
          const std::size_t ch = e / (ohh * oww);
          const std::size_t i = (e / oww) % ohh;
          const std::size_t j = e % oww;
          v = fx::kQ15Min;
          for (std::size_t di = 0; di < 2; ++di) {
            for (std::size_t dj = 0; dj < 2; ++dj) {
              v = std::max(v, dv.read(MemKind::kFram,
                                      in + (ch * ihh + 2 * i + di) * iww + 2 * j + dj));
            }
          }
          dv.cpu_ops(5);
        } else {
          v = dv.read(MemKind::kFram, in + e);
          dv.cpu_ops(2);
          if (q.kind == QKind::kReLU) v = std::max<q15_t>(v, 0);
        }
        dv.write(MemKind::kFram, out + e, v);
      }
      return tile_advance_outer(cur, blocks);
    }

    case QKind::kBcmDense:
      fail("tile runtime has no BCM support (run it on the dense model)");
  }
  fail("run_tile: unknown kind");
}

// ---------------------------------------------------------------- acc helpers

std::int32_t read_acc32(dev::Device& dev, MemKind mem, Addr base, std::size_t idx) {
  const auto lo = static_cast<std::uint16_t>(dev.read(mem, base + 2 * idx));
  const auto hi = static_cast<std::uint16_t>(dev.read(mem, base + 2 * idx + 1));
  return static_cast<std::int32_t>((static_cast<std::uint32_t>(hi) << 16) | lo);
}

void write_acc32(dev::Device& dev, MemKind mem, Addr base, std::size_t idx, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  dev.write(mem, base + 2 * idx, static_cast<fx::q15_t>(u & 0xffff));
  dev.write(mem, base + 2 * idx + 1, static_cast<fx::q15_t>((u >> 16) & 0xffff));
}

std::int64_t read_acc64(dev::Device& dev, MemKind mem, Addr base, std::size_t idx) {
  std::uint64_t u = 0;
  for (int w = 3; w >= 0; --w) {
    u = (u << 16) | static_cast<std::uint16_t>(dev.read(mem, base + 4 * idx + w));
  }
  return static_cast<std::int64_t>(u);
}

void write_acc64(dev::Device& dev, MemKind mem, Addr base, std::size_t idx, std::int64_t v) {
  auto u = static_cast<std::uint64_t>(v);
  for (int w = 0; w < 4; ++w) {
    dev.write(mem, base + 4 * idx + w, static_cast<fx::q15_t>(u & 0xffff));
    u >>= 16;
  }
}

}  // namespace ehdnn::ace
