#include "core/ace/compiled_model.h"

#include <algorithm>

#include "util/check.h"

namespace ehdnn::ace {

namespace {

// Scratch demands of a single layer, merged into the running plan maxima.
struct ScratchNeed {
  std::size_t input_stage = 0;
  std::size_t kern_vec = 0;
  std::size_t win_vec = 0;
  std::size_t row_stage = 0;
  std::size_t fft = 0;
  std::size_t acc32 = 0;
  std::size_t blk = 0;
};

ScratchNeed layer_need(const quant::QLayer& l) {
  ScratchNeed n;
  switch (l.kind) {
    case quant::QKind::kConv2D: {
      const std::size_t gather = l.in_ch * l.live_positions();
      n.input_stage = l.in_size();
      n.kern_vec = gather;
      n.win_vec = gather;
      n.row_stage = l.out_shape[2];  // one output row
      break;
    }
    case quant::QKind::kConv1D: {
      const std::size_t gather = l.in_ch * l.k;
      n.input_stage = l.in_size();
      n.kern_vec = gather;
      n.win_vec = gather;
      n.row_stage = l.out_shape[1];  // one filter's full output
      break;
    }
    case quant::QKind::kDense: {
      // Chunked row streaming: x chunk + w chunk + guarded 32-bit partials
      // for all output neurons (2 words each).
      const std::size_t chunk = std::min(l.in_ch, quant::kDenseChunk);
      n.input_stage = chunk;
      n.kern_vec = chunk;
      n.acc32 = 2 * l.out_ch;
      n.row_stage = std::min(l.out_ch, quant::kDenseChunk);
      break;
    }
    case quant::QKind::kBcmDense: {
      n.blk = l.k;
      n.fft = 2 * l.k;   // interleaved complex, each of W and X
      n.acc32 = 4 * l.k; // one block row of 64-bit accumulators (4 words)
      n.row_stage = l.k; // narrowed q15 output block
      break;
    }
    case quant::QKind::kMaxPool2D:
    case quant::QKind::kReLU:
    case quant::QKind::kFlatten:
      break;  // CPU-direct, no SRAM staging (paper Fig. 3)
  }
  return n;
}

// The compile-time gather tables the kernels index at run time.
LayerPlan layer_plan(const quant::QLayer& l) {
  LayerPlan p;
  switch (l.kind) {
    case quant::QKind::kConv2D: {
      for (std::size_t r = 0; r < l.kh; ++r) {
        for (std::size_t s = 0; s < l.kw; ++s) {
          if (l.shape_mask.empty() || l.shape_mask[r * l.kw + s]) {
            p.live_pos.emplace_back(static_cast<std::uint32_t>(r),
                                    static_cast<std::uint32_t>(s));
          }
        }
      }
      const std::size_t ih = l.in_shape[1], iw = l.in_shape[2];
      for (std::size_t c = 0; c < l.in_ch; ++c) {
        for (const auto& [r, s] : p.live_pos) {
          p.w_gather.push_back(static_cast<std::uint32_t>((c * l.kh + r) * l.kw + s));
          p.x_gather.push_back(static_cast<std::uint32_t>((c * ih + r) * iw + s));
        }
      }
      break;
    }
    case quant::QKind::kConv1D: {
      const std::size_t il = l.in_shape[1];
      for (std::size_t c = 0; c < l.in_ch; ++c) {
        for (std::size_t t = 0; t < l.k; ++t) {
          p.w_gather.push_back(static_cast<std::uint32_t>(c * l.k + t));
          p.x_gather.push_back(static_cast<std::uint32_t>(c * il + t));
        }
      }
      break;
    }
    case quant::QKind::kBcmDense: {
      for (std::size_t t = 0; t < l.k; ++t) {
        p.real_gather.push_back(static_cast<std::uint32_t>(2 * t));
      }
      break;
    }
    default:
      break;
  }
  for (const auto o : p.w_gather) p.w_span = std::max<std::size_t>(p.w_span, o + 1);
  for (const auto o : p.x_gather) p.x_span = std::max<std::size_t>(p.x_span, o + 1);
  return p;
}

}  // namespace

bool use_dma(const dev::CostModel& cm, std::size_t words) {
  // CPU copy loop: load + store + pointer/loop upkeep per word.
  const double cpu = static_cast<double>(words) *
                     (cm.cycles_fram_word + cm.cycles_sram_word + 2.0 * cm.cycles_cpu_op);
  const double dma = cm.cycles_dma_setup + cm.cycles_dma_word * static_cast<double>(words);
  return dma < cpu;
}

void move_words(dev::Device& dev, dev::MemKind src_mem, dev::Addr src, dev::MemKind dst_mem,
                dev::Addr dst, std::size_t words) {
  if (use_dma(dev.cost(), words)) {
    dev.dma_copy(src_mem, src, dst_mem, dst, words);
    return;
  }
  dev.cpu_copy(src_mem, src, dst_mem, dst, words);
}

CompiledModel compile(const quant::QuantModel& qm, dev::Device& dev, bool co_resident) {
  CompiledModel cm;
  cm.model = qm;

  // A co-resident compile places this image AFTER whatever is already in
  // FRAM (the adaptive scheduler ships two model variants in one device
  // image); otherwise the allocator resets and the image starts at the
  // base. SRAM scratch plans always overlap — only one model executes
  // per power cycle, and SRAM is scrambled at every reboot anyway.
  auto& fram = dev.fram();
  if (!co_resident) fram.reset_allocator();

  // Circular activation buffers (Fig. 5): two, each max(L_i) words.
  cm.act_words = qm.max_activation_words();
  cm.act_a = fram.alloc(cm.act_words, "act_a");
  cm.act_b = fram.alloc(cm.act_words, "act_b");

  // Weights and biases, per layer.
  std::size_t max_k = 0;
  for (std::size_t l = 0; l < qm.layers.size(); ++l) {
    const auto& q = qm.layers[l];
    LayerImage img;
    if (!q.weights.empty()) {
      img.w_base = fram.alloc(q.weights.size(), "w" + std::to_string(l));
      for (std::size_t i = 0; i < q.weights.size(); ++i) fram.poke(img.w_base + i, q.weights[i]);
    }
    if (!q.bias.empty()) {
      img.b_base = fram.alloc(q.bias.size(), "b" + std::to_string(l));
      for (std::size_t i = 0; i < q.bias.size(); ++i) fram.poke(img.b_base + i, q.bias[i]);
    }
    if (q.kind == quant::QKind::kBcmDense) max_k = std::max(max_k, q.k);
    cm.images.push_back(img);
    cm.plans.push_back(layer_plan(q));
  }

  // Intermittent-runtime control area: generous fixed header plus two
  // checkpoint slots sized for the worst-case FLEX payload: both complex
  // FFT buffers, the accumulator row and the real blocks, plus exponents
  // and indices.
  cm.ctrl_words = 32;
  cm.ctrl_base = fram.alloc(cm.ctrl_words, "ctrl");
  cm.ckpt_slot_words = 4 * (2 * max_k) + 2 * max_k + 2 * max_k + 64;
  cm.ckpt_base = fram.alloc(2 * cm.ckpt_slot_words, "ckpt");

  // Parity-slot space for runtimes that keep accumulators non-volatile
  // (SONIC per-element, TAILS per-chunk / per-BCM-block): two slots, sized
  // for the widest dense layer's 32-bit partials or a BCM accumulator row,
  // whichever is larger.
  std::size_t max_dense_out = 1;
  for (const auto& q : qm.layers) {
    if (q.kind == quant::QKind::kDense) max_dense_out = std::max(max_dense_out, q.out_ch);
  }
  cm.nv_acc_slot_words = std::max(2 * max_dense_out, 4 * max_k);
  cm.nv_acc_base = fram.alloc(2 * cm.nv_acc_slot_words, "nv_acc");

  cm.fram_words_used = fram.allocated_words();

  // --- SRAM scratch plan: maxima over layers -----------------------------
  ScratchNeed max_need;
  for (const auto& q : qm.layers) {
    const ScratchNeed n = layer_need(q);
    max_need.input_stage = std::max(max_need.input_stage, n.input_stage);
    max_need.kern_vec = std::max(max_need.kern_vec, n.kern_vec);
    max_need.win_vec = std::max(max_need.win_vec, n.win_vec);
    max_need.row_stage = std::max(max_need.row_stage, n.row_stage);
    max_need.fft = std::max(max_need.fft, n.fft);
    max_need.acc32 = std::max(max_need.acc32, n.acc32);
    max_need.blk = std::max(max_need.blk, n.blk);
  }

  auto& sram = dev.sram();
  sram.reset_allocator();
  SramPlan& sp = cm.sram;
  auto alloc_if = [&sram](std::size_t words, const char* name) -> dev::Addr {
    return words > 0 ? sram.alloc(words, name) : 0;
  };
  sp.input_stage_words = max_need.input_stage;
  sp.input_stage = alloc_if(sp.input_stage_words, "input_stage");
  sp.kern_vec_words = max_need.kern_vec;
  sp.kern_vec = alloc_if(sp.kern_vec_words, "kern_vec");
  sp.win_vec_words = max_need.win_vec;
  sp.win_vec = alloc_if(sp.win_vec_words, "win_vec");
  sp.row_stage_words = max_need.row_stage;
  sp.row_stage = alloc_if(sp.row_stage_words, "row_stage");
  sp.fft_words = max_need.fft;
  sp.fft_w = alloc_if(sp.fft_words, "fft_w");
  sp.fft_x = alloc_if(sp.fft_words, "fft_x");
  sp.acc32_words = max_need.acc32;
  sp.acc32 = alloc_if(sp.acc32_words, "acc32");
  sp.blk_words = max_need.blk;
  sp.x_blk = alloc_if(sp.blk_words, "x_blk");
  sp.w_blk = alloc_if(sp.blk_words, "w_blk");
  sp.total_words = sram.allocated_words();

  return cm;
}

}  // namespace ehdnn::ace
