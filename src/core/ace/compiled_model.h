// ACE compilation: placing a QuantModel onto the device (paper SSIII-B).
//
// FRAM layout (all non-volatile):
//   [act A | act B | per-layer weights+biases | ctrl block | ckpt slots]
// The two activation buffers implement circular-buffer convolution
// (Fig. 5): every layer reads one and writes the other, then the pointers
// swap — max(L_i) words each, regardless of network depth.
//
// SRAM layout (volatile scratch, planned per model):
//   [input stage | kernel vec | window vec | row stage | fft W | fft X |
//    acc32 | x block | w block]
// Only what the largest layer needs is allocated; compile() fails loudly
// if the plan exceeds the 8 KB SRAM, which is exactly the resource check
// RAD's architecture search performs before accepting a candidate.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "device/device.h"
#include "quant/qmodel.h"

namespace ehdnn::ace {

// Tile-runtime cursor record placement inside the ctrl block (see the
// CompiledModel::ctrl_base layout comment below).
inline constexpr std::size_t kTileCursorOffset = 8;
inline constexpr std::size_t kTileSlotWords = 8;

struct LayerImage {
  dev::Addr w_base = 0;  // FRAM, weights (layout as in QLayer)
  dev::Addr b_base = 0;  // FRAM, biases
};

// Per-layer compile-time gather tables: everything the kernels used to
// recompute (or allocate) per invocation is resolved once here, so the
// inner loops are pure bulk device accesses.
struct LayerPlan {
  // Conv2D: live kernel positions (r, s) honoring structured pruning.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> live_pos;
  // Conv: FRAM offsets of one filter's live weights relative to the
  // filter's weight base, in gather order (c-major, then live position).
  std::vector<std::uint32_t> w_gather;
  std::size_t w_span = 0;  // max offset + 1 (single bounds-check window)
  // Conv: SRAM offsets of one input window's live elements relative to
  // input_stage + (top-left corner of the window).
  std::vector<std::uint32_t> x_gather;
  std::size_t x_span = 0;
  // BcmDense: offsets of the real components in an interleaved complex
  // buffer of k elements ({0, 2, ..., 2k-2}) for the REAL extraction.
  std::vector<std::uint32_t> real_gather;
};

// SRAM scratch plan (word addresses; a size of 0 means not needed).
struct SramPlan {
  dev::Addr input_stage = 0;   // staged input feature map (conv) / x vector
  std::size_t input_stage_words = 0;
  dev::Addr kern_vec = 0;      // gathered kernel (conv) / weight row chunk
  std::size_t kern_vec_words = 0;
  dev::Addr win_vec = 0;       // gathered window (conv)
  std::size_t win_vec_words = 0;
  dev::Addr row_stage = 0;     // output row staging before bulk DMA
  std::size_t row_stage_words = 0;
  dev::Addr fft_w = 0;         // interleaved complex W spectrum (2k words)
  dev::Addr fft_x = 0;         // interleaved complex X spectrum (2k words)
  std::size_t fft_words = 0;   // each
  dev::Addr acc32 = 0;         // per-row block accumulator (2 words/elem)
  std::size_t acc32_words = 0;
  dev::Addr x_blk = 0;         // real x block (k)
  dev::Addr w_blk = 0;         // real first-column block (k)
  std::size_t blk_words = 0;

  std::size_t total_words = 0;
};

struct CompiledModel {
  quant::QuantModel model;  // metadata copy (weights also live in FRAM)
  std::vector<LayerImage> images;
  std::vector<LayerPlan> plans;  // parallel to model.layers

  dev::Addr act_a = 0;
  dev::Addr act_b = 0;
  std::size_t act_words = 0;

  // Intermittent-runtime control words. Fixed layout within the block
  // (ctrl_words = 32):
  //   +0..+2                     SONIC/TAILS loop-continuation cursor
  //   +kTileCursorOffset         tile-runtime cursor slot 0
  //   +kTileCursorOffset+kTileSlotWords  tile-runtime cursor slot 1
  // Each tile slot is kTileSlotWords: [0] epoch (written last, 0 =
  // invalid), [1] layer, [2] outer, [3] tile, [4..7] acc64 payload —
  // the double-buffered sub-layer cursor record (core/flex/tile.cpp).
  dev::Addr ctrl_base = 0;
  std::size_t ctrl_words = 0;
  dev::Addr ckpt_base = 0;        // two checkpoint slots (FLEX)
  std::size_t ckpt_slot_words = 0;
  dev::Addr nv_acc_base = 0;      // two parity slots for non-volatile
  std::size_t nv_acc_slot_words = 0;  // accumulators (SONIC/TAILS)

  SramPlan sram;

  // Activation buffer for layer l's input: A for even l, B for odd
  // (the circular swap).
  dev::Addr act_in(std::size_t layer) const { return layer % 2 == 0 ? act_a : act_b; }
  dev::Addr act_out(std::size_t layer) const { return layer % 2 == 0 ? act_b : act_a; }

  std::size_t fram_words_used = 0;
};

// Builds the layout and programs weights into FRAM (cost-free pokes —
// flashing happens at deploy time, not inference time). `co_resident`
// keeps any previously compiled image: the new one is placed after it, so
// two model variants can ship in one device image (what the adaptive
// scheduler's per-boot variant selection runs on). fram_words_used is
// then the cumulative total.
CompiledModel compile(const quant::QuantModel& qm, dev::Device& dev,
                      bool co_resident = false);

// Data-movement decision (SSIII-B "ACE selects the right kind of data
// movement method"): DMA beats a CPU copy loop above a small size; the
// threshold falls out of the cost model.
bool use_dma(const dev::CostModel& cm, std::size_t words);

// Copy helper honoring the decision (same-region or cross-region).
void move_words(dev::Device& dev, dev::MemKind src_mem, dev::Addr src, dev::MemKind dst_mem,
                dev::Addr dst, std::size_t words);

}  // namespace ehdnn::ace
