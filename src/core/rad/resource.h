// Resource estimation for RAD's architecture search (paper SSIII-A).
//
// "The model must fit into the FRAM with acceptable inference time and
// accuracy." Instead of hand-maintained analytic formulas that would
// drift from the runtime, the estimator compiles the candidate onto a
// scratch device and runs one inference under continuous power: latency
// and energy are data-independent (fixed loop bounds), so a single run
// with dummy weights is the exact number.
#pragma once

#include "device/device.h"
#include "nn/model.h"
#include "quant/qmodel.h"

namespace ehdnn::rad {

struct ResourceReport {
  bool fits_sram = false;
  bool fits_fram = false;
  std::size_t fram_bytes = 0;   // weights + activation buffers + control
  std::size_t sram_words = 0;   // scratch plan peak
  std::size_t weight_bytes = 0; // model weights alone
  double latency_s = 0.0;       // continuous-power inference
  double energy_j = 0.0;

  bool fits() const { return fits_sram && fits_fram; }
};

// Estimates resources for an (untrained is fine) float model.
ResourceReport estimate(nn::Model& model, const std::vector<std::size_t>& input_shape,
                        const dev::DeviceConfig& dev_cfg = {});

// Same, for an already-quantized model.
ResourceReport estimate(const quant::QuantModel& qm, const dev::DeviceConfig& dev_cfg = {});

}  // namespace ehdnn::rad
