// RAD architecture search (paper SSIII-A "architecture search").
//
// A small grid search over a conv-pool-conv-pool-FC backbone family for
// 28x28 image tasks: candidates are first filtered by hard resource
// constraints (FRAM footprint, SRAM plan, estimated latency — all from the
// device-model estimator), then the survivors are quick-trained for a few
// epochs and ranked by validation accuracy. This is deliberately the
// paper's shape of search — resource feasibility *before* accuracy —
// rather than a general NAS system.
#pragma once

#include "core/rad/resource.h"
#include "data/dataset.h"
#include "nn/model.h"
#include "util/rng.h"

namespace ehdnn::rad {

struct Candidate {
  std::size_t conv1_filters = 6;
  std::size_t conv2_filters = 16;
  std::size_t fc_width = 256;
  std::size_t bcm_block = 128;     // block size for the first FC
  std::size_t prune_keep = 13;     // live kernel positions in conv2 (of 25)
};

struct SearchConfig {
  std::vector<Candidate> grid;       // empty -> default grid
  std::size_t max_fram_bytes = 256 * 1024;
  double max_latency_s = 1.0;
  int quick_epochs = 2;
  std::size_t batch_size = 16;
  std::size_t num_classes = 10;
};

struct ScoredCandidate {
  Candidate cand;
  ResourceReport resources;
  float quick_accuracy = -1.0f;  // -1: rejected before training
  bool feasible = false;
};

struct SearchResult {
  Candidate best;
  std::vector<ScoredCandidate> scored;
};

// Builds the backbone for a candidate (28x28 single-channel input).
nn::Model build_candidate(const Candidate& c, std::size_t num_classes, Rng& rng);

SearchResult search(const data::TrainTest& data, const SearchConfig& cfg, Rng& rng);

}  // namespace ehdnn::rad
