#include "core/rad/pipeline.h"

#include "compress/structured.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "quant/qexec.h"
#include "quant/quantize.h"
#include "train/loss.h"
#include "util/check.h"

namespace ehdnn::rad {

namespace {

data::TrainTest make_task_data(models::Task task, const RadConfig& cfg, Rng& rng) {
  switch (task) {
    case models::Task::kMnist: return data::make_mnist_like(rng, cfg.train_samples, cfg.test_samples);
    case models::Task::kHar: return data::make_har_like(rng, cfg.train_samples, cfg.test_samples);
    case models::Task::kOkg: return data::make_okg_like(rng, cfg.train_samples, cfg.test_samples);
  }
  fail("make_task_data: unknown task");
}

void collect_layer_reports(nn::Model& model, std::vector<LayerReport>& out) {
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    nn::Layer& layer = model.layer(l);
    LayerReport r;
    r.name = layer.name();
    if (auto* bcm = dynamic_cast<nn::BcmDense*>(&layer)) {
      r.logical_weights = bcm->in_features() * bcm->out_features();
      r.stored_weights = bcm->stored_weights() - bcm->bias().size();
      r.compression = static_cast<double>(bcm->block_size());
      r.method = "BCM k=" + std::to_string(bcm->block_size());
    } else if (auto* conv = dynamic_cast<nn::Conv2D*>(&layer)) {
      r.logical_weights = conv->out_channels() * conv->in_channels() * conv->kernel_h() *
                          conv->kernel_w();
      r.stored_weights = conv->stored_weights() - conv->bias().size();
      r.compression = cmp::shape_compression(*conv);
      r.method = conv->live_positions() < conv->kernel_h() * conv->kernel_w()
                     ? "shape pruning"
                     : "-";
    } else if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
      r.logical_weights = dense->in_features() * dense->out_features();
      r.stored_weights = r.logical_weights;
      r.method = "-";
    } else if (auto* c1 = dynamic_cast<nn::Conv1D*>(&layer)) {
      r.logical_weights = c1->out_channels() * c1->in_channels() * c1->kernel();
      r.stored_weights = r.logical_weights;
      r.method = "-";
    } else {
      continue;  // activation / pool / flatten
    }
    out.push_back(std::move(r));
  }
}

}  // namespace

float quant_accuracy(const quant::QuantModel& qm, const data::Dataset& ds,
                     dsp::FftScaling scaling) {
  quant::QExecOptions opts;
  opts.fft_scaling = scaling;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto logits = quant::qpredict(qm, ds.x[i], opts);
    if (train::argmax(logits) == ds.y[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(ds.size());
}

RadResult run_rad(const RadConfig& cfg, Rng& rng) {
  RadResult res;
  res.data = make_task_data(cfg.task, cfg, rng);

  models::ModelInfo info;
  res.model = models::make_model(cfg.task, rng, &info);

  // Phase 1: train the BCM-form model (compression-aware training: the FC
  // layers are block-circulant from the start, as SSIII-A's "combination
  // of BCM on FC and structured pruning on CONV").
  train::FitConfig fit_cfg;
  fit_cfg.epochs = cfg.epochs;
  fit_cfg.batch_size = cfg.batch_size;
  fit_cfg.sgd = cfg.sgd;
  train::fit(res.model, res.data.train, fit_cfg, rng);

  // Phase 2: ADMM-regularized structured pruning of the designated conv.
  if (info.pruned_conv_layer >= 0) {
    auto* conv = dynamic_cast<nn::Conv2D*>(
        &res.model.layer(static_cast<std::size_t>(info.pruned_conv_layer)));
    check(conv != nullptr, "run_rad: pruned layer is not a Conv2D");
    cmp::AdmmConfig admm_cfg = cfg.admm;
    admm_cfg.keep_positions = info.prune_keep_positions;
    cmp::AdmmPruner pruner(*conv, admm_cfg);
    pruner.run(res.model, res.data.train, rng);
    res.admm_violation = pruner.final_violation();
  }

  res.float_accuracy = train::evaluate(res.model, res.data.test).accuracy;

  // Phase 3: normalization calibration + 16-bit fixed-point quantization.
  std::vector<nn::Tensor> calib;
  for (std::size_t i = 0; i < std::min(cfg.calib_samples, res.data.train.size()); ++i) {
    calib.push_back(res.data.train.x[i]);
  }
  quant::QuantizeOptions qopts;
  qopts.headroom = cfg.quant_headroom;
  qopts.model_name = models::task_name(cfg.task);
  res.qmodel = quant::quantize(res.model, calib, info.input_shape, qopts);

  res.quant_accuracy = quant_accuracy(res.qmodel, res.data.test);
  collect_layer_reports(res.model, res.layers);
  return res;
}

}  // namespace ehdnn::rad
