#include "core/rad/search.h"

#include "compress/structured.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"
#include "train/trainer.h"
#include "util/check.h"

namespace ehdnn::rad {

nn::Model build_candidate(const Candidate& c, std::size_t num_classes, Rng& rng) {
  // 28x28 -> conv(5x5) -> pool -> conv(5x5) -> pool -> flatten -> BCM FC -> FC
  const std::size_t flat = c.conv2_filters * 4 * 4;
  check(c.fc_width % c.bcm_block == 0, "candidate: fc_width must be a multiple of the block");
  nn::Model m;
  auto* c1 = m.add<nn::Conv2D>(1, c.conv1_filters, 5, 5);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  auto* c2 = m.add<nn::Conv2D>(c.conv1_filters, c.conv2_filters, 5, 5);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  auto* f1 = m.add<nn::BcmDense>(flat, c.fc_width, c.bcm_block);
  m.add<nn::ReLU>();
  auto* f2 = m.add<nn::Dense>(c.fc_width, num_classes);
  c1->init(rng);
  c2->init(rng);
  f1->init(rng);
  f2->init(rng);
  if (c.prune_keep < 25) cmp::project_shape_sparse(*c2, c.prune_keep);
  return m;
}

SearchResult search(const data::TrainTest& data, const SearchConfig& cfg, Rng& rng) {
  std::vector<Candidate> grid = cfg.grid;
  if (grid.empty()) {
    for (std::size_t c1 : {4u, 6u, 8u}) {
      for (std::size_t fc : {128u, 256u}) {
        for (std::size_t blk : {64u, 128u}) {
          if (fc % blk != 0) continue;
          grid.push_back({c1, 16, fc, blk, 13});
        }
      }
    }
  }

  SearchResult res;
  float best_acc = -2.0f;
  for (const Candidate& cand : grid) {
    ScoredCandidate sc;
    sc.cand = cand;

    // Hard resource gates first (cheap: no training involved).
    nn::Model probe = build_candidate(cand, cfg.num_classes, rng);
    sc.resources = estimate(probe, {1, 28, 28});
    sc.feasible = sc.resources.fits() &&
                  sc.resources.fram_bytes <= cfg.max_fram_bytes &&
                  sc.resources.latency_s <= cfg.max_latency_s;
    if (sc.feasible) {
      nn::Model m = build_candidate(cand, cfg.num_classes, rng);
      train::FitConfig fit_cfg;
      fit_cfg.epochs = cfg.quick_epochs;
      fit_cfg.batch_size = cfg.batch_size;
      train::fit(m, data.train, fit_cfg, rng);
      sc.quick_accuracy = train::evaluate(m, data.test).accuracy;
      if (sc.quick_accuracy > best_acc) {
        best_acc = sc.quick_accuracy;
        res.best = cand;
      }
    }
    res.scored.push_back(sc);
  }
  check(best_acc >= 0.0f, "search: no feasible candidate");
  return res;
}

}  // namespace ehdnn::rad
