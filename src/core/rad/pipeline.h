// The end-to-end RAD pipeline (paper Fig. 1, left box): resource-aware
// model -> training -> compression (BCM + ADMM structured pruning) ->
// normalization/calibration -> 16-bit fixed-point quantization.
//
// The output QuantModel is what ACE compiles onto the device; RadResult
// also carries the accuracy/compression numbers Table II reports.
#pragma once

#include <optional>

#include "compress/admm.h"
#include "data/dataset.h"
#include "dsp/fft.h"
#include "models/zoo.h"
#include "nn/model.h"
#include "quant/qmodel.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace ehdnn::rad {

struct RadConfig {
  models::Task task = models::Task::kMnist;
  std::size_t train_samples = 1200;
  std::size_t test_samples = 400;
  int epochs = 6;
  std::size_t batch_size = 16;
  train::SgdConfig sgd{.lr = 0.05f, .momentum = 0.9f, .weight_decay = 1e-4f};
  cmp::AdmmConfig admm;            // used only if the task prunes a conv
  std::size_t calib_samples = 64;  // quantization range calibration
  double quant_headroom = 1.25;
};

struct LayerReport {
  std::string name;
  std::size_t logical_weights = 0;  // uncompressed parameter count
  std::size_t stored_weights = 0;   // after BCM / pruning
  double compression = 1.0;
  std::string method;  // "BCM k=128", "shape pruning", "-"
};

struct RadResult {
  nn::Model model;            // trained compressed float model
  quant::QuantModel qmodel;   // deployable
  data::TrainTest data;
  float float_accuracy = 0.0f;
  float quant_accuracy = 0.0f;
  double admm_violation = 0.0;  // ||W-Z||/||W|| before hard projection
  std::vector<LayerReport> layers;
};

RadResult run_rad(const RadConfig& cfg, Rng& rng);

// Accuracy of a quantized model over a dataset (argmax of qpredict).
float quant_accuracy(const quant::QuantModel& qm, const data::Dataset& ds,
                     dsp::FftScaling scaling = dsp::FftScaling::kBlockFloat);

}  // namespace ehdnn::rad
