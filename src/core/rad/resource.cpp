#include "core/rad/resource.h"

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "power/continuous.h"
#include "quant/quantize.h"

namespace ehdnn::rad {

ResourceReport estimate(nn::Model& model, const std::vector<std::size_t>& input_shape,
                        const dev::DeviceConfig& dev_cfg) {
  // One dummy calibration sample: scale exponents are arbitrary but the
  // cost structure (the thing being estimated) is shape-determined.
  nn::Tensor dummy(input_shape);
  const nn::Tensor calib[] = {dummy};
  quant::QuantModel qm = quant::quantize(model, calib, input_shape);
  return estimate(qm, dev_cfg);
}

ResourceReport estimate(const quant::QuantModel& qm, const dev::DeviceConfig& dev_cfg) {
  ResourceReport r;
  r.weight_bytes = qm.weight_bytes();

  dev::Device dev(dev_cfg);
  ace::CompiledModel cm;
  try {
    cm = ace::compile(qm, dev);
  } catch (const Error&) {
    // Out of SRAM or FRAM during layout: candidate rejected.
    r.fits_sram = false;
    r.fits_fram = false;
    return r;
  }
  r.fram_bytes = cm.fram_words_used * sizeof(fx::q15_t);
  r.sram_words = cm.sram.total_words;
  r.fits_sram = cm.sram.total_words <= dev.sram().size_words();
  r.fits_fram = cm.fram_words_used <= dev.fram().size_words();
  if (!r.fits()) return r;

  power::ContinuousPower supply;
  dev.attach_supply(&supply);
  std::vector<fx::q15_t> input(qm.layers.front().in_size(), 0);
  auto rt = flex::make_ace_runtime();
  const flex::RunStats st = rt->infer(dev, cm, input);
  r.latency_s = st.on_seconds;
  r.energy_j = st.energy_j;
  return r;
}

}  // namespace ehdnn::rad
