// SonicPolicy: SONIC-style software-only intermittent inference
// (Gobieski et al., ASPLOS'19), re-implemented on the ehdnn device model.
//
// Execution is element-wise on the CPU — no LEA, no DMA — and progress is
// continuously committed to FRAM ("loop continuation"):
//   ctrl[0] = layer, ctrl[1] = outer index, ctrl[2] = inner tile.
// Dense accumulators are read-modify-write across tiles, which is the
// classic intermittent W-A-R hazard; SONIC's loop-ordered buffering is
// modelled with two FRAM parity slots: the accumulator state after tile t
// lives in slot[(t+1) & 1], so re-executing tile t after a failure reads
// the untouched slot[t & 1] and the redo is idempotent.
//
// Commit-order discipline (inner index first, then outer, then layer)
// makes every multi-word control transition safe to tear.

#include <algorithm>

#include "core/flex/executor.h"
#include "util/check.h"
#include "util/math.h"

namespace ehdnn::flex {

namespace {

using dev::Addr;
using dev::MemKind;
using fx::q15_t;
using quant::QKind;
using quant::QLayer;

constexpr std::size_t kTile = 16;      // dense inner commit granularity
constexpr std::size_t kCpuTile = 16;   // element layers commit granularity

class SonicPolicy : public RuntimePolicy {
 public:
  std::string name() const override { return "SONIC"; }

  long units_total(const ace::CompiledModel& cm) const override {
    return static_cast<long>(sonic_units(cm));
  }

  void on_boot(StepContext& ctx, bool fresh) override {
    dev::Device& dev = ctx.dev;
    const ace::CompiledModel& cm = ctx.cm;
    if (fresh) {
      load_input(dev, cm, ctx.input);
      // Fresh inference: reset the loop-continuation cursor.
      dev.write(MemKind::kFram, cm.ctrl_base + 2, 0);
      dev.write(MemKind::kFram, cm.ctrl_base + 1, 0);
      dev.write(MemKind::kFram, cm.ctrl_base + 0, 0);
    }
    // Restore the cursor (three cheap FRAM reads at boot).
    layer_ = static_cast<std::uint16_t>(dev.read(MemKind::kFram, cm.ctrl_base + 0));
    outer_ = static_cast<std::uint16_t>(dev.read(MemKind::kFram, cm.ctrl_base + 1));
    tile_ = static_cast<std::uint16_t>(dev.read(MemKind::kFram, cm.ctrl_base + 2));
  }

  bool step(StepContext& ctx) override {
    dev::Device& dev = ctx.dev;
    const ace::CompiledModel& cm = ctx.cm;
    run_sonic_layer(ctx, layer_, outer_, tile_);
    outer_ = 0;
    tile_ = 0;
    // Layer transition (inner-first commit order).
    notify_supply(dev, dev::SupplyEvent::kCommitBegin);
    dev.write(MemKind::kFram, cm.ctrl_base + 2, 0);
    dev.write(MemKind::kFram, cm.ctrl_base + 1, 0);
    dev.write(MemKind::kFram, cm.ctrl_base + 0, static_cast<q15_t>(layer_ + 1));
    notify_supply(dev, dev::SupplyEvent::kCommitEnd);
    return ++layer_ == cm.model.layers.size();
  }

  // Inner-tile commit: the only per-unit event SONIC has; progress_commits
  // bookkeeping rides on the shared on_commit hook.
  void on_commit(StepContext& ctx, std::size_t unit) override {
    RuntimePolicy::on_commit(ctx, unit);
    ++ctx.st.progress_commits;
  }

 private:
  static std::size_t sonic_units(const ace::CompiledModel& cm) {
    std::size_t n = 0;
    for (const auto& l : cm.model.layers) {
      switch (l.kind) {
        case QKind::kDense:
          n += l.out_ch * div_ceil(l.in_ch, kTile);
          break;
        case QKind::kConv2D:
        case QKind::kConv1D:
          n += l.out_size();
          break;
        default:
          n += div_ceil(l.out_size(), kCpuTile);
      }
    }
    return n;
  }

  void commit_inner(StepContext& ctx, std::size_t tile) {
    dev::Device& dev = ctx.dev;
    notify_supply(dev, dev::SupplyEvent::kCommitBegin);
    dev.write(MemKind::kFram, ctx.cm.ctrl_base + 2, static_cast<q15_t>(tile));
    notify_supply(dev, dev::SupplyEvent::kCommitEnd);
    on_commit(ctx, tile);
  }

  void commit_outer(StepContext& ctx, std::size_t outer) {
    dev::Device& dev = ctx.dev;
    notify_supply(dev, dev::SupplyEvent::kCommitBegin);
    dev.write(MemKind::kFram, ctx.cm.ctrl_base + 2, 0);
    dev.write(MemKind::kFram, ctx.cm.ctrl_base + 1, static_cast<q15_t>(outer));
    notify_supply(dev, dev::SupplyEvent::kCommitEnd);
    ++ctx.st.progress_commits;
  }

  void run_sonic_layer(StepContext& ctx, std::size_t l, std::size_t outer0,
                       std::size_t tile0) {
    dev::Device& dev = ctx.dev;
    const ace::CompiledModel& cm = ctx.cm;
    RunStats& st = ctx.st;
    const QLayer& q = cm.model.layers[l];
    const Addr in = cm.act_in(l);
    const Addr out = cm.act_out(l);
    const Addr wb = cm.images[l].w_base;
    const Addr bb = cm.images[l].b_base;

    switch (q.kind) {
      case QKind::kDense: {
        const std::size_t nin = q.in_ch;
        const std::size_t ntiles = div_ceil(nin, kTile);
        const int guard = quant::dense_guard_shift(nin);
        const int rshift = 15 + q.out_exp - q.w_exp - q.in_exp - guard;
        for (std::size_t o = outer0; o < q.out_ch; ++o) {
          for (std::size_t t = (o == outer0 ? tile0 : 0); t < ntiles; ++t) {
            // Accumulator state before tile t lives in parity slot [t & 1].
            std::int32_t acc =
                t == 0 ? 0 : ace::read_acc32(dev, MemKind::kFram, cm.nv_acc_base, t & 1);
            const std::size_t lo = t * kTile;
            const std::size_t hi = std::min(lo + kTile, nin);
            for (std::size_t i = lo; i < hi; ++i) {
              const q15_t xv = dev.read(MemKind::kFram, in + i);
              const q15_t wv = dev.read(MemKind::kFram, wb + o * nin + i);
              dev.cpu_mac_cycles();
              dev.cpu_ops(2);
              acc += static_cast<std::int32_t>(fx::mul_q30(xv, wv) >> guard);
            }
            ace::write_acc32(dev, MemKind::kFram, cm.nv_acc_base, (t + 1) & 1, acc);
            if (t + 1 == ntiles) {
              // Finish the neuron before the cursor moves past it.
              dev.cpu_ops(4);
              q15_t v = fx::narrow_q30(static_cast<std::int64_t>(acc), rshift);
              if (!q.bias.empty()) v = fx::add_sat(v, dev.read(MemKind::kFram, bb + o));
              dev.write(MemKind::kFram, out + o, v);
              commit_outer(ctx, o + 1);
              ++st.units_executed;
            } else {
              commit_inner(ctx, t + 1);
            }
          }
        }
        break;
      }

      case QKind::kConv2D: {
        const std::size_t ih = q.in_shape[1], iw = q.in_shape[2];
        const std::size_t oh = q.out_shape[1], ow = q.out_shape[2];
        const int rshift = 15 + q.out_exp - q.w_exp - q.in_exp;
        for (std::size_t px = outer0; px < q.out_size(); ++px) {
          const std::size_t f = px / (oh * ow);
          const std::size_t i = (px / ow) % oh;
          const std::size_t j = px % ow;
          std::int64_t acc = 0;
          for (std::size_t c = 0; c < q.in_ch; ++c) {
            for (std::size_t r = 0; r < q.kh; ++r) {
              for (std::size_t s = 0; s < q.kw; ++s) {
                const q15_t xv = dev.read(MemKind::kFram, in + (c * ih + i + r) * iw + j + s);
                const q15_t wv =
                    dev.read(MemKind::kFram, wb + ((f * q.in_ch + c) * q.kh + r) * q.kw + s);
                dev.cpu_mac_cycles();
                dev.cpu_ops(2);
                acc += fx::mul_q30(xv, wv);
              }
            }
          }
          dev.cpu_ops(4);
          q15_t v = fx::narrow_q30(acc, rshift);
          if (!q.bias.empty()) v = fx::add_sat(v, dev.read(MemKind::kFram, bb + f));
          dev.write(MemKind::kFram, out + px, v);
          commit_outer(ctx, px + 1);
          ++st.units_executed;
        }
        break;
      }

      case QKind::kConv1D: {
        const std::size_t il = q.in_shape[1];
        const std::size_t ol = q.out_shape[1];
        const int rshift = 15 + q.out_exp - q.w_exp - q.in_exp;
        for (std::size_t px = outer0; px < q.out_size(); ++px) {
          const std::size_t f = px / ol;
          const std::size_t i = px % ol;
          std::int64_t acc = 0;
          for (std::size_t c = 0; c < q.in_ch; ++c) {
            for (std::size_t t = 0; t < q.k; ++t) {
              const q15_t xv = dev.read(MemKind::kFram, in + c * il + i + t);
              const q15_t wv = dev.read(MemKind::kFram, wb + (f * q.in_ch + c) * q.k + t);
              dev.cpu_mac_cycles();
              dev.cpu_ops(2);
              acc += fx::mul_q30(xv, wv);
            }
          }
          dev.cpu_ops(4);
          q15_t v = fx::narrow_q30(acc, rshift);
          if (!q.bias.empty()) v = fx::add_sat(v, dev.read(MemKind::kFram, bb + f));
          dev.write(MemKind::kFram, out + px, v);
          commit_outer(ctx, px + 1);
          ++st.units_executed;
        }
        break;
      }

      case QKind::kReLU:
      case QKind::kFlatten:
      case QKind::kMaxPool2D: {
        const std::size_t n = q.out_size();
        const std::size_t tiles = div_ceil(n, kCpuTile);
        for (std::size_t t = outer0; t < tiles; ++t) {
          const std::size_t lo = t * kCpuTile;
          const std::size_t hi = std::min(lo + kCpuTile, n);
          for (std::size_t e = lo; e < hi; ++e) {
            q15_t v;
            if (q.kind == QKind::kMaxPool2D) {
              const std::size_t ihh = q.in_shape[1], iww = q.in_shape[2];
              const std::size_t ohh = q.out_shape[1], oww = q.out_shape[2];
              const std::size_t ch = e / (ohh * oww);
              const std::size_t i = (e / oww) % ohh;
              const std::size_t j = e % oww;
              v = fx::kQ15Min;
              for (std::size_t di = 0; di < 2; ++di) {
                for (std::size_t dj = 0; dj < 2; ++dj) {
                  v = std::max(v, dev.read(MemKind::kFram,
                                           in + (ch * ihh + 2 * i + di) * iww + 2 * j + dj));
                }
              }
              dev.cpu_ops(5);
            } else {
              v = dev.read(MemKind::kFram, in + e);
              dev.cpu_ops(2);
              if (q.kind == QKind::kReLU) v = std::max<q15_t>(v, 0);
            }
            dev.write(MemKind::kFram, out + e, v);
          }
          commit_outer(ctx, t + 1);
          ++st.units_executed;
        }
        break;
      }

      case QKind::kBcmDense:
        fail("SONIC has no BCM support (run it on the dense model)");
    }
  }

  std::size_t layer_ = 0;
  std::size_t outer_ = 0;
  std::size_t tile_ = 0;
};

}  // namespace

std::unique_ptr<RuntimePolicy> make_sonic_policy() { return std::make_unique<SonicPolicy>(); }

std::unique_ptr<InferenceRuntime> make_sonic_runtime() {
  return make_policy_runtime(make_sonic_policy());
}

double sonic_worst_commit_energy(const ace::CompiledModel& cm, const dev::CostModel& cost) {
  // Scalar FRAM word traffic (SONIC's kernels are all CPU-addressed) and
  // the MPY32 MAC with its two address-advance ops, matching the per-MAC
  // accounting in run_sonic_layer above.
  const double word_r = cost.e_fram_read + cost.seconds(cost.cycles_fram_word) * cost.p_cpu_active;
  const double word_w = cost.e_fram_write + cost.seconds(cost.cycles_fram_word) * cost.p_cpu_active;
  const double mac =
      cost.seconds(cost.cycles_cpu_mac + 2.0 * cost.cycles_cpu_op) * cost.p_cpu_active;
  double worst = 0.0;
  for (std::size_t l = 0; l < cm.model.layers.size(); ++l) {
    const quant::QLayer& q = cm.model.layers[l];
    double unit = 0.0;
    switch (q.kind) {
      case QKind::kDense:
        // One inner tile: kTile MACs (x + w reads each) + acc slot write.
        unit = static_cast<double>(kTile) * (2.0 * word_r + mac) + 4.0 * word_w;
        break;
      case QKind::kConv2D:
      case QKind::kConv1D:
        // One output element: the whole reduction, then the output write.
        unit = static_cast<double>(cm.plans[l].w_gather.size()) * (2.0 * word_r + mac) + word_w;
        break;
      default:
        // Element layers commit in kCpuTile blocks of read-op-write.
        unit = static_cast<double>(kCpuTile) * (word_r + word_w);
        break;
    }
    worst = std::max(worst, unit);
  }
  return worst;
}

}  // namespace ehdnn::flex
