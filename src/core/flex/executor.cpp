#include "core/flex/executor.h"

namespace ehdnn::flex {

void IntermittentExecutor::start(dev::Device& dev, const ace::CompiledModel& cm,
                                 std::span<const fx::q15_t> input, const RunOptions& opts) {
  dev_ = &dev;
  cm_ = &cm;
  input_ = input;
  opts_ = opts;
  st_ = RunStats{};
  st_.units_total = policy_->units_total(cm);
  base_ = mark(dev);
  attempt_start_cycles_ = 0.0;
  need_boot_ = true;
  fresh_ = true;
  done_ = false;
}

void IntermittentExecutor::finish() {
  fill_stats(st_, *dev_, base_);
  if (st_.completed()) st_.output = read_output(*dev_, policy_->output_model(*cm_));
  done_ = true;
}

bool IntermittentExecutor::step() {
  if (done_) return false;
  try {
    StepContext c = ctx();
    if (need_boot_) {
      // Cursor restores cost FRAM reads, so a boot is a failable slice of
      // its own — and a natural suspension point.
      attempt_start_cycles_ = dev_->trace().total_cycles();
      policy_->on_boot(c, fresh_);
      fresh_ = false;
      need_boot_ = false;
      return true;
    }
    if (policy_->step(c)) {
      st_.outcome = Outcome::kCompleted;
      finish();
    }
  } catch (const dev::PowerFailure&) {
    const double attempt_cycles = dev_->trace().total_cycles() - attempt_start_cycles_;
    StepContext c = ctx();
    if (!policy_->retry_after_failure(c, attempt_cycles) ||
        dev_->reboots() - base_.reboots >= opts_.max_reboots) {
      // Outcome stays kDidNotFinish — the Fig. 7b "X".
      finish();
      return false;
    }
    if (!recover_from_failure(*dev_, st_)) {
      // Harvester starved; outcome already recorded by recover.
      finish();
      return false;
    }
    need_boot_ = true;
  }
  return !done_;
}

RunStats IntermittentExecutor::run(dev::Device& dev, const ace::CompiledModel& cm,
                                   std::span<const fx::q15_t> input,
                                   const RunOptions& opts) {
  start(dev, cm, input, opts);
  while (step()) {
  }
  return take_stats();
}

namespace {

// The classic one-call API: an executor around a policy instance.
class PolicyRuntime : public InferenceRuntime {
 public:
  explicit PolicyRuntime(std::unique_ptr<RuntimePolicy> policy)
      : policy_(std::move(policy)) {}

  std::string name() const override { return policy_->name(); }

  RunStats infer(dev::Device& dev, const ace::CompiledModel& cm,
                 std::span<const fx::q15_t> input, const RunOptions& opts) override {
    IntermittentExecutor ex(*policy_);
    return ex.run(dev, cm, input, opts);
  }

 private:
  std::unique_ptr<RuntimePolicy> policy_;
};

}  // namespace

std::unique_ptr<InferenceRuntime> make_policy_runtime(std::unique_ptr<RuntimePolicy> policy) {
  return std::make_unique<PolicyRuntime>(std::move(policy));
}

}  // namespace ehdnn::flex
