#include "core/flex/executor.h"

#include <chrono>
#include <limits>

namespace ehdnn::flex {

double IntermittentExecutor::next_actionable_s() const {
  if (done_ || dev_ == nullptr || dev_->supply() == nullptr) {
    return std::numeric_limits<double>::infinity();
  }
  return dev_->supply()->now();
}

void IntermittentExecutor::start(dev::Device& dev, const ace::CompiledModel& cm,
                                 std::span<const fx::q15_t> input, const RunOptions& opts) {
  dev_ = &dev;
  cm_ = &cm;
  input_ = input;
  opts_ = opts;
  st_ = RunStats{};
  st_.units_total = policy_->units_total(cm);
  base_ = mark(dev);
  attempt_start_cycles_ = 0.0;
  futile_boots_ = 0;
  banked_mark_ = 0;
  need_recover_ = false;
  need_boot_ = true;
  fresh_ = true;
  done_ = false;
}

void IntermittentExecutor::finish() {
  fill_stats(st_, *dev_, base_);
  if (st_.completed()) st_.output = read_output(*dev_, policy_->output_model(*cm_));
  done_ = true;
}

bool IntermittentExecutor::step() {
  PhaseProfile* const prof = opts_.profile;
  if (prof == nullptr) return step_impl(nullptr);
  int phase = 0;
  const auto t0 = std::chrono::steady_clock::now();
  const bool more = step_impl(&phase);
  const double dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  switch (phase) {
    case 1:
      prof->recharge_s += dt;
      ++*prof->recoveries;
      break;
    case 2:
      prof->checkpoint_s += dt;
      ++*prof->slices;
      break;
    default:
      // Checkpoint writes inside the slice have already moved their share
      // from kernel_s to checkpoint_s (see FlexPolicy::write_checkpoint).
      prof->kernel_s += dt;
      ++*prof->slices;
      break;
  }
  return more;
}

bool IntermittentExecutor::step_impl(int* phase) {
  if (done_) return false;
  try {
    StepContext c = ctx();
    if (need_recover_) {
      if (phase != nullptr) *phase = 1;
      // Recovery (recharge + the 400-cycle boot sequence) is a failable
      // slice of its own: at micro-capacitor envelopes the boot sequence
      // alone can outcost the charge burst and brown out again. Handling
      // that here — instead of calling recover inside the catch block —
      // keeps the retry bounded by the same watchdog/max_reboots guards
      // instead of escaping as an uncaught PowerFailure.
      need_recover_ = false;
      if (!recover_from_failure(*dev_, st_)) {
        // Harvester starved; outcome already recorded by recover.
        finish();
        return false;
      }
      // One kRecovery per successful recharge+reboot, so the event count
      // equals RunStats::reboots — the fuzzer's pairing invariant.
      obs::record(opts_.trace, obs_now_s(*dev_), obs::EventKind::kRecovery);
      need_boot_ = true;
      return true;
    }
    if (need_boot_) {
      // Cursor restores cost FRAM reads, so a boot is a failable slice of
      // its own — and a natural suspension point.
      if (phase != nullptr) *phase = 2;
      attempt_start_cycles_ = dev_->trace().total_cycles();
      obs::record(opts_.trace, obs_now_s(*dev_), obs::EventKind::kBoot,
                  fresh_ ? 1 : 0);
      policy_->on_boot(c, fresh_);
      dev_->settle_supply();  // slice boundary: close the prepaid window
      fresh_ = false;
      need_boot_ = false;
      return true;
    }
    const bool complete = policy_->step(c);
    // Slice boundary: settle the prepaid-headroom window so the scheduler
    // (and fill_stats below) sees the true supply state. Settlement
    // cannot fail — over-budget draws already settled inside the slice.
    dev_->settle_supply();
    if (complete) {
      st_.outcome = Outcome::kCompleted;
      finish();
    }
  } catch (const dev::PowerFailure&) {
    const double attempt_cycles = dev_->trace().total_cycles() - attempt_start_cycles_;
    StepContext c = ctx();
    obs::record(opts_.trace, obs_now_s(*dev_), obs::EventKind::kBrownOut);
    // Livelock watchdog: a power cycle that banked nothing durable
    // (no progress commit, no checkpoint) is futile — the next boot will
    // redo exactly the same work. Enough of those in a row and the run
    // can never finish, so fail loudly instead of spinning to the
    // reboot cap.
    const long banked = st_.progress_commits + st_.checkpoints;
    futile_boots_ = banked > banked_mark_ ? 0 : futile_boots_ + 1;
    banked_mark_ = banked;
    if (futile_boots_ > 0) {
      obs::record(opts_.trace, obs_now_s(*dev_), obs::EventKind::kFutileBoot,
                  static_cast<std::int32_t>(futile_boots_));
    }
    if (opts_.max_futile_boots > 0 && futile_boots_ >= opts_.max_futile_boots) {
      st_.livelock = true;  // outcome stays kDidNotFinish
      obs::record(opts_.trace, obs_now_s(*dev_), obs::EventKind::kLivelockTrip,
                  static_cast<std::int32_t>(futile_boots_));
      finish();
      return false;
    }
    if (!policy_->retry_after_failure(c, attempt_cycles) ||
        dev_->reboots() - base_.reboots >= opts_.max_reboots) {
      // Outcome stays kDidNotFinish — the Fig. 7b "X".
      finish();
      return false;
    }
    need_recover_ = true;
  }
  return !done_;
}

RunStats IntermittentExecutor::run(dev::Device& dev, const ace::CompiledModel& cm,
                                   std::span<const fx::q15_t> input,
                                   const RunOptions& opts) {
  start(dev, cm, input, opts);
  while (step()) {
  }
  return take_stats();
}

namespace {

// The classic one-call API: an executor around a policy instance.
class PolicyRuntime : public InferenceRuntime {
 public:
  explicit PolicyRuntime(std::unique_ptr<RuntimePolicy> policy)
      : policy_(std::move(policy)) {}

  std::string name() const override { return policy_->name(); }

  RunStats infer(dev::Device& dev, const ace::CompiledModel& cm,
                 std::span<const fx::q15_t> input, const RunOptions& opts) override {
    IntermittentExecutor ex(*policy_);
    return ex.run(dev, cm, input, opts);
  }

 private:
  std::unique_ptr<RuntimePolicy> policy_;
};

}  // namespace

std::unique_ptr<InferenceRuntime> make_policy_runtime(std::unique_ptr<RuntimePolicy> policy) {
  return std::make_unique<PolicyRuntime>(std::move(policy));
}

}  // namespace ehdnn::flex
