// AcePolicy: the ACE execution engine with no intermittence support.
// On the compressed model this is the paper's "ACE"; on the dense model it
// is "BASE". A power failure loses all volatile progress, so the whole
// inference restarts — under harvested power with a 100 uF buffer the
// inference energy exceeds the burst energy by orders of magnitude and the
// run can never complete (Fig. 7b).

#include "core/flex/executor.h"

namespace ehdnn::flex {

namespace {

class AcePolicy : public RuntimePolicy {
 public:
  std::string name() const override { return "ACE"; }

  void on_boot(StepContext& ctx, bool fresh) override {
    if (fresh) {
      best_attempt_cycles_ = 0.0;
      stale_attempts_ = 0;
    }
    // No checkpoints: every power cycle restarts from scratch, which
    // implies re-acquiring the input (cost-free, see infer() contract).
    load_input(ctx.dev, ctx.cm, ctx.input);
    layer_ = 0;
  }

  bool step(StepContext& ctx) override {
    const std::size_t l = layer_;
    ace::ExecCtx ectx{ctx.dev, ctx.cm, l, ctx.cm.act_in(l), ctx.cm.act_out(l),
                      ctx.opts.scaling, ctx.opts.stats, &arena_};
    ace::UnitHooks hooks;
    hooks.committed = [&](std::size_t u) { on_commit(ctx, u); };
    ace::run_layer(ectx, 0, hooks);
    return ++layer_ == ctx.cm.model.layers.size();
  }

  // Livelock detection: without checkpoints, every attempt restarts from
  // scratch. If the farthest point reached stops improving for a window
  // of attempts, no future attempt can complete either (burst energy is
  // bounded) and the run is declared DNF — the paper's "X" in Fig. 7b.
  bool retry_after_failure(StepContext& ctx, double attempt_cycles) override {
    (void)ctx;
    if (attempt_cycles > best_attempt_cycles_ * 1.001) {
      best_attempt_cycles_ = attempt_cycles;
      stale_attempts_ = 0;
    } else {
      ++stale_attempts_;
    }
    return stale_attempts_ < kPatience;
  }

 private:
  static constexpr int kPatience = 25;

  std::size_t layer_ = 0;
  double best_attempt_cycles_ = 0.0;
  int stale_attempts_ = 0;
  ace::ScratchArena arena_;  // reused across layers, attempts and inferences
};

}  // namespace

std::unique_ptr<RuntimePolicy> make_ace_policy() { return std::make_unique<AcePolicy>(); }

std::unique_ptr<InferenceRuntime> make_ace_runtime() {
  return make_policy_runtime(make_ace_policy());
}

}  // namespace ehdnn::flex
