// AceRuntime: the ACE execution engine with no intermittence support.
// On the compressed model this is the paper's "ACE"; on the dense model it
// is "BASE". A power failure loses all volatile progress, so the whole
// inference restarts — under harvested power with a 100 uF buffer the
// inference energy exceeds the burst energy by orders of magnitude and the
// run can never complete (Fig. 7b).

#include "core/flex/runtime.h"

namespace ehdnn::flex {

namespace {

class AceRuntime : public InferenceRuntime {
 public:
  std::string name() const override { return "ACE"; }

  RunStats infer(dev::Device& dev, const ace::CompiledModel& cm,
                 std::span<const fx::q15_t> input, const RunOptions& opts) override {
    RunStats st;
    st.units_total = total_units(cm);
    const TraceBaseline base = mark(dev);

    // Livelock detection: without checkpoints, every attempt restarts from
    // scratch. If the farthest point reached stops improving for a window
    // of attempts, no future attempt can complete either (burst energy is
    // bounded) and the run is declared DNF — the paper's "X" in Fig. 7b.
    double best_attempt_cycles = 0.0;
    int stale_attempts = 0;
    constexpr int kPatience = 25;

    while (true) {
      const double attempt_start = dev.trace().total_cycles();
      try {
        load_input(dev, cm, input);  // restart implies re-acquiring input
        run_all(dev, cm, opts, st);
        mark_completed(st);
        break;
      } catch (const dev::PowerFailure&) {
        const double attempt_cycles = dev.trace().total_cycles() - attempt_start;
        if (attempt_cycles > best_attempt_cycles * 1.001) {
          best_attempt_cycles = attempt_cycles;
          stale_attempts = 0;
        } else {
          ++stale_attempts;
        }
        if (stale_attempts >= kPatience || dev.reboots() - base.reboots >= opts.max_reboots) {
          st.outcome = Outcome::kDidNotFinish;
          break;
        }
        if (!recover_from_failure(dev, st)) break;
      }
    }

    fill_stats(st, dev, base);
    if (st.completed) st.output = read_output(dev, cm);
    return st;
  }

 private:
  void run_all(dev::Device& dev, const ace::CompiledModel& cm, const RunOptions& opts,
               RunStats& st) {
    for (std::size_t l = 0; l < cm.model.layers.size(); ++l) {
      ace::ExecCtx ctx{dev, cm, l, cm.act_in(l), cm.act_out(l), opts.scaling, opts.stats,
                       &arena_};
      ace::UnitHooks hooks;
      hooks.committed = [&st](std::size_t) { ++st.units_executed; };
      ace::run_layer(ctx, 0, hooks);
    }
  }

  ace::ScratchArena arena_;  // reused across layers, attempts and inferences
};

}  // namespace

std::unique_ptr<InferenceRuntime> make_ace_runtime() { return std::make_unique<AceRuntime>(); }

}  // namespace ehdnn::flex
