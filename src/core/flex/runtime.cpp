#include "core/flex/runtime.h"

namespace ehdnn::flex {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kDidNotFinish: return "dnf";
    case Outcome::kStarved: return "starved";
  }
  return "?";
}

bool recover_from_failure(dev::Device& dev, RunStats& st) {
  st.off_seconds += dev.supply()->recharge_to_on();
  if (!dev.supply()->on()) {
    st.outcome = Outcome::kStarved;
    return false;
  }
  dev.reboot();
  return true;
}

void notify_supply(dev::Device& dev, dev::SupplyEvent e) {
  if (dev.supply() != nullptr) dev.supply()->notify(e);
}

void load_input(dev::Device& dev, const ace::CompiledModel& cm,
                std::span<const fx::q15_t> input) {
  check(input.size() == cm.model.layers.front().in_size(), "load_input: size mismatch");
  for (std::size_t i = 0; i < input.size(); ++i) dev.fram().poke(cm.act_a + i, input[i]);
}

std::vector<fx::q15_t> read_output(dev::Device& dev, const ace::CompiledModel& cm) {
  const std::size_t last = cm.model.layers.size() - 1;
  const std::size_t n = cm.model.layers[last].out_size();
  std::vector<fx::q15_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = dev.fram().peek(cm.act_out(last) + i);
  return out;
}

TraceBaseline mark(const dev::Device& dev) {
  TraceBaseline b;
  for (std::size_t r = 0; r < static_cast<std::size_t>(dev::Rail::kCount); ++r) {
    b.energy[r] = dev.trace().energy(static_cast<dev::Rail>(r));
  }
  b.total_cycles = dev.trace().total_cycles();
  b.reboots = dev.reboots();
  return b;
}

void fill_stats(RunStats& st, const dev::Device& dev, const TraceBaseline& base) {
  st.on_seconds = dev.cost().seconds(dev.trace().total_cycles() - base.total_cycles);
  double total = 0.0;
  for (std::size_t r = 0; r < static_cast<std::size_t>(dev::Rail::kCount); ++r) {
    st.energy_by_rail[r] = dev.trace().energy(static_cast<dev::Rail>(r)) - base.energy[r];
    total += st.energy_by_rail[r];
  }
  st.energy_j = total;
  st.reboots = dev.reboots() - base.reboots;
}

long total_units(const ace::CompiledModel& cm) {
  long n = 0;
  for (const auto& l : cm.model.layers) n += static_cast<long>(ace::unit_count(l));
  return n;
}

}  // namespace ehdnn::flex
