// TailsPolicy: TAILS-style intermittent inference — SONIC's loop
// continuation protocol, with the inner vector work offloaded to the LEA
// through DMA staging (Gobieski et al., ASPLOS'19, SSIII-C of this paper).
//
// Progress exists only at *unit* granularity (an output row, a dense
// chunk): the control cursor (layer, unit) is committed to FRAM after each
// unit, and dense-chunk accumulators are double-buffered in FRAM parity
// slots. What TAILS cannot do is resume inside a vector operation: the
// intermediates (x, w, y, y' of Fig. 6) live in SRAM and die with the
// power, so a failure mid-unit rolls execution back to the unit's start —
// the progress setback FLEX is designed to eliminate.
//
// Unlike the original TAILS, this implementation can also drive the
// FFT-based BCM layer (rolling back whole blocks on failure and paying a
// per-block accumulator commit), which is exactly the strawman the paper's
// Fig. 6 analyzes; bench/fig6 quantifies it against FLEX.

#include <algorithm>

#include "core/flex/executor.h"
#include "util/check.h"
#include "util/math.h"

namespace ehdnn::flex {

namespace {

using dev::Addr;
using dev::MemKind;
using fx::q15_t;
using quant::QKind;
using quant::QLayer;

class TailsPolicy : public RuntimePolicy {
 public:
  std::string name() const override { return "TAILS"; }

  void on_boot(StepContext& ctx, bool fresh) override {
    dev::Device& dev = ctx.dev;
    const ace::CompiledModel& cm = ctx.cm;
    if (fresh) {
      load_input(dev, cm, ctx.input);
      dev.write(MemKind::kFram, cm.ctrl_base + 1, 0);
      dev.write(MemKind::kFram, cm.ctrl_base + 0, 0);
    }
    layer_ = static_cast<std::uint16_t>(dev.read(MemKind::kFram, cm.ctrl_base + 0));
    unit_ = static_cast<std::uint16_t>(dev.read(MemKind::kFram, cm.ctrl_base + 1));
  }

  bool step(StepContext& ctx) override {
    dev::Device& dev = ctx.dev;
    const ace::CompiledModel& cm = ctx.cm;
    const std::size_t l = layer_;
    const QLayer& q = cm.model.layers[l];
    ace::ExecCtx ectx{dev, cm, l, cm.act_in(l), cm.act_out(l),
                      ctx.opts.scaling, ctx.opts.stats, &arena_};

    if (q.kind == QKind::kDense && unit_ > 0) {
      // Rebuild the accumulator from the chunk-parity slots. Commits
      // during chunk c land in slot[(c+1) & 1] block by block, so on
      // resume at (c0, nb0): neuron blocks < nb0 carry chunk c0's folds
      // (new slot) and blocks >= nb0 carry only chunks < c0 (old slot).
      const std::size_t nblocks = ace::dense_neuron_blocks(q);
      const std::size_t c0 = unit_ / nblocks;
      const std::size_t nb0 = unit_ % nblocks;
      const Addr slot_new = cm.nv_acc_base + ((c0 + 1) & 1) * cm.nv_acc_slot_words;
      const Addr slot_old = cm.nv_acc_base + (c0 & 1) * cm.nv_acc_slot_words;
      for (std::size_t nb = 0; nb < nblocks; ++nb) {
        const std::size_t o_lo = nb * ace::kDenseNeuronBlock;
        const std::size_t o_hi = std::min(o_lo + ace::kDenseNeuronBlock, q.out_ch);
        if (nb >= nb0 && c0 == 0) {
          // No chunk has folded into these blocks yet: fresh zeros (the
          // old slot would be a previous inference's leftovers).
          for (std::size_t o = o_lo; o < o_hi; ++o) {
            ace::write_acc32(dev, MemKind::kSram, cm.sram.acc32, o, 0);
          }
          continue;
        }
        const Addr src = (nb < nb0 ? slot_new : slot_old) + 2 * o_lo;
        ace::move_words(dev, MemKind::kFram, src, MemKind::kSram,
                        cm.sram.acc32 + 2 * o_lo, 2 * (o_hi - o_lo));
      }
    }

    ace::UnitHooks hooks;
    hooks.committed = [&](std::size_t u) { on_commit(ctx, u); };

    if (q.kind == QKind::kBcmDense) {
      run_tails_bcm(ectx, unit_, ctx.st);
    } else {
      ace::run_layer(ectx, unit_, hooks);
    }

    unit_ = 0;
    notify_supply(dev, dev::SupplyEvent::kCommitBegin);
    dev.write(MemKind::kFram, cm.ctrl_base + 1, 0);
    dev.write(MemKind::kFram, cm.ctrl_base + 0, static_cast<q15_t>(l + 1));
    notify_supply(dev, dev::SupplyEvent::kCommitEnd);
    return ++layer_ == cm.model.layers.size();
  }

  // Chunk-parity, block-granular accumulator commit (W-A-R safe: a torn
  // block write is re-read from the untouched old slot), then the cursor.
  void on_commit(StepContext& ctx, std::size_t unit) override {
    dev::Device& dev = ctx.dev;
    const ace::CompiledModel& cm = ctx.cm;
    const QLayer& q = cm.model.layers[layer_];
    notify_supply(dev, dev::SupplyEvent::kCommitBegin);
    if (q.kind == QKind::kDense) {
      const std::size_t nblocks = ace::dense_neuron_blocks(q);
      const std::size_t c = unit / nblocks;
      const std::size_t nb = unit % nblocks;
      const std::size_t o_lo = nb * ace::kDenseNeuronBlock;
      const std::size_t o_hi = std::min(o_lo + ace::kDenseNeuronBlock, q.out_ch);
      const Addr slot = cm.nv_acc_base + ((c + 1) & 1) * cm.nv_acc_slot_words;
      ace::move_words(dev, MemKind::kSram, cm.sram.acc32 + 2 * o_lo, MemKind::kFram,
                      slot + 2 * o_lo, 2 * (o_hi - o_lo));
    }
    dev.write(MemKind::kFram, cm.ctrl_base + 1, static_cast<q15_t>(unit + 1));
    notify_supply(dev, dev::SupplyEvent::kCommitEnd);
    ++ctx.st.progress_commits;
    ++ctx.st.units_executed;
  }

 private:
  // BCM under TAILS' protocol: progress per *block* (not per stage). The
  // accumulator row is parity-committed to FRAM after every block, and the
  // control cursor encodes the block index; a failure inside a block redoes
  // it from the DMA (Fig. 6 left). Cursor encoding: unit = block + 1 is
  // stored in ctrl[1]; row commits reset the block cursor implicitly
  // because block indices are global across rows.
  void run_tails_bcm(ace::ExecCtx& ctx, std::size_t start_unit, RunStats& st) {
    dev::Device& dv = ctx.dev;
    const ace::CompiledModel& cm = ctx.cm;
    const QLayer& q = ctx.q();
    const std::size_t k = q.k;

    if (start_unit > 0 && start_unit % q.bq != 0) {
      // Mid-row resume: restore the row accumulator committed after block
      // start_unit - 1 (it lives in parity slot [start_unit & 1]).
      const Addr slot = cm.nv_acc_base + (start_unit & 1) * cm.nv_acc_slot_words;
      ace::move_words(dv, MemKind::kFram, slot, MemKind::kSram, cm.sram.acc32, 4 * k);
    }

    // Commit discipline: after every block except a row's last, the
    // accumulator is parity-committed and the cursor advances; a row's
    // last block commits only once the row's *output* is in FRAM
    // (on_row_committed), so a failure in between rolls back exactly one
    // block — never skipping the row commit.
    struct Obs : ace::BcmObserver {
      RunStats& st;
      explicit Obs(RunStats& s) : st(s) {}
      void on_block_done(ace::ExecCtx& c, std::size_t block) override {
        const std::size_t kk = c.q().k;
        if ((block + 1) % c.q().bq == 0) return;  // deferred to the row commit
        notify_supply(c.dev, dev::SupplyEvent::kCommitBegin);
        const Addr slot = c.cm.nv_acc_base + ((block + 1) & 1) * c.cm.nv_acc_slot_words;
        ace::move_words(c.dev, MemKind::kSram, c.cm.sram.acc32, MemKind::kFram, slot, 4 * kk);
        c.dev.write(MemKind::kFram, c.cm.ctrl_base + 1, static_cast<q15_t>(block + 1));
        notify_supply(c.dev, dev::SupplyEvent::kCommitEnd);
        ++st.progress_commits;
        ++st.units_executed;
      }
      void on_row_committed(ace::ExecCtx& c, std::size_t bi) override {
        notify_supply(c.dev, dev::SupplyEvent::kCommitBegin);
        c.dev.write(MemKind::kFram, c.cm.ctrl_base + 1,
                    static_cast<q15_t>((bi + 1) * c.q().bq));
        notify_supply(c.dev, dev::SupplyEvent::kCommitEnd);
        ++st.progress_commits;
        ++st.units_executed;
      }
    } obs(st);

    ace::run_bcm(ctx, ace::BcmState{start_unit, ace::BcmStage::kLoad, 0, 0, 0}, &obs);
  }

  std::size_t layer_ = 0;
  std::size_t unit_ = 0;
  ace::ScratchArena arena_;  // reused across layers, attempts and inferences
};

}  // namespace

std::unique_ptr<RuntimePolicy> make_tails_policy() { return std::make_unique<TailsPolicy>(); }

std::unique_ptr<InferenceRuntime> make_tails_runtime() {
  return make_policy_runtime(make_tails_policy());
}

}  // namespace ehdnn::flex
