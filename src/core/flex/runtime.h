// Intermittent inference runtimes (paper SSIII-C and the SSIV baselines).
//
// All five execution strategies the paper evaluates run the same compiled
// model format on the same device model; only the checkpointing strategy
// (and for SONIC the compute style) differs:
//
//   * AceRuntime  — ACE kernels, no intermittence support. Fast, but on a
//     power failure all volatile progress is gone and the inference
//     restarts; under harvested power it never completes (Fig. 7b "X").
//     Run on the compressed model it is the paper's "ACE"; run on the
//     uncompressed dense model it is the paper's "BASE".
//   * SonicRuntime — SONIC [Gobieski et al., ASPLOS'19]: element-wise CPU
//     inference with loop continuation: loop indices and accumulators are
//     committed to FRAM as execution proceeds (parity slots make the
//     read-modify-write accumulator idempotent). Dense models only.
//   * TailsRuntime — TAILS: the same loop-continuation protocol, but inner
//     vector work runs on the LEA with DMA staging. Progress exists only
//     at vector-op (unit) granularity, so a failure mid-operation rolls
//     back to the start of that operation (Fig. 6 left).
//   * FlexRuntime — the paper's contribution: ACE kernels plus *on-demand*
//     checkpointing. A voltage monitor warns before brown-out; only then
//     does FLEX copy its state (block index, stage bits b0-b2, the live
//     intermediate buffers, the accumulator row) into a two-slot FRAM
//     checkpoint. Steady-state overhead is a cheap header write per layer
//     transition; measured total overhead is ~1% (SSIV-A.5).
//
// The correctness contract every intermittent runtime must satisfy (and
// tests/flex_test.cpp verifies): the final output equals the same
// runtime's continuous-power output bit for bit, for any failure schedule.
//
// All five strategies execute as RuntimePolicy implementations driven by
// the shared IntermittentExecutor (core/flex/executor.h), which owns the
// reboot/recover/starvation/stats loop and exposes incremental
// start()/step()/finished() so runs can be suspended and interleaved.
// The InferenceRuntime interface below is the classic one-call wrapper.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/ace/compiled_model.h"
#include "core/ace/kernels.h"
#include "dsp/fft.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace ehdnn::flex {

// How a run ended. kDidNotFinish covers both the reboot cap and the
// livelock guard (the paper's Fig. 7b "X"); kStarved means the harvester
// never refilled the capacitor within its max_off_s guard — a property of
// the power scenario, not of the runtime, and reported distinctly so a
// scenario sweep can tell the two failure modes apart.
enum class Outcome { kCompleted, kDidNotFinish, kStarved };

const char* outcome_name(Outcome o);

struct RunStats {
  Outcome outcome = Outcome::kDidNotFinish;
  std::vector<fx::q15_t> output;

  bool completed() const { return outcome == Outcome::kCompleted; }

  double on_seconds = 0.0;      // device-active time
  double off_seconds = 0.0;     // recharge gaps
  double energy_j = 0.0;        // total drawn while on
  double energy_by_rail[static_cast<std::size_t>(dev::Rail::kCount)] = {};

  long reboots = 0;
  // Set (with outcome kDidNotFinish) when the executor's livelock
  // watchdog tripped: RunOptions::max_futile_boots consecutive power
  // cycles ended without banking a single progress commit or checkpoint,
  // so the run was rerunning the same work forever.
  bool livelock = false;
  long checkpoints = 0;         // explicit checkpoint events (FLEX)
  double checkpoint_energy_j = 0.0;
  long progress_commits = 0;    // steady-state index/acc commits (SONIC/TAILS)
  long units_executed = 0;      // incl. re-execution after rollback
  long units_total = 0;         // sum of unit_count over layers
  long wasted_units() const { return units_executed - units_total; }

  double total_seconds() const { return on_seconds + off_seconds; }
};

// Host wall-clock phase attribution behind the runners' --profile flag.
// All figures are seconds of HOST time, not modeled device time — the
// instrument tells you where the simulator itself spends its wall-clock
// so optimization work aims at the right phase. Attribution:
//   recharge_s   — recover_from_failure slices (analytic recharge, boot
//                  energy, starvation waits);
//   checkpoint_s — boot-time cursor/state restores plus FLEX checkpoint
//                  writes (carved out of the enclosing kernel slice);
//   kernel_s     — the rest of policy slices: layer kernels, staging,
//                  prepaid settlement;
//   build_s      — device construction + image stamping (drivers);
//   engine_s     — driver bookkeeping (event heap, sinks, reporting),
//                  computed by the driver as total minus the above.
// Null RunOptions::profile (the default) keeps every instrumentation
// site down to one predicted branch.
//
// The slice/recovery/checkpoint counts live as obs::MetricsRegistry
// counter cells ("profile.*") rather than plain fields, so the profile
// printout and the trace-derived metrics read the SAME cells and can
// never disagree; the hot sites cache the stable `long*` pointers below.
struct PhaseProfile {
  double build_s = 0.0;
  double recharge_s = 0.0;
  double kernel_s = 0.0;
  double checkpoint_s = 0.0;
  double engine_s = 0.0;
  obs::MetricsRegistry reg;
  long* slices = reg.counter("profile.slices");  // policy/boot slices (kernel_s)
  long* recoveries = reg.counter("profile.recoveries");    // recover slices
  long* checkpoints = reg.counter("profile.checkpoints");  // FLEX ckpt writes

  PhaseProfile() = default;
  // The cached cells point into this->reg; a copy would alias the
  // source's registry. Profiles are shared by address (RunOptions).
  PhaseProfile(const PhaseProfile&) = delete;
  PhaseProfile& operator=(const PhaseProfile&) = delete;
};

struct RunOptions {
  dsp::FftScaling scaling = dsp::FftScaling::kBlockFloat;
  fx::SatStats* stats = nullptr;
  // Wall-clock phase accounting (--profile); null = off. The pointee is
  // shared across every run the driver profiles and is NOT thread-safe:
  // drivers only wire it on their serial execution paths.
  PhaseProfile* profile = nullptr;
  // Lifecycle-event sink (obs/events.h); null = off (one predicted
  // branch per instrumentation site). Unlike `profile` this IS safe
  // under parallel drivers because each device gets its OWN trace —
  // events are stamped with the device-local simulated clock, so the
  // stream is identical for any worker count.
  obs::EventTrace* trace = nullptr;
  long max_reboots = 200000;  // livelock guard (BASE/ACE under harvesting)
  // Executor-level livelock watchdog: after this many *consecutive* boots
  // that bank neither a progress commit nor a checkpoint, the run is
  // abandoned as kDidNotFinish with RunStats::livelock set. 0 disables
  // the watchdog (the default — one-shot API behaviour is unchanged);
  // the scenario/fleet harnesses enable it so a conv that outcosts the
  // charge burst fails loudly instead of rerunning until max_reboots.
  long max_futile_boots = 0;
  // FLEX voltage-monitor warning threshold (volts). Sized so the energy
  // between v_warn and the brown-out voltage covers the worst-case
  // checkpoint (power::warn_voltage_for computes it from the capacitor
  // parameters and worst_checkpoint_energy below).
  double flex_v_warn = 2.45;
  // Job context, visible to policies through StepContext::opts: the
  // absolute supply-time instant this inference is due (infinity = no
  // deadline). The executor itself never reads it — it exists so a
  // scheduling policy (sched::AdaptivePolicy under sel=deadline) can pick
  // its tier against the time actually remaining. sched::JobQueue fills
  // it from the agenda at every release.
  double deadline_s = std::numeric_limits<double>::infinity();
};

// Worst-case FLEX checkpoint cost for a compiled model on this device —
// the quantity the voltage-monitor threshold must budget for (and the
// paper's "at most 0.033 mJ" per-checkpoint bound, SSIV-A.5).
double worst_checkpoint_energy(const ace::CompiledModel& cm, const dev::CostModel& cost);

// SONIC's largest *minimal committable unit* for a compiled model: the
// most expensive single conv output element / dense inner tile / element
// block, including its operand reads and commit write. A charge burst
// below this (with margin) livelocks SONIC — the static geometry test
// that pins the adaptive ladder to the tile runtime at micro-capacitor
// envelopes (sched::AdaptiveSpec::ckpt_margin).
double sonic_worst_commit_energy(const ace::CompiledModel& cm, const dev::CostModel& cost);

class InferenceRuntime {
 public:
  virtual ~InferenceRuntime() = default;
  virtual std::string name() const = 0;

  // Runs one inference. `input` is written into the first activation
  // buffer cost-free (sensor DMA happens outside the measured window for
  // every framework alike). The device must already have its supply
  // attached; the runtime handles failures/reboots internally.
  virtual RunStats infer(dev::Device& dev, const ace::CompiledModel& cm,
                         std::span<const fx::q15_t> input, const RunOptions& opts = {}) = 0;
};

// Factories.
std::unique_ptr<InferenceRuntime> make_ace_runtime();    // also BASE (dense model)
std::unique_ptr<InferenceRuntime> make_sonic_runtime();
std::unique_ptr<InferenceRuntime> make_tails_runtime();
std::unique_ptr<InferenceRuntime> make_flex_runtime();
std::unique_ptr<InferenceRuntime> make_tile_runtime();  // sub-layer cursors, dense models

// --- shared helpers ---------------------------------------------------------

// Writes the input into act_a (cost-free; see infer() contract).
void load_input(dev::Device& dev, const ace::CompiledModel& cm,
                std::span<const fx::q15_t> input);

// Reads the final output from the last layer's activation buffer
// (cost-free extraction for comparison).
std::vector<fx::q15_t> read_output(dev::Device& dev, const ace::CompiledModel& cm);

// Shared post-failure step: recharge the supply, detect starvation,
// reboot the device. Returns false when the run must stop because the
// harvester starved (outcome already recorded on `st`); the caller breaks
// its retry loop. Off-time is accumulated on `st`.
bool recover_from_failure(dev::Device& dev, RunStats& st);

// Announces an execution landmark to the attached supply (no-op without
// one). Runtimes call this at progress-commit and checkpoint boundaries so
// schedule-driven supplies can inject failures at adversarial instants.
void notify_supply(dev::Device& dev, dev::SupplyEvent e);

// Simulated-time stamp for obs events: the supply clock when attached
// (device-local, monotone, invariant under --jobs/--shards), else the
// device's modeled elapsed time (bench power).
inline double obs_now_s(const dev::Device& dev) {
  const dev::PowerSupply* s = dev.supply();
  return s != nullptr ? s->now() : dev.elapsed_seconds();
}

// Start-of-inference marker so stats are per-inference deltas even when a
// device instance runs many inferences.
struct TraceBaseline {
  double energy[static_cast<std::size_t>(dev::Rail::kCount)] = {};
  double total_cycles = 0.0;
  long reboots = 0;
};
TraceBaseline mark(const dev::Device& dev);

// Fills RunStats energy/time fields from the device trace delta.
void fill_stats(RunStats& st, const dev::Device& dev, const TraceBaseline& base);

// Sum of unit_count over all layers.
long total_units(const ace::CompiledModel& cm);

}  // namespace ehdnn::flex
