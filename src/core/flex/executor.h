// The step-based intermittent execution core.
//
// Every execution strategy the paper evaluates (BASE/ACE, SONIC, TAILS,
// FLEX) shares one loop: boot, restore whatever progress cursor the
// strategy persists, execute resumable chunks until a brown-out throws
// PowerFailure, recharge, reboot, repeat — while accounting time, energy,
// reboots and starvation. Historically each runtime re-implemented that
// loop around a monolithic run-to-completion body; here the loop lives
// once in IntermittentExecutor and the strategies are RuntimePolicy
// implementations (the same policy-vs-engine split SONIC/TAILS made at
// the kernel level).
//
// The executor is *incremental*: start() arms a run, each step() executes
// at most one bounded slice (a policy chunk, a boot, or a post-failure
// recovery), and finished()/stats() read the result. Between step() calls
// nothing touches the device, so a run can be suspended indefinitely and
// interleaved with other runs — the property the fleet harness
// (sim/fleet.h) uses to step hundreds of independent devices round-robin.
// infer() on the classic InferenceRuntime wrapper is just start() + a
// drain loop, so the one-call API is unchanged and bit-exact.
#pragma once

#include <memory>
#include <string>

#include "core/flex/runtime.h"

namespace ehdnn::flex {

// Everything a policy may touch while executing: the device under power,
// the compiled model, the (cost-free) input, caller options, and the
// run's stats accumulator.
struct StepContext {
  dev::Device& dev;
  const ace::CompiledModel& cm;
  std::span<const fx::q15_t> input;
  const RunOptions& opts;
  RunStats& st;
};

// A checkpoint strategy, driven by the executor. Policies are stateful
// per run (cursors, livelock counters, checkpoint sequence numbers) and
// reusable across runs: on_boot(fresh=true) must reset everything.
class RuntimePolicy {
 public:
  virtual ~RuntimePolicy() = default;

  virtual std::string name() const = 0;

  // Units accounted as RunStats::units_total for this policy (SONIC
  // counts element tiles; everyone else the ACE kernel units).
  virtual long units_total(const ace::CompiledModel& cm) const { return total_units(cm); }

  // Called at the start of every power cycle: once with fresh=true when
  // the run starts (load the input, reset persistent cursors in FRAM) and
  // with fresh=false after every reboot (restore the cursor from FRAM).
  // Costed FRAM traffic here may throw PowerFailure; the executor treats
  // that like any mid-step brown-out.
  virtual void on_boot(StepContext& ctx, bool fresh) = 0;

  // Executes one resumable chunk — one layer, in every shipped policy.
  // Returns true when the inference has fully committed its output.
  virtual bool step(StepContext& ctx) = 0;

  // Unit-commit bookkeeping hook. Policies that wire ace::UnitHooks call
  // this from `committed`; the default counts the unit, and persistent
  // policies layer their commit writes on top (FLEX checkpoints every
  // commit once the monitor has warned).
  virtual void on_commit(StepContext& ctx, std::size_t unit) {
    (void)unit;
    ++ctx.st.units_executed;
    obs::record(ctx.opts.trace, obs_now_s(ctx.dev), obs::EventKind::kCommit);
  }

  // Voltage-monitor warning (the falling crossing of flex_v_warn):
  // persist enough state to survive the imminent brown-out. NOTE: the
  // executor does not sample the monitor — a policy that polls (only
  // FLEX does) fires this from its own kernel boundary hooks. It lives
  // on the interface so warning-driven persistence has one named slot,
  // not so the engine will call it for you.
  virtual void on_warning(StepContext& ctx, std::size_t unit) {
    (void)ctx;
    (void)unit;
  }

  // Consulted after a power failure, before the executor's own
  // max_reboots guard and the recharge: return false to abandon the run
  // as DNF (ACE's livelock detector lives here). `attempt_cycles` is the
  // device-cycle count of the power cycle that just died.
  virtual bool retry_after_failure(StepContext& ctx, double attempt_cycles) {
    (void)ctx;
    (void)attempt_cycles;
    return true;
  }

  // The compiled model whose output buffer holds the final result —
  // `armed` (what start() was called with) for every fixed policy. The
  // adaptive scheduler may finish a run on a co-resident model variant
  // (e.g. the dense twin under a lean forecast) and redirects the
  // executor's output read there.
  virtual const ace::CompiledModel& output_model(const ace::CompiledModel& armed) const {
    return armed;
  }
};

// Owns the reboot/recover/starvation/stats loop shared by all runtimes
// and drives a RuntimePolicy through it, one bounded slice per step().
class IntermittentExecutor {
 public:
  // Non-owning: the policy must outlive the executor. A policy instance
  // must not be shared by two executors with overlapping runs.
  explicit IntermittentExecutor(RuntimePolicy& policy) : policy_(&policy) {}

  // Arms a run. `input` must stay alive until the run finishes (it is
  // re-loaded on every reboot by restart-from-scratch policies). Calling
  // start() again abandons any unfinished run and starts fresh.
  void start(dev::Device& dev, const ace::CompiledModel& cm,
             std::span<const fx::q15_t> input, const RunOptions& opts = {});

  // Executes at most one slice: a boot (cursor restore), one policy
  // chunk, or the failure/recovery handling after a brown-out. Returns
  // true while the run wants more step() calls; false once finished
  // (also when called without an armed run).
  bool step();

  // True once the run has ended — completed, DNF, or starved.
  bool finished() const { return done_; }

  // Next instant (supply time) at which step() can make progress: a live
  // run is always immediately actionable, so this is the supply's current
  // time; +infinity when no run is armed or the run has finished. The
  // fleet's next-event engine keys its queue on this through
  // sched::JobQueue::next_time_s().
  double next_actionable_s() const;

  // The run's stats; fully populated (trace deltas, output) only once
  // finished() is true.
  const RunStats& stats() const { return st_; }
  RunStats take_stats() { return std::move(st_); }

  // Convenience: start() + drain. Exactly the classic infer().
  RunStats run(dev::Device& dev, const ace::CompiledModel& cm,
               std::span<const fx::q15_t> input, const RunOptions& opts = {});

 private:
  void finish();
  // The slice body behind step(). When profiling, `phase` receives which
  // PhaseProfile slot the slice's wall-clock belongs to (0 = kernel,
  // 1 = recharge, 2 = checkpoint/boot-restore); null when not profiling.
  bool step_impl(int* phase);
  StepContext ctx() { return StepContext{*dev_, *cm_, input_, opts_, st_}; }

  RuntimePolicy* policy_;
  dev::Device* dev_ = nullptr;
  const ace::CompiledModel* cm_ = nullptr;
  std::span<const fx::q15_t> input_;
  RunOptions opts_;
  RunStats st_;
  TraceBaseline base_;
  double attempt_start_cycles_ = 0.0;
  // Livelock watchdog (RunOptions::max_futile_boots): consecutive power
  // cycles whose banked progress (progress_commits + checkpoints) did not
  // move. Reset on any banked progress and at start().
  long futile_boots_ = 0;
  long banked_mark_ = 0;
  bool need_recover_ = false;
  bool need_boot_ = true;
  bool fresh_ = true;
  bool done_ = true;  // no run armed yet
};

// Policy factories — the five strategies as policies. make_*_runtime()
// in runtime.h returns these wrapped via make_policy_runtime().
std::unique_ptr<RuntimePolicy> make_ace_policy();  // also BASE (dense model)
std::unique_ptr<RuntimePolicy> make_sonic_policy();
std::unique_ptr<RuntimePolicy> make_tails_policy();
std::unique_ptr<RuntimePolicy> make_flex_policy();

// The tile policy (sub-layer progress preservation): conv/FC layers
// execute in reduction tiles of `tile_elems` MACs, each followed by a
// torn-write-safe commit of a (layer, outer, tile, accumulator) cursor to
// a double-buffered FRAM record — so a boot banks a few tiles even when a
// whole conv pixel outcosts the charge burst (micro-capacitor envelopes
// where SONIC's per-pixel commit livelocks). Dense models only, exactly
// like SONIC. Spec grammar: "tile" or "tile:t=N" (N >= 1).
struct TileSpec {
  std::size_t tile_elems = 8;
};
TileSpec parse_tile_spec(const std::string& key);  // throws on malformed args
std::unique_ptr<RuntimePolicy> make_tile_policy(TileSpec spec = {});

// Wraps a policy as the classic one-call InferenceRuntime.
std::unique_ptr<InferenceRuntime> make_policy_runtime(std::unique_ptr<RuntimePolicy> policy);

}  // namespace ehdnn::flex
