// FlexPolicy: the paper's FLEX — intermittent support for ACE with
// on-demand robust checkpointing (SSIII-C, Fig. 6).
//
// Steady state costs almost nothing: the only unconditional checkpoint is
// a small header written at each layer transition (which also closes the
// ping-pong-buffer W-A-R hazard: execution never needs to resume more than
// one layer back, so a later layer can safely overwrite the buffer an
// earlier layer read). Everything else happens on demand: the voltage
// monitor warns before brown-out, and only then does FLEX copy its live
// state — block index, the b0-b2 stage bits, FFT intermediates, the
// accumulator row — into FRAM.
//
// Checkpoints are double-buffered: payload and header fields first, the
// sequence word last (a single-word, hence atomic, commit). A failure in
// the middle of a checkpoint simply falls back to the previous slot, and
// the fallback is always safe because a slot only becomes stale after its
// successor's sequence word lands.

#include <algorithm>
#include <chrono>

#include "core/flex/executor.h"
#include "util/check.h"
#include "util/math.h"

namespace ehdnn::flex {

namespace {

using dev::Addr;
using dev::MemKind;
using fx::q15_t;
using quant::QKind;
using quant::QLayer;

// Header word offsets within a checkpoint slot.
constexpr Addr kSeq = 0;    // written last; 0 = invalid
constexpr Addr kLayer = 1;
constexpr Addr kUnit = 2;   // conv row / dense chunk / cpu block / bcm block
constexpr Addr kStage = 3;  // BcmStage (bcm checkpoints only)
constexpr Addr kExpX = 4;
constexpr Addr kExpW = 5;
constexpr Addr kExpP = 6;
constexpr Addr kKind = 7;   // 0 none, 1 dense acc32, 2 bcm full state
constexpr Addr kPayload = 16;

struct ResumePoint {
  std::size_t layer = 0;
  std::size_t unit = 0;
  bool is_bcm = false;
  ace::BcmState bcm;
  int kind = 0;
  std::size_t seq = 0;
  Addr slot_base = 0;  // where the payload lives

  // Execution-position key (sequence number excluded): two checkpoints at
  // the same position represent zero forward progress.
  bool same_position(const ResumePoint& o) const {
    return layer == o.layer && unit == o.unit && kind == o.kind &&
           bcm.block == o.bcm.block && bcm.stage == o.bcm.stage;
  }
};

// Serial-number comparison so the 16-bit sequence word may wrap.
bool seq_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b)) > 0;
}

class FlexPolicy : public RuntimePolicy {
 public:
  std::string name() const override { return "ACE+FLEX"; }

  void on_boot(StepContext& ctx, bool fresh) override {
    dev::Device& dev = ctx.dev;
    const ace::CompiledModel& cm = ctx.cm;
    prof_ = ctx.opts.profile;
    trace_ = ctx.opts.trace;
    if (fresh) {
      load_input(dev, cm, ctx.input);
      // Invalidate both slots: fresh inference, fresh progress.
      dev.write(MemKind::kFram, cm.ckpt_base + kSeq, 0);
      dev.write(MemKind::kFram, cm.ckpt_base + cm.ckpt_slot_words + kSeq, 0);
      seq_ = 0;
      warned_ = false;
      armed_ = false;
      degraded_ = false;
      have_prev_ = false;
    }
    rp_ = read_resume_point(dev, cm);
    // Progress guard: a power cycle that resumes exactly where the
    // previous one did made no forward progress (e.g. the voltage
    // monitor is mis-thresholded and the warning checkpoint lands on
    // the resume point). Degraded mode checkpoints at every commit —
    // TAILS-like cost, but guaranteed progress in any configuration.
    degraded_ = have_prev_ && rp_.same_position(prev_rp_);
    prev_rp_ = rp_;
    have_prev_ = true;
    layer_ = rp_.layer;
    resume_pending_ = rp_.seq != 0;
  }

  bool step(StepContext& ctx) override {
    dev::Device& dev = ctx.dev;
    const ace::CompiledModel& cm = ctx.cm;
    const std::size_t l = layer_;
    const QLayer& q = cm.model.layers[l];
    ace::ExecCtx ectx{dev, cm, l, cm.act_in(l), cm.act_out(l),
                      ctx.opts.scaling, ctx.opts.stats, &arena_};
    const bool resuming = resume_pending_ && l == rp_.layer;

    ace::UnitHooks hooks;
    hooks.boundary = [&](std::size_t unit) { poll_and_checkpoint(ctx, unit); };
    hooks.committed = [&](std::size_t unit) { on_commit(ctx, unit); };

    if (q.kind == QKind::kBcmDense) {
      ace::BcmState bst{0, ace::BcmStage::kLoad, 0, 0, 0};
      if (resuming && rp_.is_bcm) {
        bst = rp_.bcm;
        restore_bcm_payload(dev, cm, rp_, q);
      }
      FlexBcmObserver obs(*this, ctx);
      ace::run_bcm(ectx, bst, &obs);
    } else {
      std::size_t start = 0;
      if (resuming) {
        start = rp_.unit;
        if (q.kind == QKind::kDense && rp_.kind == 1 && start > 0) {
          ace::move_words(dev, MemKind::kFram, rp_.slot_base + kPayload, MemKind::kSram,
                          cm.sram.acc32, 2 * q.out_ch);
        }
      }
      ace::run_layer(ectx, start, hooks);
    }

    // Mandatory layer-transition checkpoint (header-only): resume never
    // reaches back past a completed layer.
    write_checkpoint(dev, cm, /*layer=*/l + 1, /*unit=*/0, /*kind=*/0, nullptr, nullptr,
                     ctx.st);
    resume_pending_ = false;
    return ++layer_ == cm.model.layers.size();
  }

  void on_commit(StepContext& ctx, std::size_t unit) override {
    RuntimePolicy::on_commit(ctx, unit);
    if (degraded_ || warned_) {
      // Once the monitor has warned (death imminent) — or the progress
      // guard tripped — persist every commit so at most one unit of
      // work is lost to the brown-out.
      const QLayer& q = ctx.cm.model.layers[layer_];
      const int kind = q.kind == QKind::kDense ? 1 : 0;
      write_checkpoint(ctx.dev, ctx.cm, layer_, unit + 1, kind, nullptr,
                       kind == 1 ? &q : nullptr, ctx.st);
    }
  }

  // The monitor fired: persist the live state for the layer kind at hand
  // (the BCM path carries its stage machine separately and checkpoints
  // directly from poll_and_checkpoint).
  void on_warning(StepContext& ctx, std::size_t unit) override {
    const QLayer& q = ctx.cm.model.layers[layer_];
    if (q.kind == QKind::kDense) {
      write_checkpoint(ctx.dev, ctx.cm, layer_, unit, /*kind=*/1, nullptr, &q, ctx.st);
    } else {
      write_checkpoint(ctx.dev, ctx.cm, layer_, unit, /*kind=*/0, nullptr, nullptr, ctx.st);
    }
  }

  bool retry_after_failure(StepContext& ctx, double attempt_cycles) override {
    (void)ctx;
    (void)attempt_cycles;
    warned_ = false;
    armed_ = false;
    return true;
  }

 private:
  Addr slot_addr(const ace::CompiledModel& cm, std::size_t slot) const {
    return cm.ckpt_base + slot * cm.ckpt_slot_words;
  }

  ResumePoint read_resume_point(dev::Device& dev, const ace::CompiledModel& cm) {
    ResumePoint best;  // defaults: layer 0, unit 0, seq 0 (fresh start)
    for (std::size_t s = 0; s < 2; ++s) {
      const Addr b = slot_addr(cm, s);
      const auto seq = static_cast<std::uint16_t>(dev.read(MemKind::kFram, b + kSeq));
      if (seq == 0 ||
          (best.seq != 0 && !seq_newer(seq, static_cast<std::uint16_t>(best.seq)))) {
        continue;
      }
      best.seq = seq;
      best.slot_base = b;
      best.layer = static_cast<std::uint16_t>(dev.read(MemKind::kFram, b + kLayer));
      best.unit = static_cast<std::uint16_t>(dev.read(MemKind::kFram, b + kUnit));
      best.kind = static_cast<std::uint16_t>(dev.read(MemKind::kFram, b + kKind));
      best.is_bcm = best.kind == 2;
      if (best.is_bcm) {
        best.bcm.block = best.unit;
        best.bcm.stage =
            static_cast<ace::BcmStage>(dev.read(MemKind::kFram, b + kStage));
        best.bcm.exp_x = dev.read(MemKind::kFram, b + kExpX);
        best.bcm.exp_w = dev.read(MemKind::kFram, b + kExpW);
        best.bcm.exp_p = dev.read(MemKind::kFram, b + kExpP);
      }
    }
    seq_ = best.seq;  // continue the sequence monotonically
    return best;
  }

  void restore_bcm_payload(dev::Device& dev, const ace::CompiledModel& cm,
                           const ResumePoint& rp, const QLayer& q) {
    const std::size_t k = q.k;
    Addr p = rp.slot_base + kPayload;
    ace::move_words(dev, MemKind::kFram, p, MemKind::kSram, cm.sram.acc32, 4 * k);
    p += 4 * k;
    ace::move_words(dev, MemKind::kFram, p, MemKind::kSram, cm.sram.fft_x, 2 * k);
    p += 2 * k;
    ace::move_words(dev, MemKind::kFram, p, MemKind::kSram, cm.sram.fft_w, 2 * k);
  }

  // The on-demand trigger: sample the voltage monitor; on the *falling
  // crossing* of the warning threshold, checkpoint once (SSIII-C "predicts
  // a power failure and checkpoints the latest intermediate result").
  // Edge-triggering (arm above the threshold, fire below it) keeps a
  // mis-thresholded monitor from checkpointing at the resume point and
  // burning the burst; the progress guard in on_boot covers the rest.
  void poll_and_checkpoint(StepContext& ctx, std::size_t unit,
                           const ace::BcmState* bcm = nullptr) {
    if (warned_) return;
    const double v = ctx.dev.sample_voltage();
    if (v >= ctx.opts.flex_v_warn) {
      armed_ = true;
      return;
    }
    if (!armed_) return;
    warned_ = true;

    if (bcm != nullptr) {
      const QLayer& q = ctx.cm.model.layers[layer_];
      write_checkpoint(ctx.dev, ctx.cm, layer_, bcm->block, /*kind=*/2, bcm, &q, ctx.st);
    } else {
      on_warning(ctx, unit);
    }
  }

  void write_checkpoint(dev::Device& dev, const ace::CompiledModel& cm, std::size_t layer,
                        std::size_t unit, int kind, const ace::BcmState* bcm,
                        const QLayer* q, RunStats& st) {
    const auto before = dev.trace().snapshot();
    const auto host_t0 = prof_ != nullptr ? std::chrono::steady_clock::now()
                                          : std::chrono::steady_clock::time_point{};
    obs::record(trace_, obs_now_s(dev), obs::EventKind::kCheckpointBegin);
    notify_supply(dev, dev::SupplyEvent::kCheckpointBegin);
    const std::size_t next_seq = seq_ + 1;
    const Addr b = slot_addr(cm, next_seq & 1);

    // Payload first, then header fields, sequence word last.
    if (kind == 1 && q != nullptr) {
      ace::move_words(dev, MemKind::kSram, cm.sram.acc32, MemKind::kFram, b + kPayload,
                      2 * q->out_ch);
    } else if (kind == 2 && q != nullptr) {
      const std::size_t k = q->k;
      Addr p = b + kPayload;
      ace::move_words(dev, MemKind::kSram, cm.sram.acc32, MemKind::kFram, p, 4 * k);
      p += 4 * k;
      ace::move_words(dev, MemKind::kSram, cm.sram.fft_x, MemKind::kFram, p, 2 * k);
      p += 2 * k;
      ace::move_words(dev, MemKind::kSram, cm.sram.fft_w, MemKind::kFram, p, 2 * k);
    }
    dev.write(MemKind::kFram, b + kLayer, static_cast<q15_t>(layer));
    dev.write(MemKind::kFram, b + kUnit, static_cast<q15_t>(unit));
    dev.write(MemKind::kFram, b + kKind, static_cast<q15_t>(kind));
    if (bcm != nullptr) {
      dev.write(MemKind::kFram, b + kStage, static_cast<q15_t>(bcm->stage));
      dev.write(MemKind::kFram, b + kExpX, static_cast<q15_t>(bcm->exp_x));
      dev.write(MemKind::kFram, b + kExpW, static_cast<q15_t>(bcm->exp_w));
      dev.write(MemKind::kFram, b + kExpP, static_cast<q15_t>(bcm->exp_p));
    }
    dev.write(MemKind::kFram, b + kSeq, static_cast<q15_t>(next_seq));
    notify_supply(dev, dev::SupplyEvent::kCheckpointEnd);
    obs::record(trace_, obs_now_s(dev), obs::EventKind::kCheckpointEnd,
                static_cast<std::int32_t>(next_seq));
    seq_ = next_seq;

    const auto delta = dev.trace().delta(before);
    ++st.checkpoints;
    st.checkpoint_energy_j += delta.energy;
    if (prof_ != nullptr) {
      // Carve the write out of the enclosing kernel slice: the executor
      // adds the whole slice's wall-clock to kernel_s afterwards.
      const double dt =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - host_t0).count();
      prof_->checkpoint_s += dt;
      prof_->kernel_s -= dt;
      ++*prof_->checkpoints;
    }
  }

  class FlexBcmObserver : public ace::BcmObserver {
   public:
    FlexBcmObserver(FlexPolicy& p, StepContext& ctx) : p_(p), ctx_(ctx) {}

    void on_stage(ace::ExecCtx& ectx, const ace::BcmState& stg) override {
      (void)ectx;
      p_.poll_and_checkpoint(ctx_, stg.block, &stg);
    }
    void on_block_done(ace::ExecCtx& ectx, std::size_t block) override {
      // Between blocks the resumable state is (block + 1, kLoad) with the
      // accumulator row live in SRAM. A row's last block defers to the row
      // commit so a restart can never skip committing the row output.
      const ace::BcmState next{block + 1, ace::BcmStage::kLoad, 0, 0, 0};
      if ((block + 1) % ectx.q().bq != 0) {
        p_.poll_and_checkpoint(ctx_, block + 1, &next);
        if (p_.degraded_ || p_.warned_) {
          p_.write_checkpoint(ectx.dev, ectx.cm, p_.layer_, block + 1, /*kind=*/2, &next,
                              &ectx.q(), ctx_.st);
        }
      }
    }
    void on_row_committed(ace::ExecCtx& ectx, std::size_t bi) override {
      ++ctx_.st.units_executed;
      if (p_.degraded_ || p_.warned_) {
        const ace::BcmState next{(bi + 1) * ectx.q().bq, ace::BcmStage::kLoad, 0, 0, 0};
        p_.write_checkpoint(ectx.dev, ectx.cm, p_.layer_, next.block, /*kind=*/2, &next,
                            &ectx.q(), ctx_.st);
      }
    }

   private:
    FlexPolicy& p_;
    StepContext& ctx_;
  };

  std::size_t seq_ = 0;
  PhaseProfile* prof_ = nullptr;  // --profile sink, cached at boot
  obs::EventTrace* trace_ = nullptr;  // obs sink, cached at boot
  bool warned_ = false;
  bool armed_ = false;
  bool degraded_ = false;
  std::size_t layer_ = 0;
  bool resume_pending_ = false;
  ResumePoint rp_;
  ResumePoint prev_rp_;
  bool have_prev_ = false;
  ace::ScratchArena arena_;  // reused across layers, attempts and inferences
};

}  // namespace

std::unique_ptr<RuntimePolicy> make_flex_policy() { return std::make_unique<FlexPolicy>(); }

std::unique_ptr<InferenceRuntime> make_flex_runtime() {
  return make_policy_runtime(make_flex_policy());
}

double worst_checkpoint_energy(const ace::CompiledModel& cm, const dev::CostModel& cost) {
  // Largest payload: BCM full state (accumulator row + both complex
  // buffers) plus the header, written with DMA word costs.
  std::size_t max_k = 0;
  std::size_t max_dense_out = 0;
  for (const auto& l : cm.model.layers) {
    if (l.kind == quant::QKind::kBcmDense) max_k = std::max(max_k, l.k);
    if (l.kind == quant::QKind::kDense) max_dense_out = std::max(max_dense_out, l.out_ch);
  }
  const std::size_t words = std::max(8 * max_k, 2 * max_dense_out) + 16;
  const double per_word =
      cost.e_fram_write + cost.e_sram_read +
      cost.cycles_dma_word / cost.cpu_hz * cost.p_dma_active;
  return static_cast<double>(words) * per_word +
         cost.cycles_dma_setup / cost.cpu_hz * cost.p_dma_active;
}

}  // namespace ehdnn::flex
