// TilePolicy: sub-layer progress preservation for micro-capacitor power
// envelopes (the ROADMAP's "Sub-layer progress preservation" item).
//
// Every other strategy banks progress at layer/unit granularity, so a
// conv whose single output element outcosts one charge burst re-executes
// forever — SONIC's smallest conv commit is a whole output pixel, and at
// <=50 nF that pixel never fits a burst. Tile splits each element's
// reduction into tiles of `t` MACs (walked through the LayerPlan gather
// tables, core/ace/kernels.cpp run_tile) and after every tile commits a
// (layer, outer, tile, accumulator) cursor to FRAM, so a boot that
// survives one tile plus one commit makes forward progress.
//
// The cursor record is double-buffered and torn-write safe: two slots in
// the compiled model's ctrl block (ace::kTileCursorOffset), each
// [epoch | layer | outer | tile | acc64]. A commit writes the payload
// words first and publishes with the single-word epoch write LAST; a
// brown-out anywhere inside the commit leaves the slot's old epoch in
// place, so the next boot falls back to the other (previous, consistent)
// slot — never a mixed record. Epochs alternate slots by parity, with 0
// reserved as "invalid" (what a fresh run writes to both slots); the
// uint16 wrap skips to 2 so the parity alternation survives it.
//
// Replaying a tile whose commit tore is idempotent: operands live in the
// read-only half of the activation ping-pong, the accumulator restores
// from the last published cursor, and the output word (written only on an
// element's final tile) is rewritten with the identical value. Outputs
// are therefore bit-identical to continuous power for any failure
// schedule — the contract tests/fuzz_intermittent_test.cpp replays
// against torn-tile, torn-payload and torn-epoch-flip schedules.
//
// Dense models only (no BCM support), exactly like SONIC; spec grammar
// "tile[:t=N]" with N >= 1 MACs per tile (default 8).

#include <algorithm>

#include "core/flex/executor.h"
#include "util/check.h"
#include "util/math.h"
#include "util/spec.h"

namespace ehdnn::flex {

namespace {

using dev::Addr;
using dev::MemKind;
using fx::q15_t;

// Same 16-bit sequence comparison the FLEX checkpoint slots use.
bool epoch_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b)) > 0;
}

class TilePolicy : public RuntimePolicy {
 public:
  explicit TilePolicy(TileSpec spec) : t_(spec.tile_elems) {}

  std::string name() const override { return "TILE"; }

  long units_total(const ace::CompiledModel& cm) const override {
    return static_cast<long>(ace::tile_total_units(cm, t_));
  }

  void on_boot(StepContext& ctx, bool fresh) override {
    dev::Device& dev = ctx.dev;
    const ace::CompiledModel& cm = ctx.cm;
    if (fresh) {
      // Cursor fields persist as single q15 words; make sure this model
      // cannot overflow them (would corrupt the resume position).
      for (std::size_t l = 0; l < cm.model.layers.size(); ++l) {
        const quant::QLayer& q = cm.model.layers[l];
        const std::size_t outers =
            q.kind == quant::QKind::kDense ? q.out_ch : q.out_size();
        const std::size_t red =
            q.kind == quant::QKind::kDense
                ? q.in_ch
                : q.in_ch * std::max<std::size_t>(q.kh * q.kw, q.k);
        check(outers <= 0xffff && div_ceil(red, t_) <= 0xffff,
              "tile: model too large for 16-bit cursor fields");
      }
      load_input(dev, cm, ctx.input);
      // Invalidate both slots; epoch 0 is never published by a commit.
      dev.write(MemKind::kFram, slot_base(cm, 0), 0);
      dev.write(MemKind::kFram, slot_base(cm, 1), 0);
      cur_ = ace::TileCursor{};
      epoch_ = 0;
      return;
    }
    // Restore from the newer valid slot. A torn commit never published
    // its epoch word, so the previous consistent record wins.
    const auto e0 = read_u16(dev, slot_base(cm, 0));
    const auto e1 = read_u16(dev, slot_base(cm, 1));
    cur_ = ace::TileCursor{};
    epoch_ = 0;
    int pick = -1;
    if (e0 != 0 && (e1 == 0 || epoch_newer(e0, e1))) {
      pick = 0;
    } else if (e1 != 0) {
      pick = 1;
    }
    if (pick >= 0) {
      const Addr b = slot_base(cm, static_cast<std::size_t>(pick));
      epoch_ = pick == 0 ? e0 : e1;
      cur_.layer = read_u16(dev, b + 1);
      cur_.outer = read_u16(dev, b + 2);
      cur_.tile = read_u16(dev, b + 3);
      cur_.acc = ace::read_acc64(dev, MemKind::kFram, b + 4, 0);
    }
  }

  bool step(StepContext& ctx) override {
    const ace::CompiledModel& cm = ctx.cm;
    // A brown-out during the FINAL cursor commit can resume with the
    // cursor already past the last layer: the output is fully committed,
    // there is nothing left to execute.
    if (cur_.layer >= cm.model.layers.size()) return true;
    const std::size_t l = cur_.layer;
    ace::ExecCtx ectx{ctx.dev,          cm,
                      l,                cm.act_in(l),
                      cm.act_out(l),    ctx.opts.scaling,
                      ctx.opts.stats,   &arena_};
    bool layer_done = false;
    while (!layer_done) {
      layer_done = ace::run_tile(ectx, cur_, t_);
      commit_cursor(ctx);
      on_commit(ctx, cur_.tile);
    }
    return cur_.layer == cm.model.layers.size();
  }

  void on_commit(StepContext& ctx, std::size_t unit) override {
    RuntimePolicy::on_commit(ctx, unit);
    ++ctx.st.progress_commits;
  }

 private:
  static Addr slot_base(const ace::CompiledModel& cm, std::size_t slot) {
    return cm.ctrl_base + ace::kTileCursorOffset + slot * ace::kTileSlotWords;
  }

  static std::uint16_t read_u16(dev::Device& dev, Addr a) {
    return static_cast<std::uint16_t>(dev.read(MemKind::kFram, a));
  }

  void commit_cursor(StepContext& ctx) {
    dev::Device& dev = ctx.dev;
    auto next = static_cast<std::uint16_t>(epoch_ + 1);
    // Skip the invalid epoch 0 on wrap; skipping TWO values keeps the
    // slot parity alternating, so a torn commit always tears into the
    // slot the previous record does NOT occupy.
    if (next == 0) next = 2;
    const Addr b = slot_base(ctx.cm, next & 1);
    notify_supply(dev, dev::SupplyEvent::kCommitBegin);
    // Payload first; the single-word epoch publish is what makes the
    // slot valid, so a tear anywhere before it is harmless.
    dev.write(MemKind::kFram, b + 1, static_cast<q15_t>(cur_.layer));
    dev.write(MemKind::kFram, b + 2, static_cast<q15_t>(cur_.outer));
    dev.write(MemKind::kFram, b + 3, static_cast<q15_t>(cur_.tile));
    ace::write_acc64(dev, MemKind::kFram, b + 4, 0, cur_.acc);
    dev.write(MemKind::kFram, b + 0, static_cast<q15_t>(next));
    notify_supply(dev, dev::SupplyEvent::kCommitEnd);
    obs::record(ctx.opts.trace, obs_now_s(dev), obs::EventKind::kTileCursorWrite,
                static_cast<std::int32_t>(cur_.layer),
                static_cast<std::int32_t>(cur_.tile));
    epoch_ = next;
  }

  std::size_t t_;
  ace::TileCursor cur_;
  std::uint16_t epoch_ = 0;
  ace::ScratchArena arena_;
};

}  // namespace

TileSpec parse_tile_spec(const std::string& key) {
  TileSpec spec;
  const std::size_t colon = key.find(':');
  check(key.substr(0, colon) == "tile", "tile spec must start with \"tile\": " + key);
  if (colon == std::string::npos) return spec;
  SpecArgs a(key, key.substr(colon + 1));
  const double t = a.num("t", static_cast<double>(spec.tile_elems));
  check(t >= 1.0 && t <= 4096.0 && t == static_cast<double>(static_cast<long>(t)),
        "spec \"" + key + "\": t must be an integer in [1, 4096]");
  spec.tile_elems = static_cast<std::size_t>(t);
  a.finish();
  return spec;
}

std::unique_ptr<RuntimePolicy> make_tile_policy(TileSpec spec) {
  return std::make_unique<TilePolicy>(spec);
}

std::unique_ptr<InferenceRuntime> make_tile_runtime() {
  return make_policy_runtime(make_tile_policy());
}

}  // namespace ehdnn::flex
