// Voltage-monitor support for FLEX's on-demand checkpointing (SSIII-C):
// "with the help of a voltage monitor system, FLEX predicts a power
// failure and checkpoints the latest intermediate result."
//
// The warn threshold is sized so that the energy left between v_warn and
// v_off covers the worst-case checkpoint plus a safety margin — i.e. once
// the monitor fires, FLEX is guaranteed to get its state into FRAM before
// the brown-out.
#pragma once

#include <cmath>

#include "power/capacitor.h"

namespace ehdnn::power {

// Smallest v_warn such that C/2 (v_warn^2 - v_off^2) >= energy_budget.
inline double warn_voltage_for(const CapacitorConfig& cfg, double energy_budget_j,
                               double safety_factor = 2.0) {
  const double need = energy_budget_j * safety_factor;
  const double v2 = cfg.v_off * cfg.v_off + 2.0 * need / cfg.capacitance_f;
  return std::sqrt(v2);
}

}  // namespace ehdnn::power
