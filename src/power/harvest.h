// Harvest-source models: the simulation stand-in for the paper's SIGLENT
// SDG1032X function generator driving an energy harvester (SSIII-D).
//
// A source is just power-versus-time; the capacitor supply integrates it.
// Square/sine profiles mirror what a function generator produces; the
// trace source replays arbitrary harvest recordings (synthetic RF/solar).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace ehdnn::power {

class HarvestSource {
 public:
  virtual ~HarvestSource() = default;
  // Instantaneous harvested power (watts) at absolute time t (seconds).
  virtual double power_at(double t) const = 0;

  // Piecewise-constant contract: a time no earlier than the next instant
  // strictly after `t` at which power_at may change. Semantics:
  //   * +infinity      — power never changes again (constant source);
  //   * a value  >  t  — power_at is constant on [t, value), up to a few
  //                      ulp of rounding slop at the boundary (the
  //                      integrator hardens candidates with a power_at
  //                      predecessor walk before trusting a segment);
  //   * `t` itself     — opt-out: the source is not piecewise-constant
  //                      (or cannot bound its next change), integrators
  //                      must use their stepped reference path.
  // The default opts out, so continuously-varying sources (sine, linearly
  // interpolated traces) are automatically excluded from the analytic
  // recharge fast path in CapacitorSupply.
  virtual double next_change_s(double t) const { return t; }
};

class ConstantSource : public HarvestSource {
 public:
  explicit ConstantSource(double watts) : watts_(watts) {}
  double power_at(double) const override { return watts_; }
  double next_change_s(double) const override {
    return std::numeric_limits<double>::infinity();
  }

 private:
  double watts_;
};

class SquareSource : public HarvestSource {
 public:
  SquareSource(double watts_high, double watts_low, double period_s, double duty)
      : hi_(watts_high), lo_(watts_low), period_(period_s), duty_(duty) {
    check(period_ > 0.0 && duty >= 0.0 && duty <= 1.0, "SquareSource: bad parameters");
  }
  double power_at(double t) const override {
    const double phase = std::fmod(t, period_) / period_;
    return phase < duty_ ? hi_ : lo_;
  }

  double next_change_s(double t) const override {
    if (t < 0.0) return t;  // power_at's fmod phase wraps differently there
    // Advance by the residue of the SAME fmod power_at evaluates. Deriving
    // the cycle from floor(t/period) instead can land one cycle ahead of
    // the fmod phase when t/period rounds up across an integer, which
    // would report a boundary a full period late — past a real change.
    // The delta form keeps the candidate within ulps of where power_at
    // actually flips; a delta rounding to <= 0 reads as the opt-out value.
    const double m = std::fmod(t, period_);
    const bool in_hi = m / period_ < duty_;
    return t + (in_hi ? duty_ * period_ - m : period_ - m);
  }

 private:
  double hi_, lo_, period_, duty_;
};

class SineSource : public HarvestSource {
 public:
  SineSource(double mean_watts, double amplitude_watts, double period_s)
      : mean_(mean_watts), amp_(amplitude_watts), period_(period_s) {
    check(period_ > 0.0, "SineSource: bad period");
  }
  double power_at(double t) const override {
    const double v = mean_ + amp_ * std::sin(2.0 * std::numbers::pi * t / period_);
    return v > 0.0 ? v : 0.0;
  }

 private:
  double mean_, amp_, period_;
};

// Bursty RF harvesting: bursts arrive as a Poisson process (exponential
// inter-arrival gaps) with exponentially distributed durations, on top of
// a weak ambient floor. Deterministic: the burst schedule is generated
// from `seed` over `horizon_s` at construction and loops thereafter.
class PoissonBurstSource : public HarvestSource {
 public:
  PoissonBurstSource(double base_w, double burst_w, double rate_hz, double mean_burst_s,
                     std::uint64_t seed = 1, double horizon_s = 10.0)
      : base_(base_w), burst_(burst_w), horizon_(horizon_s) {
    check(base_w >= 0.0 && burst_w >= 0.0 && rate_hz > 0.0 && mean_burst_s > 0.0 &&
              horizon_s > 0.0,
          "PoissonBurstSource: bad parameters");
    Rng rng(seed);
    auto expo = [&rng](double mean) {
      // Inverse-CDF sampling; 1 - uniform() avoids log(0).
      return -mean * std::log(1.0 - rng.uniform());
    };
    double t = expo(1.0 / rate_hz);
    while (t < horizon_) {
      const double dur = expo(mean_burst_s);
      bursts_.push_back({t, std::min(t + dur, horizon_)});
      t += dur + expo(1.0 / rate_hz);
    }
  }

  double power_at(double t) const override {
    double u = std::fmod(t, horizon_);
    if (u < 0.0) u += horizon_;
    // Last burst starting at or before u.
    const auto it = std::upper_bound(bursts_.begin(), bursts_.end(), u,
                                     [](double v, const Burst& b) { return v < b.start; });
    if (it != bursts_.begin() && u < (it - 1)->end) return base_ + burst_;
    return base_;
  }

  double next_change_s(double t) const override {
    if (t < 0.0 || bursts_.empty()) return t;
    double u = std::fmod(t, horizon_);
    if (u < 0.0) u += horizon_;
    const auto it = std::upper_bound(bursts_.begin(), bursts_.end(), u,
                                     [](double v, const Burst& b) { return v < b.start; });
    if (it != bursts_.begin() && u < (it - 1)->end) return t + ((it - 1)->end - u);
    // In a gap: next burst start, wrapping into the next horizon cycle.
    const double next_start =
        it != bursts_.end() ? it->start : horizon_ + bursts_.front().start;
    return t + (next_start - u);
  }

  std::size_t burst_count() const { return bursts_.size(); }

 private:
  struct Burst {
    double start, end;
  };
  double base_, burst_, horizon_;
  std::vector<Burst> bursts_;
};

// Solar-day ramp: a sin^2 daylight arch from sunrise to sunset (fraction
// `daylight` of the day), darkness (plus an optional floor, e.g. indoor
// lighting) the rest of the period.
class SolarDaySource : public HarvestSource {
 public:
  SolarDaySource(double peak_w, double day_s, double daylight = 0.5, double floor_w = 0.0)
      : peak_(peak_w), day_(day_s), daylight_(daylight), floor_(floor_w) {
    check(peak_w >= 0.0 && day_s > 0.0 && daylight > 0.0 && daylight <= 1.0 &&
              floor_w >= 0.0,
          "SolarDaySource: bad parameters");
  }

  double power_at(double t) const override {
    double u = std::fmod(t, day_);
    if (u < 0.0) u += day_;
    const double lit = daylight_ * day_;
    if (u >= lit) return floor_;
    const double s = std::sin(std::numbers::pi * u / lit);
    return floor_ + peak_ * s * s;
  }

  // Constant only during the dark span (and trivially when peak == 0);
  // under the daylight arch the power varies continuously, so opt out.
  double next_change_s(double t) const override {
    if (peak_ == 0.0) return std::numeric_limits<double>::infinity();
    if (t < 0.0) return t;
    double u = std::fmod(t, day_);
    if (u < 0.0) u += day_;
    const double lit = daylight_ * day_;
    if (u < lit) return t;                // daylight: sin^2 ramp
    return t + (day_ - u);                // dark until the next sunrise
  }

 private:
  double peak_, day_, daylight_, floor_;
};

// A time-shifted view of another source: power_at(t) = inner(t + offset).
// The fleet harness hands each simulated device its own offset into one
// shared harvest recording, modelling a population of devices that see
// the same environment out of phase (different desks, different pockets).
// Non-owning: `inner` must outlive the view.
class TimeOffsetSource : public HarvestSource {
 public:
  TimeOffsetSource(const HarvestSource& inner, double offset_s)
      : inner_(inner), offset_(offset_s) {}
  double power_at(double t) const override { return inner_.power_at(t + offset_); }
  // The inner boundary mapped back through the offset. Both the forward
  // map (t + offset) and the inverse below round, so the candidate can be
  // a few ulp off the exact boundary — within the slop the piecewise
  // contract allows.
  double next_change_s(double t) const override {
    const double inner_next = inner_.next_change_s(t + offset_);
    if (std::isinf(inner_next)) return inner_next;
    if (!(inner_next > t + offset_)) return t;  // inner opted out
    return inner_next - offset_;
  }
  double offset() const { return offset_; }

 private:
  const HarvestSource& inner_;
  double offset_;
};

// Replays `samples` (watts) at fixed `sample_dt` spacing, looping.
class TraceSource : public HarvestSource {
 public:
  TraceSource(std::vector<double> samples, double sample_dt)
      : samples_(std::move(samples)), dt_(sample_dt) {
    check(!samples_.empty() && dt_ > 0.0, "TraceSource: bad trace");
  }
  double power_at(double t) const override {
    const auto idx =
        static_cast<std::size_t>(std::fmod(t / dt_, static_cast<double>(samples_.size())));
    return samples_[idx];
  }

  // Zero-order hold: the replayed power can only change where the sample
  // index increments, i.e. at multiples of dt (including the loop wrap).
  double next_change_s(double t) const override {
    if (t < 0.0) return t;
    return (std::floor(t / dt_) + 1.0) * dt_;
  }

 private:
  std::vector<double> samples_;
  double dt_;
};

}  // namespace ehdnn::power
