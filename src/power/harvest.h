// Harvest-source models: the simulation stand-in for the paper's SIGLENT
// SDG1032X function generator driving an energy harvester (SSIII-D).
//
// A source is just power-versus-time; the capacitor supply integrates it.
// Square/sine profiles mirror what a function generator produces; the
// trace source replays arbitrary harvest recordings (synthetic RF/solar).
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace ehdnn::power {

class HarvestSource {
 public:
  virtual ~HarvestSource() = default;
  // Instantaneous harvested power (watts) at absolute time t (seconds).
  virtual double power_at(double t) const = 0;
};

class ConstantSource : public HarvestSource {
 public:
  explicit ConstantSource(double watts) : watts_(watts) {}
  double power_at(double) const override { return watts_; }

 private:
  double watts_;
};

class SquareSource : public HarvestSource {
 public:
  SquareSource(double watts_high, double watts_low, double period_s, double duty)
      : hi_(watts_high), lo_(watts_low), period_(period_s), duty_(duty) {
    check(period_ > 0.0 && duty >= 0.0 && duty <= 1.0, "SquareSource: bad parameters");
  }
  double power_at(double t) const override {
    const double phase = std::fmod(t, period_) / period_;
    return phase < duty_ ? hi_ : lo_;
  }

 private:
  double hi_, lo_, period_, duty_;
};

class SineSource : public HarvestSource {
 public:
  SineSource(double mean_watts, double amplitude_watts, double period_s)
      : mean_(mean_watts), amp_(amplitude_watts), period_(period_s) {
    check(period_ > 0.0, "SineSource: bad period");
  }
  double power_at(double t) const override {
    const double v = mean_ + amp_ * std::sin(2.0 * std::numbers::pi * t / period_);
    return v > 0.0 ? v : 0.0;
  }

 private:
  double mean_, amp_, period_;
};

// Bursty RF harvesting: bursts arrive as a Poisson process (exponential
// inter-arrival gaps) with exponentially distributed durations, on top of
// a weak ambient floor. Deterministic: the burst schedule is generated
// from `seed` over `horizon_s` at construction and loops thereafter.
class PoissonBurstSource : public HarvestSource {
 public:
  PoissonBurstSource(double base_w, double burst_w, double rate_hz, double mean_burst_s,
                     std::uint64_t seed = 1, double horizon_s = 10.0)
      : base_(base_w), burst_(burst_w), horizon_(horizon_s) {
    check(base_w >= 0.0 && burst_w >= 0.0 && rate_hz > 0.0 && mean_burst_s > 0.0 &&
              horizon_s > 0.0,
          "PoissonBurstSource: bad parameters");
    Rng rng(seed);
    auto expo = [&rng](double mean) {
      // Inverse-CDF sampling; 1 - uniform() avoids log(0).
      return -mean * std::log(1.0 - rng.uniform());
    };
    double t = expo(1.0 / rate_hz);
    while (t < horizon_) {
      const double dur = expo(mean_burst_s);
      bursts_.push_back({t, std::min(t + dur, horizon_)});
      t += dur + expo(1.0 / rate_hz);
    }
  }

  double power_at(double t) const override {
    double u = std::fmod(t, horizon_);
    if (u < 0.0) u += horizon_;
    // Last burst starting at or before u.
    const auto it = std::upper_bound(bursts_.begin(), bursts_.end(), u,
                                     [](double v, const Burst& b) { return v < b.start; });
    if (it != bursts_.begin() && u < (it - 1)->end) return base_ + burst_;
    return base_;
  }

  std::size_t burst_count() const { return bursts_.size(); }

 private:
  struct Burst {
    double start, end;
  };
  double base_, burst_, horizon_;
  std::vector<Burst> bursts_;
};

// Solar-day ramp: a sin^2 daylight arch from sunrise to sunset (fraction
// `daylight` of the day), darkness (plus an optional floor, e.g. indoor
// lighting) the rest of the period.
class SolarDaySource : public HarvestSource {
 public:
  SolarDaySource(double peak_w, double day_s, double daylight = 0.5, double floor_w = 0.0)
      : peak_(peak_w), day_(day_s), daylight_(daylight), floor_(floor_w) {
    check(peak_w >= 0.0 && day_s > 0.0 && daylight > 0.0 && daylight <= 1.0 &&
              floor_w >= 0.0,
          "SolarDaySource: bad parameters");
  }

  double power_at(double t) const override {
    double u = std::fmod(t, day_);
    if (u < 0.0) u += day_;
    const double lit = daylight_ * day_;
    if (u >= lit) return floor_;
    const double s = std::sin(std::numbers::pi * u / lit);
    return floor_ + peak_ * s * s;
  }

 private:
  double peak_, day_, daylight_, floor_;
};

// A time-shifted view of another source: power_at(t) = inner(t + offset).
// The fleet harness hands each simulated device its own offset into one
// shared harvest recording, modelling a population of devices that see
// the same environment out of phase (different desks, different pockets).
// Non-owning: `inner` must outlive the view.
class TimeOffsetSource : public HarvestSource {
 public:
  TimeOffsetSource(const HarvestSource& inner, double offset_s)
      : inner_(inner), offset_(offset_s) {}
  double power_at(double t) const override { return inner_.power_at(t + offset_); }
  double offset() const { return offset_; }

 private:
  const HarvestSource& inner_;
  double offset_;
};

// Replays `samples` (watts) at fixed `sample_dt` spacing, looping.
class TraceSource : public HarvestSource {
 public:
  TraceSource(std::vector<double> samples, double sample_dt)
      : samples_(std::move(samples)), dt_(sample_dt) {
    check(!samples_.empty() && dt_ > 0.0, "TraceSource: bad trace");
  }
  double power_at(double t) const override {
    const auto idx =
        static_cast<std::size_t>(std::fmod(t / dt_, static_cast<double>(samples_.size())));
    return samples_[idx];
  }

 private:
  std::vector<double> samples_;
  double dt_;
};

}  // namespace ehdnn::power
