// Harvest-source models: the simulation stand-in for the paper's SIGLENT
// SDG1032X function generator driving an energy harvester (SSIII-D).
//
// A source is just power-versus-time; the capacitor supply integrates it.
// Square/sine profiles mirror what a function generator produces; the
// trace source replays arbitrary harvest recordings (synthetic RF/solar).
#pragma once

#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.h"

namespace ehdnn::power {

class HarvestSource {
 public:
  virtual ~HarvestSource() = default;
  // Instantaneous harvested power (watts) at absolute time t (seconds).
  virtual double power_at(double t) const = 0;
};

class ConstantSource : public HarvestSource {
 public:
  explicit ConstantSource(double watts) : watts_(watts) {}
  double power_at(double) const override { return watts_; }

 private:
  double watts_;
};

class SquareSource : public HarvestSource {
 public:
  SquareSource(double watts_high, double watts_low, double period_s, double duty)
      : hi_(watts_high), lo_(watts_low), period_(period_s), duty_(duty) {
    check(period_ > 0.0 && duty >= 0.0 && duty <= 1.0, "SquareSource: bad parameters");
  }
  double power_at(double t) const override {
    const double phase = std::fmod(t, period_) / period_;
    return phase < duty_ ? hi_ : lo_;
  }

 private:
  double hi_, lo_, period_, duty_;
};

class SineSource : public HarvestSource {
 public:
  SineSource(double mean_watts, double amplitude_watts, double period_s)
      : mean_(mean_watts), amp_(amplitude_watts), period_(period_s) {
    check(period_ > 0.0, "SineSource: bad period");
  }
  double power_at(double t) const override {
    const double v = mean_ + amp_ * std::sin(2.0 * std::numbers::pi * t / period_);
    return v > 0.0 ? v : 0.0;
  }

 private:
  double mean_, amp_, period_;
};

// Replays `samples` (watts) at fixed `sample_dt` spacing, looping.
class TraceSource : public HarvestSource {
 public:
  TraceSource(std::vector<double> samples, double sample_dt)
      : samples_(std::move(samples)), dt_(sample_dt) {
    check(!samples_.empty() && dt_ > 0.0, "TraceSource: bad trace");
  }
  double power_at(double t) const override {
    const auto idx =
        static_cast<std::size_t>(std::fmod(t / dt_, static_cast<double>(samples_.size())));
    return samples_[idx];
  }

 private:
  std::vector<double> samples_;
  double dt_;
};

}  // namespace ehdnn::power
