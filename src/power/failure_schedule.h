// Deterministic brown-out injection for crash-consistency fuzzing.
//
// A FailureScheduleSupply never runs out of energy; instead it *decides*
// to fail, driven entirely by a seed, so every failure schedule is
// replayable. Each power cycle draws one trigger from the seeded RNG:
//
//   * after-N-consumes — fail mid-block, at an arbitrary costed operation
//     (N log-uniform, so both instant re-deaths and long runs occur);
//   * at-commit-begin  — wait for the k-th progress-commit / checkpoint
//     write announced via notify(), then fail within its first few words:
//     the write tears (the classic intermittent W-A-R hazard);
//   * at-commit-end    — fail on the first consume after a commit
//     boundary: progress persisted, nothing else did.
//
// The supply also fakes the voltage-monitor signal: it reports a low
// voltage for the last `warn_window` consumes before an armed failure
// (window drawn per cycle, sometimes zero), which drives FLEX through its
// warned, unwarned, and torn-checkpoint recovery paths. Per cycle it also
// flips between zero and infinite headroom, so the device's bulk fast
// paths are exercised both word-granularly (torn FRAM prefixes) and as
// aggregated all-or-nothing draws.
//
// After `max_failures` injected failures the supply stops failing and the
// inference runs to completion — every fuzz iteration terminates, and the
// final output can be compared bit-for-bit against the continuous-power
// oracle (the contract in src/core/flex/runtime.h).
//
// Config::prepaid additionally opts the supply into the device's
// prepaid-headroom window: a per-cycle joule budget (log-uniform, often
// tiny) lets the device buffer draws and settle them in batches, with
// draws too large for the remaining budget falling back to per-op
// settlement — the headroom boundary. To stay honest about the prepaid
// contract ("draws within the budget provably cannot brown out"), a due
// failure never fires inside consume_batch: the countdown clamps at 1
// across the batch and the brown-out lands on the NEXT per-op consume —
// i.e. exactly on the first over-budget draw after a (torn) settlement.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "device/power_interface.h"
#include "util/rng.h"

namespace ehdnn::power {

class FailureScheduleSupply : public dev::PowerSupply {
 public:
  struct Config {
    long max_failures = 40;   // failure budget per inference
    double off_time_s = 1e-3; // fixed recharge gap per failure
    double v_ok = 3.3;        // reported far from a failure
    double v_low = 2.3;       // reported within the warn window
    // Opt into the device's prepaid-headroom window (see file comment):
    // failures then aim at the per-op draws around settlement boundaries.
    bool prepaid = false;
  };

  explicit FailureScheduleSupply(std::uint64_t seed)
      : FailureScheduleSupply(seed, Config()) {}
  FailureScheduleSupply(std::uint64_t seed, Config cfg) : cfg_(cfg), rng_(seed) {
    plan_cycle();
  }

  bool consume(double joules, double dt) override {
    energy_drawn_ += joules;
    now_ += dt;
    if (countdown_ > 0 && --countdown_ == 0) {
      on_ = false;
      ++failures_;
      return false;
    }
    return true;
  }

  // Prepaid draws were advertised as provably safe, so a due failure is
  // deferred past the batch (countdown clamps at 1) and fires on the next
  // per-op consume — the over-budget draw at the headroom boundary.
  std::size_t consume_batch(const dev::SpendEvent* ev, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) {
      energy_drawn_ += ev[i].joules;
      now_ += ev[i].dt;
      if (countdown_ > 1) --countdown_;
    }
    return n;
  }

  bool prepay_safe() const override { return cfg_.prepaid; }

  double prepaid_budget() const override { return cfg_.prepaid ? budget_ : 0.0; }

  double voltage() const override {
    return countdown_ > 0 && countdown_ <= warn_window_ ? cfg_.v_low : cfg_.v_ok;
  }

  double headroom() const override {
    return word_granular_ ? 0.0 : std::numeric_limits<double>::infinity();
  }

  bool on() const override { return on_; }

  double recharge_to_on() override {
    on_ = true;
    plan_cycle();
    return cfg_.off_time_s;
  }

  void idle_until(double t_s) override { now_ = std::max(now_, t_s); }

  double now() const override { return now_; }

  void notify(dev::SupplyEvent e) override {
    if (trigger_ == Trigger::kNone || events_left_ == 0) return;
    const bool begin = e == dev::SupplyEvent::kCommitBegin ||
                       e == dev::SupplyEvent::kCheckpointBegin;
    const bool end =
        e == dev::SupplyEvent::kCommitEnd || e == dev::SupplyEvent::kCheckpointEnd;
    if ((trigger_ == Trigger::kAtCommitBegin && begin) ||
        (trigger_ == Trigger::kAtCommitEnd && end)) {
      if (--events_left_ == 0) {
        // Arm: tear within the write (begin) or die right after it (end).
        countdown_ = trigger_ == Trigger::kAtCommitBegin
                         ? 1 + static_cast<long>(rng_.below(6))
                         : 1;
      }
    }
  }

  long failures() const { return failures_; }
  double energy_drawn() const { return energy_drawn_; }

 private:
  enum class Trigger { kNone, kAfterConsumes, kAtCommitBegin, kAtCommitEnd };

  // Draw the next cycle's trigger. Runs at boot, so the countdown always
  // leaves room for the reboot spend itself (min 2 consumes).
  void plan_cycle() {
    countdown_ = -1;  // disarmed
    events_left_ = 0;
    warn_window_ = rng_.chance(0.3) ? 0 : static_cast<long>(rng_.below(13));
    word_granular_ = rng_.chance(0.5);
    // Prepaid window budget for this cycle: zero (per-op settlement, the
    // classic path) or log-uniform across ~[10 pJ, 0.1 uJ] — from "every
    // word op overflows the window" to "thousands of draws buffer before
    // a settle", so brown-outs land on boundary draws of every size.
    budget_ = rng_.chance(0.25) ? 0.0 : std::pow(10.0, rng_.uniform(-11.0, -7.0));
    if (failures_ >= cfg_.max_failures) {
      trigger_ = Trigger::kNone;  // budget spent: run to completion
      return;
    }
    const double pick = rng_.uniform();
    if (pick < 0.5) {
      trigger_ = Trigger::kAfterConsumes;
      // Log-uniform horizon, 2 .. ~2^11 consumes: short enough to fire
      // even when bulk aggregation collapses whole blocks into single
      // consume events, long-tailed enough for multi-unit runs.
      const double exp = rng_.uniform(1.0, 11.0);
      countdown_ = 2 + static_cast<long>(std::pow(2.0, exp));
    } else {
      trigger_ = pick < 0.8 ? Trigger::kAtCommitBegin : Trigger::kAtCommitEnd;
      events_left_ = 1 + static_cast<long>(rng_.below(6));
    }
  }

  Config cfg_;
  Rng rng_;
  Trigger trigger_ = Trigger::kNone;
  long countdown_ = -1;     // consumes until failure; <= 0 disarmed
  long events_left_ = 0;    // matching notify() events until arming
  long warn_window_ = 0;    // consumes before failure with v_low reported
  bool word_granular_ = false;
  double budget_ = 0.0;     // per-cycle prepaid budget (joules)
  bool on_ = true;
  long failures_ = 0;
  double now_ = 0.0;
  double energy_drawn_ = 0.0;
};

}  // namespace ehdnn::power
