// Timestamped power traces: the scenario engine's stand-in for real
// harvested-power recordings (RF energy in an office, a solar cell under
// moving clouds, a piezo harvester on a machine tool).
//
// A trace is a list of (time, watts) samples parsed from CSV; the
// TraceHarvestSource replays it as a HarvestSource with zero-order-hold or
// linear interpolation, optionally looping with period equal to the
// trace's time span. See BENCHMARKS.md "Scenarios" for the file format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "power/harvest.h"

namespace ehdnn::power {

struct TracePoint {
  double t = 0.0;      // seconds, strictly increasing within a trace
  double watts = 0.0;  // harvested power, >= 0
};

// A parsed trace. Timestamps are kept as read (not shifted); the source
// normalizes to the first sample's time.
struct PowerTrace {
  std::vector<TracePoint> points;

  bool empty() const { return points.empty(); }
  // Time covered from first to last sample (0 for a single-point trace).
  double span_s() const {
    return points.empty() ? 0.0 : points.back().t - points.front().t;
  }
};

// CSV parser. Format, one sample per row: `time_s,power_w` (whitespace
// around fields ignored; `#` starts a comment line; one optional header
// row is skipped). Throws ehdnn::Error on an empty trace, a malformed
// row, a negative power, or non-monotonic timestamps.
PowerTrace parse_trace_csv(std::istream& in, const std::string& origin = "<stream>");
PowerTrace load_trace_csv(const std::string& path);

enum class TraceInterp {
  kZeroOrderHold,  // hold each sample's power until the next sample
  kLinear,         // interpolate linearly between samples
};

// Replays a PowerTrace as power-versus-time. Time is measured from the
// trace's first sample. When looping, the replay period is the trace's
// span and the seam (last sample back to first) is a step — record traces
// that end where they begin if a smooth loop matters. Without looping the
// trace holds its last sample's power forever.
class TraceHarvestSource : public HarvestSource {
 public:
  explicit TraceHarvestSource(PowerTrace trace, TraceInterp interp = TraceInterp::kLinear,
                              bool loop = true, double scale = 1.0);

  double power_at(double t) const override;
  // Piecewise-constant only under zero-order hold: boundaries fall on the
  // trace's sample times (and the loop seam). Linear interpolation varies
  // continuously, so it opts out (returns t).
  double next_change_s(double t) const override;

  double span_s() const { return trace_.span_s(); }
  bool loops() const { return loop_; }

 private:
  PowerTrace trace_;
  TraceInterp interp_;
  bool loop_;
  double scale_;
};

}  // namespace ehdnn::power
