#include "power/trace.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/check.h"
#include "util/parse.h"

namespace ehdnn::power {

namespace {

bool is_blank_or_comment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool parse_field(const std::string& field, double* out) {
  const auto v = parse_double(field);
  if (!v) return false;
  *out = *v;
  return true;
}

// A row whose first non-space character could begin a number is data and
// may never be consumed as the optional header — a typo in the first
// sample of a headerless trace must throw, not silently drop the sample.
bool looks_like_data(const std::string& line) {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    return std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' || c == '.';
  }
  return false;
}

[[noreturn]] void bad_row(const std::string& origin, std::size_t lineno,
                          const std::string& why) {
  fail("power trace " + origin + " line " + std::to_string(lineno) + ": " + why);
}

}  // namespace

PowerTrace parse_trace_csv(std::istream& in, const std::string& origin) {
  PowerTrace tr;
  std::string line;
  std::size_t lineno = 0;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (is_blank_or_comment(line)) continue;

    // At most ONE non-numeric row is tolerated, as the leading header;
    // any other unparsable row is malformed (a wrong delimiter must not
    // silently degrade the trace).
    auto skip_as_header_or_die = [&](const std::string& why) {
      if (tr.points.empty() && !header_skipped && !looks_like_data(line)) {
        header_skipped = true;
        return;
      }
      bad_row(origin, lineno, why);
    };
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      skip_as_header_or_die("expected `time_s,power_w`, got \"" + line + "\"");
      continue;
    }
    double t = 0.0;
    double w = 0.0;
    const bool ok = parse_field(line.substr(0, comma), &t) &&
                    parse_field(line.substr(comma + 1), &w);
    if (!ok) {
      skip_as_header_or_die("malformed row \"" + line + "\"");
      continue;
    }
    if (!std::isfinite(t) || !std::isfinite(w)) {
      bad_row(origin, lineno, "non-finite value in \"" + line + "\"");
    }
    if (w < 0.0) bad_row(origin, lineno, "negative power " + std::to_string(w));
    if (!tr.points.empty() && t <= tr.points.back().t) {
      bad_row(origin, lineno,
              "non-monotonic timestamp " + std::to_string(t) + " (previous " +
                  std::to_string(tr.points.back().t) + ")");
    }
    tr.points.push_back({t, w});
  }
  check(!tr.points.empty(), "power trace " + origin + ": no samples");
  return tr;
}

PowerTrace load_trace_csv(const std::string& path) {
  std::ifstream f(path);
  check(f.good(), "power trace: cannot open " + path);
  return parse_trace_csv(f, path);
}

TraceHarvestSource::TraceHarvestSource(PowerTrace trace, TraceInterp interp, bool loop,
                                       double scale)
    : trace_(std::move(trace)), interp_(interp), loop_(loop), scale_(scale) {
  check(!trace_.empty(), "TraceHarvestSource: empty trace");
  check(scale_ >= 0.0, "TraceHarvestSource: negative scale");
}

double TraceHarvestSource::power_at(double t) const {
  const auto& pts = trace_.points;
  const double t0 = pts.front().t;
  const double span = trace_.span_s();
  // Map absolute time onto the trace's local clock.
  double u = t;
  if (loop_ && span > 0.0) {
    u = std::fmod(t, span);
    if (u < 0.0) u += span;
  }
  u += t0;
  if (u <= t0) return scale_ * pts.front().watts;
  if (u >= pts.back().t) return scale_ * pts.back().watts;

  // First sample strictly after u; pts[hi-1].t <= u < pts[hi].t.
  const auto it = std::upper_bound(pts.begin(), pts.end(), u,
                                   [](double v, const TracePoint& p) { return v < p.t; });
  const std::size_t hi = static_cast<std::size_t>(it - pts.begin());
  const TracePoint& a = pts[hi - 1];
  if (interp_ == TraceInterp::kZeroOrderHold) return scale_ * a.watts;
  const TracePoint& b = pts[hi];
  const double frac = (u - a.t) / (b.t - a.t);
  return scale_ * (a.watts + frac * (b.watts - a.watts));
}

double TraceHarvestSource::next_change_s(double t) const {
  if (interp_ != TraceInterp::kZeroOrderHold) return t;  // continuous: opt out
  if (t < 0.0) return t;
  const auto& pts = trace_.points;
  const double t0 = pts.front().t;
  const double span = trace_.span_s();
  if (pts.size() == 1 || span == 0.0) return std::numeric_limits<double>::infinity();
  // Same local-clock mapping as power_at; within one replay cycle the
  // local clock advances 1:1 with t, so a boundary at local time u_b lies
  // at absolute time t + (u_b - u).
  double u = t;
  if (loop_ && span > 0.0) {
    u = std::fmod(t, span);
    if (u < 0.0) u += span;
  }
  u += t0;
  if (u >= pts.back().t) {
    // Only reachable without looping: the last sample holds forever.
    return std::numeric_limits<double>::infinity();
  }
  if (u <= t0) return t + (pts[1].t - u);
  const auto it = std::upper_bound(pts.begin(), pts.end(), u,
                                   [](double v, const TracePoint& p) { return v < p.t; });
  // pts[hi-1].t <= u < pts[hi].t; the hold ends at pts[hi].t (for the last
  // interval that is the loop seam, where the replay steps back to the
  // front sample).
  return t + (it->t - u);
}

}  // namespace ehdnn::power
