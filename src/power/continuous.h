// Bench (continuous) power: never browns out. Used for the paper's
// "continuous power supply" experiments (Fig. 7a) and as the oracle runs
// the intermittent outputs must match bit-for-bit.
#pragma once

#include <algorithm>

#include "device/power_interface.h"

namespace ehdnn::power {

class ContinuousPower : public dev::PowerSupply {
 public:
  explicit ContinuousPower(double volts = 3.3) : volts_(volts) {}

  bool consume(double joules, double dt) override {
    energy_drawn_ += joules;
    now_ += dt;
    return true;
  }
  double voltage() const override { return volts_; }
  bool on() const override { return true; }
  double recharge_to_on() override { return 0.0; }
  void idle_until(double t_s) override { now_ = std::max(now_, t_s); }
  double now() const override { return now_; }

  double energy_drawn() const { return energy_drawn_; }

 private:
  double volts_;
  double now_ = 0.0;
  double energy_drawn_ = 0.0;
};

}  // namespace ehdnn::power
