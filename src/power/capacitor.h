// Capacitor-buffered energy-harvesting supply (the paper's 100 uF buffer).
//
// The device operates while the capacitor voltage stays above v_off; it
// boots (or re-boots) once harvesting has refilled the capacitor to v_on.
// The usable burst energy is E = C/2 (v_on^2 - v_off^2) — about 0.30 mJ
// with the defaults — which is what makes DNN inference intermittent:
// a whole inference needs orders of magnitude more.
//
// Off-time and idle-time integration is defined by a 50 us stepped
// reference loop (integrate_step). For piecewise-constant harvest sources
// (HarvestSource::next_change_s) the supply fast-forwards whole
// constant-income segments in closed form — bit-for-bit identical to the
// stepped loop (see the binade fast-forward notes below) — collapsing
// O(off_time / 50us) work to O(segments x binades).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "device/power_interface.h"
#include "obs/events.h"
#include "power/harvest.h"

namespace ehdnn::power {

namespace detail {

// ---- exact fast-forward of the stepped integrator ----------------------
//
// The reference loop repeatedly applies x -> fl(x + d) with d constant
// while an income segment holds (d = P * step). Under round-to-nearest-
// even, while x stays inside one power-of-two binade the update has a
// closed form: fl(x + d) = x + q, where q is d rounded to the binade's
// ulp grid — independent of x, EXCEPT when d falls exactly on a half-ulp
// tie (nearest-even then depends on the running mantissa parity; the tie
// is detected and the caller falls back to literal stepping). Working in
// integer ulp units, n steps advance x by exactly n*q, so a whole segment
// collapses to a handful of integer ops per binade while reproducing the
// reference loop bit for bit.
struct UlpSeq {
  double ulp = 0.0;       // grid spacing of x's binade
  long long x = 0;        // current value, in ulp units (exact)
  long long q = 0;        // per-step increment, in ulp units (exact)
  bool pure = false;      // false: tie/degenerate — take literal steps
};

inline constexpr long long kSeqInf = std::numeric_limits<long long>::max();
inline constexpr double kBinadeTop = 9007199254740992.0;  // 2^53

inline UlpSeq seq_of(double x, double d) {
  UlpSeq s;
  if (!(x > 0.0) || !std::isfinite(x) || !(d >= 0.0) || !std::isfinite(d)) return s;
  int ex = 0;
  std::frexp(x, &ex);
  if (ex < -1000 || ex > 1000) return s;  // denormal/extreme: literal steps
  s.ulp = std::ldexp(1.0, ex - 53);
  const double r = d / s.ulp;  // exact: ulp is a power of two
  if (!(r < 4.5e15)) return s;
  const double k = std::floor(r);
  const double f = r - k;  // exact
  if (f == 0.5) return s;  // half-ulp tie: rounding is parity-dependent
  s.x = static_cast<long long>(x / s.ulp);
  s.q = static_cast<long long>(f < 0.5 ? k : k + 1.0);
  s.pure = true;
  return s;
}

// Value after n in-binade steps. Exact: x + n*q <= 2^53 (caller-capped),
// and (integer <= 2^53) * (power of two) is exactly representable.
inline double seq_value(const UlpSeq& s, long long n) {
  return static_cast<double>(s.x + n * s.q) * s.ulp;
}

// Steps that provably stay in closed form: results up to the binade top
// (2^53 ulps) round on the same grid.
inline long long seq_cap(const UlpSeq& s) {
  const long long top = static_cast<long long>(kBinadeTop);
  return s.q > 0 ? (top - s.x) / s.q : kSeqInf;
}

// Smallest n with value_n >= limit (the loop-exit count for a
// `while (x < limit)` condition); kSeqInf if unreachable in this binade.
inline long long seq_stop_at(const UlpSeq& s, double limit) {
  const double ld = limit / s.ulp;  // exact power-of-two divide
  if (!(ld <= kBinadeTop)) return kSeqInf;  // beyond the binade (or inf)
  const long long lc = static_cast<long long>(std::ceil(ld));
  if (s.x >= lc) return 0;
  return s.q > 0 ? (lc - s.x + s.q - 1) / s.q : kSeqInf;
}

// Largest n with every step result <= limit (clamp must not engage inside
// a chunk); kSeqInf when the limit lies beyond this binade.
inline long long seq_pure_below(const UlpSeq& s, double limit) {
  const double ld = limit / s.ulp;
  if (!(ld <= kBinadeTop)) return kSeqInf;
  const long long lf = static_cast<long long>(std::floor(ld));
  if (lf < s.x) return 0;
  return s.q > 0 ? (lf - s.x) / s.q : kSeqInf;
}

// Smallest double y with fl(y - t0) >= delta — turns the reference loop's
// per-step `now_ - t0 >= delta` test into a plain threshold on now_.
inline double threshold_diff_ge(double t0, double delta) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  double y = t0 + delta;
  if (y - t0 >= delta) {
    for (;;) {
      const double p = std::nextafter(y, -inf);
      if (!(p - t0 >= delta)) break;
      y = p;
    }
  } else {
    do {
      y = std::nextafter(y, inf);
    } while (!(y - t0 >= delta));
  }
  return y;
}

// Smallest double y with fl(t_s - y) < step — the boundary past which
// idle_until's min(step, t_s - now_) switches to the final partial step.
inline double threshold_partial(double t_s, double step) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  double y = t_s - step;
  if (t_s - y < step) {
    for (;;) {
      const double p = std::nextafter(y, -inf);
      if (!(t_s - p < step)) break;
      y = p;
    }
  } else {
    do {
      y = std::nextafter(y, inf);
    } while (!(t_s - y < step));
  }
  return y;
}

}  // namespace detail

struct CapacitorConfig {
  double capacitance_f = 100e-6;  // the paper's 100 uF
  double v_on = 3.3;              // boot threshold
  double v_off = 2.2;             // brown-out threshold
  double v_max = 3.6;             // harvester regulator clamp
  double recharge_step_s = 50e-6; // off-time integration step
  double max_off_s = 3600.0;      // starvation guard
  // Closed-form segment fast-forward for piecewise-constant sources
  // (bit-exact vs the stepped loop). Off = always step 50 us at a time:
  // the reference path the equivalence tests compare against.
  bool analytic_recharge = true;
};

class CapacitorSupply : public dev::PowerSupply {
 public:
  CapacitorSupply(const HarvestSource& source, CapacitorConfig cfg = {})
      : source_(source), cfg_(cfg) {
    energy_ = energy_at(cfg_.v_on);  // starts charged to the boot threshold
  }

  bool consume(double joules, double dt) override {
    // Harvest income accrues over the same window the load draws.
    integrate_step(dt);
    on_time_ += dt;
    energy_ -= joules;
    if (energy_ < energy_at(cfg_.v_off)) {
      energy_ = std::max(energy_, 0.0);
      on_ = false;
      ++failures_;
      return false;
    }
    return true;
  }

  // Batch settlement for the device's prepaid-headroom window: the exact
  // per-event arithmetic of consume(), with the harvest power read from
  // the hardened income-segment cache instead of a virtual power_at per
  // draw.
  std::size_t consume_batch(const dev::SpendEvent* ev, std::size_t n) override {
    const double e_max = energy_at(cfg_.v_max);
    const double e_off = energy_at(cfg_.v_off);
    // Members hoisted into locals for the whole batch: the rare segment
    // recompute makes a virtual power_at call, and keeping the running
    // state in registers means that call cannot force per-event member
    // reloads. Arithmetic and its order are exactly consume()'s.
    double e = energy_, t = now_, on_t = on_time_;
    double seg_p = seg_p_, seg_end = seg_end_;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(t < seg_end)) {
        now_ = t;  // the segment recompute reads the supply clock
        seg_p = seg_p_ = source_.power_at(t);
        seg_end = seg_end_ = hardened_segment_end(seg_p);
      }
      e = std::min(e + seg_p * ev[i].dt, e_max);
      t += ev[i].dt;
      on_t += ev[i].dt;
      e -= ev[i].joules;
      if (e < e_off) {
        energy_ = std::max(e, 0.0);
        now_ = t;
        on_time_ = on_t;
        on_ = false;
        ++failures_;
        return i;
      }
    }
    energy_ = e;
    now_ = t;
    on_time_ = on_t;
    return n;
  }

  bool prepay_safe() const override { return true; }

  // Headroom shaved by a slack covering worst-case settlement rounding:
  // the device caps windows at 4096 events, each adding at most half an
  // ulp of energy_'s scale (~2^-53 * e_max) of drift, so 1e-11 * e_max
  // over-covers by >20x. Within the budget, replay can never brown out.
  double prepaid_budget() const override {
    return std::max(0.0, headroom() - 1e-11 * energy_at(cfg_.v_max));
  }

  double voltage() const override {
    return std::sqrt(2.0 * energy_ / cfg_.capacitance_f);
  }

  double headroom() const override {
    return std::max(0.0, energy_ - energy_at(cfg_.v_off));
  }

  bool on() const override { return on_; }

  // Integrates harvest income until v_on or the max_off_s starvation
  // guard. Starvation is not an exception: the supply reports it through
  // starved() so runtimes can surface a distinct RunStats outcome
  // (starved vs completed) instead of dying mid-run.
  double recharge_to_on() override {
    const double t0 = now_;
    starved_ = false;
    const double e_on = energy_at(cfg_.v_on);
    if (cfg_.analytic_recharge) {
      recharge_analytic(t0, e_on);
    } else {
      while (energy_ < e_on) {
        if (now_ - t0 >= cfg_.max_off_s) {
          starved_ = true;
          break;
        }
        integrate_step(cfg_.recharge_step_s);
      }
    }
    on_ = !starved_;
    const double off = now_ - t0;
    off_time_ += off;
    return off;
  }

  bool starved() const override { return starved_; }

  // Duty-cycle sleep: income keeps integrating (clamped at v_max) while
  // the device draws nothing. Unlike recharge_to_on this is not an
  // outage — on/off/starved states are untouched and no off-time accrues.
  // The final step is partial so the device wakes exactly at t_s (job
  // release instants stay exact in the fleet's timing records).
  void idle_until(double t_s) override {
    idle_impl(t_s);
    // One kIdle at the wake instant — the supply-level witness that the
    // park fast-forward ran (the agenda's kPark records the decision).
    obs::record(obs_trace_, now_, obs::EventKind::kIdle);
  }

  // Per-device lifecycle-event sink (non-owning, may be null). The supply
  // is the only layer that can witness idle fast-forwards, so the obs
  // hook lives here rather than in the runtimes.
  void set_trace(obs::EventTrace* t) { obs_trace_ = t; }

 private:
  void idle_impl(double t_s) {
    if (cfg_.analytic_recharge) {
      idle_analytic(t_s);
      return;
    }
    const double e_max = energy_at(cfg_.v_max);
    while (now_ < t_s) {
      if (energy_ >= e_max) {
        // Full capacitor: harvest income is non-negative by construction
        // (every HarvestSource clamps at zero) and the regulator caps the
        // store at v_max, so the energy cannot change for the rest of the
        // park — fast-forward to the wake instant instead of integrating
        // 50 us at a time. This is what makes multi-second parks O(1) for
        // the fleet engine's duty-cycled populations.
        idle_time_ += t_s - now_;
        now_ = t_s;
        break;
      }
      const double dt = std::min(cfg_.recharge_step_s, t_s - now_);
      integrate_step(dt);
      idle_time_ += dt;
    }
  }

 public:
  double now() const override { return now_; }

  long failures() const { return failures_; }
  double on_time() const { return on_time_; }
  double off_time() const { return off_time_; }
  double idle_time() const { return idle_time_; }

  // Usable per-burst energy between the thresholds.
  double burst_energy() const { return energy_at(cfg_.v_on) - energy_at(cfg_.v_off); }

  const CapacitorConfig& config() const { return cfg_; }

 private:
  double energy_at(double v) const { return 0.5 * cfg_.capacitance_f * v * v; }

  // The one reference integration step both off-time loops, idle parking
  // and consume() share: income accrues at the instantaneous power over
  // dt, the regulator clamps the store at v_max, time advances. The
  // analytic fast paths reproduce chains of these bit for bit.
  void integrate_step(double dt) {
    energy_ = std::min(energy_ + segment_power() * dt, energy_at(cfg_.v_max));
    now_ += dt;
  }

  // The harvest power at now_, served from a cached hardened segment.
  // now_ is monotone across every supply operation, so the cache is
  // exactly the source's power until now_ crosses seg_end_ — at which
  // point the segment (and its end) is recomputed. Opt-out sources leave
  // seg_end_ <= now_, degrading to a power_at query per call, identical
  // to the uncached reference behavior.
  double segment_power() {
    if (!(now_ < seg_end_)) {
      seg_p_ = source_.power_at(now_);
      seg_end_ = hardened_segment_end(seg_p_);
    }
    return seg_p_;
  }

  // Harden a source's segment-end candidate into an end the cache can
  // trust: the exact first double at which power_at differs from the
  // current segment's power. The candidate from next_change_s carries
  // rounding slop (for an offset view, roughly ulp(t+offset)/ulp(t) of
  // outer-time ulps — possibly hundreds), so instead of trusting it
  // directly we bisect: sources change power at isolated boundaries
  // separated by far more than that slop, so [now_, candidate] brackets
  // at most the one flip and power_at is a clean one-sided threshold over
  // it. When even power_at(candidate) still shows the segment's power the
  // flip lies in the slop just past the candidate; the candidate itself
  // is then a valid (if slightly conservative) end. Returns a value
  // <= now_ only for opted-out sources (callers then take literal
  // reference steps).
  double hardened_segment_end(double p_now) const {
    const double c = source_.next_change_s(now_);
    if (std::isinf(c)) return c;
    if (!(c > now_)) return now_;
    if (source_.power_at(c) == p_now) return c;
    double lo = now_, hi = c;  // power_at(lo) == p_now, power_at(hi) != p_now
    for (;;) {
      const double mid = lo + (hi - lo) / 2.0;
      if (!(mid > lo) || !(mid < hi)) return hi;
      (source_.power_at(mid) == p_now ? lo : hi) = mid;
    }
  }

  // Closed-form recharge: per constant-income segment, fast-forward the
  // (energy, now) step sequences in lockstep until the first of: v_on
  // reached, starvation threshold hit, or segment end. Bit-exact vs the
  // stepped loop; any case the closed form cannot cover exactly (binade
  // crossing, rounding tie, opted-out source) falls back to literal
  // reference steps.
  void recharge_analytic(double t0, double e_on) {
    const double step = cfg_.recharge_step_s;
    const double e_max = energy_at(cfg_.v_max);
    const double starve_at = detail::threshold_diff_ge(t0, cfg_.max_off_s);
    for (;;) {
      if (!(energy_ < e_on)) return;
      if (now_ - t0 >= cfg_.max_off_s) {
        starved_ = true;
        return;
      }
      const double p = segment_power();
      const double seg = seg_end_;
      if (!(seg > now_)) {
        integrate_step(step);
        continue;
      }
      const detail::UlpSeq se = detail::seq_of(energy_, p * step);
      const detail::UlpSeq sn = detail::seq_of(now_, step);
      if (!se.pure || !sn.pure) {
        integrate_step(step);
        continue;
      }
      long long n = detail::seq_cap(se);
      n = std::min(n, detail::seq_cap(sn));
      n = std::min(n, detail::seq_pure_below(se, e_max));  // no clamp mid-chunk
      n = std::min(n, detail::seq_stop_at(se, e_on));
      n = std::min(n, detail::seq_stop_at(sn, starve_at));
      n = std::min(n, detail::seq_stop_at(sn, seg));  // power holds while now < seg
      if (n <= 0 || n == detail::kSeqInf) {
        integrate_step(step);
        continue;
      }
      energy_ = detail::seq_value(se, n);
      now_ = detail::seq_value(sn, n);
    }
  }

  // Closed-form idle parking. Adds a third lockstep sequence for the
  // idle_time_ accumulator (the reference loop adds `step` to it each
  // iteration, so its rounding trajectory must be reproduced too) and the
  // final-partial-step boundary of min(step, t_s - now_).
  void idle_analytic(double t_s) {
    const double step = cfg_.recharge_step_s;
    const double e_max = energy_at(cfg_.v_max);
    const double partial_at = detail::threshold_partial(t_s, step);
    while (now_ < t_s) {
      if (energy_ >= e_max) {
        idle_time_ += t_s - now_;  // full store: income can no longer land
        now_ = t_s;
        return;
      }
      const double p = segment_power();
      const double seg = seg_end_;
      const detail::UlpSeq se = detail::seq_of(energy_, p * step);
      const detail::UlpSeq sn = detail::seq_of(now_, step);
      const detail::UlpSeq si = detail::seq_of(idle_time_, step);
      long long n = 0;
      if (seg > now_ && se.pure && sn.pure && si.pure) {
        n = detail::seq_cap(se);
        n = std::min(n, detail::seq_cap(sn));
        n = std::min(n, detail::seq_cap(si));
        n = std::min(n, detail::seq_pure_below(se, e_max));
        n = std::min(n, detail::seq_stop_at(se, e_max));  // bulk path check
        n = std::min(n, detail::seq_stop_at(sn, partial_at));
        n = std::min(n, detail::seq_stop_at(sn, seg));
      }
      if (n <= 0 || n == detail::kSeqInf) {
        // One literal reference iteration (handles the partial final
        // step, clamping, ties and binade crossings exactly).
        const double dt = std::min(step, t_s - now_);
        integrate_step(dt);
        idle_time_ += dt;
        continue;
      }
      energy_ = detail::seq_value(se, n);
      now_ = detail::seq_value(sn, n);
      idle_time_ = detail::seq_value(si, n);
    }
  }

  const HarvestSource& source_;
  CapacitorConfig cfg_;
  double energy_ = 0.0;
  double now_ = 0.0;
  // Hardened income-segment cache (segment_power): the source's power is
  // seg_p_ for every instant in [t_computed, seg_end_), and now_ never
  // goes backward, so staleness is impossible.
  double seg_p_ = 0.0;
  double seg_end_ = -std::numeric_limits<double>::infinity();
  bool on_ = true;
  bool starved_ = false;
  long failures_ = 0;
  double on_time_ = 0.0;
  double off_time_ = 0.0;
  double idle_time_ = 0.0;
  obs::EventTrace* obs_trace_ = nullptr;  // lifecycle-event sink (may be null)
};

}  // namespace ehdnn::power
