// Capacitor-buffered energy-harvesting supply (the paper's 100 uF buffer).
//
// The device operates while the capacitor voltage stays above v_off; it
// boots (or re-boots) once harvesting has refilled the capacitor to v_on.
// The usable burst energy is E = C/2 (v_on^2 - v_off^2) — about 0.30 mJ
// with the defaults — which is what makes DNN inference intermittent:
// a whole inference needs orders of magnitude more.
#pragma once

#include <algorithm>
#include <cmath>

#include "device/power_interface.h"
#include "power/harvest.h"

namespace ehdnn::power {

struct CapacitorConfig {
  double capacitance_f = 100e-6;  // the paper's 100 uF
  double v_on = 3.3;              // boot threshold
  double v_off = 2.2;             // brown-out threshold
  double v_max = 3.6;             // harvester regulator clamp
  double recharge_step_s = 50e-6; // off-time integration step
  double max_off_s = 3600.0;      // starvation guard
};

class CapacitorSupply : public dev::PowerSupply {
 public:
  CapacitorSupply(const HarvestSource& source, CapacitorConfig cfg = {})
      : source_(source), cfg_(cfg) {
    energy_ = energy_at(cfg_.v_on);  // starts charged to the boot threshold
  }

  bool consume(double joules, double dt) override {
    // Harvest income accrues over the same window the load draws.
    energy_ = std::min(energy_ + source_.power_at(now_) * dt, energy_at(cfg_.v_max));
    now_ += dt;
    on_time_ += dt;
    energy_ -= joules;
    if (energy_ < energy_at(cfg_.v_off)) {
      energy_ = std::max(energy_, 0.0);
      on_ = false;
      ++failures_;
      return false;
    }
    return true;
  }

  double voltage() const override {
    return std::sqrt(2.0 * energy_ / cfg_.capacitance_f);
  }

  double headroom() const override {
    return std::max(0.0, energy_ - energy_at(cfg_.v_off));
  }

  bool on() const override { return on_; }

  // Integrates harvest income until v_on or the max_off_s starvation
  // guard. Starvation is not an exception: the supply reports it through
  // starved() so runtimes can surface a distinct RunStats outcome
  // (starved vs completed) instead of dying mid-run.
  double recharge_to_on() override {
    const double t0 = now_;
    starved_ = false;
    while (energy_ < energy_at(cfg_.v_on)) {
      if (now_ - t0 >= cfg_.max_off_s) {
        starved_ = true;
        break;
      }
      energy_ = std::min(energy_ + source_.power_at(now_) * cfg_.recharge_step_s,
                         energy_at(cfg_.v_max));
      now_ += cfg_.recharge_step_s;
    }
    on_ = !starved_;
    const double off = now_ - t0;
    off_time_ += off;
    return off;
  }

  bool starved() const override { return starved_; }

  // Duty-cycle sleep: income keeps integrating (clamped at v_max) while
  // the device draws nothing. Unlike recharge_to_on this is not an
  // outage — on/off/starved states are untouched and no off-time accrues.
  // The final step is partial so the device wakes exactly at t_s (job
  // release instants stay exact in the fleet's timing records).
  void idle_until(double t_s) override {
    const double e_max = energy_at(cfg_.v_max);
    while (now_ < t_s) {
      if (energy_ >= e_max) {
        // Full capacitor: harvest income is non-negative by construction
        // (every HarvestSource clamps at zero) and the regulator caps the
        // store at v_max, so the energy cannot change for the rest of the
        // park — fast-forward to the wake instant instead of integrating
        // 50 us at a time. This is what makes multi-second parks O(1) for
        // the fleet engine's duty-cycled populations.
        idle_time_ += t_s - now_;
        now_ = t_s;
        break;
      }
      const double dt = std::min(cfg_.recharge_step_s, t_s - now_);
      energy_ = std::min(energy_ + source_.power_at(now_) * dt, e_max);
      now_ += dt;
      idle_time_ += dt;
    }
  }

  double now() const override { return now_; }

  long failures() const { return failures_; }
  double on_time() const { return on_time_; }
  double off_time() const { return off_time_; }
  double idle_time() const { return idle_time_; }

  // Usable per-burst energy between the thresholds.
  double burst_energy() const { return energy_at(cfg_.v_on) - energy_at(cfg_.v_off); }

  const CapacitorConfig& config() const { return cfg_; }

 private:
  double energy_at(double v) const { return 0.5 * cfg_.capacitance_f * v * v; }

  const HarvestSource& source_;
  CapacitorConfig cfg_;
  double energy_ = 0.0;
  double now_ = 0.0;
  bool on_ = true;
  bool starved_ = false;
  long failures_ = 0;
  double on_time_ = 0.0;
  double off_time_ = 0.0;
  double idle_time_ = 0.0;
};

}  // namespace ehdnn::power
