// One factory for every harvest source, keyed by a scenario spec string —
// the scenario engine's "new traces = new scenarios, zero code" entry
// point. Grammar (see BENCHMARKS.md "Scenarios"):
//
//   spec   := kind [":" key "=" value ("," key "=" value)*]
//   kind   := const | square | sine | rf | solar | trace
//
// Keys per kind (defaults in parentheses; powers in watts, times in s):
//   const:  w (1e-3)
//   square: hi (4e-3), lo (0), period (0.02), duty (0.5)
//   sine:   mean (2e-3), amp (2e-3), period (0.02)
//   rf:     base (0.2e-3), burst (5e-3), rate (30), dur (5e-3), seed (1),
//           horizon (10)
//   solar:  peak (5e-3), day (1.0), daylight (0.5), floor (0)
//   trace:  path (required), interp (linear|zoh, linear), loop (1), scale (1)
//
// Unknown kinds or keys, malformed values, and unreadable trace files all
// throw ehdnn::Error.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "power/harvest.h"

namespace ehdnn::power {

std::unique_ptr<HarvestSource> make_harvest_source(const std::string& spec);

// The spec kinds the factory accepts, from the same static kind table the
// dispatch uses (what `--list-sources` prints; cannot drift).
const std::vector<std::string>& harvest_source_kinds();

}  // namespace ehdnn::power
