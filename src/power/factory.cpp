#include "power/factory.h"

#include <cstdlib>
#include <map>
#include <vector>

#include "power/trace.h"
#include "util/check.h"
#include "util/parse.h"

namespace ehdnn::power {

namespace {

// Parsed `key=value` pairs with consumption tracking, so a typo'd key is
// an error instead of a silently applied default.
class SpecArgs {
 public:
  SpecArgs(const std::string& spec, const std::string& args) : spec_(spec) {
    std::size_t pos = 0;
    while (pos < args.size()) {
      std::size_t comma = args.find(',', pos);
      if (comma == std::string::npos) comma = args.size();
      const std::string item = args.substr(pos, comma - pos);
      pos = comma + 1;
      if (item.empty()) continue;
      const std::size_t eq = item.find('=');
      check(eq != std::string::npos && eq > 0,
            "harvest spec \"" + spec_ + "\": expected key=value, got \"" + item + "\"");
      kv_[item.substr(0, eq)] = item.substr(eq + 1);
    }
  }

  double num(const std::string& key, double fallback) {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    used_.push_back(key);
    const auto v = parse_double(it->second);
    check(v.has_value(),
          "harvest spec \"" + spec_ + "\": bad number for " + key + ": \"" + it->second +
              "\"");
    return *v;
  }

  std::string str(const std::string& key, const std::string& fallback = "") {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    used_.push_back(key);
    return it->second;
  }

  // Call after construction: every provided key must have been consumed.
  void finish() const {
    for (const auto& [k, v] : kv_) {
      bool used = false;
      for (const auto& u : used_) used = used || u == k;
      check(used, "harvest spec \"" + spec_ + "\": unknown key \"" + k + "\"");
    }
  }

 private:
  std::string spec_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> used_;
};

}  // namespace

std::unique_ptr<HarvestSource> make_harvest_source(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  SpecArgs a(spec, colon == std::string::npos ? "" : spec.substr(colon + 1));

  std::unique_ptr<HarvestSource> src;
  if (kind == "const") {
    src = std::make_unique<ConstantSource>(a.num("w", 1e-3));
  } else if (kind == "square") {
    src = std::make_unique<SquareSource>(a.num("hi", 4e-3), a.num("lo", 0.0),
                                         a.num("period", 0.02), a.num("duty", 0.5));
  } else if (kind == "sine") {
    src = std::make_unique<SineSource>(a.num("mean", 2e-3), a.num("amp", 2e-3),
                                       a.num("period", 0.02));
  } else if (kind == "rf") {
    src = std::make_unique<PoissonBurstSource>(
        a.num("base", 0.2e-3), a.num("burst", 5e-3), a.num("rate", 30.0),
        a.num("dur", 5e-3), static_cast<std::uint64_t>(a.num("seed", 1.0)),
        a.num("horizon", 10.0));
  } else if (kind == "solar") {
    src = std::make_unique<SolarDaySource>(a.num("peak", 5e-3), a.num("day", 1.0),
                                           a.num("daylight", 0.5), a.num("floor", 0.0));
  } else if (kind == "trace") {
    const std::string path = a.str("path");
    check(!path.empty(), "harvest spec \"" + spec + "\": trace needs path=FILE");
    const std::string interp_s = a.str("interp", "linear");
    TraceInterp interp;
    if (interp_s == "linear") {
      interp = TraceInterp::kLinear;
    } else if (interp_s == "zoh") {
      interp = TraceInterp::kZeroOrderHold;
    } else {
      fail("harvest spec \"" + spec + "\": interp must be linear or zoh");
    }
    src = std::make_unique<TraceHarvestSource>(load_trace_csv(path), interp,
                                               a.num("loop", 1.0) != 0.0,
                                               a.num("scale", 1.0));
  } else {
    fail("harvest spec \"" + spec + "\": unknown kind \"" + kind + "\"");
  }
  a.finish();
  return src;
}

}  // namespace ehdnn::power
