#include "power/factory.h"

#include <cstdlib>

#include "power/trace.h"
#include "util/check.h"
#include "util/spec.h"

namespace ehdnn::power {

namespace {

std::unique_ptr<HarvestSource> make_const(const std::string&, SpecArgs& a) {
  return std::make_unique<ConstantSource>(a.num("w", 1e-3));
}

std::unique_ptr<HarvestSource> make_square(const std::string&, SpecArgs& a) {
  return std::make_unique<SquareSource>(a.num("hi", 4e-3), a.num("lo", 0.0),
                                        a.num("period", 0.02), a.num("duty", 0.5));
}

std::unique_ptr<HarvestSource> make_sine(const std::string&, SpecArgs& a) {
  return std::make_unique<SineSource>(a.num("mean", 2e-3), a.num("amp", 2e-3),
                                      a.num("period", 0.02));
}

std::unique_ptr<HarvestSource> make_rf(const std::string&, SpecArgs& a) {
  return std::make_unique<PoissonBurstSource>(
      a.num("base", 0.2e-3), a.num("burst", 5e-3), a.num("rate", 30.0), a.num("dur", 5e-3),
      static_cast<std::uint64_t>(a.num("seed", 1.0)), a.num("horizon", 10.0));
}

std::unique_ptr<HarvestSource> make_solar(const std::string&, SpecArgs& a) {
  return std::make_unique<SolarDaySource>(a.num("peak", 5e-3), a.num("day", 1.0),
                                          a.num("daylight", 0.5), a.num("floor", 0.0));
}

std::unique_ptr<HarvestSource> make_trace(const std::string& spec, SpecArgs& a) {
  const std::string path = a.str("path");
  check(!path.empty(), "harvest spec \"" + spec + "\": trace needs path=FILE");
  const std::string interp_s = a.str("interp", "linear");
  TraceInterp interp;
  if (interp_s == "linear") {
    interp = TraceInterp::kLinear;
  } else if (interp_s == "zoh") {
    interp = TraceInterp::kZeroOrderHold;
  } else {
    fail("harvest spec \"" + spec + "\": interp must be linear or zoh");
  }
  return std::make_unique<TraceHarvestSource>(load_trace_csv(path), interp,
                                              a.num("loop", 1.0) != 0.0, a.num("scale", 1.0));
}

// THE source-kind table: the factory dispatch and harvest_source_kinds()
// (what `--list-sources` prints) both derive from it, so the CLI listing
// cannot drift from what make_harvest_source accepts.
struct KindEntry {
  const char* kind;
  std::unique_ptr<HarvestSource> (*make)(const std::string& spec, SpecArgs& a);
};

constexpr KindEntry kKindTable[] = {
    {"const", make_const}, {"square", make_square}, {"sine", make_sine},
    {"rf", make_rf},       {"solar", make_solar},   {"trace", make_trace},
};

}  // namespace

const std::vector<std::string>& harvest_source_kinds() {
  static const std::vector<std::string> kinds = [] {
    std::vector<std::string> v;
    for (const auto& k : kKindTable) v.emplace_back(k.kind);
    return v;
  }();
  return kinds;
}

std::unique_ptr<HarvestSource> make_harvest_source(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  SpecArgs a(spec, colon == std::string::npos ? "" : spec.substr(colon + 1));
  for (const auto& k : kKindTable) {
    if (kind == k.kind) {
      auto src = k.make(spec, a);
      a.finish();
      return src;
    }
  }
  fail("harvest spec \"" + spec + "\": unknown kind \"" + kind + "\"");
}

}  // namespace ehdnn::power
