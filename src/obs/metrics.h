// Named monotone counters and high-water gauges with qsketch-style merge
// semantics: integer bin-wise combination that is commutative and
// associative, so any partition of the work (worker threads, process
// shards) merges to the same registry — the property that lets a
// `metrics` block ride the byte-identical report JSON.
//
//   * counter — monotone sum; merge adds. ("event.boot", "profile.slices")
//   * gauge   — high-water mark; merge takes the max.
//     ("fleet.max_device_reboots")
//
// Hot paths cache a stable `long*` cell once (std::map nodes never move)
// and bump it directly — the same pattern flex::PhaseProfile uses for its
// slice/recovery/checkpoint counts, which keeps the --profile printout
// and the trace-derived metrics reading from one set of cells.
//
// Iteration order is the map's lexicographic key order, so serialization
// is deterministic without a sort pass.
#pragma once

#include <map>
#include <string>

namespace ehdnn::obs {

class MetricsRegistry {
 public:
  // Stable pointer to a (zero-initialized) counter cell.
  long* counter(const std::string& name) { return &counters_[name]; }
  long* gauge(const std::string& name) { return &gauges_[name]; }

  void add(const std::string& name, long v) { counters_[name] += v; }
  void set_max(const std::string& name, long v) {
    long& g = gauges_[name];
    if (v > g) g = v;
  }

  // Bin-wise merge: counters add, gauges max. Commutative and
  // associative over any grouping of partial registries.
  void merge(const MetricsRegistry& o) {
    for (const auto& [k, v] : o.counters_) counters_[k] += v;
    for (const auto& [k, v] : o.gauges_) set_max(k, v);
  }

  const std::map<std::string, long>& counters() const { return counters_; }
  const std::map<std::string, long>& gauges() const { return gauges_; }
  bool empty() const { return counters_.empty() && gauges_.empty(); }
  void clear() {
    counters_.clear();
    gauges_.clear();
  }

 private:
  std::map<std::string, long> counters_;
  std::map<std::string, long> gauges_;
};

}  // namespace ehdnn::obs
