// Trace exporters: Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing) and a deterministic plain-text dump (the golden-file
// format). Both render the same TraceCapture structure — a device's (or
// scenario cell's) retained event ring plus its identity — and both are
// byte-deterministic: fixed field order, fixed float formatting, events
// in recorded order.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"

namespace ehdnn::obs {

// One exported track: a traced device (fleet) or cell (scenario sweep).
struct TraceCapture {
  int id = 0;               // device index / cell index — the track's pid
  std::string label;        // e.g. "device 8 (sonic/sonic)" or a cell name
  std::vector<Event> events;  // oldest first (EventTrace::snapshot order)
  long dropped = 0;         // events the ring overwrote
  long total = 0;           // total recorded including dropped
};

// Chrome trace_event JSON: one process (track group) per capture, with
// instant events for every lifecycle landmark on a "lifecycle" thread and
// synthesized duration events (checkpoint begin/end pairs, job
// release→complete/miss spans) on a "spans" thread. Timestamps are the
// simulated device time in microseconds.
void write_chrome_trace(std::ostream& os, const std::vector<TraceCapture>& traces);

// Deterministic text dump (ehdnn-trace-text-v1): a header line per
// capture followed by one line per event. The format the obs goldens and
// the CI determinism cmp pin.
void write_text_trace(std::ostream& os, const std::vector<TraceCapture>& traces);

// The shared `metrics` JSON block (counters then gauges, each sorted by
// name) used by both FLEET (ehdnn-fleet-v6) and SCENARIOS
// (ehdnn-scenarios-v3) writers. `indent` prefixes every emitted line; the
// block is emitted as `"metrics": {...}` with NO trailing comma/newline.
void write_metrics_json(std::ostream& os, const MetricsRegistry& reg,
                        const std::string& indent);

}  // namespace ehdnn::obs
