// Structured lifecycle-event tracing for intermittent devices.
//
// An EventTrace is a per-device sink for the ~20 lifecycle landmarks the
// stack emits (boots, brown-outs, commits, checkpoints, scheduler tier
// moves, job agenda decisions, watchdog trips). Every event is stamped
// with SIMULATED device time — the supply clock, which is device-local
// and advances identically for any worker count or shard split — so a
// trace is deterministic and byte-identical across `--jobs N` and
// `--shards K`, exactly like the report JSON it rides along with.
//
// Two modes, chosen by capacity:
//   * counts-only (capacity 0, the default): record() is one array
//     increment per event. Cheap enough that the fleet/scenario harnesses
//     attach one to EVERY device, which is what feeds the `metrics` block
//     of FLEET/SCENARIOS output.
//   * ring capture (capacity > 0): additionally keeps the most recent
//     `capacity` events in a fixed-size ring (oldest overwritten first,
//     counted by dropped()) for export — Chrome trace_event JSON for
//     Perfetto, or the deterministic text dump the goldens pin.
//
// A null EventTrace* is the fully-disabled state: every instrumentation
// site guards with one predicted branch (see obs::record below), which is
// what keeps the perf-gate cost of compiled-in-but-unused tracing at
// effectively zero.
//
// This header depends on nothing in the project, so any layer (power,
// device, core, sched, sim) may include it without cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ehdnn::obs {

// The event vocabulary. One recording site per kind (see BENCHMARKS.md
// "Observability" for the site table); adding a kind means appending here
// AND to kEventNames below — the static_assert keeps them in lockstep.
enum class EventKind : std::int32_t {
  kBoot = 0,          // executor boot slice (a = fresh ? 1 : 0)
  kBrownOut,          // PowerFailure caught by the executor
  kRecovery,          // recharge + reboot succeeded (one per RunStats reboot)
  kCommit,            // a unit committed (RuntimePolicy::on_commit)
  kCheckpointBegin,   // FLEX on-demand checkpoint write started
  kCheckpointEnd,     // ... and finished (a = checkpoint ordinal)
  kTileCursorWrite,   // tile runtime double-buffered cursor publish (a = layer)
  kTierSelect,        // adaptive: fresh-boot tier decision (a = tier)
  kTierSwitch,        // adaptive: re-decision changed tier (a = new, b = old)
  kTierDemote,        // adaptive: no-progress demotion chose a tier (a = tier)
  kForecastLock,      // periodic forecaster confirmed a period
  kForecastDrop,      // ... and lost it again
  kJobRelease,        // agenda release instant reached (a = job index)
  kJobAdmit,          // admission accepted the release (a = job index)
  kJobSkip,           // admission skipped an infeasible release (a = job index)
  kJobComplete,       // job finished, output committed (a = job, b = in deadline)
  kJobMiss,           // job ended without completing (a = job index)
  kFutileBoot,        // watchdog: a power cycle banked no progress (a = streak)
  kLivelockTrip,      // watchdog abandoned the run (a = streak)
  kPark,              // agenda idles the device until the next release
  kIdle,              // supply-level idle fast-forward finished
  kKindCount
};

inline constexpr int kKindCount = static_cast<int>(EventKind::kKindCount);

inline const char* event_name(EventKind k) {
  static constexpr const char* kEventNames[] = {
      "boot",          "brown_out",     "recovery",       "commit",
      "checkpoint_begin", "checkpoint_end", "tile_cursor_write", "tier_select",
      "tier_switch",   "tier_demote",   "forecast_lock",  "forecast_drop",
      "job_release",   "job_admit",     "job_skip",       "job_complete",
      "job_miss",      "futile_boot",   "livelock_trip",  "park",
      "idle",
  };
  static_assert(sizeof(kEventNames) / sizeof(kEventNames[0]) == kKindCount,
                "event name table out of sync with EventKind");
  const int i = static_cast<int>(k);
  return (i >= 0 && i < kKindCount) ? kEventNames[i] : "?";
}

// One recorded event: 16 bytes, trivially copyable (the shard partials
// serialize these as text fields, not raw bytes — endianness-proof).
struct Event {
  double t_s = 0.0;                       // simulated device time
  EventKind kind = EventKind::kBoot;
  std::int32_t a = 0, b = 0;              // kind-specific payload (see enum)
};

class EventTrace {
 public:
  explicit EventTrace(std::size_t capacity = 0) { set_capacity(capacity); }

  // Per-kind counters are ALWAYS maintained; the ring only when capacity
  // is nonzero. Changing capacity clears the ring (not the counters).
  void set_capacity(std::size_t capacity) {
    cap_ = capacity;
    ring_.clear();
    ring_.reserve(cap_);
    head_ = 0;
    dropped_ = 0;
  }
  std::size_t capacity() const { return cap_; }

  void record(double t_s, EventKind k, std::int32_t a = 0, std::int32_t b = 0) {
    ++counts_[static_cast<int>(k)];
    if (cap_ == 0) return;
    if (ring_.size() < cap_) {
      ring_.push_back(Event{t_s, k, a, b});
    } else {
      // Overwrite the oldest — a bounded trace keeps the most recent
      // window, which is where the terminal verdict's evidence lives.
      ring_[head_] = Event{t_s, k, a, b};
      head_ = (head_ + 1 == cap_) ? 0 : head_ + 1;
      ++dropped_;
    }
  }

  long count(EventKind k) const { return counts_[static_cast<int>(k)]; }
  const long* counts() const { return counts_; }
  // Total events recorded (counting ones the ring dropped).
  long total() const {
    long t = 0;
    for (int i = 0; i < kKindCount; ++i) t += counts_[i];
    return t;
  }
  long dropped() const { return dropped_; }

  // The retained events, oldest first.
  std::vector<Event> snapshot() const {
    std::vector<Event> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  void clear() {
    for (int i = 0; i < kKindCount; ++i) counts_[i] = 0;
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  long counts_[kKindCount] = {};
  std::vector<Event> ring_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;  // oldest retained event once the ring is full
  long dropped_ = 0;
};

// The null-safe recording helper every instrumentation site goes
// through: a disabled trace costs exactly this one (well-predicted)
// branch.
inline void record(EventTrace* t, double t_s, EventKind k, std::int32_t a = 0,
                   std::int32_t b = 0) {
  if (t != nullptr) t->record(t_s, k, a, b);
}

}  // namespace ehdnn::obs
