#include "obs/export.h"

#include <cstdio>
#include <map>
#include <ostream>

namespace ehdnn::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out + "\"";
}

// Fixed-width microsecond timestamp: deterministic bytes, sub-ns
// resolution (Perfetto sorts on the numeric value either way).
std::string us(double t_s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", t_s * 1e6);
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<TraceCapture>& traces) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& line) {
    os << (first ? "\n" : ",\n") << line;
    first = false;
  };
  for (const TraceCapture& tc : traces) {
    const std::string pid = std::to_string(tc.id);
    emit("{\"ph\":\"M\",\"pid\":" + pid +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":" +
         json_escape(tc.label) + "}}");
    emit("{\"ph\":\"M\",\"pid\":" + pid +
         ",\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"lifecycle\"}}");
    emit("{\"ph\":\"M\",\"pid\":" + pid +
         ",\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"spans\"}}");

    // Duration synthesis: checkpoint begin→end pairs, and job
    // release→complete/miss spans keyed by job index. A begin whose end
    // fell off the ring (or vice versa) degrades to the instants alone.
    double ckpt_begin_ts = -1.0;
    std::map<std::int32_t, double> job_release_ts;
    for (const Event& e : tc.events) {
      emit("{\"ph\":\"i\",\"pid\":" + pid + ",\"tid\":0,\"ts\":" + us(e.t_s) +
           ",\"s\":\"t\",\"name\":\"" + event_name(e.kind) +
           "\",\"args\":{\"a\":" + std::to_string(e.a) +
           ",\"b\":" + std::to_string(e.b) + "}}");
      switch (e.kind) {
        case EventKind::kCheckpointBegin:
          ckpt_begin_ts = e.t_s;
          break;
        case EventKind::kCheckpointEnd:
          if (ckpt_begin_ts >= 0.0) {
            char dur[64];
            std::snprintf(dur, sizeof dur, "%.3f", (e.t_s - ckpt_begin_ts) * 1e6);
            emit("{\"ph\":\"X\",\"pid\":" + pid + ",\"tid\":1,\"ts\":" +
                 us(ckpt_begin_ts) + ",\"dur\":" + dur +
                 ",\"name\":\"checkpoint\",\"args\":{\"seq\":" + std::to_string(e.a) +
                 "}}");
            ckpt_begin_ts = -1.0;
          }
          break;
        case EventKind::kJobRelease:
          job_release_ts[e.a] = e.t_s;
          break;
        case EventKind::kJobComplete:
        case EventKind::kJobMiss: {
          const auto it = job_release_ts.find(e.a);
          if (it != job_release_ts.end()) {
            char dur[64];
            std::snprintf(dur, sizeof dur, "%.3f", (e.t_s - it->second) * 1e6);
            emit("{\"ph\":\"X\",\"pid\":" + pid + ",\"tid\":1,\"ts\":" +
                 us(it->second) + ",\"dur\":" + dur + ",\"name\":\"job " +
                 std::to_string(e.a) + "\",\"args\":{\"" +
                 (e.kind == EventKind::kJobComplete ? "in_deadline" : "missed") +
                 "\":" + std::to_string(e.kind == EventKind::kJobComplete ? e.b : 1) +
                 "}}");
            job_release_ts.erase(it);
          }
          break;
        }
        default:
          break;
      }
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_text_trace(std::ostream& os, const std::vector<TraceCapture>& traces) {
  os << "# ehdnn-trace-text-v1\n";
  for (const TraceCapture& tc : traces) {
    os << "trace " << tc.id << " label=\"" << tc.label << "\" total=" << tc.total
       << " retained=" << tc.events.size() << " dropped=" << tc.dropped << "\n";
    char ts[64];
    for (const Event& e : tc.events) {
      std::snprintf(ts, sizeof ts, "%.9f", e.t_s);
      os << "  " << ts << " " << event_name(e.kind) << " a=" << e.a << " b=" << e.b
         << "\n";
    }
  }
}

void write_metrics_json(std::ostream& os, const MetricsRegistry& reg,
                        const std::string& indent) {
  os << indent << "\"metrics\": {\n";
  os << indent << "  \"counters\": {";
  bool first = true;
  for (const auto& [k, v] : reg.counters()) {
    os << (first ? "\n" : ",\n") << indent << "    " << json_escape(k) << ": " << v;
    first = false;
  }
  os << (first ? "" : "\n" + indent + "  ") << "},\n";
  os << indent << "  \"gauges\": {";
  first = true;
  for (const auto& [k, v] : reg.gauges()) {
    os << (first ? "\n" : ",\n") << indent << "    " << json_escape(k) << ": " << v;
    first = false;
  }
  os << (first ? "" : "\n" + indent + "  ") << "}\n";
  os << indent << "}";
}

}  // namespace ehdnn::obs
