// Minimal dense float tensor (row-major), sized for microcontroller-scale
// networks. Layouts used across ehdnn:
//   * images / feature maps: (C, H, W)
//   * 1-D signals:           (C, L)
//   * vectors:               (N)
// Batch processing loops over samples; the models in this repo are small
// enough (the whole point of the paper) that this is the right trade-off.
#pragma once

#include <cstddef>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"

namespace ehdnn::nn {

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::size_t> shape)
      : shape_(std::move(shape)), data_(count(shape_), 0.0f) {}

  Tensor(std::vector<std::size_t> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    check(data_.size() == count(shape_), "Tensor: data size does not match shape");
  }

  static std::size_t count(const std::vector<std::size_t>& shape) {
    return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                           [](std::size_t a, std::size_t b) { return a * b; });
  }

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // (C,H,W) indexing.
  float& at(std::size_t c, std::size_t h, std::size_t w) {
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }
  float at(std::size_t c, std::size_t h, std::size_t w) const {
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }

  // (C,L) indexing.
  float& at(std::size_t c, std::size_t l) { return data_[c * shape_[1] + l]; }
  float at(std::size_t c, std::size_t l) const { return data_[c * shape_[1] + l]; }

  // Reinterpret with a new shape of equal element count.
  Tensor reshaped(std::vector<std::size_t> new_shape) const {
    check(count(new_shape) == size(), "Tensor::reshaped: element count mismatch");
    return Tensor(std::move(new_shape), data_);
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  float max_abs() const {
    float m = 0.0f;
    for (float v : data_) m = std::max(m, std::abs(v));
    return m;
  }

  std::string shape_str() const {
    std::string s = "(";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(shape_[i]);
    }
    return s + ")";
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace ehdnn::nn
