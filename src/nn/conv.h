// Convolution layers (valid padding, stride 1) in the layouts the paper's
// models use: Conv2D over (C,H,W) feature maps and Conv1D over (C,L)
// signals (the HAR model's 1x12 kernels).
//
// Structured pruning interacts with Conv2D through `shape_mask`, the
// paper's "filter shape" sparsity: a pruned kernel position (r,s) is zero
// across *all* filters and channels, which is what makes the sparsity
// hardware-friendly — ACE's window gather simply skips pruned positions
// for every window, no per-weight indices needed (paper SSII). Pruning
// 5x5 = 25 positions down to 13 realizes Table II's ~2x CONV compression.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace ehdnn::nn {

class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_ch, std::size_t out_ch, std::size_t kh, std::size_t kw,
         bool bias = true);

  void init(Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Conv2D"; }
  std::vector<std::size_t> output_shape(const std::vector<std::size_t>& in) const override;
  std::size_t stored_weights() const override;

  std::size_t in_channels() const { return in_ch_; }
  std::size_t out_channels() const { return out_ch_; }
  std::size_t kernel_h() const { return kh_; }
  std::size_t kernel_w() const { return kw_; }

  // w(f, c, r, s)
  float& w(std::size_t f, std::size_t c, std::size_t r, std::size_t s) {
    return w_[((f * in_ch_ + c) * kh_ + r) * kw_ + s];
  }
  float w(std::size_t f, std::size_t c, std::size_t r, std::size_t s) const {
    return w_[((f * in_ch_ + c) * kh_ + r) * kw_ + s];
  }
  std::span<float> weights() { return w_; }
  std::span<const float> weights() const { return w_; }
  std::span<float> bias() { return b_; }
  std::span<const float> bias() const { return b_; }

  // Kernel-position structured-pruning mask, row-major (kh*kw);
  // shape_mask()[r*kw+s] == false means position (r,s) is pruned (zero) in
  // every filter/channel. Maintained by the compress module; forward /
  // backward skip pruned positions, and stored_weights() / ACE use the
  // mask to cut storage and MAC length.
  const std::vector<bool>& shape_mask() const { return shape_mask_; }
  void set_shape_mask(std::vector<bool> mask);
  std::size_t live_positions() const;

 private:
  std::size_t in_ch_, out_ch_, kh_, kw_;
  std::vector<float> w_, gw_;
  std::vector<float> b_, gb_;
  std::vector<bool> shape_mask_;
  Tensor last_x_;
};

class Conv1D : public Layer {
 public:
  Conv1D(std::size_t in_ch, std::size_t out_ch, std::size_t k, bool bias = true);

  void init(Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Conv1D"; }
  std::vector<std::size_t> output_shape(const std::vector<std::size_t>& in) const override;
  std::size_t stored_weights() const override;

  std::size_t in_channels() const { return in_ch_; }
  std::size_t out_channels() const { return out_ch_; }
  std::size_t kernel() const { return k_; }

  float& w(std::size_t f, std::size_t c, std::size_t t) { return w_[(f * in_ch_ + c) * k_ + t]; }
  float w(std::size_t f, std::size_t c, std::size_t t) const {
    return w_[(f * in_ch_ + c) * k_ + t];
  }
  std::span<float> weights() { return w_; }
  std::span<const float> weights() const { return w_; }
  std::span<float> bias() { return b_; }
  std::span<const float> bias() const { return b_; }

 private:
  std::size_t in_ch_, out_ch_, k_;
  std::vector<float> w_, gw_;
  std::vector<float> b_, gb_;
  Tensor last_x_;
};

}  // namespace ehdnn::nn
