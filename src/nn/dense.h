// Fully connected layers: plain Dense and CosineDense.
//
// CosineDense implements cosine normalization (Luo et al., ICANN'18), which
// RAD uses to constrain computed intermediates to [-1, 1] (paper SSIII-A):
// instead of w_i . x it outputs (w_i . x) / (|w_i| |x| + eps), which is a
// cosine similarity and therefore bounded by construction.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace ehdnn::nn {

class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, bool bias = true);

  void init(Rng& rng);  // He-uniform initialization

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Dense"; }
  std::vector<std::size_t> output_shape(const std::vector<std::size_t>& in) const override;
  std::size_t stored_weights() const override { return w_.size() + b_.size(); }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  std::span<float> weights() { return w_; }
  std::span<const float> weights() const { return w_; }
  std::span<float> bias() { return b_; }
  std::span<const float> bias() const { return b_; }

 protected:
  std::size_t in_, out_;
  std::vector<float> w_, gw_;  // row-major (out, in)
  std::vector<float> b_, gb_;
  Tensor last_x_;
};

class CosineDense : public Dense {
 public:
  CosineDense(std::size_t in, std::size_t out) : Dense(in, out, /*bias=*/false) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::string name() const override { return "CosineDense"; }

 private:
  static constexpr float kEps = 1e-6f;
  std::vector<float> last_row_norm_;
  float last_x_norm_ = 0.0f;
  Tensor last_y_;
};

}  // namespace ehdnn::nn
