// Block-circulant-matrix (BCM) fully connected layer (paper SSII / SSIII-A).
//
// The logical (out x in) weight matrix is partitioned into k x k blocks,
// each constrained to be circulant and therefore determined by its first
// column. Storage drops from out*in to (out/k)*(in/k)*k values — exactly a
// factor of k (Table I) — and each block's mat-vec becomes a circular
// convolution computed with FFTs.
//
// When in or out is not a multiple of k the layer zero-pads internally
// (e.g. OKG's 3456x512 layer with k=256 pads the input to 3584), which is
// how deployed BCM implementations handle ragged edges; padded positions
// carry zero weights and are never observable in the output.
//
// Training runs in double-precision FFTs; gradients for the first columns
// are circular correlations (see backward()). The quantized on-device
// version of this layer lives in src/core/ace.
#pragma once

#include <complex>

#include "nn/layer.h"
#include "util/rng.h"

namespace ehdnn::nn {

class BcmDense : public Layer {
 public:
  BcmDense(std::size_t in, std::size_t out, std::size_t block, bool bias = true);

  void init(Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "BcmDense"; }
  std::vector<std::size_t> output_shape(const std::vector<std::size_t>& in) const override;
  std::size_t stored_weights() const override { return cols_.size() + b_.size(); }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  std::size_t block_size() const { return k_; }
  std::size_t blocks_out() const { return p_; }  // rows of blocks
  std::size_t blocks_in() const { return q_; }   // cols of blocks

  // First column of block (i, j); length k.
  std::span<float> first_col(std::size_t i, std::size_t j) {
    return {&cols_[(i * q_ + j) * k_], k_};
  }
  std::span<const float> first_col(std::size_t i, std::size_t j) const {
    return {&cols_[(i * q_ + j) * k_], k_};
  }

  std::span<float> bias() { return b_; }
  std::span<const float> bias() const { return b_; }

  // Dense equivalent (out x in), used by tests and by projection round-trips.
  std::vector<float> to_dense() const;

 private:
  std::size_t in_, out_, k_, p_, q_, in_pad_;
  std::vector<float> cols_, gcols_;  // (p, q, k) first columns
  std::vector<float> b_, gb_;
  // Caches from forward for backward.
  std::vector<std::complex<double>> xf_;  // (q, k) spectra of input blocks
  std::vector<std::complex<double>> cf_;  // (p, q, k) spectra of first cols
  Tensor last_x_;
};

}  // namespace ehdnn::nn
