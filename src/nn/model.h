// Sequential model container plus weight (de)serialization.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace ehdnn::nn {

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  template <typename L, typename... Args>
  L* add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  Tensor forward(const Tensor& x) {
    Tensor a = x;
    for (auto& l : layers_) a = l->forward(a);
    return a;
  }

  // Backward from the loss gradient at the output; returns dL/dinput.
  Tensor backward(const Tensor& dy) {
    Tensor g = dy;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
    return g;
  }

  std::vector<ParamView> params() {
    std::vector<ParamView> all;
    for (auto& l : layers_) {
      for (auto& p : l->params()) all.push_back(p);
    }
    return all;
  }

  void zero_grad() {
    for (auto& l : layers_) l->zero_grad();
  }

  std::size_t param_count() {
    std::size_t n = 0;
    for (auto& p : params()) n += p.value.size();
    return n;
  }

  // Stored (compressed) weights across layers — what ships to FRAM.
  std::size_t stored_weights() const {
    std::size_t n = 0;
    for (const auto& l : layers_) n += l->stored_weights();
    return n;
  }

  std::vector<std::size_t> output_shape(std::vector<std::size_t> in) const {
    for (const auto& l : layers_) in = l->output_shape(in);
    return in;
  }

  // Binary weight serialization (parameters only; topology is code).
  void save_weights(std::ostream& os);
  void load_weights(std::istream& is);

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace ehdnn::nn
