#include "nn/model.h"

#include <cstdint>
#include <istream>
#include <ostream>

#include "util/check.h"

namespace ehdnn::nn {

namespace {
constexpr std::uint32_t kMagic = 0x45484e4e;  // "EHNN"
}

void Model::save_weights(std::ostream& os) {
  const std::uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  auto ps = params();
  const std::uint32_t n = static_cast<std::uint32_t>(ps.size());
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& p : ps) {
    const std::uint64_t len = p.value.size();
    os.write(reinterpret_cast<const char*>(&len), sizeof(len));
    os.write(reinterpret_cast<const char*>(p.value.data()),
             static_cast<std::streamsize>(len * sizeof(float)));
  }
  check(os.good(), "Model::save_weights: stream error");
}

void Model::load_weights(std::istream& is) {
  std::uint32_t magic = 0, n = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  check(magic == kMagic, "Model::load_weights: bad magic");
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  auto ps = params();
  check(n == ps.size(), "Model::load_weights: parameter group count mismatch");
  for (auto& p : ps) {
    std::uint64_t len = 0;
    is.read(reinterpret_cast<char*>(&len), sizeof(len));
    check(len == p.value.size(), "Model::load_weights: parameter size mismatch");
    is.read(reinterpret_cast<char*>(p.value.data()),
            static_cast<std::streamsize>(len * sizeof(float)));
  }
  check(is.good(), "Model::load_weights: stream error");
}

}  // namespace ehdnn::nn
