#include "nn/dense.h"

#include <cmath>

namespace ehdnn::nn {

Dense::Dense(std::size_t in, std::size_t out, bool bias)
    : in_(in), out_(out), w_(in * out, 0.0f), gw_(in * out, 0.0f) {
  if (bias) {
    b_.assign(out, 0.0f);
    gb_.assign(out, 0.0f);
  }
}

void Dense::init(Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_));
  for (auto& v : w_) v = static_cast<float>(rng.uniform(-bound, bound));
  for (auto& v : b_) v = 0.0f;
}

Tensor Dense::forward(const Tensor& x) {
  check(x.size() == in_, "Dense: input size mismatch");
  last_x_ = x;
  Tensor y({out_});
  for (std::size_t o = 0; o < out_; ++o) {
    float acc = b_.empty() ? 0.0f : b_[o];
    const float* row = &w_[o * in_];
    for (std::size_t i = 0; i < in_; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
  return y;
}

Tensor Dense::backward(const Tensor& dy) {
  check(dy.size() == out_, "Dense: grad size mismatch");
  Tensor dx({in_});
  for (std::size_t o = 0; o < out_; ++o) {
    const float g = dy[o];
    const float* row = &w_[o * in_];
    float* grow = &gw_[o * in_];
    for (std::size_t i = 0; i < in_; ++i) {
      grow[i] += g * last_x_[i];
      dx[i] += g * row[i];
    }
    if (!gb_.empty()) gb_[o] += g;
  }
  return dx;
}

std::vector<ParamView> Dense::params() {
  std::vector<ParamView> p{{w_, gw_}};
  if (!b_.empty()) p.push_back({b_, gb_});
  return p;
}

std::vector<std::size_t> Dense::output_shape(const std::vector<std::size_t>& in) const {
  check(Tensor::count(in) == in_, "Dense: input shape mismatch");
  return {out_};
}

Tensor CosineDense::forward(const Tensor& x) {
  check(x.size() == in_, "CosineDense: input size mismatch");
  last_x_ = x;
  float xn = 0.0f;
  for (std::size_t i = 0; i < in_; ++i) xn += x[i] * x[i];
  last_x_norm_ = std::sqrt(xn) + kEps;

  last_row_norm_.assign(out_, 0.0f);
  Tensor y({out_});
  for (std::size_t o = 0; o < out_; ++o) {
    const float* row = &w_[o * in_];
    float dot = 0.0f, wn = 0.0f;
    for (std::size_t i = 0; i < in_; ++i) {
      dot += row[i] * x[i];
      wn += row[i] * row[i];
    }
    last_row_norm_[o] = std::sqrt(wn) + kEps;
    y[o] = dot / (last_row_norm_[o] * last_x_norm_);
  }
  last_y_ = y;
  return y;
}

Tensor CosineDense::backward(const Tensor& dy) {
  // y_o = (w_o . x) / (|w_o| |x|); with s_o = y_o:
  //   dL/dw_o = g_o * ( x / (|w_o||x|) - s_o * w_o / |w_o|^2 )
  //   dL/dx  += g_o * ( w_o / (|w_o||x|) - s_o * x / |x|^2 )
  check(dy.size() == out_, "CosineDense: grad size mismatch");
  Tensor dx({in_});
  const float xn = last_x_norm_;
  for (std::size_t o = 0; o < out_; ++o) {
    const float g = dy[o];
    const float wn = last_row_norm_[o];
    const float s = last_y_[o];
    const float* row = &w_[o * in_];
    float* grow = &gw_[o * in_];
    for (std::size_t i = 0; i < in_; ++i) {
      grow[i] += g * (last_x_[i] / (wn * xn) - s * row[i] / (wn * wn));
      dx[i] += g * (row[i] / (wn * xn) - s * last_x_[i] / (xn * xn));
    }
  }
  return dx;
}

}  // namespace ehdnn::nn
