#include "nn/conv.h"

#include <cmath>

namespace ehdnn::nn {

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(std::size_t in_ch, std::size_t out_ch, std::size_t kh, std::size_t kw, bool bias)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      kh_(kh),
      kw_(kw),
      w_(out_ch * in_ch * kh * kw, 0.0f),
      gw_(w_.size(), 0.0f),
      shape_mask_(kh * kw, true) {
  if (bias) {
    b_.assign(out_ch, 0.0f);
    gb_.assign(out_ch, 0.0f);
  }
}

void Conv2D::init(Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_ch_ * kh_ * kw_));
  for (auto& v : w_) v = static_cast<float>(rng.uniform(-bound, bound));
  for (auto& v : b_) v = 0.0f;
}

void Conv2D::set_shape_mask(std::vector<bool> mask) {
  check(mask.size() == kh_ * kw_, "Conv2D: shape mask size mismatch");
  shape_mask_ = std::move(mask);
  for (std::size_t f = 0; f < out_ch_; ++f) {
    for (std::size_t c = 0; c < in_ch_; ++c) {
      for (std::size_t r = 0; r < kh_; ++r) {
        for (std::size_t s = 0; s < kw_; ++s) {
          if (!shape_mask_[r * kw_ + s]) w(f, c, r, s) = 0.0f;
        }
      }
    }
  }
}

std::size_t Conv2D::live_positions() const {
  std::size_t live = 0;
  for (bool m : shape_mask_) live += m ? 1 : 0;
  return live;
}

Tensor Conv2D::forward(const Tensor& x) {
  check(x.rank() == 3 && x.dim(0) == in_ch_, "Conv2D: expected (C,H,W) input");
  check(x.dim(1) >= kh_ && x.dim(2) >= kw_, "Conv2D: input smaller than kernel");
  last_x_ = x;
  const std::size_t oh = x.dim(1) - kh_ + 1;
  const std::size_t ow = x.dim(2) - kw_ + 1;
  Tensor y({out_ch_, oh, ow});
  for (std::size_t f = 0; f < out_ch_; ++f) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        float acc = b_.empty() ? 0.0f : b_[f];
        for (std::size_t c = 0; c < in_ch_; ++c) {
          for (std::size_t r = 0; r < kh_; ++r) {
            const float* xrow = &x.raw()[(c * x.dim(1) + i + r) * x.dim(2) + j];
            const float* wrow = &w_[((f * in_ch_ + c) * kh_ + r) * kw_];
            for (std::size_t s = 0; s < kw_; ++s) {
              if (shape_mask_[r * kw_ + s]) acc += xrow[s] * wrow[s];
            }
          }
        }
        y.at(f, i, j) = acc;
      }
    }
  }
  return y;
}

Tensor Conv2D::backward(const Tensor& dy) {
  const Tensor& x = last_x_;
  const std::size_t oh = dy.dim(1);
  const std::size_t ow = dy.dim(2);
  Tensor dx({in_ch_, x.dim(1), x.dim(2)});
  for (std::size_t f = 0; f < out_ch_; ++f) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        const float g = dy.at(f, i, j);
        if (!gb_.empty()) gb_[f] += g;
        for (std::size_t c = 0; c < in_ch_; ++c) {
          for (std::size_t r = 0; r < kh_; ++r) {
            const float* xrow = &x.raw()[(c * x.dim(1) + i + r) * x.dim(2) + j];
            float* dxrow = &dx.raw()[(c * x.dim(1) + i + r) * x.dim(2) + j];
            float* grow = &gw_[((f * in_ch_ + c) * kh_ + r) * kw_];
            const float* wrow = &w_[((f * in_ch_ + c) * kh_ + r) * kw_];
            for (std::size_t s = 0; s < kw_; ++s) {
              if (!shape_mask_[r * kw_ + s]) continue;  // pruned stays zero
              grow[s] += g * xrow[s];
              dxrow[s] += g * wrow[s];
            }
          }
        }
      }
    }
  }
  // Bias gradients were accumulated above.
  return dx;
}

std::vector<ParamView> Conv2D::params() {
  std::vector<ParamView> p{{w_, gw_}};
  if (!b_.empty()) p.push_back({b_, gb_});
  return p;
}

std::vector<std::size_t> Conv2D::output_shape(const std::vector<std::size_t>& in) const {
  check(in.size() == 3 && in[0] == in_ch_, "Conv2D: input shape mismatch");
  return {out_ch_, in[1] - kh_ + 1, in[2] - kw_ + 1};
}

std::size_t Conv2D::stored_weights() const {
  return out_ch_ * in_ch_ * live_positions() + b_.size();
}

// ---------------------------------------------------------------- Conv1D

Conv1D::Conv1D(std::size_t in_ch, std::size_t out_ch, std::size_t k, bool bias)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      k_(k),
      w_(out_ch * in_ch * k, 0.0f),
      gw_(w_.size(), 0.0f) {
  if (bias) {
    b_.assign(out_ch, 0.0f);
    gb_.assign(out_ch, 0.0f);
  }
}

void Conv1D::init(Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_ch_ * k_));
  for (auto& v : w_) v = static_cast<float>(rng.uniform(-bound, bound));
  for (auto& v : b_) v = 0.0f;
}

Tensor Conv1D::forward(const Tensor& x) {
  check(x.rank() == 2 && x.dim(0) == in_ch_, "Conv1D: expected (C,L) input");
  check(x.dim(1) >= k_, "Conv1D: input shorter than kernel");
  last_x_ = x;
  const std::size_t ol = x.dim(1) - k_ + 1;
  Tensor y({out_ch_, ol});
  for (std::size_t f = 0; f < out_ch_; ++f) {
    for (std::size_t i = 0; i < ol; ++i) {
      float acc = b_.empty() ? 0.0f : b_[f];
      for (std::size_t c = 0; c < in_ch_; ++c) {
        const float* xp = &x.raw()[c * x.dim(1) + i];
        const float* wp = &w_[(f * in_ch_ + c) * k_];
        for (std::size_t t = 0; t < k_; ++t) acc += xp[t] * wp[t];
      }
      y.at(f, i) = acc;
    }
  }
  return y;
}

Tensor Conv1D::backward(const Tensor& dy) {
  const Tensor& x = last_x_;
  const std::size_t ol = dy.dim(1);
  Tensor dx({in_ch_, x.dim(1)});
  for (std::size_t f = 0; f < out_ch_; ++f) {
    for (std::size_t i = 0; i < ol; ++i) {
      const float g = dy.at(f, i);
      if (!gb_.empty()) gb_[f] += g;
      for (std::size_t c = 0; c < in_ch_; ++c) {
        const float* xp = &x.raw()[c * x.dim(1) + i];
        float* dxp = &dx.raw()[c * x.dim(1) + i];
        float* gp = &gw_[(f * in_ch_ + c) * k_];
        const float* wp = &w_[(f * in_ch_ + c) * k_];
        for (std::size_t t = 0; t < k_; ++t) {
          gp[t] += g * xp[t];
          dxp[t] += g * wp[t];
        }
      }
    }
  }
  return dx;
}

std::vector<ParamView> Conv1D::params() {
  std::vector<ParamView> p{{w_, gw_}};
  if (!b_.empty()) p.push_back({b_, gb_});
  return p;
}

std::vector<std::size_t> Conv1D::output_shape(const std::vector<std::size_t>& in) const {
  check(in.size() == 2 && in[0] == in_ch_, "Conv1D: input shape mismatch");
  return {out_ch_, in[1] - k_ + 1};
}

std::size_t Conv1D::stored_weights() const { return w_.size() + b_.size(); }

}  // namespace ehdnn::nn
