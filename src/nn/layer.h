// Layer interface for the float training/reference stack.
//
// forward() caches whatever backward() needs (classic define-by-run
// autograd-free design); backward() receives dL/dy, accumulates parameter
// gradients internally, and returns dL/dx. Optimizers reach parameters and
// their gradients through params().
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace ehdnn::nn {

// A parameter blob paired with its gradient accumulator.
struct ParamView {
  std::span<float> value;
  std::span<float> grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& dy) = 0;

  // Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamView> params() { return {}; }

  virtual std::string name() const = 0;

  // Output shape for a given input shape (used by the dataflow planner and
  // the resource estimator without running data through the layer).
  virtual std::vector<std::size_t> output_shape(const std::vector<std::size_t>& in) const = 0;

  // Number of stored weights (after compression, i.e. what would live in
  // FRAM on the device).
  virtual std::size_t stored_weights() const { return 0; }

  void zero_grad() {
    for (auto& p : params()) {
      std::fill(p.grad.begin(), p.grad.end(), 0.0f);
    }
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace ehdnn::nn
