#include "nn/bcm_dense.h"

#include <cmath>

#include "dsp/fft.h"
#include "util/math.h"

namespace ehdnn::nn {

BcmDense::BcmDense(std::size_t in, std::size_t out, std::size_t block, bool bias)
    : in_(in), out_(out), k_(block) {
  check(is_pow2(k_), "BcmDense: block size must be a power of two (FFT)");
  check(out_ % k_ == 0, "BcmDense: output features must be a multiple of the block size");
  p_ = out_ / k_;
  in_pad_ = div_ceil(in_, k_) * k_;
  q_ = in_pad_ / k_;
  cols_.assign(p_ * q_ * k_, 0.0f);
  gcols_.assign(cols_.size(), 0.0f);
  if (bias) {
    b_.assign(out_, 0.0f);
    gb_.assign(out_, 0.0f);
  }
}

void BcmDense::init(Rng& rng) {
  // Each first column materializes a k x k circulant block, so the fan-in
  // per output is q_*k_ dense-equivalent weights; match He-uniform of the
  // dense layer it replaces.
  const float bound = std::sqrt(6.0f / static_cast<float>(in_pad_));
  for (auto& v : cols_) v = static_cast<float>(rng.uniform(-bound, bound));
  for (auto& v : b_) v = 0.0f;
}

Tensor BcmDense::forward(const Tensor& x) {
  check(x.size() == in_, "BcmDense: input size mismatch");
  last_x_ = x;

  // Spectra of the (zero-padded) input blocks: one FFT per block column.
  xf_.assign(q_ * k_, {0.0, 0.0});
  for (std::size_t j = 0; j < q_; ++j) {
    std::span<std::complex<double>> blk(&xf_[j * k_], k_);
    for (std::size_t t = 0; t < k_; ++t) {
      const std::size_t src = j * k_ + t;
      blk[t] = src < in_ ? static_cast<double>(x[src]) : 0.0;
    }
    dsp::fft(blk);
  }

  // Spectra of all first columns.
  cf_.assign(p_ * q_ * k_, {0.0, 0.0});
  for (std::size_t b = 0; b < p_ * q_; ++b) {
    std::span<std::complex<double>> blk(&cf_[b * k_], k_);
    const float* col = &cols_[b * k_];
    for (std::size_t t = 0; t < k_; ++t) blk[t] = static_cast<double>(col[t]);
    dsp::fft(blk);
  }

  Tensor y({out_});
  std::vector<std::complex<double>> acc(k_);
  for (std::size_t i = 0; i < p_; ++i) {
    std::fill(acc.begin(), acc.end(), std::complex<double>(0.0, 0.0));
    for (std::size_t j = 0; j < q_; ++j) {
      const auto* cfb = &cf_[(i * q_ + j) * k_];
      const auto* xfb = &xf_[j * k_];
      for (std::size_t t = 0; t < k_; ++t) acc[t] += cfb[t] * xfb[t];
    }
    dsp::ifft(acc);
    for (std::size_t t = 0; t < k_; ++t) {
      const std::size_t o = i * k_ + t;
      y[o] = static_cast<float>(acc[t].real()) + (b_.empty() ? 0.0f : b_[o]);
    }
  }
  return y;
}

Tensor BcmDense::backward(const Tensor& dy) {
  check(dy.size() == out_, "BcmDense: grad size mismatch");

  // Spectra of the output-gradient blocks.
  std::vector<std::complex<double>> dyf(p_ * k_, {0.0, 0.0});
  for (std::size_t i = 0; i < p_; ++i) {
    std::span<std::complex<double>> blk(&dyf[i * k_], k_);
    for (std::size_t t = 0; t < k_; ++t) blk[t] = static_cast<double>(dy[i * k_ + t]);
    dsp::fft(blk);
  }

  // dL/dc_ij = Re IDFT( DFT(dy_i) o conj(DFT(x_j)) )   (circular correlation)
  std::vector<std::complex<double>> tmp(k_);
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = 0; j < q_; ++j) {
      const auto* dyb = &dyf[i * k_];
      const auto* xfb = &xf_[j * k_];
      for (std::size_t t = 0; t < k_; ++t) tmp[t] = dyb[t] * std::conj(xfb[t]);
      dsp::ifft(tmp);
      float* g = &gcols_[(i * q_ + j) * k_];
      for (std::size_t t = 0; t < k_; ++t) g[t] += static_cast<float>(tmp[t].real());
    }
  }

  // dL/dx_j = Re IDFT( sum_i conj(DFT(c_ij)) o DFT(dy_i) )   (transpose block)
  Tensor dx({in_});
  std::vector<std::complex<double>> acc(k_);
  for (std::size_t j = 0; j < q_; ++j) {
    std::fill(acc.begin(), acc.end(), std::complex<double>(0.0, 0.0));
    for (std::size_t i = 0; i < p_; ++i) {
      const auto* cfb = &cf_[(i * q_ + j) * k_];
      const auto* dyb = &dyf[i * k_];
      for (std::size_t t = 0; t < k_; ++t) acc[t] += std::conj(cfb[t]) * dyb[t];
    }
    dsp::ifft(acc);
    for (std::size_t t = 0; t < k_; ++t) {
      const std::size_t dst = j * k_ + t;
      if (dst < in_) dx[dst] = static_cast<float>(acc[t].real());
    }
  }

  if (!gb_.empty()) {
    for (std::size_t o = 0; o < out_; ++o) gb_[o] += dy[o];
  }
  return dx;
}

std::vector<ParamView> BcmDense::params() {
  std::vector<ParamView> p{{cols_, gcols_}};
  if (!b_.empty()) p.push_back({b_, gb_});
  return p;
}

std::vector<std::size_t> BcmDense::output_shape(const std::vector<std::size_t>& in) const {
  check(Tensor::count(in) == in_, "BcmDense: input shape mismatch");
  return {out_};
}

std::vector<float> BcmDense::to_dense() const {
  std::vector<float> w(out_ * in_, 0.0f);
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = 0; j < q_; ++j) {
      const float* col = &cols_[(i * q_ + j) * k_];
      for (std::size_t r = 0; r < k_; ++r) {
        for (std::size_t c = 0; c < k_; ++c) {
          const std::size_t row = i * k_ + r;
          const std::size_t colx = j * k_ + c;
          if (colx < in_) w[row * in_ + colx] = col[(r + k_ - c) % k_];
        }
      }
    }
  }
  return w;
}

}  // namespace ehdnn::nn
