// Stateless / lightweight layers: ReLU, MaxPool2D, Flatten.
// On the device these run on the CPU without SRAM staging (paper Fig. 3).
#pragma once

#include "nn/layer.h"

namespace ehdnn::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override {
    last_mask_.assign(x.size(), false);
    Tensor y = x;
    for (std::size_t i = 0; i < y.size(); ++i) {
      if (y[i] > 0.0f) {
        last_mask_[i] = true;
      } else {
        y[i] = 0.0f;
      }
    }
    return y;
  }

  Tensor backward(const Tensor& dy) override {
    Tensor dx = dy;
    for (std::size_t i = 0; i < dx.size(); ++i) {
      if (!last_mask_[i]) dx[i] = 0.0f;
    }
    return dx;
  }

  std::string name() const override { return "ReLU"; }
  std::vector<std::size_t> output_shape(const std::vector<std::size_t>& in) const override {
    return in;
  }

 private:
  std::vector<bool> last_mask_;
};

// 2x2 max pooling with stride 2 over (C,H,W); H and W must be even.
class MaxPool2D : public Layer {
 public:
  Tensor forward(const Tensor& x) override {
    check(x.rank() == 3, "MaxPool2D: expected (C,H,W)");
    check(x.dim(1) % 2 == 0 && x.dim(2) % 2 == 0, "MaxPool2D: odd spatial dims");
    const std::size_t c = x.dim(0), oh = x.dim(1) / 2, ow = x.dim(2) / 2;
    in_shape_ = x.shape();
    argmax_.assign(c * oh * ow, 0);
    Tensor y({c, oh, ow});
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t i = 0; i < oh; ++i) {
        for (std::size_t j = 0; j < ow; ++j) {
          float best = -1e30f;
          std::size_t best_idx = 0;
          for (std::size_t di = 0; di < 2; ++di) {
            for (std::size_t dj = 0; dj < 2; ++dj) {
              const std::size_t idx = (ch * x.dim(1) + 2 * i + di) * x.dim(2) + 2 * j + dj;
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          y.at(ch, i, j) = best;
          argmax_[(ch * oh + i) * ow + j] = best_idx;
        }
      }
    }
    return y;
  }

  Tensor backward(const Tensor& dy) override {
    Tensor dx(in_shape_);
    for (std::size_t o = 0; o < dy.size(); ++o) dx[argmax_[o]] += dy[o];
    return dx;
  }

  std::string name() const override { return "MaxPool2D"; }
  std::vector<std::size_t> output_shape(const std::vector<std::size_t>& in) const override {
    check(in.size() == 3, "MaxPool2D: input shape mismatch");
    return {in[0], in[1] / 2, in[2] / 2};
  }

 private:
  std::vector<std::size_t> in_shape_;
  std::vector<std::size_t> argmax_;
};

class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x) override {
    in_shape_ = x.shape();
    return x.reshaped({x.size()});
  }

  Tensor backward(const Tensor& dy) override { return dy.reshaped(in_shape_); }

  std::string name() const override { return "Flatten"; }
  std::vector<std::size_t> output_shape(const std::vector<std::size_t>& in) const override {
    return {Tensor::count(in)};
  }

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace ehdnn::nn
