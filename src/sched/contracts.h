// Formal scheduler contracts, checked by exhaustive small-state
// enumeration: tiny discretized worlds — income shape x capacitor size x
// boot threshold (burst energy) x job period x deadline slack x scheduler
// spec — swept as a full cross product TO CLOSURE, each world driving the
// REAL AdaptivePolicy / CompletionModel / JobQueue machinery on a scratch
// device (nothing is re-implemented; the harness only observes through
// the enumeration hooks: JobRecord::skip_stage and the TierDecision log).
//
// The three contracts (full statements + proofs of why the code
// guarantees them live in CONTRACTS.md):
//
//   CONTRACT-1 (soundness)  admit=budget never skips a job that the
//       admit-all twin of the same world completed in deadline — except
//       for stage-2 FORECAST skips, the one documented exception class,
//       which the probe valve bounds. Checked by running every world
//       twice (admit=budget vs the same spec with admit=all) and
//       comparing per-job verdicts; any stage-1 (CERTAIN) skip of a job
//       the twin completed in deadline is a violation.
//
//   CONTRACT-2 (liveness)   (a) a confirmed forecast lock is re-validated
//       or dropped within K periods of the true period changing — checked
//       by a forecaster-level enumeration (period p1 -> lock -> period p2
//       -> must drop or re-lock); (b) a skipping device eventually
//       re-probes: no stage-2 skip ever occurs at position >= probe_skips
//       inside a consecutive-skip streak (the valve admits that release).
//
//   CONTRACT-3 (stability)  tier selection never flaps without an income
//       or job-outcome change. Income mode: the fresh decision is a
//       monotone function of the forecast (equal forecast -> equal tier;
//       richer forecast -> never a leaner tier). Deadline mode (checked
//       while no period lock is held, i.e. the forecast curve is flat):
//       the fresh decision is a pure function of (remaining budget,
//       forecast value, overhead estimate) — bit-identical evidence must
//       pick the same tier, so any A->B->A flap implies an input change.
//       Both modes: once a futile boot demotes a job down the resilience
//       ladder, no later decision in the SAME job re-selects a tier below
//       the demote floor (no un-demote flap).
//
// Violating worlds serialize to one deterministic line (serialize_world /
// parse_world round-trip bit-exactly) that replays through
// `contract_checker --world` and as fuzz_intermittent_test cases. The
// whole checker is deterministic: byte-identical reports for any worker
// count (results are reduced in world order, nothing is timestamped with
// host clocks).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sched/adaptive.h"
#include "sched/agenda.h"

namespace ehdnn::sched::contract {

// Enumeration depth: the bounded grid is the <60 s ctest subset; the full
// grid is the complete cross product (contract_checker --depth full).
enum class Depth { kBounded, kFull };

// One discretized device world. All values are resolved absolutes so a
// serialized world replays without the grid that produced it.
struct World {
  int id = 0;               // index in the producing grid (-1 = ad hoc)
  std::string source;       // power::make_harvest_source spec
  double cap_f = 10e-6;     // capacitor size
  double v_on = 3.3;        // boot threshold (v_off fixed: burst axis)
  double period_s = 0.4;    // job release period
  double deadline_s = 0.3;  // relative deadline
  int jobs = 6;             // agenda length
  std::string sched;        // sched::parse_adaptive_spec spec
};

// One forecaster-level re-lock world (CONTRACT-2a): lock onto a square
// source of period p1, then switch the true period to p2.
struct RelockWorld {
  int id = 0;
  double p1_s = 0.4;
  double p2_s = 0.8;
  double hi_w = 5e-3;
  double lo_w = 0.05e-3;
};

// Deterministic one-line formats:
//   world id=I src=SPEC cap=C von=V period=P dl=D jobs=N sched=SPEC
//   relock id=I p1=A p2=B hi=H lo=L
// Doubles print as %.17g so replay is bit-exact. parse_world /
// parse_relock_world throw ehdnn::Error on malformed lines.
std::string serialize_world(const World& w);
std::string serialize_world(const RelockWorld& w);
World parse_world(const std::string& line);
RelockWorld parse_relock_world(const std::string& line);

// The committed grids (full cross product per depth; see CONTRACTS.md
// for the axis values and the closure evidence).
std::vector<World> world_grid(Depth d);
std::vector<RelockWorld> relock_grid(Depth d);

struct Violation {
  int contract = 0;    // 1..3; 0 = harness budget exceeded (never expected)
  std::string world;   // serialized world (replayable)
  std::string detail;  // one line: job/decision indices + the numbers
};

// Aggregate closure evidence (every counter deterministic).
struct Stats {
  long worlds = 0;          // device worlds checked (each = twin runs)
  long jobs = 0;            // jobs across budget-twin runs
  long run_jobs = 0;        // admitted (non-skipped) jobs, budget twin
  long skips_stage1 = 0;    // CERTAIN skips, budget twin
  long skips_stage2 = 0;    // FORECAST skips, budget twin
  long met_budget = 0;      // in-deadline completions, budget twin
  long met_all = 0;         // in-deadline completions, admit-all twin
  long excused_probe = 0;   // CONTRACT-1 stage-2 exception instances
  long skip_streaks = 0;    // consecutive-skip streaks scanned (C2b)
  long decisions = 0;       // tier decisions logged, budget twin
  long demotes = 0;         // demote decisions among them (ladder check)
  long income_pairs = 0;    // CONTRACT-3 income-mode comparisons
  long deadline_seqs = 0;   // CONTRACT-3 deadline-mode equal-evidence pairs
  long relock_worlds = 0;   // CONTRACT-2a worlds
  long relock_drops = 0;    //   resolved by dropping the lock
  long relock_relocks = 0;  //   resolved by re-locking near p2
  long relock_max_periods = 0;  // worst periods-to-resolution observed
};

struct Report {
  std::vector<Violation> violations;
  Stats stats;
  bool pass() const { return violations.empty(); }
};

// Per-job outcome of one world's twin runs, exposed for the enumeration
// test's spot assertions and for minting fuzzer replay cases.
struct JobOutcome {
  int job = 0;
  bool budget_skipped = false;
  int budget_stage = 0;  // JobRecord::skip_stage of the budget twin
  bool budget_met = false;
  bool all_met = false;
};
struct WorldResult {
  std::vector<JobOutcome> jobs;
  std::vector<TierDecision> budget_decisions;
  long budget_steps = 0;
  long all_steps = 0;
};

// Runs one world's twin pair and returns the per-job evidence (also used
// internally by check_worlds). Deterministic.
WorldResult run_world(const World& w);

// Checks CONTRACT-1/2b/3 over device worlds and CONTRACT-2a over re-lock
// worlds, with `jobs` worker threads (>=1). Results are reduced in world
// order — the report is byte-identical for any `jobs`.
Report check(const std::vector<World>& worlds, const std::vector<RelockWorld>& relocks,
             int jobs);

// Convenience: both grids at `depth`.
Report check_depth(Depth depth, int jobs);

// The shared tiny-deployment calibration the harness ranks tiers with —
// the evidence behind the grid axis values (contract_checker
// --calibration prints it; CONTRACTS.md records the numbers).
const CompletionModel& fixture_completion_model();

// Deterministic text report (no host clocks, stable ordering): header,
// per-contract closure lines, one line per violation, PASS/FAIL tail.
void write_report(std::ostream& os, const Report& r, const std::string& grid_name);

}  // namespace ehdnn::sched::contract
