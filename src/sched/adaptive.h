// Per-boot policy selection: the paper's offline FLEX-vs-fixed choice
// made *online*, by a scheduler that re-picks the execution strategy (and
// the model variant it runs) at every power cycle from the harvest
// forecast and the progress already banked.
//
// AdaptivePolicy is itself a flex::RuntimePolicy, so it rides the shared
// IntermittentExecutor unchanged: the executor sees one policy; inside,
// a ladder of inner tiers — richest to leanest —
//
//     base  (dense twin,  ACE kernels, no checkpointing)
//     ace   (compressed,  ACE kernels, no checkpointing)
//     flex  (compressed,  on-demand checkpointing)
//     sonic (dense twin,  fine-grained loop continuation)
//     tile  (dense twin,  sub-layer reduction-tile cursors)
//
// is selected per boot. Fresh boots pick from the forecast (and from the
// static burst-vs-checkpoint budget: a capacitor too small to fund a FLEX
// checkpoint is a SONIC device, and one too small to fund even SONIC's
// largest minimal commit is a tile device — no forecast needed) — either by income
// thresholds (sel=income, the PR-4 ladder) or by predicted completion
// time against the job's deadline (sel=deadline: the cheapest tier whose
// CompletionModel estimate beats the time remaining). After a failure the
// rules are demote-biased: checkpoint formats are tier-private, so
// switching restarts the inference — losing nothing on the restart-from-
// scratch tiers, and only ever abandoning a persistent tier when it has
// stopped making forward progress. A tier switch is therefore always a
// *boot* event, which is exactly where the crash-consistency fuzzer aims
// its brown-outs.
//
// Correctness contract: whichever tier completes, the output is bit-exact
// against that tier's model variant under continuous power (each inner
// policy already guarantees this; the scheduler only ever switches at
// boot boundaries with a fresh restart, so it cannot mix two tiers'
// progress). tests/fuzz_intermittent_test.cpp enforces it.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/flex/executor.h"
#include "sched/forecast.h"

namespace ehdnn::sched {

// How a fresh boot picks its tier.
enum class TierSelect {
  kIncome,    // PR-4 threshold ladder: forecast watts vs rich/full
  kDeadline,  // cheapest tier whose predicted completion beats the deadline
};

// Whether the job queue may refuse a release the forecast says cannot
// finish by its deadline (sched/agenda.h consults this).
enum class Admission {
  kAll,     // run every release (PR-4 behavior)
  kBudget,  // skip releases whose best-tier predicted completion misses
            // the deadline by more than admit_slack_s
};

struct AdaptiveSpec {
  // Forecaster spec (sched::make_forecaster grammar).
  std::string forecaster = "ema:prior=1.2e-3,alpha=0.5";
  // Tier-selection mode (sel=income|deadline).
  TierSelect sel = TierSelect::kIncome;
  // Job-admission mode (admit=all|budget) and the slack (seconds past the
  // deadline) a predicted-late release is still allowed to run with.
  Admission admit = Admission::kAll;
  double admit_slack_s = 0.0;
  // Probe valve: after this many consecutive skipped releases the next
  // one is admitted regardless of the prediction. Skipped releases record
  // no income samples, so without probing a stale lean forecast could
  // refuse releases forever; the probe bounds that failure mode and
  // feeds the forecaster fresh evidence.
  int probe_skips = 3;
  // Forecast income at/above which a fresh boot promotes to the ace tier
  // (compressed model, no checkpoint overhead).
  double rich_w = 3e-3;
  // Forecast income at/above which a fresh boot runs the full (dense)
  // model on ACE kernels — the paper's BASE. Default: disabled.
  double full_w = std::numeric_limits<double>::infinity();
  // A burst below ckpt_margin x worst-case FLEX checkpoint energy cannot
  // afford on-demand checkpointing: the device is statically a SONIC
  // device (when the dense twin is provisioned). Conservative default:
  // FLEX's degraded mode tolerates bursts only a little above one
  // checkpoint, and SONIC on the dense twin is much slower — demotion
  // must wait until FLEX genuinely cannot land its state.
  double ckpt_margin = 2.0;
  // Consecutive power cycles without forward progress before the
  // scheduler demotes one rung down the ladder.
  int demote_boots = 2;
};

// Parses `adaptive[:key=value,...]` with keys fc (ema|window|const|
// periodic), prior, alpha, n, w, bins, conf (forwarded to the forecaster
// spec), sel (income|deadline), admit (all|budget), slack, probe, rich,
// full, ckpt_margin, demote. Throws ehdnn::Error on malformed input.
AdaptiveSpec parse_adaptive_spec(const std::string& spec);

// What the deployment ships for the scheduler to choose between. Both
// compiled models must live on the SAME device (ace::compile co_resident)
// and share the input size. `dense` may be null — the ladder then
// collapses to {ace, flex} over the compressed image. burst_energy_j is
// the capacitor's usable per-burst energy (power::CapacitorSupply::
// burst_energy()); infinity means "unknown/unbounded" (bench power).
struct DeploymentImage {
  const ace::CompiledModel* compressed = nullptr;
  const ace::CompiledModel* dense = nullptr;
  double burst_energy_j = std::numeric_limits<double>::infinity();
};

// Per-tier completion-time prediction: how long (wall-clock supply time)
// each tier would take to push one inference through under a given income
// forecast. Calibration replays the deployment image tier by tier on a
// SCRATCH device replica (same geometry and cost model, bench power) so
// the per-tier continuous-power energy and on-time are the executor's own
// exact modeled costs — nothing is drawn from the real device or its
// supply. Prediction then folds in the capacitor's burst energy, the
// forecast income, and a per-cycle overhead estimate (checkpoint traffic,
// refined online from observed boots by the adaptive policy).
class CompletionModel {
 public:
  struct Tier {
    std::string key;        // "base" | "ace" | "flex" | "sonic" | "tile"
    bool dense = false;     // executes the dense twin
    bool persistent = false;  // progress survives reboots
    double energy_j = 0.0;  // continuous-power inference energy
    double on_s = 0.0;      // continuous-power inference time
  };

  // Calibrates every tier the image ships: {base, ace, flex, sonic,
  // tile} when `dense` is non-null, {ace, flex} otherwise. `dcfg` is the real
  // device's configuration (the scratch replicas are built from it).
  static CompletionModel calibrate(const ace::CompiledModel& compressed,
                                   const ace::CompiledModel* dense,
                                   const dev::DeviceConfig& dcfg);

  const std::vector<Tier>& tiers() const { return tiers_; }
  const Tier* tier(const std::string& key) const;

  // Predicted wall-clock seconds for `t` to complete one inference given
  // usable per-burst energy, forecast income, and a per-power-cycle
  // energy overhead (checkpoint write + restore traffic). Infinity when
  // the tier cannot finish: a restart-from-scratch tier that cannot fit
  // the whole inference into one power cycle, or a persistent tier whose
  // overhead eats the entire burst, or zero income with an insufficient
  // burst.
  double predict_s(const Tier& t, double burst_j, double income_w, double overhead_j) const;

  // Like predict_s, but integrates the forecaster's income CURVE from
  // supply time `now_s` forward, power cycle by power cycle
  // (forecast_at_w) instead of assuming a flat rate — with a locked
  // periodic forecast each recharge gap is priced at its own wall-clock
  // phase, so a run straddling a lean phase (or starting right after
  // one ends) is predicted honestly. Falls back to the flat next-cycle
  // forecast when no period is confirmed.
  double predict_curve_s(const Tier& t, double burst_j, const HarvestForecaster& fc,
                         double now_s, double overhead_j) const;

  // Smallest calibrated per-inference energy across tiers — a lower bound
  // on what running a release to completion would burn (what admission
  // control reports as reclaimed when it skips one).
  double min_energy_j() const;

 private:
  std::vector<Tier> tiers_;
};

// One tier decision, as witnessed by the contract checker's enumeration
// hook (AdaptivePolicy::set_decision_log). Every fresh-boot selection, every
// non-persistent-tier re-decision, and every demotion appends one entry,
// together with the scheduler inputs the decision was a function of — which
// is what lets CONTRACT-3 (stability: no tier flap without an income or
// job-outcome change) be checked as "equal inputs imply equal decision"
// over real runs rather than re-deriving the decision rule.
struct TierDecision {
  double t_s = 0.0;          // supply time at the decision
  std::string tier;          // chosen tier key ("base".."tile")
  bool demote = false;       // outcome-driven demotion, not a fresh pick
  long fc_samples = 0;       // forecaster samples folded in so far
  double fc_period_s = 0.0;  // confirmed period (0 = no lock)
  double forecast_w = 0.0;   // forecast_at_w(t_s) — the income input
  double ovh_j = -1.0;       // observed FLEX overhead EMA (-1 = prior)
  double deadline_s = 0.0;   // absolute job deadline (identifies the job)
};

class AdaptivePolicy : public flex::RuntimePolicy {
 public:
  explicit AdaptivePolicy(AdaptiveSpec spec);
  ~AdaptivePolicy() override;

  // Binds the co-resident model variants and the energy budget. Without
  // provisioning the policy still works (tiers {ace, flex} over whatever
  // model the executor was armed with) — that is what the generic
  // runtime table hands out. May be called again (new device image); the
  // forecaster's learned state survives, the ladder is rebuilt.
  void provision(const DeploymentImage& image);

  std::string name() const override { return "ADAPTIVE"; }
  void on_boot(flex::StepContext& ctx, bool fresh) override;
  bool step(flex::StepContext& ctx) override;
  bool retry_after_failure(flex::StepContext& ctx, double attempt_cycles) override;
  const ace::CompiledModel& output_model(const ace::CompiledModel& armed) const override;

  // --- scheduling diagnostics (read by the fleet's job queue) ----------
  // Tier key currently selected: "base", "ace", "flex", "sonic" or
  // "tile" ("" before the first boot).
  std::string current_runtime() const;
  // Whether the current tier executes the dense twin.
  bool on_dense_model() const;
  // Mid-run tier switches since construction (monotone across jobs).
  long tier_switches() const;
  // The forecaster (samples persist across jobs — that is the feature).
  const HarvestForecaster& forecaster() const;
  const AdaptiveSpec& spec() const { return spec_; }

  // --- completion prediction (energy-budgeted admission) ---------------
  // Predicted wall-clock seconds from now until the BEST tier could
  // complete one inference of `armed` under the current forecast.
  // Calibrates the completion model on first use (scratch-device runs —
  // the real device's trace and supply are untouched; `dev` only donates
  // its configuration). Infinity when no tier is predicted to finish.
  double predict_best_completion_s(const dev::Device& dev, const ace::CompiledModel& armed);
  // Best-case floor on the same quantity: the fastest allowed tier's
  // calibrated continuous-power time — what the release would need even
  // if the harvester delivered unbounded income. A release whose time
  // budget is below this is infeasible by the cost model alone, no
  // forecast required.
  double predict_optimistic_s(const dev::Device& dev, const ace::CompiledModel& armed);
  // The calibrated model, nullptr before the first prediction/deadline
  // decision.
  const CompletionModel* completion_model() const;
  // Lower bound on the energy a skipped release would have burned (the
  // cheapest calibrated tier); 0 before calibration.
  double reclaimable_energy_j() const;

  // --- enumeration hook (sched/contracts.h) ----------------------------
  // Non-owning sink for per-boot tier decisions; null (the default)
  // disables logging. The pointee must outlive the runs it witnesses.
  void set_decision_log(std::vector<TierDecision>* log);

 private:
  // Success-path income sensing (called from step() on completion).
  void observe_success_income(flex::StepContext& ctx);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  AdaptiveSpec spec_;
};

std::unique_ptr<flex::RuntimePolicy> make_adaptive_policy(AdaptiveSpec spec = {});

// Provisions a policy held behind the generic interface if (and only if)
// it is an AdaptivePolicy; returns whether it was one. The sim layer uses
// this to wire the co-resident images the runtime table cannot know about.
bool provision_adaptive(flex::RuntimePolicy& policy, const DeploymentImage& image);

// One-call deployment wiring for the sim layer: provisions `policy` (a
// no-op for fixed policies) with the co-resident image and returns the
// worst-case FLEX checkpoint energy across the shipped variants — the
// budget the caller's voltage-monitor threshold must cover. `dense` may
// be null (fixed runtimes, or an unprovisioned single-variant image).
double provision_deployment(flex::RuntimePolicy& policy, const dev::CostModel& cost,
                            const ace::CompiledModel& primary,
                            const ace::CompiledModel* dense, double burst_energy_j);

// Downcast accessor for diagnostics (nullptr for fixed policies). The
// mutable overload is what the job queue's admission control uses
// (prediction may calibrate lazily).
const AdaptivePolicy* as_adaptive(const flex::RuntimePolicy* policy);
AdaptivePolicy* as_adaptive(flex::RuntimePolicy* policy);

}  // namespace ehdnn::sched
