// Per-boot policy selection: the paper's offline FLEX-vs-fixed choice
// made *online*, by a scheduler that re-picks the execution strategy (and
// the model variant it runs) at every power cycle from the harvest
// forecast and the progress already banked.
//
// AdaptivePolicy is itself a flex::RuntimePolicy, so it rides the shared
// IntermittentExecutor unchanged: the executor sees one policy; inside,
// a ladder of inner tiers — richest to leanest —
//
//     base  (dense twin,  ACE kernels, no checkpointing)
//     ace   (compressed,  ACE kernels, no checkpointing)
//     flex  (compressed,  on-demand checkpointing)
//     sonic (dense twin,  fine-grained loop continuation)
//
// is selected per boot. Fresh boots pick from the forecast (and from the
// static burst-vs-checkpoint budget: a capacitor too small to fund a FLEX
// checkpoint is a SONIC device, no forecast needed). After a failure the
// rules are demote-biased: checkpoint formats are tier-private, so
// switching restarts the inference — losing nothing on the restart-from-
// scratch tiers, and only ever abandoning a persistent tier when it has
// stopped making forward progress. A tier switch is therefore always a
// *boot* event, which is exactly where the crash-consistency fuzzer aims
// its brown-outs.
//
// Correctness contract: whichever tier completes, the output is bit-exact
// against that tier's model variant under continuous power (each inner
// policy already guarantees this; the scheduler only ever switches at
// boot boundaries with a fresh restart, so it cannot mix two tiers'
// progress). tests/fuzz_intermittent_test.cpp enforces it.
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "core/flex/executor.h"
#include "sched/forecast.h"

namespace ehdnn::sched {

struct AdaptiveSpec {
  // Forecaster spec (sched::make_forecaster grammar).
  std::string forecaster = "ema:prior=1.2e-3,alpha=0.5";
  // Forecast income at/above which a fresh boot promotes to the ace tier
  // (compressed model, no checkpoint overhead).
  double rich_w = 3e-3;
  // Forecast income at/above which a fresh boot runs the full (dense)
  // model on ACE kernels — the paper's BASE. Default: disabled.
  double full_w = std::numeric_limits<double>::infinity();
  // A burst below ckpt_margin x worst-case FLEX checkpoint energy cannot
  // afford on-demand checkpointing: the device is statically a SONIC
  // device (when the dense twin is provisioned). Conservative default:
  // FLEX's degraded mode tolerates bursts only a little above one
  // checkpoint, and SONIC on the dense twin is much slower — demotion
  // must wait until FLEX genuinely cannot land its state.
  double ckpt_margin = 2.0;
  // Consecutive power cycles without forward progress before the
  // scheduler demotes one rung down the ladder.
  int demote_boots = 2;
};

// Parses `adaptive[:key=value,...]` with keys fc (ema|window|const),
// prior, alpha, n, w (forwarded to the forecaster spec), rich, full,
// ckpt_margin, demote. Throws ehdnn::Error on malformed input.
AdaptiveSpec parse_adaptive_spec(const std::string& spec);

// What the deployment ships for the scheduler to choose between. Both
// compiled models must live on the SAME device (ace::compile co_resident)
// and share the input size. `dense` may be null — the ladder then
// collapses to {ace, flex} over the compressed image. burst_energy_j is
// the capacitor's usable per-burst energy (power::CapacitorSupply::
// burst_energy()); infinity means "unknown/unbounded" (bench power).
struct DeploymentImage {
  const ace::CompiledModel* compressed = nullptr;
  const ace::CompiledModel* dense = nullptr;
  double burst_energy_j = std::numeric_limits<double>::infinity();
};

class AdaptivePolicy : public flex::RuntimePolicy {
 public:
  explicit AdaptivePolicy(AdaptiveSpec spec);
  ~AdaptivePolicy() override;

  // Binds the co-resident model variants and the energy budget. Without
  // provisioning the policy still works (tiers {ace, flex} over whatever
  // model the executor was armed with) — that is what the generic
  // runtime table hands out. May be called again (new device image); the
  // forecaster's learned state survives, the ladder is rebuilt.
  void provision(const DeploymentImage& image);

  std::string name() const override { return "ADAPTIVE"; }
  void on_boot(flex::StepContext& ctx, bool fresh) override;
  bool step(flex::StepContext& ctx) override;
  bool retry_after_failure(flex::StepContext& ctx, double attempt_cycles) override;
  const ace::CompiledModel& output_model(const ace::CompiledModel& armed) const override;

  // --- scheduling diagnostics (read by the fleet's job queue) ----------
  // Tier key currently selected: "base", "ace", "flex" or "sonic" ("" before
  // the first boot).
  std::string current_runtime() const;
  // Whether the current tier executes the dense twin.
  bool on_dense_model() const;
  // Mid-run tier switches since construction (monotone across jobs).
  long tier_switches() const;
  // The forecaster (samples persist across jobs — that is the feature).
  const HarvestForecaster& forecaster() const;
  const AdaptiveSpec& spec() const { return spec_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  AdaptiveSpec spec_;
};

std::unique_ptr<flex::RuntimePolicy> make_adaptive_policy(AdaptiveSpec spec = {});

// Provisions a policy held behind the generic interface if (and only if)
// it is an AdaptivePolicy; returns whether it was one. The sim layer uses
// this to wire the co-resident images the runtime table cannot know about.
bool provision_adaptive(flex::RuntimePolicy& policy, const DeploymentImage& image);

// One-call deployment wiring for the sim layer: provisions `policy` (a
// no-op for fixed policies) with the co-resident image and returns the
// worst-case FLEX checkpoint energy across the shipped variants — the
// budget the caller's voltage-monitor threshold must cover. `dense` may
// be null (fixed runtimes, or an unprovisioned single-variant image).
double provision_deployment(flex::RuntimePolicy& policy, const dev::CostModel& cost,
                            const ace::CompiledModel& primary,
                            const ace::CompiledModel* dense, double burst_energy_j);

// Downcast accessor for diagnostics (nullptr for fixed policies).
const AdaptivePolicy* as_adaptive(const flex::RuntimePolicy* policy);

}  // namespace ehdnn::sched
