#include "sched/adaptive.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "util/check.h"
#include "util/spec.h"

namespace ehdnn::sched {

namespace {

// One rung of the ladder. `persistent` marks tiers whose progress
// survives reboots (their FRAM cursors/checkpoints); switching away from
// one abandons banked work, so the scheduler only does it when the tier
// has stopped progressing.
struct Tier {
  const char* key;
  bool dense_variant;
  bool persistent;
  std::unique_ptr<flex::RuntimePolicy> policy;
};

}  // namespace

struct AdaptivePolicy::Impl {
  DeploymentImage image;
  bool provisioned = false;

  std::vector<Tier> tiers;  // richest (index 0) to leanest
  int base_i = -1, ace_i = -1, flex_i = -1, sonic_i = -1;

  std::unique_ptr<HarvestForecaster> fc;

  // Cached per device image: worst-case FLEX checkpoint energy, the
  // quantity the burst budget is compared against.
  double flex_ckpt_j = 0.0;
  bool ready = false;

  // Per-run scheduling state.
  int cur = -1;
  bool inner_fresh_pending = false;  // a tier's fresh boot tore mid-write
  double last_off_s = 0.0;
  long last_units = 0;
  long last_ckpts = 0;
  int no_progress = 0;
  bool force_demote = false;
  long switches = 0;

  void rebuild() {
    tiers.clear();
    base_i = ace_i = flex_i = sonic_i = -1;
    const bool dense = provisioned && image.dense != nullptr;
    if (dense) {
      base_i = static_cast<int>(tiers.size());
      tiers.push_back({"base", true, false, flex::make_ace_policy()});
    }
    ace_i = static_cast<int>(tiers.size());
    tiers.push_back({"ace", false, false, flex::make_ace_policy()});
    flex_i = static_cast<int>(tiers.size());
    tiers.push_back({"flex", false, true, flex::make_flex_policy()});
    if (dense) {
      sonic_i = static_cast<int>(tiers.size());
      tiers.push_back({"sonic", true, true, flex::make_sonic_policy()});
    }
    cur = -1;
    inner_fresh_pending = false;
    ready = false;
  }

  const ace::CompiledModel& resolve_cm(const flex::StepContext& ctx, const Tier& t) const {
    if (!provisioned) return ctx.cm;
    return *(t.dense_variant ? image.dense : image.compressed);
  }

  void ensure_ready(flex::StepContext& ctx) {
    if (ready) return;
    for (const auto& t : tiers) {
      check(resolve_cm(ctx, t).model.layers.front().in_size() == ctx.input.size(),
            "adaptive: co-resident model variants must share the input size");
    }
    flex_ckpt_j =
        flex::worst_checkpoint_energy(resolve_cm(ctx, tiers[static_cast<std::size_t>(flex_i)]),
                                      ctx.dev.cost());
    ready = true;
  }

  int decide_fresh(const AdaptiveSpec& spec) const {
    // Static energy geometry first: a burst that cannot fund FLEX's
    // worst-case checkpoint (with margin) thrashes every progress-
    // preserving trick except fine-grained loop continuation.
    if (sonic_i >= 0 && image.burst_energy_j < spec.ckpt_margin * flex_ckpt_j) return sonic_i;
    const double w = fc->forecast_w();
    if (base_i >= 0 && w >= spec.full_w) return base_i;
    if (w >= spec.rich_w) return ace_i;
    return flex_i;
  }

  // Activates tiers[cur] with a fresh inner boot. The fresh flag is
  // sticky across a brown-out mid-boot (inner_fresh_pending), mirroring
  // the executor's own fresh_ handling: a torn fresh boot is retried
  // fresh, never resumed, so a previous job's stale cursors can never
  // leak into this one.
  void activate(flex::StepContext& ctx) {
    inner_fresh_pending = true;
    Tier& t = tiers[static_cast<std::size_t>(cur)];
    const ace::CompiledModel& cm = resolve_cm(ctx, t);
    ctx.st.units_total = t.policy->units_total(cm);
    flex::StepContext sub{ctx.dev, cm, ctx.input, ctx.opts, ctx.st};
    t.policy->on_boot(sub, true);
    inner_fresh_pending = false;
  }
};

AdaptivePolicy::AdaptivePolicy(AdaptiveSpec spec)
    : impl_(std::make_unique<Impl>()), spec_(std::move(spec)) {
  check(spec_.rich_w >= 0.0 && spec_.ckpt_margin >= 0.0 && spec_.demote_boots >= 1,
        "adaptive: bad spec");
  impl_->fc = make_forecaster(spec_.forecaster);  // throws on a bad spec
  impl_->rebuild();
}

AdaptivePolicy::~AdaptivePolicy() = default;

void AdaptivePolicy::provision(const DeploymentImage& image) {
  check(image.compressed != nullptr, "adaptive: provision needs the compressed image");
  impl_->image = image;
  impl_->provisioned = true;
  impl_->rebuild();
}

void AdaptivePolicy::on_boot(flex::StepContext& ctx, bool fresh) {
  Impl& s = *impl_;
  s.ensure_ready(ctx);
  if (fresh) {
    s.last_off_s = ctx.st.off_seconds;
    s.last_units = ctx.st.units_executed;
    s.last_ckpts = ctx.st.checkpoints;
    s.no_progress = 0;
    s.force_demote = false;
    s.cur = s.decide_fresh(spec_);
    s.activate(ctx);
    return;
  }

  // A power cycle died. The recharge gap is the scheduler's harvest
  // sensor: refilling the burst energy took `gap` seconds, so the
  // harvester averaged burst/gap watts — one forecaster sample.
  const double gap = ctx.st.off_seconds - s.last_off_s;
  s.last_off_s = ctx.st.off_seconds;
  if (gap > 0.0 && std::isfinite(s.image.burst_energy_j)) {
    s.fc->record(s.image.burst_energy_j / gap);
  }

  // A persistent tier made progress if it banked anything at all this
  // cycle: a unit commit, or a completed checkpoint (FLEX's BCM tiers
  // advance by sub-unit stages that only checkpoints witness; a
  // checkpoint that tore mid-write was never counted).
  const Tier& cur = s.tiers[static_cast<std::size_t>(s.cur)];
  const bool progressed =
      cur.persistent && (ctx.st.units_executed > s.last_units ||
                         ctx.st.checkpoints > s.last_ckpts);
  s.last_units = ctx.st.units_executed;
  s.last_ckpts = ctx.st.checkpoints;
  if (progressed) {
    s.no_progress = 0;
  } else {
    ++s.no_progress;
  }

  int next = s.cur;
  if (s.force_demote || s.no_progress >= spec_.demote_boots) {
    // The tier is stuck (its own livelock detector fired, or it has made
    // no forward progress for demote_boots cycles): one rung leaner.
    next = std::min(s.cur + 1, static_cast<int>(s.tiers.size()) - 1);
    s.force_demote = false;
  } else if (!cur.persistent) {
    // Restart-from-scratch tiers bank nothing, so every boot is free to
    // re-decide from the live forecast (this is where a mis-forecast
    // rich start degrades to FLEX).
    next = s.decide_fresh(spec_);
  }

  if (next != s.cur) {
    ++s.switches;
    s.no_progress = 0;
    s.cur = next;
    s.activate(ctx);  // tier progress formats are incompatible: restart
  } else if (s.inner_fresh_pending) {
    s.activate(ctx);  // the switch boot itself browned out: retry fresh
  } else {
    Tier& t = s.tiers[static_cast<std::size_t>(s.cur)];
    flex::StepContext sub{ctx.dev, s.resolve_cm(ctx, t), ctx.input, ctx.opts, ctx.st};
    t.policy->on_boot(sub, false);
  }
}

bool AdaptivePolicy::step(flex::StepContext& ctx) {
  Impl& s = *impl_;
  Tier& t = s.tiers[static_cast<std::size_t>(s.cur)];
  flex::StepContext sub{ctx.dev, s.resolve_cm(ctx, t), ctx.input, ctx.opts, ctx.st};
  return t.policy->step(sub);
}

bool AdaptivePolicy::retry_after_failure(flex::StepContext& ctx, double attempt_cycles) {
  Impl& s = *impl_;
  Tier& t = s.tiers[static_cast<std::size_t>(s.cur)];
  flex::StepContext sub{ctx.dev, s.resolve_cm(ctx, t), ctx.input, ctx.opts, ctx.st};
  if (t.policy->retry_after_failure(sub, attempt_cycles)) return true;
  // The tier gave up (ACE's livelock detector). With a leaner rung left
  // the run is not dead — demote at the next boot instead of DNF.
  if (s.cur + 1 < static_cast<int>(s.tiers.size())) {
    s.force_demote = true;
    return true;
  }
  return false;
}

const ace::CompiledModel& AdaptivePolicy::output_model(const ace::CompiledModel& armed) const {
  const Impl& s = *impl_;
  if (s.cur < 0 || !s.provisioned) return armed;
  const Tier& t = s.tiers[static_cast<std::size_t>(s.cur)];
  return *(t.dense_variant ? s.image.dense : s.image.compressed);
}

std::string AdaptivePolicy::current_runtime() const {
  const Impl& s = *impl_;
  return s.cur < 0 ? "" : s.tiers[static_cast<std::size_t>(s.cur)].key;
}

bool AdaptivePolicy::on_dense_model() const {
  const Impl& s = *impl_;
  return s.cur >= 0 && s.provisioned &&
         s.tiers[static_cast<std::size_t>(s.cur)].dense_variant;
}

long AdaptivePolicy::tier_switches() const { return impl_->switches; }

const HarvestForecaster& AdaptivePolicy::forecaster() const { return *impl_->fc; }

std::unique_ptr<flex::RuntimePolicy> make_adaptive_policy(AdaptiveSpec spec) {
  return std::make_unique<AdaptivePolicy>(std::move(spec));
}

bool provision_adaptive(flex::RuntimePolicy& policy, const DeploymentImage& image) {
  auto* ap = dynamic_cast<AdaptivePolicy*>(&policy);
  if (ap == nullptr) return false;
  ap->provision(image);
  return true;
}

double provision_deployment(flex::RuntimePolicy& policy, const dev::CostModel& cost,
                            const ace::CompiledModel& primary,
                            const ace::CompiledModel* dense, double burst_energy_j) {
  double worst_ck = flex::worst_checkpoint_energy(primary, cost);
  if (dense != nullptr) {
    worst_ck = std::max(worst_ck, flex::worst_checkpoint_energy(*dense, cost));
  }
  DeploymentImage img;
  img.compressed = &primary;
  img.dense = dense;
  img.burst_energy_j = burst_energy_j;
  provision_adaptive(policy, img);
  return worst_ck;
}

const AdaptivePolicy* as_adaptive(const flex::RuntimePolicy* policy) {
  return dynamic_cast<const AdaptivePolicy*>(policy);
}

AdaptiveSpec parse_adaptive_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  check(spec.substr(0, colon) == "adaptive",
        "adaptive spec \"" + spec + "\": expected adaptive[:key=value,...]");
  SpecArgs a(spec, colon == std::string::npos ? "" : spec.substr(colon + 1));
  AdaptiveSpec s;

  // Forecaster sub-spec assembled from flat keys (fc picks the kind;
  // prior/alpha/n/w forward verbatim so the forecaster factory validates
  // them in one place).
  std::string fspec = a.str("fc", "ema");
  std::string fargs;
  for (const char* key : {"prior", "alpha", "n", "w"}) {
    const std::string v = a.str(key, "");
    if (v.empty()) continue;
    fargs += (fargs.empty() ? "" : ",") + std::string(key) + "=" + v;
  }
  if (!fargs.empty()) fspec += ":" + fargs;
  s.forecaster = fspec;

  s.rich_w = a.num("rich", s.rich_w);
  s.full_w = a.num("full", s.full_w);
  s.ckpt_margin = a.num("ckpt_margin", s.ckpt_margin);
  // Range-checked before the cast: a double outside int's range is
  // undefined behavior at the conversion, not a garbage value.
  const double demote = a.num("demote", s.demote_boots);
  check(demote >= 1.0 && demote <= 1e6 && demote == std::floor(demote),
        "adaptive spec \"" + spec + "\": demote must be an integer in [1, 1e6]");
  s.demote_boots = static_cast<int>(demote);
  a.finish();
  make_forecaster(s.forecaster);  // validate eagerly (throws on bad kinds/values)
  return s;
}

}  // namespace ehdnn::sched
