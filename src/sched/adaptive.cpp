#include "sched/adaptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "power/continuous.h"
#include "util/check.h"
#include "util/spec.h"

namespace ehdnn::sched {

namespace {

// One rung of the ladder. `persistent` marks tiers whose progress
// survives reboots (their FRAM cursors/checkpoints); switching away from
// one abandons banked work, so the scheduler only does it when the tier
// has stopped progressing.
struct Tier {
  const char* key;
  bool dense_variant;
  bool persistent;
  std::unique_ptr<flex::RuntimePolicy> policy;
};

std::unique_ptr<flex::RuntimePolicy> make_tier_policy(const std::string& key) {
  if (key == "flex") return flex::make_flex_policy();
  if (key == "sonic") return flex::make_sonic_policy();
  if (key == "tile") return flex::make_tile_policy();
  return flex::make_ace_policy();  // base and ace
}

}  // namespace

// ------------------------------------------------------- CompletionModel

CompletionModel CompletionModel::calibrate(const ace::CompiledModel& compressed,
                                           const ace::CompiledModel* dense,
                                           const dev::DeviceConfig& dcfg) {
  // Scratch replica: same geometry and cost model, bench power, fresh
  // FRAM. The compiled image is rebuilt from the variants' QuantModel
  // copies, so the calibration runs are the executor's own exact modeled
  // costs without touching the real device's trace, FRAM, or supply.
  dev::Device scratch(dcfg);
  power::ContinuousPower bench;
  scratch.attach_supply(&bench);
  const ace::CompiledModel cm_c = ace::compile(compressed.model, scratch);
  std::optional<ace::CompiledModel> cm_d;
  if (dense != nullptr) {
    cm_d.emplace(ace::compile(dense->model, scratch, /*co_resident=*/true));
  }

  struct Spec {
    const char* key;
    bool dense, persistent;
  };
  std::vector<Spec> specs;
  if (dense != nullptr) specs.push_back({"base", true, false});
  specs.push_back({"ace", false, false});
  specs.push_back({"flex", false, true});
  if (dense != nullptr) specs.push_back({"sonic", true, true});
  if (dense != nullptr) specs.push_back({"tile", true, true});

  CompletionModel m;
  const std::vector<fx::q15_t> input(cm_c.model.layers.front().in_size(), 0);
  for (const auto& s : specs) {
    const ace::CompiledModel& cm = s.dense ? *cm_d : cm_c;
    auto policy = make_tier_policy(s.key);
    flex::IntermittentExecutor ex(*policy);
    const flex::RunStats st = ex.run(scratch, cm, input);
    check(st.completed(), std::string("completion model: calibration run for tier ") + s.key +
                              " did not complete under bench power");
    m.tiers_.push_back({s.key, s.dense, s.persistent, st.energy_j, st.on_seconds});
  }
  return m;
}

const CompletionModel::Tier* CompletionModel::tier(const std::string& key) const {
  for (const auto& t : tiers_) {
    if (t.key == key) return &t;
  }
  return nullptr;
}

double CompletionModel::predict_s(const Tier& t, double burst_j, double income_w,
                                  double overhead_j) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double p_draw = t.energy_j / std::max(t.on_s, 1e-12);
  // Income at/above the draw rate: the capacitor never drains — the run
  // is effectively continuous.
  if (income_w >= p_draw) return t.on_s;
  // One burst (plus the income that accrues while drawing it down) covers
  // the whole inference: completes within the first power cycle.
  if (burst_j >= (p_draw - income_w) * t.on_s) return t.on_s;
  // Multi-cycle territory. Restart-from-scratch tiers bank nothing
  // between cycles, so they never get past this point.
  if (!t.persistent) return kInf;
  if (income_w <= 0.0) return kInf;
  // Per cycle: the burst drains in t_on = burst / (p_draw - income), of
  // which overhead_j buys no forward progress; refilling takes
  // t_off = burst / income.
  const double t_on = burst_j / (p_draw - income_w);
  const double useful_j = p_draw * t_on - overhead_j;
  if (useful_j <= 0.0) return kInf;
  const double cycles = std::ceil(t.energy_j / useful_j);
  return cycles * (t_on + burst_j / income_w);
}

double CompletionModel::predict_curve_s(const Tier& t, double burst_j,
                                        const HarvestForecaster& fc, double now_s,
                                        double overhead_j) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double period = fc.period_s();
  if (period <= 0.0) return predict_s(t, burst_j, fc.forecast_w(), overhead_j);
  const double p_draw = t.energy_j / std::max(t.on_s, 1e-12);
  // Recharge gaps are integrated through the income curve in sub-period
  // steps: a gap that starts at a lean phase must not be priced at that
  // phase for its whole duration when a rich phase (a dawn) arrives
  // mid-gap — and vice versa at dusk.
  const double step = period / 32.0;
  double remaining = t.energy_j;
  double time = 0.0;
  for (long k = 0; k < 100000; ++k) {
    const double w = std::max(0.0, fc.forecast_at_w(now_s + time));
    const double t_need = remaining / p_draw;
    // This cycle's income covers the rest (or the burst does): done.
    if (w >= p_draw || burst_j >= (p_draw - w) * t_need) return time + t_need;
    if (!t.persistent) return kInf;
    const double t_on = burst_j / (p_draw - w);
    const double useful = p_draw * t_on - overhead_j;
    if (useful <= 0.0) return kInf;
    remaining -= useful;
    time += t_on;
    // Refill one burst following the curve from the brown-out instant.
    double acc = 0.0;
    long gap_steps = 0;
    while (acc < burst_j) {
      if (++gap_steps > 100000) return kInf;  // forecast says: never refills
      const double wg = std::max(0.0, fc.forecast_at_w(now_s + time));
      const double dt = wg > 0.0 ? std::min(step, (burst_j - acc) / wg) : step;
      acc += wg * dt;
      time += dt;
    }
  }
  return kInf;
}

double CompletionModel::min_energy_j() const {
  double e = std::numeric_limits<double>::infinity();
  for (const auto& t : tiers_) e = std::min(e, t.energy_j);
  return std::isfinite(e) ? e : 0.0;
}

struct AdaptivePolicy::Impl {
  DeploymentImage image;
  bool provisioned = false;

  std::vector<Tier> tiers;  // richest (index 0) to leanest
  int base_i = -1, ace_i = -1, flex_i = -1, sonic_i = -1, tile_i = -1;

  std::unique_ptr<HarvestForecaster> fc;

  // Cached per device image: worst-case FLEX checkpoint energy, the
  // quantity the burst budget is compared against (-1 = not yet
  // computed; filled lazily by flex_ckpt(), the ONE source both the
  // boot-time deciders and the admission predictors read).
  double flex_ckpt_j = -1.0;
  // SONIC's worst minimal-commit energy on the dense image (-1 = not yet
  // computed) — the threshold below which the ladder pins to tile.
  double sonic_unit_j = -1.0;
  bool ready = false;

  // Deadline-mode state: the calibrated completion model (lazy — only
  // sel=deadline / admit=budget ever pay for the calibration runs) and
  // the observed per-cycle checkpoint overhead that refines its FLEX
  // prediction (prior: the worst-case checkpoint energy).
  std::optional<CompletionModel> cmpl;
  double ovh_flex_ema = 0.0;
  long ovh_flex_n = 0;
  double last_ckpt_e = 0.0;

  // Per-run scheduling state.
  int cur = -1;
  bool inner_fresh_pending = false;  // a tier's fresh boot tore mid-write
  double last_off_s = 0.0;
  long last_units = 0;
  long last_ckpts = 0;
  int no_progress = 0;
  bool force_demote = false;
  long switches = 0;

  // Start-of-power-cycle marks for the success-path income sensor (see
  // observe_success_income).
  double cycle_e0 = 0.0;
  double cycle_t0 = 0.0;

  // Contract-checker decision sink (set_decision_log); null = off.
  std::vector<TierDecision>* dlog = nullptr;
  void log_decision(const flex::StepContext& ctx, int tier_i, bool demote) {
    if (dlog == nullptr) return;
    TierDecision d;
    const dev::PowerSupply* sup = ctx.dev.supply();
    d.t_s = sup != nullptr ? sup->now() : 0.0;
    d.tier = tiers[static_cast<std::size_t>(tier_i)].key;
    d.demote = demote;
    d.fc_samples = fc->samples();
    d.fc_period_s = fc->period_s();
    d.forecast_w = sup != nullptr ? fc->forecast_at_w(sup->now()) : fc->forecast_w();
    d.ovh_j = ovh_flex_n > 0 ? ovh_flex_ema : -1.0;
    d.deadline_s = ctx.opts.deadline_s;
    dlog->push_back(std::move(d));
  }

  // Last observed forecaster lock state, so the obs stream records each
  // kForecastLock/kForecastDrop transition exactly once. Checked after
  // every sample site (gap sensor, success sensor).
  bool fc_locked = false;
  void note_forecast_lock(flex::StepContext& ctx) {
    const bool locked = fc->period_s() > 0.0;
    if (locked != fc_locked) {
      obs::record(ctx.opts.trace, flex::obs_now_s(ctx.dev),
                  locked ? obs::EventKind::kForecastLock
                         : obs::EventKind::kForecastDrop);
      fc_locked = locked;
    }
  }

  void rebuild() {
    tiers.clear();
    base_i = ace_i = flex_i = sonic_i = tile_i = -1;
    const bool dense = provisioned && image.dense != nullptr;
    if (dense) {
      base_i = static_cast<int>(tiers.size());
      tiers.push_back({"base", true, false, flex::make_ace_policy()});
    }
    ace_i = static_cast<int>(tiers.size());
    tiers.push_back({"ace", false, false, flex::make_ace_policy()});
    flex_i = static_cast<int>(tiers.size());
    tiers.push_back({"flex", false, true, flex::make_flex_policy()});
    if (dense) {
      sonic_i = static_cast<int>(tiers.size());
      tiers.push_back({"sonic", true, true, flex::make_sonic_policy()});
      // The ladder floor: sub-layer cursors keep banking progress after
      // even SONIC's per-element commits stop fitting the burst.
      tile_i = static_cast<int>(tiers.size());
      tiers.push_back({"tile", true, true, flex::make_tile_policy()});
    }
    cur = -1;
    inner_fresh_pending = false;
    ready = false;
    cmpl.reset();  // a new image invalidates the calibration
    flex_ckpt_j = -1.0;
    sonic_unit_j = -1.0;
  }

  const ace::CompiledModel& resolve_cm(const flex::StepContext& ctx, const Tier& t) const {
    if (!provisioned) return ctx.cm;
    return *(t.dense_variant ? image.dense : image.compressed);
  }

  // Lazily-computed worst-case FLEX checkpoint energy for the current
  // image (the flex tier always runs the compressed/armed model).
  double flex_ckpt(const ace::CompiledModel& armed, const dev::Device& dev) {
    if (flex_ckpt_j < 0.0) {
      const ace::CompiledModel& cm = provisioned ? *image.compressed : armed;
      flex_ckpt_j = flex::worst_checkpoint_energy(cm, dev.cost());
    }
    return flex_ckpt_j;
  }

  void ensure_ready(flex::StepContext& ctx) {
    if (ready) return;
    for (const auto& t : tiers) {
      check(resolve_cm(ctx, t).model.layers.front().in_size() == ctx.input.size(),
            "adaptive: co-resident model variants must share the input size");
    }
    flex_ckpt(ctx.cm, ctx.dev);
    sonic_unit(ctx.dev);
    ready = true;
  }

  // Lazily-computed SONIC worst minimal-commit energy on the dense image
  // (0 when no dense twin ships — forced_tile_for then never fires).
  double sonic_unit(const dev::Device& dev) {
    if (sonic_unit_j < 0.0) {
      sonic_unit_j =
          tile_i >= 0 ? flex::sonic_worst_commit_energy(*image.dense, dev.cost()) : 0.0;
    }
    return sonic_unit_j;
  }

  void ensure_calibrated(const ace::CompiledModel& armed, const dev::DeviceConfig& dcfg) {
    if (cmpl.has_value()) return;
    const ace::CompiledModel& comp = provisioned ? *image.compressed : armed;
    cmpl.emplace(
        CompletionModel::calibrate(comp, provisioned ? image.dense : nullptr, dcfg));
  }

  // THE static burst-vs-checkpoint constraint, shared by per-boot
  // selection (both modes) and the admission predictors: a burst that
  // cannot fund FLEX's worst-case checkpoint (with margin) pins the
  // device to fine-grained loop continuation. One predicate so the two
  // paths cannot drift apart.
  bool forced_sonic_for(double ckpt_j, const AdaptiveSpec& spec) const {
    return provisioned && image.dense != nullptr &&
           image.burst_energy_j < spec.ckpt_margin * ckpt_j;
  }

  // One notch below forced_sonic_for: a burst that cannot fund even
  // SONIC's smallest committable unit (with the same margin) livelocks
  // every per-element strategy — the device is statically a tile device.
  // Checked FIRST: its band is strictly inside the forced-sonic band.
  bool forced_tile_for(const AdaptiveSpec& spec) const {
    return tile_i >= 0 && sonic_unit_j > 0.0 &&
           image.burst_energy_j < spec.ckpt_margin * sonic_unit_j;
  }

  // Shared setup for the admission predictors: calibration, the FLEX
  // checkpoint budget (computed once per image), the sonic constraint,
  // and the supply clock.
  struct PredictSetup {
    double ckpt_j = 0.0;
    bool forced_sonic = false;
    bool forced_tile = false;
    double now_s = 0.0;
  };
  PredictSetup predict_setup(const dev::Device& dev, const ace::CompiledModel& armed,
                             const AdaptiveSpec& spec) {
    ensure_calibrated(armed, dev.config());
    PredictSetup ps;
    ps.ckpt_j = flex_ckpt(armed, dev);
    sonic_unit(dev);
    ps.forced_tile = forced_tile_for(spec);
    ps.forced_sonic = !ps.forced_tile && forced_sonic_for(ps.ckpt_j, spec);
    const dev::PowerSupply* sup = dev.supply();
    ps.now_s = sup != nullptr ? sup->now() : 0.0;
    return ps;
  }

  // Per-cycle overhead estimate for a tier's completion prediction: the
  // FLEX tier pays a checkpoint write per warned cycle (worst-case prior,
  // refined by the observed per-cycle checkpoint energy); everyone else's
  // steady-state commit traffic is already in the calibrated energy.
  double overhead_for(const std::string& key, double ckpt_j) const {
    if (key != "flex") return 0.0;
    return ovh_flex_n > 0 ? ovh_flex_ema : ckpt_j;
  }

  // The sel=deadline rule: the cheapest tier (by calibrated energy) whose
  // predicted completion beats the time the job has left; when none does,
  // the fastest-predicted tier still gets its shot (a late answer beats
  // no answer — admission control is where hopeless releases are shed).
  int decide_deadline(const AdaptiveSpec& spec, flex::StepContext& ctx) {
    if (forced_tile_for(spec)) return tile_i;
    if (sonic_i >= 0 && forced_sonic_for(flex_ckpt_j, spec)) return sonic_i;
    ensure_calibrated(ctx.cm, ctx.dev.config());
    double remaining = std::numeric_limits<double>::infinity();
    const dev::PowerSupply* sup = ctx.dev.supply();
    const double now_s = sup != nullptr ? sup->now() : 0.0;
    if (std::isfinite(ctx.opts.deadline_s) && sup != nullptr) {
      remaining = ctx.opts.deadline_s - now_s;
    }

    // Ladder indices in calibrated-energy order (cheapest first).
    std::vector<int> order;
    for (int i = 0; i < static_cast<int>(tiers.size()); ++i) order.push_back(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto* ta = cmpl->tier(tiers[static_cast<std::size_t>(a)].key);
      const auto* tb = cmpl->tier(tiers[static_cast<std::size_t>(b)].key);
      const double ea = ta != nullptr ? ta->energy_j : std::numeric_limits<double>::infinity();
      const double eb = tb != nullptr ? tb->energy_j : std::numeric_limits<double>::infinity();
      return ea != eb ? ea < eb : a < b;
    });

    int fastest = flex_i;
    double fastest_t = std::numeric_limits<double>::infinity();
    for (const int i : order) {
      const auto* ct = cmpl->tier(tiers[static_cast<std::size_t>(i)].key);
      if (ct == nullptr) continue;
      const double t = cmpl->predict_curve_s(*ct, image.burst_energy_j, *fc, now_s,
                                             overhead_for(ct->key, flex_ckpt_j));
      if (t < fastest_t) {
        fastest_t = t;
        fastest = i;
      }
      if (std::isfinite(t) && t <= remaining) return i;
    }
    return fastest;
  }

  int decide_fresh(const AdaptiveSpec& spec, flex::StepContext& ctx) {
    if (spec.sel == TierSelect::kDeadline) return decide_deadline(spec, ctx);
    // Static energy geometry first (forced_tile_for / forced_sonic_for,
    // shared with the deadline mode and the admission predictors).
    if (forced_tile_for(spec)) return tile_i;
    if (sonic_i >= 0 && forced_sonic_for(flex_ckpt_j, spec)) return sonic_i;
    // Ask the forecaster about NOW, not about its last sample: a locked
    // periodic forecast reads the current wall-clock phase even when the
    // device idled through a phase transition without observing it.
    const dev::PowerSupply* sup = ctx.dev.supply();
    const double w = sup != nullptr ? fc->forecast_at_w(sup->now()) : fc->forecast_w();
    if (base_i >= 0 && w >= spec.full_w) return base_i;
    if (w >= spec.rich_w) return ace_i;
    return flex_i;
  }

  // Activates tiers[cur] with a fresh inner boot. The fresh flag is
  // sticky across a brown-out mid-boot (inner_fresh_pending), mirroring
  // the executor's own fresh_ handling: a torn fresh boot is retried
  // fresh, never resumed, so a previous job's stale cursors can never
  // leak into this one.
  void activate(flex::StepContext& ctx) {
    inner_fresh_pending = true;
    Tier& t = tiers[static_cast<std::size_t>(cur)];
    const ace::CompiledModel& cm = resolve_cm(ctx, t);
    ctx.st.units_total = t.policy->units_total(cm);
    flex::StepContext sub{ctx.dev, cm, ctx.input, ctx.opts, ctx.st};
    t.policy->on_boot(sub, true);
    inner_fresh_pending = false;
  }
};

AdaptivePolicy::AdaptivePolicy(AdaptiveSpec spec)
    : impl_(std::make_unique<Impl>()), spec_(std::move(spec)) {
  check(spec_.rich_w >= 0.0 && spec_.ckpt_margin >= 0.0 && spec_.demote_boots >= 1,
        "adaptive: bad spec");
  impl_->fc = make_forecaster(spec_.forecaster);  // throws on a bad spec
  impl_->rebuild();
}

AdaptivePolicy::~AdaptivePolicy() = default;

void AdaptivePolicy::provision(const DeploymentImage& image) {
  check(image.compressed != nullptr, "adaptive: provision needs the compressed image");
  impl_->image = image;
  impl_->provisioned = true;
  impl_->rebuild();
}

void AdaptivePolicy::on_boot(flex::StepContext& ctx, bool fresh) {
  Impl& s = *impl_;
  s.ensure_ready(ctx);
  s.cycle_e0 = ctx.dev.trace().total_energy();
  if (const dev::PowerSupply* sup = ctx.dev.supply()) s.cycle_t0 = sup->now();
  if (fresh) {
    s.last_off_s = ctx.st.off_seconds;
    s.last_units = ctx.st.units_executed;
    s.last_ckpts = ctx.st.checkpoints;
    s.last_ckpt_e = ctx.st.checkpoint_energy_j;
    s.no_progress = 0;
    s.force_demote = false;
    s.cur = s.decide_fresh(spec_, ctx);
    s.log_decision(ctx, s.cur, /*demote=*/false);
    obs::record(ctx.opts.trace, flex::obs_now_s(ctx.dev),
                obs::EventKind::kTierSelect, s.cur);
    s.activate(ctx);
    return;
  }

  // A power cycle died. The recharge gap is the scheduler's harvest
  // sensor: refilling the burst energy took `gap` seconds, so the
  // harvester averaged burst/gap watts — one forecaster sample,
  // timestamped at the gap's midpoint (the instant the average income
  // actually describes; end-stamping would smear a whole solar night
  // onto its dawn).
  const double gap = ctx.st.off_seconds - s.last_off_s;
  s.last_off_s = ctx.st.off_seconds;
  if (gap > 0.0 && std::isfinite(s.image.burst_energy_j)) {
    const dev::PowerSupply* sup = ctx.dev.supply();
    if (sup != nullptr) {
      s.fc->record_at(s.image.burst_energy_j / gap, sup->now() - 0.5 * gap);
    } else {
      s.fc->record(s.image.burst_energy_j / gap);
    }
    s.note_forecast_lock(ctx);
  }

  // A persistent tier made progress if it banked anything at all this
  // cycle: a unit commit, or a completed checkpoint (FLEX's BCM tiers
  // advance by sub-unit stages that only checkpoints witness; a
  // checkpoint that tore mid-write was never counted).
  const Tier& cur = s.tiers[static_cast<std::size_t>(s.cur)];
  const bool progressed =
      cur.persistent && (ctx.st.units_executed > s.last_units ||
                         ctx.st.checkpoints > s.last_ckpts);
  // Observed boot overhead: the checkpoint energy this power cycle spent
  // banking its state is income the completion model must write off per
  // cycle. EMA so a single eager-monitor burst does not dominate.
  if (s.cur == s.flex_i && ctx.st.checkpoints > s.last_ckpts) {
    const double sample = ctx.st.checkpoint_energy_j - s.last_ckpt_e;
    s.ovh_flex_ema = s.ovh_flex_n == 0 ? sample : 0.7 * s.ovh_flex_ema + 0.3 * sample;
    ++s.ovh_flex_n;
  }
  s.last_units = ctx.st.units_executed;
  s.last_ckpts = ctx.st.checkpoints;
  s.last_ckpt_e = ctx.st.checkpoint_energy_j;
  if (progressed) {
    s.no_progress = 0;
  } else {
    ++s.no_progress;
  }

  int next = s.cur;
  if (s.force_demote || s.no_progress >= spec_.demote_boots) {
    // The tier is stuck (its own livelock detector fired, or it has made
    // no forward progress for demote_boots cycles): one rung leaner.
    next = std::min(s.cur + 1, static_cast<int>(s.tiers.size()) - 1);
    s.force_demote = false;
    s.log_decision(ctx, next, /*demote=*/true);
    obs::record(ctx.opts.trace, flex::obs_now_s(ctx.dev),
                obs::EventKind::kTierDemote, next, s.cur);
  } else if (!cur.persistent) {
    // Restart-from-scratch tiers bank nothing, so every boot is free to
    // re-decide from the live forecast (this is where a mis-forecast
    // rich start degrades to FLEX).
    next = s.decide_fresh(spec_, ctx);
    s.log_decision(ctx, next, /*demote=*/false);
  }

  if (next != s.cur) {
    ++s.switches;
    obs::record(ctx.opts.trace, flex::obs_now_s(ctx.dev),
                obs::EventKind::kTierSwitch, next, s.cur);
    s.no_progress = 0;
    s.cur = next;
    s.activate(ctx);  // tier progress formats are incompatible: restart
  } else if (s.inner_fresh_pending) {
    s.activate(ctx);  // the switch boot itself browned out: retry fresh
  } else {
    Tier& t = s.tiers[static_cast<std::size_t>(s.cur)];
    flex::StepContext sub{ctx.dev, s.resolve_cm(ctx, t), ctx.input, ctx.opts, ctx.st};
    t.policy->on_boot(sub, false);
  }
}

bool AdaptivePolicy::step(flex::StepContext& ctx) {
  Impl& s = *impl_;
  Tier& t = s.tiers[static_cast<std::size_t>(s.cur)];
  flex::StepContext sub{ctx.dev, s.resolve_cm(ctx, t), ctx.input, ctx.opts, ctx.st};
  const bool done = t.policy->step(sub);
  if (done) observe_success_income(ctx);
  return done;
}

void AdaptivePolicy::observe_success_income(flex::StepContext& ctx) {
  // Success-path income sensor. Recharge gaps only report income when
  // power FAILS; a cycle that completes the inference without browning
  // out would leave the forecaster blind to rich phases (a solar day
  // where income covers the draw produces no reboots, hence no gap
  // samples, hence an eternally-stale "night" forecast). But a completed
  // cycle is evidence too: drawing e_cycle over t_cycle from a buffer
  // holding one burst means the harvester supplied at least
  // (e_cycle - burst) / t_cycle watts alongside the draw — a lower
  // bound, recorded at the cycle's midpoint like every other sample.
  Impl& s = *impl_;
  if (!std::isfinite(s.image.burst_energy_j)) return;
  const dev::PowerSupply* sup = ctx.dev.supply();
  if (sup == nullptr) return;
  const double e_cycle = ctx.dev.trace().total_energy() - s.cycle_e0;
  const double t_cycle = sup->now() - s.cycle_t0;
  if (t_cycle <= 0.0 || e_cycle <= s.image.burst_energy_j) return;
  s.fc->record_at((e_cycle - s.image.burst_energy_j) / t_cycle,
                  sup->now() - 0.5 * t_cycle);
  s.note_forecast_lock(ctx);
}

bool AdaptivePolicy::retry_after_failure(flex::StepContext& ctx, double attempt_cycles) {
  Impl& s = *impl_;
  Tier& t = s.tiers[static_cast<std::size_t>(s.cur)];
  flex::StepContext sub{ctx.dev, s.resolve_cm(ctx, t), ctx.input, ctx.opts, ctx.st};
  if (t.policy->retry_after_failure(sub, attempt_cycles)) return true;
  // The tier gave up (ACE's livelock detector). With a leaner rung left
  // the run is not dead — demote at the next boot instead of DNF.
  if (s.cur + 1 < static_cast<int>(s.tiers.size())) {
    s.force_demote = true;
    return true;
  }
  return false;
}

const ace::CompiledModel& AdaptivePolicy::output_model(const ace::CompiledModel& armed) const {
  const Impl& s = *impl_;
  if (s.cur < 0 || !s.provisioned) return armed;
  const Tier& t = s.tiers[static_cast<std::size_t>(s.cur)];
  return *(t.dense_variant ? s.image.dense : s.image.compressed);
}

std::string AdaptivePolicy::current_runtime() const {
  const Impl& s = *impl_;
  return s.cur < 0 ? "" : s.tiers[static_cast<std::size_t>(s.cur)].key;
}

bool AdaptivePolicy::on_dense_model() const {
  const Impl& s = *impl_;
  return s.cur >= 0 && s.provisioned &&
         s.tiers[static_cast<std::size_t>(s.cur)].dense_variant;
}

long AdaptivePolicy::tier_switches() const { return impl_->switches; }

const HarvestForecaster& AdaptivePolicy::forecaster() const { return *impl_->fc; }

double AdaptivePolicy::predict_best_completion_s(const dev::Device& dev,
                                                 const ace::CompiledModel& armed) {
  Impl& s = *impl_;
  const Impl::PredictSetup ps = s.predict_setup(dev, armed, spec_);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& t : s.cmpl->tiers()) {
    if (ps.forced_tile && t.key != "tile") continue;
    if (ps.forced_sonic && t.key != "sonic") continue;
    best = std::min(best, s.cmpl->predict_curve_s(t, s.image.burst_energy_j, *s.fc, ps.now_s,
                                                  s.overhead_for(t.key, ps.ckpt_j)));
  }
  return best;
}

double AdaptivePolicy::predict_optimistic_s(const dev::Device& dev,
                                            const ace::CompiledModel& armed) {
  Impl& s = *impl_;
  const Impl::PredictSetup ps = s.predict_setup(dev, armed, spec_);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& t : s.cmpl->tiers()) {
    if (ps.forced_tile && t.key != "tile") continue;
    if (ps.forced_sonic && t.key != "sonic") continue;
    best = std::min(best, t.on_s);
  }
  return best;
}

const CompletionModel* AdaptivePolicy::completion_model() const {
  return impl_->cmpl.has_value() ? &*impl_->cmpl : nullptr;
}

double AdaptivePolicy::reclaimable_energy_j() const {
  return impl_->cmpl.has_value() ? impl_->cmpl->min_energy_j() : 0.0;
}

void AdaptivePolicy::set_decision_log(std::vector<TierDecision>* log) {
  impl_->dlog = log;
}

std::unique_ptr<flex::RuntimePolicy> make_adaptive_policy(AdaptiveSpec spec) {
  return std::make_unique<AdaptivePolicy>(std::move(spec));
}

bool provision_adaptive(flex::RuntimePolicy& policy, const DeploymentImage& image) {
  auto* ap = dynamic_cast<AdaptivePolicy*>(&policy);
  if (ap == nullptr) return false;
  ap->provision(image);
  return true;
}

double provision_deployment(flex::RuntimePolicy& policy, const dev::CostModel& cost,
                            const ace::CompiledModel& primary,
                            const ace::CompiledModel* dense, double burst_energy_j) {
  double worst_ck = flex::worst_checkpoint_energy(primary, cost);
  if (dense != nullptr) {
    worst_ck = std::max(worst_ck, flex::worst_checkpoint_energy(*dense, cost));
  }
  DeploymentImage img;
  img.compressed = &primary;
  img.dense = dense;
  img.burst_energy_j = burst_energy_j;
  provision_adaptive(policy, img);
  return worst_ck;
}

const AdaptivePolicy* as_adaptive(const flex::RuntimePolicy* policy) {
  return dynamic_cast<const AdaptivePolicy*>(policy);
}

AdaptivePolicy* as_adaptive(flex::RuntimePolicy* policy) {
  return dynamic_cast<AdaptivePolicy*>(policy);
}

AdaptiveSpec parse_adaptive_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  check(spec.substr(0, colon) == "adaptive",
        "adaptive spec \"" + spec + "\": expected adaptive[:key=value,...]");
  SpecArgs a(spec, colon == std::string::npos ? "" : spec.substr(colon + 1));
  AdaptiveSpec s;

  // Forecaster sub-spec assembled from flat keys (fc picks the kind;
  // prior/alpha/n/w forward verbatim so the forecaster factory validates
  // them in one place).
  std::string fspec = a.str("fc", "ema");
  std::string fargs;
  for (const char* key : {"prior", "alpha", "n", "w", "bins", "conf"}) {
    const std::string v = a.str(key, "");
    if (v.empty()) continue;
    fargs += (fargs.empty() ? "" : ",") + std::string(key) + "=" + v;
  }
  if (!fargs.empty()) fspec += ":" + fargs;
  s.forecaster = fspec;

  const std::string sel = a.str("sel", "income");
  if (sel == "income") {
    s.sel = TierSelect::kIncome;
  } else if (sel == "deadline") {
    s.sel = TierSelect::kDeadline;
  } else {
    fail("adaptive spec \"" + spec + "\": sel must be income or deadline");
  }
  const std::string admit = a.str("admit", "all");
  if (admit == "all") {
    s.admit = Admission::kAll;
  } else if (admit == "budget") {
    s.admit = Admission::kBudget;
  } else {
    fail("adaptive spec \"" + spec + "\": admit must be all or budget");
  }
  s.admit_slack_s = a.num("slack", s.admit_slack_s);
  check(s.admit_slack_s >= 0.0, "adaptive spec \"" + spec + "\": slack must be >= 0");
  const double probe = a.num("probe", s.probe_skips);
  check(probe >= 1.0 && probe <= 1e6 && probe == std::floor(probe),
        "adaptive spec \"" + spec + "\": probe must be an integer in [1, 1e6]");
  s.probe_skips = static_cast<int>(probe);

  s.rich_w = a.num("rich", s.rich_w);
  s.full_w = a.num("full", s.full_w);
  s.ckpt_margin = a.num("ckpt_margin", s.ckpt_margin);
  // Range-checked before the cast: a double outside int's range is
  // undefined behavior at the conversion, not a garbage value.
  const double demote = a.num("demote", s.demote_boots);
  check(demote >= 1.0 && demote <= 1e6 && demote == std::floor(demote),
        "adaptive spec \"" + spec + "\": demote must be an integer in [1, 1e6]");
  s.demote_boots = static_cast<int>(demote);
  a.finish();
  make_forecaster(s.forecaster);  // validate eagerly (throws on bad kinds/values)
  return s;
}

}  // namespace ehdnn::sched
