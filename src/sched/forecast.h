// Harvest forecasting: predicting the income the harvester will deliver
// over the next power cycle from what it delivered over past ones.
//
// The intermittent runtimes observe income only indirectly — each
// recharge gap refills the capacitor's burst energy, so one observed
// sample is burst_energy / gap_seconds (watts). A forecaster folds those
// samples into a prediction; the adaptive policy (sched/adaptive.h) maps
// the prediction onto a runtime/model-variant ladder at every boot.
//
// Forecasters are deterministic: the same sample sequence yields the same
// forecasts, which is what keeps adaptive runs replayable (the same
// property the crash-consistency fuzzer relies on).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace ehdnn::sched {

class HarvestForecaster {
 public:
  virtual ~HarvestForecaster() = default;

  virtual std::string name() const = 0;

  // Folds one observed recharge-average income sample (watts) in.
  virtual void record(double income_w) = 0;

  // Predicted income (watts) for the next power cycle. Before the first
  // record() this is the configured prior.
  virtual double forecast_w() const = 0;

  // Number of samples folded in so far.
  virtual long samples() const = 0;

  // Back to the prior, forgetting all samples (a fresh deployment; NOT
  // called between jobs — carrying the forecast across jobs is the whole
  // point of per-boot scheduling).
  virtual void reset() = 0;
};

// Exponential moving average: forecast <- (1-alpha)*forecast + alpha*x.
// `alpha` in (0, 1]; 1.0 degenerates to last-value prediction.
std::unique_ptr<HarvestForecaster> make_ema_forecaster(double prior_w, double alpha);

// Windowed-trace predictor: the mean of the last `n` samples (the trace
// window), prior before any sample arrives.
std::unique_ptr<HarvestForecaster> make_window_forecaster(double prior_w, std::size_t n);

// Fixed-assumption forecaster: always predicts `w`, ignores samples
// (adaptation disabled; useful as an experiment control).
std::unique_ptr<HarvestForecaster> make_const_forecaster(double w);

// Factory keyed by a spec string, mirroring power::make_harvest_source:
//   ema[:prior=W,alpha=A]     (defaults prior=1.2e-3, alpha=0.5)
//   window[:prior=W,n=N]      (defaults prior=1.2e-3, n=8)
//   const[:w=W]               (default w=1.2e-3)
// Unknown kinds/keys and malformed values throw ehdnn::Error.
std::unique_ptr<HarvestForecaster> make_forecaster(const std::string& spec);

// The spec kinds the factory accepts, from the same static kind table the
// dispatch uses.
const std::vector<std::string>& forecaster_kinds();

}  // namespace ehdnn::sched
