// Harvest forecasting: predicting the income the harvester will deliver
// over the next power cycle from what it delivered over past ones.
//
// The intermittent runtimes observe income only indirectly — each
// recharge gap refills the capacitor's burst energy, so one observed
// sample is burst_energy / gap_seconds (watts). A forecaster folds those
// samples into a prediction; the adaptive policy (sched/adaptive.h) maps
// the prediction onto a runtime/model-variant ladder at every boot.
//
// Forecasters are deterministic: the same sample sequence yields the same
// forecasts, which is what keeps adaptive runs replayable (the same
// property the crash-consistency fuzzer relies on).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace ehdnn::sched {

class HarvestForecaster {
 public:
  virtual ~HarvestForecaster() = default;

  virtual std::string name() const = 0;

  // Folds one observed recharge-average income sample (watts) in.
  virtual void record(double income_w) = 0;

  // Timestamped record: `t_s` is the supply-time instant the sample
  // represents (the adaptive policy passes the recharge gap's midpoint).
  // Smoothing forecasters ignore the time; the periodic forecaster
  // anchors its phase table to it. Default: plain record().
  virtual void record_at(double income_w, double t_s) {
    (void)t_s;
    record(income_w);
  }

  // Predicted income (watts) for the next power cycle. Before the first
  // record() this is the configured prior.
  virtual double forecast_w() const = 0;

  // Predicted income (watts) at the absolute supply-time instant `t_s` —
  // the income CURVE completion-time prediction integrates. Smoothing
  // forecasters predict a flat curve; the periodic forecaster reads the
  // phase its table assigns to t_s, which is what lets a release decision
  // know a lean phase (a solar night) is in the way — or already over,
  // even when the device idled through the transition without observing
  // a single sample. Default: the flat forecast.
  virtual double forecast_at_w(double t_s) const {
    (void)t_s;
    return forecast_w();
  }

  // Detected income period in seconds (supply time). 0 until a period is
  // confirmed — only the periodic forecaster ever reports one.
  virtual double period_s() const { return 0.0; }

  // Number of samples folded in so far.
  virtual long samples() const = 0;

  // Back to the prior, forgetting all samples (a fresh deployment; NOT
  // called between jobs — carrying the forecast across jobs is the whole
  // point of per-boot scheduling).
  virtual void reset() = 0;
};

// Exponential moving average: forecast <- (1-alpha)*forecast + alpha*x.
// `alpha` in (0, 1]; 1.0 degenerates to last-value prediction.
std::unique_ptr<HarvestForecaster> make_ema_forecaster(double prior_w, double alpha);

// Windowed-trace predictor: the mean of the last `n` samples (the trace
// window), prior before any sample arrives.
std::unique_ptr<HarvestForecaster> make_window_forecaster(double prior_w, std::size_t n);

// Fixed-assumption forecaster: always predicts `w`, ignores samples
// (adaptation disabled; useful as an experiment control).
std::unique_ptr<HarvestForecaster> make_const_forecaster(double w);

// Periodicity-detecting forecaster: keeps a timestamped history of
// income samples, resamples it onto a uniform grid, and runs normalized
// autocorrelation over candidate lags after every record. Once a lag
// correlates at/above `confidence` (with at least three periods of
// history; harmonics resolved toward the shortest lag) the period is
// locked and predictions come from a phase-indexed income table: `bins`
// per-phase means over the history, phase = t mod period. Until a period
// is confirmed — and again whenever the lock degrades — it behaves
// exactly like the EMA forecaster, so a non-periodic source costs
// nothing but the history bookkeeping. Untimed record() calls place
// samples at unit spacing, so pure sample-sequence periodicity is
// detected too. Deterministic, like every forecaster.
std::unique_ptr<HarvestForecaster> make_periodic_forecaster(double prior_w, double alpha,
                                                            std::size_t bins = 12,
                                                            double confidence = 0.6);

// Factory keyed by a spec string, mirroring power::make_harvest_source:
//   ema[:prior=W,alpha=A]             (defaults prior=1.2e-3, alpha=0.5)
//   window[:prior=W,n=N]              (defaults prior=1.2e-3, n=8)
//   const[:w=W]                       (default w=1.2e-3)
//   periodic[:prior=W,alpha=A,bins=B,conf=C]
//                                     (defaults prior=1.2e-3, alpha=0.5,
//                                      bins=12, conf=0.6)
// Unknown kinds/keys and malformed values throw ehdnn::Error.
std::unique_ptr<HarvestForecaster> make_forecaster(const std::string& spec);

// The spec kinds the factory accepts, from the same static kind table the
// dispatch uses.
const std::vector<std::string>& forecaster_kinds();

}  // namespace ehdnn::sched
