#include "sched/forecast.h"

#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/spec.h"

namespace ehdnn::sched {

namespace {

class EmaForecaster : public HarvestForecaster {
 public:
  EmaForecaster(double prior_w, double alpha) : prior_(prior_w), alpha_(alpha), est_(prior_w) {
    check(prior_w >= 0.0 && alpha > 0.0 && alpha <= 1.0, "ema forecaster: bad parameters");
  }

  std::string name() const override { return "ema"; }

  void record(double income_w) override {
    est_ = (1.0 - alpha_) * est_ + alpha_ * income_w;
    ++samples_;
  }

  double forecast_w() const override { return est_; }
  long samples() const override { return samples_; }

  void reset() override {
    est_ = prior_;
    samples_ = 0;
  }

 private:
  double prior_, alpha_, est_;
  long samples_ = 0;
};

class WindowForecaster : public HarvestForecaster {
 public:
  WindowForecaster(double prior_w, std::size_t n) : prior_(prior_w), n_(n) {
    check(prior_w >= 0.0 && n > 0, "window forecaster: bad parameters");
  }

  std::string name() const override { return "window"; }

  void record(double income_w) override {
    if (window_.size() < n_) {
      window_.push_back(income_w);
    } else {
      window_[static_cast<std::size_t>(samples_) % n_] = income_w;
    }
    ++samples_;
  }

  double forecast_w() const override {
    if (window_.empty()) return prior_;
    return std::accumulate(window_.begin(), window_.end(), 0.0) /
           static_cast<double>(window_.size());
  }

  long samples() const override { return samples_; }

  void reset() override {
    window_.clear();
    samples_ = 0;
  }

 private:
  double prior_;
  std::size_t n_;
  std::vector<double> window_;
  long samples_ = 0;
};

class ConstForecaster : public HarvestForecaster {
 public:
  explicit ConstForecaster(double w) : w_(w) {
    check(w >= 0.0, "const forecaster: bad parameter");
  }

  std::string name() const override { return "const"; }
  void record(double) override { ++samples_; }
  double forecast_w() const override { return w_; }
  long samples() const override { return samples_; }
  void reset() override { samples_ = 0; }

 private:
  double w_;
  long samples_ = 0;
};

constexpr double kDefaultPriorW = 1.2e-3;  // the paper's constant-harvest regime

// THE forecaster-kind table (dispatch + forecaster_kinds(), one place).
struct KindEntry {
  const char* kind;
  std::unique_ptr<HarvestForecaster> (*make)(SpecArgs& a);
};

std::unique_ptr<HarvestForecaster> make_ema_spec(SpecArgs& a) {
  return make_ema_forecaster(a.num("prior", kDefaultPriorW), a.num("alpha", 0.5));
}

std::unique_ptr<HarvestForecaster> make_window_spec(SpecArgs& a) {
  // Range-checked before the cast (out-of-range double-to-size_t is UB).
  const double n = a.num("n", 8.0);
  check(n >= 1.0 && n <= 1e6 && n == std::floor(n),
        "window forecaster: n must be an integer in [1, 1e6]");
  return make_window_forecaster(a.num("prior", kDefaultPriorW),
                                static_cast<std::size_t>(n));
}

std::unique_ptr<HarvestForecaster> make_const_spec(SpecArgs& a) {
  return make_const_forecaster(a.num("w", kDefaultPriorW));
}

constexpr KindEntry kKindTable[] = {
    {"ema", make_ema_spec},
    {"window", make_window_spec},
    {"const", make_const_spec},
};

}  // namespace

std::unique_ptr<HarvestForecaster> make_ema_forecaster(double prior_w, double alpha) {
  return std::make_unique<EmaForecaster>(prior_w, alpha);
}

std::unique_ptr<HarvestForecaster> make_window_forecaster(double prior_w, std::size_t n) {
  return std::make_unique<WindowForecaster>(prior_w, n);
}

std::unique_ptr<HarvestForecaster> make_const_forecaster(double w) {
  return std::make_unique<ConstForecaster>(w);
}

const std::vector<std::string>& forecaster_kinds() {
  static const std::vector<std::string> kinds = [] {
    std::vector<std::string> v;
    for (const auto& k : kKindTable) v.emplace_back(k.kind);
    return v;
  }();
  return kinds;
}

std::unique_ptr<HarvestForecaster> make_forecaster(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  SpecArgs a(spec, colon == std::string::npos ? "" : spec.substr(colon + 1));
  for (const auto& k : kKindTable) {
    if (kind == k.kind) {
      auto fc = k.make(a);
      a.finish();
      return fc;
    }
  }
  fail("forecaster spec \"" + spec + "\": unknown kind \"" + kind + "\" (ema|window|const)");
}

}  // namespace ehdnn::sched
