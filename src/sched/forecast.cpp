#include "sched/forecast.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>

#include "util/check.h"
#include "util/spec.h"

namespace ehdnn::sched {

namespace {

class EmaForecaster : public HarvestForecaster {
 public:
  EmaForecaster(double prior_w, double alpha) : prior_(prior_w), alpha_(alpha), est_(prior_w) {
    check(prior_w >= 0.0 && alpha > 0.0 && alpha <= 1.0, "ema forecaster: bad parameters");
  }

  std::string name() const override { return "ema"; }

  void record(double income_w) override {
    est_ = (1.0 - alpha_) * est_ + alpha_ * income_w;
    ++samples_;
  }

  double forecast_w() const override { return est_; }
  long samples() const override { return samples_; }

  void reset() override {
    est_ = prior_;
    samples_ = 0;
  }

 private:
  double prior_, alpha_, est_;
  long samples_ = 0;
};

class WindowForecaster : public HarvestForecaster {
 public:
  WindowForecaster(double prior_w, std::size_t n) : prior_(prior_w), n_(n) {
    check(prior_w >= 0.0 && n > 0, "window forecaster: bad parameters");
  }

  std::string name() const override { return "window"; }

  void record(double income_w) override {
    if (window_.size() < n_) {
      window_.push_back(income_w);
    } else {
      window_[static_cast<std::size_t>(samples_) % n_] = income_w;
    }
    ++samples_;
  }

  double forecast_w() const override {
    if (window_.empty()) return prior_;
    return std::accumulate(window_.begin(), window_.end(), 0.0) /
           static_cast<double>(window_.size());
  }

  long samples() const override { return samples_; }

  void reset() override {
    window_.clear();
    samples_ = 0;
  }

 private:
  double prior_;
  std::size_t n_;
  std::vector<double> window_;
  long samples_ = 0;
};

class ConstForecaster : public HarvestForecaster {
 public:
  explicit ConstForecaster(double w) : w_(w) {
    check(w >= 0.0, "const forecaster: bad parameter");
  }

  std::string name() const override { return "const"; }
  void record(double) override { ++samples_; }
  double forecast_w() const override { return w_; }
  long samples() const override { return samples_; }
  void reset() override { samples_ = 0; }

 private:
  double w_;
  long samples_ = 0;
};

// Autocorrelation-based periodicity detection over the income history.
//
// Square/solar harvesters deliver income the smoothing forecasters can
// only average away: the recharge-gap samples swing hi/lo with the source
// phase, and an EMA forever lags the swing — worse, it goes silently
// stale whenever the device idles or parks through a phase transition
// (no reboots, no samples). This forecaster keeps a TIMESTAMPED history,
// resamples it onto a uniform grid (zero-order hold), runs a normalized
// autocorrelation over candidate lags after every record, and once a lag
// is confirmed (correlation >= confidence, >= 3 periods of history,
// harmonics resolved toward the shortest lag) predicts from a
// phase-indexed income table: per-phase means with phase = t mod period.
// forecast_at_w(t) therefore answers "what will the harvester deliver at
// THAT instant" — including instants no sample ever covered, which is
// what deadline admission needs after sleeping through a solar dawn. The
// lock is re-evaluated on every sample and silently degrades back to the
// EMA when the source stops being periodic.
class PeriodicForecaster : public HarvestForecaster {
 public:
  PeriodicForecaster(double prior_w, double alpha, std::size_t bins, double confidence)
      : prior_(prior_w), alpha_(alpha), bins_(bins), conf_(confidence), est_(prior_w) {
    check(prior_w >= 0.0 && alpha > 0.0 && alpha <= 1.0 && bins >= 2 && bins <= 1024 &&
              confidence > 0.0 && confidence <= 1.0,
          "periodic forecaster: bad parameters");
  }

  std::string name() const override { return "periodic"; }

  // Untimed samples are placed at unit spacing, so a plain record()
  // stream still gets sample-sequence periodicity detection.
  void record(double income_w) override {
    record_at(income_w, history_.empty() ? 0.0 : history_.back().t + 1.0);
  }

  void record_at(double income_w, double t_s) override {
    est_ = (1.0 - alpha_) * est_ + alpha_ * income_w;
    // Time must be monotone for the grid resampling; a regressing clock
    // (should not happen — supply time only advances) clamps forward.
    if (!history_.empty() && t_s < history_.back().t) t_s = history_.back().t;
    history_.push_back({t_s, income_w});
    if (history_.size() > kMaxHistory) history_.pop_front();
    ++samples_;
    // Detection is amortized: the autocorrelation + dispersion pass over
    // the history is O(thousands) of flops, and a reboot-storm device
    // (a micro-cap SONIC grind) records tens of thousands of samples.
    // Re-deriving every kDetectEvery-th sample delays a lock by at most
    // 7 samples out of the >= 3 periods one needs anyway.
    if (samples_ % kDetectEvery == 0 || history_.size() == 8) detect();
  }

  double forecast_w() const override {
    if (period_s_ <= 0.0) return est_;
    return forecast_at_w(history_.back().t);
  }

  double forecast_at_w(double t_s) const override {
    if (period_s_ <= 0.0) return est_;
    double phase = std::fmod(t_s, period_s_) / period_s_;
    if (phase < 0.0) phase += 1.0;
    std::size_t b = static_cast<std::size_t>(phase * static_cast<double>(table_.size()));
    if (b >= table_.size()) b = table_.size() - 1;
    return table_[b];
  }

  double period_s() const override { return period_s_; }
  long samples() const override { return samples_; }

  void reset() override {
    est_ = prior_;
    history_.clear();
    table_.clear();
    period_s_ = 0.0;
    samples_ = 0;
  }

 private:
  struct Sample {
    double t, w;
  };
  static constexpr std::size_t kMaxHistory = 512;
  static constexpr std::size_t kGrid = 96;  // resampling resolution
  static constexpr long kDetectEvery = 8;   // detection amortization

  void detect() {
    if (history_.size() < 8) {
      period_s_ = 0.0;
      return;
    }
    const double t0 = history_.front().t;
    const double span = history_.back().t - t0;
    if (span <= 0.0) {
      period_s_ = 0.0;
      return;
    }

    // A held lock is re-validated (and drift-refined) by dispersion
    // rather than re-derived from scratch: the grid gate below quantizes
    // lags to span/kGrid, so as the span grows a true period drifts in
    // and out of grid alignment — the fold quality of the period itself
    // is the stable signal.
    if (period_s_ > 0.0) {
      const double hist_mean = mean_of_history();
      const double hist_var = var_of_history(hist_mean);
      double best_p = 0.0;
      double best_d = std::numeric_limits<double>::infinity();
      for (const double e : {-0.02, -0.01, 0.0, 0.01, 0.02}) {
        const double p = period_s_ * (1.0 + e);
        const double d = phase_dispersion(p, hist_var);
        if (d < best_d) {
          best_d = d;
          best_p = p;
        }
      }
      if (best_d <= 1.0 - conf_) {
        period_s_ = best_p;
        build_table(best_p, hist_mean);
        return;
      }
      period_s_ = 0.0;  // the source stopped folding cleanly: re-derive
    }

    // Zero-order-hold resample onto a uniform grid (income history is
    // gap-spaced, autocorrelation wants even spacing).
    double grid[kGrid];
    std::size_t h = 0;
    for (std::size_t i = 0; i < kGrid; ++i) {
      const double t = t0 + span * static_cast<double>(i) / static_cast<double>(kGrid);
      while (h + 1 < history_.size() && history_[h + 1].t <= t) ++h;
      grid[i] = history_[h].w;
    }
    double mean = 0.0;
    for (double x : grid) mean += x;
    mean /= static_cast<double>(kGrid);
    double var = 0.0;
    for (double x : grid) var += (x - mean) * (x - mean);
    if (var <= 1e-30) return;  // constant income: EMA already exact

    // Normalized autocorrelation per candidate lag. Lags run up to a
    // third of the grid, so a period needs >= 3 repetitions in history to
    // be confirmable; among lags within 10% of the best, prefer the
    // SMALLEST (a true period also correlates at its harmonics).
    constexpr std::size_t kMinLag = 4;
    double r[kGrid / 3 + 1];
    double best_r = -1.0;
    for (std::size_t lag = kMinLag; lag <= kGrid / 3; ++lag) {
      double acc = 0.0;
      for (std::size_t i = 0; i + lag < kGrid; ++i) {
        acc += (grid[i] - mean) * (grid[i + lag] - mean);
      }
      r[lag] = (acc / static_cast<double>(kGrid - lag)) / (var / static_cast<double>(kGrid));
      best_r = std::max(best_r, r[lag]);
    }
    if (best_r < conf_) return;
    std::size_t period_lag = 0;
    for (std::size_t lag = kMinLag; lag <= kGrid / 3; ++lag) {
      if (r[lag] >= conf_ && r[lag] >= 0.9 * best_r) {
        period_lag = lag;
        break;
      }
    }
    if (period_lag == 0) return;
    const double p0 = span * static_cast<double>(period_lag) / static_cast<double>(kGrid);

    // The grid's lag resolution is span/kGrid, so a true period that is a
    // fractional number of grid steps aliases onto a near-exact MULTIPLE
    // of itself (e.g. 5x, which does land on an integer lag). Refine by
    // phase-dispersion minimization over the raw timestamped samples:
    // fold the history at p0 and its sub-multiples p0/k, keep the
    // smallest candidate that folds as cleanly as the best one. A
    // candidate must average enough samples per period to fill its bins,
    // or a tiny period would fold every sample into its own bin and win
    // with artificial zero dispersion.
    const double n_hist = static_cast<double>(history_.size());
    const double hist_mean = mean_of_history();
    const double hist_var = var_of_history(hist_mean);
    double best_period = 0.0;
    double best_disp = std::numeric_limits<double>::infinity();
    double smallest_ok = 0.0;
    for (int k = 1; k <= 8; ++k) {
      const double p = p0 / static_cast<double>(k);
      if (n_hist * p / span < static_cast<double>(bins_)) break;
      const double d = phase_dispersion(p, hist_var);
      if (d < best_disp) {
        best_disp = d;
        best_period = p;
      }
    }
    if (best_period <= 0.0 || best_disp > 1.0 - conf_) return;
    for (int k = 8; k >= 1; --k) {
      const double p = p0 / static_cast<double>(k);
      if (n_hist * p / span < static_cast<double>(bins_)) continue;
      if (phase_dispersion(p, hist_var) <= std::max(best_disp * 1.2, best_disp + 0.02)) {
        smallest_ok = p;
        break;
      }
    }
    const double period = smallest_ok > 0.0 ? smallest_ok : best_period;

    build_table(period, hist_mean);
    period_s_ = period;
  }

  double mean_of_history() const {
    double m = 0.0;
    for (const Sample& s : history_) m += s.w;
    return m / static_cast<double>(history_.size());
  }

  double var_of_history(double mean) const {
    double v = 0.0;
    for (const Sample& s : history_) v += (s.w - mean) * (s.w - mean);
    return v / static_cast<double>(history_.size());
  }

  // Normalized within-phase-bin variance of the history folded at period
  // `p`: ~0 when p (or a multiple) is the true period, ~1 when folding
  // scrambles the signal.
  // Scratch buffers are members: detect() runs on every sample and calls
  // this up to ~20 times per re-derivation — no per-call allocations.
  double phase_dispersion(double p, double var) const {
    if (var <= 1e-30) return 1.0;
    auto& sum = scratch_sum_;
    auto& sum2 = scratch_sum2_;
    auto& cnt = scratch_cnt_;
    sum.assign(bins_, 0.0);
    sum2.assign(bins_, 0.0);
    cnt.assign(bins_, 0);
    for (const Sample& s : history_) {
      double phase = std::fmod(s.t, p) / p;
      if (phase < 0.0) phase += 1.0;
      std::size_t b = static_cast<std::size_t>(phase * static_cast<double>(bins_));
      if (b >= bins_) b = bins_ - 1;
      sum[b] += s.w;
      sum2[b] += s.w * s.w;
      ++cnt[b];
    }
    double within = 0.0;
    long n = 0;
    for (std::size_t b = 0; b < bins_; ++b) {
      if (cnt[b] == 0) continue;
      const double m = sum[b] / static_cast<double>(cnt[b]);
      within += sum2[b] - 2.0 * m * sum[b] + static_cast<double>(cnt[b]) * m * m;
      n += cnt[b];
    }
    return (within / static_cast<double>(n)) / var;
  }

  void build_table(double period, double mean) {
    // Phase-indexed income table: per-phase means of the RAW samples
    // (each weighted once — reboot-dense phases do not flood the quiet
    // ones because the bins are phase-local anyway).
    table_.assign(bins_, 0.0);
    auto& counts = scratch_cnt_;
    counts.assign(bins_, 0);
    for (const Sample& s : history_) {
      double phase = std::fmod(s.t, period) / period;
      if (phase < 0.0) phase += 1.0;
      std::size_t b = static_cast<std::size_t>(phase * static_cast<double>(bins_));
      if (b >= bins_) b = bins_ - 1;
      table_[b] += s.w;
      ++counts[b];
    }
    for (std::size_t b = 0; b < bins_; ++b) {
      // Unvisited phases (the device never rebooted there) fall back to
      // the history mean rather than claiming zero income.
      table_[b] = counts[b] > 0 ? table_[b] / static_cast<double>(counts[b]) : mean;
    }
  }

  double prior_, alpha_;
  std::size_t bins_;
  double conf_;
  double est_;  // EMA fallback while no period is confirmed
  std::deque<Sample> history_;
  std::vector<double> table_;  // phase-indexed means (empty when unlocked)
  mutable std::vector<double> scratch_sum_, scratch_sum2_;
  mutable std::vector<long> scratch_cnt_;
  double period_s_ = 0.0;
  long samples_ = 0;
};

constexpr double kDefaultPriorW = 1.2e-3;  // the paper's constant-harvest regime

// THE forecaster-kind table (dispatch + forecaster_kinds(), one place).
struct KindEntry {
  const char* kind;
  std::unique_ptr<HarvestForecaster> (*make)(SpecArgs& a);
};

std::unique_ptr<HarvestForecaster> make_ema_spec(SpecArgs& a) {
  return make_ema_forecaster(a.num("prior", kDefaultPriorW), a.num("alpha", 0.5));
}

std::unique_ptr<HarvestForecaster> make_window_spec(SpecArgs& a) {
  // Range-checked before the cast (out-of-range double-to-size_t is UB).
  const double n = a.num("n", 8.0);
  check(n >= 1.0 && n <= 1e6 && n == std::floor(n),
        "window forecaster: n must be an integer in [1, 1e6]");
  return make_window_forecaster(a.num("prior", kDefaultPriorW),
                                static_cast<std::size_t>(n));
}

std::unique_ptr<HarvestForecaster> make_const_spec(SpecArgs& a) {
  return make_const_forecaster(a.num("w", kDefaultPriorW));
}

std::unique_ptr<HarvestForecaster> make_periodic_spec(SpecArgs& a) {
  const double bins = a.num("bins", 12.0);
  check(bins >= 2.0 && bins <= 1024.0 && bins == std::floor(bins),
        "periodic forecaster: bins must be an integer in [2, 1024]");
  return make_periodic_forecaster(a.num("prior", kDefaultPriorW), a.num("alpha", 0.5),
                                  static_cast<std::size_t>(bins), a.num("conf", 0.6));
}

constexpr KindEntry kKindTable[] = {
    {"ema", make_ema_spec},
    {"window", make_window_spec},
    {"const", make_const_spec},
    {"periodic", make_periodic_spec},
};

}  // namespace

std::unique_ptr<HarvestForecaster> make_ema_forecaster(double prior_w, double alpha) {
  return std::make_unique<EmaForecaster>(prior_w, alpha);
}

std::unique_ptr<HarvestForecaster> make_window_forecaster(double prior_w, std::size_t n) {
  return std::make_unique<WindowForecaster>(prior_w, n);
}

std::unique_ptr<HarvestForecaster> make_const_forecaster(double w) {
  return std::make_unique<ConstForecaster>(w);
}

std::unique_ptr<HarvestForecaster> make_periodic_forecaster(double prior_w, double alpha,
                                                            std::size_t bins,
                                                            double confidence) {
  return std::make_unique<PeriodicForecaster>(prior_w, alpha, bins, confidence);
}

const std::vector<std::string>& forecaster_kinds() {
  static const std::vector<std::string> kinds = [] {
    std::vector<std::string> v;
    for (const auto& k : kKindTable) v.emplace_back(k.kind);
    return v;
  }();
  return kinds;
}

std::unique_ptr<HarvestForecaster> make_forecaster(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  SpecArgs a(spec, colon == std::string::npos ? "" : spec.substr(colon + 1));
  for (const auto& k : kKindTable) {
    if (kind == k.kind) {
      auto fc = k.make(a);
      a.finish();
      return fc;
    }
  }
  std::string known;
  for (const auto& k : kKindTable) known += std::string(known.empty() ? "" : "|") + k.kind;
  fail("forecaster spec \"" + spec + "\": unknown kind \"" + kind + "\" (" + known + ")");
}

}  // namespace ehdnn::sched
