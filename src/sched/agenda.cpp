#include "sched/agenda.h"

#include "sched/adaptive.h"
#include "util/check.h"

namespace ehdnn::sched {

JobQueue::JobQueue(dev::Device& dev, flex::RuntimePolicy& policy,
                   const ace::CompiledModel& primary, const flex::RunOptions& opts,
                   const DeviceAgenda& agenda,
                   const std::vector<std::vector<fx::q15_t>>* job_inputs)
    : dev_(&dev),
      policy_(&policy),
      primary_(&primary),
      opts_(opts),
      agenda_(agenda),
      inputs_(job_inputs),
      ex_(policy) {
  check(dev.supply() != nullptr, "JobQueue: device needs a supply (job timing)");
  check(agenda.jobs >= 1, "JobQueue: agenda needs at least one job");
  check(agenda.period_s > 0.0, "JobQueue: agenda period must be > 0");
  check(job_inputs != nullptr &&
            job_inputs->size() == static_cast<std::size_t>(agenda.jobs),
        "JobQueue: need one input per job");
  if (const AdaptivePolicy* ap = as_adaptive(policy_)) last_switches_ = ap->tier_switches();
  arm_next();
}

void JobQueue::arm_next() {
  const int j = static_cast<int>(records_.size());
  release_s_ = static_cast<double>(j) * agenda_.period_s;
  dev::PowerSupply& supply = *dev_->supply();
  // Park until release: income accrues, nothing is drawn.
  if (supply.now() < release_s_) supply.idle_until(release_s_);
  start_s_ = supply.now();
  ex_.start(*dev_, *primary_, (*inputs_)[static_cast<std::size_t>(j)], opts_);
}

void JobQueue::record_finished() {
  const flex::RunStats st = ex_.take_stats();
  JobRecord r;
  r.job = static_cast<int>(records_.size());
  r.release_s = release_s_;
  r.start_s = start_s_;
  r.finish_s = dev_->supply()->now();
  r.latency_s = r.finish_s - start_s_;
  r.staleness_s = r.finish_s - release_s_;
  r.outcome = st.outcome;
  r.met_deadline = st.completed() && r.staleness_s <= agenda_.deadline_s;
  r.reboots = st.reboots;
  r.checkpoints = st.checkpoints;
  r.progress_commits = st.progress_commits;
  r.energy_j = st.energy_j;
  if (const AdaptivePolicy* ap = as_adaptive(policy_)) {
    r.runtime = ap->current_runtime();
    r.tier_switches = ap->tier_switches() - last_switches_;
    last_switches_ = ap->tier_switches();
  } else {
    r.runtime = agenda_.runtime;
  }
  records_.push_back(std::move(r));
}

bool JobQueue::step() {
  if (done_) return false;
  ++steps_;
  if (ex_.step()) return true;
  record_finished();
  if (static_cast<int>(records_.size()) >= agenda_.jobs) {
    done_ = true;
    return false;
  }
  arm_next();
  return true;
}

}  // namespace ehdnn::sched
