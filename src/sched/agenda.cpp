#include "sched/agenda.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "sched/adaptive.h"
#include "util/check.h"

namespace ehdnn::sched {

JobQueue::JobQueue(dev::Device& dev, flex::RuntimePolicy& policy,
                   const ace::CompiledModel& primary, const flex::RunOptions& opts,
                   const DeviceAgenda& agenda,
                   const std::vector<std::vector<fx::q15_t>>* job_inputs)
    : dev_(&dev),
      policy_(&policy),
      primary_(&primary),
      opts_(opts),
      agenda_(agenda),
      inputs_(job_inputs),
      ex_(policy) {
  check(dev.supply() != nullptr, "JobQueue: device needs a supply (job timing)");
  check(agenda.jobs >= 1, "JobQueue: agenda needs at least one job");
  check(agenda.period_s > 0.0, "JobQueue: agenda period must be > 0");
  check(job_inputs != nullptr &&
            job_inputs->size() == static_cast<std::size_t>(agenda.jobs),
        "JobQueue: need one input per job");
  if (const AdaptivePolicy* ap = as_adaptive(policy_)) last_switches_ = ap->tier_switches();
  // The queue starts parked on job 0's release (t=0): arming — the park,
  // the admission decision, the executor start — happens in the first
  // step(), not here, so a fleet engine can hold thousands of queues and
  // only pay for the ones whose release instant has arrived.
}

bool JobQueue::should_skip(double* reclaimed_j, int* stage) {
  AdaptivePolicy* ap = as_adaptive(policy_);
  if (ap == nullptr || ap->spec().admit != Admission::kBudget) return false;
  if (!std::isfinite(agenda_.deadline_s)) return false;
  // No observed income yet means no evidence: never refuse a release on
  // the prior alone.
  if (ap->forecaster().samples() == 0) return false;
  // Two-stage admission. Stage one — CERTAIN skips: the time budget left
  // is below the fastest tier's continuous-power time, so the release
  // cannot meet its deadline even if the harvester delivered unbounded
  // income (this is what sheds a backlog of already-late releases after
  // a long outage). Pure calibrated cost model, no forecast involved;
  // the 0.9 margin absorbs the input-dependence of modeled FFT scaling.
  const double budget_s =
      release_s_ + agenda_.deadline_s + ap->spec().admit_slack_s - start_s_;
  if (budget_s < 0.9 * ap->predict_optimistic_s(*dev_, *primary_)) {
    *reclaimed_j = ap->reclaimable_energy_j();
    *stage = 1;
    return true;
  }
  // Stage two — FORECAST skips: the predicted completion under the
  // income curve misses the budget. Forecasts can be wrong, so this
  // stage only fires once the periodic forecaster has CONFIRMED a
  // period, and the probe valve admits every probe_skips-th consecutive
  // skip regardless (skipped releases record no samples; probing bounds
  // how long a stale forecast can refuse work).
  if (ap->forecaster().period_s() <= 0.0) return false;
  if (consecutive_skips_ >= ap->spec().probe_skips) return false;
  const double predicted = ap->predict_best_completion_s(*dev_, *primary_);
  if (std::getenv("EHDNN_ADMIT_DEBUG") != nullptr) {
    std::fprintf(stderr, "admit? rel %.3f start %.3f pred %.4f fcast %.5g period %.4g\n",
                 release_s_, start_s_, predicted, ap->forecaster().forecast_w(),
                 ap->forecaster().period_s());
  }
  if (predicted <= budget_s) return false;
  *reclaimed_j = ap->reclaimable_energy_j();
  *stage = 2;
  return true;
}

void JobQueue::arm_next() {
  while (true) {
    const int j = static_cast<int>(records_.size());
    release_s_ = static_cast<double>(j) * agenda_.period_s;
    dev::PowerSupply& supply = *dev_->supply();
    // Park until release: income accrues, nothing is drawn.
    if (supply.now() < release_s_) {
      obs::record(opts_.trace, supply.now(), obs::EventKind::kPark, j);
      supply.idle_until(release_s_);
    }
    start_s_ = supply.now();
    obs::record(opts_.trace, start_s_, obs::EventKind::kJobRelease, j);
    opts_.deadline_s = std::isfinite(agenda_.deadline_s)
                           ? release_s_ + agenda_.deadline_s
                           : std::numeric_limits<double>::infinity();
    double reclaimed_j = 0.0;
    int stage = 0;
    if (!should_skip(&reclaimed_j, &stage)) {
      consecutive_skips_ = 0;
      obs::record(opts_.trace, start_s_, obs::EventKind::kJobAdmit, j);
      ex_.start(*dev_, *primary_, (*inputs_)[static_cast<std::size_t>(j)], opts_);
      return;
    }
    // Infeasible release: record the verdict without booting the run.
    obs::record(opts_.trace, start_s_, obs::EventKind::kJobSkip, j);
    ++consecutive_skips_;
    JobRecord r;
    r.job = j;
    r.release_s = release_s_;
    r.start_s = start_s_;
    r.finish_s = start_s_;
    r.skipped_infeasible = true;
    r.energy_reclaimed_j = reclaimed_j;
    r.skip_stage = stage;
    r.runtime = agenda_.runtime;
    records_.push_back(std::move(r));
    if (static_cast<int>(records_.size()) >= agenda_.jobs) {
      done_ = true;
      return;
    }
  }
}

void JobQueue::record_finished() {
  const flex::RunStats st = ex_.take_stats();
  JobRecord r;
  r.job = static_cast<int>(records_.size());
  r.release_s = release_s_;
  r.start_s = start_s_;
  r.finish_s = dev_->supply()->now();
  r.latency_s = r.finish_s - start_s_;
  r.staleness_s = r.finish_s - release_s_;
  r.outcome = st.outcome;
  r.met_deadline = st.completed() && r.staleness_s <= agenda_.deadline_s;
  r.livelock = st.livelock;
  obs::record(opts_.trace, r.finish_s,
              st.completed() ? obs::EventKind::kJobComplete : obs::EventKind::kJobMiss,
              r.job, r.met_deadline ? 1 : 0);
  r.reboots = st.reboots;
  r.checkpoints = st.checkpoints;
  r.progress_commits = st.progress_commits;
  r.energy_j = st.energy_j;
  if (const AdaptivePolicy* ap = as_adaptive(policy_)) {
    r.runtime = ap->current_runtime();
    r.tier_switches = ap->tier_switches() - last_switches_;
    last_switches_ = ap->tier_switches();
  } else {
    r.runtime = agenda_.runtime;
  }
  records_.push_back(std::move(r));
}

double JobQueue::next_time_s() const {
  if (done_) return std::numeric_limits<double>::infinity();
  if (parked_) {
    const double release =
        static_cast<double>(records_.size()) * agenda_.period_s;
    return std::max(release, dev_->supply()->now());
  }
  return ex_.next_actionable_s();
}

bool JobQueue::step() {
  if (done_) return false;
  ++steps_;
  if (parked_) {
    arm_next();  // may finish the agenda by skipping every remaining release
    if (!done_) parked_ = false;
    return !done_;
  }
  if (ex_.step()) return true;
  record_finished();
  if (static_cast<int>(records_.size()) >= agenda_.jobs) {
    done_ = true;
    return false;
  }
  parked_ = true;  // next step parks to the following release and re-arms
  return true;
}

}  // namespace ehdnn::sched
