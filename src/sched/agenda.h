// Duty-cycled recurring inference: a device does not run ONE inference,
// it owes a stream of them — sample, infer, report, sleep, repeat. The
// DeviceAgenda says what it owes (how many jobs, released how often, due
// when); the JobQueue executes the agenda on one device, job by job,
// through the incremental IntermittentExecutor API, and records what
// every job actually did: completion, deadline verdict, staleness, and —
// under the adaptive scheduler — which runtime tier finished it.
//
// Time is supply time (PowerSupply::now()): job j is released at
// j * period_s; between a job's completion and the next release the
// device parks in PowerSupply::idle_until, where harvest income keeps
// charging the capacitor but nothing is drawn. Staleness is
// finish - release — what the paper's intermittent-latency numbers
// become once inference is recurring rather than one-shot.
//
// Under an adaptive policy with admit=budget the queue also runs
// energy-budgeted admission: a release whose best-tier predicted
// completion (sched::CompletionModel) misses the deadline by more than
// the configured slack is recorded as skipped_infeasible instead of
// burning the capacitor on a doomed run — the charge survives for the
// next release, which is how skipping can only help later deadlines.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/flex/executor.h"

namespace ehdnn::sched {

struct DeviceAgenda {
  std::string runtime = "flex";  // runtime key (informational in records;
                                 // the queue runs whatever policy it is given)
  int jobs = 1;                  // inferences owed
  double period_s = 0.1;         // release period (must be > 0)
  double deadline_s = std::numeric_limits<double>::infinity();  // relative
};

struct JobRecord {
  int job = 0;
  double release_s = 0.0;    // j * period_s
  double start_s = 0.0;      // supply time when armed (>= release)
  double finish_s = 0.0;
  double latency_s = 0.0;    // finish - start
  double staleness_s = 0.0;  // finish - release (the deadline clock)
  flex::Outcome outcome = flex::Outcome::kDidNotFinish;
  bool met_deadline = false;  // completed && staleness <= deadline
  // DNF via the executor's futile-boot watchdog (RunOptions::
  // max_futile_boots): the run was spinning without banking progress.
  // Reported as the per-job verdict "livelock" in the FLEET v4 schema.
  bool livelock = false;
  // Energy-budgeted admission refused this release: the best tier's
  // predicted completion missed the deadline by more than the configured
  // slack, so the run never started and the capacitor kept its charge for
  // the next release. Reported as the per-job verdict
  // "skipped_infeasible" in the FLEET v3 schema.
  bool skipped_infeasible = false;
  // Lower bound on the energy the skipped run would have burned (the
  // cheapest calibrated tier's per-inference energy); 0 for run jobs.
  double energy_reclaimed_j = 0.0;
  // Which admission stage refused a skipped release: 0 for admitted jobs,
  // 1 for a CERTAIN skip (the time budget is below the fastest tier's
  // continuous-power time — pure cost model), 2 for a FORECAST skip (the
  // predicted completion under the income curve misses the budget; this
  // is the stage the probe valve bounds). The contract checker
  // (sched/contracts.h) keys its soundness exception class on this.
  int skip_stage = 0;
  std::string runtime;        // completing tier (adaptive) or the fixed key
  long reboots = 0;
  long checkpoints = 0;
  long progress_commits = 0;
  long tier_switches = 0;  // adaptive mid-run switches during this job
  double energy_j = 0.0;
};

// Drives one device's agenda. Non-owning over device/policy/model/inputs;
// all must outlive the queue. The device must have a supply attached
// (job timing is supply time).
class JobQueue {
 public:
  JobQueue(dev::Device& dev, flex::RuntimePolicy& policy,
           const ace::CompiledModel& primary, const flex::RunOptions& opts,
           const DeviceAgenda& agenda,
           const std::vector<std::vector<fx::q15_t>>* job_inputs);

  // Advances by one bounded slice. While parked, one step parks the
  // supply to the pending release (income accrues, nothing is drawn),
  // runs admission, and arms the executor; while a run is live, one step
  // is one executor slice. Returns true while the agenda has work left;
  // a finished queue returns false.
  bool step();

  bool finished() const { return done_; }

  // The next instant (supply time) at which step() will do real work:
  // the pending release while parked (or the supply's current time if the
  // release is already past), the live run's next actionable instant
  // otherwise, +infinity once the agenda is done. The fleet's next-event
  // engine keys its priority queue on this, which is what lets parked
  // devices cost zero slices.
  double next_time_s() const;

  const std::vector<JobRecord>& records() const { return records_; }
  long steps() const { return steps_; }

 private:
  void arm_next();
  void record_finished();
  // Energy-budgeted admission (adaptive policies with admit=budget): true
  // when the just-released job should be skipped because the best tier's
  // predicted completion misses the deadline by more than the slack.
  // `stage` reports which stage refused (JobRecord::skip_stage values).
  bool should_skip(double* reclaimed_j, int* stage);

  dev::Device* dev_;
  flex::RuntimePolicy* policy_;
  const ace::CompiledModel* primary_;
  flex::RunOptions opts_;
  DeviceAgenda agenda_;
  const std::vector<std::vector<fx::q15_t>>* inputs_;

  flex::IntermittentExecutor ex_;
  std::vector<JobRecord> records_;
  double release_s_ = 0.0;
  double start_s_ = 0.0;
  long last_switches_ = 0;
  long steps_ = 0;
  int consecutive_skips_ = 0;  // admission probe valve (see should_skip)
  bool parked_ = true;         // next step arms (parks + admits) rather than slices
  bool done_ = false;
};

}  // namespace ehdnn::sched
