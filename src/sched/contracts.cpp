#include "sched/contracts.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <thread>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "device/device.h"
#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/simple_layers.h"
#include "power/capacitor.h"
#include "power/factory.h"
#include "power/monitor.h"
#include "quant/quantize.h"
#include "util/check.h"
#include "util/rng.h"

namespace ehdnn::sched::contract {

namespace {

// ---------------------------------------------------------------- fixture
//
// The enumeration fixture: one tiny compressed/dense deployment pair
// (the sched test suite's tiny model geometry — every kernel kind, small
// enough for thousands of runs), one deterministic input, and the
// calibrated per-tier costs every world shares. Worlds differ only in
// their power geometry and agenda, so this is computed once.

nn::Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-0.9, 0.9));
  }
  return t;
}

quant::QuantModel tiny_compressed(Rng& rng) {
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::BcmDense>(2 * 4 * 4, 16, 16)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(16, 4)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 10, 10}, rng));
  return quant::quantize(m, calib, {1, 10, 10});
}

quant::QuantModel tiny_dense(Rng& rng) {
  nn::Model m;
  m.add<nn::Conv2D>(1, 2, 3, 3)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  m.add<nn::Dense>(2 * 4 * 4, 16)->init(rng);
  m.add<nn::ReLU>();
  m.add<nn::Dense>(16, 4)->init(rng);
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(random_tensor({1, 10, 10}, rng));
  return quant::quantize(m, calib, {1, 10, 10});
}

struct Fixture {
  quant::QuantModel qm_c;
  quant::QuantModel qm_d;
  std::size_t fram_words = 0;
  std::vector<fx::q15_t> input;  // one deterministic input, reused per job
  CompletionModel cmpl;          // shared calibration (scratch, continuous)
  std::map<std::string, int> energy_rank;  // decide_deadline's tier order
  std::map<std::string, int> ladder_rank;  // richest (0) to leanest (4)
};

const Fixture& fixture() {
  static const Fixture fx_ = [] {
    Fixture f;
    Rng rng(0x5eed);
    f.qm_c = tiny_compressed(rng);
    f.qm_d = tiny_dense(rng);
    // FRAM sized like the fleet does it: compile both variants co-resident
    // on a scratch device, keep the high-water mark plus slack.
    {
      dev::DeviceConfig big;
      big.fram_words = 1 << 22;
      dev::Device scratch(big);
      ace::compile(f.qm_c, scratch);
      const std::size_t used =
          ace::compile(f.qm_d, scratch, /*co_resident=*/true).fram_words_used;
      f.fram_words = used + 1024;
    }
    const std::size_t in_size = f.qm_c.layers.front().in_size();
    f.input.resize(in_size);
    Rng in_rng(0xf1ee7);
    for (auto& v : f.input) v = static_cast<fx::q15_t>(in_rng.next_u64());
    // The shared calibration: identical to what every world's policy
    // computes lazily (scratch replica, bench power), used here only to
    // rank tiers by calibrated energy for the CONTRACT-3 deadline check.
    {
      dev::DeviceConfig dcfg;
      dcfg.fram_words = f.fram_words;
      dev::Device scratch(dcfg);
      const ace::CompiledModel cm_c = ace::compile(f.qm_c, scratch);
      const ace::CompiledModel cm_d =
          ace::compile(f.qm_d, scratch, /*co_resident=*/true);
      f.cmpl = CompletionModel::calibrate(cm_c, &cm_d, dcfg);
    }
    std::vector<int> order(f.cmpl.tiers().size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double ea = f.cmpl.tiers()[static_cast<std::size_t>(a)].energy_j;
      const double eb = f.cmpl.tiers()[static_cast<std::size_t>(b)].energy_j;
      return ea != eb ? ea < eb : a < b;
    });
    for (std::size_t r = 0; r < order.size(); ++r) {
      f.energy_rank[f.cmpl.tiers()[static_cast<std::size_t>(order[r])].key] =
          static_cast<int>(r);
    }
    f.ladder_rank = {{"base", 0}, {"ace", 1}, {"flex", 2}, {"sonic", 3}, {"tile", 4}};
    return f;
  }();
  return fx_;
}

// ---------------------------------------------------------- serialization

std::string fmt_g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Splits "key=value" at the FIRST '=' (values may contain '=' again:
// source/sched specs).
std::pair<std::string, std::string> split_kv(const std::string& tok,
                                             const std::string& line) {
  const std::size_t eq = tok.find('=');
  ehdnn::check(eq != std::string::npos && eq > 0,
        "contract world \"" + line + "\": expected key=value, got \"" + tok + "\"");
  return {tok.substr(0, eq), tok.substr(eq + 1)};
}

double parse_double(const std::string& v, const std::string& line) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  ehdnn::check(end != nullptr && *end == '\0' && !v.empty(),
        "contract world \"" + line + "\": bad number \"" + v + "\"");
  return d;
}

int parse_int(const std::string& v, const std::string& line) {
  const double d = parse_double(v, line);
  ehdnn::check(d == std::floor(d) && std::abs(d) < 1e9,
        "contract world \"" + line + "\": bad integer \"" + v + "\"");
  return static_cast<int>(d);
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

}  // namespace

std::string serialize_world(const World& w) {
  std::string s = "world id=" + std::to_string(w.id);
  s += " src=" + w.source;
  s += " cap=" + fmt_g17(w.cap_f);
  s += " von=" + fmt_g17(w.v_on);
  s += " period=" + fmt_g17(w.period_s);
  s += " dl=" + fmt_g17(w.deadline_s);
  s += " jobs=" + std::to_string(w.jobs);
  s += " sched=" + w.sched;
  return s;
}

std::string serialize_world(const RelockWorld& w) {
  std::string s = "relock id=" + std::to_string(w.id);
  s += " p1=" + fmt_g17(w.p1_s);
  s += " p2=" + fmt_g17(w.p2_s);
  s += " hi=" + fmt_g17(w.hi_w);
  s += " lo=" + fmt_g17(w.lo_w);
  return s;
}

World parse_world(const std::string& line) {
  const std::vector<std::string> toks = tokens_of(line);
  ehdnn::check(!toks.empty() && toks.front() == "world",
        "contract world \"" + line + "\": expected a line starting with 'world'");
  World w;
  int seen = 0;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const auto [k, v] = split_kv(toks[i], line);
    if (k == "id") {
      w.id = parse_int(v, line);
    } else if (k == "src") {
      w.source = v;
    } else if (k == "cap") {
      w.cap_f = parse_double(v, line);
    } else if (k == "von") {
      w.v_on = parse_double(v, line);
    } else if (k == "period") {
      w.period_s = parse_double(v, line);
    } else if (k == "dl") {
      w.deadline_s = parse_double(v, line);
    } else if (k == "jobs") {
      w.jobs = parse_int(v, line);
    } else if (k == "sched") {
      w.sched = v;
    } else {
      fail("contract world \"" + line + "\": unknown key \"" + k + "\"");
    }
    ++seen;
  }
  ehdnn::check(seen == 8, "contract world \"" + line + "\": expected 8 key=value fields");
  ehdnn::check(!w.source.empty() && !w.sched.empty() && w.jobs >= 1 && w.cap_f > 0.0 &&
            w.v_on > 0.0 && w.period_s > 0.0 && w.deadline_s > 0.0,
        "contract world \"" + line + "\": out-of-range field");
  return w;
}

RelockWorld parse_relock_world(const std::string& line) {
  const std::vector<std::string> toks = tokens_of(line);
  ehdnn::check(!toks.empty() && toks.front() == "relock",
        "contract world \"" + line + "\": expected a line starting with 'relock'");
  RelockWorld w;
  int seen = 0;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const auto [k, v] = split_kv(toks[i], line);
    if (k == "id") {
      w.id = parse_int(v, line);
    } else if (k == "p1") {
      w.p1_s = parse_double(v, line);
    } else if (k == "p2") {
      w.p2_s = parse_double(v, line);
    } else if (k == "hi") {
      w.hi_w = parse_double(v, line);
    } else if (k == "lo") {
      w.lo_w = parse_double(v, line);
    } else {
      fail("contract world \"" + line + "\": unknown key \"" + k + "\"");
    }
    ++seen;
  }
  ehdnn::check(seen == 5, "contract world \"" + line + "\": expected 5 key=value fields");
  ehdnn::check(w.p1_s > 0.0 && w.p2_s > 0.0 && w.p1_s != w.p2_s && w.hi_w > w.lo_w &&
            w.lo_w >= 0.0,
        "contract world \"" + line + "\": out-of-range field");
  return w;
}

// ------------------------------------------------------------------ grids
//
// Axis values are chosen against the tiny deployment's calibrated costs
// (contract_checker --calibration prints them; CONTRACTS.md records the
// numbers): incomes straddle the tiers' continuous draw rates, capacitor
// size x v_on spans bursts from "several per inference" to "one burst
// covers it", job periods and deadline fractions straddle the per-tier
// completion times so every admission branch (run / certain-skip /
// forecast-skip / probe) is exercised somewhere in the grid.

std::vector<World> world_grid(Depth d) {
  const bool full = d == Depth::kFull;
  // Income shapes: constants (lean / mid) plus square waves whose periods
  // the periodic forecaster can lock within a run, with lean-to-blackout
  // lows. Square periods sit well above the job periods so whole jobs
  // land inside single phases.
  // The tiny fixture draws ~4.2 mW continuous on the compressed tiers and
  // needs ~5.5 uJ per inference (contract_checker --calibration): incomes
  // straddle the draw rate, bursts span 0.13x..1.1x the inference energy
  // (multi-cycle through single-burst), and deadline fractions straddle
  // the 1.3 ms..~500 ms per-world completion range.
  const std::vector<std::string> sources =
      full ? std::vector<std::string>{"const:w=0.12e-3",
                                      "const:w=0.6e-3",
                                      "const:w=2.5e-3",
                                      "square:hi=5e-3,lo=0.05e-3,period=0.8,duty=0.5",
                                      "square:hi=4e-3,lo=0.2e-3,period=1.6,duty=0.25",
                                      "square:hi=6e-3,lo=0.02e-3,period=0.4,duty=0.5"}
           : std::vector<std::string>{"const:w=0.12e-3",
                                      "const:w=2.5e-3",
                                      "square:hi=5e-3,lo=0.05e-3,period=0.8,duty=0.5",
                                      "square:hi=6e-3,lo=0.02e-3,period=0.4,duty=0.5"};
  const std::vector<double> caps =
      full ? std::vector<double>{0.33e-6, 0.68e-6, 1.5e-6}
           : std::vector<double>{0.33e-6, 1.5e-6};
  const std::vector<double> vons =
      full ? std::vector<double>{3.0, 3.3, 3.6} : std::vector<double>{3.0, 3.6};
  const std::vector<double> periods =
      full ? std::vector<double>{0.05, 0.15, 0.4} : std::vector<double>{0.05, 0.4};
  const std::vector<double> dl_fracs =
      full ? std::vector<double>{0.3, 0.7, 1.5, 3.0} : std::vector<double>{0.3, 1.5};
  const std::vector<std::string> scheds = {
      "adaptive:sel=deadline,admit=budget,fc=periodic,conf=0.55,probe=2",
      "adaptive:sel=deadline,admit=budget,fc=ema,alpha=0.5,probe=3,slack=0.02",
      "adaptive:sel=income,admit=all,fc=ema,alpha=0.6,rich=1.5e-3",
  };
  std::vector<World> out;
  int id = 0;
  for (const auto& src : sources) {
    for (const double cap : caps) {
      for (const double von : vons) {
        for (const double period : periods) {
          for (const double frac : dl_fracs) {
            for (const auto& sched : scheds) {
              World w;
              w.id = id++;
              w.source = src;
              w.cap_f = cap;
              w.v_on = von;
              w.period_s = period;
              w.deadline_s = frac * period;
              w.jobs = 6;
              w.sched = sched;
              out.push_back(std::move(w));
            }
          }
        }
      }
    }
  }
  // Lock worlds: long-horizon runs tuned so the ON-DEVICE periodic
  // forecaster confirms a lock mid-run, exercising stage-2 (FORECAST)
  // admission and the probe valve. The recipe (verified empirically, see
  // CONTRACTS.md): a capacitor too small for even a full charge to cover
  // one inference (everything multi-cycles, so recharge gaps sample the
  // true income all run long), a square hi BELOW the ~4.2 mW draw (the
  // device keeps power-cycling in both phases), a job period
  // incommensurate with the source period (releases sweep the phase),
  // and enough jobs to span >= 3 source periods before the lock gate.
  const std::vector<std::string> lock_sources =
      full ? std::vector<std::string>{"square:hi=2e-3,lo=0.2e-3,period=0.4,duty=0.5",
                                      "square:hi=2.5e-3,lo=0.05e-3,period=0.6,duty=0.5"}
           : std::vector<std::string>{"square:hi=2e-3,lo=0.2e-3,period=0.4,duty=0.5"};
  const std::vector<double> lock_vons =
      full ? std::vector<double>{3.0, 3.3} : std::vector<double>{3.0};
  for (const auto& src : lock_sources) {
    for (const double von : lock_vons) {
      for (const double frac : {0.3, 0.7}) {
        World w;
        w.id = id++;
        w.source = src;
        w.cap_f = 0.33e-6;
        w.v_on = von;
        w.period_s = 0.07;
        w.deadline_s = frac * w.period_s;
        w.jobs = 40;
        w.sched = scheds[0];  // the periodic-forecaster deadline sched
        out.push_back(std::move(w));
      }
    }
  }
  return out;
}

std::vector<RelockWorld> relock_grid(Depth d) {
  const bool full = d == Depth::kFull;
  const std::vector<double> periods = {0.4, 0.9, 2.0};
  const std::vector<std::pair<double, double>> levels =
      full ? std::vector<std::pair<double, double>>{{3e-3, 0.05e-3},
                                                    {6e-3, 0.4e-3},
                                                    {3e-3, 0.4e-3},
                                                    {6e-3, 0.05e-3}}
           : std::vector<std::pair<double, double>>{{3e-3, 0.05e-3}};
  std::vector<RelockWorld> out;
  int id = 0;
  for (const double p1 : periods) {
    for (const double p2 : periods) {
      if (p1 == p2) continue;
      for (const auto& [hi, lo] : levels) {
        RelockWorld w;
        w.id = id++;
        w.p1_s = p1;
        w.p2_s = p2;
        w.hi_w = hi;
        w.lo_w = lo;
        out.push_back(w);
      }
    }
  }
  return out;
}

// ------------------------------------------------------------ world runs

namespace {

// Slice budget per single run. Worlds terminate on their own (futile-boot
// watchdog + starvation guard); the budget is a harness backstop that
// turns a would-be hang into a contract-0 violation, never expected on
// the committed grids.
constexpr long kMaxStepsPerRun = 4'000'000;

struct SingleRun {
  std::vector<JobRecord> records;
  std::vector<TierDecision> decisions;
  long steps = 0;
  bool aborted = false;
};

SingleRun run_single(const World& w, bool force_admit_all) {
  const Fixture& fx_ = fixture();
  SingleRun out;

  const std::unique_ptr<power::HarvestSource> src = power::make_harvest_source(w.source);
  power::CapacitorConfig ccfg;
  ccfg.capacitance_f = w.cap_f;
  ccfg.v_on = w.v_on;
  power::CapacitorSupply supply(*src, ccfg);

  dev::DeviceConfig dcfg;
  dcfg.fram_words = fx_.fram_words;
  dev::Device dev(dcfg);
  dev.attach_supply(&supply);
  const ace::CompiledModel cm_c = ace::compile(fx_.qm_c, dev);
  const ace::CompiledModel cm_d = ace::compile(fx_.qm_d, dev, /*co_resident=*/true);

  AdaptiveSpec spec = parse_adaptive_spec(w.sched);
  if (force_admit_all) spec.admit = Admission::kAll;
  std::unique_ptr<flex::RuntimePolicy> policy = make_adaptive_policy(std::move(spec));
  const double worst_ck =
      provision_deployment(*policy, dev.cost(), cm_c, &cm_d, supply.burst_energy());

  flex::RunOptions opts;
  opts.max_futile_boots = 400;
  opts.flex_v_warn = power::warn_voltage_for(supply.config(), worst_ck + 5e-6, 3.0);

  AdaptivePolicy* ap = as_adaptive(policy.get());
  ehdnn::check(ap != nullptr, "contract world: sched spec must be adaptive");
  ap->set_decision_log(&out.decisions);

  DeviceAgenda agenda;
  agenda.runtime = "adaptive";
  agenda.jobs = w.jobs;
  agenda.period_s = w.period_s;
  agenda.deadline_s = w.deadline_s;
  const std::vector<std::vector<fx::q15_t>> inputs(
      static_cast<std::size_t>(w.jobs), fx_.input);

  JobQueue q(dev, *policy, cm_c, opts, agenda, &inputs);
  while (q.step()) {
    if (q.steps() > kMaxStepsPerRun) {
      out.aborted = true;
      break;
    }
  }
  out.records = q.records();
  out.steps = q.steps();
  return out;
}

}  // namespace

WorldResult run_world(const World& w) {
  WorldResult r;
  const AdaptiveSpec spec = parse_adaptive_spec(w.sched);
  SingleRun budget = run_single(w, /*force_admit_all=*/false);
  // admit=all worlds are their own twin: one run, identical verdicts.
  const bool twin_needed = spec.admit == Admission::kBudget;
  SingleRun all = twin_needed ? run_single(w, /*force_admit_all=*/true)
                              : SingleRun{budget.records, {}, budget.steps, budget.aborted};
  r.budget_steps = budget.steps;
  r.all_steps = all.steps;
  r.budget_decisions = std::move(budget.decisions);
  if (budget.aborted || all.aborted) {
    r.jobs.clear();
    r.budget_steps = budget.aborted ? -1 : r.budget_steps;
    r.all_steps = all.aborted ? -1 : r.all_steps;
    return r;
  }
  const std::size_t n = std::min(budget.records.size(), all.records.size());
  for (std::size_t j = 0; j < n; ++j) {
    JobOutcome o;
    o.job = static_cast<int>(j);
    o.budget_skipped = budget.records[j].skipped_infeasible;
    o.budget_stage = budget.records[j].skip_stage;
    o.budget_met = budget.records[j].met_deadline;
    o.all_met = all.records[j].met_deadline;
    r.jobs.push_back(o);
  }
  return r;
}

// ------------------------------------------------------------- contracts

namespace {

// CONTRACT-1 + CONTRACT-2b + stats over one world's twin evidence.
void check_world(const World& w, const WorldResult& res, const AdaptiveSpec& spec,
                 Report& rep) {
  const std::string ser = serialize_world(w);
  Stats& st = rep.stats;
  ++st.worlds;
  if (res.budget_steps < 0 || res.all_steps < 0) {
    rep.violations.push_back(
        {0, ser, "harness: slice budget exceeded before the agenda finished"});
    return;
  }
  int streak = 0;  // consecutive skips so far (position of the next skip)
  for (const JobOutcome& o : res.jobs) {
    ++st.jobs;
    if (!o.budget_skipped) {
      if (streak > 0) ++st.skip_streaks;
      streak = 0;
      ++st.run_jobs;
      if (o.budget_met) ++st.met_budget;
      if (o.all_met) ++st.met_all;
      continue;
    }
    if (o.all_met) ++st.met_all;
    if (o.budget_stage == 1) ++st.skips_stage1;
    if (o.budget_stage == 2) ++st.skips_stage2;
    // CONTRACT-2b: the probe valve admits every release once probe_skips
    // consecutive skips have accrued — a stage-2 (forecast) skip at streak
    // position >= probe_skips means the valve failed and a stale forecast
    // could refuse work forever.
    if (o.budget_stage == 2 && streak >= spec.probe_skips) {
      rep.violations.push_back(
          {2, ser,
           "job " + std::to_string(o.job) + ": forecast skip at streak position " +
               std::to_string(streak) + " >= probe=" + std::to_string(spec.probe_skips)});
    }
    // CONTRACT-1: a skipped job the admit-all twin completed in deadline.
    // Stage 2 is the documented exception class (forecasts may be wrong;
    // the probe valve bounds the damage). Stage 1 claims CERTAINTY — the
    // twin completing in deadline disproves it: a real violation.
    if (o.all_met) {
      if (o.budget_stage == 2) {
        ++st.excused_probe;
      } else {
        rep.violations.push_back(
            {1, ser,
             "job " + std::to_string(o.job) + ": stage-" +
                 std::to_string(o.budget_stage) +
                 " skip but the admit-all twin met the deadline"});
      }
    }
    ++streak;
  }
  if (streak > 0) ++st.skip_streaks;
}

// CONTRACT-3 over one run's decision log.
void check_stability(const World& w, const std::vector<TierDecision>& ds,
                     const AdaptiveSpec& spec, Report& rep) {
  const Fixture& fx_ = fixture();
  const std::string ser = serialize_world(w);
  Stats& st = rep.stats;
  st.decisions += static_cast<long>(ds.size());

  // Demote-ladder monotonicity (both modes): a demotion is the policy
  // reacting to a futile boot — once taken, no later decision within the
  // SAME job (same absolute deadline) may re-select a tier below the
  // demote floor on the resilience ladder. Ladder rank is the
  // base<ace<flex<sonic<tile resilience order, not calibrated energy.
  {
    double job_key = std::numeric_limits<double>::quiet_NaN();
    int floor_rank = -1;
    std::string floor_tier;
    for (const auto& d : ds) {
      if (d.deadline_s != job_key) {  // job boundary: the floor resets
        job_key = d.deadline_s;
        floor_rank = -1;
        floor_tier.clear();
      }
      const int r = fx_.ladder_rank.at(d.tier);
      if (d.demote) {
        ++st.demotes;
        if (r > floor_rank) {
          floor_rank = r;
          floor_tier = d.tier;
        }
      } else if (floor_rank >= 0 && r < floor_rank) {
        rep.violations.push_back(
            {3, ser,
             "un-demote flap: demoted to " + floor_tier + " but re-selected " + d.tier +
                 " at t=" + fmt_g17(d.t_s) + " within the same job"});
      }
    }
  }

  if (spec.sel == TierSelect::kIncome) {
    // Income mode: the fresh decision is a pure function of the forecast
    // value (the forced tile/sonic bands are static per world), and the
    // ladder is monotone — a richer forecast never picks a leaner tier.
    // Checked across the WHOLE run: sort non-demote decisions by forecast
    // and require equal-forecast groups to agree and ladder rank to be
    // non-increasing in the forecast.
    std::vector<const TierDecision*> fresh;
    for (const auto& d : ds) {
      if (!d.demote) fresh.push_back(&d);
    }
    std::stable_sort(fresh.begin(), fresh.end(),
                     [](const TierDecision* a, const TierDecision* b) {
                       return a->forecast_w < b->forecast_w;
                     });
    for (std::size_t i = 1; i < fresh.size(); ++i) {
      ++st.income_pairs;
      const int r_prev = fx_.ladder_rank.at(fresh[i - 1]->tier);
      const int r_cur = fx_.ladder_rank.at(fresh[i]->tier);
      if (fresh[i]->forecast_w == fresh[i - 1]->forecast_w) {
        if (fresh[i]->tier != fresh[i - 1]->tier) {
          rep.violations.push_back(
              {3, ser,
               "income flap: equal forecast " + fmt_g17(fresh[i]->forecast_w) +
                   " picked " + fresh[i - 1]->tier + " and " + fresh[i]->tier});
        }
      } else if (r_cur > r_prev) {
        rep.violations.push_back(
            {3, ser,
             "income ladder not monotone: forecast " + fmt_g17(fresh[i - 1]->forecast_w) +
                 " -> " + fresh[i - 1]->tier + " but richer " +
                 fmt_g17(fresh[i]->forecast_w) + " -> leaner " + fresh[i]->tier});
      }
    }
    return;
  }

  // Deadline mode. While no period lock is held the forecast curve is
  // flat, so the fresh decision is a PURE FUNCTION of three numbers: the
  // remaining budget (deadline - now), the forecast value, and the flex
  // overhead estimate — everything else decide_deadline reads (forced
  // bands, calibration, burst energy) is static per world. Flap-freedom
  // is therefore: two decisions with a bit-identical evidence key pick
  // the SAME tier. Equal keys genuinely recur — the EMA forecast and
  // overhead converge bit-exactly over steady income, and jobs released
  // on time share the same remaining budget at first boot. A per-boot
  // "unchanged evidence" segment check would be vacuous instead: the
  // policy records an income sample at exactly every event that triggers
  // a re-decide, so consecutive decisions almost never share evidence.
  // Locked-curve decisions are excluded (the phase-indexed forecast is a
  // legitimately time-varying input; CONTRACTS.md documents the
  // carve-out).
  struct Keyed {
    double budget, forecast, ovh;
    const TierDecision* d;
  };
  std::vector<Keyed> keyed;
  for (const auto& d : ds) {
    if (d.demote || d.fc_period_s > 0.0) continue;
    keyed.push_back({d.deadline_s - d.t_s, d.forecast_w, d.ovh_j, &d});
  }
  std::stable_sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.budget != b.budget) return a.budget < b.budget;
    if (a.forecast != b.forecast) return a.forecast < b.forecast;
    return a.ovh < b.ovh;
  });
  for (std::size_t i = 1; i < keyed.size(); ++i) {
    const Keyed& a = keyed[i - 1];
    const Keyed& b = keyed[i];
    if (a.budget != b.budget || a.forecast != b.forecast || a.ovh != b.ovh) continue;
    ++st.deadline_seqs;
    if (a.d->tier != b.d->tier) {
      rep.violations.push_back(
          {3, ser,
           "deadline flap: equal evidence (budget=" + fmt_g17(a.budget) +
               " forecast=" + fmt_g17(a.forecast) + " ovh=" + fmt_g17(a.ovh) +
               ") picked " + a.d->tier + " at t=" + fmt_g17(a.d->t_s) + " and " +
               b.d->tier + " at t=" + fmt_g17(b.d->t_s)});
    }
  }
}

// CONTRACT-2a: lock onto p1, switch the truth to p2, require resolution
// (drop, or a lock consistent with the new truth) within kMaxPeriods.
// The periodic forecaster's phase-dispersion gate needs >= bins (12)
// samples per candidate period to fill its fold bins; 25 keeps both the
// true-period lag and its k=2 sub-multiple refinement above the gate.
constexpr int kSamplesPerPeriod = 25;
constexpr int kLockPeriods = 8;
constexpr int kMaxPeriods = 20;

bool lock_matches(double period, double truth, int max_multiple) {
  for (int k = 1; k <= max_multiple; ++k) {
    if (std::abs(period - k * truth) <= 0.15 * truth) return true;
  }
  return false;
}

void check_relock(const RelockWorld& w, Report& rep) {
  const std::string ser = serialize_world(w);
  Stats& st = rep.stats;
  ++st.relock_worlds;
  const std::unique_ptr<HarvestForecaster> fc =
      make_forecaster("periodic:prior=1.2e-3,alpha=0.5,conf=0.6");
  const power::SquareSource s1(w.hi_w, w.lo_w, w.p1_s, 0.5);
  const power::SquareSource s2(w.hi_w, w.lo_w, w.p2_s, 0.5);

  const double dt1 = w.p1_s / kSamplesPerPeriod;
  double t = 0.0;
  for (int i = 0; i < kLockPeriods * kSamplesPerPeriod; ++i) {
    fc->record_at(s1.power_at(t), t);
    t += dt1;
  }
  // A multiple of p1 is a true period of the p1 stream; the forecaster
  // resolves harmonics toward the shortest lag, so allow 1x..2x.
  if (!lock_matches(fc->period_s(), w.p1_s, 2)) {
    rep.violations.push_back(
        {2, ser,
         "no initial lock after " + std::to_string(kLockPeriods) + " periods (period=" +
             fmt_g17(fc->period_s()) + ")"});
    return;
  }

  // The truth changes to p2. Liveness, two stages: (1) the STALE lock
  // must stop being trusted within kMaxPeriods — either dropped back to
  // EMA smoothing or re-validated against the new truth (any multiple of
  // p2 is a genuine period of the new stream — e.g. a 0.8 s lock over a
  // 0.4 s square is correct); (2) a drop is only transitional — once the
  // stale history has been evicted the forecaster must RE-LOCK onto p2
  // (it provably locks from scratch in kLockPeriods), so by the end of
  // kMaxPeriods the held lock must be consistent with p2.
  const double dt2 = w.p2_s / kSamplesPerPeriod;
  bool resolved = false;
  bool dropped = false;
  for (int i = 0; i < kMaxPeriods * kSamplesPerPeriod; ++i) {
    fc->record_at(s2.power_at(t), t);
    t += dt2;
    const double p = fc->period_s();
    if (!resolved && (p == 0.0 || lock_matches(p, w.p2_s, 4))) {
      const long periods = i / kSamplesPerPeriod + 1;
      st.relock_max_periods = std::max(st.relock_max_periods, periods);
      dropped = p == 0.0;
      resolved = true;
    }
  }
  if (!resolved) {
    rep.violations.push_back(
        {2, ser,
         "stale lock (period=" + fmt_g17(fc->period_s()) + ") survived " +
             std::to_string(kMaxPeriods) + " periods of the new truth"});
    return;
  }
  if (dropped) ++st.relock_drops;
  if (lock_matches(fc->period_s(), w.p2_s, 4)) {
    ++st.relock_relocks;
  } else {
    rep.violations.push_back(
        {2, ser,
         "no re-lock onto the new truth after " + std::to_string(kMaxPeriods) +
             " periods (period=" + fmt_g17(fc->period_s()) + ")"});
  }
}

}  // namespace

// --------------------------------------------------------------- checking

Report check(const std::vector<World>& worlds, const std::vector<RelockWorld>& relocks,
             int jobs) {
  fixture();  // build the shared fixture before the pool forks
  const int n_workers = std::max(1, jobs);

  // Worlds run in a worker pool; results land per-index and reduce in
  // world order, so the report bytes cannot depend on the worker count.
  std::vector<WorldResult> results(worlds.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= worlds.size()) return;
      results[i] = run_world(worlds[i]);
    }
  };
  if (n_workers == 1 || worlds.size() <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    const int n = std::min<int>(n_workers, static_cast<int>(worlds.size()));
    pool.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  Report rep;
  for (std::size_t i = 0; i < worlds.size(); ++i) {
    const AdaptiveSpec spec = parse_adaptive_spec(worlds[i].sched);
    check_world(worlds[i], results[i], spec, rep);
    check_stability(worlds[i], results[i].budget_decisions, spec, rep);
  }
  for (const RelockWorld& rw : relocks) check_relock(rw, rep);

  // Deterministic violation order: by contract, then by world line, then
  // by detail (the per-world order above is already deterministic; this
  // keeps the report stable even if future checks interleave).
  std::stable_sort(rep.violations.begin(), rep.violations.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.contract != b.contract) return a.contract < b.contract;
                     if (a.world != b.world) return a.world < b.world;
                     return a.detail < b.detail;
                   });
  return rep;
}

Report check_depth(Depth depth, int jobs) {
  return check(world_grid(depth), relock_grid(depth), jobs);
}

const CompletionModel& fixture_completion_model() { return fixture().cmpl; }

void write_report(std::ostream& os, const Report& r, const std::string& grid_name) {
  const Stats& s = r.stats;
  os << "# ehdnn-contracts-v1\n";
  os << "grid " << grid_name << ": worlds=" << s.worlds << " jobs=" << s.jobs
     << " run=" << s.run_jobs << " stage1-skips=" << s.skips_stage1
     << " stage2-skips=" << s.skips_stage2 << " met-budget=" << s.met_budget
     << " met-all=" << s.met_all << "\n";
  long c1 = 0, c2 = 0, c3 = 0, c0 = 0;
  for (const auto& v : r.violations) {
    if (v.contract == 1) ++c1;
    if (v.contract == 2) ++c2;
    if (v.contract == 3) ++c3;
    if (v.contract == 0) ++c0;
  }
  os << "contract-1 soundness: checked=" << s.jobs << " excused-probe=" << s.excused_probe
     << " violations=" << c1 << "\n";
  os << "contract-2 liveness: streaks=" << s.skip_streaks
     << " relock-worlds=" << s.relock_worlds << " drops=" << s.relock_drops
     << " relocks=" << s.relock_relocks << " max-periods=" << s.relock_max_periods
     << " violations=" << c2 << "\n";
  os << "contract-3 stability: decisions=" << s.decisions << " demotes=" << s.demotes
     << " income-pairs=" << s.income_pairs << " deadline-pairs=" << s.deadline_seqs
     << " violations=" << c3 << "\n";
  if (c0 > 0) os << "harness: aborted-worlds=" << c0 << "\n";
  for (const auto& v : r.violations) {
    os << "violation C" << v.contract << " :: " << v.world << " :: " << v.detail << "\n";
  }
  os << (r.pass() ? "PASS" : "FAIL") << "\n";
}

}  // namespace ehdnn::sched::contract
