// The scenario engine: sweep {runtimes} x {model-zoo entries} x {power
// scenarios} and emit a completion/latency/on-off-energy matrix — the
// Fig. 7-style reproduction artifact (SCENARIOS.json), generalized from
// two synthetic supplies to arbitrary harvest traces. New traces are new
// scenarios; no code changes required (see power::make_harvest_source).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/flex/executor.h"
#include "core/flex/runtime.h"
#include "models/zoo.h"
#include "obs/export.h"

namespace ehdnn::sim {

// One power scenario: a harvest-source spec (power/factory.h grammar) or
// the literal "continuous" for bench power, plus the capacitor buffering
// it feeds.
struct ScenarioSpec {
  std::string name;
  std::string source = "continuous";
  double capacitance_f = 10e-6;  // bench_common's paper-regime default
  double max_off_s = 30.0;       // starvation guard while recharging
  long max_reboots = 100000;     // hard cap (livelock guard fires earlier)
  // Executor livelock watchdog (RunOptions::max_futile_boots): N
  // consecutive boots banking no commit/checkpoint end the cell as DNF
  // with the livelock flag. 0 (default) disables it, keeping the
  // long-standing scenarios byte-stable; the micro-cap scenarios set it.
  long max_futile = 0;
};

// Parses `NAME=SOURCE[;cap=FARADS][;max_off=S][;reboots=N][;max_futile=N]`, e.g.
//   office-rf=trace:path=traces/rf_office.csv;cap=10e-6
// Throws ehdnn::Error on a malformed argument.
ScenarioSpec parse_scenario_arg(const std::string& arg);

// One cell of the sweep. Stats are copied from flex::RunStats; `outcome`
// distinguishes completed / dnf (the Fig. 7b "X") / starved.
struct ScenarioCell {
  std::string task;
  std::string runtime;
  std::string scenario;
  flex::Outcome outcome = flex::Outcome::kDidNotFinish;
  bool livelock = false;  // DNF via the futile-boot watchdog
  bool completed() const { return outcome == flex::Outcome::kCompleted; }
  double on_s = 0.0;
  double off_s = 0.0;
  double total_s = 0.0;
  double energy_j = 0.0;
  double checkpoint_energy_j = 0.0;
  long reboots = 0;
  long checkpoints = 0;
  long progress_commits = 0;
  long units_executed = 0;
  long units_total = 0;
  // Per-kind lifecycle event totals (counts-only obs::EventTrace attached
  // to every cell) — summed into the matrix `metrics` block.
  long event_counts[obs::kKindCount] = {};
  // Retained event ring, only for cells named in SweepOptions::trace_cells.
  bool trace_selected = false;
  std::vector<obs::Event> trace_events;
  long trace_dropped = 0;
  long trace_total = 0;
};

struct ScenarioMatrix {
  std::uint64_t seed = 0;
  std::vector<std::string> runtimes;
  std::vector<std::string> tasks;
  std::vector<ScenarioSpec> scenarios;
  std::vector<ScenarioCell> cells;
  // Lifecycle metrics summed over the cells in canonical order — the v3
  // `metrics` block, byte-identical for any job count because the cell
  // array it sums is.
  obs::MetricsRegistry metrics;
  // Retained event rings for SweepOptions::trace_cells, in cell-index
  // order — input to obs::write_chrome_trace / write_text_trace.
  std::vector<obs::TraceCapture> traces;
};

struct SweepOptions {
  std::uint64_t seed = 0xb0a710ad;  // model weights + input (bench parity)
  bool verbose = false;             // one progress line per cell to stderr
  // Worker threads for the sweep. Every cell runs on its own Device +
  // supply with a per-cell derived scramble seed, so the matrix — and the
  // bytes of SCENARIOS.json — is identical for any job count; only
  // wall-clock changes. Values < 1 are clamped to 1.
  int jobs = 1;
  // Wall-clock phase attribution (--profile); serial sweep only (jobs ==
  // 1 — one unsynchronized sink), null = off. run_matrix THROWS when set
  // together with jobs > 1 — the request used to be silently dropped,
  // which read as "the sweep was profiled" when it was not.
  flex::PhaseProfile* profile = nullptr;
  // Cells (canonical sweep indices: task-major, then scenario, then
  // runtime) whose event ring is retained for export. Every cell always
  // collects counts-only events for the metrics block.
  std::vector<int> trace_cells;
  long trace_capacity = 65536;
};

// Runtime keys, in sweep order: base, sonic/tails and tile execute the
// dense twin ("tile" accepts an optional ":t=N" spec suffix — MACs per
// sub-layer cursor commit), ace and flex the RAD-compressed deployment
// model, and the two
// adaptive keys ship both variants co-resident and pick runtime + variant
// per boot (sched::AdaptivePolicy) — `adaptive` via the PR-4 income
// ladder, `adaptive-deadline` via predicted-completion tier selection
// over the periodic forecaster. Keys, model variants, and the runtime/policy
// factories all come from ONE static table, so adding a runtime cannot
// desynchronize the sweep, the fuzzer, the fleet harness, and the CLIs'
// --list-runtimes output.
const std::vector<std::string>& all_runtime_keys();

// Runtime factory for those keys (the one name-to-runtime mapping, also
// used by the crash-consistency fuzzer); throws on an unknown key.
std::unique_ptr<flex::InferenceRuntime> make_runtime(const std::string& key);

// Policy factory for the same keys — for callers that drive the
// step-based flex::IntermittentExecutor directly (the fleet harness).
std::unique_ptr<flex::RuntimePolicy> make_policy(const std::string& key);

// Whether a runtime key executes the RAD-compressed deployment model
// (ace/flex) or the dense twin (base/sonic/tails). For adaptive this is
// the PRIMARY image (compressed); the dense twin rides along co-resident.
bool runtime_uses_compressed_model(const std::string& key);

// Whether a runtime key is the per-boot scheduler (needs both model
// variants provisioned — see sched/adaptive.h).
bool runtime_is_adaptive(const std::string& key);

// Runs every (runtime x task x scenario) combination, with
// SweepOptions::jobs worker threads (cells are independent: shared state
// is immutable models/inputs/sources). Cell order is deterministic and
// job-count independent. Unknown runtime keys throw; a scenario whose
// harvest spec fails to parse throws before any cell runs (fail fast,
// not after an hour of sweeping).
ScenarioMatrix run_matrix(const std::vector<std::string>& runtimes,
                          const std::vector<models::Task>& tasks,
                          const std::vector<ScenarioSpec>& scenarios,
                          const SweepOptions& opts = {});

// SCENARIOS.json, schema ehdnn-scenarios-v3 (see BENCHMARKS.md
// "Observability": v3 appends the matrix-level "metrics" block —
// "event.*" lifecycle counters plus gauges — after "cells"; v2 added the
// per-cell "livelock" flag and the scenario "max_futile" option).
void write_scenarios_json(std::ostream& os, const ScenarioMatrix& m);

}  // namespace ehdnn::sim
