// The fleet harness: N independent intermittent devices stepped
// round-robin against time-offset views of one harvest environment —
// the first "millions of users" scaling artifact on the road from a
// single-device reproduction to population-scale simulation.
//
// Each device owns its Device model, capacitor supply, executor, and a
// per-device derived input; all of them share one immutable harvest
// source through power::TimeOffsetSource (device i sees the recording
// shifted by i * spread / N). The round-robin scheduler advances every
// live device by exactly one executor slice per round — this is the
// incremental start()/step()/finished() API of flex::IntermittentExecutor
// doing real work: hundreds of suspended inferences interleaved on one
// simulator thread. The report aggregates completion counts and latency
// percentiles across the population (FLEET.json, schema ehdnn-fleet-v1).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/flex/runtime.h"
#include "models/zoo.h"

namespace ehdnn::sim {

struct FleetOptions {
  int devices = 64;
  models::Task task = models::Task::kMnist;
  std::string runtime = "flex";            // any all_runtime_keys() entry
  std::string source = "trace:path=traces/rf_office.csv";
  double capacitance_f = 10e-6;            // per-device buffer
  double max_off_s = 30.0;                 // starvation guard
  long max_reboots = 100000;
  // Device i's harvest view is shifted by i * offset_spread_s / devices;
  // the default spreads the fleet across one second of the recording
  // (the committed traces span 1-2 s and loop).
  double offset_spread_s = 1.0;
  std::uint64_t seed = 0xb0a710ad;         // model weights + per-device inputs
  bool verbose = false;                    // per-device line to stderr
};

// One device's run, plus its fleet coordinates.
struct FleetDeviceResult {
  int device = 0;
  double offset_s = 0.0;
  flex::Outcome outcome = flex::Outcome::kDidNotFinish;
  bool completed() const { return outcome == flex::Outcome::kCompleted; }
  double on_s = 0.0;
  double off_s = 0.0;
  double total_s = 0.0;   // per-device latency (on + off)
  double energy_j = 0.0;
  long reboots = 0;
  long checkpoints = 0;
  long progress_commits = 0;
  long steps = 0;          // executor slices this device took
};

struct FleetReport {
  FleetOptions opts;
  std::vector<FleetDeviceResult> devices;

  int completed_count = 0;
  int dnf_count = 0;
  int starved_count = 0;
  long total_reboots = 0;
  double total_energy_j = 0.0;
  // Latency percentiles over completed devices (nearest-rank), seconds.
  double latency_p50_s = 0.0;
  double latency_p90_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;
  double completion_rate = 0.0;  // completed / devices
};

// Builds the fleet and steps it round-robin to completion. Deterministic
// for a given options struct. Throws on unknown runtime keys or harvest
// specs (fail fast, before any device boots).
FleetReport run_fleet(const FleetOptions& opts);

// FLEET.json, schema ehdnn-fleet-v1 (see BENCHMARKS.md "Fleet").
void write_fleet_json(std::ostream& os, const FleetReport& r);

}  // namespace ehdnn::sim
