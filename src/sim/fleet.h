// The fleet harness: N independent intermittent devices stepped against
// time-offset views of one harvest environment — the population-scale
// artifact on the road from a single-device reproduction to "millions of
// users".
//
// Since the scheduling subsystem landed, a fleet is heterogeneous and
// duty-cycled: devices are declared in GROUPS (count x {task, runtime,
// capacitor, FRAM geometry, agenda}), each device runs a recurring
// inference agenda (sched::JobQueue) instead of one inference, and
// `adaptive` devices carry both model variants co-resident and let
// sched::AdaptivePolicy pick runtime + variant at every boot. Groups are
// parsed from a fleet config file (see parse_fleet_config), so new
// populations are new configs, no code.
//
// Each device owns its Device model, capacitor supply, compiled image(s),
// policy and job queue; all share one immutable harvest source through
// power::TimeOffsetSource (device i sees the recording shifted by
// i * spread / N). With run jobs == 1 the scheduler advances every live
// device by exactly one executor slice per round — the incremental
// start()/step()/finished() API interleaving hundreds of suspended
// inferences on one thread; with jobs > 1 a worker pool claims whole
// devices (they are independent, so the report — and the bytes of
// FLEET.json, schema ehdnn-fleet-v4 — is identical for any job count).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/flex/runtime.h"
#include "models/zoo.h"
#include "sched/agenda.h"

namespace ehdnn::sim {

// One homogeneous slice of the population.
struct FleetGroup {
  std::string name = "group";
  int count = 1;
  models::Task task = models::Task::kMnist;
  sched::DeviceAgenda agenda;     // runtime key, jobs, period, deadline
  double capacitance_f = 10e-6;   // per-device buffer
  double max_off_s = 30.0;        // starvation guard
  long max_reboots = 100000;
  // Executor futile-boot watchdog (RunOptions::max_futile_boots): N
  // consecutive boots banking nothing end the job as the "livelock"
  // verdict. 0 (default) disables it; micro-capacitor groups set it.
  long max_futile = 0;
  // Adaptive-scheduler spec override ("adaptive:rich=...,demote=...");
  // empty = defaults. Only meaningful when agenda.runtime == "adaptive".
  std::string sched_spec;
  // Per-device FRAM words; 0 = auto-sized to fit this group's compiled
  // image(s) (both variants for adaptive) plus slack.
  std::size_t fram_words = 0;
};

struct FleetConfig {
  std::string source = "trace:path=traces/rf_office.csv";
  // Device i's harvest view is shifted by i * offset_spread_s / N.
  double offset_spread_s = 1.0;
  std::uint64_t seed = 0xb0a710ad;  // model weights + per-device/job inputs
  std::vector<FleetGroup> groups;

  int total_devices() const;
};

// Parses the line-oriented fleet config format:
//
//   # comment
//   fleet source=SPEC spread=S seed=N
//   group name=ID count=N task=mnist runtime=adaptive cap=10e-6
//         jobs=3 period=0.2 deadline=1.5 [max_off=S] [reboots=N]
//         [max_futile=N] [sched=adaptive:...] [fram=WORDS]
//                                               (one line per group)
//
// Tokens are whitespace-separated key=value pairs; the `fleet` line is
// optional (defaults above) and allowed at most once. Malformed entries —
// negative capacitance, zero-period agendas, unknown runtime keys or
// tasks, duplicate/unknown keys — throw ehdnn::Error.
FleetConfig parse_fleet_config(std::istream& is);
FleetConfig parse_fleet_config_file(const std::string& path);

struct FleetRunOptions {
  // Worker threads. Devices are fully independent, so the report is
  // byte-identical for any value; 1 = the round-robin showcase.
  int jobs = 1;
  bool verbose = false;  // per-device line to stderr
  // Re-run the SAME population with every agenda's runtime forced to
  // each of these fixed keys and record jobs-completed/in-deadline —
  // the "adaptive vs best fixed runtime" comparison in FLEET.json.
  std::vector<std::string> baseline_runtimes;
  // Re-run the SAME population with energy-budgeted admission forced off
  // (admit=all) and record the comparison — the evidence that skipping
  // infeasible releases improves the fleet's deadline rate.
  bool compare_admission = false;
  // Internal (used by the compare_admission rerun): force every adaptive
  // group's admission mode to admit=all regardless of its sched spec.
  bool force_admit_all = false;
};

// One device's agenda outcome, plus its fleet coordinates.
struct FleetDeviceResult {
  int device = 0;
  std::string group;
  double offset_s = 0.0;
  std::string task;
  std::string runtime;
  double capacitance_f = 0.0;
  std::vector<sched::JobRecord> jobs;
  int jobs_completed = 0;
  int jobs_in_deadline = 0;
  int jobs_skipped = 0;  // admission-refused releases (skipped_infeasible)
  long reboots = 0;
  long tier_switches = 0;
  double energy_j = 0.0;
  double energy_reclaimed_j = 0.0;  // admission's estimated savings
  long steps = 0;  // executor slices this device took
};

// A fixed-runtime rerun of the same population (FleetRunOptions::
// baseline_runtimes).
struct FleetBaseline {
  std::string runtime;
  int jobs_completed = 0;
  int jobs_in_deadline = 0;
};

struct FleetReport {
  FleetConfig config;
  std::vector<FleetDeviceResult> devices;

  int total_jobs = 0;
  int jobs_completed = 0;
  int jobs_in_deadline = 0;
  int jobs_dnf = 0;
  int jobs_starved = 0;
  // Energy-budgeted admission: releases refused as infeasible (counted
  // separately from DNF — the run never started) and the lower-bound
  // energy those skips reclaimed for later releases.
  int jobs_skipped = 0;
  double energy_reclaimed_j = 0.0;
  double completion_rate = 0.0;  // completed / total jobs
  double deadline_rate = 0.0;    // in-deadline / total jobs
  // Nearest-rank percentiles over completed jobs, seconds.
  double latency_p50_s = 0.0, latency_p90_s = 0.0, latency_p99_s = 0.0, latency_max_s = 0.0;
  double staleness_p50_s = 0.0, staleness_p90_s = 0.0, staleness_p99_s = 0.0,
         staleness_max_s = 0.0;
  long total_reboots = 0;
  long total_tier_switches = 0;
  double total_energy_j = 0.0;

  std::vector<FleetBaseline> baselines;

  // FleetRunOptions::compare_admission rerun (admit forced to all); the
  // `runtime` field is repurposed as the literal "admit=all".
  std::vector<FleetBaseline> admission_baseline;
};

// Builds the fleet and runs every device's agenda to completion.
// Deterministic for a given config; identical for any FleetRunOptions::
// jobs. Throws on unknown runtime keys or harvest specs (fail fast,
// before any device boots).
FleetReport run_fleet(const FleetConfig& cfg, const FleetRunOptions& ropts = {});

// FLEET.json, schema ehdnn-fleet-v4 (see BENCHMARKS.md "Fleet" for the
// v3 -> v4 reader notes: new per-job verdict "livelock" — a DNF whose
// run tripped the futile-boot watchdog — plus the per-group max_futile
// config echo; v2 -> v3 added the "skipped_infeasible" verdict, the
// aggregate "admission" block, and the optional admit-all baseline).
void write_fleet_json(std::ostream& os, const FleetReport& r);

}  // namespace ehdnn::sim
