// The fleet engine: N independent intermittent devices stepped against
// time-offset views of one harvest environment — the population-scale
// artifact on the road from a single-device reproduction to "millions of
// users".
//
// Since the scheduling subsystem landed, a fleet is heterogeneous and
// duty-cycled: devices are declared in GROUPS (count x {task, runtime,
// capacitor, FRAM geometry, agenda}), each device runs a recurring
// inference agenda (sched::JobQueue) instead of one inference, and
// `adaptive` devices carry both model variants co-resident and let
// sched::AdaptivePolicy pick runtime + variant at every boot. Groups are
// parsed from a fleet config file (see parse_fleet_config), so new
// populations are new configs, no code.
//
// Execution is event-driven: FleetEngine keeps a priority queue keyed on
// each device's next actionable instant (sched::JobQueue::next_time_s —
// the pending agenda release while parked, the supply's clock while a run
// is live), so parked devices cost zero slices and only a bounded window
// of devices is resident at once — devices are built lazily when the
// window admits them and destroyed the moment their agenda completes,
// which is what makes 10^5-device populations fit in memory. Per-device
// results stream into FleetSink implementations (record/merge/finalize);
// the built-in aggregation sink folds completed-job latencies into
// mergeable quantile sketches (util/qsketch.h) instead of materializing
// per-job arrays.
//
// Devices are fully independent, so the report — and the bytes of
// FLEET.json, schema ehdnn-fleet-v6 — is identical whether the population
// ran on the event queue, the legacy round-robin loop, a worker pool
// (FleetRunOptions::jobs), or split across processes as shards
// (run_shard + merge_fleet_shards): every aggregation path sorts by
// device id and sums in id order, and sketch merges are bin-wise integer
// adds, so no floating-point result depends on completion order.
//
// Observability (schema v6): every device carries an obs::EventTrace in
// counts-only mode — the per-kind totals stream through the same sorted
// row funnel into the report's `metrics` block — and devices named in
// FleetRunOptions::trace_devices additionally retain their event ring for
// export (Chrome trace_event JSON / deterministic text). Events are
// stamped with the device's own supply clock, so traces are byte-stable
// across --jobs and --shards just like the JSON.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/flex/runtime.h"
#include "models/zoo.h"
#include "obs/export.h"
#include "sched/agenda.h"

namespace ehdnn::sim {

// One homogeneous slice of the population.
struct FleetGroup {
  std::string name = "group";
  int count = 1;
  models::Task task = models::Task::kMnist;
  sched::DeviceAgenda agenda;     // runtime key, jobs, period, deadline
  double capacitance_f = 10e-6;   // per-device buffer
  double max_off_s = 30.0;        // starvation guard
  long max_reboots = 100000;
  // Executor futile-boot watchdog (RunOptions::max_futile_boots): N
  // consecutive boots banking nothing end the job as the "livelock"
  // verdict. 0 (default) disables it; micro-capacitor groups set it.
  long max_futile = 0;
  // Adaptive-scheduler spec override ("adaptive:rich=...,demote=...");
  // empty = defaults. Only meaningful when agenda.runtime == "adaptive".
  std::string sched_spec;
  // Per-device FRAM words; 0 = auto-sized to fit this group's compiled
  // image(s) (both variants for adaptive) plus slack.
  std::size_t fram_words = 0;
};

struct FleetConfig {
  std::string source = "trace:path=traces/rf_office.csv";
  // Device i's harvest view is shifted by i * offset_spread_s / N.
  double offset_spread_s = 1.0;
  std::uint64_t seed = 0xb0a710ad;  // model weights + per-device/job inputs
  // Per-device reporting depth (fleet line `detail=full|aggregate`):
  // full keeps every device's job records for the per_device JSON block;
  // aggregate keeps only streaming counters and sketches — the mode that
  // lets 100k-device artifacts stay a few KB instead of hundreds of MB.
  bool per_device_detail = true;
  std::vector<FleetGroup> groups;

  int total_devices() const;
};

// Parses the line-oriented fleet config format:
//
//   # comment
//   fleet source=SPEC spread=S seed=N [detail=full|aggregate]
//   group name=ID count=N task=mnist runtime=adaptive cap=10e-6
//         jobs=3 period=0.2 deadline=1.5 [max_off=S] [reboots=N]
//         [max_futile=N] [sched=adaptive:...] [fram=WORDS]
//                                               (one line per group)
//
// Tokens are whitespace-separated key=value pairs; the `fleet` line is
// optional (defaults above) and allowed at most once. Malformed entries —
// negative capacitance, zero-count or duplicate-name groups, zero-period
// agendas, unknown runtime keys or tasks, duplicate/unknown keys — throw
// ehdnn::Error.
FleetConfig parse_fleet_config(std::istream& is);
FleetConfig parse_fleet_config_file(const std::string& path);

// Writes `cfg` back in the config-file format, round-trippable through
// parse_fleet_config (doubles as %.17g). The shard partial format echoes
// the config this way so merge_fleet_shards can verify every shard ran
// the same population and rebuild the report header.
void write_fleet_config(std::ostream& os, const FleetConfig& cfg);

struct FleetRunOptions {
  // Worker threads. Devices are fully independent, so the report is
  // byte-identical for any value; 1 = the next-event engine.
  int jobs = 1;
  bool verbose = false;  // per-device line to stderr
  // Event-engine resident window: at most this many devices are built at
  // once (lazy build on admission, destroyed at completion). Bounds peak
  // memory at O(window), not O(population).
  int max_resident = 1024;
  // Run the pre-event-engine stepping loop (every live device gets one
  // slice per round, whole population resident). Kept for the
  // equivalence test pinning the event engine bit-exact against it;
  // implies serial execution.
  bool legacy_round_robin = false;
  // Re-run the SAME population with every agenda's runtime forced to
  // each of these fixed keys and record jobs-completed/in-deadline —
  // the "adaptive vs best fixed runtime" comparison in FLEET.json.
  std::vector<std::string> baseline_runtimes;
  // Re-run the SAME population with energy-budgeted admission forced off
  // (admit=all) and record the comparison — the evidence that skipping
  // infeasible releases improves the fleet's deadline rate.
  bool compare_admission = false;
  // Internal (used by the compare_admission rerun): force every adaptive
  // group's admission mode to admit=all regardless of its sched spec.
  bool force_admit_all = false;
  // Host wall-clock phase attribution (--profile): recharge vs kernel vs
  // checkpoint vs engine time. Honored only on the serial event-engine
  // and legacy paths (the worker pool shares one sink unsynchronized);
  // null = no instrumentation. run()/run_shard() THROW when profile is
  // set together with jobs > 1 — the request used to be silently ignored,
  // which read as "the run was profiled" when it was not.
  flex::PhaseProfile* profile = nullptr;
  // Devices whose event ring is retained for export (--trace-devices).
  // Every device always collects counts-only events for the metrics
  // block; listing an id here additionally keeps its most recent
  // `trace_capacity` events as a FleetReport::traces capture. Ids must be
  // in [0, N); baseline/admission reruns never capture.
  std::vector<int> trace_devices;
  long trace_capacity = 65536;
};

// One device's agenda outcome, plus its fleet coordinates. `jobs` is
// populated only while the device's records are in hand (sinks see it at
// record() time); under detail=aggregate nothing retains it afterwards.
struct FleetDeviceResult {
  int device = 0;
  std::string group;
  double offset_s = 0.0;
  std::string task;
  std::string runtime;
  double capacitance_f = 0.0;
  std::vector<sched::JobRecord> jobs;
  int jobs_total = 0;
  int jobs_completed = 0;
  int jobs_in_deadline = 0;
  int jobs_skipped = 0;  // admission-refused releases (skipped_infeasible)
  int jobs_dnf = 0;      // did-not-finish (excluding livelock)
  int jobs_starved = 0;
  int jobs_livelock = 0;  // DNF via the futile-boot watchdog
  long reboots = 0;
  long tier_switches = 0;
  double energy_j = 0.0;
  double energy_reclaimed_j = 0.0;  // admission's estimated savings
  long steps = 0;  // scheduler slices (executor slices + agenda arms)
  // Per-kind lifecycle event totals (counts-only EventTrace; always
  // collected) — what the report's `metrics` block sums.
  long event_counts[obs::kKindCount] = {};
  // Retained ring, only for devices named in trace_devices.
  bool trace_selected = false;
  std::vector<obs::Event> trace_events;
  long trace_dropped = 0;
  long trace_total = 0;
};

// A fixed-runtime rerun of the same population (FleetRunOptions::
// baseline_runtimes).
struct FleetBaseline {
  std::string runtime;
  int jobs_completed = 0;
  int jobs_in_deadline = 0;
};

struct FleetReport {
  FleetConfig config;
  // Per-device results in device-id order; empty under detail=aggregate.
  std::vector<FleetDeviceResult> devices;

  int total_jobs = 0;
  int jobs_completed = 0;
  int jobs_in_deadline = 0;
  int jobs_dnf = 0;
  int jobs_starved = 0;
  int jobs_livelock = 0;
  // Energy-budgeted admission: releases refused as infeasible (counted
  // separately from DNF — the run never started) and the lower-bound
  // energy those skips reclaimed for later releases.
  int jobs_skipped = 0;
  double energy_reclaimed_j = 0.0;
  double completion_rate = 0.0;  // completed / total jobs
  double deadline_rate = 0.0;    // in-deadline / total jobs
  // Nearest-rank percentiles over completed jobs, seconds — estimated
  // from the streaming quantile sketches (relative error sketch_rel_err);
  // min/max are exact.
  double sketch_rel_err = 0.0;
  double latency_p50_s = 0.0, latency_p90_s = 0.0, latency_p99_s = 0.0, latency_max_s = 0.0;
  double staleness_p50_s = 0.0, staleness_p90_s = 0.0, staleness_p99_s = 0.0,
         staleness_max_s = 0.0;
  long total_reboots = 0;
  long total_tier_switches = 0;
  long total_steps = 0;
  double total_energy_j = 0.0;

  std::vector<FleetBaseline> baselines;

  // FleetRunOptions::compare_admission rerun (admit forced to all); the
  // `runtime` field is repurposed as the literal "admit=all".
  std::vector<FleetBaseline> admission_baseline;

  // Lifecycle metrics from the MAIN run only (baseline/admission reruns
  // excluded): "event.<name>" counters summed over every device,
  // "trace.dropped_events" over the captured rings, and the
  // "fleet.max_device_reboots" gauge. Merged bin-wise, so every execution
  // path serializes the same block.
  obs::MetricsRegistry metrics;
  // Retained event rings for FleetRunOptions::trace_devices, sorted by
  // device id — the input to obs::write_chrome_trace / write_text_trace.
  std::vector<obs::TraceCapture> traces;
};

// Observer of per-device results. record() is called once per device as
// agendas complete — the order is unspecified (the event queue, worker
// pools and shards all retire devices differently) and calls are
// serialized by the engine, so implementations need no locking but MUST
// be order-independent (sort by FleetDeviceResult::device at finalize,
// accumulate only order-free state in record). merge() folds another
// sink of the same concrete type — a shard's — into this one; finalize()
// runs once after every device (or merged shard) has been recorded.
class FleetSink {
 public:
  virtual ~FleetSink() = default;
  virtual void record(const FleetDeviceResult& d) = 0;
  virtual void merge(const FleetSink& other) = 0;
  virtual void finalize() = 0;
};

// Builds and runs one fleet population. Construction validates the
// config and throws on unknown runtime keys or harvest specs (fail fast,
// before any device boots); model images and FRAM sizing are shared
// across the population, devices themselves are built lazily per run.
//
//   FleetReport r = FleetEngine(cfg).add_sink(my_sink).run(opts);
//
// run() drives every device's agenda to completion, feeds each result to
// the attached sinks (plus the engine's internal aggregation sinks) and
// returns the deterministic report. run_shard() runs only the shard's
// contiguous device range and streams a mergeable partial artifact
// (schema ehdnn-fleet-shard-v2: v1 plus per-row event counts and the
// shard's retained trace captures) instead; merge_fleet_shards() folds
// the complete set of partials into the identical FleetReport —
// byte-for-byte the JSON that `--shards 1` produces, traces included.
class FleetEngine {
 public:
  explicit FleetEngine(FleetConfig cfg);

  // Attaches a non-owning sink; must outlive run()/run_shard().
  FleetEngine& add_sink(FleetSink& sink);

  FleetReport run(const FleetRunOptions& opts = {});

  // Runs devices [shard*n/shards, (shard+1)*n/shards) and writes the
  // partial artifact. Baseline/admission reruns are whole-population
  // operations and are rejected here.
  void run_shard(std::ostream& os, int shard, int shards, const FleetRunOptions& opts = {});

 private:
  FleetConfig cfg_;
  std::vector<FleetSink*> sinks_;
};

// Merges a complete set of shard partials (one per shard, any order)
// into the population's FleetReport. Verifies every partial echoes the
// same config and that the shard ranges tile [0, N) exactly.
FleetReport merge_fleet_shards(const std::vector<std::string>& paths);

// Compatibility wrapper: FleetEngine(cfg).run(ropts).
FleetReport run_fleet(const FleetConfig& cfg, const FleetRunOptions& ropts = {});

// FLEET.json, schema ehdnn-fleet-v6 (see BENCHMARKS.md "Observability"
// for the v5 -> v6 reader notes: the report gains a "metrics" block —
// "event.*" lifecycle counters plus gauges — between "aggregate" and
// "baselines"; every other field is byte-identical to v5. v4 -> v5 made
// percentiles streaming-sketch estimates with exact max, added
// "livelock"/"total_steps" and the "detail" header; v3 -> v4 added the
// per-job "livelock" verdict and the max_futile echo, v2 -> v3 the
// "skipped_infeasible" verdict and the admission block).
void write_fleet_json(std::ostream& os, const FleetReport& r);

}  // namespace ehdnn::sim
