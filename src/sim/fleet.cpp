#include "sim/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <queue>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "core/ace/compiled_model.h"
#include "power/capacitor.h"
#include "power/factory.h"
#include "power/monitor.h"
#include "sched/adaptive.h"
#include "sim/scenario.h"
#include "util/check.h"
#include "util/parse.h"
#include "util/qsketch.h"
#include "util/rng.h"

namespace ehdnn::sim {

namespace {

// Accuracy of the streaming latency/staleness percentile sketches — part
// of the v5 schema (echoed as sketch_rel_err) and of the shard-merge
// contract (sketches only merge at equal rel_err).
constexpr double kSketchRelErr = 0.01;

// Everything one simulated device owns. Pointer-stable (held by
// unique_ptr) because supplies, executors and the job queue point into it.
// The compiled models are SHARED with the device's group template (see
// GroupTemplate below): compilation is a pure function of (model,
// geometry), so every device in a homogeneous group points at one
// immutable CompiledModel instead of carrying a private copy of the
// weights and gather tables.
struct FleetDevice {
  power::TimeOffsetSource source;
  power::CapacitorSupply supply;
  dev::Device device;
  std::shared_ptr<const ace::CompiledModel> cm_primary;
  std::shared_ptr<const ace::CompiledModel> cm_dense;  // adaptive: co-resident twin
  std::vector<std::vector<fx::q15_t>> inputs;  // one per job
  std::unique_ptr<flex::RuntimePolicy> policy;
  // Lifecycle event sink: counts-only on every device (feeds the metrics
  // block), ring capture when the device is in trace_devices. Wired into
  // both RunOptions (executor/policy/queue sites) and the supply (kIdle).
  obs::EventTrace trace;
  flex::RunOptions opts;
  std::optional<sched::JobQueue> queue;  // constructed last (borrows the rest)

  FleetDevice(const power::HarvestSource& base, double offset,
              const power::CapacitorConfig& ccfg, const dev::DeviceConfig& dcfg,
              dev::DeviceSlabs* slabs)
      : source(base, offset), supply(source, ccfg), device(dcfg, slabs) {
    device.attach_supply(&supply);
  }
};

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out + "\"";
}

// JSON has no infinity: an unbounded deadline is emitted as -1.
double json_deadline(double v) { return std::isfinite(v) ? v : -1.0; }

// Exact round-trip decimal form, used by the config echo and the shard
// partial format so parsed-back doubles are bit-identical to the writer's.
std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void validate(const FleetConfig& cfg) {
  check(!cfg.groups.empty(), "fleet config: need at least one group");
  check(cfg.offset_spread_s >= 0.0, "fleet config: spread must be >= 0");
  std::set<std::string> names;
  for (const auto& g : cfg.groups) {
    const std::string where = "fleet group \"" + g.name + "\"";
    check(names.insert(g.name).second, where + ": duplicate group name");
    check(g.count >= 1, where + ": count must be >= 1");
    check(g.capacitance_f > 0.0, where + ": capacitance must be > 0");
    check(g.max_off_s > 0.0, where + ": max_off must be > 0");
    check(g.max_reboots >= 1, where + ": reboots must be >= 1");
    check(g.max_futile >= 0, where + ": max_futile must be >= 0");
    check(g.agenda.jobs >= 1, where + ": jobs must be >= 1");
    check(g.agenda.period_s > 0.0, where + ": agenda period must be > 0");
    check(g.agenda.deadline_s > 0.0, where + ": deadline must be > 0");
    runtime_uses_compressed_model(g.agenda.runtime);  // throws on unknown key
    if (!g.sched_spec.empty()) {
      check(runtime_is_adaptive(g.agenda.runtime),
            where + ": sched= only applies to the adaptive runtime");
      sched::parse_adaptive_spec(g.sched_spec);  // throws on malformed spec
    }
  }
}

// The model variants a group's runtime executes: adaptive ships both.
void group_variants(const FleetGroup& g, bool* need_compressed, bool* need_dense) {
  const bool adaptive = runtime_is_adaptive(g.agenda.runtime);
  const bool compressed = runtime_uses_compressed_model(g.agenda.runtime);
  *need_compressed = adaptive || compressed;
  *need_dense = adaptive || !compressed;
}

// One group's compile-once execution image. ace::compile is a pure
// function of (model, device geometry): it pokes the weight image into
// FRAM and bump-allocates scratch plans, drawing no energy and touching
// no per-device randomness. So a homogeneous group compiles ONCE onto a
// template device at build time; every admitted device then (a) stamps
// its FRAM/SRAM from the template's post-compile image (MemoryRegion::
// clone_from — cost-free, exactly what the poke sequence would have
// produced) and (b) shares the immutable CompiledModel by pointer. This
// removes the per-device O(model) compile + weight copy from the hot
// admission path and collapses the group's model storage to one copy.
struct GroupTemplate {
  std::shared_ptr<const ace::CompiledModel> cm_primary;
  std::shared_ptr<const ace::CompiledModel> cm_dense;  // adaptive only
  std::unique_ptr<dev::Device> image;  // post-compile FRAM/SRAM snapshot
};

// Population-wide immutable state shared by every device build: the base
// harvest source, one model instance per (task, variant), each group's
// FRAM sizing and compiled template, and the device-id -> group mapping.
// Building a device needs nothing else, which is what lets the event
// engine construct devices lazily (and worker processes construct only
// their shard).
struct FleetWorld {
  std::unique_ptr<power::HarvestSource> base_source;
  std::map<std::pair<int, bool>, quant::QuantModel> qms;
  std::vector<std::size_t> group_fram;
  std::vector<GroupTemplate> group_tpl;
  std::vector<std::size_t> device_group;  // device id -> group index
  int n = 0;
};

FleetWorld build_world(const FleetConfig& cfg) {
  FleetWorld w;
  w.base_source = power::make_harvest_source(cfg.source);
  w.n = cfg.total_devices();

  // One model instance per (task, variant) for the whole fleet, seeded
  // like the scenario sweep; each device gets its own derived inputs
  // (different users, different samples).
  for (const auto& g : cfg.groups) {
    bool need_c = false, need_d = false;
    group_variants(g, &need_c, &need_d);
    for (const bool compressed : {true, false}) {
      if (!(compressed ? need_c : need_d)) continue;
      const auto key = std::make_pair(static_cast<int>(g.task), compressed);
      if (w.qms.count(key) != 0) continue;
      Rng rng(cfg.seed + static_cast<std::uint64_t>(g.task));
      w.qms.emplace(key, models::make_deployed_qmodel(g.task, compressed, rng));
    }
  }

  // Auto-size each group's FRAM: compile its image(s) once on a scratch
  // device and take the cumulative footprint plus slack. Keeps a mixed
  // fleet's memory proportional to what each device actually ships
  // instead of provisioning every device for the largest dense twin.
  w.group_fram.resize(cfg.groups.size());
  w.group_tpl.resize(cfg.groups.size());
  for (std::size_t gi = 0; gi < cfg.groups.size(); ++gi) {
    const FleetGroup& g = cfg.groups[gi];
    const bool adaptive = runtime_is_adaptive(g.agenda.runtime);
    const bool primary_compressed = runtime_uses_compressed_model(g.agenda.runtime);
    if (g.fram_words != 0) {
      w.group_fram[gi] = g.fram_words;
    } else {
      bool need_c = false, need_d = false;
      group_variants(g, &need_c, &need_d);
      dev::DeviceConfig scratch_cfg = models::deployment_device_config(/*compressed=*/false);
      dev::Device scratch(scratch_cfg);
      std::size_t used = 0;
      bool first = true;
      for (const bool compressed : {true, false}) {
        if (!(compressed ? need_c : need_d)) continue;
        const auto& qm = w.qms.at({static_cast<int>(g.task), compressed});
        used = ace::compile(qm, scratch, /*co_resident=*/!first).fram_words_used;
        first = false;
      }
      w.group_fram[gi] = used + 1024;
    }

    // Bake the group's template: compile the image(s) this group's
    // runtime ships onto a device with the group's exact geometry, in
    // the exact order make_device used to (primary, then the dense twin
    // co-resident for adaptive groups), and keep the post-compile device
    // as the memory snapshot every admitted device is stamped from.
    GroupTemplate& tpl = w.group_tpl[gi];
    dev::DeviceConfig tcfg;
    tcfg.fram_words = w.group_fram[gi];
    tpl.image = std::make_unique<dev::Device>(tcfg);
    tpl.cm_primary = std::make_shared<const ace::CompiledModel>(
        ace::compile(w.qms.at({static_cast<int>(g.task), primary_compressed}), *tpl.image));
    if (adaptive) {
      tpl.cm_dense = std::make_shared<const ace::CompiledModel>(
          ace::compile(w.qms.at({static_cast<int>(g.task), false}), *tpl.image,
                       /*co_resident=*/true));
    }
  }

  w.device_group.reserve(static_cast<std::size_t>(w.n));
  for (std::size_t gi = 0; gi < cfg.groups.size(); ++gi) {
    for (int k = 0; k < cfg.groups[gi].count; ++k) w.device_group.push_back(gi);
  }
  return w;
}

// Builds device `d` of the population. Depends only on (cfg, world, d),
// never on which devices exist around it — the property every execution
// path (event queue, worker pool, shard) relies on for determinism.
std::unique_ptr<FleetDevice> make_device(const FleetWorld& w, const FleetConfig& cfg, int d,
                                         bool force_admit_all,
                                         dev::DeviceSlabs* slabs = nullptr,
                                         flex::PhaseProfile* profile = nullptr,
                                         long trace_capacity = 0) {
  const std::size_t gi = w.device_group[static_cast<std::size_t>(d)];
  const FleetGroup& g = cfg.groups[gi];
  const bool adaptive = runtime_is_adaptive(g.agenda.runtime);

  power::CapacitorConfig ccfg;
  ccfg.capacitance_f = g.capacitance_f;
  ccfg.max_off_s = g.max_off_s;

  const double offset =
      cfg.offset_spread_s * static_cast<double>(d) / static_cast<double>(w.n);
  dev::DeviceConfig dcfg;
  dcfg.fram_words = w.group_fram[gi];
  dcfg.scramble_seed =
      cfg.seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(d) + 1);

  auto fd = std::make_unique<FleetDevice>(*w.base_source, offset, ccfg, dcfg, slabs);
  // Stamp the group's compiled image instead of re-running ace::compile:
  // identical FRAM bytes and allocator state, one shared CompiledModel.
  const GroupTemplate& tpl = w.group_tpl[gi];
  fd->device.fram().clone_from(tpl.image->fram());
  fd->device.sram().clone_from(tpl.image->sram());
  fd->cm_primary = tpl.cm_primary;
  if (adaptive) fd->cm_dense = tpl.cm_dense;

  const std::size_t in_size = fd->cm_primary->model.layers.front().in_size();
  fd->inputs.resize(static_cast<std::size_t>(g.agenda.jobs));
  for (int j = 0; j < g.agenda.jobs; ++j) {
    Rng in_rng(cfg.seed ^ (0xf1ee7ull + static_cast<std::uint64_t>(d) * 0x10001ull +
                           static_cast<std::uint64_t>(j) * 0x9e3779b9ull));
    auto& input = fd->inputs[static_cast<std::size_t>(j)];
    input.resize(in_size);
    for (auto& v : input) v = static_cast<fx::q15_t>(in_rng.next_u64());
  }

  if (adaptive && !g.sched_spec.empty()) {
    sched::AdaptiveSpec aspec = sched::parse_adaptive_spec(g.sched_spec);
    if (force_admit_all) aspec.admit = sched::Admission::kAll;
    fd->policy = sched::make_adaptive_policy(std::move(aspec));
  } else {
    // The runtime table's own factory — which for the adaptive keys
    // already carries the key's default spec (income ladder for
    // "adaptive", deadline selection for "adaptive-deadline").
    fd->policy = make_policy(g.agenda.runtime);
    if (force_admit_all) {
      if (auto* ap = sched::as_adaptive(fd->policy.get());
          ap != nullptr && ap->spec().admit == sched::Admission::kBudget) {
        sched::AdaptiveSpec aspec = ap->spec();
        aspec.admit = sched::Admission::kAll;
        fd->policy = sched::make_adaptive_policy(std::move(aspec));
      }
    }
  }
  const double worst_ck = sched::provision_deployment(
      *fd->policy, fd->device.cost(), *fd->cm_primary, fd->cm_dense.get(),
      fd->supply.burst_energy());
  fd->opts.max_reboots = g.max_reboots;
  fd->opts.max_futile_boots = g.max_futile;
  fd->opts.flex_v_warn = power::warn_voltage_for(fd->supply.config(), worst_ck + 5e-6, 3.0);
  fd->opts.profile = profile;  // JobQueue copies opts, so wire before emplace
  if (trace_capacity > 0) fd->trace.set_capacity(static_cast<std::size_t>(trace_capacity));
  fd->opts.trace = &fd->trace;  // counts-only unless the capacity above was set
  fd->supply.set_trace(&fd->trace);
  fd->queue.emplace(fd->device, *fd->policy, *fd->cm_primary, fd->opts, g.agenda, &fd->inputs);
  return fd;
}

// Reduces a finished device to its result record: fleet coordinates, the
// job records, and the per-device verdict buckets every aggregation path
// shares. The v5 "dnf" bucket excludes livelocked runs (they get their
// own counter); v4 folded them together.
FleetDeviceResult distill(const FleetWorld& w, const FleetConfig& cfg, int d,
                          const FleetDevice& fd) {
  const FleetGroup& g = cfg.groups[w.device_group[static_cast<std::size_t>(d)]];
  FleetDeviceResult res;
  res.device = d;
  res.group = g.name;
  res.offset_s = fd.source.offset();
  res.task = models::task_name(g.task);
  res.runtime = g.agenda.runtime;
  res.capacitance_f = g.capacitance_f;
  res.jobs = fd.queue->records();
  res.steps = fd.queue->steps();
  for (int k = 0; k < obs::kKindCount; ++k) res.event_counts[k] = fd.trace.counts()[k];
  if (fd.trace.capacity() > 0) {
    res.trace_selected = true;
    res.trace_events = fd.trace.snapshot();
    res.trace_dropped = fd.trace.dropped();
    res.trace_total = fd.trace.total();
  }
  for (const auto& j : res.jobs) {
    ++res.jobs_total;
    res.reboots += j.reboots;
    res.tier_switches += j.tier_switches;
    res.energy_j += j.energy_j;
    if (j.skipped_infeasible) {
      // An admission-refused release never ran: its verdict is its own
      // bucket, not a DNF.
      ++res.jobs_skipped;
      res.energy_reclaimed_j += j.energy_reclaimed_j;
    } else {
      switch (j.outcome) {
        case flex::Outcome::kCompleted:
          ++res.jobs_completed;
          break;
        case flex::Outcome::kDidNotFinish:
          if (j.livelock) {
            ++res.jobs_livelock;
          } else {
            ++res.jobs_dnf;
          }
          break;
        case flex::Outcome::kStarved:
          ++res.jobs_starved;
          break;
      }
    }
    if (j.met_deadline) ++res.jobs_in_deadline;
  }
  return res;
}

// The per-device scalar row the aggregation sink keeps: everything the
// report needs, nothing per-job. ~100 bytes/device is what makes a
// 100k-device population's footprint reporting-side negligible.
struct DeviceRow {
  int device = 0;
  int jobs_total = 0, jobs_completed = 0, jobs_in_deadline = 0, jobs_skipped = 0;
  int jobs_dnf = 0, jobs_starved = 0, jobs_livelock = 0;
  long reboots = 0, tier_switches = 0, steps = 0;
  double energy_j = 0.0, energy_reclaimed_j = 0.0;
  // Per-kind lifecycle event totals — one more block of mergeable
  // integers riding the same row (summed into the metrics block).
  long events[obs::kKindCount] = {};
};

DeviceRow row_of(const FleetDeviceResult& d) {
  DeviceRow r;
  r.device = d.device;
  r.jobs_total = d.jobs_total;
  r.jobs_completed = d.jobs_completed;
  r.jobs_in_deadline = d.jobs_in_deadline;
  r.jobs_skipped = d.jobs_skipped;
  r.jobs_dnf = d.jobs_dnf;
  r.jobs_starved = d.jobs_starved;
  r.jobs_livelock = d.jobs_livelock;
  r.reboots = d.reboots;
  r.tier_switches = d.tier_switches;
  r.steps = d.steps;
  r.energy_j = d.energy_j;
  r.energy_reclaimed_j = d.energy_reclaimed_j;
  for (int k = 0; k < obs::kKindCount; ++k) r.events[k] = d.event_counts[k];
  return r;
}

// The exported track label for a captured device.
std::string trace_label(const FleetDeviceResult& d) {
  return "device " + std::to_string(d.device) + " " + d.group + " " + d.task + "/" +
         d.runtime;
}

// Built-in aggregation sink: per-device scalar rows plus the streaming
// latency/staleness sketches over completed jobs. Order-independent by
// construction — rows sort by id at finalize, sketch merges are bin-wise
// integer adds — so every execution path lands on the same bytes.
class AggregateSink final : public FleetSink {
 public:
  std::vector<DeviceRow> rows;
  QuantileSketch latency{kSketchRelErr};
  QuantileSketch staleness{kSketchRelErr};
  // Retained event rings of trace_devices selections, in record order
  // until finalize sorts them by id (order-independent like rows).
  std::vector<obs::TraceCapture> traces;

  void record(const FleetDeviceResult& d) override {
    rows.push_back(row_of(d));
    for (const auto& j : d.jobs) {
      if (!j.skipped_infeasible && j.outcome == flex::Outcome::kCompleted) {
        latency.add(j.latency_s);
        staleness.add(j.staleness_s);
      }
    }
    if (d.trace_selected) {
      obs::TraceCapture cap;
      cap.id = d.device;
      cap.label = trace_label(d);
      cap.events = d.trace_events;
      cap.dropped = d.trace_dropped;
      cap.total = d.trace_total;
      traces.push_back(std::move(cap));
    }
  }
  void merge(const FleetSink& other) override {
    const auto* o = dynamic_cast<const AggregateSink*>(&other);
    check(o != nullptr, "FleetSink::merge: mismatched sink types");
    rows.insert(rows.end(), o->rows.begin(), o->rows.end());
    latency.merge(o->latency);
    staleness.merge(o->staleness);
    traces.insert(traces.end(), o->traces.begin(), o->traces.end());
  }
  void finalize() override {
    std::sort(rows.begin(), rows.end(),
              [](const DeviceRow& a, const DeviceRow& b) { return a.device < b.device; });
    std::sort(traces.begin(), traces.end(),
              [](const obs::TraceCapture& a, const obs::TraceCapture& b) {
                return a.id < b.id;
              });
  }
};

// Full per-device retention (detail=full): the records behind the
// per_device JSON block. Not attached under detail=aggregate, which is
// how huge populations avoid materializing 10^5 job arrays.
class DetailSink final : public FleetSink {
 public:
  std::vector<FleetDeviceResult> devices;

  void record(const FleetDeviceResult& d) override { devices.push_back(d); }
  void merge(const FleetSink& other) override {
    const auto* o = dynamic_cast<const DetailSink*>(&other);
    check(o != nullptr, "FleetSink::merge: mismatched sink types");
    devices.insert(devices.end(), o->devices.begin(), o->devices.end());
  }
  void finalize() override {
    std::sort(devices.begin(), devices.end(),
              [](const FleetDeviceResult& a, const FleetDeviceResult& b) {
                return a.device < b.device;
              });
  }
};

// The ONE aggregation path every mode funnels through — in-process runs
// and shard merges alike. Rows arrive sorted by device id; integer
// counters and double sums accumulate in that order, percentiles come
// from the sketches. This shared funnel is why `--jobs 8`, `--shards 4`
// and the serial event queue cannot disagree on a single byte.
FleetReport finalize_report(const FleetConfig& cfg, AggregateSink& agg,
                            DetailSink* detail) {
  FleetReport r;
  r.config = cfg;
  r.sketch_rel_err = kSketchRelErr;
  // Metrics: rows arrive sorted by id and the registry's cells are plain
  // integer sums/maxes, so this block lands on the same bytes on every
  // execution path, exactly like the counters below it.
  long* ev_cells[obs::kKindCount];
  for (int k = 0; k < obs::kKindCount; ++k) {
    ev_cells[k] = r.metrics.counter(std::string("event.") +
                                    obs::event_name(static_cast<obs::EventKind>(k)));
  }
  long* trace_dropped = r.metrics.counter("trace.dropped_events");
  long* max_reboots = r.metrics.gauge("fleet.max_device_reboots");
  for (const DeviceRow& row : agg.rows) {
    for (int k = 0; k < obs::kKindCount; ++k) *ev_cells[k] += row.events[k];
    if (row.reboots > *max_reboots) *max_reboots = row.reboots;
    r.total_jobs += row.jobs_total;
    r.jobs_completed += row.jobs_completed;
    r.jobs_in_deadline += row.jobs_in_deadline;
    r.jobs_skipped += row.jobs_skipped;
    r.jobs_dnf += row.jobs_dnf;
    r.jobs_starved += row.jobs_starved;
    r.jobs_livelock += row.jobs_livelock;
    r.energy_reclaimed_j += row.energy_reclaimed_j;
    r.total_reboots += row.reboots;
    r.total_tier_switches += row.tier_switches;
    r.total_steps += row.steps;
    r.total_energy_j += row.energy_j;
  }
  if (agg.latency.count() > 0) {
    r.latency_p50_s = agg.latency.quantile(0.50);
    r.latency_p90_s = agg.latency.quantile(0.90);
    r.latency_p99_s = agg.latency.quantile(0.99);
    r.latency_max_s = agg.latency.max();
    r.staleness_p50_s = agg.staleness.quantile(0.50);
    r.staleness_p90_s = agg.staleness.quantile(0.90);
    r.staleness_p99_s = agg.staleness.quantile(0.99);
    r.staleness_max_s = agg.staleness.max();
  }
  r.completion_rate =
      r.total_jobs == 0 ? 0.0
                        : static_cast<double>(r.jobs_completed) / static_cast<double>(r.total_jobs);
  r.deadline_rate =
      r.total_jobs == 0
          ? 0.0
          : static_cast<double>(r.jobs_in_deadline) / static_cast<double>(r.total_jobs);
  for (const obs::TraceCapture& cap : agg.traces) *trace_dropped += cap.dropped;
  r.traces = std::move(agg.traces);
  if (detail != nullptr) r.devices = std::move(detail->devices);
  return r;
}

void print_verbose(const FleetDeviceResult& res) {
  std::fprintf(stderr,
               "fleet dev %3d [%s %s/%s]: %d/%d jobs completed, %d in deadline, "
               "%ld reboots, %ld switches\n",
               res.device, res.group.c_str(), res.task.c_str(), res.runtime.c_str(),
               res.jobs_completed, res.jobs_total, res.jobs_in_deadline, res.reboots,
               res.tier_switches);
}

// Drives devices [begin, end) to completion and feeds each result to the
// sinks. Three execution paths, one result:
//   - serial (jobs == 1): the next-event engine — a min-heap keyed on
//     JobQueue::next_time_s() with a bounded resident window, devices
//     built on admission and destroyed on completion;
//   - parallel (jobs > 1): workers claim whole devices off an atomic
//     cursor, build-run-destroy each (already O(workers) resident);
//   - legacy round-robin: the pre-event-engine loop, kept so the
//     equivalence test can pin the engine bit-exact against it.
void run_range(const FleetWorld& w, const FleetConfig& cfg, int begin, int end,
               const FleetRunOptions& opts, const std::vector<FleetSink*>& sinks) {
  auto deliver = [&](const FleetDeviceResult& res) {
    for (FleetSink* s : sinks) s->record(res);
    if (opts.verbose) print_verbose(res);
  };

  const int run_jobs = std::max(opts.jobs, 1);
  // Wall-clock phase attribution (--profile): only the serial paths are
  // wired (one shared, unsynchronized sink). Device construction is timed
  // into build_s here; the executor attributes its own slices.
  flex::PhaseProfile* const prof = run_jobs == 1 || opts.legacy_round_robin ||
                                           end - begin <= 1
                                       ? opts.profile
                                       : nullptr;
  // Ring capture only for the ids in trace_devices (the counts-only trace
  // is unconditional, wired inside make_device).
  auto trace_cap_of = [&](int d) -> long {
    for (const int id : opts.trace_devices) {
      if (id == d) return std::max<long>(1, opts.trace_capacity);
    }
    return 0;
  };
  auto timed_build = [&](int d, dev::DeviceSlabs* slabs) {
    if (prof == nullptr) {
      return make_device(w, cfg, d, opts.force_admit_all, slabs, nullptr, trace_cap_of(d));
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto fd = make_device(w, cfg, d, opts.force_admit_all, slabs, prof, trace_cap_of(d));
    prof->build_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return fd;
  };
  if (opts.legacy_round_robin) {
    std::vector<std::unique_ptr<FleetDevice>> fleet;
    fleet.reserve(static_cast<std::size_t>(end - begin));
    for (int d = begin; d < end; ++d) {
      fleet.push_back(timed_build(d, nullptr));
    }
    bool any_live = true;
    while (any_live) {
      any_live = false;
      for (auto& fd : fleet) {
        if (fd->queue->finished()) continue;
        fd->queue->step();
        any_live = any_live || !fd->queue->finished();
      }
    }
    for (int d = begin; d < end; ++d) {
      deliver(distill(w, cfg, d, *fleet[static_cast<std::size_t>(d - begin)]));
    }
  } else if (run_jobs == 1 || end - begin <= 1) {
    // Next-event engine. The heap orders (next actionable instant,
    // device id): parked devices sink until their release arrives, live
    // devices interleave in global virtual time, and ties break by id —
    // fully deterministic. Correctness does not depend on the ordering
    // at all (devices are independent); the keys exist so a device
    // sleeping through a 2 s duty-cycle park costs one heap pop instead
    // of thousands of no-op slices.
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    std::vector<std::unique_ptr<FleetDevice>> live(static_cast<std::size_t>(end - begin));
    const int window = std::max(1, opts.max_resident);
    int next_build = begin;
    int resident = 0;
    // Slab arena: retired devices donate their SRAM/FRAM word buffers,
    // newly admitted ones are built from them, so the steady state
    // allocates the two big per-device arrays once per window slot
    // instead of once per device. (Groups can differ in FRAM size; the
    // adopting region resizes, which still reuses capacity when the next
    // group's image is no larger.)
    std::vector<dev::DeviceSlabs> arena;
    arena.reserve(static_cast<std::size_t>(window));
    auto admit = [&] {
      while (resident < window && next_build < end) {
        auto& slot = live[static_cast<std::size_t>(next_build - begin)];
        dev::DeviceSlabs* slabs = arena.empty() ? nullptr : &arena.back();
        slot = timed_build(next_build, slabs);
        if (slabs != nullptr) arena.pop_back();
        heap.emplace(slot->queue->next_time_s(), next_build);
        ++resident;
        ++next_build;
      }
    };
    admit();
    while (!heap.empty()) {
      const int d = heap.top().second;
      heap.pop();
      auto& slot = live[static_cast<std::size_t>(d - begin)];
      slot->queue->step();
      if (slot->queue->finished()) {
        deliver(distill(w, cfg, d, *slot));
        if (next_build < end) {
          arena.emplace_back();
          slot->device.release_slabs(arena.back());
        }
        slot.reset();  // free the window slot before admitting the next id
        --resident;
        admit();
      } else {
        heap.emplace(slot->queue->next_time_s(), d);
      }
    }
  } else {
    std::atomic<int> cursor{begin};
    std::mutex mu;
    auto worker = [&] {
      for (int d = cursor.fetch_add(1); d < end; d = cursor.fetch_add(1)) {
        auto fd = make_device(w, cfg, d, opts.force_admit_all, nullptr, nullptr,
                              trace_cap_of(d));
        while (fd->queue->step()) {
        }
        const FleetDeviceResult res = distill(w, cfg, d, *fd);
        fd.reset();
        std::lock_guard<std::mutex> lk(mu);
        deliver(res);
      }
    };
    std::vector<std::thread> pool;
    const int n_threads = std::min(run_jobs, end - begin);
    pool.reserve(static_cast<std::size_t>(n_threads));
    for (int t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
}

flex::Outcome parse_outcome(const std::string& name) {
  if (name == "completed") return flex::Outcome::kCompleted;
  if (name == "dnf") return flex::Outcome::kDidNotFinish;
  if (name == "starved") return flex::Outcome::kStarved;
  fail("fleet shard: unknown outcome \"" + name + "\"");
}

double shard_num(const std::string& field, const std::string& where) {
  const auto v = parse_double(field);
  check(v.has_value(), where + ": bad number \"" + field + "\"");
  return *v;
}

// One parsed shard partial (schema ehdnn-fleet-shard-v2).
struct ShardPartial {
  int shard = 0;
  int shards = 0;
  int begin = 0;
  int end = 0;
  std::string config_text;  // the echoed config, verbatim
  AggregateSink agg;
  DetailSink detail;
  bool has_detail = false;
};

ShardPartial parse_shard_partial(std::istream& is, const std::string& where) {
  ShardPartial p;
  std::string line;
  check(static_cast<bool>(std::getline(is, line)) && line == "ehdnn-fleet-shard-v2",
        where + ": not a fleet shard partial (bad magic; v1 partials predate "
                "event tracing — regenerate with this build)");
  check(static_cast<bool>(std::getline(is, line)), where + ": truncated header");
  {
    std::istringstream hs(line);
    std::string tag;
    hs >> tag >> p.shard >> p.shards >> p.begin >> p.end;
    check(tag == "range" && !hs.fail(), where + ": bad range line \"" + line + "\"");
  }
  check(static_cast<bool>(std::getline(is, line)) && line == "config-begin",
        where + ": missing config echo");
  while (std::getline(is, line) && line != "config-end") p.config_text += line + "\n";
  check(line == "config-end", where + ": unterminated config echo");

  bool saw_end = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "end") {
      saw_end = true;
      break;
    } else if (tag == "sketch") {
      std::string which;
      ls >> which;
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      if (which == "latency") {
        p.agg.latency = QuantileSketch::deserialize(rest);
      } else if (which == "staleness") {
        p.agg.staleness = QuantileSketch::deserialize(rest);
      } else {
        fail(where + ": unknown sketch \"" + which + "\"");
      }
    } else if (tag == "row") {
      DeviceRow r;
      std::string energy, reclaimed;
      ls >> r.device >> r.jobs_total >> r.jobs_completed >> r.jobs_in_deadline >>
          r.jobs_skipped >> r.jobs_dnf >> r.jobs_starved >> r.jobs_livelock >> r.reboots >>
          r.tier_switches >> r.steps >> energy >> reclaimed;
      for (int k = 0; k < obs::kKindCount; ++k) ls >> r.events[k];
      check(!ls.fail(), where + ": bad row \"" + line + "\"");
      r.energy_j = shard_num(energy, where);
      r.energy_reclaimed_j = shard_num(reclaimed, where);
      p.agg.rows.push_back(r);
    } else if (tag == "trace") {
      obs::TraceCapture cap;
      std::size_t n_events = 0;
      ls >> cap.id >> n_events >> cap.dropped >> cap.total;
      check(!ls.fail(), where + ": bad trace header \"" + line + "\"");
      std::getline(ls, cap.label);
      if (!cap.label.empty() && cap.label.front() == ' ') cap.label.erase(0, 1);
      cap.events.reserve(n_events);
      for (std::size_t i = 0; i < n_events; ++i) {
        check(static_cast<bool>(std::getline(is, line)), where + ": truncated trace");
        std::istringstream es(line);
        std::string etag, ts;
        int kind = 0;
        obs::Event e;
        es >> etag >> ts >> kind >> e.a >> e.b;
        check(etag == "ev" && !es.fail() && kind >= 0 && kind < obs::kKindCount,
              where + ": bad event line \"" + line + "\"");
        e.t_s = shard_num(ts, where);
        e.kind = static_cast<obs::EventKind>(kind);
        cap.events.push_back(e);
      }
      p.agg.traces.push_back(std::move(cap));
    } else if (tag == "job") {
      p.has_detail = true;
      int device = 0;
      sched::JobRecord j;
      std::string release, start, finish, latency, staleness, outcome, met, lock, skip,
          energy, reclaimed;
      ls >> device >> j.job >> release >> start >> finish >> latency >> staleness >>
          outcome >> met >> lock >> skip >> j.runtime >> j.reboots >> j.checkpoints >>
          j.progress_commits >> j.tier_switches >> energy >> reclaimed;
      check(!ls.fail(), where + ": bad job line \"" + line + "\"");
      j.release_s = shard_num(release, where);
      j.start_s = shard_num(start, where);
      j.finish_s = shard_num(finish, where);
      j.latency_s = shard_num(latency, where);
      j.staleness_s = shard_num(staleness, where);
      j.outcome = parse_outcome(outcome);
      j.met_deadline = met == "1";
      j.livelock = lock == "1";
      j.skipped_infeasible = skip == "1";
      j.energy_j = shard_num(energy, where);
      j.energy_reclaimed_j = shard_num(reclaimed, where);
      if (p.detail.devices.empty() || p.detail.devices.back().device != device) {
        FleetDeviceResult res;
        res.device = device;
        p.detail.devices.push_back(std::move(res));
      }
      p.detail.devices.back().jobs.push_back(std::move(j));
    } else {
      fail(where + ": unknown record \"" + tag + "\"");
    }
  }
  check(saw_end, where + ": truncated partial (no end marker)");
  return p;
}

}  // namespace

int FleetConfig::total_devices() const {
  int n = 0;
  for (const auto& g : groups) n += g.count;
  return n;
}

FleetConfig parse_fleet_config(std::istream& is) {
  FleetConfig cfg;
  bool saw_fleet_line = false;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string where = "fleet config line " + std::to_string(lineno);
    // Strip comments, tokenize on whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    for (std::string t; ls >> t;) tokens.push_back(t);
    if (tokens.empty()) continue;

    std::map<std::string, std::string> kv;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      check(eq != std::string::npos && eq > 0,
            where + ": expected key=value, got \"" + tokens[i] + "\"");
      const std::string key = tokens[i].substr(0, eq);
      check(kv.find(key) == kv.end(), where + ": duplicate key \"" + key + "\"");
      kv[key] = tokens[i].substr(eq + 1);
    }
    auto take = [&](const char* key) -> std::optional<std::string> {
      const auto it = kv.find(key);
      if (it == kv.end()) return std::nullopt;
      std::string v = it->second;
      kv.erase(it);
      return v;
    };
    auto take_num = [&](const char* key) -> std::optional<double> {
      const auto v = take(key);
      if (!v.has_value()) return std::nullopt;
      const auto d = parse_double(*v);
      check(d.has_value(), where + ": bad number for " + key + ": \"" + *v + "\"");
      return d;
    };
    // Integer-valued keys: range-checked BEFORE the cast (a double out of
    // the target's range is undefined behavior at the conversion, not a
    // garbage value) so malformed entries throw as documented.
    auto take_int = [&](const char* key, double lo, double hi) -> std::optional<long long> {
      const auto v = take_num(key);
      if (!v.has_value()) return std::nullopt;
      check(*v >= lo && *v <= hi && *v == std::floor(*v),
            where + ": " + key + " must be an integer in [" + std::to_string(lo) + ", " +
                std::to_string(hi) + "]");
      return static_cast<long long>(*v);
    };

    if (tokens[0] == "fleet") {
      check(!saw_fleet_line, where + ": duplicate fleet line");
      saw_fleet_line = true;
      if (const auto v = take("source")) cfg.source = *v;
      if (const auto v = take_num("spread")) cfg.offset_spread_s = *v;
      if (const auto v = take("seed")) {
        const char* s = v->c_str();
        char* end = nullptr;
        cfg.seed = std::strtoull(s, &end, 0);
        check(end != s && *end == '\0', where + ": bad seed \"" + *v + "\"");
      }
      if (const auto v = take("detail")) {
        if (*v == "full") {
          cfg.per_device_detail = true;
        } else if (*v == "aggregate") {
          cfg.per_device_detail = false;
        } else {
          fail(where + ": detail must be \"full\" or \"aggregate\", got \"" + *v + "\"");
        }
      }
    } else if (tokens[0] == "group") {
      FleetGroup g;
      g.name = "group" + std::to_string(cfg.groups.size());
      if (const auto v = take("name")) g.name = *v;
      if (const auto v = take_int("count", 0, 1e9)) g.count = static_cast<int>(*v);
      if (const auto v = take("task")) g.task = models::parse_task(*v);
      if (const auto v = take("runtime")) g.agenda.runtime = *v;
      if (const auto v = take_num("cap")) g.capacitance_f = *v;
      if (const auto v = take_num("max_off")) g.max_off_s = *v;
      if (const auto v = take_int("reboots", 0, 1e15)) g.max_reboots = static_cast<long>(*v);
      if (const auto v = take_int("max_futile", 0, 1e15)) g.max_futile = static_cast<long>(*v);
      if (const auto v = take_int("jobs", 0, 1e9)) g.agenda.jobs = static_cast<int>(*v);
      if (const auto v = take_num("period")) g.agenda.period_s = *v;
      if (const auto v = take_num("deadline")) g.agenda.deadline_s = *v;
      if (const auto v = take("sched")) g.sched_spec = *v;
      if (const auto v = take_int("fram", 0, 1e12)) {
        g.fram_words = static_cast<std::size_t>(*v);
      }
      cfg.groups.push_back(std::move(g));
    } else {
      fail(where + ": expected \"fleet\" or \"group\", got \"" + tokens[0] + "\"");
    }
    check(kv.empty(),
          where + ": unknown key \"" + (kv.empty() ? "" : kv.begin()->first) + "\"");
  }
  validate(cfg);
  return cfg;
}

FleetConfig parse_fleet_config_file(const std::string& path) {
  std::ifstream f(path);
  check(f.good(), "fleet config: cannot read " + path);
  return parse_fleet_config(f);
}

// parse_task takes the lowercase key, task_name() returns the display
// name — the writer must emit the key or the round-trip breaks.
static const char* task_key(models::Task t) {
  switch (t) {
    case models::Task::kMnist: return "mnist";
    case models::Task::kHar: return "har";
    case models::Task::kOkg: return "okg";
  }
  return "?";
}

void write_fleet_config(std::ostream& os, const FleetConfig& cfg) {
  os << "fleet source=" << cfg.source << " spread=" << g17(cfg.offset_spread_s)
     << " seed=" << cfg.seed << " detail=" << (cfg.per_device_detail ? "full" : "aggregate")
     << "\n";
  for (const FleetGroup& g : cfg.groups) {
    os << "group name=" << g.name << " count=" << g.count
       << " task=" << task_key(g.task) << " runtime=" << g.agenda.runtime
       << " cap=" << g17(g.capacitance_f) << " max_off=" << g17(g.max_off_s)
       << " reboots=" << g.max_reboots << " max_futile=" << g.max_futile
       << " jobs=" << g.agenda.jobs << " period=" << g17(g.agenda.period_s)
       << " deadline=" << g17(g.agenda.deadline_s);
    if (!g.sched_spec.empty()) os << " sched=" << g.sched_spec;
    if (g.fram_words != 0) os << " fram=" << g.fram_words;
    os << "\n";
  }
}

FleetEngine::FleetEngine(FleetConfig cfg) : cfg_(std::move(cfg)) { validate(cfg_); }

FleetEngine& FleetEngine::add_sink(FleetSink& sink) {
  sinks_.push_back(&sink);
  return *this;
}

// Shared FleetRunOptions validation: the profile request must never be
// silently dropped (jobs > 1 has no synchronized sink — satellite of the
// observability PR), and trace selections must name real devices.
static void validate_run_options(const FleetRunOptions& ropts, int n) {
  check(ropts.profile == nullptr || std::max(ropts.jobs, 1) == 1,
        "fleet: --profile needs --jobs 1 (one shared, unsynchronized sink); "
        "the request used to be silently ignored under a worker pool");
  for (const int id : ropts.trace_devices) {
    check(id >= 0 && id < n,
          "fleet: trace device id " + std::to_string(id) + " out of range [0, " +
              std::to_string(n) + ")");
  }
  check(ropts.trace_capacity >= 1, "fleet: trace_capacity must be >= 1");
}

FleetReport FleetEngine::run(const FleetRunOptions& ropts) {
  const auto wall0 = std::chrono::steady_clock::now();
  const FleetWorld w = build_world(cfg_);
  validate_run_options(ropts, w.n);
  if (ropts.profile != nullptr) {
    // World build (model gen + per-group template compiles) is build
    // time, like device stamping.
    ropts.profile->build_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  }

  AggregateSink agg;
  DetailSink detail;
  std::vector<FleetSink*> sinks = sinks_;
  sinks.push_back(&agg);
  if (cfg_.per_device_detail) sinks.push_back(&detail);

  run_range(w, cfg_, 0, w.n, ropts, sinks);
  for (FleetSink* s : sinks) s->finalize();

  FleetReport r = finalize_report(cfg_, agg, cfg_.per_device_detail ? &detail : nullptr);
  if (ropts.profile != nullptr) {
    // Whatever the attributed phases did not claim is engine overhead:
    // the event heap, sinks, reporting, and instrumentation slack.
    flex::PhaseProfile& p = *ropts.profile;
    const double total =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
    p.engine_s = std::max(
        0.0, total - p.build_s - p.recharge_s - p.kernel_s - p.checkpoint_s);
  }

  // Fixed-runtime baselines: the same population with every agenda forced
  // to one key — the "adaptive vs best fixed runtime" evidence.
  for (const auto& key : ropts.baseline_runtimes) {
    FleetConfig bc = cfg_;
    for (auto& g : bc.groups) {
      g.agenda.runtime = key;
      g.sched_spec.clear();
      g.fram_words = 0;  // re-auto-size for the forced variant
    }
    FleetRunOptions bo;
    bo.jobs = ropts.jobs;
    bo.max_resident = ropts.max_resident;
    bo.legacy_round_robin = ropts.legacy_round_robin;
    const FleetReport br = FleetEngine(bc).run(bo);
    r.baselines.push_back({key, br.jobs_completed, br.jobs_in_deadline});
    if (ropts.verbose) {
      std::fprintf(stderr, "fleet baseline %-8s: %d jobs completed, %d in deadline\n",
                   key.c_str(), br.jobs_completed, br.jobs_in_deadline);
    }
  }

  // Admission comparison: the same population with energy-budgeted
  // admission forced off — every release runs, doomed or not.
  if (ropts.compare_admission) {
    FleetRunOptions ao;
    ao.jobs = ropts.jobs;
    ao.max_resident = ropts.max_resident;
    ao.legacy_round_robin = ropts.legacy_round_robin;
    ao.force_admit_all = true;
    const FleetReport ar = FleetEngine(cfg_).run(ao);
    r.admission_baseline.push_back({"admit=all", ar.jobs_completed, ar.jobs_in_deadline});
    if (ropts.verbose) {
      std::fprintf(stderr, "fleet admit=all baseline: %d jobs completed, %d in deadline\n",
                   ar.jobs_completed, ar.jobs_in_deadline);
    }
  }
  return r;
}

void FleetEngine::run_shard(std::ostream& os, int shard, int shards,
                            const FleetRunOptions& ropts) {
  check(shards >= 1, "run_shard: shards must be >= 1");
  check(shard >= 0 && shard < shards, "run_shard: shard index out of range");
  check(ropts.baseline_runtimes.empty() && !ropts.compare_admission,
        "run_shard: baseline/admission reruns are whole-population operations");
  const FleetWorld w = build_world(cfg_);
  validate_run_options(ropts, w.n);
  const int begin = static_cast<int>(static_cast<long long>(w.n) * shard / shards);
  const int end = static_cast<int>(static_cast<long long>(w.n) * (shard + 1) / shards);

  AggregateSink agg;
  DetailSink detail;
  std::vector<FleetSink*> sinks = sinks_;
  sinks.push_back(&agg);
  if (cfg_.per_device_detail) sinks.push_back(&detail);

  run_range(w, cfg_, begin, end, ropts, sinks);
  for (FleetSink* s : sinks) s->finalize();

  os << "ehdnn-fleet-shard-v2\n";
  os << "range " << shard << " " << shards << " " << begin << " " << end << "\n";
  os << "config-begin\n";
  write_fleet_config(os, cfg_);
  os << "config-end\n";
  os << "sketch latency ";
  agg.latency.serialize(os);
  os << "\nsketch staleness ";
  agg.staleness.serialize(os);
  os << "\n";
  for (const DeviceRow& r : agg.rows) {
    os << "row " << r.device << " " << r.jobs_total << " " << r.jobs_completed << " "
       << r.jobs_in_deadline << " " << r.jobs_skipped << " " << r.jobs_dnf << " "
       << r.jobs_starved << " " << r.jobs_livelock << " " << r.reboots << " "
       << r.tier_switches << " " << r.steps << " " << g17(r.energy_j) << " "
       << g17(r.energy_reclaimed_j);
    // v2: the per-kind event totals ride the row as one more mergeable
    // integer block.
    for (int k = 0; k < obs::kKindCount; ++k) os << " " << r.events[k];
    os << "\n";
  }
  // v2: retained event rings of this shard's trace_devices selections.
  // Timestamps round-trip as %.17g, so the merged captures are
  // bit-identical to an unsharded run's.
  for (const obs::TraceCapture& cap : agg.traces) {
    os << "trace " << cap.id << " " << cap.events.size() << " " << cap.dropped << " "
       << cap.total << " " << cap.label << "\n";
    for (const obs::Event& e : cap.events) {
      os << "ev " << g17(e.t_s) << " " << static_cast<int>(e.kind) << " " << e.a << " "
         << e.b << "\n";
    }
  }
  if (cfg_.per_device_detail) {
    for (const FleetDeviceResult& d : detail.devices) {
      for (const sched::JobRecord& j : d.jobs) {
        os << "job " << d.device << " " << j.job << " " << g17(j.release_s) << " "
           << g17(j.start_s) << " " << g17(j.finish_s) << " " << g17(j.latency_s) << " "
           << g17(j.staleness_s) << " " << flex::outcome_name(j.outcome) << " "
           << (j.met_deadline ? 1 : 0) << " " << (j.livelock ? 1 : 0) << " "
           << (j.skipped_infeasible ? 1 : 0) << " " << j.runtime << " " << j.reboots << " "
           << j.checkpoints << " " << j.progress_commits << " " << j.tier_switches << " "
           << g17(j.energy_j) << " " << g17(j.energy_reclaimed_j) << "\n";
      }
    }
  }
  os << "end\n";
}

FleetReport merge_fleet_shards(const std::vector<std::string>& paths) {
  check(!paths.empty(), "merge_fleet_shards: need at least one partial");
  std::vector<ShardPartial> parts;
  parts.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream f(path);
    check(f.good(), "merge_fleet_shards: cannot read " + path);
    parts.push_back(parse_shard_partial(f, path));
  }
  const int shards = parts.front().shards;
  check(static_cast<std::size_t>(shards) == parts.size(),
        "merge_fleet_shards: expected " + std::to_string(shards) + " partials, got " +
            std::to_string(parts.size()));
  std::sort(parts.begin(), parts.end(),
            [](const ShardPartial& a, const ShardPartial& b) { return a.shard < b.shard; });

  FleetConfig cfg;
  {
    std::istringstream cs(parts.front().config_text);
    cfg = parse_fleet_config(cs);
  }
  const int n = cfg.total_devices();
  AggregateSink agg;
  DetailSink detail;
  for (int i = 0; i < shards; ++i) {
    const ShardPartial& p = parts[static_cast<std::size_t>(i)];
    check(p.shard == i, "merge_fleet_shards: missing or duplicate shard " + std::to_string(i));
    check(p.shards == shards, "merge_fleet_shards: inconsistent shard counts");
    check(p.config_text == parts.front().config_text,
          "merge_fleet_shards: partials ran different configs");
    const int begin = static_cast<int>(static_cast<long long>(n) * i / shards);
    const int end = static_cast<int>(static_cast<long long>(n) * (i + 1) / shards);
    check(p.begin == begin && p.end == end,
          "merge_fleet_shards: shard " + std::to_string(i) + " covers the wrong range");
    check(static_cast<int>(p.agg.rows.size()) == end - begin,
          "merge_fleet_shards: shard " + std::to_string(i) + " is missing device rows");
    agg.merge(p.agg);
    if (cfg.per_device_detail) detail.merge(p.detail);
  }
  agg.finalize();
  detail.finalize();

  if (cfg.per_device_detail) {
    // Job lines carry only what rows cannot reconstruct; refill each
    // device's coordinates and verdict buckets from the config and its
    // records, exactly as distill() does in-process.
    std::map<int, std::vector<sched::JobRecord>> jobs_by_device;
    for (auto& d : detail.devices) jobs_by_device[d.device] = std::move(d.jobs);
    detail.devices.clear();
    std::vector<std::size_t> device_group;
    device_group.reserve(static_cast<std::size_t>(n));
    for (std::size_t gi = 0; gi < cfg.groups.size(); ++gi) {
      for (int k = 0; k < cfg.groups[gi].count; ++k) device_group.push_back(gi);
    }
    for (const DeviceRow& row : agg.rows) {
      const FleetGroup& g = cfg.groups[device_group[static_cast<std::size_t>(row.device)]];
      FleetDeviceResult res;
      res.device = row.device;
      res.group = g.name;
      res.offset_s =
          cfg.offset_spread_s * static_cast<double>(row.device) / static_cast<double>(n);
      res.task = models::task_name(g.task);
      res.runtime = g.agenda.runtime;
      res.capacitance_f = g.capacitance_f;
      const auto it = jobs_by_device.find(row.device);
      check(it != jobs_by_device.end(),
            "merge_fleet_shards: no job records for device " + std::to_string(row.device));
      res.jobs = std::move(it->second);
      res.jobs_total = row.jobs_total;
      res.jobs_completed = row.jobs_completed;
      res.jobs_in_deadline = row.jobs_in_deadline;
      res.jobs_skipped = row.jobs_skipped;
      res.jobs_dnf = row.jobs_dnf;
      res.jobs_starved = row.jobs_starved;
      res.jobs_livelock = row.jobs_livelock;
      res.reboots = row.reboots;
      res.tier_switches = row.tier_switches;
      res.steps = row.steps;
      res.energy_j = row.energy_j;
      res.energy_reclaimed_j = row.energy_reclaimed_j;
      detail.devices.push_back(std::move(res));
    }
  }
  return finalize_report(cfg, agg, cfg.per_device_detail ? &detail : nullptr);
}

FleetReport run_fleet(const FleetConfig& cfg, const FleetRunOptions& ropts) {
  return FleetEngine(cfg).run(ropts);
}

void write_fleet_json(std::ostream& os, const FleetReport& r) {
  const FleetConfig& c = r.config;
  os << "{\n  \"schema\": \"ehdnn-fleet-v6\",\n";
  os << "  \"seed\": " << c.seed << ",\n";
  os << "  \"source\": " << json_str(c.source) << ",\n";
  os << "  \"offset_spread_s\": " << c.offset_spread_s << ",\n";
  os << "  \"devices\": " << c.total_devices() << ",\n";
  os << "  \"detail\": " << json_str(c.per_device_detail ? "full" : "aggregate") << ",\n";
  os << "  \"groups\": [\n";
  for (std::size_t i = 0; i < c.groups.size(); ++i) {
    const FleetGroup& g = c.groups[i];
    os << "    {\"name\": " << json_str(g.name) << ", \"count\": " << g.count
       << ", \"task\": " << json_str(models::task_name(g.task))
       << ", \"runtime\": " << json_str(g.agenda.runtime)
       << ", \"capacitance_f\": " << g.capacitance_f << ", \"max_off_s\": " << g.max_off_s
       << ", \"max_futile\": " << g.max_futile
       << ",\n     \"jobs\": " << g.agenda.jobs << ", \"period_s\": " << g.agenda.period_s
       << ", \"deadline_s\": " << json_deadline(g.agenda.deadline_s)
       << ", \"sched\": " << json_str(g.sched_spec) << "}"
       << (i + 1 < c.groups.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"aggregate\": {\n";
  os << "    \"total_jobs\": " << r.total_jobs << ", \"completed\": " << r.jobs_completed
     << ", \"in_deadline\": " << r.jobs_in_deadline << ", \"dnf\": " << r.jobs_dnf
     << ", \"starved\": " << r.jobs_starved << ", \"livelock\": " << r.jobs_livelock
     << ",\n";
  os << "    \"admission\": {\"skipped_infeasible\": " << r.jobs_skipped
     << ", \"energy_reclaimed_j\": " << r.energy_reclaimed_j << "},\n";
  os << "    \"completion_rate\": " << r.completion_rate
     << ", \"deadline_rate\": " << r.deadline_rate << ",\n";
  os << "    \"percentiles\": \"qsketch\", \"sketch_rel_err\": " << r.sketch_rel_err << ",\n";
  os << "    \"latency_p50_s\": " << r.latency_p50_s << ", \"latency_p90_s\": "
     << r.latency_p90_s << ", \"latency_p99_s\": " << r.latency_p99_s
     << ", \"latency_max_s\": " << r.latency_max_s << ",\n";
  os << "    \"staleness_p50_s\": " << r.staleness_p50_s << ", \"staleness_p90_s\": "
     << r.staleness_p90_s << ", \"staleness_p99_s\": " << r.staleness_p99_s
     << ", \"staleness_max_s\": " << r.staleness_max_s << ",\n";
  os << "    \"total_reboots\": " << r.total_reboots << ", \"tier_switches\": "
     << r.total_tier_switches << ", \"total_steps\": " << r.total_steps
     << ", \"total_energy_j\": " << r.total_energy_j << "\n  },\n";
  obs::write_metrics_json(os, r.metrics, "  ");
  os << ",\n";
  os << "  \"baselines\": [";
  for (std::size_t i = 0; i < r.baselines.size(); ++i) {
    const FleetBaseline& b = r.baselines[i];
    os << (i == 0 ? "\n" : "") << "    {\"runtime\": " << json_str(b.runtime)
       << ", \"jobs_completed\": " << b.jobs_completed
       << ", \"jobs_in_deadline\": " << b.jobs_in_deadline << "}"
       << (i + 1 < r.baselines.size() ? ",\n" : "\n  ");
  }
  os << "],\n";
  os << "  \"admission_baseline\": [";
  for (std::size_t i = 0; i < r.admission_baseline.size(); ++i) {
    const FleetBaseline& b = r.admission_baseline[i];
    os << (i == 0 ? "\n" : "") << "    {\"mode\": " << json_str(b.runtime)
       << ", \"jobs_completed\": " << b.jobs_completed
       << ", \"jobs_in_deadline\": " << b.jobs_in_deadline << "}"
       << (i + 1 < r.admission_baseline.size() ? ",\n" : "\n  ");
  }
  os << "],\n";
  os << "  \"per_device\": [";
  for (std::size_t i = 0; i < r.devices.size(); ++i) {
    const FleetDeviceResult& d = r.devices[i];
    os << (i == 0 ? "\n" : "") << "    {\"device\": " << d.device
       << ", \"group\": " << json_str(d.group)
       << ", \"offset_s\": " << d.offset_s << ", \"task\": " << json_str(d.task)
       << ", \"runtime\": " << json_str(d.runtime)
       << ", \"capacitance_f\": " << d.capacitance_f << ",\n     \"jobs_completed\": "
       << d.jobs_completed << ", \"jobs_in_deadline\": " << d.jobs_in_deadline
       << ", \"jobs_skipped\": " << d.jobs_skipped
       << ", \"reboots\": " << d.reboots << ", \"tier_switches\": " << d.tier_switches
       << ", \"energy_j\": " << d.energy_j << ", \"steps\": " << d.steps << ",\n";
    os << "     \"jobs\": [\n";
    for (std::size_t j = 0; j < d.jobs.size(); ++j) {
      const sched::JobRecord& jr = d.jobs[j];
      // The per-job verdict: admission skips get their own outcome
      // string (the run never started, so the runtime outcome would lie),
      // and a watchdog-tripped DNF reports as "livelock" (the run was
      // spinning, not merely slow).
      const std::string verdict = jr.skipped_infeasible
                                      ? "skipped_infeasible"
                                      : (jr.livelock ? "livelock"
                                                     : flex::outcome_name(jr.outcome));
      os << "      {\"job\": " << jr.job << ", \"release_s\": " << jr.release_s
         << ", \"start_s\": " << jr.start_s << ", \"finish_s\": " << jr.finish_s
         << ", \"latency_s\": " << jr.latency_s << ", \"staleness_s\": " << jr.staleness_s
         << ",\n       \"outcome\": " << json_str(verdict)
         << ", \"met_deadline\": " << (jr.met_deadline ? "true" : "false")
         << ", \"runtime\": " << json_str(jr.runtime) << ", \"reboots\": " << jr.reboots
         << ", \"checkpoints\": " << jr.checkpoints
         << ", \"progress_commits\": " << jr.progress_commits
         << ", \"tier_switches\": " << jr.tier_switches
         << ", \"energy_j\": " << jr.energy_j
         << ", \"energy_reclaimed_j\": " << jr.energy_reclaimed_j << "}"
         << (j + 1 < d.jobs.size() ? "," : "") << "\n";
    }
    os << "     ]}" << (i + 1 < r.devices.size() ? ",\n" : "\n  ");
  }
  os << "]\n}\n";
}

}  // namespace ehdnn::sim
