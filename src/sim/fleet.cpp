#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <ostream>

#include "core/ace/compiled_model.h"
#include "core/flex/executor.h"
#include "power/capacitor.h"
#include "power/factory.h"
#include "power/monitor.h"
#include "sim/scenario.h"
#include "util/check.h"
#include "util/rng.h"

namespace ehdnn::sim {

namespace {

// Everything one simulated device owns. Pointer-stable (held by
// unique_ptr) because supplies and executors point into it.
struct FleetDevice {
  power::TimeOffsetSource source;
  power::CapacitorSupply supply;
  dev::Device device;
  ace::CompiledModel cm;
  std::vector<fx::q15_t> input;
  std::unique_ptr<flex::RuntimePolicy> policy;
  flex::IntermittentExecutor ex;
  flex::RunOptions opts;
  long steps = 0;

  FleetDevice(const power::HarvestSource& base, double offset,
              const power::CapacitorConfig& ccfg, const dev::DeviceConfig& dcfg,
              const quant::QuantModel& qm, std::vector<fx::q15_t> in,
              std::unique_ptr<flex::RuntimePolicy> pol)
      : source(base, offset),
        supply(source, ccfg),
        device(dcfg),
        input(std::move(in)),
        policy(std::move(pol)),
        ex(*policy) {
    // Supply must be attached before compile so deploy-time accounting
    // matches the scenario engine's run_cell exactly.
    device.attach_supply(&supply);
    cm = ace::compile(qm, device);
  }
};

double nearest_rank(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out + "\"";
}

}  // namespace

FleetReport run_fleet(const FleetOptions& opts) {
  check(opts.devices > 0, "fleet: need at least one device");
  const bool compressed = runtime_uses_compressed_model(opts.runtime);  // throws on bad key
  const auto base_source = power::make_harvest_source(opts.source);

  // One model instance for the whole fleet, seeded like the scenario
  // sweep; each device gets its own derived input (different users,
  // different samples).
  Rng model_rng(opts.seed + static_cast<std::uint64_t>(opts.task));
  const quant::QuantModel qm = models::make_deployed_qmodel(opts.task, compressed, model_rng);
  const std::size_t in_size = qm.layers.front().in_size();

  power::CapacitorConfig ccfg;
  ccfg.capacitance_f = opts.capacitance_f;
  ccfg.max_off_s = opts.max_off_s;

  const int n = opts.devices;
  std::vector<std::unique_ptr<FleetDevice>> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    const double offset =
        opts.offset_spread_s * static_cast<double>(d) / static_cast<double>(n);
    dev::DeviceConfig dcfg = models::deployment_device_config(compressed);
    dcfg.scramble_seed =
        opts.seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(d) + 1);
    Rng in_rng(opts.seed ^ (0xf1ee7u + static_cast<std::uint64_t>(d) * 0x10001u));
    std::vector<fx::q15_t> input(in_size);
    for (auto& v : input) v = static_cast<fx::q15_t>(in_rng.next_u64());
    fleet.push_back(std::make_unique<FleetDevice>(*base_source, offset, ccfg, dcfg, qm,
                                                  std::move(input),
                                                  make_policy(opts.runtime)));
    FleetDevice& fd = *fleet.back();
    fd.opts.max_reboots = opts.max_reboots;
    fd.opts.flex_v_warn = power::warn_voltage_for(
        fd.supply.config(), flex::worst_checkpoint_energy(fd.cm, fd.device.cost()) + 5e-6,
        3.0);
    fd.ex.start(fd.device, fd.cm, fd.input, fd.opts);
  }

  // Round-robin scheduler: one executor slice per live device per round.
  // Devices suspend between slices at zero cost, so the interleaving is
  // free — and the loop is the fleet-scale use of the incremental API.
  bool any_live = true;
  while (any_live) {
    any_live = false;
    for (auto& fd : fleet) {
      if (fd->ex.finished()) continue;
      fd->ex.step();
      ++fd->steps;
      any_live = any_live || !fd->ex.finished();
    }
  }

  FleetReport r;
  r.opts = opts;
  r.devices.reserve(static_cast<std::size_t>(n));
  std::vector<double> latencies;
  for (int d = 0; d < n; ++d) {
    FleetDevice& fd = *fleet[static_cast<std::size_t>(d)];
    const flex::RunStats st = fd.ex.take_stats();
    FleetDeviceResult res;
    res.device = d;
    res.offset_s = fd.source.offset();
    res.outcome = st.outcome;
    res.on_s = st.on_seconds;
    res.off_s = st.off_seconds;
    res.total_s = st.total_seconds();
    res.energy_j = st.energy_j;
    res.reboots = st.reboots;
    res.checkpoints = st.checkpoints;
    res.progress_commits = st.progress_commits;
    res.steps = fd.steps;
    switch (st.outcome) {
      case flex::Outcome::kCompleted:
        ++r.completed_count;
        latencies.push_back(res.total_s);
        break;
      case flex::Outcome::kDidNotFinish:
        ++r.dnf_count;
        break;
      case flex::Outcome::kStarved:
        ++r.starved_count;
        break;
    }
    r.total_reboots += res.reboots;
    r.total_energy_j += res.energy_j;
    if (opts.verbose) {
      std::fprintf(stderr, "fleet dev %3d (offset %.4fs): %s in %.4fs, %ld reboots\n", d,
                   res.offset_s, flex::outcome_name(res.outcome), res.total_s, res.reboots);
    }
    r.devices.push_back(res);
  }

  std::sort(latencies.begin(), latencies.end());
  r.latency_p50_s = nearest_rank(latencies, 50.0);
  r.latency_p90_s = nearest_rank(latencies, 90.0);
  r.latency_p99_s = nearest_rank(latencies, 99.0);
  r.latency_max_s = latencies.empty() ? 0.0 : latencies.back();
  r.completion_rate = static_cast<double>(r.completed_count) / static_cast<double>(n);
  return r;
}

void write_fleet_json(std::ostream& os, const FleetReport& r) {
  const FleetOptions& o = r.opts;
  os << "{\n  \"schema\": \"ehdnn-fleet-v1\",\n";
  os << "  \"seed\": " << o.seed << ",\n";
  os << "  \"task\": " << json_str(models::task_name(o.task)) << ",\n";
  os << "  \"runtime\": " << json_str(o.runtime) << ",\n";
  os << "  \"source\": " << json_str(o.source) << ",\n";
  os << "  \"devices\": " << o.devices << ",\n";
  os << "  \"capacitance_f\": " << o.capacitance_f << ",\n";
  os << "  \"max_off_s\": " << o.max_off_s << ",\n";
  os << "  \"offset_spread_s\": " << o.offset_spread_s << ",\n";
  os << "  \"aggregate\": {\n";
  os << "    \"completed\": " << r.completed_count << ", \"dnf\": " << r.dnf_count
     << ", \"starved\": " << r.starved_count << ",\n";
  os << "    \"completion_rate\": " << r.completion_rate << ",\n";
  os << "    \"latency_p50_s\": " << r.latency_p50_s << ", \"latency_p90_s\": "
     << r.latency_p90_s << ", \"latency_p99_s\": " << r.latency_p99_s
     << ", \"latency_max_s\": " << r.latency_max_s << ",\n";
  os << "    \"total_reboots\": " << r.total_reboots << ", \"total_energy_j\": "
     << r.total_energy_j << "\n  },\n";
  os << "  \"per_device\": [\n";
  for (std::size_t i = 0; i < r.devices.size(); ++i) {
    const FleetDeviceResult& d = r.devices[i];
    os << "    {\"device\": " << d.device << ", \"offset_s\": " << d.offset_s
       << ", \"outcome\": " << json_str(flex::outcome_name(d.outcome))
       << ", \"total_s\": " << d.total_s << ", \"on_s\": " << d.on_s << ", \"off_s\": "
       << d.off_s << ",\n     \"energy_j\": " << d.energy_j << ", \"reboots\": "
       << d.reboots << ", \"checkpoints\": " << d.checkpoints
       << ", \"progress_commits\": " << d.progress_commits << ", \"steps\": " << d.steps
       << "}" << (i + 1 < r.devices.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace ehdnn::sim
