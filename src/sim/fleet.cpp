#include "sim/fleet.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "core/ace/compiled_model.h"
#include "power/capacitor.h"
#include "power/factory.h"
#include "power/monitor.h"
#include "sched/adaptive.h"
#include "sim/scenario.h"
#include "util/check.h"
#include "util/parse.h"
#include "util/rng.h"

namespace ehdnn::sim {

namespace {

// Everything one simulated device owns. Pointer-stable (held by
// unique_ptr) because supplies, executors and the job queue point into it.
struct FleetDevice {
  power::TimeOffsetSource source;
  power::CapacitorSupply supply;
  dev::Device device;
  ace::CompiledModel cm_primary;
  std::optional<ace::CompiledModel> cm_dense;  // adaptive: co-resident twin
  std::vector<std::vector<fx::q15_t>> inputs;  // one per job
  std::unique_ptr<flex::RuntimePolicy> policy;
  flex::RunOptions opts;
  std::optional<sched::JobQueue> queue;  // constructed last (borrows the rest)

  FleetDevice(const power::HarvestSource& base, double offset,
              const power::CapacitorConfig& ccfg, const dev::DeviceConfig& dcfg)
      : source(base, offset), supply(source, ccfg), device(dcfg) {
    // Supply must be attached before compile so deploy-time accounting
    // matches the scenario engine's run_cell exactly.
    device.attach_supply(&supply);
  }
};

double nearest_rank(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out + "\"";
}

// JSON has no infinity: an unbounded deadline is emitted as -1.
double json_deadline(double v) { return std::isfinite(v) ? v : -1.0; }

void validate(const FleetConfig& cfg) {
  check(!cfg.groups.empty(), "fleet config: need at least one group");
  check(cfg.offset_spread_s >= 0.0, "fleet config: spread must be >= 0");
  for (const auto& g : cfg.groups) {
    const std::string where = "fleet group \"" + g.name + "\"";
    check(g.count >= 1, where + ": count must be >= 1");
    check(g.capacitance_f > 0.0, where + ": capacitance must be > 0");
    check(g.max_off_s > 0.0, where + ": max_off must be > 0");
    check(g.max_reboots >= 1, where + ": reboots must be >= 1");
    check(g.max_futile >= 0, where + ": max_futile must be >= 0");
    check(g.agenda.jobs >= 1, where + ": jobs must be >= 1");
    check(g.agenda.period_s > 0.0, where + ": agenda period must be > 0");
    check(g.agenda.deadline_s > 0.0, where + ": deadline must be > 0");
    runtime_uses_compressed_model(g.agenda.runtime);  // throws on unknown key
    if (!g.sched_spec.empty()) {
      check(runtime_is_adaptive(g.agenda.runtime),
            where + ": sched= only applies to the adaptive runtime");
      sched::parse_adaptive_spec(g.sched_spec);  // throws on malformed spec
    }
  }
}

// The model variants a group's runtime executes: adaptive ships both.
void group_variants(const FleetGroup& g, bool* need_compressed, bool* need_dense) {
  const bool adaptive = runtime_is_adaptive(g.agenda.runtime);
  const bool compressed = runtime_uses_compressed_model(g.agenda.runtime);
  *need_compressed = adaptive || compressed;
  *need_dense = adaptive || !compressed;
}

}  // namespace

int FleetConfig::total_devices() const {
  int n = 0;
  for (const auto& g : groups) n += g.count;
  return n;
}

FleetConfig parse_fleet_config(std::istream& is) {
  FleetConfig cfg;
  bool saw_fleet_line = false;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string where = "fleet config line " + std::to_string(lineno);
    // Strip comments, tokenize on whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    for (std::string t; ls >> t;) tokens.push_back(t);
    if (tokens.empty()) continue;

    std::map<std::string, std::string> kv;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      check(eq != std::string::npos && eq > 0,
            where + ": expected key=value, got \"" + tokens[i] + "\"");
      const std::string key = tokens[i].substr(0, eq);
      check(kv.find(key) == kv.end(), where + ": duplicate key \"" + key + "\"");
      kv[key] = tokens[i].substr(eq + 1);
    }
    auto take = [&](const char* key) -> std::optional<std::string> {
      const auto it = kv.find(key);
      if (it == kv.end()) return std::nullopt;
      std::string v = it->second;
      kv.erase(it);
      return v;
    };
    auto take_num = [&](const char* key) -> std::optional<double> {
      const auto v = take(key);
      if (!v.has_value()) return std::nullopt;
      const auto d = parse_double(*v);
      check(d.has_value(), where + ": bad number for " + key + ": \"" + *v + "\"");
      return d;
    };
    // Integer-valued keys: range-checked BEFORE the cast (a double out of
    // the target's range is undefined behavior at the conversion, not a
    // garbage value) so malformed entries throw as documented.
    auto take_int = [&](const char* key, double lo, double hi) -> std::optional<long long> {
      const auto v = take_num(key);
      if (!v.has_value()) return std::nullopt;
      check(*v >= lo && *v <= hi && *v == std::floor(*v),
            where + ": " + key + " must be an integer in [" + std::to_string(lo) + ", " +
                std::to_string(hi) + "]");
      return static_cast<long long>(*v);
    };

    if (tokens[0] == "fleet") {
      check(!saw_fleet_line, where + ": duplicate fleet line");
      saw_fleet_line = true;
      if (const auto v = take("source")) cfg.source = *v;
      if (const auto v = take_num("spread")) cfg.offset_spread_s = *v;
      if (const auto v = take("seed")) {
        const char* s = v->c_str();
        char* end = nullptr;
        cfg.seed = std::strtoull(s, &end, 0);
        check(end != s && *end == '\0', where + ": bad seed \"" + *v + "\"");
      }
    } else if (tokens[0] == "group") {
      FleetGroup g;
      g.name = "group" + std::to_string(cfg.groups.size());
      if (const auto v = take("name")) g.name = *v;
      if (const auto v = take_int("count", 0, 1e9)) g.count = static_cast<int>(*v);
      if (const auto v = take("task")) g.task = models::parse_task(*v);
      if (const auto v = take("runtime")) g.agenda.runtime = *v;
      if (const auto v = take_num("cap")) g.capacitance_f = *v;
      if (const auto v = take_num("max_off")) g.max_off_s = *v;
      if (const auto v = take_int("reboots", 0, 1e15)) g.max_reboots = static_cast<long>(*v);
      if (const auto v = take_int("max_futile", 0, 1e15)) g.max_futile = static_cast<long>(*v);
      if (const auto v = take_int("jobs", 0, 1e9)) g.agenda.jobs = static_cast<int>(*v);
      if (const auto v = take_num("period")) g.agenda.period_s = *v;
      if (const auto v = take_num("deadline")) g.agenda.deadline_s = *v;
      if (const auto v = take("sched")) g.sched_spec = *v;
      if (const auto v = take_int("fram", 0, 1e12)) {
        g.fram_words = static_cast<std::size_t>(*v);
      }
      cfg.groups.push_back(std::move(g));
    } else {
      fail(where + ": expected \"fleet\" or \"group\", got \"" + tokens[0] + "\"");
    }
    check(kv.empty(),
          where + ": unknown key \"" + (kv.empty() ? "" : kv.begin()->first) + "\"");
  }
  validate(cfg);
  return cfg;
}

FleetConfig parse_fleet_config_file(const std::string& path) {
  std::ifstream f(path);
  check(f.good(), "fleet config: cannot read " + path);
  return parse_fleet_config(f);
}

FleetReport run_fleet(const FleetConfig& cfg, const FleetRunOptions& ropts) {
  validate(cfg);
  const auto base_source = power::make_harvest_source(cfg.source);
  const int n = cfg.total_devices();

  // One model instance per (task, variant) for the whole fleet, seeded
  // like the scenario sweep; each device gets its own derived inputs
  // (different users, different samples).
  std::map<std::pair<int, bool>, quant::QuantModel> qms;
  for (const auto& g : cfg.groups) {
    bool need_c = false, need_d = false;
    group_variants(g, &need_c, &need_d);
    for (const bool compressed : {true, false}) {
      if (!(compressed ? need_c : need_d)) continue;
      const auto key = std::make_pair(static_cast<int>(g.task), compressed);
      if (qms.count(key) != 0) continue;
      Rng rng(cfg.seed + static_cast<std::uint64_t>(g.task));
      qms.emplace(key, models::make_deployed_qmodel(g.task, compressed, rng));
    }
  }

  // Auto-size each group's FRAM: compile its image(s) once on a scratch
  // device and take the cumulative footprint plus slack. Keeps a mixed
  // fleet's memory proportional to what each device actually ships
  // instead of provisioning every device for the largest dense twin.
  std::vector<std::size_t> group_fram(cfg.groups.size());
  for (std::size_t gi = 0; gi < cfg.groups.size(); ++gi) {
    const FleetGroup& g = cfg.groups[gi];
    if (g.fram_words != 0) {
      group_fram[gi] = g.fram_words;
      continue;
    }
    bool need_c = false, need_d = false;
    group_variants(g, &need_c, &need_d);
    dev::DeviceConfig scratch_cfg = models::deployment_device_config(/*compressed=*/false);
    dev::Device scratch(scratch_cfg);
    std::size_t used = 0;
    bool first = true;
    for (const bool compressed : {true, false}) {
      if (!(compressed ? need_c : need_d)) continue;
      const auto& qm = qms.at({static_cast<int>(g.task), compressed});
      used = ace::compile(qm, scratch, /*co_resident=*/!first).fram_words_used;
      first = false;
    }
    group_fram[gi] = used + 1024;
  }

  // Build the population, group-major (device ids and harvest offsets are
  // global across groups).
  std::vector<std::unique_ptr<FleetDevice>> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  std::vector<std::size_t> device_group;  // device id -> group index
  for (std::size_t gi = 0; gi < cfg.groups.size(); ++gi) {
    const FleetGroup& g = cfg.groups[gi];
    const bool adaptive = runtime_is_adaptive(g.agenda.runtime);
    const bool primary_compressed = runtime_uses_compressed_model(g.agenda.runtime);
    const auto& qm_primary = qms.at({static_cast<int>(g.task), primary_compressed});

    power::CapacitorConfig ccfg;
    ccfg.capacitance_f = g.capacitance_f;
    ccfg.max_off_s = g.max_off_s;

    for (int k = 0; k < g.count; ++k) {
      const int d = static_cast<int>(fleet.size());
      const double offset =
          cfg.offset_spread_s * static_cast<double>(d) / static_cast<double>(n);
      dev::DeviceConfig dcfg;
      dcfg.fram_words = group_fram[gi];
      dcfg.scramble_seed =
          cfg.seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(d) + 1);

      fleet.push_back(std::make_unique<FleetDevice>(*base_source, offset, ccfg, dcfg));
      device_group.push_back(gi);
      FleetDevice& fd = *fleet.back();
      fd.cm_primary = ace::compile(qm_primary, fd.device);
      if (adaptive) {
        fd.cm_dense = ace::compile(qms.at({static_cast<int>(g.task), false}), fd.device,
                                   /*co_resident=*/true);
      }

      const std::size_t in_size = fd.cm_primary.model.layers.front().in_size();
      fd.inputs.resize(static_cast<std::size_t>(g.agenda.jobs));
      for (int j = 0; j < g.agenda.jobs; ++j) {
        Rng in_rng(cfg.seed ^ (0xf1ee7ull + static_cast<std::uint64_t>(d) * 0x10001ull +
                               static_cast<std::uint64_t>(j) * 0x9e3779b9ull));
        auto& input = fd.inputs[static_cast<std::size_t>(j)];
        input.resize(in_size);
        for (auto& v : input) v = static_cast<fx::q15_t>(in_rng.next_u64());
      }

      if (adaptive && !g.sched_spec.empty()) {
        sched::AdaptiveSpec aspec = sched::parse_adaptive_spec(g.sched_spec);
        if (ropts.force_admit_all) aspec.admit = sched::Admission::kAll;
        fd.policy = sched::make_adaptive_policy(std::move(aspec));
      } else {
        // The runtime table's own factory — which for the adaptive keys
        // already carries the key's default spec (income ladder for
        // "adaptive", deadline selection for "adaptive-deadline").
        fd.policy = make_policy(g.agenda.runtime);
        if (ropts.force_admit_all) {
          if (auto* ap = sched::as_adaptive(fd.policy.get());
              ap != nullptr && ap->spec().admit == sched::Admission::kBudget) {
            sched::AdaptiveSpec aspec = ap->spec();
            aspec.admit = sched::Admission::kAll;
            fd.policy = sched::make_adaptive_policy(std::move(aspec));
          }
        }
      }
      const double worst_ck = sched::provision_deployment(
          *fd.policy, fd.device.cost(), fd.cm_primary,
          fd.cm_dense.has_value() ? &*fd.cm_dense : nullptr, fd.supply.burst_energy());
      fd.opts.max_reboots = g.max_reboots;
      fd.opts.max_futile_boots = g.max_futile;
      fd.opts.flex_v_warn = power::warn_voltage_for(fd.supply.config(), worst_ck + 5e-6, 3.0);
      fd.queue.emplace(fd.device, *fd.policy, fd.cm_primary, fd.opts, g.agenda, &fd.inputs);
    }
  }

  // Run every agenda to completion. jobs == 1: the round-robin scheduler
  // advances every live device by one executor slice per round — the
  // incremental API interleaving all suspended inferences on one thread.
  // jobs > 1: workers claim whole devices off an atomic cursor (devices
  // are independent, so the interleaving cannot change any result).
  const int run_jobs = std::max(ropts.jobs, 1);
  if (run_jobs == 1 || n <= 1) {
    bool any_live = true;
    while (any_live) {
      any_live = false;
      for (auto& fd : fleet) {
        if (fd->queue->finished()) continue;
        fd->queue->step();
        any_live = any_live || !fd->queue->finished();
      }
    }
  } else {
    std::atomic<std::size_t> cursor{0};
    auto worker = [&] {
      for (std::size_t i = cursor.fetch_add(1); i < fleet.size(); i = cursor.fetch_add(1)) {
        while (fleet[i]->queue->step()) {
        }
      }
    };
    std::vector<std::thread> pool;
    const std::size_t n_threads =
        std::min<std::size_t>(static_cast<std::size_t>(run_jobs), fleet.size());
    pool.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  FleetReport r;
  r.config = cfg;
  r.devices.reserve(static_cast<std::size_t>(n));
  std::vector<double> latencies, stalenesses;
  for (int d = 0; d < n; ++d) {
    FleetDevice& fd = *fleet[static_cast<std::size_t>(d)];
    const FleetGroup& g = cfg.groups[device_group[static_cast<std::size_t>(d)]];
    FleetDeviceResult res;
    res.device = d;
    res.group = g.name;
    res.offset_s = fd.source.offset();
    res.task = models::task_name(g.task);
    res.runtime = g.agenda.runtime;
    res.capacitance_f = g.capacitance_f;
    res.jobs = fd.queue->records();
    res.steps = fd.queue->steps();
    for (const auto& j : res.jobs) {
      ++r.total_jobs;
      res.reboots += j.reboots;
      res.tier_switches += j.tier_switches;
      res.energy_j += j.energy_j;
      if (j.skipped_infeasible) {
        // An admission-refused release never ran: its verdict is its own
        // bucket, not a DNF.
        ++res.jobs_skipped;
        res.energy_reclaimed_j += j.energy_reclaimed_j;
      } else {
        switch (j.outcome) {
          case flex::Outcome::kCompleted:
            ++res.jobs_completed;
            latencies.push_back(j.latency_s);
            stalenesses.push_back(j.staleness_s);
            break;
          case flex::Outcome::kDidNotFinish:
            ++r.jobs_dnf;
            break;
          case flex::Outcome::kStarved:
            ++r.jobs_starved;
            break;
        }
      }
      if (j.met_deadline) ++res.jobs_in_deadline;
    }
    r.jobs_completed += res.jobs_completed;
    r.jobs_in_deadline += res.jobs_in_deadline;
    r.jobs_skipped += res.jobs_skipped;
    r.energy_reclaimed_j += res.energy_reclaimed_j;
    r.total_reboots += res.reboots;
    r.total_tier_switches += res.tier_switches;
    r.total_energy_j += res.energy_j;
    if (ropts.verbose) {
      std::fprintf(stderr,
                   "fleet dev %3d [%s %s/%s]: %d/%zu jobs completed, %d in deadline, "
                   "%ld reboots, %ld switches\n",
                   d, g.name.c_str(), res.task.c_str(), res.runtime.c_str(),
                   res.jobs_completed, res.jobs.size(), res.jobs_in_deadline, res.reboots,
                   res.tier_switches);
    }
    r.devices.push_back(std::move(res));
  }

  std::sort(latencies.begin(), latencies.end());
  std::sort(stalenesses.begin(), stalenesses.end());
  r.latency_p50_s = nearest_rank(latencies, 50.0);
  r.latency_p90_s = nearest_rank(latencies, 90.0);
  r.latency_p99_s = nearest_rank(latencies, 99.0);
  r.latency_max_s = latencies.empty() ? 0.0 : latencies.back();
  r.staleness_p50_s = nearest_rank(stalenesses, 50.0);
  r.staleness_p90_s = nearest_rank(stalenesses, 90.0);
  r.staleness_p99_s = nearest_rank(stalenesses, 99.0);
  r.staleness_max_s = stalenesses.empty() ? 0.0 : stalenesses.back();
  r.completion_rate =
      r.total_jobs == 0 ? 0.0
                        : static_cast<double>(r.jobs_completed) / static_cast<double>(r.total_jobs);
  r.deadline_rate =
      r.total_jobs == 0
          ? 0.0
          : static_cast<double>(r.jobs_in_deadline) / static_cast<double>(r.total_jobs);

  // Fixed-runtime baselines: the same population with every agenda forced
  // to one key — the "adaptive vs best fixed runtime" evidence.
  for (const auto& key : ropts.baseline_runtimes) {
    FleetConfig bc = cfg;
    for (auto& g : bc.groups) {
      g.agenda.runtime = key;
      g.sched_spec.clear();
      g.fram_words = 0;  // re-auto-size for the forced variant
    }
    FleetRunOptions bo;
    bo.jobs = ropts.jobs;
    const FleetReport br = run_fleet(bc, bo);
    r.baselines.push_back({key, br.jobs_completed, br.jobs_in_deadline});
    if (ropts.verbose) {
      std::fprintf(stderr, "fleet baseline %-8s: %d jobs completed, %d in deadline\n",
                   key.c_str(), br.jobs_completed, br.jobs_in_deadline);
    }
  }

  // Admission comparison: the same population with energy-budgeted
  // admission forced off — every release runs, doomed or not.
  if (ropts.compare_admission) {
    FleetRunOptions ao;
    ao.jobs = ropts.jobs;
    ao.force_admit_all = true;
    const FleetReport ar = run_fleet(cfg, ao);
    r.admission_baseline.push_back({"admit=all", ar.jobs_completed, ar.jobs_in_deadline});
    if (ropts.verbose) {
      std::fprintf(stderr, "fleet admit=all baseline: %d jobs completed, %d in deadline\n",
                   ar.jobs_completed, ar.jobs_in_deadline);
    }
  }
  return r;
}

void write_fleet_json(std::ostream& os, const FleetReport& r) {
  const FleetConfig& c = r.config;
  os << "{\n  \"schema\": \"ehdnn-fleet-v4\",\n";
  os << "  \"seed\": " << c.seed << ",\n";
  os << "  \"source\": " << json_str(c.source) << ",\n";
  os << "  \"offset_spread_s\": " << c.offset_spread_s << ",\n";
  os << "  \"devices\": " << c.total_devices() << ",\n";
  os << "  \"groups\": [\n";
  for (std::size_t i = 0; i < c.groups.size(); ++i) {
    const FleetGroup& g = c.groups[i];
    os << "    {\"name\": " << json_str(g.name) << ", \"count\": " << g.count
       << ", \"task\": " << json_str(models::task_name(g.task))
       << ", \"runtime\": " << json_str(g.agenda.runtime)
       << ", \"capacitance_f\": " << g.capacitance_f << ", \"max_off_s\": " << g.max_off_s
       << ", \"max_futile\": " << g.max_futile
       << ",\n     \"jobs\": " << g.agenda.jobs << ", \"period_s\": " << g.agenda.period_s
       << ", \"deadline_s\": " << json_deadline(g.agenda.deadline_s)
       << ", \"sched\": " << json_str(g.sched_spec) << "}"
       << (i + 1 < c.groups.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"aggregate\": {\n";
  os << "    \"total_jobs\": " << r.total_jobs << ", \"completed\": " << r.jobs_completed
     << ", \"in_deadline\": " << r.jobs_in_deadline << ", \"dnf\": " << r.jobs_dnf
     << ", \"starved\": " << r.jobs_starved << ",\n";
  os << "    \"admission\": {\"skipped_infeasible\": " << r.jobs_skipped
     << ", \"energy_reclaimed_j\": " << r.energy_reclaimed_j << "},\n";
  os << "    \"completion_rate\": " << r.completion_rate
     << ", \"deadline_rate\": " << r.deadline_rate << ",\n";
  os << "    \"latency_p50_s\": " << r.latency_p50_s << ", \"latency_p90_s\": "
     << r.latency_p90_s << ", \"latency_p99_s\": " << r.latency_p99_s
     << ", \"latency_max_s\": " << r.latency_max_s << ",\n";
  os << "    \"staleness_p50_s\": " << r.staleness_p50_s << ", \"staleness_p90_s\": "
     << r.staleness_p90_s << ", \"staleness_p99_s\": " << r.staleness_p99_s
     << ", \"staleness_max_s\": " << r.staleness_max_s << ",\n";
  os << "    \"total_reboots\": " << r.total_reboots << ", \"tier_switches\": "
     << r.total_tier_switches << ", \"total_energy_j\": " << r.total_energy_j << "\n  },\n";
  os << "  \"baselines\": [";
  for (std::size_t i = 0; i < r.baselines.size(); ++i) {
    const FleetBaseline& b = r.baselines[i];
    os << (i == 0 ? "\n" : "") << "    {\"runtime\": " << json_str(b.runtime)
       << ", \"jobs_completed\": " << b.jobs_completed
       << ", \"jobs_in_deadline\": " << b.jobs_in_deadline << "}"
       << (i + 1 < r.baselines.size() ? ",\n" : "\n  ");
  }
  os << "],\n";
  os << "  \"admission_baseline\": [";
  for (std::size_t i = 0; i < r.admission_baseline.size(); ++i) {
    const FleetBaseline& b = r.admission_baseline[i];
    os << (i == 0 ? "\n" : "") << "    {\"mode\": " << json_str(b.runtime)
       << ", \"jobs_completed\": " << b.jobs_completed
       << ", \"jobs_in_deadline\": " << b.jobs_in_deadline << "}"
       << (i + 1 < r.admission_baseline.size() ? ",\n" : "\n  ");
  }
  os << "],\n";
  os << "  \"per_device\": [\n";
  for (std::size_t i = 0; i < r.devices.size(); ++i) {
    const FleetDeviceResult& d = r.devices[i];
    os << "    {\"device\": " << d.device << ", \"group\": " << json_str(d.group)
       << ", \"offset_s\": " << d.offset_s << ", \"task\": " << json_str(d.task)
       << ", \"runtime\": " << json_str(d.runtime)
       << ", \"capacitance_f\": " << d.capacitance_f << ",\n     \"jobs_completed\": "
       << d.jobs_completed << ", \"jobs_in_deadline\": " << d.jobs_in_deadline
       << ", \"jobs_skipped\": " << d.jobs_skipped
       << ", \"reboots\": " << d.reboots << ", \"tier_switches\": " << d.tier_switches
       << ", \"energy_j\": " << d.energy_j << ", \"steps\": " << d.steps << ",\n";
    os << "     \"jobs\": [\n";
    for (std::size_t j = 0; j < d.jobs.size(); ++j) {
      const sched::JobRecord& jr = d.jobs[j];
      // The v4 per-job verdict: admission skips get their own outcome
      // string (the run never started, so the runtime outcome would lie),
      // and a watchdog-tripped DNF reports as "livelock" (the run was
      // spinning, not merely slow).
      const std::string verdict = jr.skipped_infeasible
                                      ? "skipped_infeasible"
                                      : (jr.livelock ? "livelock"
                                                     : flex::outcome_name(jr.outcome));
      os << "      {\"job\": " << jr.job << ", \"release_s\": " << jr.release_s
         << ", \"start_s\": " << jr.start_s << ", \"finish_s\": " << jr.finish_s
         << ", \"latency_s\": " << jr.latency_s << ", \"staleness_s\": " << jr.staleness_s
         << ",\n       \"outcome\": " << json_str(verdict)
         << ", \"met_deadline\": " << (jr.met_deadline ? "true" : "false")
         << ", \"runtime\": " << json_str(jr.runtime) << ", \"reboots\": " << jr.reboots
         << ", \"checkpoints\": " << jr.checkpoints
         << ", \"progress_commits\": " << jr.progress_commits
         << ", \"tier_switches\": " << jr.tier_switches
         << ", \"energy_j\": " << jr.energy_j
         << ", \"energy_reclaimed_j\": " << jr.energy_reclaimed_j << "}"
         << (j + 1 < d.jobs.size() ? "," : "") << "\n";
    }
    os << "     ]}" << (i + 1 < r.devices.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace ehdnn::sim
