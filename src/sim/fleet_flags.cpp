#include "sim/fleet_flags.h"

#include <string>

namespace ehdnn::sim {

std::string validate_fleet_flags(const FleetFlagSet& f) {
  if (f.merge) {
    if (f.shard >= 0 || f.shards > 1)
      return "--merge conflicts with --shard/--shards (run the shard partials "
             "first, then merge them)";
    if (f.have_config)
      return "--merge conflicts with --config (the population is echoed inside "
             "the partials)";
    if (!f.population_flag.empty())
      return "--merge conflicts with " + f.population_flag +
             " (the population is echoed inside the partials)";
    if (f.compare_fixed || f.compare_admission)
      return "--merge conflicts with baseline reruns; run them on the merged "
             "config without --shards";
    if (f.have_trace_devices)
      return "--merge: trace selection happens at shard time (--trace-devices on "
             "each --shard run); --trace-out/--trace-text-out export the merged "
             "captures";
    if (f.merge_inputs < 1) return "--merge needs at least one partial file";
    return "";
  }
  if (f.merge_inputs > 0) return "bare arguments are only valid with --merge";

  if (f.have_config && !f.population_flag.empty())
    return f.population_flag +
           " conflicts with --config (the population comes from the config file; "
           "edit it instead)";

  const bool sharded = f.shard >= 0 || f.shards > 1;
  if (sharded) {
    if (f.shard < 0) return "--shards needs --shard I (which shard is this process?)";
    if (f.shard >= f.shards)
      return "--shard must be < --shards (got --shard " + std::to_string(f.shard) +
             " with --shards " + std::to_string(f.shards) + ")";
    if (f.compare_fixed || f.compare_admission)
      return "baseline reruns are whole-population; run them on the merged config "
             "without --shards";
    if (f.have_trace_out || f.have_trace_text_out)
      return "--shard runs write partials (captures ride them); put --trace-out on "
             "the --merge";
  }

  // A trace export with an empty selection would silently write a file
  // with zero tracks — reject it up front (merge mode is exempt: its
  // selection rode in on the partials).
  if ((f.have_trace_out || f.have_trace_text_out) && !f.have_trace_devices)
    return std::string(f.have_trace_out ? "--trace-out" : "--trace-text-out") +
           " needs --trace-devices (no event rings are retained otherwise)";

  if (f.profile && f.jobs != 1)
    return "--profile needs --jobs 1 (one shared, unsynchronized sink)";
  return "";
}

}  // namespace ehdnn::sim
