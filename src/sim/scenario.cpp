#include "sim/scenario.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <ostream>

#include "core/ace/compiled_model.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "power/factory.h"
#include "power/monitor.h"
#include "util/check.h"
#include "util/parse.h"
#include "util/rng.h"

namespace ehdnn::sim {

namespace {

struct RuntimeKey {
  const char* key;
  bool compressed;  // deployment model vs dense twin
};

constexpr RuntimeKey kRuntimeKeys[] = {
    {"base", false}, {"ace", true}, {"sonic", false}, {"tails", false}, {"flex", true},
};

const RuntimeKey& runtime_key(const std::string& key) {
  for (const auto& rk : kRuntimeKeys) {
    if (key == rk.key) return rk;
  }
  fail("scenario: unknown runtime \"" + key + "\" (base|ace|sonic|tails|flex)");
}

double parse_num(const std::string& arg, const std::string& key, const std::string& val) {
  const auto v = parse_double(val);
  check(v.has_value(), "scenario \"" + arg + "\": bad number for " + key + ": \"" + val + "\"");
  return *v;
}

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out + "\"";
}

// `src` is the scenario's shared (immutable) harvest source, or nullptr
// for continuous bench power; the stateful capacitor is per cell.
ScenarioCell run_cell(const std::string& rt_key, models::Task task,
                      const quant::QuantModel& qm, const std::vector<fx::q15_t>& input,
                      const ScenarioSpec& sc, const power::HarvestSource* src) {
  const RuntimeKey& rk = runtime_key(rt_key);
  dev::Device dev(models::deployment_device_config(rk.compressed));

  power::ContinuousPower cont;
  std::unique_ptr<power::CapacitorSupply> cap;
  const bool continuous = src == nullptr;
  if (continuous) {
    dev.attach_supply(&cont);
  } else {
    power::CapacitorConfig ccfg;
    ccfg.capacitance_f = sc.capacitance_f;
    ccfg.max_off_s = sc.max_off_s;
    cap = std::make_unique<power::CapacitorSupply>(*src, ccfg);
    dev.attach_supply(cap.get());
  }

  const auto cm = ace::compile(qm, dev);
  flex::RunOptions opts;
  opts.max_reboots = sc.max_reboots;
  if (!continuous) {
    opts.flex_v_warn = power::warn_voltage_for(
        cap->config(), flex::worst_checkpoint_energy(cm, dev.cost()) + 5e-6, 3.0);
  }

  auto rt = make_runtime(rt_key);
  const flex::RunStats st = rt->infer(dev, cm, input, opts);

  ScenarioCell cell;
  cell.task = models::task_name(task);
  cell.runtime = rt_key;
  cell.scenario = sc.name;
  cell.outcome = st.outcome;
  cell.completed = st.completed;
  cell.on_s = st.on_seconds;
  cell.off_s = st.off_seconds;
  cell.total_s = st.total_seconds();
  cell.energy_j = st.energy_j;
  cell.checkpoint_energy_j = st.checkpoint_energy_j;
  cell.reboots = st.reboots;
  cell.checkpoints = st.checkpoints;
  cell.progress_commits = st.progress_commits;
  cell.units_executed = st.units_executed;
  cell.units_total = st.units_total;
  return cell;
}

}  // namespace

std::unique_ptr<flex::InferenceRuntime> make_runtime(const std::string& key) {
  runtime_key(key);  // validate (throws on unknown)
  if (key == "sonic") return flex::make_sonic_runtime();
  if (key == "tails") return flex::make_tails_runtime();
  if (key == "flex") return flex::make_flex_runtime();
  return flex::make_ace_runtime();  // base and ace
}

const std::vector<std::string>& all_runtime_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> v;
    for (const auto& rk : kRuntimeKeys) v.emplace_back(rk.key);
    return v;
  }();
  return keys;
}

ScenarioSpec parse_scenario_arg(const std::string& arg) {
  // NAME=SOURCE[;key=value...] — the first '=' ends the name (harvest
  // specs contain '=' themselves), ';' separates scenario options.
  const std::size_t eq = arg.find('=');
  check(eq != std::string::npos && eq > 0,
        "scenario \"" + arg + "\": expected NAME=SOURCE[;key=value...]");
  ScenarioSpec sc;
  sc.name = arg.substr(0, eq);
  const std::string rest = arg.substr(eq + 1);
  std::size_t pos = rest.find(';');
  sc.source = rest.substr(0, pos);
  check(!sc.source.empty(), "scenario \"" + arg + "\": empty source spec");
  while (pos != std::string::npos) {
    const std::size_t next = rest.find(';', pos + 1);
    const std::string item =
        rest.substr(pos + 1, (next == std::string::npos ? rest.size() : next) - pos - 1);
    pos = next;
    if (item.empty()) continue;
    const std::size_t ieq = item.find('=');
    check(ieq != std::string::npos && ieq > 0,
          "scenario \"" + arg + "\": expected key=value, got \"" + item + "\"");
    const std::string key = item.substr(0, ieq);
    const std::string val = item.substr(ieq + 1);
    if (key == "cap") {
      sc.capacitance_f = parse_num(arg, key, val);
    } else if (key == "max_off") {
      sc.max_off_s = parse_num(arg, key, val);
    } else if (key == "reboots") {
      sc.max_reboots = static_cast<long>(parse_num(arg, key, val));
    } else {
      fail("scenario \"" + arg + "\": unknown option \"" + key + "\"");
    }
  }
  return sc;
}

ScenarioMatrix run_matrix(const std::vector<std::string>& runtimes,
                          const std::vector<models::Task>& tasks,
                          const std::vector<ScenarioSpec>& scenarios,
                          const SweepOptions& opts) {
  ScenarioMatrix m;
  m.seed = opts.seed;
  m.runtimes = runtimes;
  m.scenarios = scenarios;

  // Fail fast on bad inputs before hours of sweeping; sources are
  // immutable, so each scenario's is built once and shared by its cells.
  std::vector<bool> need_variant = {false, false};  // [compressed]
  for (const auto& rt : runtimes) need_variant[runtime_key(rt).compressed] = true;
  std::vector<std::unique_ptr<power::HarvestSource>> sources;
  for (const auto& sc : scenarios) {
    check(!sc.name.empty(), "scenario with empty name");
    sources.push_back(sc.source == "continuous" ? nullptr
                                                : power::make_harvest_source(sc.source));
  }

  for (const auto task : tasks) {
    m.tasks.push_back(models::task_name(task));

    // Deployment + dense instances and input, seeded exactly like the
    // paper benches so matrix cells are comparable to fig7b rows. Only
    // the variants the requested runtimes execute are built (the dense
    // HAR/OKG twins are the expensive ones).
    std::map<bool, quant::QuantModel> qms;
    std::map<bool, std::vector<fx::q15_t>> inputs;
    for (const bool compressed : {false, true}) {
      if (!need_variant[compressed]) continue;
      Rng rng(opts.seed + static_cast<std::uint64_t>(task));
      qms[compressed] = models::make_deployed_qmodel(task, compressed, rng);
      std::vector<fx::q15_t> input(qms[compressed].layers.front().in_size());
      for (auto& v : input) v = static_cast<fx::q15_t>(rng.next_u64());
      inputs[compressed] = std::move(input);
    }

    for (std::size_t si = 0; si < scenarios.size(); ++si) {
      const ScenarioSpec& sc = scenarios[si];
      for (const auto& rt : runtimes) {
        const bool compressed = runtime_key(rt).compressed;
        ScenarioCell cell =
            run_cell(rt, task, qms[compressed], inputs[compressed], sc, sources[si].get());
        if (opts.verbose) {
          std::fprintf(stderr, "scenario %s/%s/%s: %s (on %.3fs, off %.3fs, %ld reboots)\n",
                       cell.task.c_str(), sc.name.c_str(), rt.c_str(),
                       flex::outcome_name(cell.outcome), cell.on_s, cell.off_s,
                       cell.reboots);
        }
        m.cells.push_back(std::move(cell));
      }
    }
  }
  return m;
}

void write_scenarios_json(std::ostream& os, const ScenarioMatrix& m) {
  os << "{\n  \"schema\": \"ehdnn-scenarios-v1\",\n";
  os << "  \"seed\": " << m.seed << ",\n";
  auto str_list = [&os](const std::vector<std::string>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      os << json_str(v[i]) << (i + 1 < v.size() ? ", " : "");
    }
  };
  os << "  \"tasks\": [";
  str_list(m.tasks);
  os << "],\n  \"runtimes\": [";
  str_list(m.runtimes);
  os << "],\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < m.scenarios.size(); ++i) {
    const ScenarioSpec& sc = m.scenarios[i];
    os << "    {\"name\": " << json_str(sc.name) << ", \"source\": " << json_str(sc.source)
       << ", \"capacitance_f\": " << sc.capacitance_f << ", \"max_off_s\": " << sc.max_off_s
       << ", \"max_reboots\": " << sc.max_reboots << "}"
       << (i + 1 < m.scenarios.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    const ScenarioCell& c = m.cells[i];
    os << "    {\"task\": " << json_str(c.task) << ", \"scenario\": " << json_str(c.scenario)
       << ", \"runtime\": " << json_str(c.runtime)
       << ", \"outcome\": " << json_str(flex::outcome_name(c.outcome))
       << ", \"completed\": " << (c.completed ? "true" : "false") << ",\n     \"on_s\": "
       << c.on_s << ", \"off_s\": " << c.off_s << ", \"total_s\": " << c.total_s
       << ", \"energy_j\": " << c.energy_j
       << ", \"checkpoint_energy_j\": " << c.checkpoint_energy_j << ",\n     \"reboots\": "
       << c.reboots << ", \"checkpoints\": " << c.checkpoints
       << ", \"progress_commits\": " << c.progress_commits
       << ", \"units_executed\": " << c.units_executed
       << ", \"units_total\": " << c.units_total << "}"
       << (i + 1 < m.cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace ehdnn::sim
