#include "sim/scenario.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>

#include <limits>
#include <optional>

#include "core/ace/compiled_model.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "power/factory.h"
#include "power/monitor.h"
#include "sched/adaptive.h"
#include "util/check.h"
#include "util/parse.h"
#include "util/rng.h"

namespace ehdnn::sim {

namespace {

std::unique_ptr<flex::RuntimePolicy> make_adaptive_default() {
  return sched::make_adaptive_policy();
}

// Deadline-aware scheduling v2 as its own sweep column: predicted-
// completion tier selection over the periodic harvest forecaster (no
// admission — a one-shot scenario cell has no deadline to refuse).
std::unique_ptr<flex::RuntimePolicy> make_adaptive_deadline() {
  return sched::make_adaptive_policy(
      sched::parse_adaptive_spec("adaptive:sel=deadline,fc=periodic"));
}

// THE runtime table: key, model variant, and both factories in one place
// (the sweep, the fuzzer, and the fleet harness all resolve through it).
// `adaptive` entries ship BOTH variants co-resident and pick per boot;
// their `compressed` flag names the primary image the executor is armed
// with (the sim layer provisions the dense twin via sched::
// provision_adaptive).
struct RuntimeEntry {
  const char* key;
  bool compressed;  // deployment model vs dense twin (primary for adaptive)
  bool adaptive;    // per-boot scheduled (needs both variants provisioned)
  std::unique_ptr<flex::RuntimePolicy> (*make_policy)();
};

std::unique_ptr<flex::RuntimePolicy> make_tile_default() {
  return flex::make_tile_policy();
}

constexpr RuntimeEntry kRuntimeTable[] = {
    {"base", false, false, flex::make_ace_policy},
    {"ace", true, false, flex::make_ace_policy},
    {"sonic", false, false, flex::make_sonic_policy},
    {"tails", false, false, flex::make_tails_policy},
    {"tile", false, false, make_tile_default},
    {"flex", true, false, flex::make_flex_policy},
    {"adaptive", true, true, make_adaptive_default},
    {"adaptive-deadline", true, true, make_adaptive_deadline},
};

const RuntimeEntry& runtime_entry(const std::string& key) {
  // "tile" takes an optional ":t=N" spec suffix; the base name before the
  // colon resolves the table entry.
  const std::string base = key.substr(0, key.find(':'));
  for (const auto& rk : kRuntimeTable) {
    if (base == rk.key) {
      if (base != key) {
        // Validate spec arguments HERE so every resolver — the sweep, the
        // fuzzer, and fleet-config validation — rejects a malformed tile
        // spec (t=0, t=-4, unknown keys) before any device is built.
        check(base == "tile",
              "scenario: runtime \"" + base + "\" takes no spec arguments (\"" + key + "\")");
        flex::parse_tile_spec(key);
      }
      return rk;
    }
  }
  std::string known;
  for (const auto& rk : kRuntimeTable) known += std::string(known.empty() ? "" : "|") + rk.key;
  fail("scenario: unknown runtime \"" + key + "\" (" + known + ")");
}

double parse_num(const std::string& arg, const std::string& key, const std::string& val) {
  const auto v = parse_double(val);
  check(v.has_value(), "scenario \"" + arg + "\": bad number for " + key + ": \"" + val + "\"");
  return *v;
}

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out + "\"";
}

// `src` is the scenario's shared (immutable) harvest source, or nullptr
// for continuous bench power; the stateful capacitor is per cell, as is
// the Device (seeded per cell so cells stay independent under any job
// interleaving). `qms`/`inputs` hold the task's model variants keyed by
// `compressed`; fixed runtimes use exactly one, the adaptive scheduler
// gets both compiled co-resident and picks per boot.
ScenarioCell run_cell(const std::string& rt_key, models::Task task,
                      const std::map<bool, quant::QuantModel>& qms,
                      const std::map<bool, std::vector<fx::q15_t>>& inputs,
                      const ScenarioSpec& sc, const power::HarvestSource* src,
                      std::uint64_t scramble_seed,
                      flex::PhaseProfile* profile, long trace_capacity) {
  const RuntimeEntry& rk = runtime_entry(rt_key);
  // Adaptive devices carry the dense twin too, so they get the enlarged
  // baseline FRAM geometry.
  dev::DeviceConfig dcfg =
      models::deployment_device_config(rk.adaptive ? false : rk.compressed);
  dcfg.scramble_seed = scramble_seed;
  dev::Device dev(dcfg);

  // Counts-only lifecycle trace on every cell (metrics block); ring
  // capture when the sweep selected this cell index.
  obs::EventTrace trace;
  if (trace_capacity > 0) trace.set_capacity(static_cast<std::size_t>(trace_capacity));

  power::ContinuousPower cont;
  std::unique_ptr<power::CapacitorSupply> cap;
  const bool continuous = src == nullptr;
  if (continuous) {
    dev.attach_supply(&cont);
  } else {
    power::CapacitorConfig ccfg;
    ccfg.capacitance_f = sc.capacitance_f;
    ccfg.max_off_s = sc.max_off_s;
    cap = std::make_unique<power::CapacitorSupply>(*src, ccfg);
    cap->set_trace(&trace);
    dev.attach_supply(cap.get());
  }

  const auto cm = ace::compile(qms.at(rk.compressed), dev);
  std::optional<ace::CompiledModel> cm_dense;
  if (rk.adaptive) cm_dense = ace::compile(qms.at(false), dev, /*co_resident=*/true);

  // Through the spec-aware factory, not rk.make_policy directly — tile's
  // ":t=N" suffix must reach the policy.
  auto policy = make_policy(rt_key);
  const double worst_ck = sched::provision_deployment(
      *policy, dev.cost(), cm, cm_dense.has_value() ? &*cm_dense : nullptr,
      continuous ? std::numeric_limits<double>::infinity() : cap->burst_energy());
  flex::RunOptions opts;
  opts.profile = profile;
  opts.trace = &trace;
  opts.max_reboots = sc.max_reboots;
  opts.max_futile_boots = sc.max_futile;
  if (!continuous) {
    opts.flex_v_warn = power::warn_voltage_for(cap->config(), worst_ck + 5e-6, 3.0);
  }
  auto rt = flex::make_policy_runtime(std::move(policy));
  const flex::RunStats st = rt->infer(dev, cm, inputs.at(rk.compressed), opts);

  ScenarioCell cell;
  cell.task = models::task_name(task);
  cell.runtime = rt_key;
  cell.scenario = sc.name;
  cell.outcome = st.outcome;
  cell.livelock = st.livelock;
  cell.on_s = st.on_seconds;
  cell.off_s = st.off_seconds;
  cell.total_s = st.total_seconds();
  cell.energy_j = st.energy_j;
  cell.checkpoint_energy_j = st.checkpoint_energy_j;
  cell.reboots = st.reboots;
  cell.checkpoints = st.checkpoints;
  cell.progress_commits = st.progress_commits;
  cell.units_executed = st.units_executed;
  cell.units_total = st.units_total;
  for (int k = 0; k < obs::kKindCount; ++k) cell.event_counts[k] = trace.counts()[k];
  if (trace.capacity() > 0) {
    cell.trace_selected = true;
    cell.trace_events = trace.snapshot();
    cell.trace_dropped = trace.dropped();
    cell.trace_total = trace.total();
  }
  return cell;
}

}  // namespace

std::unique_ptr<flex::RuntimePolicy> make_policy(const std::string& key) {
  const RuntimeEntry& e = runtime_entry(key);
  // Tile is the one parameterized entry: its spec suffix reaches the
  // policy (validated by runtime_entry above).
  if (std::string(e.key) == "tile") return flex::make_tile_policy(flex::parse_tile_spec(key));
  return e.make_policy();
}

std::unique_ptr<flex::InferenceRuntime> make_runtime(const std::string& key) {
  return flex::make_policy_runtime(make_policy(key));
}

bool runtime_uses_compressed_model(const std::string& key) {
  return runtime_entry(key).compressed;
}

bool runtime_is_adaptive(const std::string& key) { return runtime_entry(key).adaptive; }

const std::vector<std::string>& all_runtime_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> v;
    for (const auto& rk : kRuntimeTable) v.emplace_back(rk.key);
    return v;
  }();
  return keys;
}

ScenarioSpec parse_scenario_arg(const std::string& arg) {
  // NAME=SOURCE[;key=value...] — the first '=' ends the name (harvest
  // specs contain '=' themselves), ';' separates scenario options.
  const std::size_t eq = arg.find('=');
  check(eq != std::string::npos && eq > 0,
        "scenario \"" + arg + "\": expected NAME=SOURCE[;key=value...]");
  ScenarioSpec sc;
  sc.name = arg.substr(0, eq);
  const std::string rest = arg.substr(eq + 1);
  std::size_t pos = rest.find(';');
  sc.source = rest.substr(0, pos);
  check(!sc.source.empty(), "scenario \"" + arg + "\": empty source spec");
  while (pos != std::string::npos) {
    const std::size_t next = rest.find(';', pos + 1);
    const std::string item =
        rest.substr(pos + 1, (next == std::string::npos ? rest.size() : next) - pos - 1);
    pos = next;
    if (item.empty()) continue;
    const std::size_t ieq = item.find('=');
    check(ieq != std::string::npos && ieq > 0,
          "scenario \"" + arg + "\": expected key=value, got \"" + item + "\"");
    const std::string key = item.substr(0, ieq);
    const std::string val = item.substr(ieq + 1);
    if (key == "cap") {
      sc.capacitance_f = parse_num(arg, key, val);
    } else if (key == "max_off") {
      sc.max_off_s = parse_num(arg, key, val);
    } else if (key == "reboots") {
      sc.max_reboots = static_cast<long>(parse_num(arg, key, val));
    } else if (key == "max_futile") {
      sc.max_futile = static_cast<long>(parse_num(arg, key, val));
      check(sc.max_futile >= 0, "scenario \"" + arg + "\": max_futile must be >= 0");
    } else {
      fail("scenario \"" + arg + "\": unknown option \"" + key + "\"");
    }
  }
  return sc;
}

ScenarioMatrix run_matrix(const std::vector<std::string>& runtimes,
                          const std::vector<models::Task>& tasks,
                          const std::vector<ScenarioSpec>& scenarios,
                          const SweepOptions& opts) {
  ScenarioMatrix m;
  m.seed = opts.seed;
  m.runtimes = runtimes;
  m.scenarios = scenarios;

  // The profile request must never be silently dropped: phase attribution
  // shares one unsynchronized sink, so it is serial-only by design.
  check(opts.profile == nullptr || std::max(opts.jobs, 1) == 1,
        "scenario sweep: --profile needs --jobs 1 (one shared, unsynchronized "
        "sink); the request used to be silently ignored under a worker pool");

  // Fail fast on bad inputs before hours of sweeping; sources are
  // immutable (power_at is const), so each scenario's is built once and
  // shared read-only by its cells across workers.
  std::vector<bool> need_variant = {false, false};  // [compressed]
  for (const auto& rt : runtimes) {
    const RuntimeEntry& e = runtime_entry(rt);
    need_variant[e.compressed] = true;
    if (e.adaptive) need_variant[false] = need_variant[true] = true;
  }
  std::vector<std::unique_ptr<power::HarvestSource>> sources;
  for (const auto& sc : scenarios) {
    check(!sc.name.empty(), "scenario with empty name");
    sources.push_back(sc.source == "continuous" ? nullptr
                                                : power::make_harvest_source(sc.source));
  }

  // Deployment + dense instances and inputs for every task, seeded
  // exactly like the paper benches so matrix cells are comparable to
  // fig7b rows. Only the variants the requested runtimes execute are
  // built (the dense HAR/OKG twins are the expensive ones). Models and
  // inputs are immutable during the sweep — workers share them.
  std::vector<std::map<bool, quant::QuantModel>> qms(tasks.size());
  std::vector<std::map<bool, std::vector<fx::q15_t>>> inputs(tasks.size());
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    const models::Task task = tasks[ti];
    m.tasks.push_back(models::task_name(task));
    for (const bool compressed : {false, true}) {
      if (!need_variant[compressed]) continue;
      Rng rng(opts.seed + static_cast<std::uint64_t>(task));
      qms[ti][compressed] = models::make_deployed_qmodel(task, compressed, rng);
      std::vector<fx::q15_t> input(qms[ti][compressed].layers.front().in_size());
      for (auto& v : input) v = static_cast<fx::q15_t>(rng.next_u64());
      inputs[ti][compressed] = std::move(input);
    }
  }

  // Flatten the sweep into an index space with the canonical cell order
  // (task-major, then scenario, then runtime); workers claim cells from
  // an atomic cursor and write results into their fixed slot, so the
  // matrix is byte-identical for any job count.
  const std::size_t n_cells = tasks.size() * scenarios.size() * runtimes.size();
  for (const int id : opts.trace_cells) {
    check(id >= 0 && static_cast<std::size_t>(id) < n_cells,
          "scenario sweep: trace cell index " + std::to_string(id) +
              " out of range [0, " + std::to_string(n_cells) + ")");
  }
  m.cells.resize(n_cells);
  std::atomic<std::size_t> cursor{0};
  std::mutex log_mu;

  auto worker = [&] {
    for (std::size_t i = cursor.fetch_add(1); i < n_cells; i = cursor.fetch_add(1)) {
      const std::size_t ri = i % runtimes.size();
      const std::size_t si = (i / runtimes.size()) % scenarios.size();
      const std::size_t ti = i / (runtimes.size() * scenarios.size());
      const std::string& rt = runtimes[ri];
      const ScenarioSpec& sc = scenarios[si];
      // Per-cell derived scramble seed: cells are fully independent and
      // reproducible in isolation. (Outputs and modeled costs are
      // scramble-independent — the crash-consistency contract — so this
      // cannot change the matrix.)
      const std::uint64_t cell_seed =
          opts.seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(i) + 1);
      long trace_cap = 0;
      for (const int id : opts.trace_cells) {
        if (static_cast<std::size_t>(id) == i) trace_cap = std::max<long>(1, opts.trace_capacity);
      }
      ScenarioCell cell = run_cell(rt, tasks[ti], qms[ti], inputs[ti], sc,
                                   sources[si].get(), cell_seed, opts.profile,
                                   trace_cap);
      if (opts.verbose) {
        const std::lock_guard<std::mutex> lock(log_mu);
        std::fprintf(stderr, "scenario %s/%s/%s: %s (on %.3fs, off %.3fs, %ld reboots)\n",
                     cell.task.c_str(), sc.name.c_str(), rt.c_str(),
                     flex::outcome_name(cell.outcome), cell.on_s, cell.off_s, cell.reboots);
      }
      m.cells[i] = std::move(cell);
    }
  };

  const int jobs = std::max(opts.jobs, 1);
  if (jobs == 1 || n_cells <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    const std::size_t n_threads = std::min<std::size_t>(jobs, n_cells);
    pool.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  // Metrics and trace captures from the finished cell array, summed in
  // canonical cell order — deterministic for any worker count because the
  // array itself is.
  long* ev_cells[obs::kKindCount];
  for (int k = 0; k < obs::kKindCount; ++k) {
    ev_cells[k] = m.metrics.counter(std::string("event.") +
                                    obs::event_name(static_cast<obs::EventKind>(k)));
  }
  long* trace_dropped = m.metrics.counter("trace.dropped_events");
  long* max_reboots = m.metrics.gauge("sweep.max_cell_reboots");
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    const ScenarioCell& c = m.cells[i];
    for (int k = 0; k < obs::kKindCount; ++k) *ev_cells[k] += c.event_counts[k];
    if (c.reboots > *max_reboots) *max_reboots = c.reboots;
    if (c.trace_selected) {
      obs::TraceCapture cap;
      cap.id = static_cast<int>(i);
      cap.label = "cell " + std::to_string(i) + " " + c.task + "/" + c.scenario + "/" +
                  c.runtime;
      cap.events = c.trace_events;
      cap.dropped = c.trace_dropped;
      cap.total = c.trace_total;
      *trace_dropped += cap.dropped;
      m.traces.push_back(std::move(cap));
    }
  }
  return m;
}

void write_scenarios_json(std::ostream& os, const ScenarioMatrix& m) {
  os << "{\n  \"schema\": \"ehdnn-scenarios-v3\",\n";
  os << "  \"seed\": " << m.seed << ",\n";
  auto str_list = [&os](const std::vector<std::string>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      os << json_str(v[i]) << (i + 1 < v.size() ? ", " : "");
    }
  };
  os << "  \"tasks\": [";
  str_list(m.tasks);
  os << "],\n  \"runtimes\": [";
  str_list(m.runtimes);
  os << "],\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < m.scenarios.size(); ++i) {
    const ScenarioSpec& sc = m.scenarios[i];
    os << "    {\"name\": " << json_str(sc.name) << ", \"source\": " << json_str(sc.source)
       << ", \"capacitance_f\": " << sc.capacitance_f << ", \"max_off_s\": " << sc.max_off_s
       << ", \"max_reboots\": " << sc.max_reboots << ", \"max_futile\": " << sc.max_futile
       << "}"
       << (i + 1 < m.scenarios.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    const ScenarioCell& c = m.cells[i];
    os << "    {\"task\": " << json_str(c.task) << ", \"scenario\": " << json_str(c.scenario)
       << ", \"runtime\": " << json_str(c.runtime)
       << ", \"outcome\": " << json_str(flex::outcome_name(c.outcome))
       << ", \"completed\": " << (c.completed() ? "true" : "false")
       << ", \"livelock\": " << (c.livelock ? "true" : "false") << ",\n     \"on_s\": "
       << c.on_s << ", \"off_s\": " << c.off_s << ", \"total_s\": " << c.total_s
       << ", \"energy_j\": " << c.energy_j
       << ", \"checkpoint_energy_j\": " << c.checkpoint_energy_j << ",\n     \"reboots\": "
       << c.reboots << ", \"checkpoints\": " << c.checkpoints
       << ", \"progress_commits\": " << c.progress_commits
       << ", \"units_executed\": " << c.units_executed
       << ", \"units_total\": " << c.units_total << "}"
       << (i + 1 < m.cells.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  obs::write_metrics_json(os, m.metrics, "  ");
  os << "\n}\n";
}

}  // namespace ehdnn::sim
