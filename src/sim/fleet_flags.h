// Flag-combination validation for the fleet_runner CLI, pulled out of
// main() so the conflict matrix is table-testable: the runner has three
// mutually exclusive modes (full run / --shard partial / --merge), and a
// flag that is load-bearing in one mode is silently meaningless in
// another — every such combination must die with one clear line BEFORE
// any simulation work starts, not produce a truncated artifact.
#pragma once

#include <string>

namespace ehdnn::sim {

// What the command line asked for, reduced to the fields the conflict
// rules read. The CLI layer fills this after parsing; values carry no
// defaults beyond "flag absent".
struct FleetFlagSet {
  bool merge = false;            // --merge
  int merge_inputs = 0;          // bare PARTIAL arguments seen
  bool have_config = false;      // --config FILE
  std::string population_flag;   // last homogeneous flag seen ("" = none)
  int shards = 1;                // --shards N
  int shard = -1;                // --shard I (-1 = absent)
  bool compare_fixed = false;    // --compare-fixed
  bool compare_admission = false;  // --compare-admission
  bool profile = false;          // --profile
  int jobs = 1;                  // --jobs N
  bool have_trace_out = false;       // --trace-out FILE
  bool have_trace_text_out = false;  // --trace-text-out FILE
  bool have_trace_devices = false;   // --trace-devices IDs
};

// Returns "" when the combination is consistent, else the one-line
// usage diagnostic (no program-name prefix; the caller adds it and
// exits 2). First conflict wins — the rules are ordered mode-first so
// the message names the decision the user has to make, not a symptom.
std::string validate_fleet_flags(const FleetFlagSet& f);

}  // namespace ehdnn::sim
