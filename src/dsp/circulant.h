// Circulant-matrix arithmetic: the computational core of BCM layers.
//
// A k x k circulant matrix C = circ(c) is defined by its first column c:
// C[i][j] = c[(i - j) mod k], so C*x equals the circular convolution
// c (*) x, which the FFT diagonalizes:
//
//     C * x = IFFT( FFT(c) o FFT(x) )          (paper SSII, Algorithm 1)
//
// This header provides the double-precision reference (used in training and
// tests) and the Q15 path that models what ACE runs on the LEA, including
// Algorithm 1's SCALE-DOWN / SCALE-UP handled as exact power-of-two
// exponent bookkeeping.
#pragma once

#include <span>
#include <vector>

#include "dsp/fft.h"
#include "fixed/cq15.h"
#include "fixed/q15.h"

namespace ehdnn::dsp {

// Naive O(k^2) circular convolution (test oracle / training reference).
std::vector<double> circ_conv_ref(std::span<const double> c, std::span<const double> x);
// Allocation-free overload for bench loops: y must have c.size() elements.
void circ_conv_ref(std::span<const double> c, std::span<const double> x,
                   std::span<double> y);

// Reusable scratch for the double-precision FFT path: hoist one of these
// out of a loop and every iteration runs allocation-free (buffers grow
// once to the largest k seen).
struct CirculantScratch {
  std::vector<std::complex<double>> fc, fx;
};

// FFT-based C*x in double precision; k must be a power of two.
std::vector<double> circulant_matvec(std::span<const double> first_col,
                                     std::span<const double> x);
// Allocation-free overload: y must have first_col.size() elements.
void circulant_matvec(std::span<const double> first_col, std::span<const double> x,
                      CirculantScratch& scratch, std::span<double> y);

// Q15 circulant mat-vec result before the final narrowing: interleaved
// real values plus the exponent such that true value = data * 2^exponent.
struct ScaledVecQ15 {
  std::vector<fx::q15_t> data;
  int exponent = 0;
};

// Block-floating-point product guard. After a BFP FFT each spectrum
// component sits anywhere below 1.0, so the complex product
// re = a.re*b.re - a.im*b.im can reach magnitude 2.0 and saturate. This
// pure decision function — shared verbatim by the software executor and
// the on-device kernel so both stay bit-identical — computes how many
// 1-bit right-shifts each operand needs (largest first) until the product
// bound 2*m_w*m_x fits q15. Inputs are the max |component| of each buffer.
struct GuardShifts {
  int w = 0;  // shifts for the weight spectrum
  int x = 0;  // shifts for the activation spectrum
};
GuardShifts product_guard(int max_w, int max_x);

// Q15 C*x as ACE executes it on the LEA (Algorithm 1):
//   1. complexify c and x               (COMPLEX)
//   2. forward FFT both                 (FFT, scaled -> SCALE-DOWN by len)
//   3. element-wise complex multiply    (MPY)
//   4. inverse FFT                      (IFFT)
//   5. take real part                   (REAL)
// The combined exponent is returned so the caller can SCALE-UP (narrow)
// once after accumulating all blocks of a row.
ScaledVecQ15 circulant_matvec_q15(std::span<const fx::q15_t> first_col,
                                  std::span<const fx::q15_t> x, FftScaling scaling,
                                  fx::SatStats* stats = nullptr);

// Reusable scratch for the q15 path (complex work buffers + the output
// staging): lets constraint-heavy inner loops (qexec's per-block calls,
// bench sweeps) run with zero steady-state allocations.
struct CirculantScratchQ15 {
  std::vector<fx::cq15> cw, cx;
};

// Allocation-free overload: writes the un-narrowed real parts into `out`
// (first_col.size() elements) and returns the combined exponent.
int circulant_matvec_q15(std::span<const fx::q15_t> first_col, std::span<const fx::q15_t> x,
                         FftScaling scaling, CirculantScratchQ15& scratch,
                         std::span<fx::q15_t> out, fx::SatStats* stats = nullptr);

// Narrow a scaled vector to plain q15 (value domain [-1, 1)), applying the
// exponent with rounding and saturation. This is Algorithm 1's SCALE-UP.
std::vector<fx::q15_t> narrow(const ScaledVecQ15& v, fx::SatStats* stats = nullptr);

}  // namespace ehdnn::dsp
