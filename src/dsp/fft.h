// FFT / IFFT kernels.
//
// Three implementations live here:
//   * a double-precision reference (used by training and as a test oracle),
//   * a naive O(N^2) DFT (oracle for the oracles),
//   * the Q15 fixed-point radix-2 FFT that models the LEA's complex FFT.
//
// The Q15 transform supports two scaling disciplines:
//   * kFixedScale — divide both butterfly outputs by 2 at every stage
//     (the LEA's "scale by two" mode). Output = DFT(x)/N, exponent +log2 N.
//     This is what the paper's Algorithm 1 relies on (SCALE-DOWN by length).
//   * kBlockFloat — block-floating-point: shift only when the next stage
//     could overflow, and report how many shifts happened. Maximum
//     precision; used to quantify how much accuracy Algorithm 1's fixed
//     scaling costs (bench/ablation_overflow).
//
// Exponent convention: if the caller's buffer holds value v = raw * 2^e0,
// then after fft_q15 the buffer holds DFT(v) = raw' * 2^(e0 + delta) where
// delta is the returned exponent increment. ifft_q15 is implemented by the
// conjugation identity IDFT(X) = conj(DFT(conj(X))) / N and returns its own
// (possibly negative) increment.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "fixed/cq15.h"
#include "fixed/q15.h"

namespace ehdnn::dsp {

enum class FftScaling {
  kFixedScale,  // >>1 each stage; overflow-proof; exponent += log2(N)
  kBlockFloat,  // shift on demand; exponent += number of shifts taken
  kNone,        // no scaling; saturates on large inputs (overflow ablation)
};

// --- double-precision reference -------------------------------------------

// In-place iterative radix-2 DIT FFT. n must be a power of two.
void fft(std::span<std::complex<double>> data);
void ifft(std::span<std::complex<double>> data);  // includes the 1/N factor

// Naive O(N^2) DFT used as the correctness oracle in tests (any n).
std::vector<std::complex<double>> dft_naive(std::span<const std::complex<double>> x);

// --- Q15 fixed point (LEA model) ------------------------------------------

// In-place FFT over interleaved complex q15. Returns the exponent increment
// (see header comment). `stats` counts saturations (kBlockFloat should
// produce none; kFixedScale cannot saturate by construction).
int fft_q15(std::span<fx::cq15> data, FftScaling scaling, fx::SatStats* stats = nullptr);

// In-place inverse FFT (true IDFT including 1/N), same conventions.
int ifft_q15(std::span<fx::cq15> data, FftScaling scaling, fx::SatStats* stats = nullptr);

// Precomputed per-size transform plan: the q15 twiddle ROM plus the
// bit-reversal permutation as an explicit swap list, so fft_q15 performs
// zero per-call setup arithmetic. Plans are built once per size in a
// mutex-guarded cache and live behind stable storage, so the returned
// reference stays valid forever — safe under concurrent first-touch from
// multiple threads and immune to any future cache-container rehash/move.
struct FftPlan {
  std::size_t n = 0;
  std::vector<fx::cq15> twiddles;  // W_n^k = exp(-2*pi*i*k/n), k in [0, n/2)
  std::vector<std::pair<std::uint32_t, std::uint32_t>> swaps;  // bit-reversal, i < j
};
const FftPlan& fft_plan(std::size_t n);

// Twiddle table view of the plan (the reference for the LEA's ROM twiddle
// tables). Kept for callers that only need the ROM.
const std::vector<fx::cq15>& twiddles_q15(std::size_t n);

}  // namespace ehdnn::dsp
