#include "dsp/circulant.h"

#include <complex>

#include "util/check.h"
#include "util/math.h"

namespace ehdnn::dsp {

void circ_conv_ref(std::span<const double> c, std::span<const double> x,
                   std::span<double> y) {
  const std::size_t k = c.size();
  check(x.size() == k, "circ_conv_ref: size mismatch");
  check(y.size() == k, "circ_conv_ref: output size mismatch");
  for (std::size_t i = 0; i < k; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      acc += c[(i + k - j) % k] * x[j];
    }
    y[i] = acc;
  }
}

std::vector<double> circ_conv_ref(std::span<const double> c, std::span<const double> x) {
  std::vector<double> y(c.size(), 0.0);
  circ_conv_ref(c, x, y);
  return y;
}

void circulant_matvec(std::span<const double> first_col, std::span<const double> x,
                      CirculantScratch& scratch, std::span<double> y) {
  const std::size_t k = first_col.size();
  check(x.size() == k, "circulant_matvec: size mismatch");
  check(y.size() == k, "circulant_matvec: output size mismatch");
  check(is_pow2(k), "circulant_matvec: block size must be a power of two");
  if (scratch.fc.size() < k) scratch.fc.resize(k);
  if (scratch.fx.size() < k) scratch.fx.resize(k);
  const std::span<std::complex<double>> fc(scratch.fc.data(), k);
  const std::span<std::complex<double>> fx_(scratch.fx.data(), k);
  for (std::size_t i = 0; i < k; ++i) {
    fc[i] = first_col[i];
    fx_[i] = x[i];
  }
  fft(fc);
  fft(fx_);
  for (std::size_t i = 0; i < k; ++i) fc[i] *= fx_[i];
  ifft(fc);
  for (std::size_t i = 0; i < k; ++i) y[i] = fc[i].real();
}

std::vector<double> circulant_matvec(std::span<const double> first_col,
                                     std::span<const double> x) {
  CirculantScratch scratch;
  std::vector<double> y(first_col.size());
  circulant_matvec(first_col, x, scratch, y);
  return y;
}

GuardShifts product_guard(int max_w, int max_x) {
  GuardShifts g;
  auto bound = [](long long a, long long b) { return (2 * a * b) >> 15; };
  // Conservative magnitude after a rounding right-shift: (m >> 1) + 1.
  while (bound(max_w, max_x) > fx::kQ15Max) {
    if (max_w >= max_x) {
      max_w = (max_w >> 1) + 1;
      ++g.w;
    } else {
      max_x = (max_x >> 1) + 1;
      ++g.x;
    }
  }
  return g;
}

namespace {

int max_component(std::span<const fx::cq15> v) {
  int m = 0;
  for (const auto& c : v) {
    m = std::max({m, std::abs(static_cast<int>(c.re)), std::abs(static_cast<int>(c.im))});
  }
  return m;
}

void shift_buffer(std::span<fx::cq15> v, int right_shift) {
  for (auto& c : v) {
    c.re = fx::shift_sat(c.re, -right_shift);
    c.im = fx::shift_sat(c.im, -right_shift);
  }
}

}  // namespace

int circulant_matvec_q15(std::span<const fx::q15_t> first_col, std::span<const fx::q15_t> x,
                         FftScaling scaling, CirculantScratchQ15& scratch,
                         std::span<fx::q15_t> out, fx::SatStats* stats) {
  const std::size_t k = first_col.size();
  check(x.size() == k, "circulant_matvec_q15: size mismatch");
  check(out.size() == k, "circulant_matvec_q15: output size mismatch");
  check(is_pow2(k), "circulant_matvec_q15: block size must be a power of two");
  if (scratch.cw.size() < k) scratch.cw.resize(k);
  if (scratch.cx.size() < k) scratch.cx.resize(k);
  const std::span<fx::cq15> cw(scratch.cw.data(), k);
  const std::span<fx::cq15> cx(scratch.cx.data(), k);

  // COMPLEX: interleave with zero imaginary parts.
  for (std::size_t i = 0; i < k; ++i) {
    cw[i] = {first_col[i], 0};
    cx[i] = {x[i], 0};
  }

  // FFT both operands; exponents record the implicit SCALE-DOWN.
  int exponent = 0;
  exponent += fft_q15(cw, scaling, stats);
  exponent += fft_q15(cx, scaling, stats);

  // Guard the product against complex-multiply overflow (BFP mode; the
  // fixed-scale path is the paper's literal Algorithm 1, where any
  // saturation is reported through `stats` instead).
  if (scaling == FftScaling::kBlockFloat) {
    const GuardShifts g = product_guard(max_component(cw), max_component(cx));
    if (g.w > 0) shift_buffer(cw, g.w);
    if (g.x > 0) shift_buffer(cx, g.x);
    exponent += g.w + g.x;
  }

  // MPY: element-wise complex product.
  for (std::size_t i = 0; i < k; ++i) cw[i] = fx::cmul(cw[i], cx[i], stats);

  // IFFT and REAL.
  exponent += ifft_q15(cw, scaling, stats);

  for (std::size_t i = 0; i < k; ++i) out[i] = cw[i].re;
  return exponent;
}

ScaledVecQ15 circulant_matvec_q15(std::span<const fx::q15_t> first_col,
                                  std::span<const fx::q15_t> x, FftScaling scaling,
                                  fx::SatStats* stats) {
  CirculantScratchQ15 scratch;
  ScaledVecQ15 out;
  out.data.resize(first_col.size());
  out.exponent = circulant_matvec_q15(first_col, x, scaling, scratch, out.data, stats);
  return out;
}

std::vector<fx::q15_t> narrow(const ScaledVecQ15& v, fx::SatStats* stats) {
  std::vector<fx::q15_t> out(v.data.size());
  for (std::size_t i = 0; i < v.data.size(); ++i) {
    out[i] = fx::shift_sat(v.data[i], v.exponent, stats);
  }
  return out;
}

}  // namespace ehdnn::dsp
