#include "dsp/fft.h"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>

#include "util/check.h"
#include "util/math.h"

namespace ehdnn::dsp {

namespace {

// Bit-reversal permutation shared by all in-place variants.
template <typename T>
void bit_reverse(std::span<T> data) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

}  // namespace

void fft(std::span<std::complex<double>> data) {
  const std::size_t n = data.size();
  check(is_pow2(n), "fft size must be a power of two");
  bit_reverse(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = data[i + k];
        const auto v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void ifft(std::span<std::complex<double>> data) {
  for (auto& x : data) x = std::conj(x);
  fft(data);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& x : data) x = std::conj(x) * inv_n;
}

std::vector<std::complex<double>> dft_naive(std::span<const std::complex<double>> x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += x[t] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

namespace {

std::unique_ptr<const FftPlan> build_plan(std::size_t n) {
  auto plan = std::make_unique<FftPlan>();
  plan->n = n;
  plan->twiddles.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    plan->twiddles[k] = {fx::to_q15(std::cos(ang)), fx::to_q15(std::sin(ang))};
  }
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      plan->swaps.emplace_back(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
    }
  }
  return plan;
}

}  // namespace

const FftPlan& fft_plan(std::size_t n) {
  check(is_pow2(n), "fft_plan size must be a power of two");
  // unique_ptr indirection keeps returned references stable no matter
  // what the cache container does; the mutex covers concurrent
  // first-touch builds of the same (or different) sizes.
  static std::mutex mu;
  static std::map<std::size_t, std::unique_ptr<const FftPlan>> cache;
  const std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[n];
  if (slot == nullptr) slot = build_plan(n);
  return *slot;
}

const std::vector<fx::cq15>& twiddles_q15(std::size_t n) { return fft_plan(n).twiddles; }

namespace {

// One radix-2 DIT stage pass over the whole buffer with the given
// pre-shift applied to both butterfly inputs (0 = none, 1 = halve).
void fft_stage(std::span<fx::cq15> data, std::size_t len, int pre_shift,
               const std::vector<fx::cq15>& tw, fx::SatStats* stats) {
  const std::size_t n = data.size();
  const std::size_t tw_step = n / len;
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      fx::cq15 u = data[i + k];
      fx::cq15 v = fx::cmul(data[i + k + len / 2], tw[k * tw_step], stats);
      if (pre_shift) {
        u = {fx::shift_sat(u.re, -pre_shift), fx::shift_sat(u.im, -pre_shift)};
        v = {fx::shift_sat(v.re, -pre_shift), fx::shift_sat(v.im, -pre_shift)};
      }
      data[i + k] = fx::cadd_sat(u, v, stats);
      data[i + k + len / 2] = fx::csub_sat(u, v, stats);
    }
  }
}

// True if the next butterfly could saturate. The twiddled half of a
// butterfly bounds its *components* by the input's complex magnitude
// |d| <= sqrt(2) * max_component, so components must stay below
// 0.5/sqrt(2) (11585 LSB) for u +- W*v to stay inside q15:
// |u| + |W*v| <= 11585 + sqrt(2)*11585 < 32768.
bool needs_guard_shift(std::span<const fx::cq15> data) {
  constexpr fx::q15_t kGuard = 11585;  // floor(0.5/sqrt(2) * 2^15)
  for (const auto& c : data) {
    if (c.re >= kGuard || c.re <= -kGuard || c.im >= kGuard || c.im <= -kGuard) return true;
  }
  return false;
}

}  // namespace

int fft_q15(std::span<fx::cq15> data, FftScaling scaling, fx::SatStats* stats) {
  const std::size_t n = data.size();
  check(is_pow2(n), "fft_q15 size must be a power of two");
  if (n == 1) return 0;
  const FftPlan& plan = fft_plan(n);
  const auto& tw = plan.twiddles;
  for (const auto& [i, j] : plan.swaps) std::swap(data[i], data[j]);
  int exponent = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    int pre_shift = 0;
    if (scaling == FftScaling::kFixedScale) {
      pre_shift = 1;
    } else if (scaling == FftScaling::kBlockFloat && needs_guard_shift(data)) {
      pre_shift = 1;
    }
    exponent += pre_shift;
    fft_stage(data, len, pre_shift, tw, stats);
  }
  return exponent;
}

int ifft_q15(std::span<fx::cq15> data, FftScaling scaling, fx::SatStats* stats) {
  // IDFT(X) = conj(DFT(conj(X))) / N; the /N combines with the forward
  // transform's scaling exponent.
  for (auto& c : data) c = fx::conj(c);
  const int fwd = fft_q15(data, scaling, stats);
  for (auto& c : data) c = fx::conj(c);
  return fwd - ilog2(data.size());
}

}  // namespace ehdnn::dsp
