// Complex Q0.15 value, the element type of the LEA's complex FFT buffers.
//
// Stored interleaved (re, im) exactly as the LEA expects its working
// memory laid out; vector code treats a cq15 array as 2N q15 words.
#pragma once

#include "fixed/q15.h"

namespace ehdnn::fx {

struct cq15 {
  q15_t re = 0;
  q15_t im = 0;
};

// (a*b) complex multiply with fractional rounding; each component is a
// sum/difference of two Q30 products narrowed back to q15.
inline cq15 cmul(cq15 a, cq15 b, SatStats* stats = nullptr) {
  const q31_t re = mul_q30(a.re, b.re) - mul_q30(a.im, b.im);
  const q31_t im = mul_q30(a.re, b.im) + mul_q30(a.im, b.re);
  const q31_t half = 1 << (kQ15Bits - 1);
  return {sat16((re + half) >> kQ15Bits, stats), sat16((im + half) >> kQ15Bits, stats)};
}

inline cq15 cadd_sat(cq15 a, cq15 b, SatStats* stats = nullptr) {
  return {add_sat(a.re, b.re, stats), add_sat(a.im, b.im, stats)};
}

inline cq15 csub_sat(cq15 a, cq15 b, SatStats* stats = nullptr) {
  return {sub_sat(a.re, b.re, stats), sub_sat(a.im, b.im, stats)};
}

inline cq15 conj(cq15 a) {
  // Note: -(-32768) saturates to 32767.
  const q31_t neg = -static_cast<q31_t>(a.im);
  return {a.re, sat16(neg)};
}

}  // namespace ehdnn::fx
