// Vector helpers over q15 spans: the software reference implementations of
// the LEA vector op set (ADD, MPY, MAC, SHIFT, SCALE). The device model in
// src/device wraps these with cycle/energy accounting; ACE's correctness is
// validated against these same kernels.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fixed/q15.h"

namespace ehdnn::fx {

// Element-wise saturating addition: out[i] = a[i] + b[i].
inline void vec_add(std::span<const q15_t> a, std::span<const q15_t> b, std::span<q15_t> out,
                    SatStats* stats = nullptr) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = add_sat(a[i], b[i], stats);
}

// Element-wise fractional multiply: out[i] = a[i] * b[i].
inline void vec_mpy(std::span<const q15_t> a, std::span<const q15_t> b, std::span<q15_t> out,
                    SatStats* stats = nullptr) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = mul_q15(a[i], b[i], stats);
}

// Multiply-accumulate: returns sum_i a[i]*b[i] as a wide Q30-scaled value.
// This mirrors the LEA MAC which keeps a 32-bit accumulator; we widen to
// 64 bits so the *simulation* never wraps, and report whether the value
// exceeded the 32-bit accumulator the real hardware has.
struct MacResult {
  std::int64_t acc_q30 = 0;    // sum of Q30 products
  bool overflowed_q31 = false; // true if a real LEA accumulator would wrap
};

inline MacResult vec_mac(std::span<const q15_t> a, std::span<const q15_t> b) {
  MacResult r;
  for (std::size_t i = 0; i < a.size(); ++i) {
    r.acc_q30 += mul_q30(a[i], b[i]);
    if (r.acc_q30 > std::numeric_limits<q31_t>::max() ||
        r.acc_q30 < std::numeric_limits<q31_t>::min()) {
      r.overflowed_q31 = true;
    }
  }
  return r;
}

// Arithmetic shift of each element (LEA SHIFT).
inline void vec_shift(std::span<const q15_t> a, int left_shift, std::span<q15_t> out,
                      SatStats* stats = nullptr) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = shift_sat(a[i], left_shift, stats);
}

// Scale by a q15 constant (LEA SCALE).
inline void vec_scale(std::span<const q15_t> a, q15_t c, std::span<q15_t> out,
                      SatStats* stats = nullptr) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = mul_q15(a[i], c, stats);
}

// Float <-> q15 conversion of whole buffers.
inline std::vector<q15_t> quantize(std::span<const float> x, SatStats* stats = nullptr) {
  std::vector<q15_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = to_q15(x[i], stats);
  return out;
}

inline std::vector<float> dequantize(std::span<const q15_t> x) {
  std::vector<float> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = to_float(x[i]);
  return out;
}

}  // namespace ehdnn::fx
