// Q0.15 fixed-point arithmetic (the TI LEA's native data format).
//
// A q15 value is a 16-bit signed integer `raw` representing raw / 2^15,
// i.e. the representable range is [-1.0, 1.0 - 2^-15]. All arithmetic
// saturates on overflow and can report saturation events through an
// optional SatStats counter, which the overflow-aware computation in ACE
// (paper SSIII-B) uses to validate that normalization keeps intermediates
// in range.
//
// The quantization rule matches the paper's: B = A * 2^(b-1) with b = 16.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>

namespace ehdnn::fx {

using q15_t = std::int16_t;
using q31_t = std::int32_t;

inline constexpr int kQ15Bits = 15;
inline constexpr q15_t kQ15Max = 32767;
inline constexpr q15_t kQ15Min = -32768;
inline constexpr double kQ15One = 32768.0;  // 2^15

// Counts saturation events so callers can assert overflow-freedom.
struct SatStats {
  long long saturations = 0;
  void note() { ++saturations; }
  void reset() { saturations = 0; }
};

// Saturate a wide intermediate into q15 range.
inline q15_t sat16(q31_t v, SatStats* stats = nullptr) {
  if (v > kQ15Max) {
    if (stats) stats->note();
    return kQ15Max;
  }
  if (v < kQ15Min) {
    if (stats) stats->note();
    return kQ15Min;
  }
  return static_cast<q15_t>(v);
}

inline q15_t sat16(std::int64_t v, SatStats* stats = nullptr) {
  if (v > kQ15Max) {
    if (stats) stats->note();
    return kQ15Max;
  }
  if (v < kQ15Min) {
    if (stats) stats->note();
    return kQ15Min;
  }
  return static_cast<q15_t>(v);
}

// Float -> q15 with round-to-nearest and saturation.
inline q15_t to_q15(double x, SatStats* stats = nullptr) {
  const double scaled = x * kQ15One;
  const double rounded = scaled >= 0 ? scaled + 0.5 : scaled - 0.5;
  if (rounded >= static_cast<double>(kQ15Max)) {
    if (stats) stats->note();
    return kQ15Max;
  }
  if (rounded <= static_cast<double>(kQ15Min)) {
    if (stats) stats->note();
    return kQ15Min;
  }
  return static_cast<q15_t>(rounded);
}

inline double to_double(q15_t x) { return static_cast<double>(x) / kQ15One; }
inline float to_float(q15_t x) { return static_cast<float>(x) / static_cast<float>(kQ15One); }

// Saturating addition / subtraction.
inline q15_t add_sat(q15_t a, q15_t b, SatStats* stats = nullptr) {
  return sat16(static_cast<q31_t>(a) + static_cast<q31_t>(b), stats);
}

inline q15_t sub_sat(q15_t a, q15_t b, SatStats* stats = nullptr) {
  return sat16(static_cast<q31_t>(a) - static_cast<q31_t>(b), stats);
}

// q15 x q15 -> q15 with rounding (the classic fractional multiply).
// (a*b) is Q30; add half-LSB then shift right by 15. The only saturating
// case is -1 * -1 which would yield +1.0 (unrepresentable).
inline q15_t mul_q15(q15_t a, q15_t b, SatStats* stats = nullptr) {
  const q31_t prod = static_cast<q31_t>(a) * static_cast<q31_t>(b);
  return sat16((prod + (1 << (kQ15Bits - 1))) >> kQ15Bits, stats);
}

// q15 x q15 -> q31 exact product (Q30 value); used by MAC accumulators.
inline q31_t mul_q30(q15_t a, q15_t b) {
  return static_cast<q31_t>(a) * static_cast<q31_t>(b);
}

// Arithmetic shift with saturation on left shifts (the LEA SHIFT op).
inline q15_t shift_sat(q15_t a, int left_shift, SatStats* stats = nullptr) {
  if (left_shift >= 0) {
    std::int64_t v = static_cast<std::int64_t>(a) << left_shift;
    return sat16(v, stats);
  }
  const int rs = -left_shift;
  if (rs >= 16) return static_cast<q15_t>(a < 0 ? -1 : 0);
  // Round-to-nearest on right shift.
  const q31_t bias = 1 << (rs - 1);
  return static_cast<q15_t>((static_cast<q31_t>(a) + bias) >> rs);
}

// Q30 accumulator -> q15 with a right shift (rounding) and saturation.
// `rshift` is typically 15 (plain product) plus any block exponent.
inline q15_t narrow_q30(std::int64_t acc, int rshift, SatStats* stats = nullptr) {
  if (rshift > 0) {
    const std::int64_t bias = 1ll << (rshift - 1);
    acc = (acc + bias) >> rshift;
  } else if (rshift < 0) {
    acc <<= -rshift;
  }
  return sat16(acc, stats);
}

}  // namespace ehdnn::fx
