// QuantModel (de)serialization: the flashable deployment artifact.
//
// RAD runs on a host; the device receives a binary image containing the
// quantized weights, scales and layer descriptors. This is that image —
// a versioned, self-describing little-endian format the examples use to
// hand models from the training pipeline to the runtime without
// recompiling.
#pragma once

#include <iosfwd>

#include "quant/qmodel.h"

namespace ehdnn::quant {

// Binary format:
//   u32 magic 'EHQM', u32 version, u32 layer_count, i32 input_exp
//   per layer: u8 kind, i32 w_exp/in_exp/out_exp,
//              u32 dims[in_ch,out_ch,kh,kw,k,bp,bq],
//              shapes, mask, weights, bias (all length-prefixed)
void save_qmodel(const QuantModel& qm, std::ostream& os);
QuantModel load_qmodel(std::istream& is);

}  // namespace ehdnn::quant
