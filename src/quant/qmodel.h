// QuantModel: the deployable 16-bit fixed-point model description.
//
// This is what RAD emits after training/compression/normalization and what
// ACE compiles onto the device (weights into FRAM, per-layer kernels). All
// scales are powers of two, applied with shifts — there is no floating
// point on the target (paper SSIII-A "Fixed-point quantization",
// B = A * 2^(b-1) with b = 16).
//
// Scale conventions:
//   * activation of layer l is stored as  q = a / 2^out_exp  in q15;
//   * weights are stored as              qw = w / 2^w_exp    in q15;
//   * biases are stored in the *output* scale (q15 at out_exp).
// The executor narrows each accumulator with a single arithmetic shift of
// 15 + out_exp - w_exp - in_exp bits (see qexec.cpp), which is exactly the
// overflow-aware computation ACE performs with the LEA SHIFT op.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fixed/q15.h"

namespace ehdnn::quant {

enum class QKind {
  kConv2D,
  kConv1D,
  kMaxPool2D,
  kReLU,
  kFlatten,
  kDense,
  kBcmDense,
};

const char* kind_name(QKind k);

struct QLayer {
  QKind kind = QKind::kReLU;
  std::vector<std::size_t> in_shape;
  std::vector<std::size_t> out_shape;

  // Weight layouts: Conv2D (F,C,kh,kw); Conv1D (F,C,k); Dense (out,in);
  // BcmDense (p,q,k) circulant first columns.
  std::vector<fx::q15_t> weights;
  std::vector<fx::q15_t> bias;  // output scale

  int w_exp = 0;    // true weight = qw * 2^w_exp
  int in_exp = 0;   // input activation scale exponent
  int out_exp = 0;  // output activation scale exponent

  // Dimensions (meaning depends on kind; unused fields stay 0).
  std::size_t in_ch = 0, out_ch = 0, kh = 0, kw = 0;
  std::size_t k = 0;          // Conv1D kernel or BCM block size
  std::size_t bp = 0, bq = 0; // BCM block-grid rows / cols

  std::vector<bool> shape_mask;  // Conv2D structured pruning (kh*kw)

  std::size_t live_positions() const {
    if (shape_mask.empty()) return kh * kw;
    std::size_t n = 0;
    for (bool b : shape_mask) n += b ? 1 : 0;
    return n;
  }

  std::size_t in_size() const;
  std::size_t out_size() const;
  std::size_t weight_words() const { return weights.size() + bias.size(); }
};

// --- deployment arithmetic contract ---------------------------------------
// The software reference executor (quant/qexec) and the on-device kernels
// (core/ace) must produce bit-identical results, so the points where wide
// accumulators are truncated are part of the model contract, not an
// implementation detail.

// Dense layers stream their rows in chunks of this many elements (bounded
// by the SRAM scratch buffers); each chunk is MAC'd exactly in 64 bits,
// then folded into a guarded 32-bit running accumulator.
inline constexpr std::size_t kDenseChunk = 512;

// Right-shift applied when folding a chunk sum into the 32-bit running
// accumulator: sized so that |in| full-scale Q30 products cannot overflow.
inline int dense_guard_shift(std::size_t in_features) {
  int g = 0;
  std::size_t cap = 1;
  while (cap < in_features) {
    cap <<= 1;
    ++g;
  }
  return g;
}

struct QuantModel {
  std::vector<QLayer> layers;
  int input_exp = 0;  // inputs are RAD-normalized to [-1, 1] -> 0
  std::string name;

  std::size_t weight_words() const;
  std::size_t weight_bytes() const { return weight_words() * sizeof(fx::q15_t); }

  // Largest activation buffer any layer reads or writes, in words — the
  // max(L_i) bound of ACE's circular-buffer convolution (paper Fig. 5).
  std::size_t max_activation_words() const;

  std::size_t output_size() const { return layers.back().out_size(); }
};

}  // namespace ehdnn::quant
