#include "quant/quantize.h"

#include <cmath>

#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"
#include "util/check.h"

namespace ehdnn::quant {

namespace {

// Smallest integer e with max_abs / 2^e < 1 (so q15 can hold the value).
int scale_exp(double max_abs) {
  int e = 0;
  while (max_abs / std::exp2(e) >= 1.0) ++e;
  while (e > -12 && max_abs / std::exp2(e - 1) < 1.0) --e;  // tighten for precision
  return e;
}

std::vector<fx::q15_t> quantize_span(std::span<const float> w, int w_exp) {
  std::vector<fx::q15_t> q(w.size());
  const double inv = std::exp2(-w_exp);
  for (std::size_t i = 0; i < w.size(); ++i) {
    q[i] = fx::to_q15(static_cast<double>(w[i]) * inv);
  }
  return q;
}

}  // namespace

QuantModel quantize(nn::Model& model, std::span<const nn::Tensor> calib,
                    const std::vector<std::size_t>& input_shape, const QuantizeOptions& opts) {
  check(!calib.empty(), "quantize: calibration set is empty");

  // --- calibration: per-layer peak |activation| --------------------------
  const std::size_t n_layers = model.layer_count();
  std::vector<double> act_max(n_layers, 0.0);
  for (const auto& sample : calib) {
    nn::Tensor a = sample;
    for (std::size_t l = 0; l < n_layers; ++l) {
      a = model.layer(l).forward(a);
      act_max[l] = std::max(act_max[l], static_cast<double>(a.max_abs()));
    }
  }

  QuantModel qm;
  qm.name = opts.model_name;
  qm.input_exp = 0;  // RAD-normalized inputs live in [-1, 1]

  std::vector<std::size_t> shape = input_shape;
  int in_exp = qm.input_exp;

  for (std::size_t l = 0; l < n_layers; ++l) {
    nn::Layer& layer = model.layer(l);
    QLayer q;
    q.in_shape = shape;
    q.out_shape = layer.output_shape(shape);
    q.in_exp = in_exp;

    const double peak = act_max[l] * opts.headroom;

    if (auto* conv = dynamic_cast<nn::Conv2D*>(&layer)) {
      q.kind = QKind::kConv2D;
      q.in_ch = conv->in_channels();
      q.out_ch = conv->out_channels();
      q.kh = conv->kernel_h();
      q.kw = conv->kernel_w();
      q.shape_mask = conv->shape_mask();
      q.out_exp = std::max(0, scale_exp(peak));
      double wmax = 0.0;
      for (float v : conv->weights()) wmax = std::max(wmax, std::abs(static_cast<double>(v)));
      q.w_exp = scale_exp(wmax);
      q.weights = quantize_span(conv->weights(), q.w_exp);
      q.bias = quantize_span(conv->bias(), q.out_exp);
    } else if (auto* conv1 = dynamic_cast<nn::Conv1D*>(&layer)) {
      q.kind = QKind::kConv1D;
      q.in_ch = conv1->in_channels();
      q.out_ch = conv1->out_channels();
      q.k = conv1->kernel();
      q.out_exp = std::max(0, scale_exp(peak));
      double wmax = 0.0;
      for (float v : conv1->weights()) wmax = std::max(wmax, std::abs(static_cast<double>(v)));
      q.w_exp = scale_exp(wmax);
      q.weights = quantize_span(conv1->weights(), q.w_exp);
      q.bias = quantize_span(conv1->bias(), q.out_exp);
    } else if (auto* bcm = dynamic_cast<nn::BcmDense*>(&layer)) {
      q.kind = QKind::kBcmDense;
      q.k = bcm->block_size();
      q.bp = bcm->blocks_out();
      q.bq = bcm->blocks_in();
      q.out_exp = std::max(0, scale_exp(peak));
      double wmax = 0.0;
      std::vector<float> cols;
      cols.reserve(q.bp * q.bq * q.k);
      for (std::size_t i = 0; i < q.bp; ++i) {
        for (std::size_t j = 0; j < q.bq; ++j) {
          auto col = bcm->first_col(i, j);
          cols.insert(cols.end(), col.begin(), col.end());
          for (float v : col) wmax = std::max(wmax, std::abs(static_cast<double>(v)));
        }
      }
      q.w_exp = scale_exp(wmax);
      q.weights = quantize_span(cols, q.w_exp);
      q.bias = quantize_span(bcm->bias(), q.out_exp);
    } else if (dynamic_cast<nn::CosineDense*>(&layer) != nullptr) {
      // CosineDense is a training-time normalization device; RAD re-trains
      // the final model with plain Dense/BcmDense layers whose ranges the
      // cosine constraint already tamed. Deploying it directly would need
      // an on-device divide, which the LEA does not have.
      fail("quantize: CosineDense must be folded before quantization");
    } else if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
      q.kind = QKind::kDense;
      q.in_ch = dense->in_features();
      q.out_ch = dense->out_features();
      q.out_exp = std::max(0, scale_exp(peak));
      double wmax = 0.0;
      for (float v : dense->weights()) wmax = std::max(wmax, std::abs(static_cast<double>(v)));
      q.w_exp = scale_exp(wmax);
      q.weights = quantize_span(dense->weights(), q.w_exp);
      q.bias = quantize_span(dense->bias(), q.out_exp);
    } else if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      q.kind = QKind::kReLU;
      q.out_exp = in_exp;  // scale-preserving
    } else if (dynamic_cast<nn::MaxPool2D*>(&layer) != nullptr) {
      q.kind = QKind::kMaxPool2D;
      q.out_exp = in_exp;
    } else if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
      q.kind = QKind::kFlatten;
      q.out_exp = in_exp;
    } else {
      fail("quantize: unsupported layer kind " + layer.name());
    }

    in_exp = q.out_exp;
    shape = q.out_shape;
    qm.layers.push_back(std::move(q));
  }
  return qm;
}

std::vector<fx::q15_t> quantize_input(const QuantModel& qm, const nn::Tensor& x,
                                      fx::SatStats* stats) {
  const double inv = std::exp2(-qm.input_exp);
  std::vector<fx::q15_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = fx::to_q15(static_cast<double>(x[i]) * inv, stats);
  }
  return out;
}

}  // namespace ehdnn::quant
