#include "quant/qexec.h"

#include <cmath>

#include "dsp/circulant.h"
#include "fixed/vec.h"
#include "quant/quantize.h"
#include "util/check.h"
#include "util/math.h"

namespace ehdnn::quant {

namespace {

using fx::q15_t;

// Narrowing shift for dot-product accumulators: raw accumulator is a sum
// of Q30 products of (x / 2^in_exp) and (w / 2^w_exp); the stored output is
// y / 2^out_exp in q15 (Q15). See qmodel.h for the derivation.
int acc_rshift(const QLayer& l) { return 15 + l.out_exp - l.w_exp - l.in_exp; }

std::vector<q15_t> run_conv2d(const QLayer& l, std::span<const q15_t> x,
                              const QExecOptions& opts) {
  const std::size_t ih = l.in_shape[1], iw = l.in_shape[2];
  const std::size_t oh = l.out_shape[1], ow = l.out_shape[2];
  std::vector<q15_t> y(l.out_size());
  const int rshift = acc_rshift(l);
  for (std::size_t f = 0; f < l.out_ch; ++f) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        std::int64_t acc = 0;
        for (std::size_t c = 0; c < l.in_ch; ++c) {
          for (std::size_t r = 0; r < l.kh; ++r) {
            for (std::size_t s = 0; s < l.kw; ++s) {
              if (!l.shape_mask.empty() && !l.shape_mask[r * l.kw + s]) continue;
              const q15_t xv = x[(c * ih + i + r) * iw + j + s];
              const q15_t wv = l.weights[((f * l.in_ch + c) * l.kh + r) * l.kw + s];
              acc += fx::mul_q30(xv, wv);
            }
          }
        }
        q15_t v = fx::narrow_q30(acc, rshift, opts.stats);
        if (!l.bias.empty()) v = fx::add_sat(v, l.bias[f], opts.stats);
        y[(f * oh + i) * ow + j] = v;
      }
    }
  }
  return y;
}

std::vector<q15_t> run_conv1d(const QLayer& l, std::span<const q15_t> x,
                              const QExecOptions& opts) {
  const std::size_t il = l.in_shape[1];
  const std::size_t ol = l.out_shape[1];
  std::vector<q15_t> y(l.out_size());
  const int rshift = acc_rshift(l);
  for (std::size_t f = 0; f < l.out_ch; ++f) {
    for (std::size_t i = 0; i < ol; ++i) {
      std::int64_t acc = 0;
      for (std::size_t c = 0; c < l.in_ch; ++c) {
        for (std::size_t t = 0; t < l.k; ++t) {
          acc += fx::mul_q30(x[c * il + i + t], l.weights[(f * l.in_ch + c) * l.k + t]);
        }
      }
      q15_t v = fx::narrow_q30(acc, rshift, opts.stats);
      if (!l.bias.empty()) v = fx::add_sat(v, l.bias[f], opts.stats);
      y[f * ol + i] = v;
    }
  }
  return y;
}

std::vector<q15_t> run_dense(const QLayer& l, std::span<const q15_t> x,
                             const QExecOptions& opts) {
  // Chunked, guarded accumulation — the deployment contract (see
  // qmodel.h): exact 64-bit within a chunk, truncating fold into a 32-bit
  // running accumulator, so the on-device kernel matches bit for bit.
  std::vector<q15_t> y(l.out_ch);
  const int guard = dense_guard_shift(l.in_ch);
  const int rshift = acc_rshift(l) - guard;
  for (std::size_t o = 0; o < l.out_ch; ++o) {
    const q15_t* row = &l.weights[o * l.in_ch];
    std::int64_t acc32 = 0;  // value fits 32 bits by guard construction
    for (std::size_t base = 0; base < l.in_ch; base += kDenseChunk) {
      const std::size_t len = std::min(kDenseChunk, l.in_ch - base);
      std::int64_t chunk = 0;
      for (std::size_t i = 0; i < len; ++i) chunk += fx::mul_q30(x[base + i], row[base + i]);
      acc32 += chunk >> guard;
    }
    q15_t v = fx::narrow_q30(acc32, rshift, opts.stats);
    if (!l.bias.empty()) v = fx::add_sat(v, l.bias[o], opts.stats);
    y[o] = v;
  }
  return y;
}

std::vector<q15_t> run_bcm(const QLayer& l, std::span<const q15_t> x, const QExecOptions& opts) {
  const std::size_t k = l.k;
  const int lg = ilog2(k);
  // Disabling overflow awareness runs the FFTs unscaled: the exponent
  // bookkeeping still balances, but butterflies saturate and the result is
  // numerically wrong — the failure mode Algorithm 1 exists to prevent.
  const dsp::FftScaling scaling =
      opts.overflow_aware ? opts.fft_scaling : dsp::FftScaling::kNone;
  const std::size_t out = l.out_size();
  std::vector<q15_t> y(out);

  // Zero-padded input blocks.
  std::vector<q15_t> xpad(l.bq * k, 0);
  std::copy(x.begin(), x.end(), xpad.begin());

  // Per output block row: accumulate block circular convolutions in a wide
  // accumulator held in units of 2^-lg q15 LSBs, which covers the most
  // negative exponent the BFP inverse FFT can produce (see qmodel.h).
  std::vector<std::int64_t> acc(k);
  dsp::CirculantScratchQ15 scratch;
  std::vector<q15_t> blk(k);
  for (std::size_t bi = 0; bi < l.bp; ++bi) {
    std::fill(acc.begin(), acc.end(), std::int64_t{0});
    for (std::size_t bj = 0; bj < l.bq; ++bj) {
      std::span<const q15_t> col(&l.weights[(bi * l.bq + bj) * k], k);
      std::span<const q15_t> xblk(&xpad[bj * k], k);
      const int exponent = dsp::circulant_matvec_q15(col, xblk, scaling, scratch, blk,
                                                     opts.stats);
      const int shift = exponent + lg;
      check(shift >= 0, "run_bcm: unexpected negative aligned exponent");
      for (std::size_t t = 0; t < k; ++t) {
        acc[t] += static_cast<std::int64_t>(blk[t]) << shift;
      }
    }
    // SCALE-UP + narrowing to the output scale. acc is in units of
    // 2^-15 * 2^-lg (q15 LSBs shifted by lg); the true value is
    // acc * 2^(w_exp + in_exp); the stored output is value / 2^out_exp.
    const int rshift = lg + l.out_exp - l.w_exp - l.in_exp;
    for (std::size_t t = 0; t < k; ++t) {
      q15_t v = fx::narrow_q30(acc[t], rshift, opts.stats);
      const std::size_t o = bi * k + t;
      if (!l.bias.empty()) v = fx::add_sat(v, l.bias[o], opts.stats);
      y[o] = v;
    }
  }
  return y;
}

std::vector<q15_t> run_maxpool2(const QLayer& l, std::span<const q15_t> x) {
  const std::size_t c = l.in_shape[0], ih = l.in_shape[1], iw = l.in_shape[2];
  const std::size_t oh = ih / 2, ow = iw / 2;
  std::vector<q15_t> y(l.out_size());
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        q15_t m = fx::kQ15Min;
        for (std::size_t di = 0; di < 2; ++di) {
          for (std::size_t dj = 0; dj < 2; ++dj) {
            m = std::max(m, x[(ch * ih + 2 * i + di) * iw + 2 * j + dj]);
          }
        }
        y[(ch * oh + i) * ow + j] = m;
      }
    }
  }
  return y;
}

std::vector<q15_t> run_relu(std::span<const q15_t> x) {
  std::vector<q15_t> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::max<q15_t>(x[i], 0);
  return y;
}

}  // namespace

std::vector<q15_t> qforward_layer(const QLayer& layer, std::span<const q15_t> input,
                                  const QExecOptions& opts) {
  check(input.size() == layer.in_size(), "qforward_layer: input size mismatch");
  switch (layer.kind) {
    case QKind::kConv2D: return run_conv2d(layer, input, opts);
    case QKind::kConv1D: return run_conv1d(layer, input, opts);
    case QKind::kDense: return run_dense(layer, input, opts);
    case QKind::kBcmDense: return run_bcm(layer, input, opts);
    case QKind::kMaxPool2D: return run_maxpool2(layer, input);
    case QKind::kReLU: return run_relu(input);
    case QKind::kFlatten: return std::vector<q15_t>(input.begin(), input.end());
  }
  fail("qforward_layer: unknown kind");
}

std::vector<q15_t> qforward(const QuantModel& qm, std::span<const q15_t> input,
                            const QExecOptions& opts) {
  std::vector<q15_t> a(input.begin(), input.end());
  for (const auto& l : qm.layers) a = qforward_layer(l, a, opts);
  return a;
}

std::vector<float> qpredict(const QuantModel& qm, const nn::Tensor& x,
                            const QExecOptions& opts) {
  auto qin = quantize_input(qm, x, opts.stats);
  auto qout = qforward(qm, qin, opts);
  const double scale = std::exp2(qm.layers.back().out_exp);
  std::vector<float> out(qout.size());
  for (std::size_t i = 0; i < qout.size(); ++i) {
    out[i] = static_cast<float>(fx::to_double(qout[i]) * scale);
  }
  return out;
}

}  // namespace ehdnn::quant
