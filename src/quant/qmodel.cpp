#include "quant/qmodel.h"

#include <algorithm>

#include "nn/tensor.h"

namespace ehdnn::quant {

const char* kind_name(QKind k) {
  switch (k) {
    case QKind::kConv2D: return "Conv2D";
    case QKind::kConv1D: return "Conv1D";
    case QKind::kMaxPool2D: return "MaxPool2D";
    case QKind::kReLU: return "ReLU";
    case QKind::kFlatten: return "Flatten";
    case QKind::kDense: return "Dense";
    case QKind::kBcmDense: return "BcmDense";
  }
  return "?";
}

std::size_t QLayer::in_size() const { return nn::Tensor::count(in_shape); }
std::size_t QLayer::out_size() const { return nn::Tensor::count(out_shape); }

std::size_t QuantModel::weight_words() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.weight_words();
  return n;
}

std::size_t QuantModel::max_activation_words() const {
  std::size_t m = 0;
  for (const auto& l : layers) {
    m = std::max({m, l.in_size(), l.out_size()});
  }
  return m;
}

}  // namespace ehdnn::quant
