// Post-training 16-bit fixed-point quantization with range calibration
// (RAD's "fixed point calculation" + "normalization" stages, paper SSIII-A).
//
// Calibration runs the float model over a sample set, records each layer's
// peak |activation|, and picks power-of-two scales so every stored value
// fits in [-1, 1) q15 — the range RAD's normalization guarantees. Weight
// exponents may be negative (small weights use the full 15 fractional
// bits), activation exponents are >= 0.
#pragma once

#include <span>

#include "data/dataset.h"
#include "nn/model.h"
#include "quant/qmodel.h"

namespace ehdnn::quant {

struct QuantizeOptions {
  // Headroom multiplier on calibrated activation maxima; > 1 tolerates
  // mild distribution shift between calibration and deployment.
  double headroom = 1.25;
  std::string model_name = "model";
};

// Quantizes `model` (a trained float model built from the nn layer set)
// using `calib` samples for activation-range calibration.
QuantModel quantize(nn::Model& model, std::span<const nn::Tensor> calib,
                    const std::vector<std::size_t>& input_shape,
                    const QuantizeOptions& opts = {});

// Convenience: quantize a float input tensor into the model's input scale.
std::vector<fx::q15_t> quantize_input(const QuantModel& qm, const nn::Tensor& x,
                                      fx::SatStats* stats = nullptr);

}  // namespace ehdnn::quant
