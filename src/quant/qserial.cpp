#include "quant/qserial.h"

#include <cstdint>
#include <istream>
#include <ostream>

#include "util/check.h"

namespace ehdnn::quant {

namespace {

constexpr std::uint32_t kMagic = 0x4d514845;  // "EHQM"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  check(is.good(), "load_qmodel: truncated stream");
  return v;
}

void put_sizes(std::ostream& os, const std::vector<std::size_t>& v) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(v.size()));
  for (auto s : v) put<std::uint64_t>(os, s);
}

std::vector<std::size_t> get_sizes(std::istream& is) {
  std::vector<std::size_t> v(get<std::uint32_t>(is));
  for (auto& s : v) s = static_cast<std::size_t>(get<std::uint64_t>(is));
  return v;
}

void put_words(std::ostream& os, const std::vector<fx::q15_t>& v) {
  put<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(fx::q15_t)));
}

std::vector<fx::q15_t> get_words(std::istream& is) {
  std::vector<fx::q15_t> v(static_cast<std::size_t>(get<std::uint64_t>(is)));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(fx::q15_t)));
  check(is.good(), "load_qmodel: truncated weights");
  return v;
}

}  // namespace

void save_qmodel(const QuantModel& qm, std::ostream& os) {
  put(os, kMagic);
  put(os, kVersion);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(qm.layers.size()));
  put<std::int32_t>(os, qm.input_exp);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(qm.name.size()));
  os.write(qm.name.data(), static_cast<std::streamsize>(qm.name.size()));

  for (const auto& l : qm.layers) {
    put<std::uint8_t>(os, static_cast<std::uint8_t>(l.kind));
    put<std::int32_t>(os, l.w_exp);
    put<std::int32_t>(os, l.in_exp);
    put<std::int32_t>(os, l.out_exp);
    for (std::size_t d : {l.in_ch, l.out_ch, l.kh, l.kw, l.k, l.bp, l.bq}) {
      put<std::uint64_t>(os, d);
    }
    put_sizes(os, l.in_shape);
    put_sizes(os, l.out_shape);
    put<std::uint32_t>(os, static_cast<std::uint32_t>(l.shape_mask.size()));
    for (bool b : l.shape_mask) put<std::uint8_t>(os, b ? 1 : 0);
    put_words(os, l.weights);
    put_words(os, l.bias);
  }
  check(os.good(), "save_qmodel: stream error");
}

QuantModel load_qmodel(std::istream& is) {
  check(get<std::uint32_t>(is) == kMagic, "load_qmodel: bad magic");
  check(get<std::uint32_t>(is) == kVersion, "load_qmodel: unsupported version");
  QuantModel qm;
  const auto n_layers = get<std::uint32_t>(is);
  qm.input_exp = get<std::int32_t>(is);
  qm.name.resize(get<std::uint32_t>(is));
  is.read(qm.name.data(), static_cast<std::streamsize>(qm.name.size()));

  for (std::uint32_t i = 0; i < n_layers; ++i) {
    QLayer l;
    l.kind = static_cast<QKind>(get<std::uint8_t>(is));
    l.w_exp = get<std::int32_t>(is);
    l.in_exp = get<std::int32_t>(is);
    l.out_exp = get<std::int32_t>(is);
    for (std::size_t* d : {&l.in_ch, &l.out_ch, &l.kh, &l.kw, &l.k, &l.bp, &l.bq}) {
      *d = static_cast<std::size_t>(get<std::uint64_t>(is));
    }
    l.in_shape = get_sizes(is);
    l.out_shape = get_sizes(is);
    l.shape_mask.resize(get<std::uint32_t>(is));
    for (std::size_t m = 0; m < l.shape_mask.size(); ++m) {
      l.shape_mask[m] = get<std::uint8_t>(is) != 0;
    }
    l.weights = get_words(is);
    l.bias = get_words(is);
    qm.layers.push_back(std::move(l));
  }
  return qm;
}

}  // namespace ehdnn::quant
