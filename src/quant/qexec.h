// Software reference executor for QuantModel.
//
// Runs the exact fixed-point arithmetic the device will run (same kernels,
// same shifts, same FFT scaling discipline) but without any device state or
// cost accounting. Three roles:
//   * measure accuracy after quantization (Table II),
//   * serve as the bit-exactness oracle for the ACE device runtime and for
//     the intermittent engines (their outputs must match this, bit for bit),
//   * quantify overflow behaviour (SatStats) for the overflow ablation.
#pragma once

#include <span>
#include <vector>

#include "dsp/fft.h"
#include "nn/tensor.h"
#include "quant/qmodel.h"

namespace ehdnn::quant {

struct QExecOptions {
  // Library-wide default is block floating point (max precision); pass
  // kFixedScale for the paper's literal Algorithm 1 (SCALE-DOWN by len),
  // whose coarser output resolution the ablation bench quantifies. The
  // intermittent runtimes (core/flex RunOptions) use the same default so
  // oracle-vs-device comparisons line up.
  dsp::FftScaling fft_scaling = dsp::FftScaling::kBlockFloat;
  fx::SatStats* stats = nullptr;
  // When false, skips Algorithm 1's SCALE-DOWN/SCALE-UP bookkeeping and
  // runs the BCM FFT unscaled — demonstrates the overflow failure mode the
  // paper's overflow-aware computation exists to prevent.
  bool overflow_aware = true;
};

// Runs one layer; exposed for layer-level tests and benches.
std::vector<fx::q15_t> qforward_layer(const QLayer& layer, std::span<const fx::q15_t> input,
                                      const QExecOptions& opts = {});

// Full-model forward; returns the final layer's q15 activations.
std::vector<fx::q15_t> qforward(const QuantModel& qm, std::span<const fx::q15_t> input,
                                const QExecOptions& opts = {});

// Convenience: float input -> class logits (dequantized by the final
// layer's out_exp).
std::vector<float> qpredict(const QuantModel& qm, const nn::Tensor& x,
                            const QExecOptions& opts = {});

}  // namespace ehdnn::quant
