// Strict numeric field parsing, shared by the trace CSV reader and the
// harvest/scenario spec parsers: the whole field — minus surrounding
// whitespace — must be consumed, so "1e-3x" or "soon" never half-parses.
#pragma once

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>

namespace ehdnn {

inline std::optional<double> parse_double(const std::string& field) {
  const char* s = field.c_str();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return std::nullopt;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return std::nullopt;
    ++end;
  }
  return v;
}

}  // namespace ehdnn
