#include "util/qsketch.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/parse.h"

namespace ehdnn {
namespace {

// Values at or below this are folded into the zero bucket: latencies and
// energies this small are indistinguishable from zero at any accuracy the
// sketch offers, and ln(x) would otherwise produce extreme bin indices.
constexpr double kZeroThreshold = 1e-12;

// Shortest decimal form that round-trips a double exactly (%.17g), used for
// rel_err / min / max so deserialize(serialize()) is lossless.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

QuantileSketch::QuantileSketch(double rel_err) : rel_err_(rel_err) {
  check(rel_err > 0.0 && rel_err < 1.0, "qsketch: rel_err must be in (0, 1)");
  gamma_ = (1.0 + rel_err) / (1.0 - rel_err);
  log_gamma_ = std::log(gamma_);
}

int32_t QuantileSketch::bin_index(double x) const {
  return static_cast<int32_t>(std::ceil(std::log(x) / log_gamma_));
}

// Representative value of a bin: the geometric-mean-like midpoint
// 2*gamma^i / (gamma + 1), whose relative distance to any value in the bin
// (gamma^(i-1), gamma^i] is at most rel_err.
double QuantileSketch::bin_value(int32_t index) const {
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

void QuantileSketch::add(double x) {
  check(std::isfinite(x) && x >= 0.0, "qsketch: values must be finite and >= 0");
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  if (x <= kZeroThreshold) {
    ++zero_count_;
  } else {
    ++bins_[bin_index(x)];
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  check(rel_err_ == other.rel_err_, "qsketch: cannot merge sketches with different rel_err");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  for (const auto& [index, c] : other.bins_) bins_[index] += c;
}

double QuantileSketch::min() const {
  check(count_ > 0, "qsketch: min() on empty sketch");
  return min_;
}

double QuantileSketch::max() const {
  check(count_ > 0, "qsketch: max() on empty sketch");
  return max_;
}

double QuantileSketch::quantile(double q) const {
  check(count_ > 0, "qsketch: quantile() on empty sketch");
  check(q >= 0.0 && q <= 1.0, "qsketch: q must be in [0, 1]");
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Nearest-rank (1-based), matching the exact-percentile convention the
  // fleet report used before sketches.
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  std::uint64_t seen = zero_count_;
  double value = 0.0;
  if (rank > seen) {
    for (const auto& [index, c] : bins_) {
      seen += c;
      if (rank <= seen) {
        value = bin_value(index);
        break;
      }
    }
  }
  // Clamp into the exact observed range: q=0 / q=1 become exact, and bin
  // midpoints never stray outside the data.
  if (value < min_) value = min_;
  if (value > max_) value = max_;
  return value;
}

void QuantileSketch::serialize(std::ostream& os) const {
  os << "qsketch-v1 rel_err=" << fmt_double(rel_err_) << " " << count_ << " " << zero_count_
     << " " << fmt_double(count_ == 0 ? 0.0 : min_) << " "
     << fmt_double(count_ == 0 ? 0.0 : max_);
  for (const auto& [index, c] : bins_) os << " " << index << ":" << c;
}

std::string QuantileSketch::serialize() const {
  std::ostringstream os;
  serialize(os);
  return os.str();
}

QuantileSketch QuantileSketch::deserialize(const std::string& line) {
  std::istringstream is(line);
  std::string magic, rel_field;
  is >> magic >> rel_field;
  check(magic == "qsketch-v1", "qsketch: bad magic in '" + line + "'");
  check(rel_field.rfind("rel_err=", 0) == 0, "qsketch: missing rel_err in '" + line + "'");
  const auto rel = parse_double(rel_field.substr(8));
  check(rel.has_value(), "qsketch: bad rel_err in '" + line + "'");
  QuantileSketch s(*rel);
  std::string count_s, zero_s, min_s, max_s;
  is >> count_s >> zero_s >> min_s >> max_s;
  check(!max_s.empty(), "qsketch: truncated header in '" + line + "'");
  s.count_ = std::stoull(count_s);
  s.zero_count_ = std::stoull(zero_s);
  const auto mn = parse_double(min_s), mx = parse_double(max_s);
  check(mn.has_value() && mx.has_value(), "qsketch: bad min/max in '" + line + "'");
  s.min_ = *mn;
  s.max_ = *mx;
  std::string bin;
  std::uint64_t binned = 0;
  while (is >> bin) {
    const auto colon = bin.find(':');
    check(colon != std::string::npos, "qsketch: bad bin '" + bin + "'");
    const int32_t index = static_cast<int32_t>(std::stol(bin.substr(0, colon)));
    const std::uint64_t c = std::stoull(bin.substr(colon + 1));
    check(c > 0 && s.bins_.find(index) == s.bins_.end(),
          "qsketch: duplicate or empty bin '" + bin + "'");
    s.bins_[index] = c;
    binned += c;
  }
  check(s.zero_count_ + binned == s.count_, "qsketch: count mismatch in '" + line + "'");
  return s;
}

}  // namespace ehdnn
