// ASCII table printer for bench / example output.
//
// Benches print paper-style rows (framework x dataset x metric); this
// keeps the formatting in one place and aligned regardless of cell width.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace ehdnn {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string pct(double fraction, int precision = 2) {
    return num(100.0 * fraction, precision) + "%";
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], cells[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto rule = [&] {
      os << '+';
      for (auto w : width) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    auto line = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : std::string();
        os << ' ' << c << std::string(width[i] - c.size(), ' ') << " |";
      }
      os << '\n';
    };

    rule();
    line(header_);
    rule();
    for (const auto& r : rows_) line(r);
    rule();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ehdnn
