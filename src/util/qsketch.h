// Deterministic, mergeable quantile sketch for streaming fleet metrics.
//
// Log-spaced bins (DDSketch-style): a value x > 0 lands in bin
// ceil(ln(x) / ln(gamma)) with gamma = (1 + a) / (1 - a), which bounds the
// relative error of any reported quantile by `a`. Bin counts are integers,
// so merging two sketches is a bin-wise add — commutative and associative —
// and serialization (bins emitted in ascending index order) is byte-identical
// no matter how a population was sharded or in which order shards merged.
// That property is what lets the fleet engine keep its
// byte-identical-for-any-parallelism contract while streaming per-job
// latencies instead of materializing them.
//
// Exact minimum and maximum are tracked alongside the bins (min/max merge
// exactly), so quantile(0) and quantile(1) are exact and interior quantile
// estimates are clamped into [min, max].
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace ehdnn {

class QuantileSketch {
 public:
  // `rel_err` is the guaranteed relative accuracy of quantile(); it is part
  // of the sketch identity — sketches only merge with an equal rel_err.
  explicit QuantileSketch(double rel_err = 0.01);

  void add(double x);

  // Bin-wise add of `other` into this sketch. Throws ehdnn::Error when the
  // two sketches were built with different rel_err.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const { return count_; }
  double rel_err() const { return rel_err_; }
  double min() const;  // throws when empty
  double max() const;  // throws when empty

  // Nearest-rank quantile estimate, q in [0, 1]. Relative error bounded by
  // rel_err(); exact at q=0 and q=1. Throws when the sketch is empty.
  double quantile(double q) const;

  // Single-line text form: "qsketch-v1 rel_err=<r> count zero min max
  // i:c i:c ..." with bins in ascending index order. Deterministic for a
  // given multiset of added values regardless of add/merge order.
  void serialize(std::ostream& os) const;
  std::string serialize() const;
  static QuantileSketch deserialize(const std::string& line);

 private:
  int32_t bin_index(double x) const;
  double bin_value(int32_t index) const;

  double rel_err_;
  double gamma_;
  double log_gamma_;
  std::uint64_t count_ = 0;
  std::uint64_t zero_count_ = 0;  // values <= kZeroThreshold
  double min_ = 0.0;
  double max_ = 0.0;
  std::map<int32_t, std::uint64_t> bins_;  // ordered: deterministic iteration
};

}  // namespace ehdnn
