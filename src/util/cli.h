// Declarative command-line option table shared by the tools/ CLIs
// (scenario_runner, fleet_runner). Each tool used to hand-roll the same
// argv loop — flag matching, "--x needs a value" diagnostics, a usage()
// that drifted out of sync with the loop. Here the table IS the parser
// AND the --help text, so the two cannot disagree:
//
//   ehdnn::CliParser p("fleet_runner", "Runs a fleet population ...");
//   p.str("--out", "FILE", "output path", &out_path)
//    .int_min("--jobs", "N", "worker threads", &jobs, 1);
//   if (int rc = p.parse(argc, argv); rc >= 0) return rc;
//
// parse() returns -1 when the program should continue, otherwise the
// process exit code: 0 after --help or a terminal flag (--list-runtimes),
// 2 on a malformed command line (unknown flag, missing value, or a
// callback throwing ehdnn::Error — the diagnostic is printed to stderr
// prefixed with the program name).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace ehdnn {

class CliParser {
 public:
  CliParser(std::string prog, std::string summary);

  // --flag VALUE option; fn may throw ehdnn::Error to reject the value.
  CliParser& value(std::string flag, std::string metavar, std::string help,
                   std::function<void(const std::string&)> fn);
  // Boolean --flag.
  CliParser& flag(std::string flag, std::string help, std::function<void()> fn);
  // Boolean --flag after which the program exits 0 (--list-runtimes & co).
  CliParser& terminal(std::string flag, std::string help, std::function<void()> fn);

  // Typed conveniences over value(). int_min/num_min reject values below
  // `min` with the flag's own diagnostic; seed accepts 0x-prefixed hex.
  CliParser& str(std::string flag, std::string metavar, std::string help, std::string* out);
  CliParser& int_min(std::string flag, std::string metavar, std::string help, int* out,
                     int min);
  CliParser& num(std::string flag, std::string metavar, std::string help, double* out);
  CliParser& seed(std::string flag, std::string metavar, std::string help,
                  std::uint64_t* out);
  CliParser& toggle(std::string flag, std::string help, bool* out, bool to = true);

  // Accepts bare (non "--") arguments — e.g. fleet_runner's --merge
  // inputs. Without this, a bare argument is a usage error.
  CliParser& positionals(std::string metavar, std::string help,
                         std::function<void(const std::string&)> fn);

  // Parses argv (argv[0] ignored). --help is built in.
  int parse(int argc, char** argv);

  void print_help(std::ostream& os) const;

 private:
  struct Opt {
    std::string flag, metavar, help;
    std::function<void(const std::string&)> on_value;  // set iff metavar non-empty
    std::function<void()> on_flag;
    bool is_terminal = false;
  };
  const Opt* find(const std::string& flag) const;

  std::string prog_, summary_;
  std::vector<Opt> opts_;
  std::string pos_metavar_, pos_help_;
  std::function<void(const std::string&)> on_positional_;
};

// The listing flags both tools expose: --list-runtimes (scheduler
// runtime-table keys) and --list-sources (harvest source kinds). Both
// are terminal.
void add_listing_flags(CliParser& p);

}  // namespace ehdnn
