// Key=value spec-string argument parsing, shared by the harvest-source
// factory ("rf:base=0.2e-3,burst=5e-3"), the forecaster factory
// ("ema:prior=1.2e-3,alpha=0.5"), and the adaptive-scheduler spec
// ("adaptive:rich=3e-3,demote=2"). Keys are consumption-tracked so a
// typo'd key is an error instead of a silently applied default.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/parse.h"

namespace ehdnn {

class SpecArgs {
 public:
  // `spec` is the full spec string (for error messages); `args` is the
  // comma-separated key=value list after the kind prefix.
  SpecArgs(const std::string& spec, const std::string& args) : spec_(spec) {
    std::size_t pos = 0;
    while (pos < args.size()) {
      std::size_t comma = args.find(',', pos);
      if (comma == std::string::npos) comma = args.size();
      const std::string item = args.substr(pos, comma - pos);
      pos = comma + 1;
      if (item.empty()) continue;
      const std::size_t eq = item.find('=');
      check(eq != std::string::npos && eq > 0,
            "spec \"" + spec_ + "\": expected key=value, got \"" + item + "\"");
      kv_[item.substr(0, eq)] = item.substr(eq + 1);
    }
  }

  double num(const std::string& key, double fallback) {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    used_.push_back(key);
    const auto v = parse_double(it->second);
    check(v.has_value(),
          "spec \"" + spec_ + "\": bad number for " + key + ": \"" + it->second + "\"");
    return *v;
  }

  std::string str(const std::string& key, const std::string& fallback = "") {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    used_.push_back(key);
    return it->second;
  }

  // Call after construction: every provided key must have been consumed.
  void finish() const {
    for (const auto& [k, v] : kv_) {
      bool used = false;
      for (const auto& u : used_) used = used || u == k;
      check(used, "spec \"" + spec_ + "\": unknown key \"" + k + "\"");
    }
  }

 private:
  std::string spec_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> used_;
};

}  // namespace ehdnn
