// Deterministic random number generation.
//
// Everything in ehdnn that needs randomness (synthetic datasets, weight
// init, failure schedules in property tests) takes an explicit Rng so runs
// are reproducible from a single seed. The generator is xoshiro256**
// seeded via SplitMix64, which is fast and has no observable bias for our
// purposes (we are not doing cryptography).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace ehdnn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  // Raw 64 uniform bits (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next_u64() % n; }

  // Uniform integer in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool chance(double p) { return uniform() < p; }

  // Standard normal via Marsaglia polar method (cached pair).
  double gauss() {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * m;
    has_gauss_ = true;
    return u * m;
  }

  double gauss(double mean, double stddev) { return mean + stddev * gauss(); }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4] = {};
  bool has_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace ehdnn
