// Lightweight precondition / invariant checking.
//
// Library code throws ehdnn::Error on contract violations so that callers
// (tests, benches, examples) get a diagnosable failure instead of UB. Hot
// inner loops use plain assert() where the cost of a branch matters.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace ehdnn {

// Base error type for all ehdnn failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
// Out-of-line cold throw path: keeps check() itself down to a predicted
// branch, with no message materialization on the success path.
[[noreturn]] [[gnu::noinline]] [[gnu::cold]] inline void check_throw(
    const char* msg, const std::source_location& loc) {
  throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
              ": check failed: " + msg);
}
}  // namespace detail

// Throws Error with file:line context when `cond` is false. The
// const char* overload is what string-literal call sites resolve to —
// bounds checks in memory/device hot paths run millions of times, and a
// std::string parameter would heap-allocate the message on every
// successful check.
inline void check(bool cond, const char* msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) [[unlikely]] {
    detail::check_throw(msg, loc);
  }
}

inline void check(bool cond, const std::string& msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) [[unlikely]] {
    detail::check_throw(msg.c_str(), loc);
  }
}

// Unconditional failure with context (e.g. unreachable switch arms).
[[noreturn]] inline void fail(const std::string& msg,
                              std::source_location loc = std::source_location::current()) {
  throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) + ": " + msg);
}

}  // namespace ehdnn
