// Lightweight precondition / invariant checking.
//
// Library code throws ehdnn::Error on contract violations so that callers
// (tests, benches, examples) get a diagnosable failure instead of UB. Hot
// inner loops use plain assert() where the cost of a branch matters.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace ehdnn {

// Base error type for all ehdnn failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Throws Error with file:line context when `cond` is false.
inline void check(bool cond, const std::string& msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                ": check failed: " + msg);
  }
}

// Unconditional failure with context (e.g. unreachable switch arms).
[[noreturn]] inline void fail(const std::string& msg,
                              std::source_location loc = std::source_location::current()) {
  throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) + ": " + msg);
}

}  // namespace ehdnn
