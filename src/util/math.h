// Small integer/float math helpers shared across modules.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ehdnn {

constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// floor(log2(n)) for n >= 1.
constexpr int ilog2(std::size_t n) {
  int k = 0;
  while (n > 1) {
    n >>= 1;
    ++k;
  }
  return k;
}

constexpr std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr std::size_t div_ceil(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace ehdnn
