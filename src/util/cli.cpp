#include "util/cli.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <ostream>

#include "power/factory.h"
#include "sim/scenario.h"
#include "util/check.h"
#include "util/parse.h"

namespace ehdnn {

namespace {

long long parse_int_field(const std::string& flag, const std::string& v) {
  const char* s = v.c_str();
  char* end = nullptr;
  const long long n = std::strtoll(s, &end, 10);
  check(end != s && *end == '\0', flag + " needs an integer, got \"" + v + "\"");
  return n;
}

}  // namespace

CliParser::CliParser(std::string prog, std::string summary)
    : prog_(std::move(prog)), summary_(std::move(summary)) {}

CliParser& CliParser::value(std::string flag, std::string metavar, std::string help,
                            std::function<void(const std::string&)> fn) {
  opts_.push_back({std::move(flag), std::move(metavar), std::move(help), std::move(fn),
                   nullptr, false});
  return *this;
}

CliParser& CliParser::flag(std::string flag, std::string help, std::function<void()> fn) {
  opts_.push_back({std::move(flag), "", std::move(help), nullptr, std::move(fn), false});
  return *this;
}

CliParser& CliParser::terminal(std::string flag, std::string help,
                               std::function<void()> fn) {
  opts_.push_back({std::move(flag), "", std::move(help), nullptr, std::move(fn), true});
  return *this;
}

CliParser& CliParser::str(std::string flag, std::string metavar, std::string help,
                          std::string* out) {
  return value(std::move(flag), std::move(metavar), std::move(help),
               [out](const std::string& v) { *out = v; });
}

CliParser& CliParser::int_min(std::string flag, std::string metavar, std::string help,
                              int* out, int min) {
  const std::string f = flag;
  return value(std::move(flag), std::move(metavar), std::move(help),
               [out, min, f](const std::string& v) {
                 const long long n = parse_int_field(f, v);
                 check(n >= min, f + " needs an integer >= " + std::to_string(min));
                 *out = static_cast<int>(n);
               });
}

CliParser& CliParser::num(std::string flag, std::string metavar, std::string help,
                          double* out) {
  const std::string f = flag;
  return value(std::move(flag), std::move(metavar), std::move(help),
               [out, f](const std::string& v) {
                 const auto d = parse_double(v);
                 check(d.has_value(), f + " needs a number, got \"" + v + "\"");
                 *out = *d;
               });
}

CliParser& CliParser::seed(std::string flag, std::string metavar, std::string help,
                           std::uint64_t* out) {
  const std::string f = flag;
  return value(std::move(flag), std::move(metavar), std::move(help),
               [out, f](const std::string& v) {
                 const char* s = v.c_str();
                 char* end = nullptr;
                 const unsigned long long n = std::strtoull(s, &end, 0);
                 check(end != s && *end == '\0',
                       f + " needs an integer, got \"" + v + "\"");
                 *out = n;
               });
}

CliParser& CliParser::toggle(std::string flag, std::string help, bool* out, bool to) {
  return this->flag(std::move(flag), std::move(help), [out, to]() { *out = to; });
}

CliParser& CliParser::positionals(std::string metavar, std::string help,
                                  std::function<void(const std::string&)> fn) {
  pos_metavar_ = std::move(metavar);
  pos_help_ = std::move(help);
  on_positional_ = std::move(fn);
  return *this;
}

const CliParser::Opt* CliParser::find(const std::string& flag) const {
  for (const Opt& o : opts_) {
    if (o.flag == flag) return &o;
  }
  return nullptr;
}

int CliParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--help" || arg == "-h") {
        print_help(std::cout);
        return 0;
      }
      if (arg.rfind("--", 0) == 0) {
        const Opt* o = find(arg);
        if (o == nullptr) {
          std::cerr << prog_ << ": unknown option " << arg << " (see --help)\n";
          return 2;
        }
        if (o->on_value) {
          check(i + 1 < argc, arg + " needs a value");
          o->on_value(argv[++i]);
        } else {
          o->on_flag();
          if (o->is_terminal) return 0;
        }
      } else {
        check(static_cast<bool>(on_positional_),
              "unexpected argument \"" + arg + "\" (see --help)");
        on_positional_(arg);
      }
    } catch (const Error& e) {
      std::cerr << prog_ << ": " << e.what() << "\n";
      return 2;
    }
  }
  return -1;
}

void CliParser::print_help(std::ostream& os) const {
  os << "usage: " << prog_ << " [options]";
  if (on_positional_) os << " [" << pos_metavar_ << "...]";
  os << "\n\n" << summary_ << "\n\noptions:\n";
  // Align the help column on the widest head, but never past column 28 —
  // an oversized metavar (--scenario's spec grammar) wraps to its own
  // line instead of pushing every description off the screen.
  constexpr std::size_t kMaxCol = 28;
  std::size_t width = 6;  // "--help"
  auto head = [](const Opt& o) {
    return o.metavar.empty() ? o.flag : o.flag + " " + o.metavar;
  };
  for (const Opt& o : opts_) {
    if (head(o).size() <= kMaxCol) width = std::max(width, head(o).size());
  }
  auto row = [&](const std::string& h, const std::string& help) {
    if (h.size() > width) {
      os << "  " << h << "\n  " << std::string(width + 2, ' ') << help << "\n";
    } else {
      os << "  " << h << std::string(width - h.size() + 2, ' ') << help << "\n";
    }
  };
  for (const Opt& o : opts_) row(head(o), o.help);
  if (on_positional_) row(pos_metavar_ + "...", pos_help_);
  row("--help", "show this message");
}

void add_listing_flags(CliParser& p) {
  p.terminal("--list-runtimes", "print the runtime-table keys and exit", []() {
    for (const auto& k : sim::all_runtime_keys()) std::cout << k << "\n";
  });
  p.terminal("--list-sources", "print the harvest source kinds and exit", []() {
    for (const auto& k : power::harvest_source_kinds()) std::cout << k << "\n";
  });
}

}  // namespace ehdnn
