// Block-circulant compression of fully connected layers (paper SSIII-A).
//
// Two entry points:
//   * project_to_bcm: converts a trained Dense layer into the nearest (in
//     Frobenius norm) BcmDense — each k x k block's circulant is the mean
//     along its wrapped diagonals. RAD uses this as the warm start before
//     BCM-aware finetuning.
//   * storage accounting used by Table I and the resource estimator.
#pragma once

#include <memory>

#include "nn/bcm_dense.h"
#include "nn/dense.h"

namespace ehdnn::cmp {

// Least-squares projection of a dense weight matrix onto the block-
// circulant set. The source layer's bias (if any) is copied through.
std::unique_ptr<nn::BcmDense> project_to_bcm(const nn::Dense& dense, std::size_t block);

// Frobenius-norm relative projection error ||W - BCM(W)|| / ||W||; a cheap
// indicator RAD's architecture search uses when choosing block sizes.
double bcm_projection_error(const nn::Dense& dense, std::size_t block);

// Storage accounting for a logical (rows x cols) FC layer at `bits`-bit
// weights (Table I uses rows = cols = 512, bits = 16).
std::size_t dense_storage_bytes(std::size_t rows, std::size_t cols, int bits = 16);
std::size_t bcm_storage_bytes(std::size_t rows, std::size_t cols, std::size_t block,
                              int bits = 16);

}  // namespace ehdnn::cmp
