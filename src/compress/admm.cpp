#include "compress/admm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "compress/structured.h"

namespace ehdnn::cmp {

AdmmPruner::AdmmPruner(nn::Conv2D& target, AdmmConfig cfg)
    : conv_(target),
      cfg_(cfg),
      z_(target.weights().begin(), target.weights().end()),
      u_(target.weights().size(), 0.0f) {}

void AdmmPruner::z_update() {
  // Z = Proj_S(W + U): keep the top-k kernel positions ranked by the L2
  // norm of (W + U) aggregated across filters and channels.
  const auto w = conv_.weights();
  const std::size_t kh = conv_.kernel_h(), kw = conv_.kernel_w();
  const std::size_t positions = kh * kw;

  std::vector<double> imp(positions, 0.0);
  std::vector<float> wu(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    wu[i] = w[i] + u_[i];
    imp[i % positions] += static_cast<double>(wu[i]) * wu[i];
  }

  std::vector<std::size_t> order(positions);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return imp[a] > imp[b]; });
  std::vector<bool> live(positions, false);
  for (std::size_t i = 0; i < cfg_.keep_positions; ++i) live[order[i]] = true;

  for (std::size_t i = 0; i < wu.size(); ++i) z_[i] = live[i % positions] ? wu[i] : 0.0f;
}

void AdmmPruner::u_update() {
  const auto w = conv_.weights();
  for (std::size_t i = 0; i < u_.size(); ++i) u_[i] += w[i] - z_[i];
}

void AdmmPruner::add_penalty_grad(std::size_t batch_size) {
  // Gradients are divided by batch_size inside the optimizer, so scale the
  // penalty up to keep its effective magnitude rho*(W - Z + U).
  const auto w = conv_.weights();
  auto grads = conv_.params()[0].grad;
  const float scale = cfg_.rho * static_cast<float>(batch_size);
  for (std::size_t i = 0; i < w.size(); ++i) grads[i] += scale * (w[i] - z_[i] + u_[i]);
}

train::EpochStats AdmmPruner::run(nn::Model& model, const data::Dataset& ds, Rng& rng) {
  train::FitConfig fit_cfg;
  fit_cfg.epochs = cfg_.epochs_per_iter;
  fit_cfg.batch_size = cfg_.batch_size;
  fit_cfg.sgd = cfg_.sgd;
  fit_cfg.on_batch = [this](nn::Model&, std::size_t bs) { add_penalty_grad(bs); };

  train::EpochStats stats;
  for (int it = 0; it < cfg_.admm_iters; ++it) {
    stats = train::fit(model, ds, fit_cfg, rng);  // W-update
    z_update();
    u_update();
  }

  // Record how far W sits from the constraint set, then hard-project.
  {
    const auto w = conv_.weights();
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double d = static_cast<double>(w[i]) - z_[i];
      num += d * d;
      den += static_cast<double>(w[i]) * w[i];
    }
    final_violation_ = den > 0.0 ? std::sqrt(num / den) : 0.0;
  }

  project_shape_sparse(conv_, cfg_.keep_positions);

  if (cfg_.finetune_epochs > 0) {
    train::FitConfig ft;
    ft.epochs = cfg_.finetune_epochs;
    ft.batch_size = cfg_.batch_size;
    ft.sgd = cfg_.sgd;
    ft.sgd.lr *= 0.5f;  // gentler masked finetune
    stats = train::fit(model, ds, ft, rng);
  }
  return stats;
}

}  // namespace ehdnn::cmp
